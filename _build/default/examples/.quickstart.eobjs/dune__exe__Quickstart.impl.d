examples/quickstart.ml: Data Float List Printf Prng Selest Workload
