examples/query_optimizer.ml: Array Data List Printf Selest Workload
