examples/spatial_workload.mli:
