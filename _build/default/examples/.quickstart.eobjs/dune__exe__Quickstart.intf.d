examples/quickstart.mli:
