examples/approximate_counts.mli:
