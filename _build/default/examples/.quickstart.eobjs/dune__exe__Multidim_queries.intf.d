examples/multidim_queries.mli:
