examples/spatial_workload.ml: Array Data Float Hybrid Int Kde Kernels List Printf Selest String Workload
