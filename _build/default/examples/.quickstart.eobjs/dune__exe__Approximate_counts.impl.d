examples/approximate_counts.ml: Array Data Float List Online Printf Prng Workload
