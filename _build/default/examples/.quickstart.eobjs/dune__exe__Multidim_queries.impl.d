examples/multidim_queries.ml: Array Kernels List Multidim Printf Prng
