(* Quickstart: build every estimator from a small sample of a relation and
   compare their answers on a few range queries against the exact result.

   Run with:  dune exec examples/quickstart.exe *)

module Est = Selest.Estimator

let () =
  (* A relation with one metric attribute: 100,000 records, normally
     distributed over a 20-bit integer domain (the paper's n(20) file). *)
  let relation = Data.Catalog.find ~seed:2024L "n(20)" in
  Printf.printf "relation: %s\n\n" (Data.Dataset.describe relation);

  (* The estimator never sees the relation — only a 2,000-record sample. *)
  let rng = Prng.Xoshiro256pp.create 1L in
  let sample = Data.Dataset.sample_floats relation rng ~n:2000 in
  let domain = Workload.Experiment.domain_of relation in

  (* Build one estimator of each kind through the declarative spec API. *)
  let estimators =
    List.map
      (fun spec -> Est.build spec ~domain sample)
      Est.
        [
          Sampling;
          Uniform_assumption;
          Equi_width Normal_scale_bins;
          Equi_depth { bins = 40 };
          Max_diff { bins = 40 };
          Ash { bins = Normal_scale_bins; shifts = 10 };
          kernel_defaults;
          hybrid_defaults;
        ]
  in

  (* Three range queries of growing width around the distribution center. *)
  let center = float_of_int (Data.Dataset.domain_size relation / 2) in
  let queries =
    List.map
      (fun half -> (center -. half, center +. half))
      [ 2_000.0; 20_000.0; 100_000.0 ]
  in

  List.iter
    (fun (a, b) ->
      let truth = Data.Dataset.exact_count relation ~lo:a ~hi:b in
      Printf.printf "query [%.0f, %.0f]  (true result size: %d records)\n" a b truth;
      List.iter
        (fun est ->
          let guess = Est.estimate_count est ~n_records:(Data.Dataset.size relation) ~a ~b in
          let err =
            if truth = 0 then Float.nan
            else 100.0 *. Float.abs (guess -. float_of_int truth) /. float_of_int truth
          in
          Printf.printf "  %-34s -> %9.0f records  (%5.1f%% off)\n" (Est.name est) guess err)
        estimators;
      print_newline ())
    queries
