(* A miniature cost-based query optimizer: the paper's motivating scenario.

   For each range query the optimizer chooses between a clustered index
   range scan (cost proportional to the result size) and a full table scan
   (cost proportional to the relation size), based on the *estimated*
   selectivity.  A bad estimate past the crossover picks the wrong plan and
   pays the difference.  This example measures, per estimator, how often the
   wrong plan is chosen and how much execution cost that mistake adds.

   Run with:  dune exec examples/query_optimizer.exe *)

module Est = Selest.Estimator

(* A simple cost model: the index scan pays one random I/O per qualifying
   record plus a lookup; the sequential scan reads every page.  With 100
   records per page, the crossover sits near 1% selectivity — squarely in
   the range where the paper's 1% query files live. *)
let records_per_page = 100
let random_io_cost = 1.0
let sequential_page_cost = 0.1

type plan =
  | Index_scan
  | Full_scan

let plan_cost ~n_records ~result_size = function
  | Index_scan -> random_io_cost *. float_of_int result_size
  | Full_scan -> sequential_page_cost *. float_of_int (n_records / records_per_page)

let choose_plan ~n_records ~estimated_result =
  let idx = random_io_cost *. estimated_result in
  let scan = sequential_page_cost *. float_of_int (n_records / records_per_page) in
  if idx <= scan then Index_scan else Full_scan

let evaluate_estimator ds queries est =
  let n_records = Data.Dataset.size ds in
  let wrong = ref 0 and regret = ref 0.0 and total = ref 0.0 in
  Array.iter
    (fun (q : Workload.Query.t) ->
      let truth = Data.Dataset.exact_count ds ~lo:q.lo ~hi:q.hi in
      let estimate = Est.estimate_count est ~n_records ~a:q.lo ~b:q.hi in
      let chosen = choose_plan ~n_records ~estimated_result:estimate in
      let oracle = choose_plan ~n_records ~estimated_result:(float_of_int truth) in
      let cost p = plan_cost ~n_records ~result_size:truth p in
      let chosen_cost = cost chosen and best_cost = cost oracle in
      total := !total +. chosen_cost;
      if chosen <> oracle then begin
        incr wrong;
        regret := !regret +. (chosen_cost -. best_cost)
      end)
    queries;
  (!wrong, !regret, !total)

let () =
  (* The skewed real-like file is where estimators genuinely disagree. *)
  let ds = Data.Catalog.find ~seed:2024L "arap1" in
  Printf.printf "relation: %s\n" (Data.Dataset.describe ds);
  let sample = Workload.Experiment.sample_of ds ~seed:3L ~n:2000 in
  let domain = Workload.Experiment.domain_of ds in

  (* A mixed workload: mostly selective queries near the crossover. *)
  let queries =
    Array.concat
      [
        Workload.Generate.size_separated ds ~seed:5L ~fraction:0.002 ~count:400;
        Workload.Generate.size_separated ds ~seed:6L ~fraction:0.01 ~count:400;
        Workload.Generate.size_separated ds ~seed:7L ~fraction:0.05 ~count:200;
      ]
  in
  Printf.printf "workload: %d range queries (0.2%%, 1%% and 5%% widths)\n\n"
    (Array.length queries);

  Printf.printf "%-34s %-12s %-14s %-12s\n" "estimator" "wrong plans" "regret (cost)"
    "total cost";
  List.iter
    (fun spec ->
      let est = Est.build spec ~domain sample in
      let wrong, regret, total = evaluate_estimator ds queries est in
      Printf.printf "%-34s %-12d %-14.0f %-12.0f\n" (Est.name est) wrong regret total)
    Est.
      [
        Uniform_assumption;
        Sampling;
        Equi_width Normal_scale_bins;
        kernel_defaults;
        hybrid_defaults;
      ];
  print_newline ();
  Printf.printf
    "The uniform (System R) assumption misplans most; the hybrid estimator's\n\
     accurate selectivities on clustered data keep the optimizer near the\n\
     oracle plan.\n"
