(* Spatial selectivity estimation: the paper's motivating domain.

   TIGER-like line endpoints (street grids, rail roads, rivers) projected on
   one axis produce the multi-modal, change-point-heavy distributions on
   which the normal-scale kernel rule collapses and the hybrid estimator
   shines (Figures 11-12).  This example walks through that story on the
   simulated Arapahoe county file: it prints the density landscape the
   estimators face, the change points the hybrid detects, and the final
   accuracy of each method.

   Run with:  dune exec examples/spatial_workload.exe *)

module Est = Selest.Estimator

let bar width value max_value =
  let n = int_of_float (Float.round (float_of_int width *. value /. max_value)) in
  String.make (Int.max 0 (Int.min width n)) '#'

let () =
  let ds = Data.Catalog.find ~seed:2024L "arap1" in
  Printf.printf "spatial file: %s\n\n" (Data.Dataset.describe ds);

  let sample = Workload.Experiment.sample_of ds ~seed:11L ~n:2000 in
  let domain = Workload.Experiment.domain_of ds in
  let lo, hi = domain in

  (* 1. The density landscape, from the exact data (what the estimators are
     trying to recover from 2,000 samples). *)
  Printf.printf "exact record density over the domain (40 buckets):\n";
  let buckets = 40 in
  let counts =
    Array.init buckets (fun i ->
        let a = lo +. (float_of_int i /. float_of_int buckets *. (hi -. lo)) in
        let b = lo +. (float_of_int (i + 1) /. float_of_int buckets *. (hi -. lo)) in
        Data.Dataset.exact_count ds ~lo:a ~hi:b)
  in
  let max_count = Array.fold_left Int.max 1 counts in
  Array.iteri
    (fun i c ->
      Printf.printf "%5.1f%% |%-50s %d\n"
        (100.0 *. float_of_int i /. float_of_int buckets)
        (bar 50 (float_of_int c) (float_of_int max_count))
        c)
    counts;

  (* 2. The change points the hybrid estimator detects from the sample. *)
  let points = Hybrid.Change_point.detect ~domain sample in
  Printf.printf "\nchange points detected from the sample (%d):\n" (List.length points);
  List.iter
    (fun x -> Printf.printf "  at %.0f (%.1f%% of the domain)\n" x (100.0 *. (x -. lo) /. (hi -. lo)))
    points;

  (* 3. Accuracy of the contenders on the paper's 1% workload. *)
  let queries = Workload.Generate.size_separated ds ~seed:13L ~fraction:0.01 ~count:1000 in
  Printf.printf "\nmean relative error on 1%% range queries (1000 queries):\n";
  List.iter
    (fun spec ->
      let summary = Workload.Experiment.summary_of_spec ds ~sample ~queries spec in
      Printf.printf "  %-34s %6.2f%%  (worst %.1fx)\n"
        (Est.spec_name spec)
        (100.0 *. summary.Workload.Metrics.mre)
        summary.Workload.Metrics.max_relative)
    Est.
      [
        Equi_width Normal_scale_bins;
        Kernel
          {
            kernel = Kernels.Kernel.Epanechnikov;
            boundary = Kde.Estimator.Boundary_kernels;
            bandwidth = Normal_scale_bandwidth;
          };
        kernel_defaults;
        hybrid_defaults;
      ];
  print_newline ();
  Printf.printf
    "The normal-scale bandwidth oversmooths the street-grid clusters; the\n\
     plug-in rule adapts, and the hybrid estimator isolates the clusters\n\
     into bins before smoothing, giving the best accuracy — the paper's\n\
     Figure 12 in miniature.\n"
