(* Approximate COUNT(all) answers with progressively growing samples — the
   online-aggregation scenario the paper's introduction cites ([6], and its
   future-work item 2), built on the Online.Aggregator module.

   A user asks  SELECT COUNT(all) FROM r WHERE a BETWEEN x AND y  and wants an
   early approximate answer that sharpens as more of the sample streams in.
   The aggregator answers with both the pure-sampling estimate (and its
   CLT confidence interval) and the kernel estimate over the same samples:
   the kernel's faster convergence rate means it reaches a usable answer
   with fewer records, which is the paper's core selling point for kernel
   methods.

   Run with:  dune exec examples/approximate_counts.exe *)

let () =
  let ds = Data.Catalog.find ~seed:2024L "e(20)" in
  let n_records = Data.Dataset.size ds in
  Printf.printf "relation: %s\n" (Data.Dataset.describe ds);

  (* The query: a 2% range in the dense region of the exponential file. *)
  let a = 20_000.0 and b = 41_000.0 in
  let truth = Data.Dataset.exact_count ds ~lo:a ~hi:b in
  Printf.printf "query: COUNT(all) WHERE a BETWEEN %.0f AND %.0f   (exact: %d)\n\n" a b truth;

  (* One long sample, streamed to the aggregator in batches, as an online
     executor would deliver it. *)
  let rng = Prng.Xoshiro256pp.create 17L in
  let full_sample = Data.Dataset.sample_floats ds rng ~n:10_000 in
  let agg = Online.Aggregator.create ~domain:(Workload.Experiment.domain_of ds) () in

  Printf.printf "%-8s %-24s %-24s\n" "n" "sampling (95% CI)" "kernel estimate";
  let consumed = ref 0 in
  List.iter
    (fun upto ->
      Online.Aggregator.add agg (Array.sub full_sample !consumed (upto - !consumed));
      consumed := upto;
      let e = Online.Aggregator.estimate agg ~a ~b in
      let count_kernel, low, high = Online.Aggregator.estimated_count e ~n_records in
      let count_sampling = e.Online.Aggregator.sampling_selectivity *. float_of_int n_records in
      Printf.printf "%-8d %9.0f +/- %-9.0f %9.0f  (%.1f%% off)\n" upto count_sampling
        (0.5 *. (high -. low))
        count_kernel
        (100.0 *. Float.abs (count_kernel -. float_of_int truth) /. float_of_int truth))
    [ 50; 100; 250; 500; 1000; 2500; 5000; 10000 ];

  Printf.printf "\nexact answer: %d records\n" truth;
  Printf.printf
    "The kernel estimate settles near the truth with a few hundred samples,\n\
     while the pure-sampling interval is still wide — the O(n^-4/5) versus\n\
     O(n^-1/2) convergence gap of Section 2 made tangible.\n"
