(* Multidimensional range queries — the paper's first future-work item.

   TIGER line endpoints are (x, y) points; a spatial query is a rectangle.
   This example builds 2-D estimators from a 2,000-point sample of a
   simulated street-grid point set and compares pure sampling, grid
   histograms and the product-Epanechnikov kernel estimator on rectangle
   workloads — including the same normal-scale-versus-plug-in bandwidth
   story the paper tells in 1-D.

   Run with:  dune exec examples/multidim_queries.exe *)

module D2 = Multidim.Dataset2d
module K2 = Multidim.Kde2d
module H2 = Multidim.Hist2d
module W2 = Multidim.Workload2d

let () =
  let ds =
    Multidim.Generate2d.street_grid ~name:"city" ~bits:16 ~count:50_000 ~seed:2024L
  in
  Printf.printf "point set: %s (simulated street grid)\n\n" (D2.describe ds);

  let rng = Prng.Xoshiro256pp.create 5L in
  let sample = D2.sample_without_replacement ds rng ~n:2000 in
  let domain = (-0.5, 65535.5) in

  (* One concrete query first. *)
  let r : W2.rect = { x_lo = 20000.0; x_hi = 28000.0; y_lo = 30000.0; y_hi = 38000.0 } in
  let truth = D2.exact_count ds ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi in
  Printf.printf "query: x in [%.0f, %.0f], y in [%.0f, %.0f]   (exact: %d points)\n" r.x_lo
    r.x_hi r.y_lo r.y_hi truth;

  let hx, hy = K2.plug_in_bandwidths ~kernel:Kernels.Kernel.Epanechnikov sample in
  let kde = K2.create ~domain_x:domain ~domain_y:domain ~hx ~hy sample in
  let est =
    K2.selectivity kde ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi
    *. float_of_int (D2.size ds)
  in
  Printf.printf "product-kernel estimate (plug-in bandwidths %.0f x %.0f): %.0f points\n\n" hx hy
    est;

  (* Then a full workload comparison. *)
  let rects = W2.size_separated ds ~seed:7L ~fraction:0.05 ~count:500 in
  Printf.printf "mean relative error on %d rectangle queries (5%% per axis):\n"
    (Array.length rects);
  let eval label f =
    let summary = W2.evaluate ds f rects in
    Printf.printf "  %-34s %6.2f%%\n" label (100.0 *. summary.W2.mre)
  in
  eval "sampling" (fun (r : W2.rect) ->
      H2.sampling_selectivity sample ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi);
  List.iter
    (fun bins ->
      let h = H2.build ~domain_x:domain ~domain_y:domain ~bins_x:bins ~bins_y:bins sample in
      eval
        (Printf.sprintf "grid histogram %dx%d" bins bins)
        (fun (r : W2.rect) ->
          H2.selectivity h ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi))
    [ 8; 32 ];
  let hx_ns, hy_ns = K2.normal_scale_bandwidths ~kernel:Kernels.Kernel.Epanechnikov sample in
  let kde_ns = K2.create ~domain_x:domain ~domain_y:domain ~hx:hx_ns ~hy:hy_ns sample in
  eval "product kernel, normal scale" (fun (r : W2.rect) ->
      K2.selectivity kde_ns ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi);
  eval "product kernel, plug-in" (fun (r : W2.rect) ->
      K2.selectivity kde ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi);
  print_newline ();
  Printf.printf
    "The 1-D story repeats in 2-D: the normal-scale rule oversmooths the\n\
     street clusters away (worse than a coarse grid), while the plug-in\n\
     bandwidths bring the product kernel back to the accuracy of the best\n\
     alternatives — on data this sharply clustered, close to pure sampling,\n\
     exactly as the paper observes for its 1-D real files.\n"
