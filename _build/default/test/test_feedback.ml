(* Tests for the feedback library: the adaptive (ST-histogram style)
   estimator seeded from a base estimator and refined by query feedback. *)

module A = Feedback.Adaptive
module Xo = Prng.Xoshiro256pp

let checkf tol = Alcotest.(check (float tol))

let uniform_base ~a ~b = Float.max 0.0 (Float.min 1.0 ((b -. a) /. 100.0))

let test_create_validation () =
  Alcotest.check_raises "buckets" (Invalid_argument "Adaptive.create: buckets must be positive")
    (fun () -> ignore (A.create ~buckets:0 ~domain:(0.0, 1.0) ~base:uniform_base ()));
  Alcotest.check_raises "domain" (Invalid_argument "Adaptive.create: empty domain") (fun () ->
      ignore (A.create ~domain:(1.0, 1.0) ~base:uniform_base ()));
  Alcotest.check_raises "rate" (Invalid_argument "Adaptive.create: learning_rate must be in (0, 1]")
    (fun () ->
      ignore (A.create ~learning_rate:0.0 ~domain:(0.0, 1.0) ~base:uniform_base ()))

let test_initial_matches_base () =
  let t = A.create ~buckets:50 ~domain:(0.0, 100.0) ~base:uniform_base () in
  checkf 1e-9 "half" 0.5 (A.selectivity t ~a:0.0 ~b:50.0);
  checkf 1e-9 "tenth" 0.1 (A.selectivity t ~a:20.0 ~b:30.0);
  checkf 1e-9 "full" 1.0 (A.selectivity t ~a:0.0 ~b:100.0);
  checkf 1e-9 "initial mass" 1.0 (A.total_mass t);
  Alcotest.(check int) "no feedback yet" 0 (A.feedback_count t)

let test_observe_validation () =
  let t = A.create ~domain:(0.0, 100.0) ~base:uniform_base () in
  Alcotest.check_raises "actual out of range"
    (Invalid_argument "Adaptive.observe: actual selectivity must be in [0, 1]") (fun () ->
      A.observe t ~a:0.0 ~b:10.0 ~actual:1.5)

let test_single_feedback_corrects_exact_repeat () =
  (* With learning rate 1 and a bucket-aligned query, a repeat of the same
     query must return the observed truth exactly. *)
  let t = A.create ~buckets:10 ~learning_rate:1.0 ~domain:(0.0, 100.0) ~base:uniform_base () in
  A.observe t ~a:20.0 ~b:30.0 ~actual:0.4;
  checkf 1e-9 "repeat query corrected" 0.4 (A.selectivity t ~a:20.0 ~b:30.0);
  Alcotest.(check int) "counted" 1 (A.feedback_count t)

let test_feedback_converges_on_repeat () =
  (* With a partial learning rate the estimate converges geometrically. *)
  let t = A.create ~buckets:10 ~learning_rate:0.5 ~domain:(0.0, 100.0) ~base:uniform_base () in
  for _ = 1 to 12 do
    A.observe t ~a:20.0 ~b:30.0 ~actual:0.4
  done;
  Alcotest.(check bool) "converged" true (Float.abs (A.selectivity t ~a:20.0 ~b:30.0 -. 0.4) < 1e-3)

let test_feedback_local () =
  (* Feedback about [20, 30] must not disturb estimates of disjoint
     regions. *)
  let t = A.create ~buckets:10 ~learning_rate:1.0 ~domain:(0.0, 100.0) ~base:uniform_base () in
  let before = A.selectivity t ~a:60.0 ~b:90.0 in
  A.observe t ~a:20.0 ~b:30.0 ~actual:0.4;
  checkf 1e-12 "disjoint region untouched" before (A.selectivity t ~a:60.0 ~b:90.0)

let test_weights_stay_nonnegative () =
  let t = A.create ~buckets:10 ~learning_rate:1.0 ~domain:(0.0, 100.0) ~base:uniform_base () in
  (* Report far less mass than the base predicts, repeatedly. *)
  for _ = 1 to 5 do
    A.observe t ~a:0.0 ~b:50.0 ~actual:0.0
  done;
  let s = A.selectivity t ~a:0.0 ~b:50.0 in
  Alcotest.(check bool) "non-negative" true (s >= 0.0);
  checkf 1e-9 "learned emptiness" 0.0 s

let prop_selectivity_bounds_after_feedback =
  QCheck.Test.make ~name:"adaptive estimates stay in [0,1] under random feedback" ~count:100
    QCheck.(
      small_list (triple (float_range 0. 100.) (float_range 0. 100.) (float_range 0. 1.)))
    (fun observations ->
      let t = A.create ~buckets:16 ~domain:(0.0, 100.0) ~base:uniform_base () in
      List.iter
        (fun (x, y, actual) ->
          A.observe t ~a:(Float.min x y) ~b:(Float.max x y) ~actual)
        observations;
      let s = A.selectivity t ~a:10.0 ~b:90.0 in
      s >= 0.0 && s <= 1.0)

let test_feedback_improves_bad_base_estimator () =
  (* End-to-end: seed the adaptive estimator with the uniform assumption on
     a skewed dataset, replay a workload with feedback, and verify the MRE
     on fresh queries from the same workload distribution improves a lot. *)
  let ds = Data.Generate.generate Data.Generate.Exponential_family ~bits:20 ~count:50_000 ~seed:21L in
  let domain = Workload.Experiment.domain_of ds in
  let t = A.create ~buckets:64 ~learning_rate:0.5 ~domain ~base:(fun ~a ~b -> uniform_base ~a:(a /. 10485.76) ~b:(b /. 10485.76)) () in
  let mre queries =
    (Workload.Metrics.evaluate ds (fun ~a ~b -> A.selectivity t ~a ~b) queries).Workload.Metrics.mre
  in
  let train = Workload.Generate.size_separated ds ~seed:22L ~fraction:0.02 ~count:300 in
  let test_qs = Workload.Generate.size_separated ds ~seed:23L ~fraction:0.02 ~count:300 in
  let before = mre test_qs in
  Array.iter
    (fun (q : Workload.Query.t) ->
      let actual = Data.Dataset.exact_selectivity ds ~lo:q.lo ~hi:q.hi in
      A.observe t ~a:q.lo ~b:q.hi ~actual)
    train;
  let after = mre test_qs in
  Alcotest.(check bool)
    (Printf.sprintf "feedback improves MRE (%.3f -> %.3f)" before after)
    true
    (after < 0.5 *. before)

let () =
  Alcotest.run "feedback"
    [
      ( "adaptive",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "initial matches base" `Quick test_initial_matches_base;
          Alcotest.test_case "observe validation" `Quick test_observe_validation;
          Alcotest.test_case "exact repeat corrected" `Quick
            test_single_feedback_corrects_exact_repeat;
          Alcotest.test_case "converges on repeat" `Quick test_feedback_converges_on_repeat;
          Alcotest.test_case "feedback is local" `Quick test_feedback_local;
          Alcotest.test_case "weights non-negative" `Quick test_weights_stay_nonnegative;
          QCheck_alcotest.to_alcotest prop_selectivity_bounds_after_feedback;
          Alcotest.test_case "improves a bad base" `Quick test_feedback_improves_bad_base_estimator;
        ] );
    ]
