(* Tests for the join library: exact equi-join oracle, the density-product
   estimator and the sample-join estimator. *)

module J = Join.Equijoin
module Est = Selest.Estimator
module Ds = Data.Dataset

let checkf tol = Alcotest.(check (float tol))

let mk name values = Ds.create ~name ~bits:10 values

(* --- exact oracle --- *)

let test_exact_hand_computed () =
  (* R: {1,1,2,5}; S: {1,2,2,7}: matches 1 -> 2*1, 2 -> 1*2 => 4. *)
  let r = mk "r" [| 1; 1; 2; 5 |] and s = mk "s" [| 1; 2; 2; 7 |] in
  Alcotest.(check int) "size" 4 (J.exact_size r s)

let test_exact_no_overlap () =
  let r = mk "r" [| 1; 2; 3 |] and s = mk "s" [| 10; 11 |] in
  Alcotest.(check int) "empty join" 0 (J.exact_size r s)

let test_exact_symmetric () =
  let r = mk "r" [| 1; 1; 4; 9; 9; 9 |] and s = mk "s" [| 1; 4; 4; 9 |] in
  Alcotest.(check int) "symmetric" (J.exact_size r s) (J.exact_size s r)

let test_exact_self_join () =
  (* Self-join size = sum of squared frequencies: 2^2 + 1 + 3^2 = 14. *)
  let r = mk "r" [| 1; 1; 4; 9; 9; 9 |] in
  Alcotest.(check int) "self join" 14 (J.exact_size r r)

let prop_exact_matches_brute_force =
  QCheck.Test.make ~name:"exact join matches nested loop" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 30) (int_range 0 15))
        (list_of_size (Gen.int_range 1 30) (int_range 0 15)))
    (fun (lr, ls) ->
      let r = mk "r" (Array.of_list lr) and s = mk "s" (Array.of_list ls) in
      let brute =
        List.fold_left
          (fun acc a -> acc + List.length (List.filter (fun b -> b = a) ls))
          0 lr
      in
      J.exact_size r s = brute)

(* --- density-product estimator --- *)

let test_from_densities_uniform_exact () =
  (* Two uniform densities over [0, d]: integral of product = 1/d, so the
     estimate is N_R N_S / d — the textbook uniform join formula. *)
  let d = 1024.0 in
  let f x = if x >= 0.0 && x <= d then 1.0 /. d else 0.0 in
  let est = J.from_densities ~domain:(0.0, d) f f ~n_r:1000 ~n_s:2000 in
  checkf 1.0 "uniform formula" (1000.0 *. 2000.0 /. d) est

let test_from_densities_disjoint_supports () =
  let f x = if x >= 0.0 && x < 100.0 then 0.01 else 0.0 in
  let g x = if x >= 200.0 && x < 300.0 then 0.01 else 0.0 in
  let est = J.from_densities ~domain:(0.0, 400.0) f g ~n_r:1000 ~n_s:1000 in
  checkf 1e-9 "no overlap" 0.0 est

let test_estimator_join_accuracy () =
  (* End to end: two overlapping normal-ish relations; the kernel-density
     join estimate must land within ~20% of the exact join size, while the
     sample join on this large sparse domain collapses. *)
  let r = Data.Generate.generate Data.Generate.Normal_family ~bits:16 ~count:50_000 ~seed:41L in
  let s = Data.Generate.generate Data.Generate.Uniform_family ~bits:16 ~count:50_000 ~seed:42L in
  let exact = float_of_int (J.exact_size r s) in
  let domain = Workload.Experiment.domain_of r in
  let sample ds seed = Workload.Experiment.sample_of ds ~seed ~n:2000 in
  let sr = sample r 1L and ss = sample s 2L in
  let er = Est.build (Est.Equi_width Est.Normal_scale_bins) ~domain sr in
  let es = Est.build (Est.Equi_width Est.Normal_scale_bins) ~domain ss in
  (match J.estimate ~domain er es ~n_r:(Ds.size r) ~n_s:(Ds.size s) with
  | None -> Alcotest.fail "expected a density-based estimate"
  | Some est ->
    Alcotest.(check bool)
      (Printf.sprintf "histogram join %.0f vs exact %.0f" est exact)
      true
      (Float.abs (est -. exact) /. exact < 0.2));
  let ek = Est.build Est.kernel_defaults ~domain sr in
  let el = Est.build Est.kernel_defaults ~domain ss in
  match J.estimate ~domain ek el ~n_r:(Ds.size r) ~n_s:(Ds.size s) with
  | None -> Alcotest.fail "expected a kernel estimate"
  | Some est ->
    Alcotest.(check bool)
      (Printf.sprintf "kernel join %.0f vs exact %.0f" est exact)
      true
      (Float.abs (est -. exact) /. exact < 0.2)

let test_estimate_none_for_sampling () =
  let domain = (0.0, 100.0) in
  let xs = [| 1.0; 2.0; 3.0 |] in
  let sampling = Est.build Est.Sampling ~domain xs in
  let ewh = Est.build (Est.Equi_width (Est.Fixed_bins 4)) ~domain xs in
  Alcotest.(check bool) "sampling has no density" true
    (J.estimate ~domain sampling ewh ~n_r:10 ~n_s:10 = None)

(* --- range-restricted joins --- *)

let test_exact_range_restricted_hand_computed () =
  (* R: {1,1,2,5}; S: {1,2,2,5}: restricting R to [2,5] keeps matches
     2 -> 1*2 and 5 -> 1*1 => 3. *)
  let r = mk "r" [| 1; 1; 2; 5 |] and s = mk "s" [| 1; 2; 2; 5 |] in
  Alcotest.(check int) "restricted" 3 (J.exact_range_restricted_size r s ~lo:2.0 ~hi:5.0);
  Alcotest.(check int) "full range equals join" (J.exact_size r s)
    (J.exact_range_restricted_size r s ~lo:0.0 ~hi:1023.0);
  Alcotest.(check int) "empty range" 0 (J.exact_range_restricted_size r s ~lo:6.0 ~hi:9.0)

let prop_range_restricted_matches_filtered_join =
  QCheck.Test.make ~name:"range-restricted equals filter-then-join" ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 30) (int_range 0 15))
        (list_of_size (Gen.int_range 1 30) (int_range 0 15))
        (pair (int_range 0 15) (int_range 0 15)))
    (fun (lr, ls, (x, y)) ->
      let lo = min x y and hi = max x y in
      let r = mk "r" (Array.of_list lr) and s = mk "s" (Array.of_list ls) in
      let filtered = List.filter (fun v -> v >= lo && v <= hi) lr in
      let expected =
        match filtered with
        | [] -> 0
        | _ ->
          J.exact_size (mk "rf" (Array.of_list filtered)) s
      in
      J.exact_range_restricted_size r s ~lo:(float_of_int lo) ~hi:(float_of_int hi) = expected)

let test_range_restricted_estimate_accuracy () =
  let r = Data.Generate.generate Data.Generate.Normal_family ~bits:16 ~count:50_000 ~seed:45L in
  let s = Data.Generate.generate Data.Generate.Uniform_family ~bits:16 ~count:50_000 ~seed:46L in
  let domain = Workload.Experiment.domain_of r in
  let sr = Workload.Experiment.sample_of r ~seed:5L ~n:2000 in
  let ss = Workload.Experiment.sample_of s ~seed:6L ~n:2000 in
  let er = Est.build Est.kernel_defaults ~domain sr in
  let es = Est.build Est.kernel_defaults ~domain ss in
  (* Restrict to the central half of the domain. *)
  let lo = 16384.0 and hi = 49152.0 in
  let exact = float_of_int (J.exact_range_restricted_size r s ~lo ~hi) in
  match
    J.range_restricted ~domain er es ~n_r:(Ds.size r) ~n_s:(Ds.size s) ~lo ~hi
  with
  | None -> Alcotest.fail "expected an estimate"
  | Some est ->
    Alcotest.(check bool)
      (Printf.sprintf "restricted join %.0f vs exact %.0f" est exact)
      true
      (Float.abs (est -. exact) /. exact < 0.2)

let test_range_restricted_empty_range () =
  let domain = (0.0, 100.0) in
  let xs = [| 10.0; 20.0 |] in
  let e = Est.build (Est.Equi_width (Est.Fixed_bins 4)) ~domain xs in
  Alcotest.(check (option (float 1e-12))) "inverted range" (Some 0.0)
    (J.range_restricted ~domain e e ~n_r:10 ~n_s:10 ~lo:50.0 ~hi:40.0)

(* --- sample join --- *)

let test_sample_join_hand_computed () =
  (* Samples {1,1,2} and {1,2,2}: matches 2*1 + 1*2 = 4; scale by
     (100*100)/(3*3). *)
  let est = J.sample_join [| 1.0; 1.0; 2.0 |] [| 1.0; 2.0; 2.0 |] ~n_r:100 ~n_s:100 in
  checkf 1e-9 "scaled matches" (4.0 *. 10000.0 /. 9.0) est

let test_sample_join_no_collisions () =
  let est = J.sample_join [| 1.0; 2.0 |] [| 3.0; 4.0 |] ~n_r:100 ~n_s:100 in
  checkf 1e-12 "zero" 0.0 est

let test_sample_join_collapses_on_sparse_domain () =
  (* The taxonomy point: on a large domain with few duplicates the sample
     join finds (almost) no collisions and wildly underestimates, while the
     density product stays accurate — why optimizers don't join samples. *)
  let r = Data.Generate.generate Data.Generate.Normal_family ~bits:20 ~count:100_000 ~seed:43L in
  let s = Data.Generate.generate Data.Generate.Uniform_family ~bits:20 ~count:100_000 ~seed:44L in
  let exact = float_of_int (J.exact_size r s) in
  let sr = Workload.Experiment.sample_of r ~seed:3L ~n:2000 in
  let ss = Workload.Experiment.sample_of s ~seed:4L ~n:2000 in
  let est = J.sample_join sr ss ~n_r:(Ds.size r) ~n_s:(Ds.size s) in
  Alcotest.(check bool)
    (Printf.sprintf "sample join %.0f way below exact %.0f" est exact)
    true
    (est < 0.5 *. exact)

let () =
  Alcotest.run "join"
    [
      ( "exact",
        [
          Alcotest.test_case "hand computed" `Quick test_exact_hand_computed;
          Alcotest.test_case "no overlap" `Quick test_exact_no_overlap;
          Alcotest.test_case "symmetric" `Quick test_exact_symmetric;
          Alcotest.test_case "self join" `Quick test_exact_self_join;
          QCheck_alcotest.to_alcotest prop_exact_matches_brute_force;
        ] );
      ( "density product",
        [
          Alcotest.test_case "uniform formula" `Quick test_from_densities_uniform_exact;
          Alcotest.test_case "disjoint supports" `Quick test_from_densities_disjoint_supports;
          Alcotest.test_case "end-to-end accuracy" `Slow test_estimator_join_accuracy;
          Alcotest.test_case "sampling yields none" `Quick test_estimate_none_for_sampling;
        ] );
      ( "range restricted",
        [
          Alcotest.test_case "hand computed" `Quick test_exact_range_restricted_hand_computed;
          QCheck_alcotest.to_alcotest prop_range_restricted_matches_filtered_join;
          Alcotest.test_case "estimate accuracy" `Slow test_range_restricted_estimate_accuracy;
          Alcotest.test_case "empty range" `Quick test_range_restricted_empty_range;
        ] );
      ( "sample join",
        [
          Alcotest.test_case "hand computed" `Quick test_sample_join_hand_computed;
          Alcotest.test_case "no collisions" `Quick test_sample_join_no_collisions;
          Alcotest.test_case "collapses on sparse domain" `Slow
            test_sample_join_collapses_on_sparse_domain;
        ] );
    ]
