(* Tests for the kernels library: normalization, moments, primitives and
   boundary kernels. *)

module K = Kernels.Kernel
module B = Kernels.Boundary
module I = Stats.Integrate

let checkf tol = Alcotest.(check (float tol))

let integration_range k =
  match K.support_radius k with Some r -> (-.r, r) | None -> (-10.0, 10.0)

(* --- normalization and moments --- *)

let test_kernels_integrate_to_one () =
  List.iter
    (fun k ->
      let lo, hi = integration_range k in
      let mass = I.adaptive_simpson (K.eval k) ~a:lo ~b:hi in
      checkf 1e-8 (K.name k) 1.0 mass)
    K.all

let test_kernels_nonnegative () =
  List.iter
    (fun k ->
      let lo, hi = integration_range k in
      for i = 0 to 200 do
        let t = lo +. (float_of_int i /. 200.0 *. (hi -. lo)) in
        if K.eval k t < 0.0 then Alcotest.failf "%s negative at %f" (K.name k) t
      done)
    K.all

let test_kernels_symmetric () =
  List.iter
    (fun k ->
      List.iter
        (fun t -> checkf 1e-12 (K.name k) (K.eval k t) (K.eval k (-.t)))
        [ 0.1; 0.3; 0.7; 0.95 ])
    K.all

let test_second_moment_matches_numeric () =
  List.iter
    (fun k ->
      let lo, hi = integration_range k in
      let num = I.adaptive_simpson (fun t -> t *. t *. K.eval k t) ~a:lo ~b:hi in
      checkf 1e-6 (K.name k) num (K.second_moment k))
    K.all

let test_roughness_matches_numeric () =
  List.iter
    (fun k ->
      let lo, hi = integration_range k in
      let num = I.adaptive_simpson (fun t -> K.eval k t ** 2.0) ~a:lo ~b:hi in
      checkf 1e-6 (K.name k) num (K.roughness k))
    K.all

let test_epanechnikov_constants () =
  (* The paper's values: k2 = 1/5, and the primitive F_K(t) = (3t - t^3)/4
     relative to the center. *)
  checkf 1e-12 "k2" 0.2 (K.second_moment K.Epanechnikov);
  checkf 1e-12 "R(K)" 0.6 (K.roughness K.Epanechnikov);
  checkf 1e-12 "K(0)" 0.75 (K.eval K.Epanechnikov 0.0);
  checkf 1e-12 "primitive at 0.5" (0.5 +. (((3.0 *. 0.5) -. 0.125) /. 4.0))
    (K.cdf K.Epanechnikov 0.5)

(* --- primitives --- *)

let test_cdf_matches_numeric_integral () =
  List.iter
    (fun k ->
      let lo, _ = integration_range k in
      List.iter
        (fun t ->
          let num = I.adaptive_simpson (K.eval k) ~a:lo ~b:t in
          checkf 1e-7 (Printf.sprintf "%s cdf(%g)" (K.name k) t) num (K.cdf k t))
        [ -0.9; -0.4; 0.0; 0.3; 0.8 ])
    K.all

let test_cdf_limits () =
  List.iter
    (fun k ->
      checkf 1e-9 (K.name k ^ " left") 0.0 (K.cdf k (-20.0));
      checkf 1e-9 (K.name k ^ " right") 1.0 (K.cdf k 20.0);
      checkf 1e-9 (K.name k ^ " center") 0.5 (K.cdf k 0.0))
    K.all

let prop_cdf_monotone =
  let kernel_gen = QCheck.Gen.oneofl K.all in
  QCheck.Test.make ~name:"kernel cdf monotone" ~count:500
    (QCheck.make
       QCheck.Gen.(triple kernel_gen (float_range (-2.) 2.) (float_range (-2.) 2.)))
    (fun (k, x, y) ->
      let lo = Float.min x y and hi = Float.max x y in
      K.cdf k lo <= K.cdf k hi +. 1e-12)

(* --- names and helpers --- *)

let test_names_roundtrip () =
  List.iter
    (fun k ->
      match K.of_name (K.name k) with
      | Some k' -> Alcotest.(check string) "roundtrip" (K.name k) (K.name k')
      | None -> Alcotest.failf "of_name failed for %s" (K.name k))
    K.all;
  Alcotest.(check bool) "unknown" true (K.of_name "nope" = None);
  Alcotest.(check bool) "case-insensitive" true (K.of_name "GAUSSIAN" = Some K.Gaussian)

let test_effective_radius () =
  checkf 1e-12 "epanechnikov" 1.0 (K.effective_radius K.Epanechnikov);
  checkf 1e-12 "gaussian" 8.0 (K.effective_radius K.Gaussian)

let test_canonical_factor_epanechnikov () =
  (* delta0 = (R/k2^2)^(1/5) = (0.6 * 25)^(1/5) = 15^(1/5). *)
  checkf 1e-9 "delta0" (15.0 ** 0.2) (K.canonical_bandwidth_factor K.Epanechnikov)

let test_epanechnikov_is_amise_best () =
  (* The Epanechnikov kernel minimizes the AMISE constant among all kernels
     (its classical optimality). *)
  let c = K.amise_constant K.Epanechnikov in
  List.iter
    (fun k ->
      if K.amise_constant k < c -. 1e-9 then
        Alcotest.failf "%s has smaller AMISE constant" (K.name k))
    K.all

(* --- boundary kernels --- *)

let test_boundary_integrates_to_one () =
  List.iter
    (fun q ->
      let mass = I.adaptive_simpson (fun u -> B.left ~u ~q) ~a:(-1.0) ~b:q in
      checkf 1e-8 (Printf.sprintf "q=%g" q) 1.0 mass)
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let test_boundary_zero_first_moment () =
  List.iter
    (fun q ->
      let m1 = I.adaptive_simpson (fun u -> u *. B.left ~u ~q) ~a:(-1.0) ~b:q in
      checkf 1e-8 (Printf.sprintf "q=%g" q) 0.0 m1)
    [ 0.0; 0.3; 0.6; 1.0 ]

let test_boundary_q1_is_epanechnikov () =
  List.iter
    (fun u -> checkf 1e-9 "q=1 reduces to Epanechnikov" (K.eval K.Epanechnikov u) (B.left ~u ~q:1.0))
    [ -0.9; -0.2; 0.0; 0.5; 0.99 ]

let test_boundary_support () =
  checkf 1e-12 "outside right" 0.0 (B.left ~u:0.6 ~q:0.5);
  checkf 1e-12 "outside left" 0.0 (B.left ~u:(-1.1) ~q:0.5);
  Alcotest.(check bool) "inside nonzero" true (B.left ~u:0.0 ~q:0.5 > 0.0)

let test_boundary_cdf_matches_numeric () =
  List.iter
    (fun (q, u) ->
      let num = I.adaptive_simpson (fun v -> B.left ~u:v ~q) ~a:(-1.0) ~b:u in
      checkf 1e-7 (Printf.sprintf "q=%g u=%g" q u) num (B.left_cdf ~u ~q))
    [ (0.2, -0.5); (0.2, 0.1); (0.7, 0.0); (1.0, 0.5) ]

let test_boundary_cdf_limits () =
  List.iter
    (fun q ->
      checkf 1e-12 "left limit" 0.0 (B.left_cdf ~u:(-1.0) ~q);
      checkf 1e-9 "right limit" 1.0 (B.left_cdf ~u:q ~q))
    [ 0.0; 0.4; 1.0 ]

let test_boundary_right_mirror () =
  List.iter
    (fun (q, u) ->
      checkf 1e-12 "mirror" (B.left ~u:(-.u) ~q) (B.right ~u ~q);
      checkf 1e-9 "cdf complement" (1.0 -. B.left_cdf ~u:(-.u) ~q) (B.right_cdf ~u ~q))
    [ (0.3, 0.2); (0.8, -0.1); (1.0, 0.6) ]

let test_boundary_invalid_q () =
  Alcotest.check_raises "q > 1" (Invalid_argument "Boundary: q must be in [0, 1]") (fun () ->
      ignore (B.left ~u:0.0 ~q:1.5))

let () =
  Alcotest.run "kernels"
    [
      ( "normalization",
        [
          Alcotest.test_case "integrate to one" `Quick test_kernels_integrate_to_one;
          Alcotest.test_case "non-negative" `Quick test_kernels_nonnegative;
          Alcotest.test_case "symmetric" `Quick test_kernels_symmetric;
          Alcotest.test_case "second moments" `Quick test_second_moment_matches_numeric;
          Alcotest.test_case "roughness" `Quick test_roughness_matches_numeric;
          Alcotest.test_case "epanechnikov constants" `Quick test_epanechnikov_constants;
        ] );
      ( "primitive",
        [
          Alcotest.test_case "matches numeric" `Quick test_cdf_matches_numeric_integral;
          Alcotest.test_case "limits" `Quick test_cdf_limits;
          QCheck_alcotest.to_alcotest prop_cdf_monotone;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "names" `Quick test_names_roundtrip;
          Alcotest.test_case "effective radius" `Quick test_effective_radius;
          Alcotest.test_case "canonical factor" `Quick test_canonical_factor_epanechnikov;
          Alcotest.test_case "epanechnikov optimality" `Quick test_epanechnikov_is_amise_best;
        ] );
      ( "boundary",
        [
          Alcotest.test_case "integrates to one" `Quick test_boundary_integrates_to_one;
          Alcotest.test_case "zero first moment" `Quick test_boundary_zero_first_moment;
          Alcotest.test_case "q=1 is Epanechnikov" `Quick test_boundary_q1_is_epanechnikov;
          Alcotest.test_case "support" `Quick test_boundary_support;
          Alcotest.test_case "cdf matches numeric" `Quick test_boundary_cdf_matches_numeric;
          Alcotest.test_case "cdf limits" `Quick test_boundary_cdf_limits;
          Alcotest.test_case "right mirror" `Quick test_boundary_right_mirror;
          Alcotest.test_case "invalid q" `Quick test_boundary_invalid_q;
        ] );
    ]
