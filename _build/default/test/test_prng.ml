(* Tests for the prng library: determinism, ranges, stream independence. *)

module Sm = Prng.Splitmix64
module Xo = Prng.Xoshiro256pp

let check_float = Alcotest.(check (float 1e-12))

(* --- SplitMix64 --- *)

let test_sm_deterministic () =
  let a = Sm.create 1234L and b = Sm.create 1234L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sm.next a) (Sm.next b)
  done

let test_sm_seed_sensitivity () =
  let a = Sm.create 1L and b = Sm.create 2L in
  Alcotest.(check bool) "different seeds differ" true (Sm.next a <> Sm.next b)

let test_sm_known_reference () =
  (* Reference values for seed 0 from the public-domain C implementation. *)
  let g = Sm.create 0L in
  Alcotest.(check int64) "first output" 0xE220A8397B1DCDAFL (Sm.next g);
  Alcotest.(check int64) "second output" 0x6E789E6AA1B965F4L (Sm.next g)

let test_sm_copy () =
  let a = Sm.create 99L in
  ignore (Sm.next a);
  let b = Sm.copy a in
  Alcotest.(check int64) "copy replays" (Sm.next a) (Sm.next b)

let test_sm_float_range () =
  let g = Sm.create 5L in
  for _ = 1 to 10_000 do
    let f = Sm.next_float g in
    if not (f >= 0.0 && f < 1.0) then Alcotest.failf "float out of [0,1): %f" f
  done

let test_sm_below_range () =
  let g = Sm.create 6L in
  for _ = 1 to 10_000 do
    let v = Sm.next_below g 17 in
    if v < 0 || v >= 17 then Alcotest.failf "below out of range: %d" v
  done

let test_sm_below_invalid () =
  let g = Sm.create 7L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix64.next_below: bound must be positive")
    (fun () -> ignore (Sm.next_below g 0))

let test_sm_below_covers_all () =
  let g = Sm.create 8L in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Sm.next_below g 5) <- true
  done;
  Alcotest.(check bool) "all residues seen" true (Array.for_all Fun.id seen)

(* --- Xoshiro256++ --- *)

let test_xo_deterministic () =
  let a = Xo.create 42L and b = Xo.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xo.next a) (Xo.next b)
  done

let test_xo_copy_independent () =
  let a = Xo.create 42L in
  let b = Xo.copy a in
  let va = Xo.next a in
  (* advancing [a] must not affect [b] *)
  let vb = Xo.next b in
  Alcotest.(check int64) "copy replays the same value" va vb

let test_xo_float_bounds () =
  let g = Xo.create 9L in
  for _ = 1 to 10_000 do
    let f = Xo.float g in
    if not (f >= 0.0 && f < 1.0) then Alcotest.failf "float out of [0,1): %f" f
  done

let test_xo_float_mean () =
  let g = Xo.create 10L in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Xo.float g
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_xo_float_range () =
  let g = Xo.create 11L in
  for _ = 1 to 1000 do
    let f = Xo.float_range g (-3.0) 7.5 in
    if not (f >= -3.0 && f < 7.5) then Alcotest.failf "float_range out of bounds: %f" f
  done

let test_xo_float_range_invalid () =
  let g = Xo.create 11L in
  Alcotest.check_raises "inverted bounds"
    (Invalid_argument "Xoshiro256pp.float_range: requires finite lo < hi") (fun () ->
      ignore (Xo.float_range g 1.0 1.0))

let test_xo_int_below_uniformity () =
  let g = Xo.create 12L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Xo.int_below g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    buckets

let test_xo_int_range_inclusive () =
  let g = Xo.create 13L in
  let lo_seen = ref false and hi_seen = ref false in
  for _ = 1 to 10_000 do
    let v = Xo.int_range g 3 5 in
    if v < 3 || v > 5 then Alcotest.failf "int_range out of [3,5]: %d" v;
    if v = 3 then lo_seen := true;
    if v = 5 then hi_seen := true
  done;
  Alcotest.(check bool) "lo attained" true !lo_seen;
  Alcotest.(check bool) "hi attained" true !hi_seen

let test_xo_int_range_single () =
  let g = Xo.create 14L in
  Alcotest.(check int) "degenerate range" 7 (Xo.int_range g 7 7)

let test_xo_bool_balanced () =
  let g = Xo.create 15L in
  let t = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Xo.bool g then incr t
  done;
  Alcotest.(check bool) "roughly balanced" true (abs (!t - (n / 2)) < n / 20)

let test_xo_jump_changes_stream () =
  let a = Xo.create 16L in
  let b = Xo.copy a in
  Xo.jump b;
  Alcotest.(check bool) "jumped stream differs" true (Xo.next a <> Xo.next b)

let test_xo_substream_disjoint_prefixes () =
  let root = Xo.create 17L in
  let s0 = Xo.substream root 0 and s1 = Xo.substream root 1 in
  (* Substreams are 2^128 steps apart: prefixes cannot collide. *)
  let p0 = List.init 50 (fun _ -> Xo.next s0) in
  let p1 = List.init 50 (fun _ -> Xo.next s1) in
  Alcotest.(check bool) "prefixes differ" true (p0 <> p1)

let test_xo_substream_preserves_root () =
  let root = Xo.create 18L in
  let before = Xo.copy root in
  ignore (Xo.substream root 3);
  Alcotest.(check int64) "root untouched" (Xo.next before) (Xo.next root)

let test_xo_substream_invalid () =
  let root = Xo.create 19L in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Xoshiro256pp.substream: index must be non-negative") (fun () ->
      ignore (Xo.substream root (-1)))

let test_shuffle_prefix_permutation () =
  let g = Xo.create 20L in
  let a = Array.init 100 Fun.id in
  Xo.shuffle_prefix g a 100;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "full shuffle is a permutation" (Array.init 100 Fun.id) sorted

let test_shuffle_prefix_distinct () =
  let g = Xo.create 21L in
  let a = Array.init 1000 Fun.id in
  Xo.shuffle_prefix g a 50;
  let prefix = Array.sub a 0 50 in
  let module IS = Set.Make (Int) in
  let set = IS.of_list (Array.to_list prefix) in
  Alcotest.(check int) "prefix has no repeats" 50 (IS.cardinal set)

let test_shuffle_prefix_out_of_range () =
  let g = Xo.create 22L in
  let a = Array.init 10 Fun.id in
  Alcotest.check_raises "k too large"
    (Invalid_argument "Xoshiro256pp.shuffle_prefix: k out of range") (fun () ->
      Xo.shuffle_prefix g a 11)

(* qcheck properties *)

let prop_float_in_unit =
  QCheck.Test.make ~name:"xoshiro float always in [0,1)" ~count:200
    QCheck.(int64)
    (fun seed ->
      let g = Xo.create seed in
      let f = Xo.float g in
      f >= 0.0 && f < 1.0)

let prop_int_below_in_range =
  QCheck.Test.make ~name:"int_below always in [0,bound)" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Xo.create seed in
      let v = Xo.int_below g bound in
      v >= 0 && v < bound)

let prop_same_seed_same_tenth =
  QCheck.Test.make ~name:"same seed gives identical 10th draw" ~count:100
    QCheck.(int64)
    (fun seed ->
      let a = Xo.create seed and b = Xo.create seed in
      let tenth g =
        let v = ref 0L in
        for _ = 1 to 10 do
          v := Xo.next g
        done;
        !v
      in
      tenth a = tenth b)

let () =
  ignore check_float;
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_sm_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_sm_seed_sensitivity;
          Alcotest.test_case "reference values" `Quick test_sm_known_reference;
          Alcotest.test_case "copy" `Quick test_sm_copy;
          Alcotest.test_case "float range" `Quick test_sm_float_range;
          Alcotest.test_case "next_below range" `Quick test_sm_below_range;
          Alcotest.test_case "next_below invalid" `Quick test_sm_below_invalid;
          Alcotest.test_case "next_below covers residues" `Quick test_sm_below_covers_all;
        ] );
      ( "xoshiro256++",
        [
          Alcotest.test_case "deterministic" `Quick test_xo_deterministic;
          Alcotest.test_case "copy independent" `Quick test_xo_copy_independent;
          Alcotest.test_case "float bounds" `Quick test_xo_float_bounds;
          Alcotest.test_case "float mean" `Quick test_xo_float_mean;
          Alcotest.test_case "float_range bounds" `Quick test_xo_float_range;
          Alcotest.test_case "float_range invalid" `Quick test_xo_float_range_invalid;
          Alcotest.test_case "int_below uniformity" `Quick test_xo_int_below_uniformity;
          Alcotest.test_case "int_range inclusive" `Quick test_xo_int_range_inclusive;
          Alcotest.test_case "int_range single" `Quick test_xo_int_range_single;
          Alcotest.test_case "bool balanced" `Quick test_xo_bool_balanced;
          Alcotest.test_case "jump changes stream" `Quick test_xo_jump_changes_stream;
          Alcotest.test_case "substreams disjoint" `Quick test_xo_substream_disjoint_prefixes;
          Alcotest.test_case "substream preserves root" `Quick test_xo_substream_preserves_root;
          Alcotest.test_case "substream invalid" `Quick test_xo_substream_invalid;
        ] );
      ( "shuffle",
        [
          Alcotest.test_case "full shuffle permutation" `Quick test_shuffle_prefix_permutation;
          Alcotest.test_case "prefix distinct" `Quick test_shuffle_prefix_distinct;
          Alcotest.test_case "k out of range" `Quick test_shuffle_prefix_out_of_range;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_float_in_unit; prop_int_below_in_range; prop_same_seed_same_tenth ] );
    ]
