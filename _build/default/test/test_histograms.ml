(* Tests for the histograms library: the formula-(4) selectivity, bin
   assignment and the construction policies. *)

module H = Histograms.Histogram
module B = Histograms.Builders
module Ash = Histograms.Ash

let checkf tol = Alcotest.(check (float tol))

let samples10 = Array.init 10 (fun i -> float_of_int i +. 0.5) (* 0.5 .. 9.5 *)

(* --- Histogram core --- *)

let test_create_validation () =
  Alcotest.check_raises "edge count" (Invalid_argument "Histogram.create: need one more edge than counts")
    (fun () -> ignore (H.create ~edges:[| 0.0; 1.0 |] ~counts:[| 1.0; 2.0 |]));
  Alcotest.check_raises "monotone" (Invalid_argument "Histogram: edges must be strictly increasing")
    (fun () -> ignore (H.create ~edges:[| 0.0; 0.0; 1.0 |] ~counts:[| 1.0; 1.0 |]));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Histogram.create: counts must be non-negative and finite") (fun () ->
      ignore (H.create ~edges:[| 0.0; 1.0; 2.0 |] ~counts:[| 1.0; -1.0 |]));
  Alcotest.check_raises "zero total" (Invalid_argument "Histogram.create: total count must be positive")
    (fun () -> ignore (H.create ~edges:[| 0.0; 1.0 |] ~counts:[| 0.0 |]))

let test_of_samples_binning () =
  (* Edges 0,5,10: first five samples land in bin 0, rest in bin 1. *)
  let h = H.of_samples ~edges:[| 0.0; 5.0; 10.0 |] samples10 in
  Alcotest.(check (array (float 1e-12))) "counts" [| 5.0; 5.0 |] (H.counts h)

let test_of_samples_edge_value_goes_left () =
  (* Bins are (c_i, c_{i+1}]; a sample exactly on an interior edge belongs to
     the bin left of it. *)
  let h = H.of_samples ~edges:[| 0.0; 5.0; 10.0 |] [| 5.0; 6.0 |] in
  Alcotest.(check (array (float 1e-12))) "edge goes left" [| 1.0; 1.0 |] (H.counts h)

let test_of_samples_out_of_range_clamped () =
  let h = H.of_samples ~edges:[| 0.0; 5.0; 10.0 |] [| -3.0; 12.0 |] in
  Alcotest.(check (array (float 1e-12))) "clamped to border bins" [| 1.0; 1.0 |] (H.counts h)

let test_selectivity_full_range_is_one () =
  let h = H.of_samples ~edges:[| 0.0; 2.0; 7.0; 10.0 |] samples10 in
  checkf 1e-12 "full range" 1.0 (H.selectivity h ~a:0.0 ~b:10.0)

let test_selectivity_partial_bin () =
  (* One bin [0,10] with 10 samples: query [2,4] overlaps 20% of the bin. *)
  let h = H.of_samples ~edges:[| 0.0; 10.0 |] samples10 in
  checkf 1e-12 "fractional overlap" 0.2 (H.selectivity h ~a:2.0 ~b:4.0)

let test_selectivity_inverted_range () =
  let h = H.of_samples ~edges:[| 0.0; 10.0 |] samples10 in
  checkf 1e-12 "inverted" 0.0 (H.selectivity h ~a:4.0 ~b:2.0)

let test_selectivity_outside_range () =
  let h = H.of_samples ~edges:[| 0.0; 10.0 |] samples10 in
  checkf 1e-12 "fully left" 0.0 (H.selectivity h ~a:(-5.0) ~b:(-1.0));
  checkf 1e-12 "fully right" 0.0 (H.selectivity h ~a:11.0 ~b:15.0)

let test_selectivity_hand_computed () =
  (* Edges 0,2,6,10 with counts 2,4,4 (samples 0.5..9.5).  Query [1,7]:
     bin0 contributes 2 * (1/2), bin1 contributes 4 (full), bin2 contributes
     4 * (1/4); total 6/10. *)
  let h = H.of_samples ~edges:[| 0.0; 2.0; 6.0; 10.0 |] samples10 in
  checkf 1e-12 "hand computed" 0.6 (H.selectivity h ~a:1.0 ~b:7.0)

let test_density_uniform_within_bin () =
  let h = H.of_samples ~edges:[| 0.0; 2.0; 10.0 |] samples10 in
  (* Bin 0 holds 2 of 10 samples over width 2 -> density 0.1. *)
  checkf 1e-12 "bin0" 0.1 (H.density h 1.0);
  checkf 1e-12 "bin1" (8.0 /. 10.0 /. 8.0) (H.density h 5.0);
  checkf 1e-12 "outside" 0.0 (H.density h 11.0)

let test_density_integrates_to_selectivity () =
  let h = H.of_samples ~edges:[| 0.0; 3.0; 5.0; 10.0 |] samples10 in
  let integral = Stats.Integrate.simpson (H.density h) ~a:1.0 ~b:8.0 ~n:2000 in
  checkf 1e-4 "integral equals formula (4)" (H.selectivity h ~a:1.0 ~b:8.0) integral

let prop_selectivity_additive =
  QCheck.Test.make ~name:"selectivity additive over adjacent ranges" ~count:300
    QCheck.(triple (float_range 0. 10.) (float_range 0. 10.) (float_range 0. 10.))
    (fun (x, y, z) ->
      let h = H.of_samples ~edges:[| 0.0; 2.0; 6.0; 10.0 |] samples10 in
      let s = List.sort Float.compare [ x; y; z ] in
      match s with
      | [ a; b; c ] ->
        let whole = H.selectivity h ~a ~b:c in
        let parts = H.selectivity h ~a ~b +. H.selectivity h ~a:b ~b:c in
        Float.abs (whole -. parts) < 1e-9
      | _ -> false)

let prop_selectivity_monotone =
  QCheck.Test.make ~name:"selectivity monotone in b" ~count:300
    QCheck.(triple (float_range 0. 10.) (float_range 0. 10.) (float_range 0. 10.))
    (fun (a, b1, b2) ->
      let h = H.of_samples ~edges:[| 0.0; 2.0; 6.0; 10.0 |] samples10 in
      let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
      H.selectivity h ~a ~b:lo <= H.selectivity h ~a ~b:hi +. 1e-12)

(* --- Builders --- *)

let test_equi_width_edges () =
  let h = B.equi_width ~domain:(0.0, 10.0) ~bins:5 samples10 in
  Alcotest.(check int) "bins" 5 (H.bins h);
  checkf 1e-12 "mean width" 2.0 (H.mean_width h);
  Alcotest.(check (array (float 1e-12))) "counts" [| 2.0; 2.0; 2.0; 2.0; 2.0 |] (H.counts h)

let test_equi_width_invalid () =
  Alcotest.check_raises "bins" (Invalid_argument "Builders.equi_width: bins must be positive")
    (fun () -> ignore (B.equi_width ~domain:(0.0, 1.0) ~bins:0 samples10))

let test_uniform_is_one_bin () =
  let h = B.uniform ~domain:(0.0, 10.0) samples10 in
  Alcotest.(check int) "one bin" 1 (H.bins h)

let test_equi_depth_equal_counts () =
  (* 100 distinct values, 10 bins: every bin holds ~10 samples. *)
  let xs = Array.init 100 (fun i -> float_of_int i +. 0.5) in
  let h = B.equi_depth ~domain:(0.0, 100.0) ~bins:10 xs in
  Alcotest.(check bool) "equal depth" true (B.equal_bin_counts h)

let test_equi_depth_duplicates_collapse () =
  (* All samples identical: quantile edges coincide; builder degrades to a
     single bin covering the domain instead of failing. *)
  let xs = Array.make 50 5.0 in
  let h = B.equi_depth ~domain:(0.0, 10.0) ~bins:8 xs in
  Alcotest.(check bool) "few bins" true (H.bins h <= 2);
  checkf 1e-12 "total mass" 1.0 (H.selectivity h ~a:0.0 ~b:10.0)

let test_equi_depth_narrow_bins_in_dense_regions () =
  (* Heavily clustered data: the bin containing the cluster must be much
     narrower than the widest bin. *)
  let xs = Array.init 100 (fun i -> if i < 90 then 1.0 +. (0.01 *. float_of_int i) else 50.0 +. float_of_int i) in
  let h = B.equi_depth ~domain:(0.0, 200.0) ~bins:10 xs in
  let edges = H.edges h in
  let widths = Array.init (H.bins h) (fun i -> edges.(i + 1) -. edges.(i)) in
  let wmin = Array.fold_left Float.min widths.(0) widths in
  let wmax = Array.fold_left Float.max widths.(0) widths in
  Alcotest.(check bool) "adaptive widths" true (wmax /. wmin > 10.0)

let test_max_diff_splits_largest_gaps () =
  (* Two tight clusters with a huge gap: the first boundary must fall in the
     gap. *)
  let xs = Array.append (Array.init 20 (fun i -> float_of_int i *. 0.1)) (Array.init 20 (fun i -> 90.0 +. (float_of_int i *. 0.1))) in
  let h = B.max_diff ~domain:(0.0, 100.0) ~bins:2 xs in
  let edges = H.edges h in
  Alcotest.(check int) "two bins" 2 (H.bins h);
  Alcotest.(check bool) "boundary inside the gap" true (edges.(1) > 2.0 && edges.(1) < 90.0)

let test_max_diff_counts_split () =
  let xs = Array.append (Array.init 20 (fun i -> float_of_int i *. 0.1)) (Array.init 30 (fun i -> 90.0 +. (float_of_int i *. 0.1))) in
  let h = B.max_diff ~domain:(0.0, 100.0) ~bins:2 xs in
  Alcotest.(check (array (float 1e-12))) "cluster counts" [| 20.0; 30.0 |] (H.counts h)

let test_max_diff_fewer_distinct_than_bins () =
  let xs = [| 1.0; 1.0; 5.0; 5.0 |] in
  let h = B.max_diff ~domain:(0.0, 10.0) ~bins:8 xs in
  Alcotest.(check bool) "shrinks" true (H.bins h <= 2);
  checkf 1e-12 "mass" 1.0 (H.selectivity h ~a:0.0 ~b:10.0)

(* --- ASH --- *)

let test_ash_build_validation () =
  Alcotest.check_raises "shifts" (Invalid_argument "Ash.build: shifts must be positive")
    (fun () -> ignore (Ash.build ~domain:(0.0, 1.0) ~bins:4 ~shifts:0 samples10))

let test_ash_one_shift_close_to_plain_histogram () =
  (* With a single shift the ASH is one equi-width histogram (origin offset
     by -h, same width); estimates agree on ranges aligned with both grids. *)
  let ash = Ash.build ~domain:(0.0, 10.0) ~bins:5 ~shifts:1 samples10 in
  let h = B.equi_width ~domain:(0.0, 10.0) ~bins:5 samples10 in
  checkf 1e-9 "aligned range" (H.selectivity h ~a:2.0 ~b:8.0) (Ash.selectivity ash ~a:2.0 ~b:8.0)

let test_ash_full_domain_mass () =
  let ash = Ash.build ~domain:(0.0, 10.0) ~bins:5 ~shifts:10 samples10 in
  (* Mild boundary leakage is allowed (bins straddle the borders). *)
  let mass = Ash.selectivity ash ~a:0.0 ~b:10.0 in
  Alcotest.(check bool) "near one" true (mass > 0.85 && mass <= 1.0 +. 1e-9)

let test_ash_smoother_than_histogram () =
  (* The ASH density changes in steps of h/m rather than h: sampling the
     density on a fine grid, the maximum jump must be smaller. *)
  let xs = Array.init 200 (fun i -> 5.0 +. (0.02 *. float_of_int i)) in
  let h = B.equi_width ~domain:(0.0, 10.0) ~bins:10 xs in
  let ash = Ash.build ~domain:(0.0, 10.0) ~bins:10 ~shifts:10 xs in
  let max_jump f =
    let worst = ref 0.0 in
    for i = 1 to 999 do
      let x0 = float_of_int (i - 1) *. 0.01 in
      let x1 = float_of_int i *. 0.01 in
      worst := Float.max !worst (Float.abs (f x1 -. f x0))
    done;
    !worst
  in
  Alcotest.(check bool) "smaller jumps" true
    (max_jump (Ash.density ash) < max_jump (H.density h) /. 2.0)

let test_ash_accessors () =
  let ash = Ash.build ~domain:(0.0, 10.0) ~bins:5 ~shifts:7 samples10 in
  Alcotest.(check int) "shifts" 7 (Ash.shifts ash);
  checkf 1e-12 "bin width" 2.0 (Ash.bin_width ash)

let prop_ash_selectivity_bounds =
  QCheck.Test.make ~name:"ASH selectivity in [0,1]" ~count:200
    QCheck.(pair (float_range 0. 10.) (float_range 0. 10.))
    (fun (x, y) ->
      let ash = Ash.build ~domain:(0.0, 10.0) ~bins:4 ~shifts:5 samples10 in
      let s = Ash.selectivity ash ~a:(Float.min x y) ~b:(Float.max x y) in
      s >= 0.0 && s <= 1.0 +. 1e-9)

(* --- Frequency polygon --- *)

module FP = Histograms.Frequency_polygon

let test_fp_total_mass () =
  let fp = FP.build ~domain:(0.0, 10.0) ~bins:5 samples10 in
  (* Mass over the extended support (half a bin beyond each border) is 1. *)
  checkf 1e-12 "total mass" 1.0 (FP.selectivity fp ~a:(-1.0) ~b:11.0)

let test_fp_continuous_no_jumps () =
  (* Unlike the histogram, the polygon's density has no jumps: adjacent
     evaluations differ by at most slope * dx. *)
  let xs = Array.init 200 (fun i -> 5.0 +. (0.02 *. float_of_int i)) in
  let fp = FP.build ~domain:(0.0, 10.0) ~bins:10 xs in
  let worst = ref 0.0 in
  for i = 1 to 999 do
    let x0 = float_of_int (i - 1) *. 0.01 and x1 = float_of_int i *. 0.01 in
    worst := Float.max !worst (Float.abs (FP.density fp x1 -. FP.density fp x0))
  done;
  let h = Histograms.Builders.equi_width ~domain:(0.0, 10.0) ~bins:10 xs in
  let worst_hist = ref 0.0 in
  for i = 1 to 999 do
    let x0 = float_of_int (i - 1) *. 0.01 and x1 = float_of_int i *. 0.01 in
    worst_hist := Float.max !worst_hist (Float.abs (H.density h x1 -. H.density h x0))
  done;
  Alcotest.(check bool) "polygon much smoother" true (!worst < !worst_hist /. 10.0)

let test_fp_density_at_bin_center_matches_histogram () =
  let fp = FP.build ~domain:(0.0, 10.0) ~bins:5 samples10 in
  let h = Histograms.Builders.equi_width ~domain:(0.0, 10.0) ~bins:5 samples10 in
  (* At a bin center the interpolation passes through the histogram
     height. *)
  checkf 1e-12 "knot value" (H.density h 3.0) (FP.density fp 3.0)

let test_fp_selectivity_matches_numeric_integral () =
  let fp = FP.build ~domain:(0.0, 10.0) ~bins:4 samples10 in
  let num = Stats.Integrate.simpson (FP.density fp) ~a:1.3 ~b:7.9 ~n:4000 in
  checkf 1e-6 "closed form equals integral" num (FP.selectivity fp ~a:1.3 ~b:7.9)

let test_fp_of_histogram_requires_equi_width () =
  let h = H.of_samples ~edges:[| 0.0; 2.0; 10.0 |] samples10 in
  Alcotest.check_raises "non-equi-width"
    (Invalid_argument "Frequency_polygon.of_histogram: histogram must be equi-width") (fun () ->
      ignore (FP.of_histogram h))

let prop_fp_monotone =
  QCheck.Test.make ~name:"frequency polygon selectivity monotone" ~count:200
    QCheck.(triple (float_range 0. 10.) (float_range 0. 10.) (float_range 0. 10.))
    (fun (a, b1, b2) ->
      let fp = FP.build ~domain:(0.0, 10.0) ~bins:5 samples10 in
      let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
      FP.selectivity fp ~a ~b:lo <= FP.selectivity fp ~a ~b:hi +. 1e-12)

(* --- V-optimal --- *)

module V = Histograms.V_optimal

let test_voh_micro_frequencies () =
  let freqs = V.micro_frequencies ~granularity:5 ~domain:(0.0, 10.0) samples10 in
  Alcotest.(check (array (float 1e-12))) "two per cell" [| 2.0; 2.0; 2.0; 2.0; 2.0 |] freqs

let test_voh_partition_sse_hand_computed () =
  (* freqs [0;0;10;10]: split at 2 gives SSE 0; no split gives 100. *)
  let freqs = [| 0.0; 0.0; 10.0; 10.0 |] in
  checkf 1e-9 "perfect split" 0.0 (V.partition_sse freqs ~boundaries:[ 2 ]);
  checkf 1e-9 "no split" 100.0 (V.partition_sse freqs ~boundaries:[])

let test_voh_finds_perfect_split () =
  (* Two flat plateaus of different heights: with 2 bins the DP must place
     the boundary exactly at the step and achieve (near-)zero SSE. *)
  let xs =
    Array.append
      (Array.init 300 (fun i -> float_of_int (i mod 50) /. 50.0 *. 5.0))
      (Array.init 100 (fun i -> 5.0 +. (float_of_int (i mod 50) /. 50.0 *. 5.0)))
  in
  let h, cost = V.build_with_cost ~granularity:10 ~domain:(0.0, 10.0) ~bins:2 xs in
  Alcotest.(check int) "two bins" 2 (H.bins h);
  checkf 1e-9 "boundary at the step" 5.0 (H.edges h).(1);
  checkf 1e-9 "zero SSE" 0.0 cost

let test_voh_dp_matches_brute_force () =
  (* Tiny instance: compare the DP cost with exhaustive enumeration of all
     two-boundary partitions. *)
  let rng = Prng.Xoshiro256pp.create 33L in
  let xs = Array.init 100 (fun _ -> Prng.Xoshiro256pp.float_range rng 0.0 10.0) in
  let granularity = 8 in
  let freqs = V.micro_frequencies ~granularity ~domain:(0.0, 10.0) xs in
  let _, dp_cost = V.build_with_cost ~granularity ~domain:(0.0, 10.0) ~bins:3 xs in
  let best = ref Float.infinity in
  for b1 = 1 to granularity - 2 do
    for b2 = b1 + 1 to granularity - 1 do
      best := Float.min !best (V.partition_sse freqs ~boundaries:[ b1; b2 ])
    done
  done;
  checkf 1e-9 "DP optimal" !best dp_cost

let test_voh_beats_equi_width_objective () =
  (* On clustered data the V-optimal SSE must not exceed the equi-width
     partition's SSE at the same bin count. *)
  let rng = Prng.Xoshiro256pp.create 34L in
  let xs =
    Array.init 500 (fun i ->
        if i mod 3 = 0 then Prng.Xoshiro256pp.float_range rng 0.0 2.0
        else Prng.Xoshiro256pp.float_range rng 7.0 8.0)
  in
  let granularity = 60 and bins = 6 in
  let freqs = V.micro_frequencies ~granularity ~domain:(0.0, 10.0) xs in
  let _, dp_cost = V.build_with_cost ~granularity ~domain:(0.0, 10.0) ~bins xs in
  let equi_boundaries = List.init (bins - 1) (fun i -> (i + 1) * granularity / bins) in
  let equi_cost = V.partition_sse freqs ~boundaries:equi_boundaries in
  Alcotest.(check bool)
    (Printf.sprintf "dp %.1f <= equi %.1f" dp_cost equi_cost)
    true (dp_cost <= equi_cost +. 1e-9)

let test_voh_validation () =
  Alcotest.check_raises "granularity" (Invalid_argument "V_optimal.build: granularity must be >= bins")
    (fun () -> ignore (V.build ~granularity:4 ~domain:(0.0, 1.0) ~bins:8 samples10))

(* --- Serial histogram --- *)

module S = Histograms.Serial

let test_serial_build_validation () =
  Alcotest.check_raises "bins" (Invalid_argument "Serial.build: bins must be positive")
    (fun () -> ignore (S.build ~bins:0 samples10));
  Alcotest.check_raises "empty" (Invalid_argument "Serial.build: empty sample") (fun () ->
      ignore (S.build ~bins:4 [||]))

let test_serial_full_range_mass () =
  let s = S.build ~bins:3 samples10 in
  checkf 1e-12 "mass" 1.0 (S.selectivity s ~a:0.0 ~b:10.0)

let test_serial_is_serial () =
  (* With duplicated values of distinct frequencies and one bucket per
     distinct value, the grouping must be perfectly serial. *)
  let xs = Array.concat [ Array.make 6 1.0; Array.make 3 5.0; Array.make 1 9.0 ] in
  let s = S.build ~bins:3 xs in
  Alcotest.(check int) "buckets" 3 (S.bucket_count s);
  checkf 1e-12 "zero spread" 0.0 (S.frequency_spread s)

let test_serial_exact_on_grouped_frequencies () =
  (* Frequencies 6,3,1 in their own buckets: every single-value query is
     answered exactly. *)
  let xs = Array.concat [ Array.make 6 1.0; Array.make 3 5.0; Array.make 1 9.0 ] in
  let s = S.build ~bins:3 xs in
  checkf 1e-12 "heavy value" 0.6 (S.selectivity s ~a:1.0 ~b:1.0);
  checkf 1e-12 "medium value" 0.3 (S.selectivity s ~a:5.0 ~b:5.0);
  checkf 1e-12 "light value" 0.1 (S.selectivity s ~a:9.0 ~b:9.0)

let test_serial_averaging_error () =
  (* Frequencies 6 and 2 forced into one bucket average to 4: both member
     values are misestimated, the serial histogram's intrinsic error. *)
  let xs = Array.concat [ Array.make 6 1.0; Array.make 2 5.0 ] in
  let s = S.build ~bins:1 xs in
  checkf 1e-12 "averaged" 0.5 (S.selectivity s ~a:1.0 ~b:1.0)

let test_serial_storage_is_distinct_count () =
  let s = S.build ~bins:4 samples10 in
  Alcotest.(check int) "stores every distinct value" 10 (S.storage_entries s)

let test_serial_on_distinct_data_equals_sampling () =
  (* All frequencies 1: the serial estimate equals pure sampling for every
     range, the taxonomy point of Section 2. *)
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let s = S.build ~bins:7 xs in
  List.iter
    (fun (a, b) ->
      let sampling =
        float_of_int
          (Array.length (Array.of_list (List.filter (fun x -> x >= a && x <= b) (Array.to_list xs))))
        /. 100.0
      in
      checkf 1e-12 "equals sampling" sampling (S.selectivity s ~a ~b))
    [ (0.0, 9.0); (13.0, 50.5); (90.0, 99.0) ]

(* --- Wavelet histogram --- *)

module W = Histograms.Wavelet

let test_haar_roundtrip () =
  let v = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
  let back = W.haar_inverse (W.haar_forward v) in
  Array.iteri (fun i x -> checkf 1e-9 "roundtrip" v.(i) x) back

let test_haar_constant_vector () =
  (* A constant vector has only the average coefficient. *)
  let c = W.haar_forward (Array.make 8 5.0) in
  checkf 1e-12 "average" 5.0 c.(0);
  for i = 1 to 7 do
    checkf 1e-12 "zero detail" 0.0 c.(i)
  done

let test_haar_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Wavelet.haar_forward: length must be a positive power of two") (fun () ->
      ignore (W.haar_forward [| 1.0; 2.0; 3.0 |]))

let test_compress_all_coefficients_exact () =
  let v = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
  let back = W.compress ~coefficients:8 v in
  Array.iteri (fun i x -> checkf 1e-9 "lossless" v.(i) x) back

let test_compress_step_function_few_coefficients () =
  (* A 2-level step function needs only 2 Haar coefficients. *)
  let v = Array.init 16 (fun i -> if i < 8 then 10.0 else 2.0) in
  let back = W.compress ~coefficients:2 v in
  Array.iteri (fun i x -> checkf 1e-9 "step recovered" v.(i) x) back

let test_compress_error_decreases_with_budget () =
  let rng = Prng.Xoshiro256pp.create 55L in
  let v = Array.init 64 (fun _ -> Prng.Xoshiro256pp.float_range rng 0.0 10.0) in
  let err k =
    let back = W.compress ~coefficients:k v in
    let acc = ref 0.0 in
    Array.iteri (fun i x -> acc := !acc +. ((x -. back.(i)) ** 2.0)) v;
    !acc
  in
  Alcotest.(check bool) "8 <= 4 budget error" true (err 8 <= err 4 +. 1e-9);
  Alcotest.(check bool) "32 <= 8 budget error" true (err 32 <= err 8 +. 1e-9);
  checkf 1e-9 "full budget lossless" 0.0 (err 64)

let test_compress_pads_non_power_of_two () =
  let v = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let back = W.compress ~coefficients:8 v in
  Alcotest.(check int) "length preserved" 5 (Array.length back);
  Array.iteri (fun i x -> checkf 1e-9 "lossless" v.(i) x) back

let test_wavelet_histogram_mass_and_bounds () =
  let h = W.build ~granularity:64 ~domain:(0.0, 10.0) ~coefficients:16 samples10 in
  checkf 1e-9 "mass" 1.0 (H.selectivity h ~a:0.0 ~b:10.0);
  let s = H.selectivity h ~a:2.0 ~b:4.0 in
  Alcotest.(check bool) "plausible" true (s > 0.0 && s < 1.0)

let () =
  Alcotest.run "histograms"
    [
      ( "core",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "binning" `Quick test_of_samples_binning;
          Alcotest.test_case "edge goes left" `Quick test_of_samples_edge_value_goes_left;
          Alcotest.test_case "out of range clamped" `Quick test_of_samples_out_of_range_clamped;
          Alcotest.test_case "full range mass" `Quick test_selectivity_full_range_is_one;
          Alcotest.test_case "partial bin" `Quick test_selectivity_partial_bin;
          Alcotest.test_case "inverted range" `Quick test_selectivity_inverted_range;
          Alcotest.test_case "outside range" `Quick test_selectivity_outside_range;
          Alcotest.test_case "hand computed" `Quick test_selectivity_hand_computed;
          Alcotest.test_case "density uniform within bin" `Quick test_density_uniform_within_bin;
          Alcotest.test_case "density integrates" `Quick test_density_integrates_to_selectivity;
          QCheck_alcotest.to_alcotest prop_selectivity_additive;
          QCheck_alcotest.to_alcotest prop_selectivity_monotone;
        ] );
      ( "builders",
        [
          Alcotest.test_case "equi-width edges" `Quick test_equi_width_edges;
          Alcotest.test_case "equi-width invalid" `Quick test_equi_width_invalid;
          Alcotest.test_case "uniform one bin" `Quick test_uniform_is_one_bin;
          Alcotest.test_case "equi-depth equal counts" `Quick test_equi_depth_equal_counts;
          Alcotest.test_case "equi-depth duplicates" `Quick test_equi_depth_duplicates_collapse;
          Alcotest.test_case "equi-depth adaptive widths" `Quick
            test_equi_depth_narrow_bins_in_dense_regions;
          Alcotest.test_case "max-diff gap split" `Quick test_max_diff_splits_largest_gaps;
          Alcotest.test_case "max-diff counts" `Quick test_max_diff_counts_split;
          Alcotest.test_case "max-diff few distinct" `Quick test_max_diff_fewer_distinct_than_bins;
        ] );
      ( "ash",
        [
          Alcotest.test_case "validation" `Quick test_ash_build_validation;
          Alcotest.test_case "single shift" `Quick test_ash_one_shift_close_to_plain_histogram;
          Alcotest.test_case "full-domain mass" `Quick test_ash_full_domain_mass;
          Alcotest.test_case "smoother than histogram" `Quick test_ash_smoother_than_histogram;
          Alcotest.test_case "accessors" `Quick test_ash_accessors;
          QCheck_alcotest.to_alcotest prop_ash_selectivity_bounds;
        ] );
      ( "frequency polygon",
        [
          Alcotest.test_case "total mass" `Quick test_fp_total_mass;
          Alcotest.test_case "continuous" `Quick test_fp_continuous_no_jumps;
          Alcotest.test_case "knot values" `Quick test_fp_density_at_bin_center_matches_histogram;
          Alcotest.test_case "closed form integral" `Quick
            test_fp_selectivity_matches_numeric_integral;
          Alcotest.test_case "requires equi-width" `Quick test_fp_of_histogram_requires_equi_width;
          QCheck_alcotest.to_alcotest prop_fp_monotone;
        ] );
      ( "v-optimal",
        [
          Alcotest.test_case "micro frequencies" `Quick test_voh_micro_frequencies;
          Alcotest.test_case "sse hand computed" `Quick test_voh_partition_sse_hand_computed;
          Alcotest.test_case "finds perfect split" `Quick test_voh_finds_perfect_split;
          Alcotest.test_case "dp matches brute force" `Quick test_voh_dp_matches_brute_force;
          Alcotest.test_case "beats equi-width objective" `Quick
            test_voh_beats_equi_width_objective;
          Alcotest.test_case "validation" `Quick test_voh_validation;
        ] );
      ( "serial",
        [
          Alcotest.test_case "validation" `Quick test_serial_build_validation;
          Alcotest.test_case "full-range mass" `Quick test_serial_full_range_mass;
          Alcotest.test_case "serial grouping" `Quick test_serial_is_serial;
          Alcotest.test_case "exact on grouped frequencies" `Quick
            test_serial_exact_on_grouped_frequencies;
          Alcotest.test_case "averaging error" `Quick test_serial_averaging_error;
          Alcotest.test_case "storage cost" `Quick test_serial_storage_is_distinct_count;
          Alcotest.test_case "equals sampling on distinct data" `Quick
            test_serial_on_distinct_data_equals_sampling;
        ] );
      ( "wavelet",
        [
          Alcotest.test_case "haar roundtrip" `Quick test_haar_roundtrip;
          Alcotest.test_case "constant vector" `Quick test_haar_constant_vector;
          Alcotest.test_case "validation" `Quick test_haar_validation;
          Alcotest.test_case "lossless with full budget" `Quick
            test_compress_all_coefficients_exact;
          Alcotest.test_case "step with 2 coefficients" `Quick
            test_compress_step_function_few_coefficients;
          Alcotest.test_case "error decreases with budget" `Quick
            test_compress_error_decreases_with_budget;
          Alcotest.test_case "padding" `Quick test_compress_pads_non_power_of_two;
          Alcotest.test_case "histogram mass" `Quick test_wavelet_histogram_mass_and_bounds;
        ] );
    ]
