(* End-to-end integration tests: fixed-seed mini-versions of the paper's
   experiments asserting the qualitative findings of Section 5 hold. *)

module Est = Selest.Estimator
module E = Workload.Experiment
module G = Workload.Generate
module M = Workload.Metrics

let seed = 42L

(* Shared datasets, built once. *)
let n20 = lazy (Data.Catalog.find ~seed "n(20)")
let u20 = lazy (Data.Catalog.find ~seed "u(20)")
let e20 = lazy (Data.Catalog.find ~seed "e(20)")
let n10 = lazy (Data.Catalog.find ~seed "n(10)")
let arap1 = lazy (Data.Catalog.find ~seed "arap1")

let mre ?(n = 2000) ?(fraction = 0.01) ?(count = 300) ds spec =
  let sample = E.sample_of ds ~seed:7L ~n in
  let queries = G.size_separated ds ~seed:9L ~fraction ~count in
  E.mre_of_spec ds ~sample ~queries spec

let kernel_ns boundary =
  Est.Kernel
    { kernel = Kernels.Kernel.Epanechnikov; boundary; bandwidth = Est.Normal_scale_bandwidth }

(* --- Figure 6: consistency in the sample size --- *)

let test_error_decreases_with_sample_size () =
  let ds = Lazy.force n20 in
  List.iter
    (fun spec ->
      let small = mre ~n:200 ds spec in
      let large = mre ~n:5000 ds spec in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.3f (n=200) > %.3f (n=5000)" (Est.spec_name spec) small large)
        true (large < small))
    [ Est.Sampling; Est.Equi_width Est.Normal_scale_bins; kernel_ns Kde.Estimator.No_treatment ]

(* --- Figure 6's ordering: kernel < histogram < sampling on smooth data --- *)

let test_method_ordering_on_normal_data () =
  let ds = Lazy.force n20 in
  let m_sampling = mre ds Est.Sampling in
  let m_ewh = mre ds (Est.Equi_width Est.Normal_scale_bins) in
  let m_kernel = mre ds (kernel_ns Kde.Estimator.Boundary_kernels) in
  Alcotest.(check bool)
    (Printf.sprintf "kernel %.3f < histogram %.3f" m_kernel m_ewh)
    true (m_kernel < m_ewh);
  Alcotest.(check bool)
    (Printf.sprintf "histogram %.3f < sampling %.3f" m_ewh m_sampling)
    true (m_ewh < m_sampling)

(* --- Figure 4: U-shaped error versus the number of bins --- *)

let test_u_shape_in_bin_count () =
  let ds = Lazy.force n20 in
  let at k = mre ds (Est.Equi_width (Est.Fixed_bins k)) in
  let too_few = at 2 in
  let near_opt = at 40 in
  let too_many = at 4000 in
  Alcotest.(check bool)
    (Printf.sprintf "2 bins %.3f worse than 40 bins %.3f" too_few near_opt)
    true
    (too_few > (2.0 *. near_opt));
  Alcotest.(check bool)
    (Printf.sprintf "4000 bins %.3f worse than 40 bins %.3f" too_many near_opt)
    true
    (too_many > (1.5 *. near_opt))

(* --- Figure 7: error decreases with query size --- *)

let test_error_decreases_with_query_size () =
  let ds = Lazy.force n20 in
  let spec = Est.Equi_width Est.Normal_scale_bins in
  let small = mre ~fraction:0.01 ds spec in
  let large = mre ~fraction:0.10 ds spec in
  Alcotest.(check bool)
    (Printf.sprintf "10%% queries %.3f easier than 1%% %.3f" large small)
    true (large < small)

(* --- Figure 5: larger domains are harder --- *)

let test_larger_domain_higher_error () =
  (* Section 5.2.1 compares the files at favourable bin counts; the
     high-duplicate small-domain file achieves a lower error there because
     its truncated density is flatter and each value is supported by many
     records. *)
  let best ds =
    List.fold_left
      (fun acc k -> Float.min acc (mre ds (Est.Equi_width (Est.Fixed_bins k))))
      Float.infinity [ 5; 10; 20; 40; 100 ]
  in
  let m_coarse = best (Lazy.force n10) in
  let m_fine = best (Lazy.force n20) in
  Alcotest.(check bool)
    (Printf.sprintf "p=20 best %.3f > p=10 best %.3f" m_fine m_coarse)
    true (m_fine > m_coarse)

(* --- Figures 3/10: boundary treatment --- *)

let test_boundary_treatment_reduces_edge_error () =
  let ds = Lazy.force u20 in
  let sample = E.sample_of ds ~seed:7L ~n:2000 in
  let queries = G.positional_sweep ds ~fraction:0.01 ~count:200 in
  let edge_error spec =
    let est = Est.build spec ~domain:(E.domain_of ds) sample in
    let errs = M.error_by_position ds (fun ~a ~b -> Est.selectivity est ~a ~b) queries in
    (* Mean relative error over the outermost 5% of positions on each side. *)
    let k = Array.length errs / 20 in
    let acc = ref 0.0 in
    for i = 0 to k - 1 do
      acc := !acc +. errs.(i).M.relative_error;
      acc := !acc +. errs.(Array.length errs - 1 - i).M.relative_error
    done;
    !acc /. float_of_int (2 * k)
  in
  let untreated = edge_error (kernel_ns Kde.Estimator.No_treatment) in
  let reflected = edge_error (kernel_ns Kde.Estimator.Reflection) in
  let bk = edge_error (kernel_ns Kde.Estimator.Boundary_kernels) in
  Alcotest.(check bool)
    (Printf.sprintf "reflection %.4f < untreated %.4f" reflected untreated)
    true (reflected < untreated);
  Alcotest.(check bool)
    (Printf.sprintf "boundary kernels %.4f < untreated %.4f" bk untreated)
    true (bk < untreated)

(* --- Figure 11: normal scale fails on real data, plug-in recovers --- *)

let test_plug_in_rescues_real_data () =
  let ds = Lazy.force arap1 in
  let m_ns = mre ds (kernel_ns Kde.Estimator.Boundary_kernels) in
  let m_dpi = mre ds Est.kernel_defaults in
  Alcotest.(check bool)
    (Printf.sprintf "DPI2 %.3f much better than NS %.3f" m_dpi m_ns)
    true
    (m_dpi < (0.6 *. m_ns))

(* --- Figure 12: hybrid wins on real-like data --- *)

let test_hybrid_wins_on_real_data () =
  let ds = Lazy.force arap1 in
  let m_kernel = mre ds Est.kernel_defaults in
  let m_hybrid = mre ds Est.hybrid_defaults in
  let m_ewh = mre ds (Est.Equi_width Est.Normal_scale_bins) in
  Alcotest.(check bool)
    (Printf.sprintf "hybrid %.3f <= kernel %.3f" m_hybrid m_kernel)
    true
    (m_hybrid <= m_kernel *. 1.05);
  Alcotest.(check bool)
    (Printf.sprintf "hybrid %.3f < EWH %.3f" m_hybrid m_ewh)
    true (m_hybrid < m_ewh)

(* --- Figure 12 on synthetic data: kernel estimators win --- *)

let test_kernel_wins_on_synthetic_data () =
  List.iter
    (fun lazy_ds ->
      let ds = Lazy.force lazy_ds in
      let m_kernel = mre ds (kernel_ns Kde.Estimator.Boundary_kernels) in
      let m_ewh = mre ds (Est.Equi_width Est.Normal_scale_bins) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: kernel %.3f < EWH %.3f" (Data.Dataset.name ds) m_kernel m_ewh)
        true (m_kernel < m_ewh))
    [ u20; n20; e20 ]

(* --- Figure 8: the uniform estimator loses on skewed data --- *)

let test_uniform_estimator_loses_on_skewed_data () =
  let ds = Lazy.force e20 in
  let m_uniform = mre ds Est.Uniform_assumption in
  let m_ewh = mre ds (Est.Equi_width Est.Normal_scale_bins) in
  Alcotest.(check bool)
    (Printf.sprintf "uniform %.2f at least 5x worse than EWH %.2f" m_uniform m_ewh)
    true
    (m_uniform > (5.0 *. m_ewh))

(* --- Figure 8: EWH beats EDH and MDH on large metric domains --- *)

let test_ewh_beats_edh_and_mdh () =
  let ds = Lazy.force n20 in
  let m_ewh = mre ds (Est.Equi_width (Est.Fixed_bins 40)) in
  let m_edh = mre ds (Est.Equi_depth { bins = 40 }) in
  let m_mdh = mre ds (Est.Max_diff { bins = 40 }) in
  Alcotest.(check bool)
    (Printf.sprintf "EWH %.3f <= EDH %.3f" m_ewh m_edh)
    true (m_ewh <= m_edh +. 0.01);
  Alcotest.(check bool)
    (Printf.sprintf "EWH %.3f considerably better than MDH %.3f" m_ewh m_mdh)
    true
    (m_ewh < (0.75 *. m_mdh))

(* --- Figure 9: the normal-scale rule lands near the oracle --- *)

let test_normal_scale_near_oracle_on_normal_data () =
  let ds = Lazy.force n20 in
  let sample = E.sample_of ds ~seed:7L ~n:2000 in
  let queries = G.size_separated ds ~seed:9L ~fraction:0.01 ~count:200 in
  let _, best = E.oracle_bin_count ~max_bins:400 ds ~sample ~queries in
  let ns = E.mre_of_spec ds ~sample ~queries (Est.Equi_width Est.Normal_scale_bins) in
  (* The paper reports the NS rule within ~3 points of the optimum. *)
  Alcotest.(check bool)
    (Printf.sprintf "NS %.3f within 0.05 of oracle %.3f" ns best)
    true
    (ns -. best < 0.05)

(* --- ASH close to kernel on smooth data (Figure 12) --- *)

let test_ash_close_to_kernel_on_synthetic () =
  let ds = Lazy.force n20 in
  let m_kernel = mre ds (kernel_ns Kde.Estimator.Boundary_kernels) in
  let m_ash = mre ds (Est.Ash { bins = Est.Normal_scale_bins; shifts = 10 }) in
  Alcotest.(check bool)
    (Printf.sprintf "ASH %.3f within 2x of kernel %.3f" m_ash m_kernel)
    true
    (m_ash < (2.0 *. m_kernel))

(* --- extension shapes --- *)

let test_frequency_polygon_beats_histogram_on_smooth_data () =
  (* The O(n^-4/5) vs O(n^-2/3) rate: at the same bins the polygon must be
     at least as accurate on smooth data. *)
  let ds = Lazy.force n20 in
  let m_ewh = mre ds (Est.Equi_width (Est.Fixed_bins 40)) in
  let m_fp = mre ds (Est.Frequency_polygon (Est.Fixed_bins 40)) in
  Alcotest.(check bool)
    (Printf.sprintf "FP %.3f <= EWH %.3f" m_fp m_ewh)
    true
    (m_fp <= m_ewh +. 0.005)

let test_v_optimal_adapts_to_clusters () =
  (* On the clustered real-like file the variance-minimizing boundaries
     must beat the practical equi-width configuration (normal-scale bins)
     decisively, and also at least match equal-width at the same bin
     count. *)
  let ds = Lazy.force arap1 in
  let m_ewh_ns = mre ds (Est.Equi_width Est.Normal_scale_bins) in
  let m_ewh_40 = mre ds (Est.Equi_width (Est.Fixed_bins 40)) in
  let m_voh = mre ds (Est.V_optimal { bins = 40 }) in
  Alcotest.(check bool)
    (Printf.sprintf "VOH %.3f < 0.7 x EWH(NS) %.3f" m_voh m_ewh_ns)
    true
    (m_voh < 0.7 *. m_ewh_ns);
  Alcotest.(check bool)
    (Printf.sprintf "VOH %.3f <= EWH(40) %.3f" m_voh m_ewh_40)
    true (m_voh <= m_ewh_40)

let test_wavelet_competitive_with_ewh () =
  (* At an equal coefficient budget the wavelet synopsis should stay within
     2.5x of the equi-width histogram on smooth data and beat it on the
     clustered file. *)
  let smooth = Lazy.force n20 in
  let m_ewh = mre smooth (Est.Equi_width (Est.Fixed_bins 40)) in
  let m_wave = mre smooth (Est.Wavelet_spec { coefficients = 40 }) in
  Alcotest.(check bool)
    (Printf.sprintf "wavelet %.3f within 2.5x of EWH %.3f" m_wave m_ewh)
    true
    (m_wave < 2.5 *. m_ewh);
  let clustered = Lazy.force arap1 in
  let m_ewh_c = mre clustered (Est.Equi_width (Est.Fixed_bins 40)) in
  let m_wave_c = mre clustered (Est.Wavelet_spec { coefficients = 40 }) in
  Alcotest.(check bool)
    (Printf.sprintf "wavelet %.3f < EWH %.3f on clusters" m_wave_c m_ewh_c)
    true
    (m_wave_c < m_ewh_c)

let () =
  Alcotest.run "integration"
    [
      ( "paper shapes",
        [
          Alcotest.test_case "fig 6: consistency in n" `Slow test_error_decreases_with_sample_size;
          Alcotest.test_case "fig 6: method ordering" `Slow test_method_ordering_on_normal_data;
          Alcotest.test_case "fig 4: U-shape in bins" `Slow test_u_shape_in_bin_count;
          Alcotest.test_case "fig 7: query size" `Slow test_error_decreases_with_query_size;
          Alcotest.test_case "fig 5: domain cardinality" `Slow test_larger_domain_higher_error;
          Alcotest.test_case "figs 3/10: boundary treatment" `Slow
            test_boundary_treatment_reduces_edge_error;
          Alcotest.test_case "fig 11: plug-in rescues real data" `Slow
            test_plug_in_rescues_real_data;
          Alcotest.test_case "fig 12: hybrid wins on real data" `Slow
            test_hybrid_wins_on_real_data;
          Alcotest.test_case "fig 12: kernel wins on synthetic" `Slow
            test_kernel_wins_on_synthetic_data;
          Alcotest.test_case "fig 8: uniform loses" `Slow
            test_uniform_estimator_loses_on_skewed_data;
          Alcotest.test_case "fig 8: EWH beats EDH and MDH" `Slow test_ewh_beats_edh_and_mdh;
          Alcotest.test_case "fig 9: NS near oracle" `Slow
            test_normal_scale_near_oracle_on_normal_data;
          Alcotest.test_case "fig 12: ASH close to kernel" `Slow
            test_ash_close_to_kernel_on_synthetic;
        ] );
      ( "extension shapes",
        [
          Alcotest.test_case "FP beats EWH on smooth data" `Slow
            test_frequency_polygon_beats_histogram_on_smooth_data;
          Alcotest.test_case "VOH adapts to clusters" `Slow test_v_optimal_adapts_to_clusters;
          Alcotest.test_case "wavelet competitive" `Slow test_wavelet_competitive_with_ewh;
        ] );
    ]
