(* Tests for the kde library: Algorithm 1, indexed vs scan agreement,
   boundary policies and the Gaussian pilot. *)

module E = Kde.Estimator
module P = Kde.Pilot
module K = Kernels.Kernel
module Xo = Prng.Xoshiro256pp

let checkf tol = Alcotest.(check (float tol))

let uniform_sample seed n =
  let rng = Xo.create seed in
  Array.init n (fun _ -> Xo.float_range rng 0.0 100.0)

let central_sample seed n =
  (* Data well away from the boundaries of [0, 100]. *)
  let rng = Xo.create seed in
  Array.init n (fun _ -> Xo.float_range rng 40.0 60.0)

(* --- creation --- *)

let test_create_validation () =
  Alcotest.check_raises "bad h"
    (Invalid_argument "Kde.Estimator.create: bandwidth must be positive and finite") (fun () ->
      ignore (E.create ~domain:(0.0, 1.0) ~h:0.0 [| 0.5 |]));
  Alcotest.check_raises "empty domain" (Invalid_argument "Kde.Estimator.create: empty domain")
    (fun () -> ignore (E.create ~domain:(1.0, 1.0) ~h:0.1 [| 0.5 |]));
  Alcotest.check_raises "empty sample" (Invalid_argument "Kde.Estimator.create: empty sample")
    (fun () -> ignore (E.create ~domain:(0.0, 1.0) ~h:0.1 [||]));
  Alcotest.check_raises "boundary kernels need compact kernel"
    (Invalid_argument
       "Kde.Estimator.create: boundary kernels require a unit-support kernel (Epanechnikov \
        family)") (fun () ->
      ignore
        (E.create ~kernel:K.Gaussian ~boundary:E.Boundary_kernels ~domain:(0.0, 1.0) ~h:0.01
           [| 0.5 |]));
  Alcotest.check_raises "boundary kernels need 2h <= width"
    (Invalid_argument "Kde.Estimator.create: boundary kernels require 2h <= domain width")
    (fun () ->
      ignore (E.create ~boundary:E.Boundary_kernels ~domain:(0.0, 1.0) ~h:0.6 [| 0.5 |]))

let test_accessors () =
  let est = E.create ~kernel:K.Biweight ~boundary:E.Reflection ~domain:(0.0, 10.0) ~h:1.0 [| 5.0; 2.0 |] in
  Alcotest.(check string) "kernel" "biweight" (K.name (E.kernel est));
  Alcotest.(check string) "boundary" "reflection" (E.boundary_policy_name (E.boundary est));
  checkf 1e-12 "bandwidth" 1.0 (E.bandwidth est);
  Alcotest.(check int) "n" 2 (E.sample_size est);
  Alcotest.(check (array (float 1e-12))) "samples sorted" [| 2.0; 5.0 |] (E.samples est)

let test_samples_clamped_to_domain () =
  let est = E.create ~domain:(0.0, 10.0) ~h:1.0 [| -5.0; 15.0; 3.0 |] in
  Alcotest.(check (array (float 1e-12))) "clamped" [| 0.0; 3.0; 10.0 |] (E.samples est)

(* --- single-sample closed form --- *)

let test_single_sample_epanechnikov () =
  (* One sample at 50, h = 10: selectivity of [40, 60] is the full kernel
     mass, of [50, 60] exactly half, of [45, 50] = F(0) - F(-0.5). *)
  let est = E.create ~domain:(0.0, 100.0) ~h:10.0 [| 50.0 |] in
  checkf 1e-12 "full mass" 1.0 (E.selectivity est ~a:40.0 ~b:60.0);
  checkf 1e-12 "half mass" 0.5 (E.selectivity est ~a:50.0 ~b:60.0);
  checkf 1e-12 "partial"
    (K.cdf K.Epanechnikov 0.0 -. K.cdf K.Epanechnikov (-0.5))
    (E.selectivity est ~a:45.0 ~b:50.0)

let test_density_single_sample () =
  let est = E.create ~domain:(0.0, 100.0) ~h:10.0 [| 50.0 |] in
  checkf 1e-12 "peak" (0.75 /. 10.0) (E.density est 50.0);
  checkf 1e-12 "at support edge" 0.0 (E.density est 60.0);
  checkf 1e-12 "outside domain" 0.0 (E.density est 101.0)

(* --- indexed vs scan agreement (Algorithm 1 equivalence) --- *)

let test_indexed_matches_scan () =
  let xs = uniform_sample 1L 500 in
  List.iter
    (fun boundary ->
      let est = E.create ~boundary ~domain:(0.0, 100.0) ~h:3.0 xs in
      List.iter
        (fun (a, b) ->
          checkf 1e-10
            (Printf.sprintf "%s [%g,%g]" (E.boundary_policy_name boundary) a b)
            (E.selectivity_scan est ~a ~b) (E.selectivity est ~a ~b))
        [ (0.0, 1.0); (0.0, 100.0); (47.0, 53.0); (99.0, 100.0); (10.0, 90.0); (50.0, 50.5) ])
    [ E.No_treatment; E.Reflection; E.Boundary_kernels ]

let prop_indexed_matches_scan_random =
  QCheck.Test.make ~name:"indexed equals scan on random queries" ~count:100
    QCheck.(pair (float_range 0. 100.) (float_range 0. 100.))
    (fun (x, y) ->
      let xs = uniform_sample 2L 300 in
      let est = E.create ~domain:(0.0, 100.0) ~h:2.0 xs in
      let a = Float.min x y and b = Float.max x y in
      Float.abs (E.selectivity est ~a ~b -. E.selectivity_scan est ~a ~b) < 1e-10)

(* --- selectivity properties --- *)

let prop_selectivity_bounds =
  QCheck.Test.make ~name:"kernel selectivity in [0,1]" ~count:200
    QCheck.(pair (float_range 0. 100.) (float_range 0. 100.))
    (fun (x, y) ->
      let xs = uniform_sample 3L 200 in
      let est = E.create ~boundary:E.Boundary_kernels ~domain:(0.0, 100.0) ~h:4.0 xs in
      let s = E.selectivity est ~a:(Float.min x y) ~b:(Float.max x y) in
      s >= 0.0 && s <= 1.0)

let prop_selectivity_monotone =
  QCheck.Test.make ~name:"kernel selectivity monotone in b" ~count:200
    QCheck.(triple (float_range 0. 100.) (float_range 0. 100.) (float_range 0. 100.))
    (fun (a, b1, b2) ->
      let xs = uniform_sample 4L 200 in
      let est = E.create ~domain:(0.0, 100.0) ~h:4.0 xs in
      let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
      E.selectivity est ~a ~b:lo <= E.selectivity est ~a ~b:hi +. 1e-9)

let test_selectivity_inverted () =
  let est = E.create ~domain:(0.0, 100.0) ~h:5.0 (uniform_sample 5L 100) in
  checkf 1e-12 "inverted" 0.0 (E.selectivity est ~a:60.0 ~b:40.0)

let test_selectivity_matches_density_integral () =
  let xs = uniform_sample 6L 200 in
  List.iter
    (fun boundary ->
      let est = E.create ~boundary ~domain:(0.0, 100.0) ~h:5.0 xs in
      let integral =
        Stats.Integrate.simpson (E.density est) ~a:20.0 ~b:45.0 ~n:4000
      in
      checkf 1e-4
        (E.boundary_policy_name boundary)
        integral
        (E.selectivity est ~a:20.0 ~b:45.0))
    [ E.No_treatment; E.Reflection; E.Boundary_kernels ]

let test_boundary_strip_quadrature_accuracy () =
  (* The Gauss-Legendre strip integration must agree with high-resolution
     adaptive integration of the boundary-corrected density up to the
     documented ~1e-3 kink error — far below the statistical estimation
     error. *)
  let xs = uniform_sample 20L 400 in
  let est = E.create ~boundary:E.Boundary_kernels ~domain:(0.0, 100.0) ~h:6.0 xs in
  List.iter
    (fun (a, b) ->
      let direct = E.selectivity est ~a ~b in
      let numeric = Stats.Integrate.adaptive_simpson (E.density est) ~a ~b in
      checkf 1e-3 (Printf.sprintf "strip [%g,%g]" a b) numeric direct)
    [ (0.0, 2.0); (0.0, 6.0); (1.5, 4.5); (95.0, 100.0); (97.3, 99.9) ]

(* --- mass / boundary behaviour --- *)

let test_mass_central_data_is_one () =
  (* When the data sits far from the boundaries no mass is lost. *)
  let est = E.create ~domain:(0.0, 100.0) ~h:5.0 (central_sample 7L 300) in
  checkf 1e-9 "no boundary loss" 1.0 (E.mass est)

let test_mass_lost_without_treatment () =
  (* Uniform data loses about h/(2*width) of mass at each boundary. *)
  let est = E.create ~domain:(0.0, 100.0) ~h:8.0 (uniform_sample 8L 2000) in
  let m = E.mass est in
  Alcotest.(check bool) "visible loss" true (m < 0.99);
  Alcotest.(check bool) "but bounded" true (m > 0.9)

let test_mass_restored_by_reflection () =
  let xs = uniform_sample 8L 2000 in
  let est = E.create ~boundary:E.Reflection ~domain:(0.0, 100.0) ~h:8.0 xs in
  checkf 1e-9 "reflection restores mass" 1.0 (E.mass est)

let test_boundary_kernels_reduce_boundary_error () =
  (* The punchline of Section 3.2.1: on uniform data, the estimate of a
     boundary-flush query must be far better with treatment than without. *)
  let xs = uniform_sample 9L 2000 in
  let h = 5.0 in
  let truth = 0.03 in
  let q_a = 0.0 and q_b = 3.0 in
  let err boundary =
    let est = E.create ~boundary ~domain:(0.0, 100.0) ~h xs in
    Float.abs (E.selectivity est ~a:q_a ~b:q_b -. truth)
  in
  let e_none = err E.No_treatment in
  let e_refl = err E.Reflection in
  let e_bk = err E.Boundary_kernels in
  Alcotest.(check bool)
    (Printf.sprintf "reflection better (%.4f vs %.4f)" e_refl e_none)
    true (e_refl < e_none);
  Alcotest.(check bool)
    (Printf.sprintf "boundary kernels better (%.4f vs %.4f)" e_bk e_none)
    true (e_bk < e_none)

let test_interior_unaffected_by_policy () =
  (* Away from the boundaries all three policies agree exactly. *)
  let xs = uniform_sample 10L 500 in
  let h = 3.0 in
  let s boundary =
    let est = E.create ~boundary ~domain:(0.0, 100.0) ~h xs in
    E.selectivity est ~a:40.0 ~b:60.0
  in
  let s0 = s E.No_treatment in
  checkf 1e-10 "reflection same" s0 (s E.Reflection);
  checkf 1e-10 "boundary kernels same" s0 (s E.Boundary_kernels)

let test_gaussian_kernel_estimator () =
  (* The machinery must work for the infinite-support kernel too. *)
  let xs = central_sample 11L 500 in
  let est = E.create ~kernel:K.Gaussian ~domain:(0.0, 100.0) ~h:2.0 xs in
  let s = E.selectivity est ~a:40.0 ~b:60.0 in
  (* Gaussian tails spread a few percent of the mass outside the data
     range. *)
  Alcotest.(check bool) "covers the data" true (s > 0.88 && s <= 1.0)

(* --- pilot --- *)

let test_pilot_validation () =
  Alcotest.check_raises "bad h"
    (Invalid_argument "Kde.Pilot.create: bandwidth must be positive and finite") (fun () ->
      ignore (P.create ~h:(-1.0) [| 1.0 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Kde.Pilot.create: empty sample") (fun () ->
      ignore (P.create ~h:1.0 [||]))

let test_pilot_density_integrates_to_one () =
  let xs = central_sample 12L 300 in
  let p = P.create ~h:2.0 xs in
  let mass = Stats.Integrate.simpson (P.density p) ~a:0.0 ~b:100.0 ~n:2000 in
  checkf 1e-6 "mass" 1.0 mass

let test_pilot_derivatives_match_finite_differences () =
  let xs = central_sample 13L 200 in
  let p = P.create ~h:3.0 xs in
  let eps = 1e-4 in
  List.iter
    (fun x ->
      let d1_fd = (P.density p (x +. eps) -. P.density p (x -. eps)) /. (2.0 *. eps) in
      checkf 1e-5 "first derivative" d1_fd (P.deriv1 p x);
      let d2_fd =
        (P.density p (x +. eps) -. (2.0 *. P.density p x) +. P.density p (x -. eps))
        /. (eps *. eps)
      in
      checkf 1e-3 "second derivative" d2_fd (P.deriv2 p x))
    [ 45.0; 50.0; 55.0 ]

let test_pilot_roughness_matches_numeric () =
  let xs = central_sample 14L 200 in
  let p = P.create ~h:3.0 xs in
  let num_d1 =
    Stats.Integrate.simpson (fun x -> P.deriv1 p x ** 2.0) ~a:0.0 ~b:100.0 ~n:4000
  in
  let num_d2 =
    Stats.Integrate.simpson (fun x -> P.deriv2 p x ** 2.0) ~a:0.0 ~b:100.0 ~n:4000
  in
  let v1 = P.roughness_deriv1 p and v2 = P.roughness_deriv2 p in
  Alcotest.(check bool) "int f'^2 matches" true (Float.abs (v1 -. num_d1) /. v1 < 1e-3);
  Alcotest.(check bool) "int f''^2 matches" true (Float.abs (v2 -. num_d2) /. v2 < 1e-3)

let test_pilot_roughness_normal_reference () =
  (* On a large normal sample with a small pilot bandwidth, int f''^2 should
     approach the closed form 3 / (8 sqrt pi sigma^5). *)
  let rng = Xo.create 15L in
  let xs =
    Array.init 4000 (fun _ ->
        let u1 = 1.0 -. Xo.float rng and u2 = Xo.float rng in
        sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  let p = P.create ~h:0.25 xs in
  let expected = 3.0 /. (8.0 *. 1.7724538509055159) in
  let v = P.roughness_deriv2 p in
  Alcotest.(check bool)
    (Printf.sprintf "close to closed form (%.4f vs %.4f)" v expected)
    true
    (Float.abs (v -. expected) /. expected < 0.25)

let () =
  Alcotest.run "kde"
    [
      ( "creation",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "clamping" `Quick test_samples_clamped_to_domain;
        ] );
      ( "closed form",
        [
          Alcotest.test_case "single sample selectivity" `Quick test_single_sample_epanechnikov;
          Alcotest.test_case "single sample density" `Quick test_density_single_sample;
        ] );
      ( "algorithm 1",
        [
          Alcotest.test_case "indexed matches scan" `Quick test_indexed_matches_scan;
          QCheck_alcotest.to_alcotest prop_indexed_matches_scan_random;
        ] );
      ( "selectivity",
        [
          QCheck_alcotest.to_alcotest prop_selectivity_bounds;
          QCheck_alcotest.to_alcotest prop_selectivity_monotone;
          Alcotest.test_case "inverted" `Quick test_selectivity_inverted;
          Alcotest.test_case "matches density integral" `Quick
            test_selectivity_matches_density_integral;
          Alcotest.test_case "boundary strip quadrature" `Quick
            test_boundary_strip_quadrature_accuracy;
        ] );
      ( "boundary",
        [
          Alcotest.test_case "central data mass one" `Quick test_mass_central_data_is_one;
          Alcotest.test_case "mass lost untreated" `Quick test_mass_lost_without_treatment;
          Alcotest.test_case "reflection restores mass" `Quick test_mass_restored_by_reflection;
          Alcotest.test_case "treatments reduce boundary error" `Quick
            test_boundary_kernels_reduce_boundary_error;
          Alcotest.test_case "interior unaffected" `Quick test_interior_unaffected_by_policy;
          Alcotest.test_case "gaussian kernel" `Quick test_gaussian_kernel_estimator;
        ] );
      ( "pilot",
        [
          Alcotest.test_case "validation" `Quick test_pilot_validation;
          Alcotest.test_case "density mass" `Quick test_pilot_density_integrates_to_one;
          Alcotest.test_case "derivatives" `Quick test_pilot_derivatives_match_finite_differences;
          Alcotest.test_case "roughness vs numeric" `Quick test_pilot_roughness_matches_numeric;
          Alcotest.test_case "roughness normal reference" `Slow
            test_pilot_roughness_normal_reference;
        ] );
    ]
