(* Tests for the hybrid library: change-point detection and the partitioned
   kernel estimator. *)

module CP = Hybrid.Change_point
module Hb = Hybrid.Partitioned
module Xo = Prng.Xoshiro256pp

let checkf tol = Alcotest.(check (float tol))

(* A density with one hard change point at 50: uniform mass 0.8 on [0, 50),
   uniform mass 0.2 on [50, 100). *)
let step_sample seed n =
  let rng = Xo.create seed in
  Array.init n (fun _ ->
      if Xo.float rng < 0.8 then Xo.float_range rng 0.0 50.0
      else Xo.float_range rng 50.0 100.0)

(* Two tight clusters separated by a desert. *)
let cluster_sample seed n =
  let rng = Xo.create seed in
  Array.init n (fun _ ->
      if Xo.bool rng then Xo.float_range rng 10.0 20.0 else Xo.float_range rng 80.0 85.0)

let smooth_sample seed n =
  let rng = Xo.create seed in
  Array.init n (fun _ ->
      let u1 = 1.0 -. Xo.float rng and u2 = Xo.float rng in
      50.0 +. (8.0 *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)))

(* --- change point detection --- *)

let test_detect_validation () =
  Alcotest.check_raises "empty domain"
    (Invalid_argument "Change_point.curvature_profile: empty domain") (fun () ->
      ignore (CP.detect ~domain:(1.0, 1.0) [| 0.5 |]));
  Alcotest.check_raises "empty sample"
    (Invalid_argument "Change_point.curvature_profile: empty sample") (fun () ->
      ignore (CP.detect ~domain:(0.0, 1.0) [||]))

let test_detect_finds_step () =
  let xs = step_sample 1L 2000 in
  let points = CP.detect ~domain:(0.0, 100.0) xs in
  Alcotest.(check bool) "found at least one" true (points <> []);
  let nearest =
    List.fold_left (fun acc p -> Float.min acc (Float.abs (p -. 50.0))) Float.infinity points
  in
  Alcotest.(check bool)
    (Printf.sprintf "one near 50 (closest %.1f away)" nearest)
    true (nearest < 6.0)

let test_detect_sorted_and_separated () =
  let xs = cluster_sample 2L 2000 in
  let config = { CP.default_config with max_change_points = 6 } in
  let points = CP.detect ~config ~domain:(0.0, 100.0) xs in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "sorted" true (a < b);
      Alcotest.(check bool) "separated" true (b -. a >= 0.02 *. 100.0);
      check_sorted rest
    | _ -> ()
  in
  check_sorted points

let test_detect_respects_max () =
  let xs = cluster_sample 3L 2000 in
  let config = { CP.default_config with max_change_points = 2 } in
  let points = CP.detect ~config ~domain:(0.0, 100.0) xs in
  Alcotest.(check bool) "at most 2" true (List.length points <= 2)

let test_detect_respects_min_segment_samples () =
  let xs = step_sample 4L 2000 in
  let config = { CP.default_config with min_samples_per_segment = 400 } in
  let points = CP.detect ~config ~domain:(0.0, 100.0) xs in
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let boundaries = (0.0 :: points) @ [ 100.0 ] in
  let rec check = function
    | a :: (b :: _ as rest) ->
      let c =
        Stats.Array_util.float_upper_bound sorted b - Stats.Array_util.float_lower_bound sorted a
      in
      Alcotest.(check bool) (Printf.sprintf "segment [%.0f,%.0f] has %d" a b c) true (c >= 400);
      check rest
    | _ -> ()
  in
  check boundaries

let test_curvature_profile_shape () =
  let xs = step_sample 5L 1000 in
  let profile = CP.curvature_profile ~domain:(0.0, 100.0) xs in
  Alcotest.(check int) "grid size" 512 (Array.length profile);
  Array.iter
    (fun (x, v) ->
      if x < 0.0 || x > 100.0 then Alcotest.failf "x out of domain: %f" x;
      if v < 0.0 then Alcotest.failf "negative curvature magnitude: %f" v)
    profile

(* --- hybrid estimator --- *)

let test_build_validation () =
  Alcotest.check_raises "empty sample" (Invalid_argument "Hybrid.build: empty sample") (fun () ->
      ignore (Hb.build ~domain:(0.0, 1.0) [||]));
  Alcotest.check_raises "empty domain" (Invalid_argument "Hybrid.build: empty domain") (fun () ->
      ignore (Hb.build ~domain:(1.0, 0.0) [| 0.5 |]))

let test_partition_is_partition () =
  let xs = cluster_sample 6L 2000 in
  let t = Hb.build ~domain:(0.0, 100.0) xs in
  let edges = Hb.partition t in
  checkf 1e-12 "starts at lo" 0.0 edges.(0);
  checkf 1e-12 "ends at hi" 100.0 edges.(Array.length edges - 1);
  for i = 1 to Array.length edges - 1 do
    if not (edges.(i) > edges.(i - 1)) then Alcotest.fail "edges not increasing"
  done;
  Alcotest.(check int) "bin count consistent" (Array.length edges - 1) (Hb.bin_count t)

let test_full_domain_mass () =
  let xs = step_sample 7L 2000 in
  let t = Hb.build ~domain:(0.0, 100.0) xs in
  let mass = Hb.selectivity t ~a:0.0 ~b:100.0 in
  Alcotest.(check bool) (Printf.sprintf "mass %.4f near 1" mass) true (mass > 0.97 && mass <= 1.0)

let test_selectivity_bounds_and_inverted () =
  let xs = step_sample 8L 1000 in
  let t = Hb.build ~domain:(0.0, 100.0) xs in
  checkf 1e-12 "inverted" 0.0 (Hb.selectivity t ~a:60.0 ~b:40.0);
  let s = Hb.selectivity t ~a:10.0 ~b:90.0 in
  Alcotest.(check bool) "bounds" true (s >= 0.0 && s <= 1.0)

let prop_selectivity_monotone =
  QCheck.Test.make ~name:"hybrid selectivity monotone in b" ~count:100
    QCheck.(triple (float_range 0. 100.) (float_range 0. 100.) (float_range 0. 100.))
    (fun (a, b1, b2) ->
      let xs = step_sample 9L 1000 in
      let t = Hb.build ~domain:(0.0, 100.0) xs in
      let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
      Hb.selectivity t ~a ~b:lo <= Hb.selectivity t ~a ~b:hi +. 1e-9)

let test_density_nonnegative_and_integrates () =
  let xs = step_sample 10L 2000 in
  let t = Hb.build ~domain:(0.0, 100.0) xs in
  for i = 0 to 200 do
    let x = float_of_int i *. 0.5 in
    if Hb.density t x < 0.0 then Alcotest.failf "negative density at %f" x
  done;
  let integral = Stats.Integrate.simpson (Hb.density t) ~a:0.0 ~b:100.0 ~n:4000 in
  Alcotest.(check bool)
    (Printf.sprintf "integral %.3f near mass" integral)
    true
    (Float.abs (integral -. Hb.selectivity t ~a:0.0 ~b:100.0) < 0.02)

let test_hybrid_beats_plain_kernel_on_step () =
  (* The design goal (Section 3.3): near a hard change point the hybrid's
     partitioned estimate beats one global NS bandwidth. *)
  let xs = step_sample 11L 2000 in
  let truth a b =
    (* True step density: 0.8 mass on [0,50), 0.2 on [50,100). *)
    let seg lo hi w =
      let a' = Float.max a lo and b' = Float.min b hi in
      if a' >= b' then 0.0 else w *. ((b' -. a') /. (hi -. lo))
    in
    seg 0.0 50.0 0.8 +. seg 50.0 100.0 0.2
  in
  let h_ns =
    Bandwidth.Normal_scale.bandwidth_of_samples ~kernel:Kernels.Kernel.Epanechnikov xs
  in
  let plain =
    Kde.Estimator.create ~boundary:Kde.Estimator.Boundary_kernels ~domain:(0.0, 100.0)
      ~h:(Float.min h_ns 49.0) xs
  in
  let hyb = Hb.build ~domain:(0.0, 100.0) xs in
  (* Compare on queries straddling the change point. *)
  let queries = [ (46.0, 54.0); (48.0, 52.0); (45.0, 50.0); (50.0, 55.0) ] in
  let err f =
    List.fold_left
      (fun acc (a, b) -> acc +. Float.abs (f a b -. truth a b))
      0.0 queries
  in
  let e_plain = err (fun a b -> Kde.Estimator.selectivity plain ~a ~b) in
  let e_hyb = err (fun a b -> Hb.selectivity hyb ~a ~b) in
  Alcotest.(check bool)
    (Printf.sprintf "hybrid %.4f <= plain %.4f" e_hyb e_plain)
    true (e_hyb <= e_plain)

let test_smooth_data_few_bins () =
  (* On smooth unimodal data the partition stays within the change-point
     budget (a normal density still has genuine curvature maxima, so some
     splits are expected and harmless). *)
  let xs = smooth_sample 12L 2000 in
  let t = Hb.build ~domain:(0.0, 100.0) xs in
  let budget = Hb.default_config.Hb.change_points.Hybrid.Change_point.max_change_points in
  Alcotest.(check bool)
    (Printf.sprintf "within budget (%d bins)" (Hb.bin_count t))
    true
    (Hb.bin_count t <= budget + 1)

let test_min_bin_count_merging () =
  (* With a very high merge threshold everything collapses into one bin. *)
  let xs = cluster_sample 13L 500 in
  let config = { Hb.default_config with min_bin_count = 10_000 } in
  let t = Hb.build ~config ~domain:(0.0, 100.0) xs in
  Alcotest.(check int) "single bin" 1 (Hb.bin_count t)

let test_tiny_sample_uniform_fallback () =
  (* Nine samples: below the kernel-bin threshold, the estimator must still
     answer queries via the uniform fallback. *)
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0 |] in
  let t = Hb.build ~domain:(0.0, 100.0) xs in
  let s = Hb.selectivity t ~a:0.0 ~b:50.0 in
  checkf 1e-9 "uniform half" 0.5 s

let test_duplicate_heavy_sample () =
  (* All-duplicate samples have zero scale; must not crash. *)
  let xs = Array.make 300 42.0 in
  let t = Hb.build ~domain:(0.0, 100.0) xs in
  let s = Hb.selectivity t ~a:0.0 ~b:100.0 in
  Alcotest.(check bool) "mass" true (s > 0.9 && s <= 1.0)

let () =
  Alcotest.run "hybrid"
    [
      ( "change points",
        [
          Alcotest.test_case "validation" `Quick test_detect_validation;
          Alcotest.test_case "finds step" `Quick test_detect_finds_step;
          Alcotest.test_case "sorted and separated" `Quick test_detect_sorted_and_separated;
          Alcotest.test_case "respects max" `Quick test_detect_respects_max;
          Alcotest.test_case "respects min segment" `Quick
            test_detect_respects_min_segment_samples;
          Alcotest.test_case "curvature profile" `Quick test_curvature_profile_shape;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "validation" `Quick test_build_validation;
          Alcotest.test_case "partition" `Quick test_partition_is_partition;
          Alcotest.test_case "full-domain mass" `Quick test_full_domain_mass;
          Alcotest.test_case "bounds and inverted" `Quick test_selectivity_bounds_and_inverted;
          QCheck_alcotest.to_alcotest prop_selectivity_monotone;
          Alcotest.test_case "density" `Quick test_density_nonnegative_and_integrates;
          Alcotest.test_case "beats plain kernel on step" `Quick
            test_hybrid_beats_plain_kernel_on_step;
          Alcotest.test_case "smooth data few bins" `Quick test_smooth_data_few_bins;
          Alcotest.test_case "merging" `Quick test_min_bin_count_merging;
          Alcotest.test_case "tiny sample fallback" `Quick test_tiny_sample_uniform_fallback;
          Alcotest.test_case "duplicate-heavy sample" `Quick test_duplicate_heavy_sample;
        ] );
    ]
