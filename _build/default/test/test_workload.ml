(* Tests for the workload library: query generation, metrics and the
   experiment harness. *)

module Q = Workload.Query
module G = Workload.Generate
module M = Workload.Metrics
module E = Workload.Experiment
module Ds = Data.Dataset

let checkf tol = Alcotest.(check (float tol))

let dataset =
  (* Deterministic small-domain dataset for metric arithmetic. *)
  Data.Generate.generate Data.Generate.Normal_family ~bits:12 ~count:20_000 ~seed:5L

(* --- Query --- *)

let test_query_make_validation () =
  Alcotest.check_raises "inverted" (Invalid_argument "Query.make: requires finite lo <= hi")
    (fun () -> ignore (Q.make ~lo:2.0 ~hi:1.0));
  Alcotest.check_raises "nan" (Invalid_argument "Query.make: requires finite lo <= hi")
    (fun () -> ignore (Q.make ~lo:Float.nan ~hi:1.0))

let test_query_accessors () =
  let q = Q.make ~lo:10.0 ~hi:30.0 in
  checkf 1e-12 "width" 20.0 (Q.width q);
  checkf 1e-12 "center" 20.0 (Q.center q);
  Alcotest.(check bool) "contains lo" true (Q.contains q 10.0);
  Alcotest.(check bool) "contains hi" true (Q.contains q 30.0);
  Alcotest.(check bool) "outside" false (Q.contains q 31.0)

(* --- Generate --- *)

let test_size_separated_widths () =
  let qs = G.size_separated dataset ~seed:1L ~fraction:0.01 ~count:100 in
  Alcotest.(check int) "count" 100 (Array.length qs);
  (* Integer query width: round(0.01 * 4096) = 41 values. *)
  Array.iter (fun q -> checkf 1e-9 "width" 41.0 (Q.width q)) qs

let test_size_separated_half_integer_bounds () =
  let qs = G.size_separated dataset ~seed:1L ~fraction:0.01 ~count:50 in
  Array.iter
    (fun (q : Q.t) ->
      if not (Float.is_integer (q.lo +. 0.5) && Float.is_integer (q.hi -. 0.5)) then
        Alcotest.failf "bounds not half-integer: [%f, %f]" q.lo q.hi)
    qs

let test_size_separated_in_domain () =
  let qs = G.size_separated dataset ~seed:2L ~fraction:0.10 ~count:200 in
  let hi = float_of_int (Ds.domain_size dataset) -. 0.5 in
  Array.iter
    (fun (q : Q.t) ->
      if q.lo < -0.5 || q.hi > hi then Alcotest.failf "query [%f, %f] clips the domain" q.lo q.hi)
    qs

let test_size_separated_follows_data () =
  (* Query centers follow the (normal) data distribution: most centers land
     in the middle half of the domain.  Uses the reference-width p = 20
     file, where the normal shape is not truncated away. *)
  let dataset = Data.Generate.generate Data.Generate.Normal_family ~bits:20 ~count:50_000 ~seed:6L in
  let qs = G.size_separated dataset ~seed:3L ~fraction:0.01 ~count:500 in
  let domain = float_of_int (Ds.domain_size dataset) in
  let central =
    Array.fold_left
      (fun acc q ->
        let c = Q.center q in
        if c > 0.25 *. domain && c < 0.75 *. domain then acc + 1 else acc)
      0 qs
  in
  Alcotest.(check bool) "centers concentrated" true (central > 450)

let test_size_separated_deterministic () =
  let a = G.size_separated dataset ~seed:4L ~fraction:0.02 ~count:50 in
  let b = G.size_separated dataset ~seed:4L ~fraction:0.02 ~count:50 in
  Alcotest.(check bool) "same seed same queries" true (a = b)

let test_size_separated_validation () =
  Alcotest.check_raises "fraction" (Invalid_argument "Generate.size_separated: fraction must be in (0, 1]")
    (fun () -> ignore (G.size_separated dataset ~seed:1L ~fraction:0.0 ~count:10));
  Alcotest.check_raises "count" (Invalid_argument "Generate.size_separated: count must be positive")
    (fun () -> ignore (G.size_separated dataset ~seed:1L ~fraction:0.01 ~count:0))

let test_positional_sweep_coverage () =
  let qs = G.positional_sweep dataset ~fraction:0.01 ~count:101 in
  Alcotest.(check int) "count" 101 (Array.length qs);
  checkf 1e-9 "first flush left" (-0.5) qs.(0).Q.lo;
  let hi = float_of_int (Ds.domain_size dataset) -. 0.5 in
  checkf 1e-6 "last flush right" hi qs.(100).Q.hi;
  (* Positions increase monotonically. *)
  for i = 1 to 100 do
    if qs.(i).Q.lo <= qs.(i - 1).Q.lo then Alcotest.fail "not increasing"
  done

let test_paper_constants () =
  Alcotest.(check (list (float 1e-12))) "fractions" [ 0.01; 0.02; 0.05; 0.10 ] G.paper_fractions;
  Alcotest.(check int) "count" 1000 G.paper_count

(* --- Metrics --- *)

let tiny_ds = Ds.create ~name:"tiny" ~bits:4 [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |]

let test_metrics_hand_computed () =
  (* Estimator always answers 0.5, i.e. 5 records.  Query [1,10] truth 10:
     relative error 0.5; query [1,5] truth 5: error 0. *)
  let est ~a:_ ~b:_ = 0.5 in
  let queries = [| Q.make ~lo:1.0 ~hi:10.0; Q.make ~lo:1.0 ~hi:5.0 |] in
  let s = M.evaluate tiny_ds est queries in
  checkf 1e-12 "mre" 0.25 s.M.mre;
  checkf 1e-12 "mae" 2.5 s.M.mae;
  checkf 1e-12 "mean signed" (-2.5) s.M.mean_signed;
  checkf 1e-12 "max relative" 0.5 s.M.max_relative;
  Alcotest.(check int) "evaluated" 2 s.M.evaluated;
  Alcotest.(check int) "skipped" 0 s.M.skipped_empty

let test_metrics_skips_empty_truth () =
  let est ~a:_ ~b:_ = 0.1 in
  (* [11, 14] holds no records (values are 1..10 in a 16-wide domain). *)
  let queries = [| Q.make ~lo:11.0 ~hi:14.0; Q.make ~lo:1.0 ~hi:10.0 |] in
  let s = M.evaluate tiny_ds est queries in
  Alcotest.(check int) "skipped" 1 s.M.skipped_empty;
  Alcotest.(check int) "evaluated" 1 s.M.evaluated;
  (* MAE over both queries: |1 - 0| for the empty one, |1 - 10| for the
     full one. *)
  checkf 1e-12 "mae includes empty" 5.0 s.M.mae

let test_metrics_perfect_estimator () =
  let est ~a ~b = Ds.exact_selectivity tiny_ds ~lo:a ~hi:b in
  let queries = [| Q.make ~lo:2.0 ~hi:7.0; Q.make ~lo:0.0 ~hi:15.0 |] in
  let s = M.evaluate tiny_ds est queries in
  checkf 1e-12 "zero error" 0.0 s.M.mre;
  checkf 1e-12 "zero mae" 0.0 s.M.mae

let test_metrics_empty_queries () =
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.evaluate: empty query array")
    (fun () -> ignore (M.evaluate tiny_ds (fun ~a:_ ~b:_ -> 0.0) [||]))

let test_error_by_position () =
  let est ~a:_ ~b:_ = 0.0 in
  let queries = [| Q.make ~lo:1.0 ~hi:3.0 |] in
  let errs = M.error_by_position tiny_ds est queries in
  Alcotest.(check int) "one entry" 1 (Array.length errs);
  checkf 1e-12 "position" 2.0 errs.(0).M.position;
  checkf 1e-12 "signed" (-3.0) errs.(0).M.signed_error;
  checkf 1e-12 "relative" 1.0 errs.(0).M.relative_error

(* --- Experiment --- *)

let test_domain_of () =
  let lo, hi = E.domain_of dataset in
  checkf 1e-12 "lo" (-0.5) lo;
  checkf 1e-12 "hi" 4095.5 hi

let test_sample_of_deterministic () =
  let a = E.sample_of dataset ~seed:1L ~n:100 in
  let b = E.sample_of dataset ~seed:1L ~n:100 in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check int) "size" 100 (Array.length a)

let test_mre_of_spec_runs () =
  let sample = E.sample_of dataset ~seed:2L ~n:500 in
  let queries = G.size_separated dataset ~seed:3L ~fraction:0.05 ~count:100 in
  let mre = E.mre_of_spec dataset ~sample ~queries (Selest.Estimator.Equi_width (Selest.Estimator.Fixed_bins 20)) in
  Alcotest.(check bool) (Printf.sprintf "sane MRE %.3f" mre) true (mre >= 0.0 && mre < 1.0)

let test_compare_specs_shape () =
  let sample = E.sample_of dataset ~seed:4L ~n:500 in
  let queries = G.size_separated dataset ~seed:5L ~fraction:0.05 ~count:50 in
  let results =
    E.compare_specs dataset ~sample ~queries
      Selest.Estimator.[ Sampling; Uniform_assumption ]
  in
  Alcotest.(check int) "two rows" 2 (List.length results);
  Alcotest.(check string) "first name" "Sampling" (fst (List.hd results))

let test_oracle_bin_count_beats_extremes () =
  let sample = E.sample_of dataset ~seed:6L ~n:1000 in
  let queries = G.size_separated dataset ~seed:7L ~fraction:0.02 ~count:100 in
  let bins, best = E.oracle_bin_count ~max_bins:500 dataset ~sample ~queries in
  let at k =
    E.mre_of_spec dataset ~sample ~queries
      (Selest.Estimator.Equi_width (Selest.Estimator.Fixed_bins k))
  in
  Alcotest.(check bool) "beats 1 bin" true (best <= at 1 +. 1e-12);
  Alcotest.(check bool) "beats 500 bins" true (best <= at 500 +. 1e-12);
  Alcotest.(check bool) "bins in range" true (bins >= 1 && bins <= 500)

let test_oracle_bandwidth_beats_ns () =
  let sample = E.sample_of dataset ~seed:8L ~n:1000 in
  let queries = G.size_separated dataset ~seed:9L ~fraction:0.02 ~count:100 in
  let _, best =
    E.oracle_bandwidth ~points:15 ~boundary:Kde.Estimator.Boundary_kernels dataset ~sample
      ~queries
  in
  let ns_mre =
    E.mre_of_spec dataset ~sample ~queries
      (Selest.Estimator.Kernel
         {
           kernel = Kernels.Kernel.Epanechnikov;
           boundary = Kde.Estimator.Boundary_kernels;
           bandwidth = Selest.Estimator.Normal_scale_bandwidth;
         })
  in
  Alcotest.(check bool) "oracle at least as good as NS" true (best <= ns_mre +. 1e-9)

let () =
  Alcotest.run "workload"
    [
      ( "query",
        [
          Alcotest.test_case "validation" `Quick test_query_make_validation;
          Alcotest.test_case "accessors" `Quick test_query_accessors;
        ] );
      ( "generate",
        [
          Alcotest.test_case "widths" `Quick test_size_separated_widths;
          Alcotest.test_case "half-integer bounds" `Quick
            test_size_separated_half_integer_bounds;
          Alcotest.test_case "in domain" `Quick test_size_separated_in_domain;
          Alcotest.test_case "follows data" `Quick test_size_separated_follows_data;
          Alcotest.test_case "deterministic" `Quick test_size_separated_deterministic;
          Alcotest.test_case "validation" `Quick test_size_separated_validation;
          Alcotest.test_case "positional sweep" `Quick test_positional_sweep_coverage;
          Alcotest.test_case "paper constants" `Quick test_paper_constants;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "hand computed" `Quick test_metrics_hand_computed;
          Alcotest.test_case "skips empty truth" `Quick test_metrics_skips_empty_truth;
          Alcotest.test_case "perfect estimator" `Quick test_metrics_perfect_estimator;
          Alcotest.test_case "empty queries" `Quick test_metrics_empty_queries;
          Alcotest.test_case "error by position" `Quick test_error_by_position;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "domain_of" `Quick test_domain_of;
          Alcotest.test_case "sample deterministic" `Quick test_sample_of_deterministic;
          Alcotest.test_case "mre_of_spec" `Quick test_mre_of_spec_runs;
          Alcotest.test_case "compare_specs" `Quick test_compare_specs_shape;
          Alcotest.test_case "oracle bins beat extremes" `Slow test_oracle_bin_count_beats_extremes;
          Alcotest.test_case "oracle bandwidth beats NS" `Slow test_oracle_bandwidth_beats_ns;
        ] );
    ]
