(* Tests for the data library: datasets, generators, the exact-selectivity
   oracle, sampling and the Table 2 catalog. *)

module Ds = Data.Dataset
module G = Data.Generate
module R = Data.Realistic
module C = Data.Catalog
module Xo = Prng.Xoshiro256pp

let checkf tol = Alcotest.(check (float tol))

let small = Ds.create ~name:"small" ~bits:4 [| 0; 1; 1; 3; 7; 7; 7; 15 |]

(* --- creation & accessors --- *)

let test_create_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Dataset.create: empty value array") (fun () ->
      ignore (Ds.create ~name:"x" ~bits:4 [||]));
  Alcotest.check_raises "bits range" (Invalid_argument "Dataset.create: bits must be in [1, 62]")
    (fun () -> ignore (Ds.create ~name:"x" ~bits:0 [| 0 |]));
  Alcotest.check_raises "value outside"
    (Invalid_argument "Dataset.create(x): value 16 outside domain [0, 16)") (fun () ->
      ignore (Ds.create ~name:"x" ~bits:4 [| 16 |]));
  Alcotest.check_raises "negative value"
    (Invalid_argument "Dataset.create(x): value -1 outside domain [0, 16)") (fun () ->
      ignore (Ds.create ~name:"x" ~bits:4 [| -1 |]))

let test_accessors () =
  Alcotest.(check string) "name" "small" (Ds.name small);
  Alcotest.(check int) "bits" 4 (Ds.bits small);
  Alcotest.(check int) "domain" 16 (Ds.domain_size small);
  Alcotest.(check int) "size" 8 (Ds.size small);
  Alcotest.(check int) "distinct" 5 (Ds.distinct_count small);
  Alcotest.(check int) "max dup" 3 (Ds.max_duplicate_frequency small)

let test_sorted_values () =
  Alcotest.(check (array int)) "sorted" [| 0; 1; 1; 3; 7; 7; 7; 15 |] (Ds.sorted_values small)

let test_input_copied () =
  let arr = [| 1; 2; 3 |] in
  let ds = Ds.create ~name:"c" ~bits:4 arr in
  arr.(0) <- 9;
  Alcotest.(check (array int)) "storage copied" [| 1; 2; 3 |] (Ds.values ds)

(* --- exact count oracle --- *)

let test_exact_count_basic () =
  Alcotest.(check int) "middle" 6 (Ds.exact_count small ~lo:1.0 ~hi:7.0);
  Alcotest.(check int) "inclusive both ends" 8 (Ds.exact_count small ~lo:0.0 ~hi:15.0);
  Alcotest.(check int) "empty range" 0 (Ds.exact_count small ~lo:4.0 ~hi:6.0);
  Alcotest.(check int) "inverted" 0 (Ds.exact_count small ~lo:7.0 ~hi:1.0);
  Alcotest.(check int) "single point" 3 (Ds.exact_count small ~lo:7.0 ~hi:7.0)

let test_exact_count_fractional_bounds () =
  (* [0.5, 7.5] contains integers 1..7. *)
  Alcotest.(check int) "fractional" 6 (Ds.exact_count small ~lo:0.5 ~hi:7.5);
  (* [6.9, 7.1] contains only 7. *)
  Alcotest.(check int) "tight fractional" 3 (Ds.exact_count small ~lo:6.9 ~hi:7.1)

let test_exact_selectivity () =
  checkf 1e-12 "selectivity" 0.75 (Ds.exact_selectivity small ~lo:1.0 ~hi:7.0)

let prop_exact_count_matches_scan =
  QCheck.Test.make ~name:"oracle matches linear scan" ~count:500
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 60) (int_range 0 31))
        (int_range (-2) 33) (int_range (-2) 33))
    (fun (l, a, b) ->
      let ds = Ds.create ~name:"p" ~bits:5 (Array.of_list l) in
      let lo = float_of_int (min a b) and hi = float_of_int (max a b) in
      let expected =
        List.length (List.filter (fun v -> float_of_int v >= lo && float_of_int v <= hi) l)
      in
      Ds.exact_count ds ~lo ~hi = expected)

(* --- sampling --- *)

let test_sample_full_is_permutation () =
  let rng = Xo.create 3L in
  let s = Ds.sample_without_replacement small rng ~n:8 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "multiset equality" (Ds.sorted_values small) sorted

let test_sample_bounds () =
  let rng = Xo.create 4L in
  Alcotest.check_raises "n too large"
    (Invalid_argument "Dataset.sample_without_replacement: n outside [1, size]") (fun () ->
      ignore (Ds.sample_without_replacement small rng ~n:9));
  Alcotest.check_raises "n zero"
    (Invalid_argument "Dataset.sample_without_replacement: n outside [1, size]") (fun () ->
      ignore (Ds.sample_without_replacement small rng ~n:0))

let test_sample_deterministic () =
  let s1 = Ds.sample_without_replacement small (Xo.create 5L) ~n:4 in
  let s2 = Ds.sample_without_replacement small (Xo.create 5L) ~n:4 in
  Alcotest.(check (array int)) "same seed same sample" s1 s2

let test_sample_floats () =
  let s = Ds.sample_floats small (Xo.create 6L) ~n:3 in
  Alcotest.(check int) "length" 3 (Array.length s);
  Array.iter (fun x -> Alcotest.(check bool) "integral" true (Float.is_integer x)) s

let test_sample_without_replacement_distinct_indices () =
  (* On a dataset with all-distinct values, a sample without replacement has
     no duplicates. *)
  let ds = Ds.create ~name:"d" ~bits:10 (Array.init 500 Fun.id) in
  let s = Ds.sample_without_replacement ds (Xo.create 7L) ~n:200 in
  let module IS = Set.Make (Int) in
  Alcotest.(check int) "distinct" 200 (IS.cardinal (IS.of_list (Array.to_list s)))

(* --- generators --- *)

let test_generate_in_domain () =
  List.iter
    (fun family ->
      let ds = G.generate family ~bits:10 ~count:5_000 ~seed:11L in
      let limit = 1024 in
      Array.iter
        (fun v -> if v < 0 || v >= limit then Alcotest.failf "out of domain: %d" v)
        (Ds.values ds);
      Alcotest.(check int) "count" 5_000 (Ds.size ds))
    [ G.Uniform_family; G.Normal_family; G.Exponential_family; G.Zipf_family ]

let test_generate_names () =
  Alcotest.(check string) "uniform name" "u(10)"
    (Ds.name (G.generate G.Uniform_family ~bits:10 ~count:10 ~seed:1L));
  Alcotest.(check string) "zipf name" "z(8)"
    (Ds.name (G.generate G.Zipf_family ~bits:8 ~count:10 ~seed:1L))

let test_normal_centered () =
  let ds = G.generate G.Normal_family ~bits:12 ~count:20_000 ~seed:12L in
  let m = Stats.Descriptive.mean_of_ints (Ds.values ds) in
  (* Mean maps to the domain center, 2048 (the truncated slice of the
     reference-width normal is symmetric around it). *)
  Alcotest.(check bool) "centered" true (Float.abs (m -. 2048.0) < 40.0)

let test_exponential_left_skewed () =
  (* At the reference domain (p = 20) the exponential is the paper's highly
     skewed shape: the median sits at mean * ln 2 = 2^17 ln 2, far below
     the domain center 2^19. *)
  let ds = G.generate G.Exponential_family ~bits:20 ~count:20_000 ~seed:13L in
  let sorted = Ds.sorted_values ds in
  let median = sorted.(Array.length sorted / 2) in
  Alcotest.(check bool) "left-skewed" true (median < 1 lsl 18)

let test_small_domains_have_more_duplicates () =
  (* The figure-5 premise: the same family at a smaller p duplicates more
     heavily because the absolute spread is fixed. *)
  let coarse = G.generate G.Normal_family ~bits:10 ~count:20_000 ~seed:14L in
  let fine = G.generate G.Normal_family ~bits:20 ~count:20_000 ~seed:14L in
  Alcotest.(check bool) "coarse duplicates" true
    (Ds.max_duplicate_frequency coarse > 3 * Ds.max_duplicate_frequency fine)

let test_generate_deterministic () =
  let d1 = G.generate G.Normal_family ~bits:10 ~count:100 ~seed:77L in
  let d2 = G.generate G.Normal_family ~bits:10 ~count:100 ~seed:77L in
  Alcotest.(check (array int)) "reproducible" (Ds.values d1) (Ds.values d2)

let test_scaled_model_shapes () =
  let m = G.scaled_model G.Normal_family ~bits:10 in
  checkf 1e-9 "mean is domain center" 512.0 (Dists.Model.mean m);
  let u = G.scaled_model G.Uniform_family ~bits:10 in
  checkf 1e-9 "uniform mean" 512.0 (Dists.Model.mean u)

(* --- realistic simulators --- *)

let test_arapahoe_properties () =
  let ds = R.arapahoe ~dim:1 ~seed:42L in
  Alcotest.(check int) "records" 52_120 (Ds.size ds);
  Alcotest.(check int) "bits" 21 (Ds.bits ds);
  Alcotest.(check string) "name" "arap1" (Ds.name ds);
  let ds2 = R.arapahoe ~dim:2 ~seed:42L in
  Alcotest.(check int) "dim2 bits" 18 (Ds.bits ds2)

let test_arapahoe_invalid_dim () =
  Alcotest.check_raises "dim 3" (Invalid_argument "Realistic.arapahoe: dim must be 1 or 2")
    (fun () -> ignore (R.arapahoe ~dim:3 ~seed:1L))

let test_railroad_properties () =
  let ds = R.railroad ~dim:1 ~bits:12 ~seed:42L in
  Alcotest.(check int) "records" 257_942 (Ds.size ds);
  Alcotest.(check string) "name" "rr1(12)" (Ds.name ds)

let test_railroad_resolution_coupling () =
  (* The p = 12 file must be the coarse quantization of the p = 22 file. *)
  let coarse = R.railroad ~dim:1 ~bits:12 ~seed:42L in
  let fine = R.railroad ~dim:1 ~bits:22 ~seed:42L in
  let vc = Ds.values coarse and vf = Ds.values fine in
  let ok = ref true in
  for i = 0 to 1000 do
    if vf.(i) lsr 10 <> vc.(i) then ok := false
  done;
  Alcotest.(check bool) "coarse = fine >> 10" true !ok

let test_railroad_duplicates_at_low_bits () =
  let coarse = R.railroad ~dim:1 ~bits:12 ~seed:42L in
  let fine = R.railroad ~dim:1 ~bits:22 ~seed:42L in
  Alcotest.(check bool) "coarse heavily duplicated" true
    (Ds.distinct_count coarse < Ds.size coarse / 50);
  Alcotest.(check bool) "fine mostly distinct" true (Ds.distinct_count fine > Ds.size fine / 2)

let test_instance_weight_properties () =
  let ds = R.instance_weight ~seed:42L in
  Alcotest.(check int) "records" 199_523 (Ds.size ds);
  Alcotest.(check string) "name" "iw" (Ds.name ds);
  (* The atom construction yields heavy duplicate spikes. *)
  Alcotest.(check bool) "spikes" true (Ds.max_duplicate_frequency ds > 200)

let test_realistic_deterministic () =
  let a = R.arapahoe ~dim:1 ~seed:9L and b = R.arapahoe ~dim:1 ~seed:9L in
  Alcotest.(check (array int)) "same seed same data" (Ds.values a) (Ds.values b);
  let c = R.arapahoe ~dim:1 ~seed:10L in
  Alcotest.(check bool) "different seed differs" true (Ds.values a <> Ds.values c)

(* --- catalog --- *)

let test_catalog_names_complete () =
  Alcotest.(check int) "14 files" 14 (List.length C.names);
  Alcotest.(check bool) "has u(20)" true (List.mem "u(20)" C.names);
  Alcotest.(check bool) "has iw" true (List.mem "iw" C.names)

let test_catalog_find () =
  let ds = C.find ~seed:1L "n(15)" in
  Alcotest.(check string) "name" "n(15)" (Ds.name ds);
  Alcotest.(check int) "bits" 15 (Ds.bits ds);
  Alcotest.(check int) "records" 100_000 (Ds.size ds)

let test_catalog_find_unknown () =
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (C.find ~seed:1L "bogus"))

let test_catalog_headline () =
  let files = C.headline ~seed:1L in
  Alcotest.(check int) "8 headline files" 8 (List.length files);
  List.iter
    (fun ds ->
      (* Headline files are the large-domain, low-duplicate ones. *)
      Alcotest.(check bool) (Ds.name ds ^ " large domain") true (Ds.bits ds >= 18))
    files

let test_synthetic_model_detection () =
  let n20 = C.find ~seed:1L "n(20)" in
  Alcotest.(check bool) "n(20) has model" true (C.synthetic_model n20 <> None);
  let arap = C.find ~seed:1L "arap1" in
  Alcotest.(check bool) "arap1 has none" true (C.synthetic_model arap = None);
  let iw = C.find ~seed:1L "iw" in
  Alcotest.(check bool) "iw has none" true (C.synthetic_model iw = None)

let test_synthetic_model_matches_data () =
  (* The detected model's range probabilities should approximate the actual
     file's empirical selectivities. *)
  let ds = C.find ~seed:21L "n(15)" in
  match C.synthetic_model ds with
  | None -> Alcotest.fail "expected a model"
  | Some m ->
    let domain = float_of_int (Ds.domain_size ds) in
    let lo = 0.4 *. domain and hi = 0.6 *. domain in
    let predicted = Dists.Model.range_probability m lo hi in
    let actual = Ds.exact_selectivity ds ~lo ~hi in
    Alcotest.(check bool) "model predicts selectivity" true
      (Float.abs (predicted -. actual) < 0.01)

(* --- metric encodings --- *)

module E = Data.Encode

let test_date_epoch () =
  Alcotest.(check int) "epoch" 0 (E.days_of_date ~year:1970 ~month:1 ~day:1);
  Alcotest.(check int) "next day" 1 (E.days_of_date ~year:1970 ~month:1 ~day:2);
  Alcotest.(check int) "before epoch" (-1) (E.days_of_date ~year:1969 ~month:12 ~day:31)

let test_date_known_values () =
  (* 2000-03-01 is day 11017; 2026-07-05 is day 20639. *)
  Alcotest.(check int) "2000-03-01" 11017 (E.days_of_date ~year:2000 ~month:3 ~day:1);
  Alcotest.(check int) "2026-07-05" 20639 (E.days_of_date ~year:2026 ~month:7 ~day:5)

let test_date_roundtrip () =
  List.iter
    (fun days ->
      let y, m, d = E.date_of_days days in
      Alcotest.(check int) "roundtrip" days (E.days_of_date ~year:y ~month:m ~day:d))
    [ -100000; -1; 0; 59; 60; 365; 11016; 11017; 20639; 1000000 ]

let test_date_leap_rules () =
  Alcotest.(check int) "2000 is leap" 29 (E.days_of_date ~year:2000 ~month:3 ~day:1
                                          - E.days_of_date ~year:2000 ~month:2 ~day:1);
  Alcotest.check_raises "1900 not leap"
    (Invalid_argument "Encode.days_of_date: day out of range for the month") (fun () ->
      ignore (E.days_of_date ~year:1900 ~month:2 ~day:29));
  Alcotest.check_raises "month range" (Invalid_argument "Encode.days_of_date: month must be in [1, 12]")
    (fun () -> ignore (E.days_of_date ~year:2000 ~month:13 ~day:1))

let test_parse_and_format_date () =
  (match E.parse_date "2026-07-05" with
  | Ok d -> Alcotest.(check int) "parse" 20639 d
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "format" "2026-07-05" (E.format_date 20639);
  Alcotest.(check bool) "bad format rejected" true (Result.is_error (E.parse_date "2026/07/05"));
  Alcotest.(check bool) "bad day rejected" true (Result.is_error (E.parse_date "2026-02-30"))

let prop_date_encoding_monotone =
  QCheck.Test.make ~name:"date encoding preserves order" ~count:300
    QCheck.(pair (int_range (-200000) 200000) (int_range (-200000) 200000))
    (fun (d1, d2) ->
      let y1, m1, dd1 = E.date_of_days d1 and y2, m2, dd2 = E.date_of_days d2 in
      let cmp_date = compare (y1, m1, dd1) (y2, m2, dd2) in
      compare d1 d2 = cmp_date)

let prop_string_prefix_monotone =
  QCheck.Test.make ~name:"string prefix encoding preserves order" ~count:500
    QCheck.(pair (string_gen_of_size (Gen.int_range 0 10) Gen.printable) (string_gen_of_size (Gen.int_range 0 10) Gen.printable))
    (fun (s1, s2) ->
      let v1 = E.int_of_string_prefix s1 and v2 = E.int_of_string_prefix s2 in
      let p1 = String.sub s1 0 (Int.min 7 (String.length s1)) in
      let p2 = String.sub s2 0 (Int.min 7 (String.length s2)) in
      (* The encoding must order exactly like the truncated strings. *)
      compare v1 v2 = compare p1 p2)

let test_string_prefix_basics () =
  Alcotest.(check int) "empty is zero" 0 (E.int_of_string_prefix "");
  Alcotest.(check bool) "prefix sorts before extension" true
    (E.int_of_string_prefix "abc" < E.int_of_string_prefix "abca");
  Alcotest.(check int) "bits" 57 (E.string_prefix_bits 7);
  Alcotest.(check int) "bits short" 9 (E.string_prefix_bits 1);
  Alcotest.check_raises "length range" (Invalid_argument "Encode: prefix length must be in [1, 7]")
    (fun () -> ignore (E.int_of_string_prefix ~length:8 "x"))

let test_string_prefix_fits_domain () =
  let v = E.int_of_string_prefix ~length:7 "\xff\xff\xff\xff\xff\xff\xff" in
  Alcotest.(check bool) "fits declared bits" true (v < 1 lsl E.string_prefix_bits 7)

let test_dates_as_dataset () =
  (* End to end: encode a year of dates, build a dataset and query a month
     range. *)
  let start = E.days_of_date ~year:2025 ~month:1 ~day:1 in
  let values = Array.init 365 (fun i -> start + i) in
  let ds = Ds.create ~name:"dates" ~bits:16 values in
  let month_lo = float_of_int (E.days_of_date ~year:2025 ~month:6 ~day:1) in
  let month_hi = float_of_int (E.days_of_date ~year:2025 ~month:6 ~day:30) in
  Alcotest.(check int) "June has 30 days" 30 (Ds.exact_count ds ~lo:month_lo ~hi:month_hi)

let () =
  Alcotest.run "data"
    [
      ( "dataset",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "sorted values" `Quick test_sorted_values;
          Alcotest.test_case "input copied" `Quick test_input_copied;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "basic counts" `Quick test_exact_count_basic;
          Alcotest.test_case "fractional bounds" `Quick test_exact_count_fractional_bounds;
          Alcotest.test_case "selectivity" `Quick test_exact_selectivity;
          QCheck_alcotest.to_alcotest prop_exact_count_matches_scan;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "full sample permutation" `Quick test_sample_full_is_permutation;
          Alcotest.test_case "bounds" `Quick test_sample_bounds;
          Alcotest.test_case "deterministic" `Quick test_sample_deterministic;
          Alcotest.test_case "floats" `Quick test_sample_floats;
          Alcotest.test_case "distinct on distinct data" `Quick
            test_sample_without_replacement_distinct_indices;
        ] );
      ( "generators",
        [
          Alcotest.test_case "in domain" `Quick test_generate_in_domain;
          Alcotest.test_case "names" `Quick test_generate_names;
          Alcotest.test_case "normal centered" `Quick test_normal_centered;
          Alcotest.test_case "exponential skewed" `Quick test_exponential_left_skewed;
          Alcotest.test_case "small domains duplicate more" `Quick
            test_small_domains_have_more_duplicates;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "scaled models" `Quick test_scaled_model_shapes;
        ] );
      ( "realistic",
        [
          Alcotest.test_case "arapahoe" `Quick test_arapahoe_properties;
          Alcotest.test_case "arapahoe invalid dim" `Quick test_arapahoe_invalid_dim;
          Alcotest.test_case "railroad" `Quick test_railroad_properties;
          Alcotest.test_case "railroad resolution coupling" `Quick
            test_railroad_resolution_coupling;
          Alcotest.test_case "railroad duplicates" `Quick test_railroad_duplicates_at_low_bits;
          Alcotest.test_case "instance weight" `Quick test_instance_weight_properties;
          Alcotest.test_case "deterministic" `Quick test_realistic_deterministic;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "names" `Quick test_catalog_names_complete;
          Alcotest.test_case "find" `Quick test_catalog_find;
          Alcotest.test_case "find unknown" `Quick test_catalog_find_unknown;
          Alcotest.test_case "headline" `Quick test_catalog_headline;
          Alcotest.test_case "synthetic model detection" `Quick test_synthetic_model_detection;
          Alcotest.test_case "model matches data" `Quick test_synthetic_model_matches_data;
        ] );
      ( "encode",
        [
          Alcotest.test_case "epoch" `Quick test_date_epoch;
          Alcotest.test_case "known dates" `Quick test_date_known_values;
          Alcotest.test_case "roundtrip" `Quick test_date_roundtrip;
          Alcotest.test_case "leap rules" `Quick test_date_leap_rules;
          Alcotest.test_case "parse/format" `Quick test_parse_and_format_date;
          QCheck_alcotest.to_alcotest prop_date_encoding_monotone;
          QCheck_alcotest.to_alcotest prop_string_prefix_monotone;
          Alcotest.test_case "string prefix basics" `Quick test_string_prefix_basics;
          Alcotest.test_case "string prefix domain" `Quick test_string_prefix_fits_domain;
          Alcotest.test_case "dates as dataset" `Quick test_dates_as_dataset;
        ] );
    ]
