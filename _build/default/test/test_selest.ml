(* Tests for the public estimator API (lib/core): spec construction, naming,
   building and querying. *)

module Est = Selest.Estimator
module Xo = Prng.Xoshiro256pp

let checkf tol = Alcotest.(check (float tol))

let domain = (0.0, 1000.0)

let sample seed n =
  let rng = Xo.create seed in
  Array.init n (fun _ -> Xo.float_range rng 0.0 1000.0)

let all_specs =
  Est.
    [
      Sampling;
      Uniform_assumption;
      Equi_width (Fixed_bins 25);
      Equi_width Normal_scale_bins;
      Equi_width (Plug_in_bins 1);
      Equi_depth { bins = 25 };
      Max_diff { bins = 25 };
      Ash { bins = Fixed_bins 25; shifts = 10 };
      Kernel
        {
          kernel = Kernels.Kernel.Epanechnikov;
          boundary = Kde.Estimator.No_treatment;
          bandwidth = Normal_scale_bandwidth;
        };
      Kernel
        {
          kernel = Kernels.Kernel.Epanechnikov;
          boundary = Kde.Estimator.Reflection;
          bandwidth = Fixed_bandwidth 20.0;
        };
      Kernel
        {
          kernel = Kernels.Kernel.Gaussian;
          boundary = Kde.Estimator.No_treatment;
          bandwidth = Lscv_bandwidth;
        };
      kernel_defaults;
      hybrid_defaults;
      Frequency_polygon (Fixed_bins 25);
      V_optimal { bins = 25 };
      Wavelet_spec { coefficients = 25 };
    ]

let test_all_specs_build_and_answer () =
  let xs = sample 1L 500 in
  List.iter
    (fun spec ->
      let est = Est.build spec ~domain xs in
      let s = Est.selectivity est ~a:100.0 ~b:300.0 in
      if not (s >= 0.0 && s <= 1.0) then
        Alcotest.failf "%s: selectivity %f out of bounds" (Est.spec_name spec) s;
      (* Uniform data: [100,300] holds about 20% of the mass. *)
      if s < 0.10 || s > 0.35 then
        Alcotest.failf "%s: implausible selectivity %f for a 20%% range" (Est.spec_name spec) s)
    all_specs

let test_spec_names_distinct () =
  let names = List.map Est.spec_name all_specs in
  let module SS = Set.Make (String) in
  Alcotest.(check int) "all names distinct" (List.length names) (SS.cardinal (SS.of_list names))

let test_spec_names_format () =
  Alcotest.(check string) "sampling" "Sampling" (Est.spec_name Est.Sampling);
  Alcotest.(check string) "ewh ns" "EWH(NS)" (Est.spec_name (Est.Equi_width Est.Normal_scale_bins));
  Alcotest.(check string) "ewh fixed" "EWH(40)" (Est.spec_name (Est.Equi_width (Est.Fixed_bins 40)));
  Alcotest.(check string) "kernel" "Kernel(epanechnikov,boundary-kernels,DPI2)"
    (Est.spec_name Est.kernel_defaults);
  Alcotest.(check string) "hybrid" "Hybrid(DPI1)" (Est.spec_name Est.hybrid_defaults)

let test_name_and_spec_accessors () =
  let est = Est.build Est.Sampling ~domain (sample 2L 100) in
  Alcotest.(check string) "name" "Sampling" (Est.name est);
  Alcotest.(check bool) "spec roundtrip" true (Est.spec est = Est.Sampling)

let test_estimate_count_scaling () =
  let est = Est.build Est.Sampling ~domain (sample 3L 100) in
  let s = Est.selectivity est ~a:0.0 ~b:500.0 in
  checkf 1e-9 "count = N * selectivity" (1.0e6 *. s)
    (Est.estimate_count est ~n_records:1_000_000 ~a:0.0 ~b:500.0)

let test_density_presence () =
  let xs = sample 4L 200 in
  let sampling = Est.build Est.Sampling ~domain xs in
  Alcotest.(check bool) "sampling has no density" true (Est.density sampling 500.0 = None);
  List.iter
    (fun spec ->
      let est = Est.build spec ~domain xs in
      match Est.density est 500.0 with
      | Some d -> Alcotest.(check bool) (Est.spec_name spec ^ " density >= 0") true (d >= 0.0)
      | None -> Alcotest.failf "%s: expected a density" (Est.spec_name spec))
    Est.[ Uniform_assumption; Equi_width (Fixed_bins 10); kernel_defaults; hybrid_defaults ]

let test_build_validation () =
  Alcotest.check_raises "empty sample" (Invalid_argument "Estimator.build: empty sample")
    (fun () -> ignore (Est.build Est.Sampling ~domain [||]));
  Alcotest.check_raises "empty domain" (Invalid_argument "Estimator.build: empty domain")
    (fun () -> ignore (Est.build Est.Sampling ~domain:(1.0, 1.0) [| 0.5 |]));
  Alcotest.check_raises "bad bins" (Invalid_argument "Estimator.build: bins must be >= 1")
    (fun () -> ignore (Est.build (Est.Equi_width (Est.Fixed_bins 0)) ~domain [| 0.5 |]));
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Estimator.build: bandwidth must be positive and finite") (fun () ->
      ignore
        (Est.build
           (Est.Kernel
              {
                kernel = Kernels.Kernel.Epanechnikov;
                boundary = Kde.Estimator.No_treatment;
                bandwidth = Est.Fixed_bandwidth 0.0;
              })
           ~domain [| 0.5 |]))

let test_sampling_matches_exact_fraction () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  let est = Est.build Est.Sampling ~domain xs in
  checkf 1e-12 "4 of 5 in range" 0.8 (Est.selectivity est ~a:15.0 ~b:55.0);
  checkf 1e-12 "inclusive ends" 0.2 (Est.selectivity est ~a:30.0 ~b:30.0)

let test_boundary_kernel_bandwidth_clamped () =
  (* A fixed bandwidth wider than half the domain must be clamped, not
     rejected, under the boundary-kernel policy. *)
  let xs = sample 5L 50 in
  let est =
    Est.build
      (Est.Kernel
         {
           kernel = Kernels.Kernel.Epanechnikov;
           boundary = Kde.Estimator.Boundary_kernels;
           bandwidth = Est.Fixed_bandwidth 900.0;
         })
      ~domain xs
  in
  let s = Est.selectivity est ~a:0.0 ~b:1000.0 in
  Alcotest.(check bool) "still answers" true (s >= 0.0 && s <= 1.0)

let test_default_suite_contents () =
  Alcotest.(check int) "four contenders" 4 (List.length Est.default_suite);
  let names = List.map Est.spec_name Est.default_suite in
  Alcotest.(check bool) "has EWH" true (List.mem "EWH(NS)" names);
  Alcotest.(check bool) "has hybrid" true (List.exists (fun n -> String.length n >= 6 && String.sub n 0 6 = "Hybrid") names)

(* --- spec parser --- *)

let test_spec_of_string_roundtrips () =
  List.iter
    (fun (input, expected) ->
      match Est.spec_of_string input with
      | Ok spec ->
        Alcotest.(check string) input (Est.spec_name expected) (Est.spec_name spec)
      | Error msg -> Alcotest.failf "%s: %s" input msg)
    [
      ("sampling", Est.Sampling);
      ("uniform", Est.Uniform_assumption);
      ("ewh", Est.Equi_width Est.Normal_scale_bins);
      ("ewh:40", Est.Equi_width (Est.Fixed_bins 40));
      ("ewh:dpi2", Est.Equi_width (Est.Plug_in_bins 2));
      ("edh:30", Est.Equi_depth { bins = 30 });
      ("mdh", Est.Max_diff { bins = 40 });
      ("ash:80,5", Est.Ash { bins = Est.Fixed_bins 80; shifts = 5 });
      ("kernel", Est.kernel_defaults);
      ( "kernel:ns,reflection,gaussian",
        Est.Kernel
          {
            kernel = Kernels.Kernel.Gaussian;
            boundary = Kde.Estimator.Reflection;
            bandwidth = Est.Normal_scale_bandwidth;
          } );
      ( "kernel:h=12.5",
        Est.Kernel
          {
            kernel = Kernels.Kernel.Epanechnikov;
            boundary = Kde.Estimator.Boundary_kernels;
            bandwidth = Est.Fixed_bandwidth 12.5;
          } );
      ("hybrid", Est.hybrid_defaults);
      ("fp:20", Est.Frequency_polygon (Est.Fixed_bins 20));
      ("voh:30", Est.V_optimal { bins = 30 });
      ("wave", Est.Wavelet_spec { coefficients = 40 });
      ("wavelet:64", Est.Wavelet_spec { coefficients = 64 });
      ("KERNEL:LSCV", Est.Kernel
          {
            kernel = Kernels.Kernel.Epanechnikov;
            boundary = Kde.Estimator.Boundary_kernels;
            bandwidth = Est.Lscv_bandwidth;
          });
    ]

let test_spec_of_string_rejects_garbage () =
  List.iter
    (fun input ->
      match Est.spec_of_string input with
      | Ok spec -> Alcotest.failf "%s unexpectedly parsed as %s" input (Est.spec_name spec)
      | Error _ -> ())
    [ "nope"; "ewh:zero"; "edh:-1"; "kernel:warp"; "ash:ns,0"; "voh:x"; "hybrid:maybe" ]

let test_parsed_specs_build () =
  let xs = sample 7L 300 in
  List.iter
    (fun input ->
      match Est.spec_of_string input with
      | Ok spec ->
        let est = Est.build spec ~domain xs in
        let s = Est.selectivity est ~a:100.0 ~b:900.0 in
        if not (s >= 0.0 && s <= 1.0) then Alcotest.failf "%s: bad selectivity" input
      | Error msg -> Alcotest.failf "%s: %s" input msg)
    [ "sampling"; "ewh"; "fp"; "voh"; "wave"; "ash"; "kernel:ns"; "hybrid:ns"; "mdh:10" ]

let prop_selectivity_bounds_all_specs =
  QCheck.Test.make ~name:"every estimator stays in [0,1]" ~count:60
    QCheck.(triple (int_range 0 12) (float_range 0. 1000.) (float_range 0. 1000.))
    (fun (i, x, y) ->
      let spec = List.nth all_specs (i mod List.length all_specs) in
      let est = Est.build spec ~domain (sample 6L 300) in
      let s = Est.selectivity est ~a:(Float.min x y) ~b:(Float.max x y) in
      s >= 0.0 && s <= 1.0)

(* --- stored summaries --- *)

module St = Selest.Stored

let test_stored_roundtrip () =
  let xs = sample 8L 500 in
  let st = St.of_sample ~cells:64 ~domain xs in
  match St.of_string (St.to_string st) with
  | Error msg -> Alcotest.fail msg
  | Ok back ->
    Alcotest.(check int) "cells" (St.cells st) (St.cells back);
    List.iter
      (fun (a, b) -> checkf 1e-12 "same answers" (St.selectivity st ~a ~b) (St.selectivity back ~a ~b))
      [ (0.0, 1000.0); (123.0, 456.0); (999.0, 999.5) ]

let test_stored_tracks_source_estimator () =
  let xs = sample 9L 1000 in
  let est = Est.build Est.kernel_defaults ~domain xs in
  let st = St.of_estimator ~cells:256 ~domain est in
  List.iter
    (fun (a, b) ->
      let direct = Est.selectivity est ~a ~b in
      let stored = St.selectivity st ~a ~b in
      if Float.abs (direct -. stored) > 0.01 then
        Alcotest.failf "[%g,%g]: stored %f vs direct %f" a b stored direct)
    [ (0.0, 1000.0); (100.0, 300.0); (450.0, 550.0); (0.0, 50.0) ]

let test_stored_full_domain_mass () =
  let xs = sample 10L 500 in
  let st = St.of_sample ~cells:32 ~domain xs in
  let m = St.selectivity st ~a:0.0 ~b:1000.0 in
  Alcotest.(check bool) "mass near 1" true (m > 0.97 && m <= 1.0)

let test_stored_of_string_errors () =
  List.iter
    (fun s ->
      match St.of_string s with
      | Ok _ -> Alcotest.failf "unexpectedly parsed %S" s
      | Error _ -> ())
    [
      "";
      "wrong header\ndomain 0 1\ncells 1\n0.5\n";
      "selest-stored v1\ndomain 1 0\ncells 1\n0.5\n";
      "selest-stored v1\ndomain 0 1\ncells 2\n0.5\n";
      "selest-stored v1\ndomain 0 1\ncells 1\nnot-a-number\n";
      "selest-stored v1\ndomain 0 1\ncells 1\n-0.5\n";
    ]

let test_stored_validation () =
  Alcotest.check_raises "cells" (Invalid_argument "Stored.of_estimator: cells must be positive")
    (fun () ->
      let est = Est.build Est.Sampling ~domain (sample 11L 10) in
      ignore (St.of_estimator ~cells:0 ~domain est))

(* --- maintenance --- *)

module Mn = Selest.Maintenance

let mk_maintenance ?(n = 300) () =
  Mn.create ~spec:(Est.Equi_width (Est.Fixed_bins 20)) ~domain ~sample:(sample 12L n)
    ~n_records:10_000 ()

let test_maintenance_create_validation () =
  Alcotest.check_raises "threshold"
    (Invalid_argument "Maintenance.create: refresh_after_change must be positive") (fun () ->
      ignore
        (Mn.create ~refresh_after_change:0.0 ~spec:Est.Sampling ~domain ~sample:(sample 1L 10)
           ~n_records:10 ()))

let test_maintenance_fresh_needs_nothing () =
  let m = mk_maintenance () in
  Alcotest.(check bool) "fresh" true (Mn.needs_refresh m = None);
  Alcotest.(check int) "records" 10_000 (Mn.n_records m);
  Alcotest.(check int) "no refreshes" 0 (Mn.refresh_count m)

let test_maintenance_volume_trigger () =
  let m = mk_maintenance () in
  Mn.record_inserts m 1500;
  Alcotest.(check bool) "below threshold" true (Mn.needs_refresh m = None);
  Mn.record_inserts m 600;
  Alcotest.(check bool) "volume trigger" true (Mn.needs_refresh m = Some Mn.Insert_volume);
  Alcotest.(check int) "count tracks inserts" 12_100 (Mn.n_records m)

let test_maintenance_deletes_count_as_churn () =
  let m = mk_maintenance () in
  Mn.record_inserts m (-2100);
  Alcotest.(check bool) "churn trigger" true (Mn.needs_refresh m = Some Mn.Insert_volume)

let test_maintenance_feedback_trigger () =
  let m = mk_maintenance () in
  (* Report truths wildly different from the estimates. *)
  for _ = 1 to 30 do
    Mn.record_feedback m ~a:100.0 ~b:200.0 ~actual_count:9_000
  done;
  Alcotest.(check bool) "feedback trigger" true (Mn.needs_refresh m = Some Mn.Feedback_error)

let test_maintenance_accurate_feedback_no_trigger () =
  let m = mk_maintenance ~n:1000 () in
  for _ = 1 to 30 do
    let truth = int_of_float (Mn.estimate_count m ~a:100.0 ~b:300.0) in
    Mn.record_feedback m ~a:100.0 ~b:300.0 ~actual_count:truth
  done;
  Alcotest.(check bool) "no trigger" true (Mn.needs_refresh m = None)

let test_maintenance_refresh_resets () =
  let m = mk_maintenance () in
  Mn.record_inserts m 5000;
  for _ = 1 to 30 do
    Mn.record_feedback m ~a:100.0 ~b:200.0 ~actual_count:9_000
  done;
  Alcotest.(check bool) "triggered" true (Mn.needs_refresh m <> None);
  Mn.refresh m ~sample:(sample 13L 300) ~n_records:15_000;
  Alcotest.(check bool) "reset" true (Mn.needs_refresh m = None);
  Alcotest.(check int) "new base" 15_000 (Mn.n_records m);
  Alcotest.(check int) "counted" 1 (Mn.refresh_count m)

let test_maintenance_refresh_improves_after_drift () =
  (* The full story: the relation's distribution shifts; feedback trips the
     trigger; refreshing with a fresh sample restores accuracy. *)
  let shifted = Array.map (fun x -> Float.min 999.0 (x /. 4.0)) (sample 14L 2000) in
  let m =
    Mn.create ~spec:(Est.Equi_width (Est.Fixed_bins 20)) ~domain ~sample:(sample 15L 2000)
      ~n_records:10_000 ()
  in
  (* True distribution is now [shifted]; use its empirical counts as truth. *)
  let truth a b =
    let c = Array.fold_left (fun acc x -> if x >= a && x <= b then acc + 1 else acc) 0 shifted in
    c * 10_000 / 2000
  in
  let err () =
    let t = float_of_int (truth 0.0 250.0) in
    Float.abs (Mn.estimate_count m ~a:0.0 ~b:250.0 -. t) /. t
  in
  let before = err () in
  for _ = 1 to 30 do
    Mn.record_feedback m ~a:0.0 ~b:250.0 ~actual_count:(truth 0.0 250.0)
  done;
  Alcotest.(check bool) "drift detected" true (Mn.needs_refresh m = Some Mn.Feedback_error);
  Mn.refresh m ~sample:shifted ~n_records:10_000;
  let after = err () in
  Alcotest.(check bool)
    (Printf.sprintf "refresh improves (%.3f -> %.3f)" before after)
    true (after < 0.3 *. before)

let () =
  Alcotest.run "selest"
    [
      ( "build",
        [
          Alcotest.test_case "all specs build" `Quick test_all_specs_build_and_answer;
          Alcotest.test_case "validation" `Quick test_build_validation;
          Alcotest.test_case "bandwidth clamping" `Quick test_boundary_kernel_bandwidth_clamped;
        ] );
      ( "naming",
        [
          Alcotest.test_case "distinct" `Quick test_spec_names_distinct;
          Alcotest.test_case "format" `Quick test_spec_names_format;
          Alcotest.test_case "accessors" `Quick test_name_and_spec_accessors;
        ] );
      ( "querying",
        [
          Alcotest.test_case "estimate_count" `Quick test_estimate_count_scaling;
          Alcotest.test_case "density presence" `Quick test_density_presence;
          Alcotest.test_case "sampling exact" `Quick test_sampling_matches_exact_fraction;
          Alcotest.test_case "default suite" `Quick test_default_suite_contents;
          QCheck_alcotest.to_alcotest prop_selectivity_bounds_all_specs;
        ] );
      ( "spec parser",
        [
          Alcotest.test_case "roundtrips" `Quick test_spec_of_string_roundtrips;
          Alcotest.test_case "rejects garbage" `Quick test_spec_of_string_rejects_garbage;
          Alcotest.test_case "parsed specs build" `Quick test_parsed_specs_build;
        ] );
      ( "stored summaries",
        [
          Alcotest.test_case "roundtrip" `Quick test_stored_roundtrip;
          Alcotest.test_case "tracks source" `Quick test_stored_tracks_source_estimator;
          Alcotest.test_case "full-domain mass" `Quick test_stored_full_domain_mass;
          Alcotest.test_case "of_string errors" `Quick test_stored_of_string_errors;
          Alcotest.test_case "validation" `Quick test_stored_validation;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "create validation" `Quick test_maintenance_create_validation;
          Alcotest.test_case "fresh state" `Quick test_maintenance_fresh_needs_nothing;
          Alcotest.test_case "volume trigger" `Quick test_maintenance_volume_trigger;
          Alcotest.test_case "deletes are churn" `Quick test_maintenance_deletes_count_as_churn;
          Alcotest.test_case "feedback trigger" `Quick test_maintenance_feedback_trigger;
          Alcotest.test_case "accurate feedback quiet" `Quick
            test_maintenance_accurate_feedback_no_trigger;
          Alcotest.test_case "refresh resets" `Quick test_maintenance_refresh_resets;
          Alcotest.test_case "refresh after drift" `Quick
            test_maintenance_refresh_improves_after_drift;
        ] );
    ]
