test/test_kde.ml: Alcotest Array Float Kde Kernels List Printf Prng QCheck QCheck_alcotest Stats
