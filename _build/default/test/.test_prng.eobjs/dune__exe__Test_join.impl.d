test/test_join.ml: Alcotest Array Data Float Gen Join List Printf QCheck QCheck_alcotest Selest Workload
