test/test_selest.ml: Alcotest Array Float Kde Kernels List Printf Prng QCheck QCheck_alcotest Selest Set String
