test/test_dists.ml: Alcotest Array Dists Float Lazy List Prng QCheck QCheck_alcotest Stats
