test/test_kde.mli:
