test/test_integration.ml: Alcotest Array Data Float Kde Kernels Lazy List Printf Selest Workload
