test/test_hybrid.ml: Alcotest Array Bandwidth Float Hybrid Kde Kernels List Printf Prng QCheck QCheck_alcotest Stats
