test/test_bandwidth.mli:
