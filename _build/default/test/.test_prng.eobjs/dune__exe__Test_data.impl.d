test/test_data.ml: Alcotest Array Data Dists Float Fun Gen Int List Prng QCheck QCheck_alcotest Result Set Stats String
