test/test_feedback.ml: Alcotest Array Data Feedback Float List Printf Prng QCheck QCheck_alcotest Workload
