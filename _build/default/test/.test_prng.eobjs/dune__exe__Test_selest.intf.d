test/test_selest.mli:
