test/test_workload.ml: Alcotest Array Data Float Kde Kernels List Printf Selest Workload
