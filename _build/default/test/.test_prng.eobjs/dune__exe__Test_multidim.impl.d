test/test_multidim.ml: Alcotest Array Dists Float Gen Int Kernels List Multidim Printf Prng QCheck QCheck_alcotest Selest Stats
