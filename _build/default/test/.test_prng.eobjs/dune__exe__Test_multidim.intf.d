test/test_multidim.mli:
