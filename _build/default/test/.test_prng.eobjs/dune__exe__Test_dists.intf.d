test/test_dists.mli:
