test/test_prng.ml: Alcotest Array Float Fun Int List Prng QCheck QCheck_alcotest Set
