test/test_online.ml: Alcotest Array Data Filename Float Int64 Online Printf Prng Sys
