test/test_histograms.mli:
