test/test_kernels.ml: Alcotest Float Kernels List Printf QCheck QCheck_alcotest Stats
