test/test_bandwidth.ml: Alcotest Array Bandwidth Dists Float Int Kernels List Printf Prng
