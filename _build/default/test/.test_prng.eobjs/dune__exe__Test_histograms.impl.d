test/test_histograms.ml: Alcotest Array Float Histograms List Printf Prng QCheck QCheck_alcotest Stats
