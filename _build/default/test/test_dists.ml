(* Tests for the dists library: model pdfs/cdfs, sampling, roughness
   functionals. *)

module M = Dists.Model
module Xo = Prng.Xoshiro256pp

let checkf tol = Alcotest.(check (float tol))

let std_normal = M.normal ~mu:0.0 ~sigma:1.0
let unit_uniform = M.uniform ~lo:0.0 ~hi:1.0
let expo2 = M.exponential ~rate:2.0
let zipf5 = M.zipf ~exponent:1.0 ~ranks:5
let lognorm = M.lognormal ~mu:0.5 ~sigma:0.75
let mix = M.mixture [ (1.0, M.normal ~mu:(-2.0) ~sigma:0.5); (3.0, M.normal ~mu:2.0 ~sigma:1.0) ]

(* --- constructor validation --- *)

let test_constructor_validation () =
  Alcotest.check_raises "uniform" (Invalid_argument "Model.uniform: requires lo < hi") (fun () ->
      ignore (M.uniform ~lo:1.0 ~hi:1.0));
  Alcotest.check_raises "normal" (Invalid_argument "Model.normal: requires sigma > 0") (fun () ->
      ignore (M.normal ~mu:0.0 ~sigma:0.0));
  Alcotest.check_raises "exponential" (Invalid_argument "Model.exponential: requires rate > 0")
    (fun () -> ignore (M.exponential ~rate:(-1.0)));
  Alcotest.check_raises "zipf" (Invalid_argument "Model.zipf: requires ranks > 0") (fun () ->
      ignore (M.zipf ~exponent:1.0 ~ranks:0));
  Alcotest.check_raises "mixture empty" (Invalid_argument "Model.mixture: empty component list")
    (fun () -> ignore (M.mixture []))

(* --- pdf/cdf consistency --- *)

let test_pdf_integrates_to_cdf () =
  (* int_{lo}^{x} pdf = cdf(x) - cdf(lo) for the continuous models. *)
  List.iter
    (fun (d, lo, x) ->
      let integral = Stats.Integrate.adaptive_simpson (M.pdf d) ~a:lo ~b:x in
      checkf 1e-6 (M.to_string d) (M.cdf d x -. M.cdf d lo) integral)
    [
      (std_normal, -8.0, 1.3);
      (unit_uniform, -0.5, 0.7);
      (expo2, 0.0, 2.1);
      (mix, -10.0, 1.0);
      (lognorm, 1e-9, 3.0);
    ]

let test_uniform_cdf_exact () =
  let d = M.uniform ~lo:2.0 ~hi:6.0 in
  checkf 1e-12 "below" 0.0 (M.cdf d 1.0);
  checkf 1e-12 "quarter" 0.25 (M.cdf d 3.0);
  checkf 1e-12 "above" 1.0 (M.cdf d 7.0);
  checkf 1e-12 "density inside" 0.25 (M.pdf d 4.0);
  checkf 1e-12 "density outside" 0.0 (M.pdf d 7.0)

let test_exponential_cdf_exact () =
  checkf 1e-12 "cdf(0)" 0.0 (M.cdf expo2 0.0);
  checkf 1e-9 "cdf(1)" (1.0 -. exp (-2.0)) (M.cdf expo2 1.0);
  checkf 1e-12 "negative" 0.0 (M.cdf expo2 (-1.0))

let test_zipf_pmf_sums_to_one () =
  let total = ref 0.0 in
  for k = 1 to 5 do
    total := !total +. M.pdf zipf5 (float_of_int k)
  done;
  checkf 1e-9 "pmf sums to 1" 1.0 !total

let test_zipf_pmf_ratios () =
  (* P(1)/P(2) = 2 for exponent 1. *)
  checkf 1e-9 "rank ratio" 2.0 (M.pdf zipf5 1.0 /. M.pdf zipf5 2.0)

let test_zipf_off_atom () = checkf 1e-12 "no mass off atoms" 0.0 (M.pdf zipf5 1.5)

let test_mixture_weights_normalized () =
  (* mixture [1;3] -> weights 0.25/0.75; pdf at the second mode dominated by
     the second component. *)
  match mix with
  | M.Mixture [ (w1, _); (w2, _) ] ->
    checkf 1e-12 "w1" 0.25 w1;
    checkf 1e-12 "w2" 0.75 w2
  | _ -> Alcotest.fail "expected a two-component mixture"

(* --- inv_cdf --- *)

let test_inv_cdf_roundtrip_closed_forms () =
  List.iter
    (fun d ->
      List.iter
        (fun p -> checkf 1e-8 (M.to_string d) p (M.cdf d (M.inv_cdf d p)))
        [ 0.05; 0.25; 0.5; 0.9; 0.99 ])
    [ std_normal; unit_uniform; expo2; lognorm ]

let test_inv_cdf_mixture_bisection () =
  List.iter
    (fun p -> checkf 1e-6 "mixture roundtrip" p (M.cdf mix (M.inv_cdf mix p)))
    [ 0.1; 0.5; 0.9 ]

let test_inv_cdf_zipf () =
  (* For zipf(1, 5): P(1) = 1/H5 ~ 0.438; so inv_cdf(0.4) = 1, inv_cdf(0.5) = 2. *)
  checkf 1e-12 "first rank" 1.0 (M.inv_cdf zipf5 0.4);
  checkf 1e-12 "second rank" 2.0 (M.inv_cdf zipf5 0.5)

let test_inv_cdf_invalid () =
  Alcotest.check_raises "p out of range" (Invalid_argument "Model.inv_cdf: p must be in (0,1)")
    (fun () -> ignore (M.inv_cdf std_normal 1.0))

(* --- range probability --- *)

let test_range_probability_continuous () =
  checkf 1e-9 "central normal mass" (Stats.Special.normal_cdf 1.0 -. Stats.Special.normal_cdf (-1.0))
    (M.range_probability std_normal (-1.0) 1.0);
  checkf 1e-12 "inverted range" 0.0 (M.range_probability std_normal 1.0 (-1.0))

let test_range_probability_zipf_inclusive () =
  (* [2, 3] includes both atoms. *)
  let expected = M.pdf zipf5 2.0 +. M.pdf zipf5 3.0 in
  checkf 1e-9 "atoms inclusive" expected (M.range_probability zipf5 2.0 3.0);
  checkf 1e-9 "fractional bounds" expected (M.range_probability zipf5 1.5 3.5);
  checkf 1e-9 "whole support" 1.0 (M.range_probability zipf5 1.0 5.0)

(* --- sampling --- *)

let sample_many d seed n =
  let rng = Xo.create seed in
  let draw = Lazy.force (M.sampler d) in
  Array.init n (fun _ -> draw rng)

let test_sampling_moments () =
  List.iter
    (fun d ->
      let xs = sample_many d 123L 50_000 in
      let m = Stats.Descriptive.mean xs in
      let s = Stats.Descriptive.stddev ~mean:m xs in
      let tol_m = 4.0 *. M.stddev d /. sqrt 50_000.0 in
      if Float.abs (m -. M.mean d) > Float.max tol_m 1e-3 then
        Alcotest.failf "%s: sample mean %f vs %f" (M.to_string d) m (M.mean d);
      if Float.abs (s -. M.stddev d) /. M.stddev d > 0.05 then
        Alcotest.failf "%s: sample std %f vs %f" (M.to_string d) s (M.stddev d))
    [ std_normal; unit_uniform; expo2; mix; zipf5 ]

let test_sampling_ks_uniform () =
  (* Rough Kolmogorov-Smirnov check on the uniform sampler. *)
  let xs = sample_many unit_uniform 7L 10_000 in
  Array.sort Float.compare xs;
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      let emp = float_of_int (i + 1) /. 10_000.0 in
      worst := Float.max !worst (Float.abs (emp -. x)))
    xs;
  Alcotest.(check bool) "KS distance small" true (!worst < 0.025)

let test_sampling_within_support () =
  List.iter
    (fun d ->
      let lo, hi = M.support d in
      let xs = sample_many d 55L 5_000 in
      Array.iter
        (fun x ->
          if x < lo -. 1e-9 || x > hi +. 1e-9 then
            Alcotest.failf "%s: sample %f outside support" (M.to_string d) x)
        xs)
    [ unit_uniform; expo2; zipf5; mix ]

let test_sampling_deterministic () =
  let a = sample_many mix 99L 100 and b = sample_many mix 99L 100 in
  Alcotest.(check bool) "same seed, same draws" true (a = b)

(* --- moments & support --- *)

let test_lognormal_moments () =
  (* mean = exp(mu + sigma^2/2), E[X^2] = exp(2mu + 2 sigma^2). *)
  checkf 1e-9 "mean" (exp (0.5 +. (0.75 *. 0.75 /. 2.0))) (M.mean lognorm);
  let second = exp ((2.0 *. 0.5) +. (2.0 *. 0.75 *. 0.75)) in
  checkf 1e-9 "std" (sqrt (second -. (M.mean lognorm ** 2.0))) (M.stddev lognorm)

let test_lognormal_median () =
  (* Median is exp(mu). *)
  checkf 1e-9 "median" (exp 0.5) (M.inv_cdf lognorm 0.5)

let test_lognormal_sampling_moments () =
  let xs = sample_many lognorm 321L 50_000 in
  let m = Stats.Descriptive.mean xs in
  Alcotest.(check bool) "sample mean close" true
    (Float.abs (m -. M.mean lognorm) /. M.mean lognorm < 0.03)

let test_closed_form_moments () =
  checkf 1e-12 "uniform mean" 0.5 (M.mean unit_uniform);
  checkf 1e-9 "uniform std" (1.0 /. sqrt 12.0) (M.stddev unit_uniform);
  checkf 1e-12 "normal mean" 0.0 (M.mean std_normal);
  checkf 1e-12 "normal std" 1.0 (M.stddev std_normal);
  checkf 1e-12 "exponential mean" 0.5 (M.mean expo2);
  checkf 1e-12 "exponential std" 0.5 (M.stddev expo2)

let test_mixture_moments () =
  (* mean = 0.25*(-2) + 0.75*2 = 1; var = sum w(sigma^2 + mu^2) - mean^2. *)
  checkf 1e-9 "mixture mean" 1.0 (M.mean mix);
  let second = (0.25 *. (0.25 +. 4.0)) +. (0.75 *. (1.0 +. 4.0)) in
  checkf 1e-9 "mixture std" (sqrt (second -. 1.0)) (M.stddev mix)

let test_support () =
  Alcotest.(check (pair (float 0.0) (float 0.0))) "uniform" (0.0, 1.0) (M.support unit_uniform);
  let lo, hi = M.support std_normal in
  Alcotest.(check bool) "normal unbounded" true (lo = Float.neg_infinity && hi = Float.infinity);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "zipf" (1.0, 5.0) (M.support zipf5)

(* --- roughness functionals --- *)

let numeric_roughness_deriv1 d lo hi =
  let eps = 1e-5 in
  let f' x = (M.pdf d (x +. eps) -. M.pdf d (x -. eps)) /. (2.0 *. eps) in
  Stats.Integrate.simpson (fun x -> f' x ** 2.0) ~a:lo ~b:hi ~n:4000

let numeric_roughness_deriv2 d lo hi =
  let eps = 1e-4 in
  let f'' x = (M.pdf d (x +. eps) -. (2.0 *. M.pdf d x) +. M.pdf d (x -. eps)) /. (eps *. eps) in
  Stats.Integrate.simpson (fun x -> f'' x ** 2.0) ~a:lo ~b:hi ~n:4000

let test_roughness_normal_closed_form () =
  let d = M.normal ~mu:1.0 ~sigma:1.5 in
  (match M.roughness_deriv1 d with
  | Some v -> checkf 1e-4 "normal int f'^2" (numeric_roughness_deriv1 d (-11.0) 13.0) v
  | None -> Alcotest.fail "expected closed form");
  match M.roughness_deriv2 d with
  | Some v ->
    let num = numeric_roughness_deriv2 d (-11.0) 13.0 in
    Alcotest.(check bool) "normal int f''^2" true (Float.abs (v -. num) /. v < 1e-3)
  | None -> Alcotest.fail "expected closed form"

let test_roughness_exponential_closed_form () =
  (* int (f')^2 = rate^3/2 over (0, inf); the numeric check avoids the jump
     at zero by integrating from a small positive epsilon. *)
  let d = M.exponential ~rate:1.7 in
  (match M.roughness_deriv1 d with
  | Some v ->
    let num = numeric_roughness_deriv1 d 1e-3 12.0 in
    Alcotest.(check bool) "expo int f'^2" true (Float.abs (v -. num) /. v < 1e-2)
  | None -> Alcotest.fail "expected closed form");
  match M.roughness_deriv2 d with
  | Some v ->
    (* The numeric integral starts at a > 0 and therefore misses a mass
       fraction of about 2*rate*a; account for it in the tolerance. *)
    let a = 5e-3 in
    let num = numeric_roughness_deriv2 d a 12.0 in
    Alcotest.(check bool) "expo int f''^2" true
      (Float.abs (v -. num) /. v < (2.0 *. 1.7 *. a) +. 1e-2)
  | None -> Alcotest.fail "expected closed form"

let test_roughness_none_for_mixture () =
  Alcotest.(check bool) "mixture d1" true (M.roughness_deriv1 mix = None);
  Alcotest.(check bool) "zipf d2" true (M.roughness_deriv2 zipf5 = None)

(* --- qcheck properties --- *)

let model_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun mu sigma -> M.normal ~mu ~sigma:(0.1 +. Float.abs sigma)) (float_range (-5.) 5.)
          (float_range 0. 3.);
        map2
          (fun lo w -> M.uniform ~lo ~hi:(lo +. 0.1 +. Float.abs w))
          (float_range (-5.) 5.) (float_range 0. 10.);
        map (fun r -> M.exponential ~rate:(0.1 +. Float.abs r)) (float_range 0. 4.);
      ])

let arb_model = QCheck.make ~print:M.to_string model_gen

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf monotone" ~count:300
    QCheck.(triple arb_model (float_range (-20.) 20.) (float_range (-20.) 20.))
    (fun (d, x, y) ->
      let lo = Float.min x y and hi = Float.max x y in
      M.cdf d lo <= M.cdf d hi +. 1e-12)

let prop_range_probability_bounds =
  QCheck.Test.make ~name:"range probability in [0,1]" ~count:300
    QCheck.(triple arb_model (float_range (-20.) 20.) (float_range (-20.) 20.))
    (fun (d, x, y) ->
      let p = M.range_probability d (Float.min x y) (Float.max x y) in
      p >= -1e-12 && p <= 1.0 +. 1e-12)

let prop_range_additive =
  QCheck.Test.make ~name:"range probability additive over adjacent ranges" ~count:300
    QCheck.(quad arb_model (float_range (-10.) 10.) (float_range 0. 5.) (float_range 0. 5.))
    (fun (d, a, w1, w2) ->
      let b = a +. w1 in
      let c = b +. w2 in
      let whole = M.range_probability d a c in
      let parts = M.range_probability d a b +. M.range_probability d b c in
      Float.abs (whole -. parts) < 1e-9)

let () =
  Alcotest.run "dists"
    [
      ( "construction",
        [ Alcotest.test_case "validation" `Quick test_constructor_validation ] );
      ( "pdf/cdf",
        [
          Alcotest.test_case "pdf integrates to cdf" `Quick test_pdf_integrates_to_cdf;
          Alcotest.test_case "uniform exact" `Quick test_uniform_cdf_exact;
          Alcotest.test_case "exponential exact" `Quick test_exponential_cdf_exact;
          Alcotest.test_case "zipf pmf total" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "zipf pmf ratios" `Quick test_zipf_pmf_ratios;
          Alcotest.test_case "zipf off atom" `Quick test_zipf_off_atom;
          Alcotest.test_case "mixture weights" `Quick test_mixture_weights_normalized;
        ] );
      ( "inv_cdf",
        [
          Alcotest.test_case "closed-form roundtrip" `Quick test_inv_cdf_roundtrip_closed_forms;
          Alcotest.test_case "mixture bisection" `Quick test_inv_cdf_mixture_bisection;
          Alcotest.test_case "zipf" `Quick test_inv_cdf_zipf;
          Alcotest.test_case "invalid p" `Quick test_inv_cdf_invalid;
        ] );
      ( "range probability",
        [
          Alcotest.test_case "continuous" `Quick test_range_probability_continuous;
          Alcotest.test_case "zipf inclusive" `Quick test_range_probability_zipf_inclusive;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "moments" `Slow test_sampling_moments;
          Alcotest.test_case "KS uniform" `Quick test_sampling_ks_uniform;
          Alcotest.test_case "support" `Quick test_sampling_within_support;
          Alcotest.test_case "deterministic" `Quick test_sampling_deterministic;
        ] );
      ( "moments",
        [
          Alcotest.test_case "closed forms" `Quick test_closed_form_moments;
          Alcotest.test_case "mixture" `Quick test_mixture_moments;
          Alcotest.test_case "lognormal moments" `Quick test_lognormal_moments;
          Alcotest.test_case "lognormal median" `Quick test_lognormal_median;
          Alcotest.test_case "lognormal sampling" `Slow test_lognormal_sampling_moments;
          Alcotest.test_case "support" `Quick test_support;
        ] );
      ( "roughness",
        [
          Alcotest.test_case "normal" `Quick test_roughness_normal_closed_form;
          Alcotest.test_case "exponential" `Quick test_roughness_exponential_closed_form;
          Alcotest.test_case "none for mixture/zipf" `Quick test_roughness_none_for_mixture;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cdf_monotone; prop_range_probability_bounds; prop_range_additive ] );
    ]
