(* Tests for the bandwidth library: AMISE formulas, normal-scale constants,
   plug-in iteration, LSCV and oracle search. *)

module A = Bandwidth.Amise
module NS = Bandwidth.Normal_scale
module PI = Bandwidth.Plug_in
module L = Bandwidth.Lscv
module O = Bandwidth.Oracle
module K = Kernels.Kernel
module Xo = Prng.Xoshiro256pp

let checkf tol = Alcotest.(check (float tol))

let normal_sample seed n =
  let rng = Xo.create seed in
  Array.init n (fun _ ->
      let u1 = 1.0 -. Xo.float rng and u2 = Xo.float rng in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let bimodal_sample seed n =
  let rng = Xo.create seed in
  Array.init n (fun _ ->
      let z =
        let u1 = 1.0 -. Xo.float rng and u2 = Xo.float rng in
        sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
      in
      if Xo.bool rng then (0.3 *. z) -. 4.0 else (0.3 *. z) +. 4.0)

(* --- AMISE --- *)

let test_optimal_bin_width_formula () =
  (* h_EW = (6/(n R1))^(1/3). *)
  checkf 1e-12 "formula" ((6.0 /. (1000.0 *. 0.5)) ** (1.0 /. 3.0))
    (A.optimal_bin_width ~n:1000 ~roughness_d1:0.5)

let test_optimal_bin_width_minimizes () =
  let n = 500 and r = 0.3 in
  let h_star = A.optimal_bin_width ~n ~roughness_d1:r in
  let at = A.histogram_amise ~n ~h:h_star ~roughness_d1:r in
  List.iter
    (fun factor ->
      let worse = A.histogram_amise ~n ~h:(h_star *. factor) ~roughness_d1:r in
      if worse < at then Alcotest.failf "not a minimum at factor %f" factor)
    [ 0.5; 0.8; 1.25; 2.0 ]

let test_optimal_bandwidth_formula () =
  (* h_K = (R(K)/(n k2^2 R2))^(1/5). *)
  let expected = (0.6 /. (1000.0 *. 0.04 *. 0.7)) ** 0.2 in
  checkf 1e-12 "formula" expected
    (A.optimal_bandwidth ~kernel:K.Epanechnikov ~n:1000 ~roughness_d2:0.7)

let test_optimal_bandwidth_minimizes () =
  let n = 500 and r = 0.3 in
  let h_star = A.optimal_bandwidth ~kernel:K.Epanechnikov ~n ~roughness_d2:r in
  let at = A.kernel_amise ~kernel:K.Epanechnikov ~n ~h:h_star ~roughness_d2:r in
  List.iter
    (fun factor ->
      let worse = A.kernel_amise ~kernel:K.Epanechnikov ~n ~h:(h_star *. factor) ~roughness_d2:r in
      if worse < at then Alcotest.failf "not a minimum at factor %f" factor)
    [ 0.5; 0.8; 1.25; 2.0 ]

let test_amise_convergence_rates () =
  (* AMISE at the optimum must scale as n^(-2/3) (histogram) and n^(-4/5)
     (kernel). *)
  let r1 = 0.5 and r2 = 0.5 in
  let ratio_hist =
    A.histogram_amise_at_optimum ~n:8000 ~roughness_d1:r1
    /. A.histogram_amise_at_optimum ~n:1000 ~roughness_d1:r1
  in
  checkf 1e-9 "histogram rate" (8.0 ** (-2.0 /. 3.0)) ratio_hist;
  let ratio_kernel =
    A.kernel_amise_at_optimum ~kernel:K.Epanechnikov ~n:8000 ~roughness_d2:r2
    /. A.kernel_amise_at_optimum ~kernel:K.Epanechnikov ~n:1000 ~roughness_d2:r2
  in
  checkf 1e-9 "kernel rate" (8.0 ** (-0.8)) ratio_kernel

let test_amise_validation () =
  Alcotest.check_raises "bad roughness"
    (Invalid_argument "Amise.optimal_bin_width: roughness functional must be positive and finite")
    (fun () -> ignore (A.optimal_bin_width ~n:10 ~roughness_d1:0.0));
  Alcotest.check_raises "bad n" (Invalid_argument "Amise.optimal_bandwidth: n must be positive")
    (fun () -> ignore (A.optimal_bandwidth ~kernel:K.Epanechnikov ~n:0 ~roughness_d2:1.0))

(* --- normal scale --- *)

let test_ns_bin_width_constant () =
  (* (24 sqrt pi)^(1/3) ~ 3.4908. *)
  checkf 1e-3 "constant" 3.4908 (NS.bin_width ~n:1 ~scale:1.0)

let test_ns_bandwidth_paper_constant () =
  (* The paper's Epanechnikov constant: h ~ 2.345 s n^(-1/5). *)
  checkf 1e-3 "2.345" 2.3455 (NS.bandwidth ~kernel:K.Epanechnikov ~n:1 ~scale:1.0)

let test_ns_gaussian_constant () =
  (* The classical 1.06 sigma n^(-1/5) rule. *)
  checkf 1e-3 "1.0592" 1.0592 (NS.bandwidth ~kernel:K.Gaussian ~n:1 ~scale:1.0)

let test_ns_scaling_laws () =
  let w1 = NS.bin_width ~n:1000 ~scale:2.0 in
  checkf 1e-9 "linear in scale" (2.0 *. NS.bin_width ~n:1000 ~scale:1.0) w1;
  checkf 1e-9 "n^(-1/3)"
    (NS.bin_width ~n:1000 ~scale:1.0 /. 2.0)
    (NS.bin_width ~n:8000 ~scale:1.0);
  checkf 1e-9 "n^(-1/5)"
    (NS.bandwidth ~kernel:K.Epanechnikov ~n:100 ~scale:1.0 /. 2.0)
    (NS.bandwidth ~kernel:K.Epanechnikov ~n:3200 ~scale:1.0)

let test_ns_bin_count () =
  let k = NS.bin_count ~domain:(0.0, 100.0) ~n:1000 ~scale:5.0 in
  let h = NS.bin_width ~n:1000 ~scale:5.0 in
  Alcotest.(check int) "ceil" (int_of_float (Float.ceil (100.0 /. h))) k

let test_ns_of_samples () =
  let xs = normal_sample 1L 2000 in
  let h = NS.bandwidth_of_samples ~kernel:K.Epanechnikov xs in
  (* scale ~ 1, so h ~ 2.345 * 2000^(-0.2) ~ 0.51. *)
  Alcotest.(check bool) "plausible" true (h > 0.4 && h < 0.65)

(* --- plug-in --- *)

let test_plug_in_zero_iterations_close_to_ns_on_normal () =
  (* On truly normal data the plug-in estimate of int f''^2 from the NS
     pilot is close to the normal closed form, so h-DPI ~ h-NS. *)
  let xs = normal_sample 2L 2000 in
  let h_ns = NS.bandwidth_of_samples ~kernel:K.Epanechnikov xs in
  let h_dpi = PI.bandwidth ~iterations:2 ~kernel:K.Epanechnikov xs in
  Alcotest.(check bool)
    (Printf.sprintf "within 30%% (%.3f vs %.3f)" h_dpi h_ns)
    true
    (Float.abs (h_dpi -. h_ns) /. h_ns < 0.3)

let test_plug_in_shrinks_on_bimodal () =
  (* Bimodal data has much higher curvature than a normal with the same
     variance: DPI must choose a clearly smaller bandwidth than NS. *)
  let xs = bimodal_sample 3L 2000 in
  let h_ns = NS.bandwidth_of_samples ~kernel:K.Epanechnikov xs in
  let h_dpi = PI.bandwidth ~iterations:2 ~kernel:K.Epanechnikov xs in
  Alcotest.(check bool)
    (Printf.sprintf "shrinks (%.3f vs %.3f)" h_dpi h_ns)
    true (h_dpi < 0.5 *. h_ns)

let test_plug_in_functionals_positive () =
  let xs = normal_sample 4L 1000 in
  let d1, d2 = PI.functionals ~iterations:2 xs in
  Alcotest.(check bool) "d1 positive" true (d1 > 0.0);
  Alcotest.(check bool) "d2 positive" true (d2 > 0.0)

let test_plug_in_functionals_near_normal_truth () =
  (* For a standard normal: int f'^2 = 1/(4 sqrt pi) ~ 0.141,
     int f''^2 = 3/(8 sqrt pi) ~ 0.2116. *)
  let xs = normal_sample 5L 4000 in
  let d1, d2 = PI.functionals ~iterations:2 xs in
  Alcotest.(check bool)
    (Printf.sprintf "d1 close (%.4f)" d1)
    true
    (Float.abs (d1 -. 0.141) /. 0.141 < 0.25);
  Alcotest.(check bool)
    (Printf.sprintf "d2 close (%.4f)" d2)
    true
    (Float.abs (d2 -. 0.2116) /. 0.2116 < 0.35)

let test_plug_in_bin_count_reasonable () =
  let xs = normal_sample 6L 2000 in
  let k = PI.bin_count ~domain:(-5.0, 5.0) xs in
  Alcotest.(check bool) (Printf.sprintf "bins %d" k) true (k > 5 && k < 200)

let test_plug_in_validation () =
  Alcotest.check_raises "negative iterations"
    (Invalid_argument "Plug_in.functionals: iterations must be >= 0") (fun () ->
      ignore (PI.functionals ~iterations:(-1) (normal_sample 1L 10)))

(* --- LSCV --- *)

let test_lscv_objective_shape () =
  (* The LSCV score must be worse at extreme bandwidths than near the
     optimum. *)
  let xs = normal_sample 7L 500 in
  let near = L.objective xs 0.3 in
  let tiny = L.objective xs 0.005 in
  let huge = L.objective xs 30.0 in
  Alcotest.(check bool) "tiny worse" true (tiny > near);
  Alcotest.(check bool) "huge worse" true (huge > near)

let test_lscv_bandwidth_reasonable () =
  let xs = normal_sample 8L 800 in
  let h = L.bandwidth ~kernel:K.Epanechnikov xs in
  let h_ns = NS.bandwidth_of_samples ~kernel:K.Epanechnikov xs in
  (* LSCV is noisy but should land within a factor ~2.5 of NS on normal
     data. *)
  Alcotest.(check bool)
    (Printf.sprintf "in range (%.3f vs NS %.3f)" h h_ns)
    true
    (h > h_ns /. 2.5 && h < h_ns *. 2.5)

let test_lscv_validation () =
  Alcotest.check_raises "h" (Invalid_argument "Lscv.objective: bandwidth must be positive and finite")
    (fun () -> ignore (L.objective (normal_sample 1L 10) 0.0))

(* --- oracle --- *)

let test_oracle_bandwidth_finds_minimum () =
  let objective h = ((log h -. log 2.0) ** 2.0) +. 0.1 in
  let h, e = O.best_bandwidth ~objective ~lo:0.01 ~hi:100.0 () in
  Alcotest.(check bool) "argmin" true (Float.abs (h -. 2.0) /. 2.0 < 0.05);
  checkf 1e-3 "min" 0.1 e

let test_oracle_bin_count_finds_minimum () =
  let objective k = Float.abs (float_of_int k -. 37.0) in
  let k, _ = O.best_bin_count ~max_bins:500 ~objective () in
  (* The geometric grid does not contain every integer; accept the nearest
     grid point. *)
  Alcotest.(check bool) (Printf.sprintf "near 37 (%d)" k) true (abs (k - 37) <= 3)

let test_oracle_bin_count_includes_one () =
  let objective k = float_of_int k in
  let k, _ = O.best_bin_count ~max_bins:100 ~objective () in
  Alcotest.(check int) "one bin" 1 k

(* --- MISE simulation --- *)

module Mi = Bandwidth.Mise

let std_normal_model = Dists.Model.normal ~mu:0.0 ~sigma:1.0
let mise_domain = (-6.0, 6.0)

let test_mise_validation () =
  Alcotest.check_raises "replications" (Invalid_argument "Mise.simulate: replications must be positive")
    (fun () ->
      ignore
        (Mi.simulate ~replications:0 ~model:std_normal_model ~domain:mise_domain ~n:10 ~seed:1L
           ~build:(fun _ _ -> 0.0) ()))

let test_mise_zero_for_perfect_estimator () =
  let r =
    Mi.simulate ~replications:3 ~model:std_normal_model ~domain:mise_domain ~n:10 ~seed:2L
      ~build:(fun _ -> Dists.Model.pdf std_normal_model)
      ()
  in
  checkf 1e-12 "perfect estimator" 0.0 r.Mi.mise

let test_kernel_mise_minimized_near_amise_optimum () =
  (* The AMISE-optimal bandwidth must beat strong over- and
     under-smoothing in the simulated true MISE. *)
  let n = 200 in
  let roughness = 3.0 /. (8.0 *. 1.7724538509055159) in
  let h_star = A.optimal_bandwidth ~kernel:K.Epanechnikov ~n ~roughness_d2:roughness in
  let mise h =
    (Mi.kernel_mise ~replications:20 ~model:std_normal_model ~domain:mise_domain ~n ~h
       ~seed:3L ())
      .Mi.mise
  in
  let at_star = mise h_star in
  Alcotest.(check bool)
    (Printf.sprintf "h*/5 worse (%.5f vs %.5f)" (mise (h_star /. 5.0)) at_star)
    true
    (mise (h_star /. 5.0) > at_star);
  Alcotest.(check bool)
    (Printf.sprintf "5h* worse (%.5f vs %.5f)" (mise (h_star *. 5.0)) at_star)
    true
    (mise (h_star *. 5.0) > at_star)

let test_kernel_mise_matches_amise_value () =
  (* At the optimum and a moderate n, AMISE approximates MISE within ~35%. *)
  let n = 500 in
  let roughness = 3.0 /. (8.0 *. 1.7724538509055159) in
  let h_star = A.optimal_bandwidth ~kernel:K.Epanechnikov ~n ~roughness_d2:roughness in
  let predicted = A.kernel_amise ~kernel:K.Epanechnikov ~n ~h:h_star ~roughness_d2:roughness in
  let measured =
    (Mi.kernel_mise ~replications:30 ~model:std_normal_model ~domain:mise_domain ~n ~h:h_star
       ~seed:4L ())
      .Mi.mise
  in
  Alcotest.(check bool)
    (Printf.sprintf "AMISE %.5f ~ MISE %.5f" predicted measured)
    true
    (Float.abs (measured -. predicted) /. predicted < 0.35)

let test_histogram_mise_minimized_near_amise_optimum () =
  let n = 200 in
  let roughness = 1.0 /. (4.0 *. 1.7724538509055159) in
  let h_star = A.optimal_bin_width ~n ~roughness_d1:roughness in
  let domain_width = 12.0 in
  let bins_star = int_of_float (Float.round (domain_width /. h_star)) in
  let mise bins =
    (Mi.histogram_mise ~replications:20 ~model:std_normal_model ~domain:mise_domain ~n ~bins
       ~seed:5L ())
      .Mi.mise
  in
  let at_star = mise bins_star in
  Alcotest.(check bool) "far fewer bins worse" true (mise (Int.max 1 (bins_star / 6)) > at_star);
  Alcotest.(check bool) "far more bins worse" true (mise (bins_star * 6) > at_star)

let test_mise_decreases_with_n () =
  let roughness = 3.0 /. (8.0 *. 1.7724538509055159) in
  let mise n =
    let h = A.optimal_bandwidth ~kernel:K.Epanechnikov ~n ~roughness_d2:roughness in
    (Mi.kernel_mise ~replications:20 ~model:std_normal_model ~domain:mise_domain ~n ~h ~seed:6L ())
      .Mi.mise
  in
  let small = mise 100 and large = mise 1600 in
  (* Theory: factor 16^(4/5) ~ 9.2; allow generous slack for Monte-Carlo
     noise and the boundary-free domain. *)
  Alcotest.(check bool)
    (Printf.sprintf "n=1600 (%.6f) much better than n=100 (%.6f)" large small)
    true
    (large < small /. 4.0)

let () =
  Alcotest.run "bandwidth"
    [
      ( "amise",
        [
          Alcotest.test_case "bin width formula" `Quick test_optimal_bin_width_formula;
          Alcotest.test_case "bin width minimizes" `Quick test_optimal_bin_width_minimizes;
          Alcotest.test_case "bandwidth formula" `Quick test_optimal_bandwidth_formula;
          Alcotest.test_case "bandwidth minimizes" `Quick test_optimal_bandwidth_minimizes;
          Alcotest.test_case "convergence rates" `Quick test_amise_convergence_rates;
          Alcotest.test_case "validation" `Quick test_amise_validation;
        ] );
      ( "normal scale",
        [
          Alcotest.test_case "bin width constant" `Quick test_ns_bin_width_constant;
          Alcotest.test_case "paper's 2.345" `Quick test_ns_bandwidth_paper_constant;
          Alcotest.test_case "gaussian 1.06" `Quick test_ns_gaussian_constant;
          Alcotest.test_case "scaling laws" `Quick test_ns_scaling_laws;
          Alcotest.test_case "bin count" `Quick test_ns_bin_count;
          Alcotest.test_case "of samples" `Quick test_ns_of_samples;
        ] );
      ( "plug-in",
        [
          Alcotest.test_case "close to NS on normal" `Quick
            test_plug_in_zero_iterations_close_to_ns_on_normal;
          Alcotest.test_case "shrinks on bimodal" `Quick test_plug_in_shrinks_on_bimodal;
          Alcotest.test_case "functionals positive" `Quick test_plug_in_functionals_positive;
          Alcotest.test_case "functionals near truth" `Slow
            test_plug_in_functionals_near_normal_truth;
          Alcotest.test_case "bin count" `Quick test_plug_in_bin_count_reasonable;
          Alcotest.test_case "validation" `Quick test_plug_in_validation;
        ] );
      ( "lscv",
        [
          Alcotest.test_case "objective shape" `Quick test_lscv_objective_shape;
          Alcotest.test_case "bandwidth reasonable" `Quick test_lscv_bandwidth_reasonable;
          Alcotest.test_case "validation" `Quick test_lscv_validation;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "bandwidth minimum" `Quick test_oracle_bandwidth_finds_minimum;
          Alcotest.test_case "bin count minimum" `Quick test_oracle_bin_count_finds_minimum;
          Alcotest.test_case "includes one bin" `Quick test_oracle_bin_count_includes_one;
        ] );
      ( "mise simulation",
        [
          Alcotest.test_case "validation" `Quick test_mise_validation;
          Alcotest.test_case "perfect estimator" `Quick test_mise_zero_for_perfect_estimator;
          Alcotest.test_case "kernel optimum" `Slow test_kernel_mise_minimized_near_amise_optimum;
          Alcotest.test_case "amise value" `Slow test_kernel_mise_matches_amise_value;
          Alcotest.test_case "histogram optimum" `Slow
            test_histogram_mise_minimized_near_amise_optimum;
          Alcotest.test_case "decreases with n" `Slow test_mise_decreases_with_n;
        ] );
    ]
