(* Tests for the stats library: descriptive statistics, quantiles, special
   functions, integration and minimization. *)

module D = Stats.Descriptive
module Q = Stats.Quantile
module Sp = Stats.Special
module I = Stats.Integrate
module O = Stats.Optimize
module A = Stats.Array_util

let checkf tol = Alcotest.(check (float tol))

(* --- Array_util --- *)

let test_is_sorted () =
  Alcotest.(check bool) "sorted" true (A.is_sorted compare [| 1; 2; 2; 3 |]);
  Alcotest.(check bool) "unsorted" false (A.is_sorted compare [| 1; 3; 2 |]);
  Alcotest.(check bool) "empty" true (A.is_sorted compare ([||] : int array));
  Alcotest.(check bool) "singleton" true (A.is_sorted compare [| 5 |])

let test_bounds_basic () =
  let a = [| 1.0; 2.0; 2.0; 5.0; 9.0 |] in
  Alcotest.(check int) "lower_bound mid" 1 (A.float_lower_bound a 2.0);
  Alcotest.(check int) "upper_bound mid" 3 (A.float_upper_bound a 2.0);
  Alcotest.(check int) "lower_bound below" 0 (A.float_lower_bound a 0.0);
  Alcotest.(check int) "upper_bound above" 5 (A.float_upper_bound a 10.0);
  Alcotest.(check int) "lower_bound between" 3 (A.float_lower_bound a 3.0)

let test_count_in_range () =
  let a = [| 1; 2; 2; 5; 9 |] in
  Alcotest.(check int) "inclusive count" 3 (A.count_in_range compare a 2 5);
  Alcotest.(check int) "empty when inverted" 0 (A.count_in_range compare a 5 2);
  Alcotest.(check int) "whole" 5 (A.count_in_range compare a 0 100)

let prop_bounds_agree_with_scan =
  QCheck.Test.make ~name:"binary search bounds match linear scan" ~count:500
    QCheck.(pair (list (int_range 0 50)) (int_range 0 50))
    (fun (l, x) ->
      let a = Array.of_list (List.sort compare l) in
      let lb = A.int_lower_bound a x and ub = A.int_upper_bound a x in
      let lb' = Array.fold_left (fun acc v -> if v < x then acc + 1 else acc) 0 a in
      let ub' = Array.fold_left (fun acc v -> if v <= x then acc + 1 else acc) 0 a in
      lb = lb' && ub = ub')

(* --- Descriptive --- *)

let test_mean_known () =
  checkf 1e-9 "mean" 2.5 (D.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Descriptive.mean: empty array") (fun () ->
      ignore (D.mean [||]))

let test_variance_known () =
  (* Var of 2,4,4,4,5,5,7,9 is 4 (population) and 32/7 (sample). *)
  let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  checkf 1e-9 "population" 4.0 (D.population_variance a);
  checkf 1e-9 "sample" (32.0 /. 7.0) (D.variance a)

let test_variance_constant () =
  checkf 1e-12 "zero variance" 0.0 (D.variance [| 3.0; 3.0; 3.0 |])

let test_kahan_precision () =
  (* Summing 1e16 with many tiny values loses them without compensation. *)
  let a = Array.make 10_001 1.0 in
  a.(0) <- 1e16;
  checkf 0.5 "compensated" (1e16 +. 10_000.0) (D.kahan_sum a)

let test_min_max () =
  let mn, mx = D.min_max [| 3.0; -1.0; 7.0; 0.0 |] in
  checkf 1e-12 "min" (-1.0) mn;
  checkf 1e-12 "max" 7.0 mx

let test_skewness_symmetric () =
  let a = [| -2.0; -1.0; 0.0; 1.0; 2.0 |] in
  checkf 1e-9 "symmetric has zero skew" 0.0 (D.skewness a)

let test_kurtosis_uniformish () =
  (* Discrete uniform on -2..2 has excess kurtosis m4/m2^2 - 3 = 1.7 - 3. *)
  let a = [| -2.0; -1.0; 0.0; 1.0; 2.0 |] in
  checkf 1e-9 "excess kurtosis" (1.7 -. 3.0) (D.kurtosis_excess a)

let test_int_stats () =
  checkf 1e-9 "mean_of_ints" 2.5 (D.mean_of_ints [| 1; 2; 3; 4 |]);
  checkf 1e-9 "stddev_of_ints"
    (D.stddev [| 1.0; 2.0; 3.0; 4.0 |])
    (D.stddev_of_ints [| 1; 2; 3; 4 |])

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:300
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-100.) 100.))
    (fun l ->
      let a = Array.of_list l in
      D.variance a >= -1e-9)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun l ->
      let a = Array.of_list l in
      let mn, mx = D.min_max a in
      let m = D.mean a in
      m >= mn -. 1e-9 && m <= mx +. 1e-9)

(* --- Quantile --- *)

let test_quantile_type7 () =
  (* R: quantile(c(1,2,3,4), 0.25, type=7) = 1.75 *)
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf 1e-9 "q25" 1.75 (Q.quantile_sorted a 0.25);
  checkf 1e-9 "q50" 2.5 (Q.quantile_sorted a 0.5);
  checkf 1e-9 "q0" 1.0 (Q.quantile_sorted a 0.0);
  checkf 1e-9 "q1" 4.0 (Q.quantile_sorted a 1.0)

let test_quantile_unsorted_input () =
  checkf 1e-9 "sorts internally" 2.5 (Q.quantile [| 4.0; 1.0; 3.0; 2.0 |] 0.5)

let test_median_singleton () = checkf 1e-9 "single" 42.0 (Q.median_sorted [| 42.0 |])

let test_iqr () =
  let a = Array.init 101 (fun i -> float_of_int i) in
  checkf 1e-9 "iqr of 0..100" 50.0 (Q.iqr_sorted a)

let test_robust_scale_normalish () =
  (* For near-normal data the IQR/1.348 estimate is close to the stddev, and
     robust_scale takes the min of the two. *)
  let a = Array.init 1001 (fun i -> Sp.normal_quantile ((float_of_int i +. 1.0) /. 1002.0)) in
  Array.sort Float.compare a;
  let s = Q.robust_scale_sorted a in
  Alcotest.(check bool) "close to 1" true (Float.abs (s -. 1.0) < 0.05)

let test_robust_scale_degenerate_iqr () =
  (* Heavy duplication: IQR = 0 but stddev > 0; falls back to stddev. *)
  let a = Array.concat [ Array.make 90 5.0; [| 0.0; 10.0 |] ] in
  Array.sort Float.compare a;
  let s = Q.robust_scale_sorted a in
  Alcotest.(check bool) "positive" true (s > 0.0)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:300
    QCheck.(triple (list_of_size (Gen.int_range 1 40) (float_range 0. 100.)) (float_range 0. 1.) (float_range 0. 1.))
    (fun (l, q1, q2) ->
      let a = Array.of_list (List.sort Float.compare l) in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Q.quantile_sorted a lo <= Q.quantile_sorted a hi +. 1e-9)

(* --- Special functions --- *)

let test_erf_reference () =
  (* Reference values from Abramowitz & Stegun. *)
  checkf 1e-7 "erf(0)" 0.0 (Sp.erf 0.0);
  checkf 1e-7 "erf(0.5)" 0.5204998778 (Sp.erf 0.5);
  checkf 1e-7 "erf(1)" 0.8427007929 (Sp.erf 1.0);
  checkf 1e-7 "erf(2)" 0.9953222650 (Sp.erf 2.0);
  checkf 1e-7 "erf(-1)" (-0.8427007929) (Sp.erf (-1.0))

let test_erfc_identity () =
  List.iter
    (fun x -> checkf 1e-12 "erf + erfc = 1" 1.0 (Sp.erf x +. Sp.erfc x))
    [ -3.0; -0.3; 0.0; 0.2; 1.0; 4.5; 9.0 ]

let test_erfc_large_tail () =
  (* erfc(5) = 1.537e-12; naive 1 - erf would be 0. *)
  let v = Sp.erfc 5.0 in
  Alcotest.(check bool) "positive tail" true (v > 1.0e-12 && v < 2.0e-12)

let test_normal_cdf_reference () =
  checkf 1e-9 "Phi(0)" 0.5 (Sp.normal_cdf 0.0);
  checkf 1e-7 "Phi(1.96)" 0.9750021049 (Sp.normal_cdf 1.96);
  checkf 1e-7 "Phi(-1)" 0.1586552539 (Sp.normal_cdf (-1.0))

let test_normal_pdf_reference () =
  checkf 1e-10 "phi(0)" 0.3989422804014327 (Sp.normal_pdf 0.0);
  checkf 1e-10 "phi(1)" 0.24197072451914337 (Sp.normal_pdf 1.0)

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p -> checkf 1e-9 "Phi(Phi^-1(p)) = p" p (Sp.normal_cdf (Sp.normal_quantile p)))
    [ 1e-6; 0.01; 0.25; 0.5; 0.75; 0.99; 1.0 -. 1e-6 ]

let test_normal_quantile_invalid () =
  Alcotest.check_raises "p=0" (Invalid_argument "Special.normal_quantile: p must be in (0,1)")
    (fun () -> ignore (Sp.normal_quantile 0.0))

let prop_cdf_monotone =
  QCheck.Test.make ~name:"normal_cdf is monotone" ~count:500
    QCheck.(pair (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (x, y) ->
      let lo = Float.min x y and hi = Float.max x y in
      Sp.normal_cdf lo <= Sp.normal_cdf hi +. 1e-15)

let prop_erf_odd =
  QCheck.Test.make ~name:"erf is odd" ~count:300
    QCheck.(float_range (-6.) 6.)
    (fun x -> Float.abs (Sp.erf (-.x) +. Sp.erf x) < 1e-14)

(* --- Integration --- *)

let test_trapezoid_linear_exact () =
  checkf 1e-12 "linear exact" 12.5 (I.trapezoid (fun x -> x) ~a:0.0 ~b:5.0 ~n:7)

let test_simpson_cubic_exact () =
  (* Simpson integrates cubics exactly. *)
  checkf 1e-9 "cubic exact" 156.25 (I.simpson (fun x -> x ** 3.0) ~a:0.0 ~b:5.0 ~n:10)

let test_simpson_odd_n_rounds () =
  checkf 1e-9 "odd n handled" 156.25 (I.simpson (fun x -> x ** 3.0) ~a:0.0 ~b:5.0 ~n:9)

let test_adaptive_simpson_sin () =
  checkf 1e-9 "int_0^pi sin = 2" 2.0 (I.adaptive_simpson sin ~a:0.0 ~b:Float.pi)

let test_adaptive_simpson_gaussian () =
  checkf 1e-8 "gaussian mass" 1.0 (I.adaptive_simpson Sp.normal_pdf ~a:(-10.0) ~b:10.0)

let test_gauss_legendre_polynomial_exact () =
  (* GL-10 is exact for polynomials up to degree 19. *)
  let f x = (x ** 19.0) +. (3.0 *. (x ** 7.0)) -. x +. 2.0 in
  let exact = ((2.0 ** 20.0) /. 20.0) +. (3.0 *. (2.0 ** 8.0) /. 8.0) -. 2.0 +. 4.0 in
  checkf 1e-6 "degree 19 exact" exact (I.gauss_legendre_10 f ~a:0.0 ~b:2.0)

let test_gauss_legendre_matches_adaptive () =
  List.iter
    (fun (f, a, b) ->
      checkf 1e-8 "smooth integrand" (I.adaptive_simpson f ~a ~b) (I.gauss_legendre_10 f ~a ~b))
    [ (sin, 0.0, 1.5); ((fun x -> exp (-.x *. x)), -1.0, 1.0) ]

let test_gauss_legendre_degenerate_interval () =
  checkf 1e-12 "zero width" 0.0 (I.gauss_legendre_10 sin ~a:1.0 ~b:1.0)

let test_integrate_grid () =
  let xs = Array.init 11 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  checkf 1e-9 "trapezoid on grid" 110.0 (I.integrate_grid xs ys)

let test_integrate_grid_invalid () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Integrate.integrate_grid: length mismatch") (fun () ->
      ignore (I.integrate_grid [| 0.0; 1.0 |] [| 0.0 |]))

let test_simpson_invalid_n () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Integrate.simpson: n must be positive")
    (fun () -> ignore (I.simpson sin ~a:0.0 ~b:1.0 ~n:0))

(* --- Optimization --- *)

let test_golden_quadratic () =
  let x, fx = O.golden_section (fun x -> (x -. 3.0) ** 2.0) ~lo:0.0 ~hi:10.0 in
  checkf 1e-5 "argmin" 3.0 x;
  checkf 1e-9 "min value" 0.0 fx

let test_golden_boundary_min () =
  let x, _ = O.golden_section (fun x -> x) ~lo:2.0 ~hi:5.0 in
  checkf 1e-4 "monotone objective ends at left bound" 2.0 x

let test_grid_min () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let x, fx = O.grid_min (fun x -> Float.abs (x -. 2.9)) xs in
  checkf 1e-12 "grid argmin" 3.0 x;
  checkf 1e-12 "grid min" 0.1 fx

let test_log_grid_endpoints () =
  let g = O.log_grid ~lo:0.1 ~hi:10.0 ~n:5 in
  checkf 1e-12 "first" 0.1 g.(0);
  checkf 1e-9 "last" 10.0 g.(4);
  checkf 1e-9 "geometric middle" 1.0 g.(2)

let test_linear_grid () =
  let g = O.linear_grid ~lo:0.0 ~hi:1.0 ~n:5 in
  Alcotest.(check (array (float 1e-12))) "linear" [| 0.0; 0.25; 0.5; 0.75; 1.0 |] g

let test_refine_around_grid_min () =
  let f x = (x -. 2.7) ** 2.0 in
  let grid = O.linear_grid ~lo:0.0 ~hi:10.0 ~n:11 in
  let x, _ = O.refine_around_grid_min f grid in
  checkf 1e-4 "refined argmin" 2.7 x

let () =
  Alcotest.run "stats"
    [
      ( "array_util",
        [
          Alcotest.test_case "is_sorted" `Quick test_is_sorted;
          Alcotest.test_case "bounds basic" `Quick test_bounds_basic;
          Alcotest.test_case "count_in_range" `Quick test_count_in_range;
          QCheck_alcotest.to_alcotest prop_bounds_agree_with_scan;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "mean known" `Quick test_mean_known;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "variance known" `Quick test_variance_known;
          Alcotest.test_case "variance constant" `Quick test_variance_constant;
          Alcotest.test_case "kahan precision" `Quick test_kahan_precision;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "skewness symmetric" `Quick test_skewness_symmetric;
          Alcotest.test_case "kurtosis" `Quick test_kurtosis_uniformish;
          Alcotest.test_case "int variants" `Quick test_int_stats;
          QCheck_alcotest.to_alcotest prop_variance_nonneg;
          QCheck_alcotest.to_alcotest prop_mean_bounds;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "type-7 reference" `Quick test_quantile_type7;
          Alcotest.test_case "unsorted input" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "median singleton" `Quick test_median_singleton;
          Alcotest.test_case "iqr" `Quick test_iqr;
          Alcotest.test_case "robust scale near-normal" `Quick test_robust_scale_normalish;
          Alcotest.test_case "robust scale degenerate IQR" `Quick test_robust_scale_degenerate_iqr;
          QCheck_alcotest.to_alcotest prop_quantile_monotone;
        ] );
      ( "special",
        [
          Alcotest.test_case "erf reference" `Quick test_erf_reference;
          Alcotest.test_case "erf+erfc identity" `Quick test_erfc_identity;
          Alcotest.test_case "erfc tail" `Quick test_erfc_large_tail;
          Alcotest.test_case "normal cdf reference" `Quick test_normal_cdf_reference;
          Alcotest.test_case "normal pdf reference" `Quick test_normal_pdf_reference;
          Alcotest.test_case "quantile roundtrip" `Quick test_normal_quantile_roundtrip;
          Alcotest.test_case "quantile invalid" `Quick test_normal_quantile_invalid;
          QCheck_alcotest.to_alcotest prop_cdf_monotone;
          QCheck_alcotest.to_alcotest prop_erf_odd;
        ] );
      ( "integrate",
        [
          Alcotest.test_case "trapezoid linear" `Quick test_trapezoid_linear_exact;
          Alcotest.test_case "simpson cubic" `Quick test_simpson_cubic_exact;
          Alcotest.test_case "simpson odd n" `Quick test_simpson_odd_n_rounds;
          Alcotest.test_case "adaptive sin" `Quick test_adaptive_simpson_sin;
          Alcotest.test_case "adaptive gaussian" `Quick test_adaptive_simpson_gaussian;
          Alcotest.test_case "gauss-legendre polynomial" `Quick
            test_gauss_legendre_polynomial_exact;
          Alcotest.test_case "gauss-legendre vs adaptive" `Quick
            test_gauss_legendre_matches_adaptive;
          Alcotest.test_case "gauss-legendre degenerate" `Quick
            test_gauss_legendre_degenerate_interval;
          Alcotest.test_case "grid" `Quick test_integrate_grid;
          Alcotest.test_case "grid invalid" `Quick test_integrate_grid_invalid;
          Alcotest.test_case "simpson invalid" `Quick test_simpson_invalid_n;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "golden quadratic" `Quick test_golden_quadratic;
          Alcotest.test_case "golden boundary" `Quick test_golden_boundary_min;
          Alcotest.test_case "grid_min" `Quick test_grid_min;
          Alcotest.test_case "log_grid" `Quick test_log_grid_endpoints;
          Alcotest.test_case "linear_grid" `Quick test_linear_grid;
          Alcotest.test_case "refine around grid min" `Quick test_refine_around_grid_min;
        ] );
    ]
