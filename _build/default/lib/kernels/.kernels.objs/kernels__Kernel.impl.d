lib/kernels/kernel.ml: Float List Stats String
