lib/kernels/boundary.ml:
