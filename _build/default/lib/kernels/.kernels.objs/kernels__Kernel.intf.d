lib/kernels/kernel.mli:
