lib/kernels/boundary.mli:
