let check_q q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Boundary: q must be in [0, 1]"

let left ~u ~q =
  check_q q;
  if u < -1.0 || u > q then 0.0
  else begin
    let denom = (1.0 +. q) ** 3.0 in
    (3.0 +. (3.0 *. q *. q) -. (6.0 *. u *. u)) /. denom
  end

let right ~u ~q = left ~u:(-.u) ~q

let left_cdf ~u ~q =
  check_q q;
  if u <= -1.0 then 0.0
  else if u >= q then 1.0
  else begin
    let denom = (1.0 +. q) ** 3.0 in
    (* The kernel is signed near u = -1 (second-order boundary kernels are
       not densities), so the primitive may legitimately leave [0, 1] in the
       interior; do not clamp there. *)
    let v = ((3.0 +. (3.0 *. q *. q)) *. (u +. 1.0)) -. (2.0 *. ((u ** 3.0) +. 1.0)) in
    v /. denom
  end

let right_cdf ~u ~q = 1.0 -. left_cdf ~u:(-.u) ~q
