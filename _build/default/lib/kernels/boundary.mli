(** Boundary kernels for the left and right boundary regions.

    Section 3.2.1: within one bandwidth of a domain boundary the ordinary
    kernel estimator loses mass outside the domain and is inconsistent.  The
    second remedy of the paper replaces the Epanechnikov kernel for
    estimation points [x in [l, l+h)] by the family of Simonoff & Dong
    (1994)

    {v K_l(u, q) = (3 + 3q^2 - 6u^2) / (1 + q)^3   for u in [-1, q] v}

    with [q = (x - l) / h in [0, 1]]; the right boundary uses the mirrored
    family.  Each member integrates to one over its support, so consistency
    is restored at the price of the estimate not being a density (the paper
    accepts that trade-off). *)

val left : u:float -> q:float -> float
(** [left ~u ~q] is [K_l(u, q)]; zero outside [[-1, q]].
    @raise Invalid_argument unless [0 <= q <= 1]. *)

val right : u:float -> q:float -> float
(** [right ~u ~q = left ~u:(-u) ~q]: support [[-q, 1]]. *)

val left_cdf : u:float -> q:float -> float
(** [left_cdf ~u ~q] is [int_{-1}^{u} K_l(v, q) dv]; closed form
    [((3 + 3q^2)(u + 1) - 2(u^3 + 1)) / (1 + q)^3].  The kernel is signed
    near [u = -1], so the primitive may leave [[0, 1]] in the interior; it
    is exactly 0 at [u <= -1] and 1 at [u >= q]. *)

val right_cdf : u:float -> q:float -> float
(** [right_cdf ~u ~q] is [int_{-inf}^{u}] of the right-boundary kernel,
    i.e. [1 - left_cdf ~u:(-u) ~q]. *)
