lib/workload/generate.mli: Data Query
