lib/workload/generate.ml: Array Data Float Int Prng Query
