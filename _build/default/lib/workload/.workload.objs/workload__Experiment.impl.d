lib/workload/experiment.ml: Bandwidth Data Float Kernels List Metrics Prng Selest
