lib/workload/metrics.ml: Array Data Float Query
