lib/workload/query.ml: Float
