lib/workload/experiment.mli: Data Kde Metrics Query Selest
