lib/workload/metrics.mli: Data Query
