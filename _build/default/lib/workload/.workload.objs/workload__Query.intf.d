lib/workload/query.mli:
