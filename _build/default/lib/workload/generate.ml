let paper_fractions = [ 0.01; 0.02; 0.05; 0.10 ]
let paper_count = 1000

(* Queries are integer ranges over the attribute domain: a query of
   [width_int] values covering integers [a .. a + width_int - 1] is
   represented by the continuous interval [a - 0.5, a + width_int - 0.5],
   so that the exact oracle (which counts integers) and the density
   estimators (which integrate) see exactly the same atoms — each value's
   kernel bump is symmetric around the value, so half-integer endpoints
   include or exclude whole atoms. *)

let width_of ds fraction =
  Int.max 1 (int_of_float (Float.round (fraction *. float_of_int (Data.Dataset.domain_size ds))))

let query_of_start a width_int =
  Query.make ~lo:(float_of_int a -. 0.5) ~hi:(float_of_int (a + width_int - 1) +. 0.5)

let size_separated ds ~seed ~fraction ~count =
  if not (fraction > 0.0 && fraction <= 1.0) then
    invalid_arg "Generate.size_separated: fraction must be in (0, 1]";
  if count <= 0 then invalid_arg "Generate.size_separated: count must be positive";
  let rng = Prng.Xoshiro256pp.create seed in
  let values = Data.Dataset.values ds in
  let n = Array.length values in
  let limit = Data.Dataset.domain_size ds in
  let width_int = width_of ds fraction in
  let rec draw attempts =
    if attempts > 10_000 then
      invalid_arg
        "Generate.size_separated: could not place a query inside the domain (query too wide \
         for this data distribution?)"
    else begin
      let center = values.(Prng.Xoshiro256pp.int_below rng n) in
      let a = center - (width_int / 2) in
      if a >= 0 && a + width_int <= limit then query_of_start a width_int
      else draw (attempts + 1)
    end
  in
  Array.init count (fun _ -> draw 0)

let positional_sweep ds ~fraction ~count =
  if not (fraction > 0.0 && fraction <= 1.0) then
    invalid_arg "Generate.positional_sweep: fraction must be in (0, 1]";
  if count <= 1 then invalid_arg "Generate.positional_sweep: count must be at least 2";
  let limit = Data.Dataset.domain_size ds in
  let width_int = Int.min (width_of ds fraction) limit in
  let span = limit - width_int in
  Array.init count (fun i ->
      let a = int_of_float (Float.round (float_of_int i /. float_of_int (count - 1) *. float_of_int span)) in
      query_of_start a width_int)
