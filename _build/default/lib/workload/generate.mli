(** Query-file generation (Section 5.1.2).

    The paper's query files are size-separated: each file fixes the query
    width to a percentage of the domain (1, 2, 5 or 10 %), holds 1,000
    queries whose positions follow the data distribution (a random record
    is the query center), and rejects positions that would clip the query
    at a domain boundary. *)

val size_separated :
  Data.Dataset.t -> seed:int64 -> fraction:float -> count:int -> Query.t array
(** [size_separated ds ~seed ~fraction ~count] draws [count] integer range
    queries covering [round (fraction * domain_size)] consecutive attribute
    values; centers are record values drawn with replacement; queries
    partially outside the domain are rejected and redrawn.  Queries are
    represented with half-integer continuous bounds ([a - 0.5,
    b + 0.5] for the integer range [a..b]) so the exact oracle and the
    density estimators agree on which atoms a query covers.
    @raise Invalid_argument unless [0 < fraction <= 1] and [count > 0]. *)

val positional_sweep :
  Data.Dataset.t -> fraction:float -> count:int -> Query.t array
(** [positional_sweep ds ~fraction ~count] places [count] queries of the
    given width with starts evenly spaced from one domain end to the other,
    including positions flush against the boundaries — the workload behind
    the boundary-error curves (Figures 3 and 10).  Same half-integer
    representation as {!size_separated}. *)

val paper_fractions : float list
(** The four query sizes of the paper: 1 %, 2 %, 5 % and 10 %. *)

val paper_count : int
(** 1,000 queries per file, as in the paper. *)
