(** Experiment harness tying datasets, samples, query files and estimator
    specs together — the machinery behind every figure reproduction and the
    CLI's [experiment] command. *)

val domain_of : Data.Dataset.t -> float * float
(** The continuous estimation domain [[-0.5, 2^p - 0.5]] of a dataset:
    value [k] occupies the unit cell centered at [k], so the half-integer
    query bounds of {!Generate} cover whole atoms. *)

val sample_of : Data.Dataset.t -> seed:int64 -> n:int -> float array
(** Deterministic sample (without replacement) of [n] record values as
    floats. *)

val paper_sample_size : int
(** 2,000 — the sample size of the paper's experiments. *)

val mre_of_spec :
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  Selest.Estimator.spec ->
  float
(** Build the spec on the sample and return its MRE on the query file. *)

val summary_of_spec :
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  Selest.Estimator.spec ->
  Metrics.summary
(** Like {!mre_of_spec} but returning the full error summary. *)

val compare_specs :
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  Selest.Estimator.spec list ->
  (string * Metrics.summary) list
(** Evaluate several specs on the same sample and query file. *)

val oracle_bin_count :
  ?max_bins:int ->
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  int * float
(** The [h-opt] reference for equi-width histograms: the bin count
    minimizing the observed MRE, with that MRE. *)

val oracle_bandwidth :
  ?points:int ->
  boundary:Kde.Estimator.boundary_policy ->
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  float * float
(** The [h-opt] reference for kernel estimators: the Epanechnikov bandwidth
    minimizing the observed MRE over a logarithmic grid spanning
    [[ns/30, 30 ns]] around the normal-scale bandwidth. *)
