type t = { lo : float; hi : float }

let make ~lo ~hi =
  if not (Float.is_finite lo && Float.is_finite hi) || lo > hi then
    invalid_arg "Query.make: requires finite lo <= hi";
  { lo; hi }

let width q = q.hi -. q.lo
let center q = 0.5 *. (q.lo +. q.hi)
let contains q x = x >= q.lo && x <= q.hi
