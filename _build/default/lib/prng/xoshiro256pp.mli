(** Xoshiro256++ pseudo-random number generator.

    The general-purpose generator of the repository (Blackman & Vigna, 2019):
    256 bits of state, period [2^256 - 1], excellent statistical quality and
    a [jump] function providing 2^128 non-overlapping substreams for
    independent experiment arms.

    State is explicit and mutable; the global [Random] module is never
    touched. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] initializes the four state words by running
    {!Splitmix64} from [seed], as recommended by the authors. *)

val copy : t -> t
(** [copy t] duplicates the state so the copy replays [t]'s future stream. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val float : t -> float
(** [float t] is a uniform float in [[0, 1)] (53-bit resolution). *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is a uniform float in [[lo, hi)].
    @raise Invalid_argument if [lo >= hi] or either bound is not finite. *)

val int_below : t -> int -> int
(** [int_below t bound] is a uniform integer in [[0, bound)], bias-free.
    @raise Invalid_argument if [bound <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is a uniform integer in [[lo, hi]] (inclusive).
    @raise Invalid_argument if [lo > hi]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps in place.  Calling [jump] [i] times
    on copies of a common origin yields non-overlapping substreams. *)

val substream : t -> int -> t
(** [substream t i] is an independent generator: a copy of [t] jumped [i + 1]
    times.  [t] itself is not modified.  @raise Invalid_argument if [i < 0]. *)

val shuffle_prefix : t -> 'a array -> int -> unit
(** [shuffle_prefix t a k] reorders [a] in place so that its first [k] cells
    hold a uniform random [k]-subset of the original elements, in random
    order (partial Fisher-Yates).  @raise Invalid_argument if
    [k < 0 || k > Array.length a]. *)
