type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  (* The all-zero state is the only invalid one; SplitMix64 cannot produce
     four zero outputs in a row from any seed, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1 = 0L; s2 = 0L; s3 = 0L }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let two_pow_minus_53 = 1.0 /. 9007199254740992.0

let float t =
  let bits53 = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits53 *. two_pow_minus_53

let float_range t lo hi =
  if not (Float.is_finite lo && Float.is_finite hi) || lo >= hi then
    invalid_arg "Xoshiro256pp.float_range: requires finite lo < hi";
  lo +. (float t *. (hi -. lo))

let int_below t bound =
  if bound <= 0 then invalid_arg "Xoshiro256pp.int_below: bound must be positive";
  let b = Int64.of_int bound in
  let range = Int64.shift_left 1L 62 in
  let limit = Int64.sub range (Int64.rem range b) in
  let rec loop () =
    let r = Int64.shift_right_logical (next t) 2 in
    if Int64.compare r limit >= 0 then loop () else Int64.to_int (Int64.rem r b)
  in
  loop ()

let int_range t lo hi =
  if lo > hi then invalid_arg "Xoshiro256pp.int_range: requires lo <= hi";
  lo + int_below t (hi - lo + 1)

let bool t = Int64.compare (Int64.logand (next t) 1L) 1L = 0

(* Jump polynomial of xoshiro256++ (advances 2^128 steps). *)
let jump_constants = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun c ->
      for b = 0 to 63 do
        if Int64.logand c (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (next t)
      done)
    jump_constants;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3

let substream t i =
  if i < 0 then invalid_arg "Xoshiro256pp.substream: index must be non-negative";
  let u = copy t in
  for _ = 0 to i do
    jump u
  done;
  u

let shuffle_prefix t a k =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Xoshiro256pp.shuffle_prefix: k out of range";
  for i = 0 to k - 1 do
    let j = int_range t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
