lib/prng/xoshiro256pp.ml: Array Float Int64 Splitmix64
