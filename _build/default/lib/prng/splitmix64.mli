(** SplitMix64 pseudo-random number generator.

    A small, fast, high-quality 64-bit generator with a trivially splittable
    state (Steele, Lea & Flood, OOPSLA 2014).  It is used in this project both
    as a stand-alone generator and as the seeding procedure of
    {!Xoshiro256pp}, which must not be seeded with correlated words.

    All state is explicit; none of the functions touch the global [Random]
    state, so every experiment in the repository is reproducible from its
    integer seed alone. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Distinct seeds produce
    independent-looking streams; the all-zero seed is valid. *)

val copy : t -> t
(** [copy t] is a generator that will produce the same future stream as [t]
    without affecting it. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_float : t -> float
(** [next_float t] is a uniform float in [[0, 1)], built from the top 53 bits
    of {!next}. *)

val next_below : t -> int -> int
(** [next_below t bound] is a uniform integer in [[0, bound)].  Uses rejection
    to avoid modulo bias.  @raise Invalid_argument if [bound <= 0]. *)
