type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* 2^-53: spacing of the 53-bit mantissa grid on [0,1). *)
let two_pow_minus_53 = 1.0 /. 9007199254740992.0

let next_float t =
  let bits53 = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits53 *. two_pow_minus_53

let next_below t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_below: bound must be positive";
  (* Rejection sampling on the top 62 bits keeps the draw unbiased: reject
     draws from the incomplete final block of size [range mod b]. *)
  let b = Int64.of_int bound in
  let range = Int64.shift_left 1L 62 in
  let limit = Int64.sub range (Int64.rem range b) in
  let rec loop () =
    let r = Int64.shift_right_logical (next t) 2 in
    if Int64.compare r limit >= 0 then loop () else Int64.to_int (Int64.rem r b)
  in
  loop ()
