lib/kde/estimator.ml: Array Float Int Kernels Seq Stats
