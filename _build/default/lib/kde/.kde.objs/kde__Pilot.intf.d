lib/kde/pilot.mli:
