lib/kde/estimator.mli: Kernels
