lib/kde/pilot.ml: Array Float Stats
