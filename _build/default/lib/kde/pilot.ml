type t = { h : float; xs : float array }

let create ~h samples =
  if h <= 0.0 || not (Float.is_finite h) then
    invalid_arg "Kde.Pilot.create: bandwidth must be positive and finite";
  if Array.length samples = 0 then invalid_arg "Kde.Pilot.create: empty sample";
  let xs = Array.copy samples in
  Array.sort Float.compare xs;
  { h; xs }

let bandwidth t = t.h

let cutoff = 8.0

(* Window-sum of g((x - X_i) / h) over samples within [cutoff] bandwidths. *)
let window_sum t x g =
  let r = cutoff *. t.h in
  let i0 = Stats.Array_util.float_lower_bound t.xs (x -. r) in
  let i1 = Stats.Array_util.float_upper_bound t.xs (x +. r) in
  let s = ref 0.0 in
  for i = i0 to i1 - 1 do
    s := !s +. g ((x -. t.xs.(i)) /. t.h)
  done;
  !s

let density t x =
  let n = float_of_int (Array.length t.xs) in
  window_sum t x Stats.Special.normal_pdf /. (n *. t.h)

let deriv1 t x =
  let n = float_of_int (Array.length t.xs) in
  let g u = -.u *. Stats.Special.normal_pdf u in
  window_sum t x g /. (n *. (t.h ** 2.0))

let deriv2 t x =
  let n = float_of_int (Array.length t.xs) in
  let g u = ((u *. u) -. 1.0) *. Stats.Special.normal_pdf u in
  window_sum t x g /. (n *. (t.h ** 3.0))

(* Double sum (1/n^2) sum_ij g((X_i - X_j) / s) over sorted samples with a
   cutoff, counting each off-diagonal pair twice via symmetry of g. *)
let pair_sum xs s g =
  let n = Array.length xs in
  let r = cutoff *. s in
  let acc = ref (float_of_int n *. g 0.0) in
  for i = 0 to n - 1 do
    let j = ref (i + 1) in
    while !j < n && xs.(!j) -. xs.(i) <= r do
      acc := !acc +. (2.0 *. g ((xs.(!j) -. xs.(i)) /. s));
      incr j
    done
  done;
  !acc /. float_of_int (n * n)

let roughness_deriv1 t =
  let s = Float.sqrt 2.0 *. t.h in
  (* int (f')^2 = -(1/n^2) sum phi''_s(d):  phi''_s(u) = phi(u/s)(u^2/s^2 - 1)/s^3 *)
  let g u = ((u *. u) -. 1.0) *. Stats.Special.normal_pdf u in
  -.(pair_sum t.xs s g /. (s ** 3.0))

let roughness_deriv2 t =
  let s = Float.sqrt 2.0 *. t.h in
  (* int (f'')^2 = (1/n^2) sum phi''''_s(d) *)
  let g u =
    let u2 = u *. u in
    ((u2 *. u2) -. (6.0 *. u2) +. 3.0) *. Stats.Special.normal_pdf u
  in
  pair_sum t.xs s g /. (s ** 5.0)
