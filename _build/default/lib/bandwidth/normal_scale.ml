let sqrt_pi = 1.7724538509055159

let scale samples = Stats.Quantile.robust_scale samples

let check ~n ~scale name =
  if n <= 0 then invalid_arg (name ^ ": n must be positive");
  if scale <= 0.0 || not (Float.is_finite scale) then
    invalid_arg (name ^ ": scale must be positive and finite")

let bin_width ~n ~scale =
  check ~n ~scale "Normal_scale.bin_width";
  ((24.0 *. sqrt_pi) ** (1.0 /. 3.0)) *. scale *. (float_of_int n ** (-1.0 /. 3.0))

let bin_count ~domain:(lo, hi) ~n ~scale =
  if lo >= hi then invalid_arg "Normal_scale.bin_count: empty domain";
  let h = bin_width ~n ~scale in
  Int.max 1 (int_of_float (Float.ceil ((hi -. lo) /. h)))

let bandwidth ~kernel ~n ~scale =
  check ~n ~scale "Normal_scale.bandwidth";
  let k2 = Kernels.Kernel.second_moment kernel in
  let r = Kernels.Kernel.roughness kernel in
  let const = (8.0 *. sqrt_pi *. r /. (3.0 *. k2 *. k2)) ** 0.2 in
  const *. scale *. (float_of_int n ** (-0.2))

let bin_width_of_samples samples =
  bin_width ~n:(Array.length samples) ~scale:(scale samples)

let bin_count_of_samples ~domain samples =
  bin_count ~domain ~n:(Array.length samples) ~scale:(scale samples)

let bandwidth_of_samples ~kernel samples =
  bandwidth ~kernel ~n:(Array.length samples) ~scale:(scale samples)
