(** Asymptotic mean integrated squared error formulas (Sections 4.1-4.2).

    These are the theory half of the smoothing-parameter story: given the
    roughness functionals [int (f')^2] (histograms) or [int (f'')^2]
    (kernels) of the true density, they return the AMISE value and its
    minimizer.  Tests validate them against the closed-form functionals of
    the synthetic distributions and against brute-force MISE simulations. *)

val histogram_amise : n:int -> h:float -> roughness_d1:float -> float
(** [1/(nh) + h^2/12 * int (f')^2] — the equi-width histogram AMISE. *)

val optimal_bin_width : n:int -> roughness_d1:float -> float
(** Formula (7): [h_EW = (6 / (n int (f')^2))^(1/3)].
    @raise Invalid_argument if [roughness_d1 <= 0] or [n <= 0]. *)

val kernel_amise : kernel:Kernels.Kernel.t -> n:int -> h:float -> roughness_d2:float -> float
(** [AIBias^2 + AIVar = h^4 k2^2 / 4 * int (f'')^2 + R(K) / (nh)]
    (equations (9a)-(9b)). *)

val optimal_bandwidth : kernel:Kernels.Kernel.t -> n:int -> roughness_d2:float -> float
(** [h_K = (R(K) / (n k2^2 int (f'')^2))^(1/5)] (Section 4.2).
    @raise Invalid_argument if [roughness_d2 <= 0] or [n <= 0]. *)

val histogram_amise_at_optimum : n:int -> roughness_d1:float -> float
(** AMISE at {!optimal_bin_width}; decays as [O(n^(-2/3))]. *)

val kernel_amise_at_optimum : kernel:Kernels.Kernel.t -> n:int -> roughness_d2:float -> float
(** AMISE at {!optimal_bandwidth}; decays as [O(n^(-4/5))]. *)
