let cutoff = 8.0

(* (1/n^2) sum_{i,j} g((X_i - X_j)/s) over sorted samples, diagonal
   included, with a cutoff window. *)
let pair_mean xs s g =
  let n = Array.length xs in
  let r = cutoff *. s in
  let acc = ref (float_of_int n *. g 0.0) in
  for i = 0 to n - 1 do
    let j = ref (i + 1) in
    while !j < n && xs.(!j) -. xs.(i) <= r do
      acc := !acc +. (2.0 *. g ((xs.(!j) -. xs.(i)) /. s));
      incr j
    done
  done;
  !acc /. float_of_int (n * n)

let objective_sorted xs h =
  let n = Array.length xs in
  (* int f_hat^2 = (1/n^2) sum phi_{sqrt2 h}(d) *)
  let s2 = Float.sqrt 2.0 *. h in
  let term1 = pair_mean xs s2 Stats.Special.normal_pdf /. s2 in
  (* (2/n) sum_i f_hat_{-i}(X_i) = 2/(n(n-1)h) sum_{i<>j} phi(d/h) *)
  let fn = float_of_int n in
  let pair_full = pair_mean xs h Stats.Special.normal_pdf *. fn *. fn in
  let off_diagonal = pair_full -. (fn *. Stats.Special.normal_pdf 0.0) in
  let term2 = 2.0 *. off_diagonal /. (fn *. (fn -. 1.0) *. h) in
  term1 -. term2

let objective samples h =
  if h <= 0.0 || not (Float.is_finite h) then
    invalid_arg "Lscv.objective: bandwidth must be positive and finite";
  if Array.length samples < 2 then invalid_arg "Lscv.objective: need at least two samples";
  let xs = Array.copy samples in
  Array.sort Float.compare xs;
  objective_sorted xs h

let bandwidth ?(grid_points = 40) ~kernel samples =
  if Array.length samples < 2 then invalid_arg "Lscv.bandwidth: need at least two samples";
  let ns = Normal_scale.bandwidth_of_samples ~kernel:Kernels.Kernel.Gaussian samples in
  let xs = Array.copy samples in
  Array.sort Float.compare xs;
  let grid = Stats.Optimize.log_grid ~lo:(ns /. 20.0) ~hi:(5.0 *. ns) ~n:grid_points in
  let h_gauss, _ = Stats.Optimize.refine_around_grid_min (objective_sorted xs) grid in
  (* Canonical rescaling from the Gaussian to the target kernel. *)
  h_gauss
  *. Kernels.Kernel.canonical_bandwidth_factor kernel
  /. Kernels.Kernel.canonical_bandwidth_factor Kernels.Kernel.Gaussian
