let sqrt_pi = 1.7724538509055159

let check_even_r r name =
  if r < 0 || r mod 2 <> 0 then invalid_arg (name ^ ": r must be even and non-negative")

(* Probabilists' Hermite polynomial He_r(x); phi^(r)(x) = (-1)^r He_r(x) phi(x),
   and for even r the sign factor is +1. *)
let hermite r x =
  let rec go n h_prev h =
    if n = r then h else go (n + 1) h ((x *. h) -. (float_of_int n *. h_prev))
  in
  if r = 0 then 1.0 else go 1 1.0 x

let phi_deriv r x = hermite r x *. Stats.Special.normal_pdf x

let rec factorial n = if n <= 1 then 1.0 else float_of_int n *. factorial (n - 1)

let psi_normal_scale ~r ~sigma =
  check_even_r r "Plug_in.psi_normal_scale";
  if sigma <= 0.0 || not (Float.is_finite sigma) then
    invalid_arg "Plug_in.psi_normal_scale: sigma must be positive and finite";
  let sign = if r / 2 mod 2 = 0 then 1.0 else -1.0 in
  sign *. factorial r /. (((2.0 *. sigma) ** float_of_int (r + 1)) *. factorial (r / 2) *. sqrt_pi)

let cutoff = 8.0

(* (1/n^2) sum_{i,j} g((X_i - X_j)/s) over a sorted array with diagonal and
   a cutoff window; g must be symmetric. *)
let pair_mean xs s g =
  let n = Array.length xs in
  let r = cutoff *. s in
  let acc = ref (float_of_int n *. g 0.0) in
  for i = 0 to n - 1 do
    let j = ref (i + 1) in
    while !j < n && xs.(!j) -. xs.(i) <= r do
      acc := !acc +. (2.0 *. g ((xs.(!j) -. xs.(i)) /. s));
      incr j
    done
  done;
  !acc /. float_of_int (n * n)

let psi_estimate_sorted ~r ~g xs =
  pair_mean xs g (phi_deriv r) /. (g ** float_of_int (r + 1))

let psi_estimate ~r ~g samples =
  check_even_r r "Plug_in.psi_estimate";
  if g <= 0.0 || not (Float.is_finite g) then
    invalid_arg "Plug_in.psi_estimate: g must be positive and finite";
  if Array.length samples = 0 then invalid_arg "Plug_in.psi_estimate: empty sample";
  let xs = Array.copy samples in
  Array.sort Float.compare xs;
  psi_estimate_sorted ~r ~g xs

(* The optimal pilot bandwidth for estimating psi_r given psi_(r+2):
   g_r = (-2 phi^(r)(0) / (psi_(r+2) n))^(1/(r+3))  (Wand & Jones 3.5). *)
let stage_bandwidth ~r ~psi_next ~n =
  let num = -2.0 *. phi_deriv r 0.0 /. (psi_next *. float_of_int n) in
  if num <= 0.0 || not (Float.is_finite num) then None
  else Some (num ** (1.0 /. float_of_int (r + 3)))

(* psi_r estimated through [stages] kernel-functional stages, seeded by the
   normal-scale value of psi_(r + 2*stages). *)
let psi_staged ~sigma ~n xs ~r ~stages =
  let rec go r stages =
    if stages = 0 then psi_normal_scale ~r ~sigma
    else begin
      let psi_next = go (r + 2) (stages - 1) in
      match stage_bandwidth ~r ~psi_next ~n with
      | None -> psi_normal_scale ~r ~sigma
      | Some g -> psi_estimate_sorted ~r ~g xs
    end
  in
  go r stages

let prepared samples name =
  if Array.length samples < 2 then invalid_arg (name ^ ": need at least two samples");
  let xs = Array.copy samples in
  Array.sort Float.compare xs;
  let sigma = Stats.Quantile.robust_scale_sorted xs in
  let sigma = if sigma > 0.0 && Float.is_finite sigma then sigma else 1.0 in
  (xs, sigma)

let functionals ~iterations samples =
  if iterations < 0 then invalid_arg "Plug_in.functionals: iterations must be >= 0";
  let xs, sigma = prepared samples "Plug_in.functionals" in
  let n = Array.length xs in
  let psi2 = psi_staged ~sigma ~n xs ~r:2 ~stages:iterations in
  let psi4 = psi_staged ~sigma ~n xs ~r:4 ~stages:iterations in
  (-.psi2, psi4)

let staged_bandwidth ?(iterations = 2) ~kernel samples =
  let _, psi4 = functionals ~iterations samples in
  if psi4 <= 0.0 || not (Float.is_finite psi4) then
    (* Degenerate curvature estimate: fall back on the normal-scale rule. *)
    Normal_scale.bandwidth_of_samples ~kernel samples
  else Amise.optimal_bandwidth ~kernel ~n:(Array.length samples) ~roughness_d2:psi4

(* The paper's iteration: pilot density at the current bandwidth -> its
   roughness functionals -> next bandwidth.  The pilot is a Gaussian KDE
   whose bandwidth tracks the Gaussian-kernel AMISE optimum. *)
let iterated_functionals ~iterations samples =
  if iterations < 0 then invalid_arg "Plug_in.bandwidth: iterations must be >= 0";
  let _, sigma = prepared samples "Plug_in.bandwidth" in
  let n = Array.length samples in
  let g = ref (Normal_scale.bandwidth ~kernel:Kernels.Kernel.Gaussian ~n ~scale:sigma) in
  let pilot = ref (Kde.Pilot.create ~h:!g samples) in
  for _ = 1 to iterations do
    let psi4 = Kde.Pilot.roughness_deriv2 !pilot in
    if psi4 > 0.0 && Float.is_finite psi4 then begin
      g := Amise.optimal_bandwidth ~kernel:Kernels.Kernel.Gaussian ~n ~roughness_d2:psi4;
      pilot := Kde.Pilot.create ~h:!g samples
    end
  done;
  (Kde.Pilot.roughness_deriv1 !pilot, Kde.Pilot.roughness_deriv2 !pilot)

let bandwidth ?(iterations = 2) ~kernel samples =
  if iterations = 0 then Normal_scale.bandwidth_of_samples ~kernel samples
  else begin
    let _, psi4 = iterated_functionals ~iterations samples in
    if psi4 <= 0.0 || not (Float.is_finite psi4) then
      Normal_scale.bandwidth_of_samples ~kernel samples
    else Amise.optimal_bandwidth ~kernel ~n:(Array.length samples) ~roughness_d2:psi4
  end

let bin_width ?(iterations = 2) samples =
  if iterations = 0 then Normal_scale.bin_width_of_samples samples
  else begin
    let d1, _ = iterated_functionals ~iterations samples in
    if d1 <= 0.0 || not (Float.is_finite d1) then Normal_scale.bin_width_of_samples samples
    else Amise.optimal_bin_width ~n:(Array.length samples) ~roughness_d1:d1
  end

let bin_count ?(iterations = 2) ~domain:(lo, hi) samples =
  if lo >= hi then invalid_arg "Plug_in.bin_count: empty domain";
  let h = bin_width ~iterations samples in
  Int.max 1 (int_of_float (Float.ceil ((hi -. lo) /. h)))
