(** Oracle smoothing-parameter search.

    The paper's [h-opt] columns (Figures 4, 9, 11) report the smoothing
    parameter that minimizes the observed mean relative error on the actual
    query workload — impractical in a real system (it needs the true result
    sizes) but the reference point every practical rule is judged against.
    This module provides the searches; callers supply the
    error-of-parameter objective. *)

val best_bandwidth :
  ?points:int -> objective:(float -> float) -> lo:float -> hi:float -> unit -> float * float
(** [best_bandwidth ~objective ~lo ~hi ()] minimizes over a logarithmic
    bandwidth grid of [points] (default 30) and polishes with golden
    section; returns [(h_opt, error)].
    @raise Invalid_argument unless [0 < lo < hi]. *)

val best_bin_count :
  ?max_bins:int -> objective:(int -> float) -> unit -> int * float
(** [best_bin_count ~objective ()] scans bin counts over a geometric integer
    grid from 1 to [max_bins] (default 1000, ~60 distinct values) and
    returns the best [(bins, error)]. *)
