(** Normal-scale rules (Sections 4.1-4.2): approximate the unknown true
    density by a normal with the sample's robust scale
    [s = min(stddev, IQR/1.348)], for which the roughness functionals are
    closed-form, and plug into the AMISE optimizers. *)

val scale : float array -> float
(** The paper's robust scale estimate of the sample (see
    {!Stats.Quantile.robust_scale}). *)

val bin_width : n:int -> scale:float -> float
(** Formula (8): [h_EW ~ (24 sqrt pi)^(1/3) * s * n^(-1/3)].
    @raise Invalid_argument if [n <= 0] or [scale <= 0]. *)

val bin_count : domain:float * float -> n:int -> scale:float -> int
(** [ceil (domain width / bin_width)], at least 1. *)

val bandwidth : kernel:Kernels.Kernel.t -> n:int -> scale:float -> float
(** The kernel normal-scale bandwidth
    [(8 sqrt pi R(K) / (3 k2^2))^(1/5) * s * n^(-1/5)]; for the Epanechnikov
    kernel the constant is the paper's 2.345.
    @raise Invalid_argument if [n <= 0] or [scale <= 0]. *)

val bin_width_of_samples : float array -> float
(** {!bin_width} with [n] and [scale] taken from the sample. *)

val bin_count_of_samples : domain:float * float -> float array -> int
(** {!bin_count} with [n] and [scale] taken from the sample. *)

val bandwidth_of_samples : kernel:Kernels.Kernel.t -> float array -> float
(** {!bandwidth} with [n] and [scale] taken from the sample. *)
