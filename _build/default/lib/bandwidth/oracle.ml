let best_bandwidth ?(points = 30) ~objective ~lo ~hi () =
  let grid = Stats.Optimize.log_grid ~lo ~hi ~n:points in
  Stats.Optimize.refine_around_grid_min objective grid

let geometric_int_grid max_bins =
  let rec build acc k =
    if k > max_bins then List.rev acc
    else begin
      let next = Int.max (k + 1) (int_of_float (Float.round (float_of_int k *. 1.18))) in
      build (k :: acc) next
    end
  in
  build [] 1

let best_bin_count ?(max_bins = 1000) ~objective () =
  if max_bins < 1 then invalid_arg "Oracle.best_bin_count: max_bins must be >= 1";
  let candidates = geometric_int_grid max_bins in
  match candidates with
  | [] -> invalid_arg "Oracle.best_bin_count: empty candidate grid"
  | first :: rest ->
    let best = ref (first, objective first) in
    List.iter
      (fun k ->
        let e = objective k in
        if e < snd !best then best := (k, e))
      rest;
    !best
