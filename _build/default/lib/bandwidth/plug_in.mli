(** Direct plug-in rules (Section 4.3; Wand & Jones [15], Chapter 3).

    The normal-scale rule misjudges densities that are far from normal (the
    paper's Figure 11 shows it failing on all real data files).  The direct
    plug-in rule instead estimates the unknown roughness functionals from
    the data: the density functionals

    {v psi_r = int f^(r) f = E[f^(r)(X)] v}

    satisfy [int (f')^2 = -psi_2] and [int (f'')^2 = psi_4], and each
    [psi_r] has the kernel estimator
    [psi_hat_r(g) = n^-2 sum_ij phi_g^(r)(X_i - X_j)] whose own optimal
    bandwidth depends on [psi_(r+2)].  The iteration of the paper therefore
    becomes a finite chain seeded by the normal-scale value: with
    [iterations = L], [psi_(r + 2L)] comes from the normal-scale formula and
    [L] kernel-functional stages walk back down to the target.  [L = 0]
    reproduces the normal-scale rule exactly; the paper uses two iterations
    ([h-DPI2]). *)

val psi_normal_scale : r:int -> sigma:float -> float
(** The normal-scale density functional
    [psi_r = (-1)^(r/2) r! / ((2 sigma)^(r+1) (r/2)! sqrt pi)] for even [r].
    @raise Invalid_argument if [r] is odd or negative, or [sigma <= 0]. *)

val psi_estimate : r:int -> g:float -> float array -> float
(** The kernel functional estimator [psi_hat_r(g)] over the sample (sorted
    internally), Gaussian kernel, diagonal included.
    @raise Invalid_argument if [g <= 0], [r] odd or negative, or the sample
    is empty. *)

val functionals : iterations:int -> float array -> float * float
(** [functionals ~iterations samples] returns the staged (Wand-Jones)
    plug-in estimates of [(int f'^2, int f''^2)] = [(-psi_2, psi_4)].
    @raise Invalid_argument if [iterations < 0] or the sample has fewer
    than two elements. *)

val staged_bandwidth : ?iterations:int -> kernel:Kernels.Kernel.t -> float array -> float
(** The bandwidth obtained from the staged functional estimates — the
    textbook direct plug-in selector.  Converges to the truth but inherits
    the normal-scale seed's scale, so it adapts slowly on very non-normal
    data; kept for the DPI-engine ablation. *)

val bandwidth : ?iterations:int -> kernel:Kernels.Kernel.t -> float array -> float
(** The paper's own iteration (Section 4.3 verbatim): the density estimate
    of the previous step — a Gaussian pilot at the current bandwidth —
    supplies [int f''^2] for the next bandwidth.  The diagonal term of the
    pilot's roughness biases the curvature up and the bandwidth down, which
    is exactly what rescues the heavily clustered real data files in
    Figure 11.  [iterations] defaults to 2 ([h-DPI2]); 0 reproduces the
    normal-scale rule.  Falls back on the normal-scale rule when the
    functional estimate degenerates. *)

val bin_width : ?iterations:int -> float array -> float
(** Plug-in equi-width histogram bin width via formula (7), with
    [int f'^2] from the same pilot iteration as {!bandwidth}. *)

val bin_count : ?iterations:int -> domain:float * float -> float array -> int
(** [ceil (domain width / bin_width)], at least 1. *)
