lib/bandwidth/plug_in.mli: Kernels
