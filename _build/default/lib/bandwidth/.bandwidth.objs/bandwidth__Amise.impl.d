lib/bandwidth/amise.ml: Float Kernels
