lib/bandwidth/normal_scale.mli: Kernels
