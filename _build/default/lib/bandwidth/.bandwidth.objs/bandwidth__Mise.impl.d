lib/bandwidth/mise.ml: Array Dists Float Histograms Kde Kernels Lazy Prng Stats
