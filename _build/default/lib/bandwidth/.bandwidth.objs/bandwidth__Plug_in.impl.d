lib/bandwidth/plug_in.ml: Amise Array Float Int Kde Kernels Normal_scale Stats
