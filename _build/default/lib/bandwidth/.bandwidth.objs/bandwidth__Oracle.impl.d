lib/bandwidth/oracle.ml: Float Int List Stats
