lib/bandwidth/normal_scale.ml: Array Float Int Kernels Stats
