lib/bandwidth/oracle.mli:
