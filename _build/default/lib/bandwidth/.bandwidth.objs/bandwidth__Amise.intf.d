lib/bandwidth/amise.mli: Kernels
