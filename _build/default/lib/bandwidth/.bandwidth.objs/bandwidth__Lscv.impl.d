lib/bandwidth/lscv.ml: Array Float Kernels Normal_scale Stats
