lib/bandwidth/lscv.mli: Kernels
