lib/bandwidth/mise.mli: Dists Kernels
