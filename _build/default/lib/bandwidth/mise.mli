(** Monte-Carlo estimation of the mean integrated squared error — the error
    functional the whole of Section 4 optimizes, here measured directly so
    the AMISE formulas can be validated against simulation (and so tests
    can check that the "optimal" smoothing parameters actually minimize the
    real MISE, not just the asymptotic formula).

    [MISE(f_hat) = E int (f_hat(x) - f(x))^2 dx] is estimated by drawing
    fresh samples from a known model, building the density estimate, and
    integrating the squared deviation on a grid; the expectation is the
    average over replications. *)

type result = {
  mise : float;  (** Monte-Carlo MISE estimate *)
  std_error : float;  (** standard error of the estimate over replications *)
  replications : int;
}

val simulate :
  ?replications:int ->
  ?grid_points:int ->
  model:Dists.Model.t ->
  domain:float * float ->
  n:int ->
  seed:int64 ->
  build:(float array -> float -> float) ->
  unit ->
  result
(** [simulate ~model ~domain ~n ~seed ~build ()] draws [replications]
    (default 30) independent [n]-samples from [model], calls [build] to
    obtain a density estimate for each, and integrates the squared error
    against the model's true density on a [grid_points]-point grid
    (default 512) over [domain].
    @raise Invalid_argument if [replications <= 0], [n <= 0],
    [grid_points < 2] or the domain is empty. *)

val histogram_mise :
  ?replications:int ->
  model:Dists.Model.t ->
  domain:float * float ->
  n:int ->
  bins:int ->
  seed:int64 ->
  unit ->
  result
(** {!simulate} with an equi-width histogram estimator. *)

val kernel_mise :
  ?replications:int ->
  ?kernel:Kernels.Kernel.t ->
  model:Dists.Model.t ->
  domain:float * float ->
  n:int ->
  h:float ->
  seed:int64 ->
  unit ->
  result
(** {!simulate} with a (no-boundary-treatment) kernel density estimator. *)
