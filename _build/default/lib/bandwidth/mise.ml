type result = {
  mise : float;
  std_error : float;
  replications : int;
}

let simulate ?(replications = 30) ?(grid_points = 512) ~model ~domain:(lo, hi) ~n ~seed
    ~build () =
  if replications <= 0 then invalid_arg "Mise.simulate: replications must be positive";
  if n <= 0 then invalid_arg "Mise.simulate: n must be positive";
  if grid_points < 2 then invalid_arg "Mise.simulate: grid_points must be >= 2";
  if lo >= hi then invalid_arg "Mise.simulate: empty domain";
  let rng = Prng.Xoshiro256pp.create seed in
  let draw = Lazy.force (Dists.Model.sampler model) in
  let xs_grid =
    Array.init grid_points (fun i ->
        lo +. (float_of_int i /. float_of_int (grid_points - 1) *. (hi -. lo)))
  in
  let truth = Array.map (Dists.Model.pdf model) xs_grid in
  let ises =
    Array.init replications (fun _ ->
        let sample = Array.init n (fun _ -> draw rng) in
        let estimate = build sample in
        let sq = Array.mapi (fun i x -> (estimate x -. truth.(i)) ** 2.0) xs_grid in
        Stats.Integrate.integrate_grid xs_grid sq)
  in
  let mean = Stats.Descriptive.mean ises in
  let std_error =
    if replications = 1 then Float.nan
    else Stats.Descriptive.stddev ~mean ises /. sqrt (float_of_int replications)
  in
  { mise = mean; std_error; replications }

let histogram_mise ?replications ~model ~domain ~n ~bins ~seed () =
  simulate ?replications ~model ~domain ~n ~seed
    ~build:(fun sample ->
      let h = Histograms.Builders.equi_width ~domain ~bins sample in
      Histograms.Histogram.density h)
    ()

let kernel_mise ?replications ?(kernel = Kernels.Kernel.Epanechnikov) ~model ~domain ~n ~h
    ~seed () =
  simulate ?replications ~model ~domain ~n ~seed
    ~build:(fun sample ->
      let est = Kde.Estimator.create ~kernel ~domain ~h sample in
      Kde.Estimator.density est)
    ()
