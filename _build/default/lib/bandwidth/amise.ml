let check ~n ~roughness name =
  if n <= 0 then invalid_arg (name ^ ": n must be positive");
  if roughness <= 0.0 || not (Float.is_finite roughness) then
    invalid_arg (name ^ ": roughness functional must be positive and finite")

let histogram_amise ~n ~h ~roughness_d1 =
  (1.0 /. (float_of_int n *. h)) +. (h *. h /. 12.0 *. roughness_d1)

let optimal_bin_width ~n ~roughness_d1 =
  check ~n ~roughness:roughness_d1 "Amise.optimal_bin_width";
  (6.0 /. (float_of_int n *. roughness_d1)) ** (1.0 /. 3.0)

let kernel_amise ~kernel ~n ~h ~roughness_d2 =
  let k2 = Kernels.Kernel.second_moment kernel in
  let r = Kernels.Kernel.roughness kernel in
  ((h ** 4.0) *. k2 *. k2 /. 4.0 *. roughness_d2) +. (r /. (float_of_int n *. h))

let optimal_bandwidth ~kernel ~n ~roughness_d2 =
  check ~n ~roughness:roughness_d2 "Amise.optimal_bandwidth";
  let k2 = Kernels.Kernel.second_moment kernel in
  let r = Kernels.Kernel.roughness kernel in
  (r /. (float_of_int n *. k2 *. k2 *. roughness_d2)) ** 0.2

let histogram_amise_at_optimum ~n ~roughness_d1 =
  let h = optimal_bin_width ~n ~roughness_d1 in
  histogram_amise ~n ~h ~roughness_d1

let kernel_amise_at_optimum ~kernel ~n ~roughness_d2 =
  let h = optimal_bandwidth ~kernel ~n ~roughness_d2 in
  kernel_amise ~kernel ~n ~h ~roughness_d2
