(** Least-squares cross-validation bandwidth selection (extension beyond the
    paper; standard in Wand & Jones [15], which the paper cites).

    LSCV minimizes an unbiased estimate of [int (f_hat - f)^2] over the
    bandwidth:

    {v LSCV(h) = int f_hat^2 - 2/n sum_i f_hat_{-i}(X_i) v}

    computed here for the Gaussian kernel, where both terms are pairwise
    sums in closed form.  The minimizer is converted to the target kernel by
    canonical-bandwidth rescaling. *)

val objective : float array -> float -> float
(** [objective samples h] is the Gaussian-kernel LSCV score at bandwidth
    [h].  @raise Invalid_argument if [h <= 0] or fewer than two samples. *)

val bandwidth : ?grid_points:int -> kernel:Kernels.Kernel.t -> float array -> float
(** [bandwidth ~kernel samples] minimizes {!objective} over a logarithmic
    grid spanning [[ns/20, 5 ns]] around the normal-scale bandwidth [ns]
    ([grid_points] defaults to 40), polishes with golden section and
    rescales to [kernel]. *)
