lib/join/equijoin.mli: Data Selest
