lib/join/equijoin.ml: Array Data Float Option Selest Stats
