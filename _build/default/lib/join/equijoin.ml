let exact_size r s =
  let vr = Data.Dataset.sorted_values r and vs = Data.Dataset.sorted_values s in
  let nr = Array.length vr and ns = Array.length vs in
  let total = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < nr && !j < ns do
    let a = vr.(!i) and b = vs.(!j) in
    if a < b then incr i
    else if a > b then incr j
    else begin
      (* Count the runs of the shared value on both sides. *)
      let i0 = !i and j0 = !j in
      while !i < nr && vr.(!i) = a do
        incr i
      done;
      while !j < ns && vs.(!j) = a do
        incr j
      done;
      total := !total + ((!i - i0) * (!j - j0))
    end
  done;
  !total

let from_densities ?(grid = 2048) ~domain:(lo, hi) f_r f_s ~n_r ~n_s =
  if grid < 2 then invalid_arg "Equijoin.from_densities: grid must be >= 2";
  if n_r <= 0 || n_s <= 0 then
    invalid_arg "Equijoin.from_densities: relation sizes must be positive";
  if lo >= hi then invalid_arg "Equijoin.from_densities: empty domain";
  let xs =
    Array.init grid (fun i -> lo +. (float_of_int i /. float_of_int (grid - 1) *. (hi -. lo)))
  in
  let ys = Array.map (fun x -> f_r x *. f_s x) xs in
  let integral = Stats.Integrate.integrate_grid xs ys in
  float_of_int n_r *. float_of_int n_s *. integral

let estimate ?grid ~domain est_r est_s ~n_r ~n_s =
  let lo, _ = domain in
  (* Probe the densities once to detect estimators without one (sampling). *)
  match (Selest.Estimator.density est_r lo, Selest.Estimator.density est_s lo) with
  | Some _, Some _ ->
    let f est x = Option.value ~default:0.0 (Selest.Estimator.density est x) in
    Some (from_densities ?grid ~domain (f est_r) (f est_s) ~n_r ~n_s)
  | None, _ | _, None -> None

let exact_range_restricted_size r s ~lo ~hi =
  let vr = Data.Dataset.sorted_values r and vs = Data.Dataset.sorted_values s in
  let nr = Array.length vr and ns = Array.length vs in
  let ilo = int_of_float (Float.ceil lo) and ihi = int_of_float (Float.floor hi) in
  let total = ref 0 in
  let i = ref (Stats.Array_util.int_lower_bound vr ilo) in
  let j = ref 0 in
  while !i < nr && vr.(!i) <= ihi && !j < ns do
    let a = vr.(!i) and b = vs.(!j) in
    if a < b then incr i
    else if a > b then incr j
    else begin
      let i0 = !i and j0 = !j in
      while !i < nr && vr.(!i) = a do
        incr i
      done;
      while !j < ns && vs.(!j) = a do
        incr j
      done;
      total := !total + ((!i - i0) * (!j - j0))
    end
  done;
  !total

let range_restricted ?(grid = 2048) ~domain:(dlo, dhi) est_r est_s ~n_r ~n_s ~lo ~hi =
  let lo = Float.max lo dlo and hi = Float.min hi dhi in
  if lo >= hi then Some 0.0
  else
    match (Selest.Estimator.density est_r lo, Selest.Estimator.density est_s lo) with
    | Some _, Some _ ->
      let f est x = Option.value ~default:0.0 (Selest.Estimator.density est x) in
      Some (from_densities ~grid ~domain:(lo, hi) (f est_r) (f est_s) ~n_r ~n_s)
    | None, _ | _, None -> None

let sample_join sample_r sample_s ~n_r ~n_s =
  let mr = Array.length sample_r and ms = Array.length sample_s in
  if mr = 0 || ms = 0 then invalid_arg "Equijoin.sample_join: empty sample";
  if n_r <= 0 || n_s <= 0 then invalid_arg "Equijoin.sample_join: relation sizes must be positive";
  let vr = Array.copy sample_r and vs = Array.copy sample_s in
  Array.sort Float.compare vr;
  Array.sort Float.compare vs;
  let matches = ref 0 in
  let i = ref 0 and j = ref 0 in
  while !i < mr && !j < ms do
    if vr.(!i) < vs.(!j) then incr i
    else if vr.(!i) > vs.(!j) then incr j
    else begin
      let v = vr.(!i) in
      let i0 = !i and j0 = !j in
      while !i < mr && vr.(!i) = v do
        incr i
      done;
      while !j < ms && vs.(!j) = v do
        incr j
      done;
      matches := !matches + ((!i - i0) * (!j - j0))
    end
  done;
  float_of_int !matches *. float_of_int n_r *. float_of_int n_s
  /. (float_of_int mr *. float_of_int ms)
