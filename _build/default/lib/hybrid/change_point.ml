type config = {
  max_change_points : int;
  min_separation_fraction : float;
  min_samples_per_segment : int;
  grid_points : int;
  relative_threshold : float;
}

let default_config =
  {
    max_change_points = 8;
    min_separation_fraction = 0.02;
    min_samples_per_segment = 50;
    grid_points = 512;
    relative_threshold = 0.05;
  }

let pilot_of_samples samples =
  let scale = Stats.Quantile.robust_scale samples in
  let scale = if scale > 0.0 then scale else 1.0 in
  let h =
    Bandwidth.Normal_scale.bandwidth ~kernel:Kernels.Kernel.Gaussian
      ~n:(Array.length samples) ~scale
  in
  Kde.Pilot.create ~h samples

let curvature_profile ?(config = default_config) ~domain:(lo, hi) samples =
  if lo >= hi then invalid_arg "Change_point.curvature_profile: empty domain";
  if Array.length samples = 0 then
    invalid_arg "Change_point.curvature_profile: empty sample";
  let pilot = pilot_of_samples samples in
  let m = config.grid_points in
  Array.init m (fun i ->
      let x = lo +. ((float_of_int i +. 0.5) /. float_of_int m *. (hi -. lo)) in
      (x, Float.abs (Kde.Pilot.deriv2 pilot x)))

let detect ?(config = default_config) ~domain:(lo, hi) samples =
  let profile = curvature_profile ~config ~domain:(lo, hi) samples in
  let sorted_samples = Array.copy samples in
  Array.sort Float.compare sorted_samples;
  let global_max = Array.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 profile in
  if global_max <= 0.0 then []
  else begin
    let min_sep = config.min_separation_fraction *. (hi -. lo) in
    let candidates = Array.copy profile in
    Array.sort (fun (_, v1) (_, v2) -> Float.compare v2 v1) candidates;
    let accepted = ref [] in
    let samples_between a b =
      Stats.Array_util.float_upper_bound sorted_samples b
      - Stats.Array_util.float_lower_bound sorted_samples a
    in
    let segment_ok x =
      (* The segments x would create: between its nearest accepted (or
         border) neighbours. *)
      let left =
        List.fold_left (fun acc c -> if c < x then Float.max acc c else acc) lo !accepted
      in
      let right =
        List.fold_left (fun acc c -> if c > x then Float.min acc c else acc) hi !accepted
      in
      samples_between left x >= config.min_samples_per_segment
      && samples_between x right >= config.min_samples_per_segment
    in
    let well_separated x =
      x -. lo >= min_sep
      && hi -. x >= min_sep
      && List.for_all (fun c -> Float.abs (c -. x) >= min_sep) !accepted
    in
    (try
       Array.iter
         (fun (x, v) ->
           if v < config.relative_threshold *. global_max then raise Exit;
           if List.length !accepted >= config.max_change_points then raise Exit;
           if well_separated x && segment_ok x then accepted := x :: !accepted)
         candidates
     with Exit -> ());
    List.sort Float.compare !accepted
  end
