lib/hybrid/partitioned.mli: Change_point Kernels
