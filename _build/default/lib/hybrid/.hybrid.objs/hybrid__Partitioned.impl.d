lib/hybrid/partitioned.ml: Array Bandwidth Change_point Float Int Kde Kernels Stats
