lib/hybrid/change_point.ml: Array Bandwidth Float Kde Kernels List Stats
