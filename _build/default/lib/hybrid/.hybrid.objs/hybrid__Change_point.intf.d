lib/hybrid/change_point.mli:
