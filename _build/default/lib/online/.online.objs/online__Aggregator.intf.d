lib/online/aggregator.mli: Kde Kernels
