lib/online/aggregator.ml: Array Bandwidth Float Int Kde Kernels Stats
