type t = {
  kernel : Kernels.Kernel.t;
  boundary : Kde.Estimator.boundary_policy;
  domain : float * float;
  mutable samples : float array; (* growable buffer *)
  mutable used : int;
  mutable fitted : Kde.Estimator.t option; (* estimator over the first [fitted_n] *)
  mutable fitted_n : int;
}

let create ?(kernel = Kernels.Kernel.Epanechnikov)
    ?(boundary = Kde.Estimator.Boundary_kernels) ~domain:(lo, hi) () =
  if lo >= hi then invalid_arg "Aggregator.create: empty domain";
  {
    kernel;
    boundary;
    domain = (lo, hi);
    samples = Array.make 1024 0.0;
    used = 0;
    fitted = None;
    fitted_n = 0;
  }

let add t batch =
  let need = t.used + Array.length batch in
  if need > Array.length t.samples then begin
    let grown = Array.make (Int.max need (2 * Array.length t.samples)) 0.0 in
    Array.blit t.samples 0 grown 0 t.used;
    t.samples <- grown
  end;
  Array.blit batch 0 t.samples t.used (Array.length batch);
  t.used <- need

let sample_size t = t.used

let current_estimator t =
  match t.fitted with
  | Some est when t.fitted_n = t.used -> est
  | Some _ | None ->
    if t.used = 0 then invalid_arg "Aggregator.estimate: no samples yet";
    let xs = Array.sub t.samples 0 t.used in
    let scale = if t.used < 2 then 0.0 else Stats.Quantile.robust_scale xs in
    let lo, hi = t.domain in
    let h =
      if t.used < 2 || scale <= 0.0 || not (Float.is_finite scale) then
        (* Degenerate start-up sample: fall back on a domain-scaled width. *)
        0.1 *. (hi -. lo)
      else Bandwidth.Normal_scale.bandwidth ~kernel:t.kernel ~n:t.used ~scale
    in
    let h =
      match t.boundary with
      | Kde.Estimator.Boundary_kernels -> Float.min h (0.499 *. (hi -. lo))
      | Kde.Estimator.No_treatment | Kde.Estimator.Reflection -> h
    in
    let est = Kde.Estimator.create ~kernel:t.kernel ~boundary:t.boundary ~domain:t.domain ~h xs in
    t.fitted <- Some est;
    t.fitted_n <- t.used;
    est

type estimate = {
  kernel_selectivity : float;
  sampling_selectivity : float;
  ci_halfwidth : float;
  n : int;
}

let estimate t ~a ~b =
  let est = current_estimator t in
  let kernel_selectivity = Kde.Estimator.selectivity est ~a ~b in
  let inside = ref 0 in
  for i = 0 to t.used - 1 do
    let x = t.samples.(i) in
    if x >= a && x <= b then incr inside
  done;
  let n = t.used in
  let p = float_of_int !inside /. float_of_int n in
  let ci_halfwidth =
    if n = 0 then 1.0
    else 1.96 *. sqrt (Float.max 1e-12 (p *. (1.0 -. p)) /. float_of_int n)
  in
  { kernel_selectivity; sampling_selectivity = p; ci_halfwidth; n }

let estimated_count e ~n_records =
  let scale = float_of_int n_records in
  let low = Float.max 0.0 ((e.sampling_selectivity -. e.ci_halfwidth) *. scale) in
  let high = Float.min scale ((e.sampling_selectivity +. e.ci_halfwidth) *. scale) in
  (e.kernel_selectivity *. scale, low, high)
