lib/feedback/adaptive.mli:
