lib/feedback/adaptive.ml: Array Float Int Stats
