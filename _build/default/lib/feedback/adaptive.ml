type t = {
  lo : float;
  width : float; (* bucket width *)
  weights : float array;
  learning_rate : float;
  mutable observations : int;
}

let create ?(buckets = 64) ?(learning_rate = 0.5) ~domain:(lo, hi) ~base () =
  if buckets <= 0 then invalid_arg "Adaptive.create: buckets must be positive";
  if lo >= hi then invalid_arg "Adaptive.create: empty domain";
  if not (learning_rate > 0.0 && learning_rate <= 1.0) then
    invalid_arg "Adaptive.create: learning_rate must be in (0, 1]";
  let width = (hi -. lo) /. float_of_int buckets in
  let weights =
    Array.init buckets (fun i ->
        let a = lo +. (float_of_int i *. width) in
        Float.max 0.0 (base ~a ~b:(a +. width)))
  in
  { lo; width; weights; learning_rate; observations = 0 }

let buckets t = Array.length t.weights

(* Overlap fraction of bucket [i] with [a, b]. *)
let overlap t i a b =
  let c_lo = t.lo +. (float_of_int i *. t.width) in
  let c_hi = c_lo +. t.width in
  let o = Float.min b c_hi -. Float.max a c_lo in
  if o <= 0.0 then 0.0 else o /. t.width

let bucket_range t a b =
  let k = buckets t in
  let first = Int.max 0 (int_of_float (Float.floor ((a -. t.lo) /. t.width))) in
  let last = Int.min (k - 1) (int_of_float (Float.floor ((b -. t.lo) /. t.width))) in
  (first, last)

let raw_selectivity t ~a ~b =
  if a > b then 0.0
  else begin
    let first, last = bucket_range t a b in
    let acc = ref 0.0 in
    for i = first to last do
      acc := !acc +. (t.weights.(i) *. overlap t i a b)
    done;
    !acc
  end

let selectivity t ~a ~b = Float.max 0.0 (Float.min 1.0 (raw_selectivity t ~a ~b))

let observe t ~a ~b ~actual =
  if not (actual >= 0.0 && actual <= 1.0) then
    invalid_arg "Adaptive.observe: actual selectivity must be in [0, 1]";
  if a <= b then begin
    t.observations <- t.observations + 1;
    let first, last = bucket_range t a b in
    let estimated = raw_selectivity t ~a ~b in
    let error = t.learning_rate *. (actual -. estimated) in
    (* Distribute the error over the overlapped buckets proportionally to
       their current contribution (uniformly when the region is empty), the
       ST-histogram refinement rule. *)
    if error <> 0.0 then begin
      let contributions = Array.init (last - first + 1) (fun j ->
          t.weights.(first + j) *. overlap t (first + j) a b)
      in
      let total = Array.fold_left ( +. ) 0.0 contributions in
      for j = 0 to last - first do
        let share =
          if total > 0.0 then contributions.(j) /. total
          else 1.0 /. float_of_int (last - first + 1)
        in
        let i = first + j in
        let o = overlap t i a b in
        if o > 0.0 then
          (* The bucket absorbs its share of the error, scaled back up by
             the overlap so that a repeat of the same query sees the
             correction in full. *)
          t.weights.(i) <- Float.max 0.0 (t.weights.(i) +. (error *. share /. o))
      done
    end
  end

let feedback_count t = t.observations

let total_mass t = Stats.Descriptive.kahan_sum t.weights
