(** The attribute-value-independence assumption: estimate a rectangle's
    selectivity as the product of the two marginal range selectivities —
    what System R-style optimizers do with per-column statistics.

    This is the practical alternative to true 2-D estimation, exact when
    the attributes are independent and arbitrarily wrong when they are
    correlated; the [ext_multidim] bench measures both regimes against the
    product-kernel estimator. *)

type marginal = a:float -> b:float -> float
(** A fitted 1-D estimator over one attribute (e.g.
    [Selest.Estimator.selectivity]). *)

val selectivity :
  marginal -> marginal -> x_lo:float -> x_hi:float -> y_lo:float -> y_hi:float -> float
(** [selectivity mx my ~x_lo ~x_hi ~y_lo ~y_hi] is
    [mx (x range) * my (y range)], clamped to [[0, 1]]. *)

val of_samples :
  ?spec:Selest.Estimator.spec ->
  domain_x:float * float ->
  domain_y:float * float ->
  (float * float) array ->
  x_lo:float ->
  x_hi:float ->
  y_lo:float ->
  y_hi:float ->
  float
(** Convenience: build the two marginal estimators from the sample's
    coordinate projections ([spec] defaults to
    {!Selest.Estimator.kernel_defaults}) and evaluate one rectangle.  For
    workloads, build the marginals once and use {!selectivity}. *)
