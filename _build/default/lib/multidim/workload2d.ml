type rect = { x_lo : float; x_hi : float; y_lo : float; y_hi : float }

let size_separated ds ~seed ~fraction ~count =
  if not (fraction > 0.0 && fraction <= 1.0) then
    invalid_arg "Workload2d.size_separated: fraction must be in (0, 1]";
  if count <= 0 then invalid_arg "Workload2d.size_separated: count must be positive";
  let rng = Prng.Xoshiro256pp.create seed in
  let pts = Dataset2d.points ds in
  let n = Array.length pts in
  let limit_x = 1 lsl Dataset2d.bits_x ds and limit_y = 1 lsl Dataset2d.bits_y ds in
  let w_x = Int.max 1 (int_of_float (Float.round (fraction *. float_of_int limit_x))) in
  let w_y = Int.max 1 (int_of_float (Float.round (fraction *. float_of_int limit_y))) in
  let rec draw attempts =
    if attempts > 10_000 then
      invalid_arg "Workload2d.size_separated: could not place a rectangle inside the domain"
    else begin
      let cx, cy = pts.(Prng.Xoshiro256pp.int_below rng n) in
      let ax = cx - (w_x / 2) and ay = cy - (w_y / 2) in
      if ax >= 0 && ax + w_x <= limit_x && ay >= 0 && ay + w_y <= limit_y then
        {
          x_lo = float_of_int ax -. 0.5;
          x_hi = float_of_int (ax + w_x - 1) +. 0.5;
          y_lo = float_of_int ay -. 0.5;
          y_hi = float_of_int (ay + w_y - 1) +. 0.5;
        }
      else draw (attempts + 1)
    end
  in
  Array.init count (fun _ -> draw 0)

type estimate_fn = rect -> float

type summary = { mre : float; mae : float; evaluated : int; skipped_empty : int }

let evaluate ds estimate rects =
  if Array.length rects = 0 then invalid_arg "Workload2d.evaluate: empty query array";
  let n_records = float_of_int (Dataset2d.size ds) in
  let rel = ref 0.0 and abs_sum = ref 0.0 and evaluated = ref 0 and skipped = ref 0 in
  Array.iter
    (fun r ->
      let truth =
        float_of_int
          (Dataset2d.exact_count ds ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi)
      in
      let est = estimate r *. n_records in
      abs_sum := !abs_sum +. Float.abs (est -. truth);
      if truth > 0.0 then begin
        rel := !rel +. (Float.abs (est -. truth) /. truth);
        incr evaluated
      end
      else incr skipped)
    rects;
  {
    mre = (if !evaluated = 0 then Float.nan else !rel /. float_of_int !evaluated);
    mae = !abs_sum /. float_of_int (Array.length rects);
    evaluated = !evaluated;
    skipped_empty = !skipped;
  }
