(** Two-dimensional data generators: synthetic product/correlated families
    and TIGER-like spatial point processes (the joint versions of the
    [arap]/[rr] projections in the 1-D catalog). *)

val product :
  name:string ->
  bits_x:int ->
  bits_y:int ->
  count:int ->
  seed:int64 ->
  Dists.Model.t ->
  Dists.Model.t ->
  Dataset2d.t
(** [product ~name ... mx my] draws the coordinates independently from [mx]
    and [my] (both in their domain coordinates), flooring and rejecting
    out-of-domain draws per coordinate pair. *)

val correlated_normal :
  name:string ->
  bits:int ->
  count:int ->
  rho:float ->
  seed:int64 ->
  Dataset2d.t
(** A bivariate normal centered in the square domain with per-axis sigma
    [2^bits / 8] and correlation [rho] — the workload where product-form
    estimators are challenged.  @raise Invalid_argument unless
    [-1 < rho < 1]. *)

val street_grid :
  name:string -> bits:int -> count:int -> seed:int64 -> Dataset2d.t
(** TIGER-like urban clusters in the plane: a seeded mixture of anisotropic
    Gaussian blobs (city blocks) over a sparse background, the joint analog
    of the catalog's [arap1]/[arap2] files. *)

val rail_network :
  name:string -> bits:int -> count:int -> seed:int64 -> Dataset2d.t
(** TIGER-like linear features: points scattered tightly along random line
    segments (rail roads, rivers), the joint analog of [rr1]/[rr2]. *)
