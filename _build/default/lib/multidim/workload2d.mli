(** Rectangle-query workloads and error metrics for the two-dimensional
    estimators — the 2-D analog of the [workload] library's size-separated
    query files. *)

type rect = { x_lo : float; x_hi : float; y_lo : float; y_hi : float }

val size_separated :
  Dataset2d.t -> seed:int64 -> fraction:float -> count:int -> rect array
(** [size_separated ds ~seed ~fraction ~count] draws rectangle queries
    covering [fraction] of each axis (so [fraction^2] of the area), centered
    on data points with half-integer bounds, rejecting rectangles that clip
    the domain.  @raise Invalid_argument unless [0 < fraction <= 1] and
    [count > 0]. *)

type estimate_fn = rect -> float

type summary = { mre : float; mae : float; evaluated : int; skipped_empty : int }

val evaluate : Dataset2d.t -> estimate_fn -> rect array -> summary
(** Mean relative / absolute error against the exact rectangle counts;
    empty-truth rectangles are excluded from the relative error. *)
