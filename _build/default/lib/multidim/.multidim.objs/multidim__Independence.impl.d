lib/multidim/independence.ml: Array Float Selest
