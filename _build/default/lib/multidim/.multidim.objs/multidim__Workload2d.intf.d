lib/multidim/workload2d.mli: Dataset2d
