lib/multidim/independence.mli: Selest
