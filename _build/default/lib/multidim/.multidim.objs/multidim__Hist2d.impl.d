lib/multidim/hist2d.ml: Array Float Int
