lib/multidim/dataset2d.mli: Prng
