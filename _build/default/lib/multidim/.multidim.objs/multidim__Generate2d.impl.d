lib/multidim/generate2d.ml: Array Dataset2d Dists Float Int Lazy Printf Prng Stats
