lib/multidim/dataset2d.ml: Array Float Fun Int Printf Prng Stats
