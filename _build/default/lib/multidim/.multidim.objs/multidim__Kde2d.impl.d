lib/multidim/kde2d.ml: Array Bandwidth Float Kernels Stats
