lib/multidim/workload2d.ml: Array Dataset2d Float Int Prng
