lib/multidim/kde2d.mli: Kernels
