lib/multidim/hist2d.mli:
