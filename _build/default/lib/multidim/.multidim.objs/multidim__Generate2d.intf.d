lib/multidim/generate2d.mli: Dataset2d Dists
