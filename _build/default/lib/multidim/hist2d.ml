type t = {
  x_lo : float;
  y_lo : float;
  wx : float; (* cell width along x *)
  wy : float;
  bins_x : int;
  bins_y : int;
  counts : float array; (* row-major: cell (i, j) at [j * bins_x + i] *)
  total : float;
}

let build ~domain_x:(x_lo, x_hi) ~domain_y:(y_lo, y_hi) ~bins_x ~bins_y points =
  if x_lo >= x_hi || y_lo >= y_hi then invalid_arg "Hist2d.build: empty domain";
  if bins_x <= 0 || bins_y <= 0 then invalid_arg "Hist2d.build: bins must be positive";
  if Array.length points = 0 then invalid_arg "Hist2d.build: empty sample";
  let wx = (x_hi -. x_lo) /. float_of_int bins_x in
  let wy = (y_hi -. y_lo) /. float_of_int bins_y in
  let counts = Array.make (bins_x * bins_y) 0.0 in
  let cell_index lo w bins v =
    Int.max 0 (Int.min (bins - 1) (int_of_float (Float.floor ((v -. lo) /. w))))
  in
  Array.iter
    (fun (x, y) ->
      let i = cell_index x_lo wx bins_x x in
      let j = cell_index y_lo wy bins_y y in
      counts.((j * bins_x) + i) <- counts.((j * bins_x) + i) +. 1.0)
    points;
  { x_lo; y_lo; wx; wy; bins_x; bins_y; counts; total = float_of_int (Array.length points) }

let bins t = (t.bins_x, t.bins_y)

(* Overlap of [lo, hi] with cell [k] along an axis with origin [origin] and
   width [w], as a fraction of the cell width. *)
let overlap_fraction ~origin ~w k lo hi =
  let c_lo = origin +. (float_of_int k *. w) in
  let c_hi = c_lo +. w in
  let o = Float.min hi c_hi -. Float.max lo c_lo in
  if o <= 0.0 then 0.0 else o /. w

let selectivity t ~x_lo ~x_hi ~y_lo ~y_hi =
  if x_lo > x_hi || y_lo > y_hi then 0.0
  else begin
    let first ~origin ~w v = Int.max 0 (int_of_float (Float.floor ((v -. origin) /. w))) in
    let last ~origin ~w ~bins v =
      Int.min (bins - 1) (int_of_float (Float.floor ((v -. origin) /. w)))
    in
    let i0 = first ~origin:t.x_lo ~w:t.wx x_lo in
    let i1 = last ~origin:t.x_lo ~w:t.wx ~bins:t.bins_x x_hi in
    let j0 = first ~origin:t.y_lo ~w:t.wy y_lo in
    let j1 = last ~origin:t.y_lo ~w:t.wy ~bins:t.bins_y y_hi in
    let acc = ref 0.0 in
    for j = j0 to j1 do
      let fy = overlap_fraction ~origin:t.y_lo ~w:t.wy j y_lo y_hi in
      if fy > 0.0 then
        for i = i0 to i1 do
          let fx = overlap_fraction ~origin:t.x_lo ~w:t.wx i x_lo x_hi in
          if fx > 0.0 then acc := !acc +. (t.counts.((j * t.bins_x) + i) *. fx *. fy)
        done
    done;
    Float.max 0.0 (Float.min 1.0 (!acc /. t.total))
  end

let density t x y =
  let i = int_of_float (Float.floor ((x -. t.x_lo) /. t.wx)) in
  let j = int_of_float (Float.floor ((y -. t.y_lo) /. t.wy)) in
  if i < 0 || i >= t.bins_x || j < 0 || j >= t.bins_y then 0.0
  else t.counts.((j * t.bins_x) + i) /. (t.total *. t.wx *. t.wy)

let sampling_selectivity points ~x_lo ~x_hi ~y_lo ~y_hi =
  let n = Array.length points in
  if n = 0 then invalid_arg "Hist2d.sampling_selectivity: empty sample";
  let inside = ref 0 in
  Array.iter
    (fun (x, y) ->
      if x >= x_lo && x <= x_hi && y >= y_lo && y <= y_hi then incr inside)
    points;
  float_of_int !inside /. float_of_int n
