module Rng = Prng.Xoshiro256pp

let floor_into limit x =
  let v = int_of_float (Float.floor x) in
  if v >= 0 && v < limit then Some v else None

let generate ~name ~bits_x ~bits_y ~count draw rng =
  let limit_x = 1 lsl bits_x and limit_y = 1 lsl bits_y in
  let points = Array.make count (0, 0) in
  let filled = ref 0 in
  let rejections = ref 0 in
  let budget = 10_000 * count in
  while !filled < count do
    let fx, fy = draw rng in
    match (floor_into limit_x fx, floor_into limit_y fy) with
    | Some x, Some y ->
      points.(!filled) <- (x, y);
      incr filled
    | None, _ | _, None ->
      incr rejections;
      if !rejections > budget then
        invalid_arg (Printf.sprintf "Generate2d(%s): mass lies outside the domain" name)
  done;
  Dataset2d.create ~name ~bits_x ~bits_y points

let product ~name ~bits_x ~bits_y ~count ~seed mx my =
  let rng = Rng.create seed in
  let draw_x = Lazy.force (Dists.Model.sampler mx) in
  let draw_y = Lazy.force (Dists.Model.sampler my) in
  generate ~name ~bits_x ~bits_y ~count (fun rng -> (draw_x rng, draw_y rng)) rng

let box_muller rng =
  let u1 = 1.0 -. Rng.float rng in
  let u2 = Rng.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let correlated_normal ~name ~bits ~count ~rho ~seed =
  if not (rho > -1.0 && rho < 1.0) then
    invalid_arg "Generate2d.correlated_normal: rho must be in (-1, 1)";
  let rng = Rng.create seed in
  let domain = float_of_int (1 lsl bits) in
  let mu = domain /. 2.0 and sigma = domain /. 8.0 in
  let coeff = sqrt (1.0 -. (rho *. rho)) in
  let draw rng =
    let z1 = box_muller rng in
    let z2 = box_muller rng in
    let x = mu +. (sigma *. z1) in
    let y = mu +. (sigma *. ((rho *. z1) +. (coeff *. z2))) in
    (x, y)
  in
  generate ~name ~bits_x:bits ~bits_y:bits ~count draw rng

let street_grid ~name ~bits ~count ~seed =
  let root = Rng.create seed in
  let layout = Rng.substream root 1 in
  let records = Rng.substream root 2 in
  let domain = float_of_int (1 lsl bits) in
  let n_clusters = 36 in
  (* Anisotropic blobs: city blocks are elongated along one axis. *)
  let clusters =
    Array.init n_clusters (fun _ ->
        let cx = domain *. (0.15 +. (0.7 *. Rng.float layout)) in
        let cy = domain *. (0.15 +. (0.7 *. Rng.float layout)) in
        let wx = domain *. (0.002 +. (0.015 *. Rng.float layout)) in
        let wy = domain *. (0.002 +. (0.015 *. Rng.float layout)) in
        let u = Rng.float layout in
        (cx, cy, wx, wy, (u *. u) +. 0.02))
  in
  let total = Array.fold_left (fun acc (_, _, _, _, w) -> acc +. w) 0.0 clusters in
  let cum = Array.make n_clusters 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i (_, _, _, _, w) ->
      acc := !acc +. (w /. total);
      cum.(i) <- !acc)
    clusters;
  let draw rng =
    if Rng.float rng < 0.08 then (domain *. Rng.float rng, domain *. Rng.float rng)
    else begin
      let u = Rng.float rng in
      let i = Int.min (Stats.Array_util.float_upper_bound cum u) (n_clusters - 1) in
      let cx, cy, wx, wy, _ = clusters.(i) in
      (cx +. (wx *. box_muller rng), cy +. (wy *. box_muller rng))
    end
  in
  generate ~name ~bits_x:bits ~bits_y:bits ~count draw (Rng.copy records)

let rail_network ~name ~bits ~count ~seed =
  let root = Rng.create seed in
  let layout = Rng.substream root 3 in
  let records = Rng.substream root 4 in
  let domain = float_of_int (1 lsl bits) in
  let n_segments = 24 in
  let segments =
    Array.init n_segments (fun _ ->
        let x0 = domain *. Rng.float layout and y0 = domain *. Rng.float layout in
        let angle = 2.0 *. Float.pi *. Rng.float layout in
        let len = domain *. (0.1 +. (0.5 *. Rng.float layout)) in
        let x1 = x0 +. (len *. cos angle) and y1 = y0 +. (len *. sin angle) in
        let weight = len *. (0.5 +. Rng.float layout) in
        (x0, y0, x1, y1, weight))
  in
  let total = Array.fold_left (fun acc (_, _, _, _, w) -> acc +. w) 0.0 segments in
  let cum = Array.make n_segments 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i (_, _, _, _, w) ->
      acc := !acc +. (w /. total);
      cum.(i) <- !acc)
    segments;
  let jitter = domain *. 0.002 in
  let draw rng =
    let u = Rng.float rng in
    let i = Int.min (Stats.Array_util.float_upper_bound cum u) (n_segments - 1) in
    let x0, y0, x1, y1, _ = segments.(i) in
    let t = Rng.float rng in
    let x = x0 +. (t *. (x1 -. x0)) +. (jitter *. box_muller rng) in
    let y = y0 +. (t *. (y1 -. y0)) +. (jitter *. box_muller rng) in
    (x, y)
  in
  generate ~name ~bits_x:bits ~bits_y:bits ~count draw (Rng.copy records)
