lib/dists/model.mli: Lazy Prng
