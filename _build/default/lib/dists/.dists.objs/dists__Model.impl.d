lib/dists/model.ml: Array Float Hashtbl Int List Printf Prng Stats String
