type t =
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float }
  | Exponential of { rate : float }
  | Lognormal of { mu : float; sigma : float }
  | Zipf of { exponent : float; ranks : int }
  | Mixture of (float * t) list
  | Truncated of { dist : t; lo : float; hi : float }

let uniform ~lo ~hi =
  if lo >= hi then invalid_arg "Model.uniform: requires lo < hi";
  Uniform { lo; hi }

let normal ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Model.normal: requires sigma > 0";
  Normal { mu; sigma }

let exponential ~rate =
  if rate <= 0.0 then invalid_arg "Model.exponential: requires rate > 0";
  Exponential { rate }

let lognormal ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Model.lognormal: requires sigma > 0";
  Lognormal { mu; sigma }

let zipf ~exponent ~ranks =
  if exponent <= 0.0 then invalid_arg "Model.zipf: requires exponent > 0";
  if ranks <= 0 then invalid_arg "Model.zipf: requires ranks > 0";
  Zipf { exponent; ranks }

let mixture components =
  if components = [] then invalid_arg "Model.mixture: empty component list";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 components in
  if List.exists (fun (w, _) -> w <= 0.0) components || total <= 0.0 then
    invalid_arg "Model.mixture: weights must be positive";
  Mixture (List.map (fun (w, d) -> (w /. total, d)) components)

(* Cumulative probability tables for Zipf models, cached by parameters since
   [t] values are immutable and the tables cost O(ranks) to build. *)
let zipf_tables : (float * int, float array) Hashtbl.t = Hashtbl.create 8

let zipf_cumulative exponent ranks =
  match Hashtbl.find_opt zipf_tables (exponent, ranks) with
  | Some table -> table
  | None ->
    let raw = Array.init ranks (fun i -> (float_of_int (i + 1)) ** -.exponent) in
    let total = Stats.Descriptive.kahan_sum raw in
    let cum = Array.make ranks 0.0 in
    let acc = ref 0.0 in
    for i = 0 to ranks - 1 do
      acc := !acc +. (raw.(i) /. total);
      cum.(i) <- !acc
    done;
    cum.(ranks - 1) <- 1.0;
    Hashtbl.replace zipf_tables (exponent, ranks) cum;
    cum

let zipf_pmf exponent ranks k =
  if k < 1 || k > ranks then 0.0
  else begin
    let cum = zipf_cumulative exponent ranks in
    if k = 1 then cum.(0) else cum.(k - 1) -. cum.(k - 2)
  end

let is_atom x =
  let r = Float.round x in
  Float.abs (x -. r) < 1e-9

let rec cdf d x =
  match d with
  | Uniform { lo; hi } ->
    if x < lo then 0.0 else if x > hi then 1.0 else (x -. lo) /. (hi -. lo)
  | Normal { mu; sigma } -> Stats.Special.normal_cdf ((x -. mu) /. sigma)
  | Exponential { rate } -> if x < 0.0 then 0.0 else 1.0 -. exp (-.rate *. x)
  | Lognormal { mu; sigma } ->
    if x <= 0.0 then 0.0 else Stats.Special.normal_cdf ((log x -. mu) /. sigma)
  | Zipf { exponent; ranks } ->
    let k = int_of_float (Float.floor x) in
    if k < 1 then 0.0
    else if k >= ranks then 1.0
    else (zipf_cumulative exponent ranks).(k - 1)
  | Mixture components ->
    List.fold_left (fun acc (w, c) -> acc +. (w *. cdf c x)) 0.0 components
  | Truncated { dist; lo; hi } ->
    if x < lo then 0.0
    else if x >= hi then 1.0
    else (cdf dist x -. cdf dist lo) /. (cdf dist hi -. cdf dist lo)

let rec pdf d x =
  match d with
  | Uniform { lo; hi } -> if x >= lo && x <= hi then 1.0 /. (hi -. lo) else 0.0
  | Normal { mu; sigma } -> Stats.Special.normal_pdf ((x -. mu) /. sigma) /. sigma
  | Exponential { rate } -> if x < 0.0 then 0.0 else rate *. exp (-.rate *. x)
  | Lognormal { mu; sigma } ->
    if x <= 0.0 then 0.0
    else Stats.Special.normal_pdf ((log x -. mu) /. sigma) /. (x *. sigma)
  | Zipf { exponent; ranks } ->
    if is_atom x then zipf_pmf exponent ranks (int_of_float (Float.round x)) else 0.0
  | Mixture components ->
    List.fold_left (fun acc (w, c) -> acc +. (w *. pdf c x)) 0.0 components
  | Truncated { dist; lo; hi } ->
    if x < lo || x > hi then 0.0 else pdf dist x /. (cdf dist hi -. cdf dist lo)

let truncated dist ~lo ~hi =
  if lo >= hi then invalid_arg "Model.truncated: requires lo < hi";
  let mass = cdf dist hi -. cdf dist lo in
  if mass <= 0.0 then invalid_arg "Model.truncated: no mass on the interval";
  Truncated { dist; lo; hi }

let rec support d =
  match d with
  | Uniform { lo; hi } -> (lo, hi)
  | Normal _ -> (Float.neg_infinity, Float.infinity)
  | Exponential _ -> (0.0, Float.infinity)
  | Lognormal _ -> (0.0, Float.infinity)
  | Zipf { ranks; _ } -> (1.0, float_of_int ranks)
  | Mixture components ->
    List.fold_left
      (fun (lo, hi) (_, c) ->
        let clo, chi = support c in
        (Float.min lo clo, Float.max hi chi))
      (Float.infinity, Float.neg_infinity)
      components
  | Truncated { dist; lo; hi } ->
    let slo, shi = support dist in
    (Float.max lo slo, Float.min hi shi)

let bisect_inv_cdf d p =
  (* Establish finite brackets even for unbounded supports. *)
  let lo0, hi0 = support d in
  let lo = ref (if Float.is_finite lo0 then lo0 else -1.0) in
  let hi = ref (if Float.is_finite hi0 then hi0 else 1.0) in
  while cdf d !lo > p do
    lo := (2.0 *. !lo) -. Float.abs !hi -. 1.0
  done;
  while cdf d !hi < p do
    hi := (2.0 *. !hi) +. Float.abs !lo +. 1.0
  done;
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if cdf d mid < p then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let rec inv_cdf d p =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Model.inv_cdf: p must be in (0,1)";
  match d with
  | Uniform { lo; hi } -> lo +. (p *. (hi -. lo))
  | Normal { mu; sigma } -> mu +. (sigma *. Stats.Special.normal_quantile p)
  | Exponential { rate } -> -.log (1.0 -. p) /. rate
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. Stats.Special.normal_quantile p))
  | Zipf { exponent; ranks } ->
    let cum = zipf_cumulative exponent ranks in
    let i = Stats.Array_util.float_lower_bound cum p in
    float_of_int (Int.min (i + 1) ranks)
  | Mixture _ -> bisect_inv_cdf d p
  | Truncated { dist; lo; hi } ->
    let flo = cdf dist lo and fhi = cdf dist hi in
    let q = flo +. (p *. (fhi -. flo)) in
    if q <= 0.0 || q >= 1.0 then bisect_inv_cdf d p
    else Float.max lo (Float.min hi (inv_cdf dist q))

let rec range_probability d a b =
  if a > b then 0.0
  else
    match d with
    | Zipf { exponent; ranks } ->
      let k_lo = Int.max 1 (int_of_float (Float.ceil a)) in
      let k_hi = Int.min ranks (int_of_float (Float.floor b)) in
      if k_lo > k_hi then 0.0
      else begin
        let cum = zipf_cumulative exponent ranks in
        let below = if k_lo = 1 then 0.0 else cum.(k_lo - 2) in
        cum.(k_hi - 1) -. below
      end
    | Truncated { dist; lo; hi } ->
      range_probability dist (Float.max a lo) (Float.min b hi)
      /. (cdf dist hi -. cdf dist lo)
    | Uniform _ | Normal _ | Exponential _ | Lognormal _ | Mixture _ -> cdf d b -. cdf d a

let box_muller rng =
  let u1 = 1.0 -. Prng.Xoshiro256pp.float rng in
  let u2 = Prng.Xoshiro256pp.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let rec make_sampler d =
  match d with
  | Uniform { lo; hi } -> fun rng -> Prng.Xoshiro256pp.float_range rng lo hi
  | Normal { mu; sigma } -> fun rng -> mu +. (sigma *. box_muller rng)
  | Exponential { rate } ->
    fun rng -> -.log (1.0 -. Prng.Xoshiro256pp.float rng) /. rate
  | Lognormal { mu; sigma } -> fun rng -> exp (mu +. (sigma *. box_muller rng))
  | Zipf { exponent; ranks } ->
    let cum = zipf_cumulative exponent ranks in
    fun rng ->
      let u = Prng.Xoshiro256pp.float rng in
      let i = Stats.Array_util.float_upper_bound cum u in
      float_of_int (Int.min (i + 1) ranks)
  | Mixture components ->
    let samplers = List.map (fun (w, c) -> (w, make_sampler c)) components in
    fun rng ->
      let u = Prng.Xoshiro256pp.float rng in
      let rec pick acc = function
        | [] -> (* numeric slack: fall through to the last component *)
          snd (List.hd (List.rev samplers))
        | (w, s) :: rest -> if u < acc +. w || rest = [] then s else pick (acc +. w) rest
      in
      (pick 0.0 samplers) rng
  | Truncated { dist; lo; hi } ->
    (* Inversion through the parent quantile function keeps sampling O(1)
       even for severe truncation. *)
    let flo = cdf dist lo and fhi = cdf dist hi in
    fun rng ->
      let u = Prng.Xoshiro256pp.float rng in
      let q = flo +. (u *. (fhi -. flo)) in
      if q <= 0.0 then lo
      else if q >= 1.0 then hi
      else Float.max lo (Float.min hi (inv_cdf dist q))

let sampler d = lazy (make_sampler d)

let sample d rng = (make_sampler d) rng

(* Numeric moments over a finite interval, for truncated continuous
   parents. *)
let numeric_moment d ~power =
  let lo, hi = support d in
  if not (Float.is_finite lo && Float.is_finite hi) then
    invalid_arg "Model: numeric moment needs a bounded support";
  Stats.Integrate.simpson (fun x -> (x ** float_of_int power) *. pdf d x) ~a:lo ~b:hi ~n:4096

let rec zipf_parent = function
  | Zipf _ -> true
  | Truncated { dist; _ } -> zipf_parent dist
  | Uniform _ | Normal _ | Exponential _ | Lognormal _ | Mixture _ -> false

let zipf_truncated_moment dist lo hi ~power =
  (* Sum over the surviving atoms. *)
  let rec atoms = function
    | Zipf { exponent; ranks } -> (exponent, ranks)
    | Truncated { dist; _ } -> atoms dist
    | Uniform _ | Normal _ | Exponential _ | Lognormal _ | Mixture _ -> assert false
  in
  let exponent, ranks = atoms dist in
  let k_lo = Int.max 1 (int_of_float (Float.ceil lo)) in
  let k_hi = Int.min ranks (int_of_float (Float.floor hi)) in
  let total = ref 0.0 and mass = ref 0.0 in
  for k = k_lo to k_hi do
    let p = zipf_pmf exponent ranks k in
    mass := !mass +. p;
    total := !total +. (p *. (float_of_int k ** float_of_int power))
  done;
  if !mass <= 0.0 then 0.0 else !total /. !mass

let rec mean d =
  match d with
  | Uniform { lo; hi } -> 0.5 *. (lo +. hi)
  | Normal { mu; _ } -> mu
  | Exponential { rate } -> 1.0 /. rate
  | Lognormal { mu; sigma } -> exp (mu +. (0.5 *. sigma *. sigma))
  | Zipf { exponent; ranks } ->
    let cum = zipf_cumulative exponent ranks in
    let acc = ref cum.(0) in
    for k = 2 to ranks do
      acc := !acc +. (float_of_int k *. (cum.(k - 1) -. cum.(k - 2)))
    done;
    !acc
  | Mixture components ->
    List.fold_left (fun acc (w, c) -> acc +. (w *. mean c)) 0.0 components
  | Truncated { dist; lo; hi } ->
    if zipf_parent dist then zipf_truncated_moment dist lo hi ~power:1
    else numeric_moment d ~power:1

let rec second_moment d =
  match d with
  | Uniform { lo; hi } ->
    let m = 0.5 *. (lo +. hi) in
    (m *. m) +. (((hi -. lo) ** 2.0) /. 12.0)
  | Normal { mu; sigma } -> (mu *. mu) +. (sigma *. sigma)
  | Exponential { rate } -> 2.0 /. (rate *. rate)
  | Lognormal { mu; sigma } -> exp ((2.0 *. mu) +. (2.0 *. sigma *. sigma))
  | Zipf { exponent; ranks } ->
    let cum = zipf_cumulative exponent ranks in
    let acc = ref cum.(0) in
    for k = 2 to ranks do
      let p = cum.(k - 1) -. cum.(k - 2) in
      acc := !acc +. (float_of_int (k * k) *. p)
    done;
    !acc
  | Mixture components ->
    List.fold_left (fun acc (w, c) -> acc +. (w *. second_moment c)) 0.0 components
  | Truncated { dist; lo; hi } ->
    if zipf_parent dist then zipf_truncated_moment dist lo hi ~power:2
    else numeric_moment d ~power:2

let stddev d =
  let m = mean d in
  sqrt (Float.max 0.0 (second_moment d -. (m *. m)))

let sqrt_pi = 1.7724538509055159

let roughness_deriv1 = function
  | Uniform _ -> Some 0.0
  | Normal { sigma; _ } -> Some (1.0 /. (4.0 *. sqrt_pi *. (sigma ** 3.0)))
  | Exponential { rate } -> Some ((rate ** 3.0) /. 2.0)
  | Lognormal _ | Zipf _ | Mixture _ | Truncated _ -> None

let roughness_deriv2 = function
  | Uniform _ -> Some 0.0
  | Normal { sigma; _ } -> Some (3.0 /. (8.0 *. sqrt_pi *. (sigma ** 5.0)))
  | Exponential { rate } -> Some ((rate ** 5.0) /. 2.0)
  | Lognormal _ | Zipf _ | Mixture _ | Truncated _ -> None

let rec to_string = function
  | Uniform { lo; hi } -> Printf.sprintf "uniform(lo=%g, hi=%g)" lo hi
  | Normal { mu; sigma } -> Printf.sprintf "normal(mu=%g, sigma=%g)" mu sigma
  | Exponential { rate } -> Printf.sprintf "exponential(rate=%g)" rate
  | Lognormal { mu; sigma } -> Printf.sprintf "lognormal(mu=%g, sigma=%g)" mu sigma
  | Zipf { exponent; ranks } -> Printf.sprintf "zipf(s=%g, ranks=%d)" exponent ranks
  | Mixture components ->
    let parts =
      List.map (fun (w, c) -> Printf.sprintf "%.3f*%s" w (to_string c)) components
    in
    "mixture[" ^ String.concat "; " parts ^ "]"
  | Truncated { dist; lo; hi } ->
    Printf.sprintf "truncated(%s, lo=%g, hi=%g)" (to_string dist) lo hi
