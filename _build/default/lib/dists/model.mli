(** Distribution models used to generate the synthetic data files of the
    paper (uniform, standard normal, exponential, with Zipf as the
    distribution the exponential substitutes) and the cluster mixtures behind
    the simulated "real" files.

    Each model exposes its density, cumulative distribution, quantile
    function, a sampler, and — where they exist in closed form — the
    roughness functionals [int f'^2] and [int f''^2] that appear in the
    AMISE-optimal smoothing formulas (Sections 4.1-4.2 of the paper).  Tests
    use the closed forms as ground truth for the plug-in estimators. *)

type t =
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float }
  | Exponential of { rate : float }
  | Lognormal of { mu : float; sigma : float }
      (** [exp(N(mu, sigma^2))] — the heavy-tailed shape of attributes like
          the census instance weights *)
  | Zipf of { exponent : float; ranks : int }
      (** Discrete Zipf on ranks [1..ranks] with [P(k) proportional to
          k^-exponent]; treated as a distribution over the real line with
          atoms at integer ranks. *)
  | Mixture of (float * t) list
      (** Weighted mixture; weights must be positive and are normalized. *)
  | Truncated of { dist : t; lo : float; hi : float }
      (** [dist] conditioned on [[lo, hi]] (mass outside rejected and the
          remainder renormalized) — the effect of the paper's "records
          outside the domain are not considered" rule. *)

val uniform : lo:float -> hi:float -> t
(** @raise Invalid_argument if [lo >= hi]. *)

val normal : mu:float -> sigma:float -> t
(** @raise Invalid_argument if [sigma <= 0]. *)

val exponential : rate:float -> t
(** @raise Invalid_argument if [rate <= 0]. *)

val lognormal : mu:float -> sigma:float -> t
(** @raise Invalid_argument if [sigma <= 0]. *)

val zipf : exponent:float -> ranks:int -> t
(** @raise Invalid_argument if [exponent <= 0 || ranks <= 0]. *)

val mixture : (float * t) list -> t
(** @raise Invalid_argument on an empty list or non-positive weights. *)

val truncated : t -> lo:float -> hi:float -> t
(** @raise Invalid_argument if [lo >= hi] or the distribution carries no
    mass on [[lo, hi]]. *)

val pdf : t -> float -> float
(** Density at a point.  For {!Zipf} this is the probability mass when the
    argument rounds to an atom, else [0]; mixtures are weighted sums. *)

val cdf : t -> float -> float
(** Cumulative distribution function, right-continuous. *)

val inv_cdf : t -> float -> float
(** [inv_cdf d p] is the [p]-quantile.  Closed form where available,
    bisection on {!cdf} for mixtures.
    @raise Invalid_argument unless [0 < p < 1]. *)

val range_probability : t -> float -> float -> float
(** [range_probability d a b] is [P(a <= X <= b)], the distribution
    selectivity of the range query [Q(a,b)] in the paper's terminology.
    Returns 0 when [a > b].  Inclusive of atoms at both endpoints for
    discrete models. *)

val sample : t -> Prng.Xoshiro256pp.t -> float
(** Draw one value.  Normal uses Box-Muller, exponential inversion, Zipf a
    precomputed CDF table (cached per call via {!sampler} below for bulk
    use). *)

val sampler : t -> (Prng.Xoshiro256pp.t -> float) Lazy.t
(** [sampler d] forces any precomputation (e.g. the Zipf CDF table) once and
    returns a fast draw function; prefer it when drawing many values. *)

val mean : t -> float
(** Expected value. *)

val stddev : t -> float
(** Standard deviation. *)

val support : t -> float * float
(** Smallest closed interval carrying all mass; normal returns
    [(-inf, +inf)]. *)

val roughness_deriv1 : t -> float option
(** [int (f')^2 dx] in closed form: [Some] for uniform (0 away from the
    jumps), normal [1 / (4 sqrt pi sigma^3)] and exponential [rate^3 / 2];
    [None] for Zipf and mixtures. *)

val roughness_deriv2 : t -> float option
(** [int (f'')^2 dx] in closed form: normal [3 / (8 sqrt pi sigma^5)],
    exponential [rate^5 / 2]; [None] otherwise. *)

val to_string : t -> string
(** Human-readable description, e.g. ["normal(mu=0, sigma=1)"]. *)
