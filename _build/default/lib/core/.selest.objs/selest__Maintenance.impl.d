lib/core/maintenance.ml: Estimator Float Int List
