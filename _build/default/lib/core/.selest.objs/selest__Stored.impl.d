lib/core/stored.ml: Array Buffer Estimator Float Fun Int List Printf String
