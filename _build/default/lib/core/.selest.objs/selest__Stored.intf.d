lib/core/stored.mli: Estimator
