lib/core/maintenance.mli: Estimator
