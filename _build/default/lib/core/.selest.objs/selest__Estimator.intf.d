lib/core/estimator.mli: Kde Kernels
