lib/core/estimator.ml: Array Bandwidth Float Histograms Hybrid Kde Kernels List Option Printf Stats String
