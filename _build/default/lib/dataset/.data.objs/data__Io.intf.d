lib/dataset/io.mli: Dataset
