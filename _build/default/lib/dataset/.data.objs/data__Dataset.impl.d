lib/dataset/dataset.ml: Array Float Fun Printf Prng Stats
