lib/dataset/generate.ml: Array Dataset Dists Float Lazy Printf Prng
