lib/dataset/generate.mli: Dataset Dists
