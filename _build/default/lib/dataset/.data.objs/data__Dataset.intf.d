lib/dataset/dataset.mli: Prng
