lib/dataset/encode.ml: Char Printf String
