lib/dataset/catalog.ml: Dataset Dists Generate List Realistic String
