lib/dataset/realistic.ml: Array Dataset Float Int Printf Prng Stats
