lib/dataset/realistic.mli: Dataset
