lib/dataset/catalog.mli: Dataset Dists
