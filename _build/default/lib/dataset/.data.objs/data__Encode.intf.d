lib/dataset/encode.mli:
