lib/dataset/io.ml: Array Dataset Filename Fun Int List Option Printf String
