let save ds ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# selest dataset name=%s bits=%d records=%d\n" (Dataset.name ds)
        (Dataset.bits ds) (Dataset.size ds);
      Array.iter (fun v -> output_string oc (string_of_int v ^ "\n")) (Dataset.values ds))

let parse_header line =
  (* "# selest dataset name=<name> bits=<bits> records=<n>" *)
  let find key =
    let prefix = key ^ "=" in
    let parts = String.split_on_char ' ' line in
    List.find_map
      (fun p ->
        if String.length p > String.length prefix
           && String.sub p 0 (String.length prefix) = prefix
        then Some (String.sub p (String.length prefix) (String.length p - String.length prefix))
        else None)
      parts
  in
  (find "name", Option.bind (find "bits") int_of_string_opt)

let load ?name ?bits ~path () =
  let ic = open_in path in
  let values = ref [] in
  let header_name = ref None and header_bits = ref None in
  let line_no = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          incr line_no;
          if line = "" then ()
          else if String.length line > 0 && line.[0] = '#' then begin
            if !line_no = 1 then begin
              let n, b = parse_header line in
              header_name := n;
              header_bits := b
            end
          end
          else
            match int_of_string_opt line with
            | Some v -> values := v :: !values
            | None ->
              invalid_arg
                (Printf.sprintf "Io.load(%s): unparsable line %d: %S" path !line_no line)
        done
      with End_of_file -> ());
  let values = Array.of_list (List.rev !values) in
  if Array.length values = 0 then invalid_arg (Printf.sprintf "Io.load(%s): no values" path);
  let name =
    match (name, !header_name) with
    | Some n, _ -> n
    | None, Some n -> n
    | None, None -> Filename.remove_extension (Filename.basename path)
  in
  let bits =
    match (bits, !header_bits) with
    | Some b, _ -> b
    | None, Some b -> b
    | None, None ->
      let max_v = Array.fold_left Int.max 0 values in
      let rec fit b = if 1 lsl b > max_v then b else fit (b + 1) in
      fit 1
  in
  Dataset.create ~name ~bits values
