type t = {
  name : string;
  bits : int;
  values : int array;
  sorted : int array;
}

let create ~name ~bits values =
  if Array.length values = 0 then invalid_arg "Dataset.create: empty value array";
  if bits < 1 || bits > 62 then invalid_arg "Dataset.create: bits must be in [1, 62]";
  let limit = 1 lsl bits in
  Array.iter
    (fun v ->
      if v < 0 || v >= limit then
        invalid_arg
          (Printf.sprintf "Dataset.create(%s): value %d outside domain [0, %d)" name v limit))
    values;
  let values = Array.copy values in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  { name; bits; values; sorted }

let name t = t.name
let bits t = t.bits
let domain_size t = 1 lsl t.bits
let size t = Array.length t.values
let values t = t.values
let sorted_values t = t.sorted

let distinct_count t =
  let n = Array.length t.sorted in
  let count = ref 1 in
  for i = 1 to n - 1 do
    if t.sorted.(i) <> t.sorted.(i - 1) then incr count
  done;
  !count

let max_duplicate_frequency t =
  let n = Array.length t.sorted in
  let best = ref 1 and run = ref 1 in
  for i = 1 to n - 1 do
    if t.sorted.(i) = t.sorted.(i - 1) then begin
      incr run;
      if !run > !best then best := !run
    end
    else run := 1
  done;
  !best

let exact_count t ~lo ~hi =
  if lo > hi then 0
  else begin
    (* Integer bounds equivalent to the float range [lo, hi]. *)
    let ilo = int_of_float (Float.ceil lo) in
    let ihi = int_of_float (Float.floor hi) in
    if ilo > ihi then 0
    else
      Stats.Array_util.int_upper_bound t.sorted ihi
      - Stats.Array_util.int_lower_bound t.sorted ilo
  end

let exact_selectivity t ~lo ~hi =
  float_of_int (exact_count t ~lo ~hi) /. float_of_int (size t)

let sample_without_replacement t rng ~n =
  let total = size t in
  if n <= 0 || n > total then
    invalid_arg "Dataset.sample_without_replacement: n outside [1, size]";
  let indices = Array.init total Fun.id in
  Prng.Xoshiro256pp.shuffle_prefix rng indices n;
  Array.init n (fun i -> t.values.(indices.(i)))

let sample_floats t rng ~n =
  Array.map float_of_int (sample_without_replacement t rng ~n)

let describe t =
  Printf.sprintf "%-8s p=%-2d records=%-7d distinct=%-7d max_dup=%d" t.name t.bits (size t)
    (distinct_count t) (max_duplicate_frequency t)
