(** The Table 2 catalog: every data file of the paper's test environment,
    generated deterministically from one seed. *)

val all : seed:int64 -> Dataset.t list
(** All fourteen files of Table 2: [u(15)], [u(20)], [n(10)], [n(15)],
    [n(20)], [e(15)], [e(20)], [arap1], [arap2], [rr1(12)], [rr1(22)],
    [rr2(12)], [rr2(22)], [iw].  Synthetic families have 100,000 records;
    the simulated real files match the paper's record counts. *)

val headline : seed:int64 -> Dataset.t list
(** The large-domain files used by the headline comparisons (Figures 8, 9,
    11, 12) after Section 5.2.1 drops the high-duplicate-frequency files:
    [u(20)], [n(20)], [e(20)], [arap1], [arap2], [rr1(22)], [rr2(22)],
    [iw]. *)

val find : seed:int64 -> string -> Dataset.t
(** [find ~seed name] generates just the named Table 2 file.
    @raise Not_found on an unknown name. *)

val names : string list
(** Names of all catalog files, in Table 2 order. *)

val synthetic_model : Dataset.t -> Dists.Model.t option
(** For synthetic files, the true underlying continuous model in domain
    coordinates (used by oracle smoothing-parameter computations and tests);
    [None] for the simulated real files. *)
