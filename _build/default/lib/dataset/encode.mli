(** Metric encodings for non-integer attributes.

    The paper's metric domains "occur for example in spatial and temporal
    databases": dates and lexicographic strings carry a natural order, so
    they become estimable once mapped order-preservingly to integers.  This
    module provides the two standard encodings so the estimators apply to
    temporal and (prefix-ordered) string attributes out of the box. *)

(** {1 Dates} *)

val days_of_date : year:int -> month:int -> day:int -> int
(** Days since 1970-01-01 (proleptic Gregorian; negative before the epoch).
    @raise Invalid_argument on an invalid calendar date (bad month, day out
    of range for the month, including leap-year February rules). *)

val date_of_days : int -> int * int * int
(** Inverse of {!days_of_date}: [(year, month, day)]. *)

val parse_date : string -> (int, string) result
(** [parse_date "YYYY-MM-DD"] to epoch days; [Error] explains the failure. *)

val format_date : int -> string
(** Epoch days to ["YYYY-MM-DD"]. *)

(** {1 Strings} *)

val int_of_string_prefix : ?length:int -> string -> int
(** Order-preserving integer from the first [length] bytes (default 7, the
    maximum fitting OCaml's 63-bit integers): shorter strings sort before
    their extensions, and
    [s1 <= s2] on prefixes implies
    [int_of_string_prefix s1 <= int_of_string_prefix s2].
    @raise Invalid_argument if [length] outside [[1, 7]]. *)

val string_prefix_bits : int -> int
(** Domain bits needed for prefixes of the given length ([8 * length + 1],
    since the encoding shifts by one to distinguish absent bytes).
    @raise Invalid_argument if [length] outside [[1, 7]]. *)
