(* Calendar arithmetic follows the civil-from-days algorithms (era-based,
   proleptic Gregorian), exact over the full int range we use. *)

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> invalid_arg "Encode: month must be in [1, 12]"

let days_of_date ~year ~month ~day =
  if month < 1 || month > 12 then invalid_arg "Encode.days_of_date: month must be in [1, 12]";
  if day < 1 || day > days_in_month year month then
    invalid_arg "Encode.days_of_date: day out of range for the month";
  let y = if month <= 2 then year - 1 else year in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (month + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + day - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let date_of_days days =
  let z = days + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let day = doy - ((153 * mp + 2) / 5) + 1 in
  let month = if mp < 10 then mp + 3 else mp - 9 in
  let year = if month <= 2 then y + 1 else y in
  (year, month, day)

let parse_date s =
  match String.split_on_char '-' (String.trim s) with
  | [ ys; ms; ds ] -> (
    match (int_of_string_opt ys, int_of_string_opt ms, int_of_string_opt ds) with
    | Some year, Some month, Some day -> (
      try Ok (days_of_date ~year ~month ~day) with Invalid_argument msg -> Error msg)
    | _ -> Error (Printf.sprintf "Encode.parse_date: non-numeric component in %S" s))
  | _ -> Error (Printf.sprintf "Encode.parse_date: expected YYYY-MM-DD, got %S" s)

let format_date days =
  let year, month, day = date_of_days days in
  Printf.sprintf "%04d-%02d-%02d" year month day

(* Base-257 prefix encoding: digit 0 marks an absent byte (so shorter
   strings sort before their extensions), bytes map to 1..256. *)

let check_length length =
  if length < 1 || length > 7 then invalid_arg "Encode: prefix length must be in [1, 7]"

let int_of_string_prefix ?(length = 7) s =
  check_length length;
  let acc = ref 0 in
  for i = 0 to length - 1 do
    let digit = if i < String.length s then Char.code s.[i] + 1 else 0 in
    acc := (!acc * 257) + digit
  done;
  !acc

let string_prefix_bits length =
  check_length length;
  (8 * length) + 1
