type family =
  | Uniform_family
  | Normal_family
  | Exponential_family
  | Zipf_family

(* The continuous spread of the normal and exponential families is fixed in
   absolute terms (anchored to the reference 20-bit domain of the paper's
   headline files).  Smaller domains therefore truncate the same underlying
   distribution to fewer integer values: they contain more duplicates and a
   flatter within-domain shape, which is what makes the low-cardinality
   files easier to estimate in the paper's Figure 5 and why records falling
   outside the domain must be rejected at all. *)
let reference_bits = 20

let scaled_model family ~bits =
  let domain = float_of_int (1 lsl bits) in
  let spread = float_of_int (1 lsl reference_bits) /. 8.0 in
  match family with
  | Uniform_family -> Dists.Model.uniform ~lo:0.0 ~hi:domain
  | Normal_family -> Dists.Model.normal ~mu:(domain /. 2.0) ~sigma:spread
  | Exponential_family -> Dists.Model.exponential ~rate:(1.0 /. spread)
  | Zipf_family -> Dists.Model.zipf ~exponent:1.0 ~ranks:(1 lsl bits)

let family_prefix = function
  | Uniform_family -> "u"
  | Normal_family -> "n"
  | Exponential_family -> "e"
  | Zipf_family -> "z"

let of_model ~name ~bits ~count ~seed model =
  if count <= 0 then invalid_arg "Generate.of_model: count must be positive";
  let rng = Prng.Xoshiro256pp.create seed in
  let draw = Lazy.force (Dists.Model.sampler model) in
  let limit = 1 lsl bits in
  let values = Array.make count 0 in
  let filled = ref 0 in
  let rejections = ref 0 in
  (* Heavily truncated models (e.g. n(10), which keeps only the central
     sliver of the reference-width normal) reject most draws; budget the
     total rejections rather than consecutive ones. *)
  let rejection_budget = 10_000 * count in
  while !filled < count do
    let x = draw rng in
    let v = int_of_float (Float.floor x) in
    if v >= 0 && v < limit then begin
      values.(!filled) <- v;
      incr filled
    end
    else begin
      incr rejections;
      if !rejections > rejection_budget then
        invalid_arg
          (Printf.sprintf "Generate.of_model(%s): model mass lies outside the %d-bit domain" name
             bits)
    end
  done;
  Dataset.create ~name ~bits values

let generate family ~bits ~count ~seed =
  let name = Printf.sprintf "%s(%d)" (family_prefix family) bits in
  of_model ~name ~bits ~count ~seed (scaled_model family ~bits)
