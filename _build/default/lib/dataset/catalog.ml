let synthetic_count = 100_000

let builders : (string * (seed:int64 -> Dataset.t)) list =
  let syn family bits ~seed =
    Generate.generate family ~bits ~count:synthetic_count ~seed
  in
  [
    ("u(15)", syn Generate.Uniform_family 15);
    ("u(20)", syn Generate.Uniform_family 20);
    ("n(10)", syn Generate.Normal_family 10);
    ("n(15)", syn Generate.Normal_family 15);
    ("n(20)", syn Generate.Normal_family 20);
    ("e(15)", syn Generate.Exponential_family 15);
    ("e(20)", syn Generate.Exponential_family 20);
    ("arap1", fun ~seed -> Realistic.arapahoe ~dim:1 ~seed);
    ("arap2", fun ~seed -> Realistic.arapahoe ~dim:2 ~seed);
    ("rr1(12)", fun ~seed -> Realistic.railroad ~dim:1 ~bits:12 ~seed);
    ("rr1(22)", fun ~seed -> Realistic.railroad ~dim:1 ~bits:22 ~seed);
    ("rr2(12)", fun ~seed -> Realistic.railroad ~dim:2 ~bits:12 ~seed);
    ("rr2(22)", fun ~seed -> Realistic.railroad ~dim:2 ~bits:22 ~seed);
    ("iw", fun ~seed -> Realistic.instance_weight ~seed);
  ]

let names = List.map fst builders

let find ~seed name =
  match List.assoc_opt name builders with
  | Some build -> build ~seed
  | None -> raise Not_found

let all ~seed = List.map (fun (_, build) -> build ~seed) builders

let headline_names =
  [ "u(20)"; "n(20)"; "e(20)"; "arap1"; "arap2"; "rr1(22)"; "rr2(22)"; "iw" ]

let headline ~seed = List.map (find ~seed) headline_names

let synthetic_model ds =
  let bits = Dataset.bits ds in
  let name = Dataset.name ds in
  (* Synthetic files are named "<family>(<p>)"; everything else is a
     simulated real file without a closed-form model. *)
  if String.length name < 2 || name.[1] <> '(' then None
  else begin
    (* The generator floors continuous draws into [0, 2^p) and rejects the
       rest, so the model of the data is the scaled family truncated to the
       domain. *)
    let in_domain model =
      Some (Dists.Model.truncated model ~lo:0.0 ~hi:(float_of_int (1 lsl bits)))
    in
    match name.[0] with
    | 'u' -> Some (Generate.scaled_model Generate.Uniform_family ~bits)
    | 'n' -> in_domain (Generate.scaled_model Generate.Normal_family ~bits)
    | 'e' -> in_domain (Generate.scaled_model Generate.Exponential_family ~bits)
    | 'z' -> Some (Generate.scaled_model Generate.Zipf_family ~bits)
    | _ -> None
  end
