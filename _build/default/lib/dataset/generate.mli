(** Synthetic data files of Section 5.1.1.

    Continuous draws from a scaled distribution model are floored to the
    integer domain [[0, 2^p - 1]]; draws falling outside the domain are
    rejected ("we did not consider data records that were outside of the
    domain").  For the normal family the mean is mapped to the center of the
    domain, exactly as in the paper. *)

type family =
  | Uniform_family
  | Normal_family
  | Exponential_family
  | Zipf_family  (** kept for ablations; the paper uses exponential as its stand-in *)

val scaled_model : family -> bits:int -> Dists.Model.t
(** [scaled_model family ~bits] is the continuous model in domain
    coordinates: uniform over the whole domain; normal centered at
    [2^(p-1)]; exponential with mass concentrated at the left boundary (the
    paper's "highly skewed" shape); Zipf over the domain ranks with
    exponent 1.

    The normal sigma and exponential mean are fixed at [2^20 / 8]
    independent of [bits] (anchored to the paper's reference 20-bit
    domain), so at p = 20 a ±4 sigma normal spans the domain exactly while
    smaller domains truncate the same distribution — more duplicates,
    flatter shape, easier estimation, reproducing Figure 5's ordering. *)

val generate :
  family -> bits:int -> count:int -> seed:int64 -> Dataset.t
(** [generate family ~bits ~count ~seed] draws [count] in-domain records.
    Dataset names follow the paper: [u(p)], [n(p)], [e(p)], [z(p)].
    @raise Invalid_argument if [count <= 0]. *)

val of_model :
  name:string -> bits:int -> count:int -> seed:int64 -> Dists.Model.t -> Dataset.t
(** Generic generator: floor continuous draws of an arbitrary model into the
    domain, rejecting out-of-domain draws.  Raises [Invalid_argument] if the
    rejection rate makes progress impossible (more than 1000 consecutive
    rejections). *)
