(** Simulated "real" data files.

    The paper evaluates on TIGER/Line endpoints (county Arapahoe and a
    rail-road & rivers extract around L.A.) and on the census-income
    instance-weight attribute.  Those files are not redistributable and the
    build runs offline, so this module synthesizes datasets that reproduce
    the statistical properties that drive the paper's findings:

    - {b arapahoe}: multi-modal density from urban street grids — many
      narrow clusters with abruptly varying mass over a mostly empty domain.
      These change points are what break the normal-scale bandwidth rule
      (Figure 11) and favor the hybrid estimator (Figure 12).
    - {b railroad}: endpoints along long polylines — a piecewise-uniform
      density with plateaus and hard gaps; offered at p = 12 (heavy
      duplication) and p = 22 (few duplicates), as in Table 2.
    - {b instance_weight}: heavy-tailed bulk plus large discrete spikes of
      repeated weights; on this file the paper finds "almost no difference"
      between methods.

    Cluster/segment layouts are drawn deterministically from the seed, so a
    given seed always produces byte-identical datasets. *)

val arapahoe : dim:int -> seed:int64 -> Dataset.t
(** [arapahoe ~dim ~seed] simulates the endpoints of county Arapahoe lines;
    [dim = 1] uses a 21-bit domain, [dim = 2] an 18-bit domain (Table 2);
    52,120 records.  @raise Invalid_argument unless [dim] is 1 or 2. *)

val railroad : dim:int -> bits:int -> seed:int64 -> Dataset.t
(** [railroad ~dim ~bits ~seed] simulates rail-road & river endpoints;
    257,942 records on a [bits]-bit domain (the paper uses 12 and 22).
    The same [seed] and [dim] give the same continuous layout at every
    [bits], so the p = 12 file is the coarse quantization of the p = 22
    file, as with real coordinate data.
    @raise Invalid_argument unless [dim] is 1 or 2 and [bits] in [[8, 30]]. *)

val instance_weight : seed:int64 -> Dataset.t
(** [instance_weight ~seed] simulates the census-income instance-weight
    attribute: 199,523 records on a 21-bit domain. *)
