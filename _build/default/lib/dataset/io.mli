(** Loading and saving datasets as plain text (one integer attribute value
    per line, [#]-prefixed comment lines ignored) — the format of the
    paper's published data files and the CLI's bridge to user data. *)

val save : Dataset.t -> path:string -> unit
(** [save ds ~path] writes a header comment (name, bits, record count) and
    one value per line.  @raise Sys_error on I/O failure. *)

val load : ?name:string -> ?bits:int -> path:string -> unit -> Dataset.t
(** [load ~path ()] reads values back.  [name] defaults to the file's
    basename; [bits] defaults to the smallest domain containing every
    value (or the value recorded in the header comment when present).
    @raise Sys_error on I/O failure and [Invalid_argument] on unparsable
    lines, an empty file, or values outside the given domain. *)
