module Rng = Prng.Xoshiro256pp

(* All simulators draw positions in the unit interval [0, 1) and quantize to
   the integer domain at the end, so the same layout can be rendered at any
   domain resolution (used by the rr1(12)/rr1(22) pair). *)

let quantize ~name ~bits positions =
  let scale = float_of_int (1 lsl bits) in
  let limit = (1 lsl bits) - 1 in
  let values =
    Array.map
      (fun x ->
        let v = int_of_float (Float.floor (x *. scale)) in
        Int.max 0 (Int.min limit v))
      positions
  in
  Dataset.create ~name ~bits values

(* --- Arapahoe: street-grid clusters ------------------------------------- *)

type cluster = { center : float; width : float; weight : float }

let draw_arapahoe_layout rng =
  (* A dense urban core of many narrow clusters plus scattered small towns.
     Cluster mass follows a skewed (squared-uniform) law so a few clusters
     dominate, producing the abrupt density changes of street-grid data. *)
  let n_clusters = 48 in
  let clusters =
    Array.init n_clusters (fun i ->
        let urban = i < n_clusters / 2 in
        let center =
          if urban then 0.25 +. (0.35 *. Rng.float rng) else Rng.float rng
        in
        let width =
          if urban then 0.002 +. (0.01 *. Rng.float rng)
          else 0.005 +. (0.03 *. Rng.float rng)
        in
        let u = Rng.float rng in
        let weight = (u *. u) +. 0.02 in
        { center; width; weight })
  in
  let total = Array.fold_left (fun acc c -> acc +. c.weight) 0.0 clusters in
  Array.map (fun c -> { c with weight = c.weight /. total }) clusters

let sample_cluster_mixture rng clusters ~background n =
  let cum = Array.make (Array.length clusters) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i c ->
      acc := !acc +. c.weight;
      cum.(i) <- !acc)
    clusters;
  let box_muller () =
    let u1 = 1.0 -. Rng.float rng in
    let u2 = Rng.float rng in
    sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  let rec draw () =
    if Rng.float rng < background then Rng.float rng
    else begin
      let u = Rng.float rng in
      let i = Stats.Array_util.float_upper_bound cum u in
      let c = clusters.(Int.min i (Array.length clusters - 1)) in
      let x = c.center +. (c.width *. box_muller ()) in
      if x >= 0.0 && x < 1.0 then x else draw ()
    end
  in
  Array.init n (fun _ -> draw ())

let arapahoe ~dim ~seed =
  let bits =
    match dim with
    | 1 -> 21
    | 2 -> 18
    | _ -> invalid_arg "Realistic.arapahoe: dim must be 1 or 2"
  in
  (* Separate substreams for the layout and the records; the second
     dimension gets an independent layout, as real x/y coordinates would. *)
  let root = Rng.create seed in
  let layout_rng = Rng.substream root (2 * dim) in
  let record_rng = Rng.substream root ((2 * dim) + 1) in
  let clusters = draw_arapahoe_layout layout_rng in
  let positions = sample_cluster_mixture record_rng clusters ~background:0.08 52_120 in
  quantize ~name:(Printf.sprintf "arap%d" dim) ~bits positions

(* --- Rail roads & rivers: piecewise-uniform segments --------------------- *)

type segment = { lo : float; len : float; weight : float }

let draw_railroad_layout rng ~dim =
  (* Long polylines project to runs of near-uniform density separated by
     empty stretches; rivers add a few wide, low-density runs.  [dim]
     perturbs the layout the way a second coordinate axis would. *)
  let n_segments = 22 + (3 * dim) in
  let segments =
    Array.init n_segments (fun i ->
        let river = i mod 5 = 0 in
        let lo = Rng.float rng *. 0.95 in
        let len =
          if river then 0.08 +. (0.15 *. Rng.float rng)
          else 0.01 +. (0.05 *. Rng.float rng)
        in
        let len = Float.min len (1.0 -. lo) in
        let density = if river then 0.4 +. Rng.float rng else 1.5 +. (2.0 *. Rng.float rng) in
        { lo; len; weight = len *. density })
  in
  let total = Array.fold_left (fun acc s -> acc +. s.weight) 0.0 segments in
  Array.map (fun s -> { s with weight = s.weight /. total }) segments

let sample_segments rng segments n =
  let cum = Array.make (Array.length segments) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i s ->
      acc := !acc +. s.weight;
      cum.(i) <- !acc)
    segments;
  Array.init n (fun _ ->
      let u = Rng.float rng in
      let i = Stats.Array_util.float_upper_bound cum u in
      let s = segments.(Int.min i (Array.length segments - 1)) in
      let x = s.lo +. (s.len *. Rng.float rng) in
      Float.min x (Float.pred 1.0))

let railroad ~dim ~bits ~seed =
  if dim <> 1 && dim <> 2 then invalid_arg "Realistic.railroad: dim must be 1 or 2";
  if bits < 8 || bits > 30 then invalid_arg "Realistic.railroad: bits must be in [8, 30]";
  let root = Rng.create seed in
  let layout_rng = Rng.substream root (10 + (2 * dim)) in
  let record_rng = Rng.substream root (11 + (2 * dim)) in
  let segments = draw_railroad_layout layout_rng ~dim in
  let positions = sample_segments record_rng segments 257_942 in
  quantize ~name:(Printf.sprintf "rr%d(%d)" dim bits) ~bits positions

(* --- Census instance weight: heavy-tailed bulk plus spikes --------------- *)

let instance_weight ~seed =
  let bits = 21 in
  let root = Rng.create seed in
  let layout_rng = Rng.substream root 20 in
  let record_rng = Rng.substream root 21 in
  (* Frequent weights: a few dozen atoms carrying ~15% of the records, as
     repeated sampling weights do in the census file. *)
  let n_atoms = 40 in
  let atoms =
    Array.init n_atoms (fun _ ->
        let u = 1.0 -. Rng.float layout_rng in
        (* Atoms follow the same lognormal-ish placement as the bulk. *)
        0.05 +. (0.4 *. u *. u))
  in
  let box_muller () =
    let u1 = 1.0 -. Rng.float record_rng in
    let u2 = Rng.float record_rng in
    sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  let rec draw_bulk () =
    (* Lognormal bulk rescaled into the unit interval. *)
    let z = box_muller () in
    let x = 0.12 *. exp (0.55 *. z) in
    if x >= 0.0 && x < 1.0 then x else draw_bulk ()
  in
  let positions =
    Array.init 199_523 (fun _ ->
        if Rng.float record_rng < 0.15 then atoms.(Rng.int_below record_rng n_atoms)
        else draw_bulk ())
  in
  quantize ~name:"iw" ~bits positions
