type bucket = {
  values : float array; (* member values, sorted ascending *)
  avg_freq : float;
  min_freq : float;
  max_freq : float;
}

type t = { buckets : bucket array; n : float }

let build ~bins samples =
  if bins <= 0 then invalid_arg "Serial.build: bins must be positive";
  let n = Array.length samples in
  if n = 0 then invalid_arg "Serial.build: empty sample";
  (* Distinct values with frequencies. *)
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let distinct = ref [] in
  let run_start = ref 0 in
  for i = 1 to n do
    if i = n || sorted.(i) <> sorted.(!run_start) then begin
      distinct := (sorted.(!run_start), i - !run_start) :: !distinct;
      run_start := i
    end
  done;
  let by_freq = Array.of_list !distinct in
  (* Descending frequency; ties broken by value for determinism. *)
  Array.sort
    (fun (v1, f1) (v2, f2) -> if f1 <> f2 then compare f2 f1 else Float.compare v1 v2)
    by_freq;
  let m = Array.length by_freq in
  let k = Int.min bins m in
  let buckets =
    Array.init k (fun b ->
        let start = b * m / k and stop = (b + 1) * m / k in
        let members = Array.sub by_freq start (stop - start) in
        let values = Array.map fst members in
        Array.sort Float.compare values;
        let freqs = Array.map (fun (_, f) -> float_of_int f) members in
        let total = Array.fold_left ( +. ) 0.0 freqs in
        {
          values;
          avg_freq = total /. float_of_int (Array.length freqs);
          min_freq = Array.fold_left Float.min freqs.(0) freqs;
          max_freq = Array.fold_left Float.max freqs.(0) freqs;
        })
  in
  { buckets; n = float_of_int n }

let bucket_count t = Array.length t.buckets

let storage_entries t =
  Array.fold_left (fun acc b -> acc + Array.length b.values) 0 t.buckets

let selectivity t ~a ~b =
  if a > b then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun bucket ->
        let members =
          Stats.Array_util.float_upper_bound bucket.values b
          - Stats.Array_util.float_lower_bound bucket.values a
        in
        acc := !acc +. (bucket.avg_freq *. float_of_int members))
      t.buckets;
    Float.max 0.0 (Float.min 1.0 (!acc /. t.n))
  end

let frequency_spread t =
  Array.fold_left (fun acc b -> Float.max acc (b.max_freq -. b.min_freq)) 0.0 t.buckets
