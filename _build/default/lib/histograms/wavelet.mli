(** Wavelet-based histogram (Matias, Vitter & Wang [4], cited by the paper
    as the contemporary alternative synopsis).

    The sample's micro-grid frequency vector is Haar-transformed and only
    the [coefficients] largest normalized coefficients are kept — the
    synopsis a system would store.  Reconstruction yields an approximate
    frequency vector (clamped non-negative and renormalized) that answers
    range queries as an ordinary histogram.  Included so the paper's
    comparison can be extended to the method its related-work section
    points at. *)

val haar_forward : float array -> float array
(** In-order Haar transform (unnormalized averages/differences pyramid).
    @raise Invalid_argument unless the length is a positive power of two. *)

val haar_inverse : float array -> float array
(** Inverse of {!haar_forward} (exact up to rounding). *)

val compress : coefficients:int -> float array -> float array
(** [compress ~coefficients v] Haar-transforms [v] (padding to a power of
    two with zeros), keeps the [coefficients] largest level-normalized
    coefficients (the L2-optimal selection), zeroes the rest and
    reconstructs; the result is truncated back to the input length.
    @raise Invalid_argument if [coefficients <= 0] or [v] is empty. *)

val build :
  ?granularity:int ->
  domain:float * float ->
  coefficients:int ->
  float array ->
  Histogram.t
(** [build ~domain ~coefficients samples] reconstructs the compressed
    frequency vector over a [granularity]-cell grid (default 256) and
    returns it as a {!Histogram.t} (negative reconstructed frequencies
    clamped to zero; total mass renormalized to the sample size).
    @raise Invalid_argument if [coefficients <= 0], [granularity <= 0], the
    domain is empty or the sample is empty. *)
