type t = { edges : float array; counts : float array; total : float }

let validate_edges edges =
  let k1 = Array.length edges in
  if k1 < 2 then invalid_arg "Histogram: need at least two edges";
  for i = 1 to k1 - 1 do
    if not (edges.(i) > edges.(i - 1)) then
      invalid_arg "Histogram: edges must be strictly increasing"
  done

let create ~edges ~counts =
  validate_edges edges;
  if Array.length edges <> Array.length counts + 1 then
    invalid_arg "Histogram.create: need one more edge than counts";
  if Array.exists (fun c -> c < 0.0 || not (Float.is_finite c)) counts then
    invalid_arg "Histogram.create: counts must be non-negative and finite";
  let total = Stats.Descriptive.kahan_sum counts in
  if total <= 0.0 then invalid_arg "Histogram.create: total count must be positive";
  { edges = Array.copy edges; counts = Array.copy counts; total }

let of_samples ~edges samples =
  validate_edges edges;
  if Array.length samples = 0 then invalid_arg "Histogram.of_samples: empty sample";
  let k = Array.length edges - 1 in
  let counts = Array.make k 0.0 in
  Array.iter
    (fun x ->
      (* Bin i covers (c_i, c_{i+1}]; lower_bound on edges gives the number
         of edges < x... use upper-bound semantics to locate the bin. *)
      let j = Stats.Array_util.float_lower_bound edges x in
      (* j is the first edge index with edges.(j) >= x; the bin left of that
         edge is j - 1 (clamped into range so out-of-range samples land in
         the border bins). *)
      let bin = Int.max 0 (Int.min (k - 1) (j - 1)) in
      counts.(bin) <- counts.(bin) +. 1.0)
    samples;
  { edges = Array.copy edges; counts; total = float_of_int (Array.length samples) }

let bins t = Array.length t.counts
let edges t = t.edges
let counts t = t.counts
let total_count t = t.total

let selectivity t ~a ~b =
  if a > b then 0.0
  else begin
    let k = bins t in
    (* Bins intersecting [a, b]: from the bin containing a to the bin
       containing b. *)
    let first = Int.max 0 (Stats.Array_util.float_upper_bound t.edges a - 1) in
    let s = ref 0.0 in
    let i = ref first in
    while !i < k && t.edges.(!i) <= b do
      let lo = t.edges.(!i) and hi = t.edges.(!i + 1) in
      let overlap = Float.min b hi -. Float.max a lo in
      if overlap > 0.0 then s := !s +. (t.counts.(!i) /. (hi -. lo) *. overlap);
      incr i
    done;
    Float.max 0.0 (Float.min 1.0 (!s /. t.total))
  end

let density t x =
  let k = bins t in
  if x < t.edges.(0) || x > t.edges.(k) then 0.0
  else begin
    let j = Stats.Array_util.float_lower_bound t.edges x in
    let bin = Int.max 0 (Int.min (k - 1) (j - 1)) in
    let width = t.edges.(bin + 1) -. t.edges.(bin) in
    t.counts.(bin) /. (t.total *. width)
  end

let mean_width t =
  let k = bins t in
  (t.edges.(k) -. t.edges.(0)) /. float_of_int k
