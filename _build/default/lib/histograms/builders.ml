let check_domain (lo, hi) = if lo >= hi then invalid_arg "Histograms: empty domain"

let equi_width ~domain:(lo, hi) ~bins samples =
  check_domain (lo, hi);
  if bins <= 0 then invalid_arg "Builders.equi_width: bins must be positive";
  let edges =
    Array.init (bins + 1) (fun i ->
        lo +. (float_of_int i /. float_of_int bins *. (hi -. lo)))
  in
  (* Guard against rounding: the last edge must close the domain exactly. *)
  edges.(bins) <- hi;
  Histogram.of_samples ~edges samples

let uniform ~domain samples = equi_width ~domain ~bins:1 samples

(* Deduplicate a sorted edge candidate list and force the domain borders. *)
let finalize_edges ~lo ~hi interior =
  let all = List.sort_uniq Float.compare (lo :: hi :: interior) in
  let all = List.filter (fun e -> e >= lo && e <= hi) all in
  Array.of_list all

let equi_depth ~domain:(lo, hi) ~bins samples =
  check_domain (lo, hi);
  if bins <= 0 then invalid_arg "Builders.equi_depth: bins must be positive";
  if Array.length samples = 0 then invalid_arg "Builders.equi_depth: empty sample";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let interior =
    List.init (bins - 1) (fun i ->
        Stats.Quantile.quantile_sorted sorted (float_of_int (i + 1) /. float_of_int bins))
  in
  let edges = finalize_edges ~lo ~hi interior in
  Histogram.of_samples ~edges samples

let max_diff ~domain:(lo, hi) ~bins samples =
  check_domain (lo, hi);
  if bins <= 0 then invalid_arg "Builders.max_diff: bins must be positive";
  if Array.length samples = 0 then invalid_arg "Builders.max_diff: empty sample";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  (* Gaps between adjacent distinct sample values, with their midpoints. *)
  let gaps = ref [] in
  for i = 1 to n - 1 do
    let gap = sorted.(i) -. sorted.(i - 1) in
    if gap > 0.0 then gaps := (gap, 0.5 *. (sorted.(i - 1) +. sorted.(i))) :: !gaps
  done;
  let sorted_gaps =
    List.sort (fun (g1, _) (g2, _) -> Float.compare g2 g1) !gaps
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | (_, mid) :: rest -> mid :: take (k - 1) rest
  in
  let interior = take (bins - 1) sorted_gaps in
  let edges = finalize_edges ~lo ~hi interior in
  Histogram.of_samples ~edges samples

let equal_bin_counts h =
  let counts = Histogram.counts h in
  let mn = Array.fold_left Float.min counts.(0) counts in
  let mx = Array.fold_left Float.max counts.(0) counts in
  mx -. mn <= 1.0
