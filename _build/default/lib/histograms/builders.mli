(** Construction policies for the histogram types compared in the paper. *)

val equi_width : domain:float * float -> bins:int -> float array -> Histogram.t
(** All bins have width [(hi - lo) / bins] (Section 3.1).
    @raise Invalid_argument if [bins <= 0], the domain is empty or the
    sample is empty. *)

val uniform : domain:float * float -> float array -> Histogram.t
(** The uniform estimator: a one-bin histogram, i.e. System R's uniformity
    assumption, the baseline "loser" of Figure 8. *)

val equi_depth : domain:float * float -> bins:int -> float array -> Histogram.t
(** Bin boundaries at sample quantiles [i / bins], so every bin holds the
    same number of samples (Piatetsky-Shapiro & Connell [3]).  Duplicate
    quantiles (heavy duplication) collapse into fewer, wider bins, so the
    result may have fewer than [bins] bins. *)

val max_diff : domain:float * float -> bins:int -> float array -> Histogram.t
(** Max-diff histogram (Poosala et al. [8]): boundaries are placed in the
    [bins - 1] largest gaps between adjacent sorted sample values (gap
    midpoints).  With fewer distinct values than bins the result shrinks
    accordingly. *)

val equal_bin_counts : Histogram.t -> bool
(** True when every bin of the histogram holds the same sample count up to
    one unit — the defining property of an equi-depth histogram on
    duplicate-free data (used by tests). *)
