let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Pyramid layout: index 0 holds the overall average; each level's detail
   coefficients follow.  Unnormalized (average, difference/2) pairs keep the
   arithmetic simple; normalization happens only for thresholding. *)

let haar_forward v =
  let n = Array.length v in
  if not (is_power_of_two n) then
    invalid_arg "Wavelet.haar_forward: length must be a positive power of two";
  let a = Array.copy v in
  let tmp = Array.make n 0.0 in
  let len = ref n in
  while !len > 1 do
    let half = !len / 2 in
    for i = 0 to half - 1 do
      tmp.(i) <- 0.5 *. (a.(2 * i) +. a.((2 * i) + 1));
      tmp.(half + i) <- 0.5 *. (a.(2 * i) -. a.((2 * i) + 1))
    done;
    Array.blit tmp 0 a 0 !len;
    len := half
  done;
  a

let haar_inverse v =
  let n = Array.length v in
  if not (is_power_of_two n) then
    invalid_arg "Wavelet.haar_inverse: length must be a positive power of two";
  let a = Array.copy v in
  let tmp = Array.make n 0.0 in
  let len = ref 1 in
  while !len < n do
    let half = !len in
    for i = 0 to half - 1 do
      tmp.(2 * i) <- a.(i) +. a.(half + i);
      tmp.((2 * i) + 1) <- a.(i) -. a.(half + i)
    done;
    Array.blit tmp 0 a 0 (2 * half);
    len := 2 * half
  done;
  a

(* Level of a pyramid index: coefficient i (> 0) belongs to the detail block
   starting at the largest power of two <= i; deeper blocks describe finer
   resolutions and carry less L2 weight per unit of unnormalized value. *)
let level_of_index i =
  if i = 0 then 0
  else begin
    let l = ref 0 and v = ref i in
    while !v > 1 do
      v := !v / 2;
      incr l
    done;
    !l + 1
  end

let compress ~coefficients v =
  if coefficients <= 0 then invalid_arg "Wavelet.compress: coefficients must be positive";
  let n = Array.length v in
  if n = 0 then invalid_arg "Wavelet.compress: empty vector";
  let padded_len =
    let rec grow m = if m >= n then m else grow (2 * m) in
    grow 1
  in
  let padded = Array.make padded_len 0.0 in
  Array.blit v 0 padded 0 n;
  let coeffs = haar_forward padded in
  if coefficients < padded_len then begin
    (* L2 norm of the unnormalized coefficient at pyramid level l scales as
       2^((levels - l)/2); rank by that weight. *)
    let levels = level_of_index (padded_len - 1) in
    let weight i =
      let l = level_of_index i in
      Float.abs coeffs.(i) *. (2.0 ** (0.5 *. float_of_int (levels - l)))
    in
    let order = Array.init padded_len Fun.id in
    Array.sort (fun i j -> Float.compare (weight j) (weight i)) order;
    for r = coefficients to padded_len - 1 do
      coeffs.(order.(r)) <- 0.0
    done
  end;
  Array.sub (haar_inverse coeffs) 0 n

let build ?(granularity = 256) ~domain:(lo, hi) ~coefficients samples =
  if granularity <= 0 then invalid_arg "Wavelet.build: granularity must be positive";
  if lo >= hi then invalid_arg "Wavelet.build: empty domain";
  if Array.length samples = 0 then invalid_arg "Wavelet.build: empty sample";
  let freqs = V_optimal.micro_frequencies ~granularity ~domain:(lo, hi) samples in
  let approx = compress ~coefficients freqs in
  let clamped = Array.map (fun x -> Float.max 0.0 x) approx in
  let total = Array.fold_left ( +. ) 0.0 clamped in
  let counts =
    if total <= 0.0 then Array.make granularity (float_of_int (Array.length samples) /. float_of_int granularity)
    else begin
      let scale = float_of_int (Array.length samples) /. total in
      Array.map (fun x -> x *. scale) clamped
    end
  in
  let edges =
    Array.init (granularity + 1) (fun i ->
        lo +. (float_of_int i /. float_of_int granularity *. (hi -. lo)))
  in
  Histogram.create ~edges ~counts
