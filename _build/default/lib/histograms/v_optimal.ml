let micro_frequencies ~granularity ~domain:(lo, hi) samples =
  if granularity <= 0 then invalid_arg "V_optimal.micro_frequencies: granularity must be positive";
  if lo >= hi then invalid_arg "V_optimal.micro_frequencies: empty domain";
  if Array.length samples = 0 then invalid_arg "V_optimal.micro_frequencies: empty sample";
  let freqs = Array.make granularity 0.0 in
  let w = (hi -. lo) /. float_of_int granularity in
  Array.iter
    (fun x ->
      let i = Int.max 0 (Int.min (granularity - 1) (int_of_float (Float.floor ((x -. lo) /. w)))) in
      freqs.(i) <- freqs.(i) +. 1.0)
    samples;
  freqs

(* Prefix sums give O(1) within-segment SSE:
   sse(i, j) = sum f^2 - (sum f)^2 / (j - i + 1). *)
let prefix_sums freqs =
  let m = Array.length freqs in
  let s = Array.make (m + 1) 0.0 and s2 = Array.make (m + 1) 0.0 in
  for i = 0 to m - 1 do
    s.(i + 1) <- s.(i) +. freqs.(i);
    s2.(i + 1) <- s2.(i) +. (freqs.(i) *. freqs.(i))
  done;
  (s, s2)

let segment_sse s s2 i j =
  (* micro cells i..j inclusive *)
  let len = float_of_int (j - i + 1) in
  let sum = s.(j + 1) -. s.(i) in
  Float.max 0.0 (s2.(j + 1) -. s2.(i) -. (sum *. sum /. len))

let partition_sse freqs ~boundaries =
  let m = Array.length freqs in
  let s, s2 = prefix_sums freqs in
  let rec go start acc = function
    | [] -> acc +. segment_sse s s2 start (m - 1)
    | b :: rest ->
      if b <= start || b >= m then invalid_arg "V_optimal.partition_sse: bad boundary";
      go b (acc +. segment_sse s s2 start (b - 1)) rest
  in
  go 0 0.0 boundaries

let build_with_cost ?(granularity = 360) ~domain:(lo, hi) ~bins samples =
  if bins <= 0 then invalid_arg "V_optimal.build: bins must be positive";
  if granularity < bins then invalid_arg "V_optimal.build: granularity must be >= bins";
  let freqs = micro_frequencies ~granularity ~domain:(lo, hi) samples in
  let m = granularity in
  let s, s2 = prefix_sums freqs in
  let k = Int.min bins m in
  (* dp.(kk).(j): minimal SSE of splitting cells 0..j into kk+1 segments. *)
  let inf = Float.infinity in
  let dp = Array.make_matrix k m inf in
  let parent = Array.make_matrix k m (-1) in
  for j = 0 to m - 1 do
    dp.(0).(j) <- segment_sse s s2 0 j
  done;
  for kk = 1 to k - 1 do
    for j = kk to m - 1 do
      (* last segment is i..j; previous kk segments cover 0..i-1 *)
      let best = ref inf and best_i = ref (-1) in
      for i = kk to j do
        let c = dp.(kk - 1).(i - 1) +. segment_sse s s2 i j in
        if c < !best then begin
          best := c;
          best_i := i
        end
      done;
      dp.(kk).(j) <- !best;
      parent.(kk).(j) <- !best_i
    done
  done;
  let cost = dp.(k - 1).(m - 1) in
  (* Recover the boundaries. *)
  let rec backtrack kk j acc =
    if kk = 0 then acc
    else begin
      let i = parent.(kk).(j) in
      backtrack (kk - 1) (i - 1) (i :: acc)
    end
  in
  let boundaries = backtrack (k - 1) (m - 1) [] in
  let w = (hi -. lo) /. float_of_int m in
  let edge_of_cell i = lo +. (float_of_int i *. w) in
  let interior = List.map edge_of_cell boundaries in
  let edges = Array.of_list ((lo :: interior) @ [ hi ]) in
  (Histogram.of_samples ~edges samples, cost)

let build ?granularity ~domain ~bins samples =
  fst (build_with_cost ?granularity ~domain ~bins samples)
