(** V-optimal histogram (Jagadish et al. [7]; the quality target of Poosala
    et al. [8]): bin boundaries minimizing the total within-bin variance of
    the frequency distribution, computed by dynamic programming.

    Exact V-optimal DP is quadratic in the number of distinct values, so
    the sample is first aggregated onto a fine equi-width micro-grid
    (resolution [granularity], default 360 cells); the DP then runs on
    micro-cell frequencies in [O(bins * granularity^2)], which is exact for
    the aggregated distribution and fast for the paper's sample sizes.
    Extension beyond the paper, included in the histogram ablation. *)

val micro_frequencies : granularity:int -> domain:float * float -> float array -> float array
(** Per-micro-cell sample counts — the frequency vector the DP optimizes
    over.  @raise Invalid_argument if [granularity <= 0], the domain is
    empty or the sample is empty. *)

val partition_sse : float array -> boundaries:int list -> float
(** [partition_sse freqs ~boundaries] is the V-optimal objective of the
    partition of [freqs] whose segments end before each boundary index:
    the sum over segments of the within-segment sum of squared deviations
    from the segment mean.  [boundaries] must be sorted interior indices in
    [(0, length)].  Exposed for the optimality tests. *)

val build_with_cost :
  ?granularity:int -> domain:float * float -> bins:int -> float array -> Histogram.t * float
(** [build_with_cost ~domain ~bins samples] returns the V-optimal partition
    as an ordinary {!Histogram.t} (edges on micro-grid boundaries, true
    sample counts per bin) together with its objective value.  The result
    may have fewer than [bins] bins when fewer micro-cells are occupied.
    @raise Invalid_argument if [bins <= 0], [granularity < bins], the
    domain is empty or the sample is empty. *)

val build :
  ?granularity:int -> domain:float * float -> bins:int -> float array -> Histogram.t
(** {!build_with_cost} without the cost. *)
