lib/histograms/frequency_polygon.ml: Array Builders Float Histogram Int Stats
