lib/histograms/ash.ml: Array Float Histogram
