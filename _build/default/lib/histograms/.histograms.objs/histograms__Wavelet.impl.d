lib/histograms/wavelet.ml: Array Float Fun Histogram V_optimal
