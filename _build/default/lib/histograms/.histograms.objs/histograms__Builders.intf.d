lib/histograms/builders.mli: Histogram
