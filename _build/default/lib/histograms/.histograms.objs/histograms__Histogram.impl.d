lib/histograms/histogram.ml: Array Float Int Stats
