lib/histograms/histogram.mli:
