lib/histograms/ash.mli:
