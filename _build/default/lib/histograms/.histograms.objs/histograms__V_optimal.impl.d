lib/histograms/v_optimal.ml: Array Float Histogram Int List
