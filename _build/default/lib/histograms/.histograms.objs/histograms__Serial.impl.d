lib/histograms/serial.ml: Array Float Int Stats
