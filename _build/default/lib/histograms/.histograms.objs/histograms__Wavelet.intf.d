lib/histograms/wavelet.mli: Histogram
