lib/histograms/builders.ml: Array Float Histogram List Stats
