lib/histograms/v_optimal.mli: Histogram
