lib/histograms/serial.mli:
