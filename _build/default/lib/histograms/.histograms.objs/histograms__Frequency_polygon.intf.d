lib/histograms/frequency_polygon.mli: Histogram
