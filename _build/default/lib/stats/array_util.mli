(** Utilities over sorted arrays: binary searches and order checks.

    All searches assume the array is sorted in non-decreasing order; this is
    asserted in debug builds but not checked in release code since the hot
    paths of the estimators call them once per query. *)

val is_sorted : ('a -> 'a -> int) -> 'a array -> bool
(** [is_sorted cmp a] is true iff [a] is non-decreasing under [cmp]. *)

val lower_bound : ('a -> 'a -> int) -> 'a array -> 'a -> int
(** [lower_bound cmp a x] is the smallest index [i] with [cmp a.(i) x >= 0],
    or [Array.length a] if every element is smaller than [x].  In other
    words, the number of elements strictly below [x]. *)

val upper_bound : ('a -> 'a -> int) -> 'a array -> 'a -> int
(** [upper_bound cmp a x] is the smallest index [i] with [cmp a.(i) x > 0],
    or [Array.length a]: the number of elements less than or equal to [x]. *)

val count_in_range : ('a -> 'a -> int) -> 'a array -> 'a -> 'a -> int
(** [count_in_range cmp a lo hi] is the number of elements [e] of the sorted
    array [a] with [lo <= e <= hi].  Returns 0 when [lo > hi]. *)

val float_lower_bound : float array -> float -> int
(** {!lower_bound} specialized to floats (avoids the closure on hot paths). *)

val float_upper_bound : float array -> float -> int
(** {!upper_bound} specialized to floats. *)

val int_lower_bound : int array -> int -> int
(** {!lower_bound} specialized to ints. *)

val int_upper_bound : int array -> int -> int
(** {!upper_bound} specialized to ints. *)
