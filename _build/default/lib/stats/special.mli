(** Special functions needed by the normal distribution: error function,
    complementary error function, the standard normal PDF/CDF and the inverse
    normal CDF.

    [erf]/[erfc] use the rational Chebyshev approximation of W. J. Cody
    (Communications of the ACM, 1969) with relative error below 1e-15 on the
    whole real line; the inverse CDF uses Acklam's rational approximation
    refined by one Halley step, accurate to full double precision. *)

val erf : float -> float
(** The error function [2/sqrt(pi) * int_0^x exp(-t^2) dt]. *)

val erfc : float -> float
(** The complementary error function [1 - erf x], accurate for large [x]. *)

val normal_pdf : float -> float
(** Standard normal density [exp(-x^2/2) / sqrt(2 pi)]. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function. *)

val normal_quantile : float -> float
(** [normal_quantile p] is the [p]-quantile of the standard normal.
    @raise Invalid_argument unless [0 < p < 1]. *)

val sqrt_two_pi : float
(** [sqrt (2 * pi)], shared by density formulas across the repository. *)
