(** Order statistics: quantiles, median, interquartile range and the robust
    scale estimate used by the normal-scale smoothing rules.

    Quantiles follow the "type 7" convention (linear interpolation of the
    empirical CDF at [(n-1)q]), the default of R and NumPy, which matches the
    interquartile-range recipe of the paper's Section 4.1. *)

val quantile_sorted : float array -> float -> float
(** [quantile_sorted a q] is the type-7 [q]-quantile of the sorted array [a].
    @raise Invalid_argument if [a] is empty or [q] outside [[0, 1]]. *)

val quantile : float array -> float -> float
(** Like {!quantile_sorted} but sorts a copy of the input first. *)

val median_sorted : float array -> float
(** [median_sorted a] is [quantile_sorted a 0.5]. *)

val iqr_sorted : float array -> float
(** [iqr_sorted a] is the interquartile range [q0.75 - q0.25] of a sorted
    array. *)

val robust_scale : float array -> float
(** [robust_scale a] estimates the standard deviation of the underlying
    distribution as [min (sample stddev) (IQR / 1.348)], the exact rule of
    the paper's Sections 4.1-4.2 (the constant 1.348 makes the IQR an
    unbiased scale estimate under normality).  The input does not have to be
    sorted.  Falls back on whichever of the two estimates is positive when
    the other degenerates to zero, and raises [Invalid_argument] when the
    array has fewer than two elements. *)

val robust_scale_sorted : float array -> float
(** {!robust_scale} for data already sorted (skips the sorting copy). *)
