(** Descriptive statistics over float arrays.

    Sums use Kahan compensation so that the moment estimates stay accurate on
    the 100,000-record datasets of the experiments; variances use the
    two-pass corrected algorithm. *)

val kahan_sum : float array -> float
(** [kahan_sum a] is the compensated sum of the elements of [a]. *)

val mean : float array -> float
(** [mean a] is the arithmetic mean.  @raise Invalid_argument on empty. *)

val variance : ?mean:float -> float array -> float
(** [variance a] is the unbiased sample variance (divides by [n - 1]).
    [?mean] short-circuits the first pass when already known.
    @raise Invalid_argument if [Array.length a < 2]. *)

val population_variance : ?mean:float -> float array -> float
(** [population_variance a] divides by [n].
    @raise Invalid_argument on empty. *)

val stddev : ?mean:float -> float array -> float
(** [stddev a] is [sqrt (variance a)]. *)

val min_max : float array -> float * float
(** [min_max a] is the pair (minimum, maximum).
    @raise Invalid_argument on empty. *)

val central_moment : int -> float array -> float
(** [central_moment k a] is [mean ((x - mean a)^k)].
    @raise Invalid_argument on empty or [k < 0]. *)

val skewness : float array -> float
(** Sample skewness [m3 / m2^1.5].  @raise Invalid_argument if [n < 2] or the
    data has zero variance. *)

val kurtosis_excess : float array -> float
(** Excess kurtosis [m4 / m2^2 - 3].  Same preconditions as {!skewness}. *)

val mean_of_ints : int array -> float
(** Mean of an integer array, without intermediate float array allocation. *)

val stddev_of_ints : int array -> float
(** Sample standard deviation of an integer array.
    @raise Invalid_argument if fewer than two elements. *)
