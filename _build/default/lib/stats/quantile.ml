let quantile_sorted a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Quantile.quantile_sorted: empty array";
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Quantile.quantile_sorted: q outside [0,1]";
  if n = 1 then a.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor pos) in
    let frac = pos -. float_of_int i in
    if i >= n - 1 then a.(n - 1) else a.(i) +. (frac *. (a.(i + 1) -. a.(i)))
  end

let quantile a q =
  let b = Array.copy a in
  Array.sort Float.compare b;
  quantile_sorted b q

let median_sorted a = quantile_sorted a 0.5

let iqr_sorted a = quantile_sorted a 0.75 -. quantile_sorted a 0.25

(* 1.348 ~ 2 * Phi^-1(0.75): IQR of a standard normal. *)
let iqr_to_sigma = 1.348

let robust_scale_sorted a =
  if Array.length a < 2 then invalid_arg "Quantile.robust_scale_sorted: need at least two elements";
  let sd = Descriptive.stddev a in
  let iqr_scale = iqr_sorted a /. iqr_to_sigma in
  if sd <= 0.0 then iqr_scale
  else if iqr_scale <= 0.0 then sd
  else Float.min sd iqr_scale

let robust_scale a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  robust_scale_sorted b
