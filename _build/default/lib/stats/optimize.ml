let golden_ratio_conjugate = 0.6180339887498949

let golden_section ?(tol = 1e-8) ?(max_iter = 200) f ~lo ~hi =
  if lo >= hi then invalid_arg "Optimize.golden_section: requires lo < hi";
  let a = ref lo and b = ref hi in
  let x1 = ref (!b -. (golden_ratio_conjugate *. (!b -. !a))) in
  let x2 = ref (!a +. (golden_ratio_conjugate *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let iter = ref 0 in
  while !b -. !a > tol && !iter < max_iter do
    incr iter;
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden_ratio_conjugate *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden_ratio_conjugate *. (!b -. !a));
      f2 := f !x2
    end
  done;
  if !f1 < !f2 then (!x1, !f1) else (!x2, !f2)

let grid_min f xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Optimize.grid_min: empty grid";
  let best_x = ref xs.(0) and best_f = ref (f xs.(0)) in
  for i = 1 to n - 1 do
    let fx = f xs.(i) in
    if fx < !best_f then begin
      best_f := fx;
      best_x := xs.(i)
    end
  done;
  (!best_x, !best_f)

let log_grid ~lo ~hi ~n =
  if not (lo > 0.0 && lo < hi) then invalid_arg "Optimize.log_grid: requires 0 < lo < hi";
  if n < 2 then invalid_arg "Optimize.log_grid: need at least two points";
  let llo = log lo and lhi = log hi in
  Array.init n (fun i -> exp (llo +. (float_of_int i /. float_of_int (n - 1) *. (lhi -. llo))))

let linear_grid ~lo ~hi ~n =
  if lo >= hi then invalid_arg "Optimize.linear_grid: requires lo < hi";
  if n < 2 then invalid_arg "Optimize.linear_grid: need at least two points";
  Array.init n (fun i -> lo +. (float_of_int i /. float_of_int (n - 1) *. (hi -. lo)))

let refine_around_grid_min ?(polish_iters = 60) f xs =
  let best_x, best_f = grid_min f xs in
  let n = Array.length xs in
  (* Locate the best index to find its neighbours. *)
  let idx = ref 0 in
  for i = 0 to n - 1 do
    if xs.(i) = best_x then idx := i
  done;
  let lo = if !idx > 0 then xs.(!idx - 1) else xs.(0) in
  let hi = if !idx < n - 1 then xs.(!idx + 1) else xs.(n - 1) in
  if lo >= hi then (best_x, best_f)
  else begin
    let x, fx = golden_section ~max_iter:polish_iters f ~lo ~hi in
    if fx < best_f then (x, fx) else (best_x, best_f)
  end
