let check_bounds name a b =
  if not (Float.is_finite a && Float.is_finite b) then
    invalid_arg (name ^ ": bounds must be finite")

let trapezoid f ~a ~b ~n =
  check_bounds "Integrate.trapezoid" a b;
  if n <= 0 then invalid_arg "Integrate.trapezoid: n must be positive";
  let h = (b -. a) /. float_of_int n in
  let sum = ref (0.5 *. (f a +. f b)) in
  for i = 1 to n - 1 do
    sum := !sum +. f (a +. (float_of_int i *. h))
  done;
  !sum *. h

let simpson f ~a ~b ~n =
  check_bounds "Integrate.simpson" a b;
  if n <= 0 then invalid_arg "Integrate.simpson: n must be positive";
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let sum = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4.0 else 2.0 in
    sum := !sum +. (w *. f (a +. (float_of_int i *. h)))
  done;
  !sum *. h /. 3.0

let adaptive_simpson ?(eps = 1e-10) ?(max_depth = 50) f ~a ~b =
  check_bounds "Integrate.adaptive_simpson" a b;
  let simpson3 fa fm fb a b = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  let rec go a b fa fm fb whole eps depth =
    let m = 0.5 *. (a +. b) in
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson3 fa flm fm a m in
    let right = simpson3 fm frm fb m b in
    let delta = left +. right -. whole in
    if depth <= 0 || Float.abs delta <= 15.0 *. eps then left +. right +. (delta /. 15.0)
    else
      go a m fa flm fm left (eps /. 2.0) (depth - 1)
      +. go m b fm frm fb right (eps /. 2.0) (depth - 1)
  in
  let fa = f a and fb = f b and fm = f (0.5 *. (a +. b)) in
  go a b fa fm fb (simpson3 fa fm fb a b) eps max_depth

(* Gauss-Legendre nodes/weights for n = 10 on [-1, 1] (symmetric halves). *)
let gl10_nodes =
  [| 0.1488743389816312; 0.4333953941292472; 0.6794095682990244; 0.8650633666889845;
     0.9739065285171717 |]

let gl10_weights =
  [| 0.2955242247147529; 0.2692667193099963; 0.2190863625159820; 0.1494513491505806;
     0.0666713443086881 |]

let gauss_legendre_10 f ~a ~b =
  check_bounds "Integrate.gauss_legendre_10" a b;
  let mid = 0.5 *. (a +. b) and half = 0.5 *. (b -. a) in
  let acc = ref 0.0 in
  for i = 0 to 4 do
    let dx = half *. gl10_nodes.(i) in
    acc := !acc +. (gl10_weights.(i) *. (f (mid -. dx) +. f (mid +. dx)))
  done;
  !acc *. half

let integrate_grid xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Integrate.integrate_grid: length mismatch";
  if n < 2 then invalid_arg "Integrate.integrate_grid: need at least two points";
  let sum = ref 0.0 in
  for i = 0 to n - 2 do
    let dx = xs.(i + 1) -. xs.(i) in
    if dx <= 0.0 then invalid_arg "Integrate.integrate_grid: xs must be strictly increasing";
    sum := !sum +. (0.5 *. dx *. (ys.(i) +. ys.(i + 1)))
  done;
  !sum
