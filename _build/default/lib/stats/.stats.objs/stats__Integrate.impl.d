lib/stats/integrate.ml: Array Float
