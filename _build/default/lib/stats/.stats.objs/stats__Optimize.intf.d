lib/stats/optimize.mli:
