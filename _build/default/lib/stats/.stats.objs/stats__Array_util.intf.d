lib/stats/array_util.mli:
