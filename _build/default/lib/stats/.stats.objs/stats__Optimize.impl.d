lib/stats/optimize.ml: Array
