lib/stats/array_util.ml: Array
