lib/stats/special.mli:
