lib/stats/integrate.mli:
