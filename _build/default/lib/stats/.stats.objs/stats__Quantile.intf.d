lib/stats/quantile.mli:
