lib/stats/descriptive.mli:
