(** Scalar minimization used by the oracle smoothing-parameter searches.

    The error-versus-smoothing-parameter curves of the paper (Figures 4, 9,
    11) are roughly U-shaped but noisy, so the oracle searches combine a
    coarse logarithmic grid scan with a golden-section polish around the best
    grid cell. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float * float
(** [golden_section f ~lo ~hi] minimizes unimodal [f] on [[lo, hi]]; returns
    [(argmin, min)].  [tol] is the absolute interval tolerance (default
    [1e-8]).  @raise Invalid_argument if [lo >= hi]. *)

val grid_min : (float -> float) -> float array -> float * float
(** [grid_min f xs] evaluates [f] on every point of [xs] and returns the
    [(argmin, min)] pair.  @raise Invalid_argument on empty [xs]. *)

val log_grid : lo:float -> hi:float -> n:int -> float array
(** [log_grid ~lo ~hi ~n] is [n] points geometrically spaced from [lo] to
    [hi] inclusive.  @raise Invalid_argument unless [0 < lo < hi] and
    [n >= 2]. *)

val linear_grid : lo:float -> hi:float -> n:int -> float array
(** [linear_grid ~lo ~hi ~n] is [n] points linearly spaced from [lo] to [hi]
    inclusive.  @raise Invalid_argument unless [lo < hi] and [n >= 2]. *)

val refine_around_grid_min :
  ?polish_iters:int -> (float -> float) -> float array -> float * float
(** [refine_around_grid_min f xs] runs {!grid_min} then golden-section within
    the two grid cells adjacent to the best point, which tolerates mild
    non-unimodality away from the optimum. *)
