let kahan_sum a =
  let sum = ref 0.0 and c = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let y = a.(i) -. !c in
    let t = !sum +. y in
    c := t -. !sum -. y;
    sum := t
  done;
  !sum

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Descriptive.mean: empty array";
  kahan_sum a /. float_of_int n

let sum_sq_dev m a =
  let sum = ref 0.0 and c = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. m in
    let y = (d *. d) -. !c in
    let t = !sum +. y in
    c := t -. !sum -. y;
    sum := t
  done;
  !sum

let variance ?mean:m a =
  let n = Array.length a in
  if n < 2 then invalid_arg "Descriptive.variance: need at least two elements";
  let m = match m with Some m -> m | None -> mean a in
  sum_sq_dev m a /. float_of_int (n - 1)

let population_variance ?mean:m a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Descriptive.population_variance: empty array";
  let m = match m with Some m -> m | None -> mean a in
  sum_sq_dev m a /. float_of_int n

let stddev ?mean a = sqrt (variance ?mean a)

let min_max a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Descriptive.min_max: empty array";
  let mn = ref a.(0) and mx = ref a.(0) in
  for i = 1 to n - 1 do
    if a.(i) < !mn then mn := a.(i);
    if a.(i) > !mx then mx := a.(i)
  done;
  (!mn, !mx)

let central_moment k a =
  if k < 0 then invalid_arg "Descriptive.central_moment: negative order";
  let n = Array.length a in
  if n = 0 then invalid_arg "Descriptive.central_moment: empty array";
  if k = 0 then 1.0
  else begin
    let m = mean a in
    let sum = ref 0.0 and c = ref 0.0 in
    for i = 0 to n - 1 do
      let d = a.(i) -. m in
      let rec pow acc j = if j = 0 then acc else pow (acc *. d) (j - 1) in
      let y = pow 1.0 k -. !c in
      let t = !sum +. y in
      c := t -. !sum -. y;
      sum := t
    done;
    !sum /. float_of_int n
  end

let skewness a =
  if Array.length a < 2 then invalid_arg "Descriptive.skewness: need at least two elements";
  let m2 = central_moment 2 a in
  if m2 <= 0.0 then invalid_arg "Descriptive.skewness: zero variance";
  central_moment 3 a /. (m2 ** 1.5)

let kurtosis_excess a =
  if Array.length a < 2 then invalid_arg "Descriptive.kurtosis_excess: need at least two elements";
  let m2 = central_moment 2 a in
  if m2 <= 0.0 then invalid_arg "Descriptive.kurtosis_excess: zero variance";
  (central_moment 4 a /. (m2 *. m2)) -. 3.0

let mean_of_ints a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Descriptive.mean_of_ints: empty array";
  let sum = ref 0.0 and c = ref 0.0 in
  for i = 0 to n - 1 do
    let y = float_of_int a.(i) -. !c in
    let t = !sum +. y in
    c := t -. !sum -. y;
    sum := t
  done;
  !sum /. float_of_int n

let stddev_of_ints a =
  let n = Array.length a in
  if n < 2 then invalid_arg "Descriptive.stddev_of_ints: need at least two elements";
  let m = mean_of_ints a in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    let d = float_of_int a.(i) -. m in
    sum := !sum +. (d *. d)
  done;
  sqrt (!sum /. float_of_int (n - 1))
