let is_sorted cmp a =
  let n = Array.length a in
  let rec go i = i >= n || (cmp a.(i - 1) a.(i) <= 0 && go (i + 1)) in
  go 1

let lower_bound cmp a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if cmp a.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound cmp a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if cmp a.(mid) x <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let count_in_range cmp a lo hi =
  if cmp lo hi > 0 then 0 else upper_bound cmp a hi - lower_bound cmp a lo

let float_lower_bound (a : float array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let float_upper_bound (a : float array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let int_lower_bound (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let int_upper_bound (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo
