(* erf/erfc: rational Chebyshev approximations of W. J. Cody (1969), as in
   netlib's CALERF.  Three regions: |x| <= 0.46875, 0.46875 < |x| <= 4,
   |x| > 4; relative error below 1.2e-16 in each. *)

let a_small =
  [| 3.16112374387056560e0; 1.13864154151050156e2; 3.77485237685302021e2;
     3.20937758913846947e3; 1.85777706184603153e-1 |]

let b_small =
  [| 2.36012909523441209e1; 2.44024637934444173e2; 1.28261652607737228e3;
     2.84423683343917062e3 |]

let c_mid =
  [| 5.64188496988670089e-1; 8.88314979438837594e0; 6.61191906371416295e1;
     2.98635138197400131e2; 8.81952221241769090e2; 1.71204761263407058e3;
     2.05107837782607147e3; 1.23033935479799725e3; 2.15311535474403846e-8 |]

let d_mid =
  [| 1.57449261107098347e1; 1.17693950891312499e2; 5.37181101862009858e2;
     1.62138957456669019e3; 3.29079923573345963e3; 4.36261909014324716e3;
     3.43936767414372164e3; 1.23033935480374942e3 |]

let p_large =
  [| 3.05326634961232344e-1; 3.60344899949804439e-1; 1.25781726111229246e-1;
     1.60837851487422766e-2; 6.58749161529837803e-4; 1.63153871373020978e-2 |]

let q_large =
  [| 2.56852019228982242e0; 1.87295284992346047e0; 5.27905102951428412e-1;
     6.05183413124413191e-2; 2.33520497626869185e-3 |]

let inv_sqrt_pi = 0.5641895835477562869

(* exp(-y^2) with the argument split to avoid cancellation for large y. *)
let exp_neg_sq y =
  let ysq = Float.of_int (int_of_float (y *. 16.0)) /. 16.0 in
  let del = (y -. ysq) *. (y +. ysq) in
  exp (-.ysq *. ysq) *. exp (-.del)

let erf_small x =
  let z = x *. x in
  let xnum = ref (a_small.(4) *. z) and xden = ref z in
  for i = 0 to 2 do
    xnum := (!xnum +. a_small.(i)) *. z;
    xden := (!xden +. b_small.(i)) *. z
  done;
  x *. (!xnum +. a_small.(3)) /. (!xden +. b_small.(3))

let erfc_mid y =
  let xnum = ref (c_mid.(8) *. y) and xden = ref y in
  for i = 0 to 6 do
    xnum := (!xnum +. c_mid.(i)) *. y;
    xden := (!xden +. d_mid.(i)) *. y
  done;
  exp_neg_sq y *. (!xnum +. c_mid.(7)) /. (!xden +. d_mid.(7))

let erfc_large y =
  let z = 1.0 /. (y *. y) in
  let xnum = ref (p_large.(5) *. z) and xden = ref z in
  for i = 0 to 3 do
    xnum := (!xnum +. p_large.(i)) *. z;
    xden := (!xden +. q_large.(i)) *. z
  done;
  let r = z *. (!xnum +. p_large.(4)) /. (!xden +. q_large.(4)) in
  exp_neg_sq y *. (inv_sqrt_pi -. r) /. y

let erfc_positive y =
  if y <= 0.46875 then 1.0 -. erf_small y
  else if y <= 4.0 then erfc_mid y
  else if y < 26.6 then erfc_large y
  else 0.0

let erfc x = if x >= 0.0 then erfc_positive x else 2.0 -. erfc_positive (-.x)

let erf x =
  let y = Float.abs x in
  if y <= 0.46875 then erf_small x
  else begin
    let v = 1.0 -. erfc_positive y in
    if x >= 0.0 then v else -.v
  end

let sqrt_two_pi = 2.5066282746310002

let normal_pdf x = exp (-0.5 *. x *. x) /. sqrt_two_pi

let sqrt_half = 0.7071067811865476

let normal_cdf x = 0.5 *. erfc (-.x *. sqrt_half)

(* Inverse normal CDF: Acklam's rational approximation (relative error
   ~1.15e-9), refined by one Halley step to full double precision. *)

let aq =
  [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
     1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]

let bq =
  [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
     6.680131188771972e+01; -1.328068155288572e+01 |]

let cq =
  [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
     -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]

let dq =
  [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
     3.754408661907416e+00 |]

let acklam p =
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    (((((cq.(0) *. q +. cq.(1)) *. q +. cq.(2)) *. q +. cq.(3)) *. q +. cq.(4)) *. q +. cq.(5))
    /. ((((dq.(0) *. q +. dq.(1)) *. q +. dq.(2)) *. q +. dq.(3)) *. q +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((aq.(0) *. r +. aq.(1)) *. r +. aq.(2)) *. r +. aq.(3)) *. r +. aq.(4)) *. r +. aq.(5))
    *. q
    /. (((((bq.(0) *. r +. bq.(1)) *. r +. bq.(2)) *. r +. bq.(3)) *. r +. bq.(4)) *. r +. 1.0)
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((cq.(0) *. q +. cq.(1)) *. q +. cq.(2)) *. q +. cq.(3)) *. q +. cq.(4)) *. q +. cq.(5))
       /. ((((dq.(0) *. q +. dq.(1)) *. q +. dq.(2)) *. q +. dq.(3)) *. q +. 1.0))
  end

let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Special.normal_quantile: p must be in (0,1)";
  let x = acklam p in
  (* One Halley refinement using the accurate CDF. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt_two_pi *. exp (0.5 *. x *. x) in
  x -. (u /. (1.0 +. (x *. u *. 0.5)))
