(* Network service: the serve -> query -> measure -> drain lifecycle.

   Builds summaries for two attributes into a snapshot directory, puts
   them on a Unix-domain socket with Server.Engine, talks to the server
   as a client would (ping, ls, single and batched estimates, a spec
   pin that fails loudly), measures it with the closed-loop load
   generator — checking every served answer bit-identical to a direct
   Catalog.Service.answer — and finally drains it gracefully, the
   network-side serving story of docs/SERVING.md.

   Run with:  dune exec examples/network_service.exe *)

module Cat = Catalog.Service
module E = Workload.Experiment

let dir = Filename.concat (Filename.get_temp_dir_name ()) "selest_network_example"
let socket = Filename.concat (Filename.get_temp_dir_name ()) "selest_network_example.sock"
let address = Server.Wire.Unix_socket socket

let () =
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);

  (* --- ANALYZE: two attributes into the snapshot directory --- *)
  let svc, _ = Cat.open_dir dir in
  List.iter
    (fun (file, spec) ->
      let relation = Data.Catalog.find ~seed:42L file in
      let sample = E.sample_of relation ~seed:7L ~n:2000 in
      match
        Cat.build svc
          ~name:(file ^ "/" ^ spec)
          ~spec ~domain:(E.domain_of relation) ~sample
      with
      | Ok info -> Printf.printf "analyzed %-12s %s\n" info.Cat.name info.Cat.spec
      | Error msg -> failwith msg)
    [ ("n(20)", "kernel"); ("u(20)", "ewh:40") ];

  (* --- Serve: the engine owns the service; one thread runs it --- *)
  let engine = Server.Engine.create ~services:[| svc |] address in
  let server_thread = Thread.create Server.Engine.serve engine in
  Printf.printf "\nserving %s on unix:%s\n\n" dir socket;

  (* --- A client conversation --- *)
  let client =
    match Server.Client.connect address with
    | Ok c -> c
    | Error e -> failwith (Server.Client.error_to_string e)
  in
  let ok = function Ok v -> v | Error e -> failwith (Server.Client.error_to_string e) in
  let entries = ok (Server.Client.ls client) in
  List.iter
    (fun (e : Server.Wire.entry_info) ->
      let lo, hi = e.domain in
      Printf.printf "ls: %-12s %-8s %4d cells, domain [%.1f, %.1f]\n" e.name e.spec
        e.cells lo hi)
    entries;

  let sel = ok (Server.Client.estimate client ~entry:"n(20)/kernel" ~a:400_000.0 ~b:600_000.0) in
  Printf.printf "estimate n(20)/kernel [400k, 600k] -> %.6f\n" sel;

  let batch =
    [|
      ("n(20)/kernel", 0.0, 1_048_575.0);
      ("u(20)/ewh:40", 100_000.0, 300_000.0);
      ("u(20)/ewh:40", 0.0, 524_287.0);
    |]
  in
  let answers = ok (Server.Client.batch_estimate client batch) in
  Array.iteri
    (fun i (name, a, b) ->
      Printf.printf "batch  %-12s [%8.0f, %8.0f] -> %.6f\n" name a b answers.(i))
    batch;

  (* A spec pin is a contract, and breaking it is a typed error, not a
     silent wrong answer. *)
  (match
     Server.Client.estimate client ~spec:"sampling" ~entry:"n(20)/kernel" ~a:0.0
       ~b:1000.0
   with
  | Ok _ -> failwith "spec pin should not have matched"
  | Error e -> Printf.printf "pinned spec refused: %s\n" (Server.Client.error_to_string e));

  (* --- Measure: closed-loop load, then verify bit-identity --- *)
  let requests = Server.Loadgen.synthetic_requests ~entries ~count:800 ~seed:11L in
  let report = Server.Loadgen.run ~connections:8 ~address requests in
  Printf.printf "\n%s\n" (Server.Loadgen.report_to_string report);

  (* The engine owns [svc], so verify against a second service opened
     cold on the same snapshot directory — exactly what --verify does. *)
  let direct, _ = Cat.open_dir dir in
  let expected = Cat.answer direct requests in
  let identical = ref 0 in
  Array.iteri
    (fun i served ->
      if Int64.bits_of_float served = Int64.bits_of_float expected.(i) then incr identical)
    report.Server.Loadgen.answers;
  Printf.printf "verify: %d/%d served answers bit-identical to direct Cat.answer\n"
    !identical (Array.length requests);

  (* --- Drain: stop accepting, answer what is in flight, exit --- *)
  Server.Engine.initiate_drain engine;
  Thread.join server_thread;
  (match Server.Client.ping client with
  | Ok () -> failwith "server should be gone"
  | Error e ->
    Printf.printf "\nafter drain, ping fails as it should: %s\n"
      (Server.Client.error_to_string e));
  Server.Client.close client;

  let s = Server.Engine.stats engine in
  Printf.printf
    "server lifetime: %d connections, %d requests, %d answered, %d batches (%.1f queries/batch)\n"
    s.Server.Engine.connections s.Server.Engine.requests s.Server.Engine.answered
    s.Server.Engine.batches
    (float_of_int s.Server.Engine.batched_queries
    /. float_of_int (max 1 s.Server.Engine.batches))
