(* Catalog server: the ANALYZE -> snapshot -> serve lifecycle end to end.

   Builds summaries for two attributes into a snapshot directory, kills
   the first service, reopens the directory cold (as a restarted server
   would), and answers a mixed batch of range queries without ever
   touching the relations again — the optimizer-side serving story of
   docs/CATALOG.md.

   Run with:  dune exec examples/catalog_server.exe *)

module Cat = Catalog.Service
module E = Workload.Experiment

let dir = Filename.concat (Filename.get_temp_dir_name ()) "selest_catalog_example"

let () =
  (* Start from an empty snapshot directory so reruns behave the same. *)
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);

  (* --- ANALYZE: fit estimators on samples, snapshot the summaries --- *)
  let svc, _ = Cat.open_dir dir in
  List.iter
    (fun (file, spec) ->
      let relation = Data.Catalog.find ~seed:42L file in
      let sample = E.sample_of relation ~seed:7L ~n:2000 in
      match
        Cat.build svc
          ~name:(file ^ "/" ^ spec)
          ~spec ~domain:(E.domain_of relation) ~sample
      with
      | Ok info ->
        Printf.printf "analyzed %-14s %s, %d cells -> %s\n" info.Cat.name info.Cat.spec
          info.Cat.cells
          (Catalog.Snapshot.path ~dir info.Cat.name)
      | Error msg -> failwith msg)
    [ ("n(20)", "kernel"); ("arap1", "hybrid") ];

  (* --- Restart: reopen the directory; only the snapshots survive --- *)
  let svc, skipped = Cat.open_dir dir in
  assert (skipped = []);
  Printf.printf "\nreopened %s with %d entries, cache cold\n\n" dir
    (List.length (Cat.names svc));

  (* --- Serve: one batch, grouped per entry, no data access --- *)
  let batch =
    [|
      ("n(20)/kernel", 400_000.0, 600_000.0);
      ("arap1/hybrid", 100_000.0, 300_000.0);
      ("n(20)/kernel", 0.0, 1_048_575.0);
      ("arap1/hybrid", 1_500_000.0, 1_600_000.0);
    |]
  in
  let answers = Cat.answer ~jobs:2 svc batch in
  Array.iteri
    (fun i (name, a, b) ->
      Printf.printf "%-14s [%9.0f, %9.0f] -> selectivity %.6f\n" name a b answers.(i))
    batch;

  (* --- Staleness: the relation changed; the entry says so --- *)
  Result.get_ok (Cat.record_inserts svc ~name:"n(20)/kernel" 12_000);
  let info = Option.get (Cat.info svc "n(20)/kernel") in
  Printf.printf "\nafter 12,000 inserts: %s stale=%b (budget %d)\n" info.Cat.name
    info.Cat.stale (Cat.config svc).Cat.rebuild_after_inserts;

  let relation = Data.Catalog.find ~seed:42L "n(20)" in
  let fresh = E.sample_of relation ~seed:8L ~n:2000 in
  (match Cat.rebuild svc ~name:"n(20)/kernel" ~sample:fresh with
  | Ok info -> Printf.printf "rebuilt %s: stale=%b\n" info.Cat.name info.Cat.stale
  | Error msg -> failwith msg);

  let s = Cat.cache_stats svc in
  Printf.printf "\ncache: %d hits, %d misses, %d evictions\n" s.Catalog.Lru.hits
    s.Catalog.Lru.misses s.Catalog.Lru.evictions
