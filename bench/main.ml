(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) plus timing micro-benchmarks and ablations.

   Usage:
     dune exec bench/main.exe            runs everything
     dune exec bench/main.exe -- list    lists targets
     dune exec bench/main.exe -- fig4 fig12   runs a subset
     dune exec bench/main.exe -- --jobs 4 fig8   parallel evaluation
     dune exec bench/main.exe -- --telemetry BENCH_telemetry.json fig12

   Seeds are fixed so every run reproduces the same numbers — for every
   --jobs value: queries are evaluated in parallel but reduced in query
   order, and with or without --telemetry.  EXPERIMENTS.md records the
   measured values against the paper's.

   Besides stdout, every run serializes its measured MREs and timings to
   BENCH_results.json (schema: target -> { wall_s, build_s, queries_per_s,
   mre_by_spec }) so perf and accuracy can be diffed across commits.
   --telemetry FILE additionally enables the telemetry subsystem and dumps
   build-phase timings, query-latency histograms, pool counters, and the
   span trace as JSON (schema: docs/TELEMETRY.md). *)

module Est = Selest.Estimator
module E = Workload.Experiment
module G = Workload.Generate
module M = Workload.Metrics
module K = Kernels.Kernel

let data_seed = 42L
let sample_seed = 7L
let query_seed = 9L

(* Parallelism degree for query evaluation, set from --jobs in main. *)
let jobs = ref (Parallel.Map.default_jobs ())

(* Telemetry output file, set from --telemetry in main.  Enabling
   telemetry times build phases, query latencies, and pool activity; MREs
   are unaffected (guarded by test_telemetry).  Schema: docs/TELEMETRY.md. *)
let telemetry_path : string option ref = ref None

(* ------------------------------------------------------------------ *)
(* Machine-readable results: BENCH_results.json                        *)
(* ------------------------------------------------------------------ *)

module Record = struct
  (* One row of the micro target: per-estimate cost of the scalar
     closure path against the compiled batch path (docs/PERFORMANCE.md
     explains how each number is measured). *)
  type micro_row = {
    scalar_ns : float;
    batch_ns : float;
    scalar_words : float;  (* minor-heap words per scalar estimate *)
    batch_words : float;  (* minor-heap words per batched estimate *)
    speedup : float;
  }

  type entry = {
    mutable wall_s : float;
    mutable build_s : float;  (* summed estimator-construction time *)
    mutable queries : int;  (* queries evaluated through mre_of *)
    mutable query_s : float;  (* summed query-evaluation time *)
    mutable mres : (string * float) list;  (* "<file>/<spec>" -> MRE, reversed *)
    mutable extras : (string * float) list;  (* extra numeric fields, reversed *)
    mutable micro : (string * micro_row) list;  (* op -> micro_row, reversed *)
    mutable groups : (string * (string * (string * float) list) list) list;
        (* nested numeric sections, reversed at both levels:
           section -> group -> fields, e.g.
           "per_shard" -> "0" -> [("p99_ms", ...)] (schema v5) *)
  }

  let table : (string, entry) Hashtbl.t = Hashtbl.create 32
  let order : string list ref = ref []
  let current : entry option ref = ref None

  let start target =
    let e =
      {
        wall_s = 0.0;
        build_s = 0.0;
        queries = 0;
        query_s = 0.0;
        mres = [];
        extras = [];
        micro = [];
        groups = [];
      }
    in
    Hashtbl.replace table target e;
    order := target :: !order;
    current := Some e

  let finish wall_s =
    match !current with
    | Some e ->
      e.wall_s <- wall_s;
      current := None
    | None -> ()

  (* Accumulate one estimator evaluation.  Re-evaluations of the same
     file/spec key (oracle searches revisit bin counts) keep the latest
     MRE; search order is deterministic, so so is the file. *)
  let note ~key ~mre ~build_s ~queries ~query_s =
    match !current with
    | None -> ()
    | Some e ->
      e.build_s <- e.build_s +. build_s;
      e.queries <- e.queries + queries;
      e.query_s <- e.query_s +. query_s;
      e.mres <- (key, mre) :: List.remove_assoc key e.mres

  (* Attribute query volume and time measured outside mre_of (the catalog
     target times whole batches, not per-estimator probes). *)
  let note_queries ~queries ~query_s =
    match !current with
    | None -> ()
    | Some e ->
      e.queries <- e.queries + queries;
      e.query_s <- e.query_s +. query_s

  (* Target-specific numeric fields, serialized next to queries_per_s
     (e.g. the catalog target's "cache_hit_rate"). *)
  let note_extra ~key value =
    match !current with
    | None -> ()
    | Some e -> e.extras <- (key, value) :: List.remove_assoc key e.extras

  (* One op's scalar-vs-batch measurement from the micro target. *)
  let note_micro ~op row =
    match !current with
    | None -> ()
    | Some e -> e.micro <- (op, row) :: List.remove_assoc op e.micro

  (* One group of a nested section, e.g. the serve target's per-shard
     latencies ("per_shard" -> shard id -> fields) or its open-loop rate
     sweep ("open_loop_by_rate" -> offered rate -> fields). *)
  let note_group ~section ~group fields =
    match !current with
    | None -> ()
    | Some e ->
      let groups = match List.assoc_opt section e.groups with Some g -> g | None -> [] in
      let groups = (group, fields) :: List.remove_assoc group groups in
      e.groups <- (section, groups) :: List.remove_assoc section e.groups

  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* MREs print with full precision so that a diff of two BENCH_results.json
     files shows bit-level accuracy drift; timings are noise past ms. *)
  let json_num (fmt : (float -> string, unit, string) format) x =
    if Float.is_nan x || Float.abs x = Float.infinity then "null" else Printf.sprintf fmt x

  let write path =
    let targets = List.rev !order in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"schema_version\": 7,\n";
    Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" !jobs);
    Buffer.add_string buf "  \"targets\": {\n";
    List.iteri
      (fun i target ->
        let e = Hashtbl.find table target in
        let qps = if e.query_s > 0.0 then float_of_int e.queries /. e.query_s else 0.0 in
        Buffer.add_string buf (Printf.sprintf "    \"%s\": {\n" (json_escape target));
        Buffer.add_string buf
          (Printf.sprintf "      \"wall_s\": %s,\n" (json_num "%.3f" e.wall_s));
        Buffer.add_string buf
          (Printf.sprintf "      \"build_s\": %s,\n" (json_num "%.3f" e.build_s));
        Buffer.add_string buf
          (Printf.sprintf "      \"queries_per_s\": %s,\n" (json_num "%.1f" qps));
        List.iter
          (fun (key, v) ->
            Buffer.add_string buf
              (Printf.sprintf "      \"%s\": %s,\n" (json_escape key) (json_num "%.6g" v)))
          (List.rev e.extras);
        if e.micro <> [] then begin
          Buffer.add_string buf "      \"micro_by_op\": {";
          List.iteri
            (fun j (op, r) ->
              if j > 0 then Buffer.add_string buf ",";
              Buffer.add_string buf
                (Printf.sprintf
                   "\n        \"%s\": { \"scalar_ns_per_estimate\": %s, \
                    \"batch_ns_per_estimate\": %s, \
                    \"scalar_minor_words_per_estimate\": %s, \
                    \"batch_minor_words_per_estimate\": %s, \"speedup\": %s }"
                   (json_escape op) (json_num "%.1f" r.scalar_ns)
                   (json_num "%.1f" r.batch_ns)
                   (json_num "%.2f" r.scalar_words)
                   (json_num "%.2f" r.batch_words)
                   (json_num "%.2f" r.speedup)))
            (List.rev e.micro);
          Buffer.add_string buf "\n      },\n"
        end;
        List.iter
          (fun (section, groups) ->
            Buffer.add_string buf (Printf.sprintf "      \"%s\": {" (json_escape section));
            List.iteri
              (fun j (group, fields) ->
                if j > 0 then Buffer.add_string buf ",";
                Buffer.add_string buf
                  (Printf.sprintf "\n        \"%s\": { " (json_escape group));
                List.iteri
                  (fun k (key, v) ->
                    if k > 0 then Buffer.add_string buf ", ";
                    Buffer.add_string buf
                      (Printf.sprintf "\"%s\": %s" (json_escape key) (json_num "%.6g" v)))
                  fields;
                Buffer.add_string buf " }")
              (List.rev groups);
            Buffer.add_string buf "\n      },\n")
          (List.rev e.groups);
        Buffer.add_string buf "      \"mre_by_spec\": {";
        List.iteri
          (fun j (key, mre) ->
            if j > 0 then Buffer.add_string buf ",";
            Buffer.add_string buf
              (Printf.sprintf "\n        \"%s\": %s" (json_escape key) (json_num "%.17g" mre)))
          (List.rev e.mres);
        if e.mres <> [] then Buffer.add_string buf "\n      ";
        Buffer.add_string buf "}\n";
        Buffer.add_string buf (if i = List.length targets - 1 then "    }\n" else "    },\n"))
      targets;
    Buffer.add_string buf "  }\n}\n";
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc
end

let dataset_cache : (string, Data.Dataset.t) Hashtbl.t = Hashtbl.create 16

let dataset name =
  match Hashtbl.find_opt dataset_cache name with
  | Some ds -> ds
  | None ->
    let ds = Data.Catalog.find ~seed:data_seed name in
    Hashtbl.replace dataset_cache name ds;
    ds

let headline_names = [ "u(20)"; "n(20)"; "e(20)"; "arap1"; "arap2"; "rr1(22)"; "rr2(22)"; "iw" ]

let sample ?(n = E.paper_sample_size) ds = E.sample_of ds ~seed:sample_seed ~n

let queries ?(fraction = 0.01) ?(count = G.paper_count) ds =
  G.size_separated ds ~seed:query_seed ~fraction ~count

let pct x = 100.0 *. x

(* The single choke point of every MRE the harness prints: builds the
   estimator (timed), evaluates the query file with --jobs domains (timed),
   and records the result for BENCH_results.json. *)
let mre_of ds ~sample:s ~queries:qs spec =
  let t0 = Unix.gettimeofday () in
  let estimate = E.estimate_fn_of_spec ds ~sample:s spec in
  let t1 = Unix.gettimeofday () in
  let summary = E.summary_of_fn ~jobs:!jobs ds ~queries:qs estimate in
  let t2 = Unix.gettimeofday () in
  Record.note
    ~key:(Data.Dataset.name ds ^ "/" ^ Est.spec_name spec)
    ~mre:summary.M.mre ~build_s:(t1 -. t0) ~queries:(Array.length qs) ~query_s:(t2 -. t1);
  summary.M.mre

let kernel_spec ?(kernel = K.Epanechnikov) ?(boundary = Kde.Estimator.Boundary_kernels) bandwidth
    =
  Est.Kernel { kernel; boundary; bandwidth }

let header title = Printf.printf "\n== %s ==\n%!" title

(* ------------------------------------------------------------------ *)
(* Table 2: properties of the data files                               *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "table2: data files (paper Table 2)";
  Printf.printf "%-8s %-4s %-9s %-9s %-8s\n" "file" "p" "records" "distinct" "max_dup";
  List.iter
    (fun name ->
      let ds = dataset name in
      Printf.printf "%-8s %-4d %-9d %-9d %-8d\n" name (Data.Dataset.bits ds)
        (Data.Dataset.size ds)
        (Data.Dataset.distinct_count ds)
        (Data.Dataset.max_duplicate_frequency ds))
    Data.Catalog.names

(* ------------------------------------------------------------------ *)
(* Figure 3: signed absolute error of 1% queries by position           *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "fig3: signed absolute error vs query position (u(20), kernel, no boundary treatment)";
  let ds = dataset "u(20)" in
  let s = sample ds in
  let qs = G.positional_sweep ds ~fraction:0.01 ~count:41 in
  let est =
    Est.build
      (kernel_spec ~boundary:Kde.Estimator.No_treatment Est.Normal_scale_bandwidth)
      ~domain:(E.domain_of ds) s
  in
  let errs = M.error_by_position ds (fun ~a ~b -> Est.selectivity est ~a ~b) qs in
  let domain = float_of_int (Data.Dataset.domain_size ds) in
  Printf.printf "%-10s %-12s\n" "pos%" "signed_error";
  Array.iter
    (fun (e : M.position_error) ->
      Printf.printf "%-10.1f %-12.1f\n" (100.0 *. e.M.position /. domain) e.M.signed_error)
    errs;
  let edge = Float.max (Float.abs errs.(0).M.signed_error) (Float.abs errs.(40).M.signed_error) in
  let center = Float.abs errs.(20).M.signed_error in
  Printf.printf "summary: |error| at edges %.0f records vs %.0f at center\n" edge center

(* ------------------------------------------------------------------ *)
(* Figures 4 & 5: MRE vs number of bins                                *)
(* ------------------------------------------------------------------ *)

let bin_grid = [ 2; 5; 10; 20; 40; 80; 160; 320; 640; 1280 ]

let mre_vs_bins ds =
  let s = sample ds in
  let qs = queries ds in
  List.map
    (fun k -> (k, mre_of ds ~sample:s ~queries:qs (Est.Equi_width (Est.Fixed_bins k))))
    bin_grid

let fig4 () =
  header "fig4: MRE vs number of bins (EWH, n(20), 1% queries) + pure sampling line";
  let ds = dataset "n(20)" in
  let s = sample ds in
  let qs = queries ds in
  let sampling = mre_of ds ~sample:s ~queries:qs Est.Sampling in
  Printf.printf "%-8s %-8s\n" "bins" "mre%";
  List.iter (fun (k, m) -> Printf.printf "%-8d %-8.2f\n" k (pct m)) (mre_vs_bins ds);
  Printf.printf "%-8s %-8.2f\n" "sampling" (pct sampling)

let fig5 () =
  header "fig5: MRE vs number of bins for domain cardinalities p=10,15,20 (EWH, normal data)";
  let files = [ "n(10)"; "n(15)"; "n(20)" ] in
  let results = List.map (fun name -> (name, mre_vs_bins (dataset name))) files in
  Printf.printf "%-8s" "bins";
  List.iter (fun name -> Printf.printf " %-9s" name) files;
  print_newline ();
  List.iteri
    (fun i k ->
      Printf.printf "%-8d" k;
      List.iter (fun (_, rows) -> Printf.printf " %-9.2f" (pct (snd (List.nth rows i)))) results;
      print_newline ())
    bin_grid;
  let best rows = List.fold_left (fun acc (_, m) -> Float.min acc m) Float.infinity rows in
  Printf.printf "best:   ";
  List.iter (fun (_, rows) -> Printf.printf " %-9.2f" (pct (best rows))) results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 6: MRE vs sample size                                        *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "fig6: MRE(n(20), 1%) vs sample size: sampling, EWH(NS), kernel(NS)";
  let ds = dataset "n(20)" in
  let qs = queries ds in
  let sizes = [ 200; 500; 1000; 2000; 5000; 10000 ] in
  Printf.printf "%-8s %-10s %-10s %-10s\n" "n" "sampling%" "ewh%" "kernel%";
  List.iter
    (fun n ->
      let s = sample ~n ds in
      let m_s = mre_of ds ~sample:s ~queries:qs Est.Sampling in
      let m_h = mre_of ds ~sample:s ~queries:qs (Est.Equi_width Est.Normal_scale_bins) in
      let m_k = mre_of ds ~sample:s ~queries:qs (kernel_spec Est.Normal_scale_bandwidth) in
      Printf.printf "%-8d %-10.2f %-10.2f %-10.2f\n" n (pct m_s) (pct m_h) (pct m_k))
    sizes

(* ------------------------------------------------------------------ *)
(* Figure 7: MRE of EWH for different query sizes                      *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "fig7: MRE of EWH(NS) for query sizes 1/2/5/10% across data files";
  Printf.printf "%-8s" "file";
  List.iter (fun f -> Printf.printf " %5.0f%%  " (100.0 *. f)) G.paper_fractions;
  print_newline ();
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      Printf.printf "%-8s" name;
      List.iter
        (fun fraction ->
          let qs = queries ~fraction ds in
          let m = mre_of ds ~sample:s ~queries:qs (Est.Equi_width Est.Normal_scale_bins) in
          Printf.printf " %-7.2f" (pct m))
        G.paper_fractions;
      print_newline ())
    headline_names

(* ------------------------------------------------------------------ *)
(* Figure 8: histogram shootout at observed-optimal bin counts         *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  header "fig8: EWH vs EDH vs MDH (observed-optimal bins) vs sampling vs uniform, 1% queries";
  Printf.printf "%-8s %-10s %-10s %-10s %-10s %-10s\n" "file" "ewh%" "edh%" "mdh%" "sampling%"
    "uniform%";
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let qs = queries ds in
      let best_over spec_of_bins =
        let objective k = mre_of ds ~sample:s ~queries:qs (spec_of_bins k) in
        snd (Bandwidth.Oracle.best_bin_count ~max_bins:1500 ~objective ())
      in
      let m_ewh = best_over (fun k -> Est.Equi_width (Est.Fixed_bins k)) in
      let m_edh = best_over (fun k -> Est.Equi_depth { bins = k }) in
      let m_mdh = best_over (fun k -> Est.Max_diff { bins = k }) in
      let m_s = mre_of ds ~sample:s ~queries:qs Est.Sampling in
      let m_u = mre_of ds ~sample:s ~queries:qs Est.Uniform_assumption in
      Printf.printf "%-8s %-10.2f %-10.2f %-10.2f %-10.2f %-10.2f\n" name (pct m_ewh) (pct m_edh)
        (pct m_mdh) (pct m_s) (pct m_u))
    headline_names

(* ------------------------------------------------------------------ *)
(* Figure 9: EWH bin-count selection: h-opt vs normal scale            *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  header "fig9: EWH bin selection: observed optimum (h-opt) vs normal-scale rule (h-NS)";
  Printf.printf "%-8s %-10s %-10s %-10s %-10s\n" "file" "opt_bins" "h-opt%" "NS_bins" "h-NS%";
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let qs = queries ds in
      let bins_opt, m_opt = E.oracle_bin_count ~max_bins:1500 ~jobs:!jobs ds ~sample:s ~queries:qs in
      let ns_bins = Bandwidth.Normal_scale.bin_count_of_samples ~domain:(E.domain_of ds) s in
      let m_ns = mre_of ds ~sample:s ~queries:qs (Est.Equi_width Est.Normal_scale_bins) in
      Printf.printf "%-8s %-10d %-10.2f %-10d %-10.2f\n" name bins_opt (pct m_opt) ns_bins
        (pct m_ns))
    headline_names

(* ------------------------------------------------------------------ *)
(* Figure 10: boundary treatments, relative error by position          *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "fig10: relative error of 1% queries vs position (u(20)): boundary policies";
  let ds = dataset "u(20)" in
  let s = sample ds in
  let qs = G.positional_sweep ds ~fraction:0.01 ~count:41 in
  let curve boundary =
    let est =
      Est.build (kernel_spec ~boundary Est.Normal_scale_bandwidth) ~domain:(E.domain_of ds) s
    in
    M.error_by_position ds (fun ~a ~b -> Est.selectivity est ~a ~b) qs
  in
  let none = curve Kde.Estimator.No_treatment in
  let refl = curve Kde.Estimator.Reflection in
  let bk = curve Kde.Estimator.Boundary_kernels in
  let domain = float_of_int (Data.Dataset.domain_size ds) in
  Printf.printf "%-8s %-10s %-12s %-10s\n" "pos%" "none" "reflection" "bnd-kernels";
  Array.iteri
    (fun i (e : M.position_error) ->
      Printf.printf "%-8.1f %-10.3f %-12.3f %-10.3f\n"
        (100.0 *. e.M.position /. domain)
        e.M.relative_error refl.(i).M.relative_error bk.(i).M.relative_error)
    none;
  let edge curve =
    0.5 *. (curve.(0).M.relative_error +. curve.(Array.length curve - 1).M.relative_error)
  in
  Printf.printf "edge means: none %.3f, reflection %.3f, boundary-kernels %.3f\n" (edge none)
    (edge refl) (edge bk)

(* ------------------------------------------------------------------ *)
(* Figure 11: bandwidth selection: h-opt vs h-NS vs h-DPI2             *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  header "fig11: kernel bandwidth selection (boundary kernels): h-opt vs h-NS vs h-DPI2";
  Printf.printf "%-8s %-10s %-10s %-10s\n" "file" "h-opt%" "h-NS%" "h-DPI2%";
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let qs = queries ds in
      let _, m_opt =
        E.oracle_bandwidth ~points:25 ~jobs:!jobs ~boundary:Kde.Estimator.Boundary_kernels ds
          ~sample:s ~queries:qs
      in
      let m_ns = mre_of ds ~sample:s ~queries:qs (kernel_spec Est.Normal_scale_bandwidth) in
      let m_dpi = mre_of ds ~sample:s ~queries:qs (kernel_spec (Est.Plug_in_bandwidth 2)) in
      Printf.printf "%-8s %-10.2f %-10.2f %-10.2f\n" name (pct m_opt) (pct m_ns) (pct m_dpi))
    headline_names

(* ------------------------------------------------------------------ *)
(* Figure 12: the final comparison                                     *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  header "fig12: most promising estimators, 1% queries: EWH(NS), Kernel(bk,DPI2), Hybrid, ASH(10)";
  Printf.printf "%-8s %-10s %-10s %-10s %-10s\n" "file" "ewh%" "kernel%" "hybrid%" "ash%";
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let qs = queries ds in
      let row spec = pct (mre_of ds ~sample:s ~queries:qs spec) in
      Printf.printf "%-8s %-10.2f %-10.2f %-10.2f %-10.2f\n" name
        (row (Est.Equi_width Est.Normal_scale_bins))
        (row Est.kernel_defaults) (row Est.hybrid_defaults)
        (row (Est.Ash { bins = Est.Normal_scale_bins; shifts = 10 })))
    headline_names

(* ------------------------------------------------------------------ *)
(* Ablations (extensions beyond the paper, flagged in DESIGN.md)       *)
(* ------------------------------------------------------------------ *)

let ablation_kernels () =
  header "ablation: kernel function choice (Section 3.2's 'K matters little')";
  let files = [ "n(20)"; "e(20)"; "arap1" ] in
  Printf.printf "%-14s" "kernel";
  List.iter (fun f -> Printf.printf " %-9s" f) files;
  print_newline ();
  List.iter
    (fun k ->
      Printf.printf "%-14s" (K.name k);
      List.iter
        (fun name ->
          let ds = dataset name in
          let s = sample ds in
          let qs = queries ds in
          let boundary =
            (* Boundary kernels pair with unit-support kernels only. *)
            if K.support_radius k = Some 1.0 then Kde.Estimator.Boundary_kernels
            else Kde.Estimator.Reflection
          in
          let m =
            mre_of ds ~sample:s ~queries:qs
              (kernel_spec ~kernel:k ~boundary Est.Normal_scale_bandwidth)
          in
          Printf.printf " %-9.2f" (pct m))
        files;
      print_newline ())
    K.all

let ablation_dpi () =
  header "ablation: DPI engine (paper's pilot iteration vs staged Wand-Jones) and iteration count";
  Printf.printf "%-8s %-8s %-11s %-11s\n" "file" "iters" "iterated%" "staged%";
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let qs = queries ds in
      List.iter
        (fun iters ->
          let m_iter =
            mre_of ds ~sample:s ~queries:qs (kernel_spec (Est.Plug_in_bandwidth iters))
          in
          let h_staged =
            Bandwidth.Plug_in.staged_bandwidth ~iterations:iters ~kernel:K.Epanechnikov s
          in
          let m_staged =
            mre_of ds ~sample:s ~queries:qs (kernel_spec (Est.Fixed_bandwidth h_staged))
          in
          Printf.printf "%-8s %-8d %-11.2f %-11.2f\n" name iters (pct m_iter) (pct m_staged))
        [ 1; 2; 3 ])
    [ "n(20)"; "arap1"; "rr1(22)" ]

let ablation_ash () =
  header "ablation: ASH shift count (paper fixes 10)";
  Printf.printf "%-8s" "file";
  let shift_counts = [ 1; 2; 5; 10; 20 ] in
  List.iter (fun m -> Printf.printf " m=%-6d" m) shift_counts;
  print_newline ();
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let qs = queries ds in
      Printf.printf "%-8s" name;
      List.iter
        (fun shifts ->
          let m =
            mre_of ds ~sample:s ~queries:qs (Est.Ash { bins = Est.Normal_scale_bins; shifts })
          in
          Printf.printf " %-8.2f" (pct m))
        shift_counts;
      print_newline ())
    [ "n(20)"; "e(20)"; "arap1" ]

let ablation_hybrid () =
  header "ablation: hybrid change-point budget and merge threshold";
  Printf.printf "%-8s %-6s %-8s %-8s\n" "file" "cps" "min_bin" "mre%";
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let qs = queries ds in
      List.iter
        (fun (cps, min_bin) ->
          let spec =
            Est.Hybrid_spec
              {
                bandwidth = Est.Plug_in_bandwidth 1;
                min_bin_count = min_bin;
                max_change_points = cps;
              }
          in
          Printf.printf "%-8s %-6d %-8d %-8.2f\n" name cps min_bin
            (pct (mre_of ds ~sample:s ~queries:qs spec)))
        [ (4, 100); (8, 100); (16, 100); (16, 50); (32, 50) ])
    [ "arap1"; "rr1(22)"; "n(20)" ]

let ablation_boundary () =
  header "ablation: boundary policy overall MRE (not just edge queries)";
  Printf.printf "%-8s %-8s %-12s %-12s\n" "file" "none%" "reflection%" "bnd-kern%";
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let qs = queries ds in
      let m b =
        pct (mre_of ds ~sample:s ~queries:qs (kernel_spec ~boundary:b Est.Normal_scale_bandwidth))
      in
      Printf.printf "%-8s %-8.2f %-12.2f %-12.2f\n" name
        (m Kde.Estimator.No_treatment) (m Kde.Estimator.Reflection)
        (m Kde.Estimator.Boundary_kernels))
    [ "u(20)"; "e(20)"; "n(20)" ]

(* ------------------------------------------------------------------ *)
(* Extensions: the paper's future-work items                           *)
(* ------------------------------------------------------------------ *)

let ext_multidim () =
  header "ext_multidim: 2-D rectangle queries (future work 1): sampling vs grid vs product kernel";
  let configs =
    [
      ("street", Multidim.Generate2d.street_grid ~name:"street" ~bits:16 ~count:50_000 ~seed:data_seed);
      ("rails", Multidim.Generate2d.rail_network ~name:"rails" ~bits:16 ~count:50_000 ~seed:data_seed);
      ("normal.8", Multidim.Generate2d.correlated_normal ~name:"normal.8" ~bits:16 ~count:50_000 ~rho:0.8 ~seed:data_seed);
    ]
  in
  Printf.printf "%-10s %-10s %-10s %-10s %-12s %-12s %-10s %-10s\n" "file" "sampling%" "grid16%"
    "grid64%" "kernel(NS)%" "kernel(DPI)%" "kernel*%" "indep%";
  List.iter
    (fun (name, ds) ->
      let rng = Prng.Xoshiro256pp.create sample_seed in
      let s = Multidim.Dataset2d.sample_without_replacement ds rng ~n:2000 in
      let rects = Multidim.Workload2d.size_separated ds ~seed:query_seed ~fraction:0.05 ~count:500 in
      let domain = (-0.5, 65535.5) in
      let eval f = pct (Multidim.Workload2d.evaluate ds f rects).Multidim.Workload2d.mre in
      let m_sampling =
        eval (fun (r : Multidim.Workload2d.rect) ->
            Multidim.Hist2d.sampling_selectivity s ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo
              ~y_hi:r.y_hi)
      in
      let grid bins =
        let h = Multidim.Hist2d.build ~domain_x:domain ~domain_y:domain ~bins_x:bins ~bins_y:bins s in
        eval (fun (r : Multidim.Workload2d.rect) ->
            Multidim.Hist2d.selectivity h ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi)
      in
      let hx_ns, hy_ns = Multidim.Kde2d.normal_scale_bandwidths ~kernel:K.Epanechnikov s in
      let kernel_at scale =
        let kde =
          Multidim.Kde2d.create ~domain_x:domain ~domain_y:domain ~hx:(hx_ns *. scale)
            ~hy:(hy_ns *. scale) s
        in
        eval (fun (r : Multidim.Workload2d.rect) ->
            Multidim.Kde2d.selectivity kde ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi)
      in
      let m_dpi =
        let hx, hy = Multidim.Kde2d.plug_in_bandwidths ~kernel:K.Epanechnikov s in
        let kde = Multidim.Kde2d.create ~domain_x:domain ~domain_y:domain ~hx ~hy s in
        eval (fun (r : Multidim.Workload2d.rect) ->
            Multidim.Kde2d.selectivity kde ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi)
      in
      (* "kernel*" searches a bandwidth-scale grid, the 2-D h-opt analog. *)
      let best =
        List.fold_left
          (fun acc scale -> Float.min acc (kernel_at scale))
          Float.infinity
          [ 1.0; 0.5; 0.25; 0.125; 0.0625; 0.03125 ]
      in
      let m_indep =
        (* Attribute-value independence: product of 1-D kernel marginals. *)
        let ex = Est.build Est.kernel_defaults ~domain:domain (Array.map fst s) in
        let ey = Est.build Est.kernel_defaults ~domain:domain (Array.map snd s) in
        eval (fun (r : Multidim.Workload2d.rect) ->
            Multidim.Independence.selectivity
              (fun ~a ~b -> Est.selectivity ex ~a ~b)
              (fun ~a ~b -> Est.selectivity ey ~a ~b)
              ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi)
      in
      Printf.printf "%-10s %-10.2f %-10.2f %-10.2f %-12.2f %-12.2f %-10.2f %-10.2f\n" name
        m_sampling (grid 16) (grid 64) (kernel_at 1.0) m_dpi best m_indep)
    configs

let ext_histograms () =
  header "ext_histograms: frequency polygon, V-optimal and serial vs the paper's histograms, 1% queries";
  Printf.printf "%-8s %-9s %-9s %-9s %-9s %-9s %-9s %-9s\n" "file" "ewh%" "fp%" "voh40%"
    "mdh40%" "serial40%" "wave40%" "kernel%";
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let qs = queries ds in
      let row spec = pct (mre_of ds ~sample:s ~queries:qs spec) in
      let serial = Histograms.Serial.build ~bins:40 s in
      let m_serial =
        pct (M.evaluate ds (fun ~a ~b -> Histograms.Serial.selectivity serial ~a ~b) qs).M.mre
      in
      let wavelet =
        Histograms.Wavelet.build ~granularity:256 ~domain:(E.domain_of ds) ~coefficients:40 s
      in
      let m_wavelet =
        pct
          (M.evaluate ds (fun ~a ~b -> Histograms.Histogram.selectivity wavelet ~a ~b) qs).M.mre
      in
      Printf.printf "%-8s %-9.2f %-9.2f %-9.2f %-9.2f %-9.2f %-9.2f %-9.2f\n" name
        (row (Est.Equi_width Est.Normal_scale_bins))
        (row (Est.Frequency_polygon Est.Normal_scale_bins))
        (row (Est.V_optimal { bins = 40 }))
        (row (Est.Max_diff { bins = 40 }))
        m_serial m_wavelet
        (row Est.kernel_defaults))
    headline_names

let ext_join () =
  header "ext_join: equi-join size |R JOIN S| from 2000-record samples (exact = 100%)";
  (* Pairs share the domain parameter p; rr1(12) x rr2(12) is the
     duplicate-heavy regime where even the sample join finds collisions. *)
  let pairs =
    [ ("n(20)", "u(20)"); ("e(20)", "u(20)"); ("n(20)", "e(20)"); ("rr1(12)", "rr2(12)") ]
  in
  Printf.printf "%-16s %-12s %-10s %-10s %-12s\n" "R x S" "exact" "ewh%" "kernel%" "sample-join%";
  List.iter
    (fun (rn, sn) ->
      let r = dataset rn and s = dataset sn in
      (* Join requires a shared domain; all chosen pairs share p except the
         self-join. *)
      let exact = float_of_int (Join.Equijoin.exact_size r s) in
      let domain = E.domain_of r in
      let sr = E.sample_of r ~seed:sample_seed ~n:2000 in
      let ss = E.sample_of s ~seed:(Int64.add sample_seed 1L) ~n:2000 in
      let density_pct spec =
        let er = Est.build spec ~domain sr and es = Est.build spec ~domain ss in
        match
          Join.Equijoin.estimate ~domain er es ~n_r:(Data.Dataset.size r)
            ~n_s:(Data.Dataset.size s)
        with
        | Some v -> 100.0 *. v /. exact
        | None -> Float.nan
      in
      let sample_pct =
        100.0
        *. Join.Equijoin.sample_join sr ss ~n_r:(Data.Dataset.size r)
             ~n_s:(Data.Dataset.size s)
        /. exact
      in
      Printf.printf "%-16s %-12.3e %-10.1f %-10.1f %-12.1f\n"
        (rn ^ " x " ^ sn)
        exact
        (density_pct (Est.Equi_width Est.Normal_scale_bins))
        (density_pct Est.kernel_defaults) sample_pct)
    pairs;
  (* Inequality predicates: the histogram-pair sweep over per-relation
     equi-depth histograms against the merge-count oracle.  The relative
     errors land in mre_by_spec so EXPERIMENTS.md's table is diffable. *)
  header "ext_join: inequality joins (eq/lt/le) via EDH pairs vs the exact merge-count oracle";
  Printf.printf "%-16s %-5s %-12s %-12s %-8s\n" "R x S" "pred" "exact" "estimated" "of_exact%";
  List.iter
    (fun (rn, sn) ->
      let r = dataset rn and s = dataset sn in
      let domain = E.domain_of r in
      let sr = E.sample_of r ~seed:sample_seed ~n:2000 in
      let ss = E.sample_of s ~seed:(Int64.add sample_seed 1L) ~n:2000 in
      let summary =
        Join.Ineqjoin.summarize ~buckets:64 ~domain ~n_r:(Data.Dataset.size r)
          ~n_s:(Data.Dataset.size s) sr ss
      in
      List.iter
        (fun pred ->
          let exact = float_of_int (Join.Ineqjoin.exact_inequality_size r s ~pred) in
          let est = Join.Ineqjoin.estimate summary ~pred in
          let mre = if exact > 0.0 then Float.abs (est -. exact) /. exact else Float.nan in
          Record.note
            ~key:
              (Printf.sprintf "%s x %s/%s" rn sn (Selest.Stored.join_pred_to_string pred))
            ~mre ~build_s:0.0 ~queries:0 ~query_s:0.0;
          Printf.printf "%-16s %-5s %-12.3e %-12.3e %-8.1f\n" (rn ^ " x " ^ sn)
            (Selest.Stored.join_pred_to_string pred)
            exact est
            (100.0 *. est /. exact))
        [ Selest.Stored.Join_eq; Selest.Stored.Join_lt; Selest.Stored.Join_le ])
    pairs

let ext_mise () =
  header "ext_mise: simulated MISE vs the AMISE theory (standard normal, Epanechnikov)";
  let model = Dists.Model.normal ~mu:0.0 ~sigma:1.0 in
  let domain = (-6.0, 6.0) in
  let roughness2 = 3.0 /. (8.0 *. 1.7724538509055159) in
  List.iter
    (fun n ->
      let h_star = Bandwidth.Amise.optimal_bandwidth ~kernel:K.Epanechnikov ~n ~roughness_d2:roughness2 in
      Printf.printf "n=%d  (AMISE-optimal h = %.3f)\n" n h_star;
      Printf.printf "  %-10s %-12s %-12s %-10s\n" "h/h*" "MISE" "AMISE" "ratio";
      List.iter
        (fun factor ->
          let h = h_star *. factor in
          let r = Bandwidth.Mise.kernel_mise ~replications:30 ~model ~domain ~n ~h ~seed:11L () in
          let predicted = Bandwidth.Amise.kernel_amise ~kernel:K.Epanechnikov ~n ~h ~roughness_d2:roughness2 in
          Printf.printf "  %-10.2f %-12.6f %-12.6f %-10.2f\n" factor r.Bandwidth.Mise.mise
            predicted (r.Bandwidth.Mise.mise /. predicted))
        [ 0.25; 0.5; 1.0; 2.0; 4.0 ])
    [ 200; 1000 ]

let ext_feedback () =
  header "ext_feedback: query feedback (future work 3): MRE before/after replaying a workload";
  Printf.printf "%-8s %-22s %-10s %-10s\n" "file" "base" "before%" "after%";
  List.iter
    (fun name ->
      let ds = dataset name in
      let s = sample ds in
      let domain = E.domain_of ds in
      let train = queries ~fraction:0.02 ~count:500 ds in
      let test = G.size_separated ds ~seed:31L ~fraction:0.02 ~count:500 in
      List.iter
        (fun (label, spec) ->
          let base_est = Est.build spec ~domain s in
          let base ~a ~b = Est.selectivity base_est ~a ~b in
          let adaptive = Feedback.Adaptive.create ~buckets:128 ~domain ~base () in
          let mre_now () =
            pct (M.evaluate ds (fun ~a ~b -> Feedback.Adaptive.selectivity adaptive ~a ~b) test).M.mre
          in
          let before = mre_now () in
          Array.iter
            (fun (q : Workload.Query.t) ->
              Feedback.Adaptive.observe adaptive ~a:q.Workload.Query.lo ~b:q.Workload.Query.hi
                ~actual:(Data.Dataset.exact_selectivity ds ~lo:q.Workload.Query.lo ~hi:q.Workload.Query.hi))
            train;
          let after = mre_now () in
          Printf.printf "%-8s %-22s %-10.2f %-10.2f\n" name label before after)
        [ ("uniform", Est.Uniform_assumption); ("ewh(NS)", Est.Equi_width Est.Normal_scale_bins) ])
    [ "e(20)"; "arap1" ]

(* ------------------------------------------------------------------ *)
(* Catalog: serving throughput of the persisted-summary service        *)
(* ------------------------------------------------------------------ *)

module Cat = Catalog.Service

(* Exercises the serving path end to end: ANALYZE all headline files into
   snapshot files through an undersized cache (evictions), reopen the
   directory cold (load-on-open recovery), serve 40 rounds of hot batches
   with --jobs domains, then score every entry's answers against exact
   selectivities.  BENCH_results.json gets the serving queries_per_s, the
   cache_hit_rate, and each entry's MRE under mre_by_spec. *)
let bench_catalog () =
  header "catalog: summary serving (build, reopen cold, hot batches; --jobs domains)";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "selest_bench_catalog" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let config = { Cat.default_config with Cat.capacity = 12 } in
  let entries =
    List.concat_map
      (fun file -> List.map (fun spec -> (file, spec)) [ "ewh"; "kernel" ])
      headline_names
  in
  (* Build phase: 16 entries through a 12-slot cache. *)
  let svc0, _ = Cat.open_dir ~config dir in
  let build_times =
    List.map
      (fun (file, spec) ->
        let ds = dataset file in
        let s = sample ds in
        let t0 = Unix.gettimeofday () in
        (match Cat.build svc0 ~name:(file ^ "/" ^ spec) ~spec ~domain:(E.domain_of ds)
                 ~sample:s
         with
        | Ok _ -> ()
        | Error msg -> failwith (Printf.sprintf "catalog build %s/%s: %s" file spec msg));
        (file ^ "/" ^ spec, Unix.gettimeofday () -. t0))
      entries
  in
  let build_stats = Cat.cache_stats svc0 in
  (* Reopen cold: index every snapshot from disk, cache empty. *)
  let svc, skipped = Cat.open_dir ~config dir in
  List.iter
    (fun (file, err) -> Printf.printf "skipped corrupt snapshot %s: %s\n" file err)
    skipped;
  (* Serving phase: 40 rounds over a 6-entry hot set, 50 queries each. *)
  let hot = List.filteri (fun i _ -> i < 6) entries in
  let query_cache = Hashtbl.create 8 in
  let queries_of file =
    match Hashtbl.find_opt query_cache file with
    | Some qs -> qs
    | None ->
      let qs = queries (dataset file) in
      Hashtbl.replace query_cache file qs;
      qs
  in
  let rounds = 40 and per_entry = 50 in
  let total = ref 0 in
  let t0 = Unix.gettimeofday () in
  for round = 0 to rounds - 1 do
    let batch =
      Array.concat
        (List.map
           (fun (file, spec) ->
             let qs = queries_of file in
             Array.init per_entry (fun i ->
                 let q = qs.(((round * per_entry) + i) mod Array.length qs) in
                 (file ^ "/" ^ spec, q.Workload.Query.lo, q.Workload.Query.hi)))
           hot)
    in
    total := !total + Array.length batch;
    ignore (Cat.answer ~jobs:!jobs svc batch)
  done;
  let serve_s = Unix.gettimeofday () -. t0 in
  Record.note_queries ~queries:!total ~query_s:serve_s;
  (* Accuracy: every entry's catalog answers vs exact selectivities. *)
  Printf.printf "%-16s %-10s %-10s\n" "entry" "mre%" "build_s";
  List.iter
    (fun ((file, spec), (key, build_s)) ->
      let ds = dataset file in
      let name = file ^ "/" ^ spec in
      let estimate ~a ~b =
        match Cat.answer_one svc ~name ~a ~b with
        | Ok v -> v
        | Error msg -> failwith (Printf.sprintf "catalog answer %s: %s" name msg)
      in
      let mre = (M.evaluate ds estimate (queries_of file)).M.mre in
      Record.note ~key ~mre ~build_s ~queries:0 ~query_s:0.0;
      Printf.printf "%-16s %-10.2f %-10.3f\n" name (pct mre) build_s)
    (List.combine entries build_times);
  let s = Cat.cache_stats svc in
  let accesses = s.Catalog.Lru.hits + s.Catalog.Lru.misses in
  let hit_rate =
    if accesses = 0 then 0.0 else float_of_int s.Catalog.Lru.hits /. float_of_int accesses
  in
  Record.note_extra ~key:"cache_hit_rate" hit_rate;
  Record.note_extra ~key:"cache_evictions"
    (float_of_int (s.Catalog.Lru.evictions + build_stats.Catalog.Lru.evictions));
  Printf.printf
    "serving: %d requests in %.2fs (%.0f queries/s, jobs %d)\n\
     cache: hit rate %.3f (%d hits, %d misses), evictions %d (+%d during build)\n"
    !total serve_s
    (float_of_int !total /. serve_s)
    !jobs hit_rate s.Catalog.Lru.hits s.Catalog.Lru.misses s.Catalog.Lru.evictions
    build_stats.Catalog.Lru.evictions

(* ------------------------------------------------------------------ *)
(* Serve: the network serving layer under closed-loop load             *)
(* ------------------------------------------------------------------ *)

(* Exercises the full network path, single-shard and sharded: ANALYZE
   three headline files into a temp catalog, then for shards = 1 and
   shards = 4 serve it on a Unix-domain socket, drive a 32-connection
   closed-loop load generator (single estimates, then batched frames),
   and drain.  The sharded pass adds per-shard p99 (classifying each
   request by its owner shard client-side) and an open-loop arrival-rate
   sweep with drop/late accounting.  Every served answer — both shard
   counts, both loop disciplines aside — is checked bit-identical to a
   direct Catalog.Service.answer call computed from the flat snapshot
   directory BEFORE the sharded pass migrates its layout.
   BENCH_results.json gets per-shard-count throughput and
   percentiles, a "per_shard" section, and an "open_loop_by_rate"
   section; the adaptive drift timeline that completes schema v5 is the
   separate --drift target below. *)
let bench_serve () =
  header "serve: network serving layer (wire protocol, shards, closed- and open-loop load)";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "selest_bench_serve" in
  (* A previous run may have left either layout behind. *)
  let rec clean d =
    if Sys.file_exists d then begin
      Array.iter
        (fun f ->
          let p = Filename.concat d f in
          if Sys.is_directory p then begin
            clean p;
            Sys.rmdir p
          end
          else Sys.remove p)
        (Sys.readdir d)
    end
  in
  clean dir;
  let svc, _ = Cat.open_dir dir in
  List.iter
    (fun (file, spec) ->
      let ds = dataset file in
      match
        Cat.build svc ~name:(file ^ "/" ^ spec) ~spec ~domain:(E.domain_of ds)
          ~sample:(sample ds)
      with
      | Ok _ -> ()
      | Error msg -> failwith (Printf.sprintf "serve build %s/%s: %s" file spec msg))
    (List.concat_map
       (fun file -> List.map (fun spec -> (file, spec)) [ "ewh"; "kernel" ])
       [ "u(20)"; "n(20)"; "e(20)" ]);
  let address =
    Server.Wire.Unix_socket (Filename.concat (Filename.get_temp_dir_name ()) "selest_bench_serve.sock")
  in
  let config = { Server.Engine.default_config with Server.Engine.jobs = !jobs } in
  let connections = 32 in
  (* One serving pass at a given shard count: closed-loop singles,
     closed-loop batch=16 frames, optionally classified per shard,
     optionally an open-loop rate sweep.  Returns the reports. *)
  let serve_pass ~shards ~classify ~open_rates requests_of_entries =
    let services, skipped = Cat.open_sharded ~shards dir in
    if skipped <> [] then
      failwith (Printf.sprintf "serve: %d snapshots skipped on open" (List.length skipped));
    let engine = Server.Engine.create ~config ~services address in
    let server_thread = Thread.create Server.Engine.serve engine in
    Fun.protect
      ~finally:(fun () ->
        Server.Engine.initiate_drain engine;
        Thread.join server_thread)
      (fun () ->
        let entries =
          match Server.Client.connect address with
          | Error e -> failwith ("serve: connect: " ^ Server.Client.error_to_string e)
          | Ok client ->
            let entries =
              match Server.Client.ls client with
              | Ok entries -> entries
              | Error e -> failwith ("serve: ls: " ^ Server.Client.error_to_string e)
            in
            Server.Client.close client;
            entries
        in
        let requests = requests_of_entries entries in
        let report = Server.Loadgen.run ?classify ~connections ~address requests in
        let batched = Server.Loadgen.run ~batch:16 ~connections ~address requests in
        let open_reports =
          List.map
            (fun rate ->
              (rate, Server.Loadgen.run_open_loop ~max_clients:64 ~rate ~duration_s:0.5
                       ~address requests))
            open_rates
        in
        (requests, report, batched, open_reports, Server.Engine.stats engine))
  in
  let requests_memo = ref None in
  let requests_of_entries entries =
    match !requests_memo with
    | Some reqs -> reqs
    | None ->
      let reqs = Server.Loadgen.synthetic_requests ~entries ~count:6400 ~seed:2024L in
      requests_memo := Some reqs;
      reqs
  in
  (* Pass 1: shards = 1, the pre-sharding engine path, on the flat v1
     layout. *)
  let requests, report1, batched1, _, stats1 =
    serve_pass ~shards:1 ~classify:None ~open_rates:[] requests_of_entries
  in
  (* The reference answers MUST come from the flat layout, before the
     sharded pass migrates the directory. *)
  let direct, _ = Cat.open_dir dir in
  let expected = Cat.answer direct requests in
  let check_identity label (r : Server.Loadgen.report) =
    let mismatches = ref 0 in
    Array.iteri
      (fun i served ->
        if Float.is_nan served then incr mismatches
        else if Int64.bits_of_float served <> Int64.bits_of_float expected.(i) then
          incr mismatches)
      r.Server.Loadgen.answers;
    if !mismatches > 0 then
      failwith
        (Printf.sprintf "serve (%s): %d served answers diverge from direct calls" label
           !mismatches)
  in
  check_identity "shards=1 singles" report1;
  check_identity "shards=1 batch=16" batched1;
  (* Pass 2: shards = 4 — layout migrates in place; requests classified
     by owner shard for per-shard percentiles; open-loop rate sweep. *)
  let shards = 4 in
  let classify i =
    let name, _, _ = requests.(i) in
    Printf.sprintf "shard-%d" (Cat.shard_of_name ~shards name)
  in
  let open_rates = [ 1000.0; 4000.0; 16000.0 ] in
  let _, report4, batched4, open_reports, stats4 =
    serve_pass ~shards ~classify:(Some classify) ~open_rates requests_of_entries
  in
  check_identity "shards=4 singles" report4;
  check_identity "shards=4 batch=16" batched4;
  (* Record: closed-loop throughput and percentiles at both shard
     counts, per-shard latency groups, the open-loop sweep. *)
  Record.note_queries ~queries:report1.Server.Loadgen.queries
    ~query_s:report1.Server.Loadgen.wall_s;
  Record.note_extra ~key:"connections" (float_of_int connections);
  Record.note_extra ~key:"shards" (float_of_int shards);
  Record.note_extra ~key:"p50_ms" report1.Server.Loadgen.p50_ms;
  Record.note_extra ~key:"p95_ms" report1.Server.Loadgen.p95_ms;
  Record.note_extra ~key:"p99_ms" report1.Server.Loadgen.p99_ms;
  Record.note_extra ~key:"batched_throughput_qps" batched1.Server.Loadgen.throughput_qps;
  Record.note_extra ~key:"sharded_throughput_qps" report4.Server.Loadgen.throughput_qps;
  Record.note_extra ~key:"sharded_p99_ms" report4.Server.Loadgen.p99_ms;
  Record.note_extra ~key:"sharded_batched_throughput_qps"
    batched4.Server.Loadgen.throughput_qps;
  Record.note_extra ~key:"errors_total"
    (float_of_int
       (List.fold_left
          (fun n (_, c) -> n + c)
          0
          (report1.Server.Loadgen.errors @ batched1.Server.Loadgen.errors
          @ report4.Server.Loadgen.errors @ batched4.Server.Loadgen.errors)));
  List.iter
    (fun (cls, n) -> Record.note_extra ~key:("errors_" ^ cls) (float_of_int n))
    report1.Server.Loadgen.errors;
  Record.note_extra ~key:"batches" (float_of_int stats1.Server.Engine.batches);
  Record.note_extra ~key:"batched_queries"
    (float_of_int stats1.Server.Engine.batched_queries);
  List.iter
    (fun (cls, g) ->
      (* "shard-2" -> group "2" *)
      let id = String.sub cls 6 (String.length cls - 6) in
      let answered =
        match int_of_string_opt id with
        | Some i when i < Array.length stats4.Server.Engine.per_shard ->
          float_of_int stats4.Server.Engine.per_shard.(i).Server.Engine.shard_answered
        | _ -> Float.nan
      in
      Record.note_group ~section:"per_shard" ~group:id
        [
          ("queries", float_of_int g.Server.Loadgen.g_n);
          ("answered", answered);
          ("p50_ms", g.Server.Loadgen.g_p50_ms);
          ("p99_ms", g.Server.Loadgen.g_p99_ms);
        ])
    report4.Server.Loadgen.groups;
  List.iter
    (fun (rate, (r : Server.Loadgen.open_report)) ->
      Record.note_group ~section:"open_loop_by_rate" ~group:(Printf.sprintf "%.0f" rate)
        [
          ("offered", float_of_int r.Server.Loadgen.offered);
          ("sent", float_of_int r.Server.Loadgen.sent);
          ("dropped", float_of_int r.Server.Loadgen.dropped);
          ("late", float_of_int r.Server.Loadgen.late);
          ("achieved_qps", r.Server.Loadgen.achieved_qps);
          ("p50_ms", r.Server.Loadgen.o_p50_ms);
          ("p99_ms", r.Server.Loadgen.o_p99_ms);
        ])
    open_reports;
  Printf.printf "shards=1 single estimates:\n%s\n" (Server.Loadgen.report_to_string report1);
  Printf.printf "shards=1 batch=16 frames:\n%s\n" (Server.Loadgen.report_to_string batched1);
  Printf.printf "shards=%d single estimates (per-shard classes):\n%s\n" shards
    (Server.Loadgen.report_to_string report4);
  Printf.printf "shards=%d batch=16 frames:\n%s\n" shards
    (Server.Loadgen.report_to_string batched4);
  List.iter
    (fun (rate, r) ->
      Printf.printf "shards=%d open loop @ %.0f/s:\n%s\n" shards rate
        (Server.Loadgen.open_report_to_string r))
    open_reports;
  Printf.printf
    "server: shards=1 %d requests, shards=%d %d requests (%d batches, %d queries merged), \
     all bit-identical to direct answers (jobs %d)\n"
    stats1.Server.Engine.requests shards stats4.Server.Engine.requests
    stats4.Server.Engine.batches stats4.Server.Engine.batched_queries !jobs;
  (* Pass 3: mixed kinds.  Add one rect entry (the street-grid joint
     file) and one join entry (n(20) x u(20)) to the now-sharded catalog
     through their owner shards, serve all three kinds at shards = 4,
     and gate every served answer bit-identical to the direct
     Catalog.Service call.  Per-kind MRE is scored against the exact
     oracles: Data.Dataset.exact_selectivity for range,
     Multidim.Dataset2d.exact_selectivity for rect, and
     Join.Ineqjoin.exact_inequality_size for join. *)
  header "serve: mixed-kind pass (range + rect + join entries, shards=4)";
  let services, skipped = Cat.open_sharded ~shards dir in
  if skipped <> [] then
    failwith (Printf.sprintf "serve mixed: %d snapshots skipped on open" (List.length skipped));
  let owner name = services.(Cat.shard_of_name ~shards name) in
  let street =
    Multidim.Generate2d.street_grid ~name:"street" ~bits:16 ~count:50_000 ~seed:data_seed
  in
  let rect_name = "street/hist2d" in
  let dom16 = (-0.5, 65535.5) in
  (match
     Cat.build_rect (owner rect_name) ~name:rect_name ~spec:"hist2d:64" ~domain_x:dom16
       ~domain_y:dom16
       ~points:
         (Multidim.Dataset2d.sample_without_replacement street
            (Prng.Xoshiro256pp.create sample_seed)
            ~n:2000)
   with
  | Ok _ -> ()
  | Error msg -> failwith ("serve mixed: build rect: " ^ msg));
  let join_r = dataset "n(20)" and join_s = dataset "u(20)" in
  let join_name = "n(20)_join_u(20)/edh" in
  (match
     Cat.build_join (owner join_name) ~name:join_name ~spec:"edh:64"
       ~domain:(E.domain_of join_r) ~n_r:(Data.Dataset.size join_r)
       ~n_s:(Data.Dataset.size join_s)
       ~sample_r:(E.sample_of join_r ~seed:sample_seed ~n:2000)
       ~sample_s:(E.sample_of join_s ~seed:(Int64.add sample_seed 1L) ~n:2000)
   with
  | Ok _ -> ()
  | Error msg -> failwith ("serve mixed: build join: " ^ msg));
  let engine = Server.Engine.create ~config ~services address in
  let server_thread = Thread.create Server.Engine.serve engine in
  let mixed, mreport =
    Fun.protect
      ~finally:(fun () ->
        Server.Engine.initiate_drain engine;
        Thread.join server_thread)
      (fun () ->
        let entries =
          match Server.Client.connect address with
          | Error e -> failwith ("serve mixed: connect: " ^ Server.Client.error_to_string e)
          | Ok client ->
            let entries =
              match Server.Client.ls client with
              | Ok entries -> entries
              | Error e -> failwith ("serve mixed: ls: " ^ Server.Client.error_to_string e)
            in
            Server.Client.close client;
            entries
        in
        let mixed = Server.Loadgen.synthetic_mixed_requests ~entries ~count:4800 ~seed:2025L in
        (mixed, Server.Loadgen.run_mixed ~connections ~address mixed))
  in
  (* Bit-identity per request against the same services the engine used. *)
  let direct_of req =
    match req with
    | Server.Loadgen.Mix_range (name, a, b) -> Cat.answer_one (owner name) ~name ~a ~b
    | Server.Loadgen.Mix_rect { m_entry; m_x_lo; m_x_hi; m_y_lo; m_y_hi } ->
      Cat.answer_rect (owner m_entry) ~name:m_entry ~x_lo:m_x_lo ~x_hi:m_x_hi ~y_lo:m_y_lo
        ~y_hi:m_y_hi
    | Server.Loadgen.Mix_join { m_entry; m_pred } ->
      Cat.answer_join (owner m_entry) ~name:m_entry ~pred:m_pred
  in
  let mismatches = ref 0 in
  Array.iteri
    (fun i served ->
      match direct_of mixed.(i) with
      | Error _ -> incr mismatches
      | Ok expected ->
        if Float.is_nan served || Int64.bits_of_float served <> Int64.bits_of_float expected
        then incr mismatches)
    mreport.Server.Loadgen.answers;
  if !mismatches > 0 then
    failwith
      (Printf.sprintf "serve mixed: %d served answers diverge from direct calls" !mismatches);
  (* Per-kind accuracy against the exact oracles.  Relative error needs
     truth > 0; zero-truth queries are skipped (and counted). *)
  let truth_of req =
    match req with
    | Server.Loadgen.Mix_range (name, a, b) ->
      let file = String.sub name 0 (String.index name '/') in
      Data.Dataset.exact_selectivity (dataset file) ~lo:a ~hi:b
    | Server.Loadgen.Mix_rect { m_x_lo; m_x_hi; m_y_lo; m_y_hi; _ } ->
      Multidim.Dataset2d.exact_selectivity street ~x_lo:m_x_lo ~x_hi:m_x_hi ~y_lo:m_y_lo
        ~y_hi:m_y_hi
    | Server.Loadgen.Mix_join { m_pred; _ } ->
      float_of_int (Join.Ineqjoin.exact_inequality_size join_r join_s ~pred:m_pred)
  in
  let mre_of_kind kind =
    let sum = ref 0.0 and n = ref 0 in
    Array.iteri
      (fun i served ->
        if Server.Loadgen.mixed_kind mixed.(i) = kind then begin
          let truth = truth_of mixed.(i) in
          if truth > 0.0 then begin
            sum := !sum +. (Float.abs (served -. truth) /. truth);
            incr n
          end
        end)
      mreport.Server.Loadgen.answers;
    if !n = 0 then Float.nan else !sum /. float_of_int !n
  in
  List.iter
    (fun (kind, g) ->
      Record.note_group ~section:"mixed_by_kind" ~group:kind
        [
          ("queries", float_of_int g.Server.Loadgen.g_n);
          ( "throughput_qps",
            float_of_int g.Server.Loadgen.g_n /. mreport.Server.Loadgen.wall_s );
          ("mre", mre_of_kind kind);
          ("p50_ms", g.Server.Loadgen.g_p50_ms);
          ("p99_ms", g.Server.Loadgen.g_p99_ms);
        ])
    mreport.Server.Loadgen.groups;
  Printf.printf "shards=%d mixed kinds (range/rect/join classes):\n%s\n" shards
    (Server.Loadgen.report_to_string mreport);
  List.iter
    (fun (kind, (g : Server.Loadgen.group)) ->
      Printf.printf "  %-6s n=%-5d mre=%.4f p50=%.3fms p99=%.3fms\n" kind
        g.Server.Loadgen.g_n (mre_of_kind kind) g.Server.Loadgen.g_p50_ms
        g.Server.Loadgen.g_p99_ms)
    mreport.Server.Loadgen.groups;
  Printf.printf
    "server: mixed pass %d requests over %d kinds, all bit-identical to direct calls\n"
    (Array.length mixed)
    (List.length mreport.Server.Loadgen.groups)

(* ------------------------------------------------------------------ *)
(* Drift: adaptive serving under a shifting distribution               *)
(* ------------------------------------------------------------------ *)

(* The adaptivity headline behind docs/ADAPTIVITY.md: one entry whose
   live distribution is uniform over a window sliding across the domain,
   served twice over the same window timeline — once frozen at its
   window-0 summary, once adaptive (insert + observe traffic over the
   wire, a low rebuild budget, per-window feedback refreshes).  Each
   window, the same fixed probe set is answered through a client and
   scored against the analytic window truth; the per-window MREs become
   the "drift_timeline" section of BENCH_results.json (schema v5).  The
   gate asserts the headline claim: the frozen summary degrades as the
   window leaves it behind, while the adaptive pass — with zero manual
   rebuilds — ends far below it and stays bounded throughout. *)
let bench_drift () =
  header "drift: adaptive serving under a shifting distribution (insert + observe feedback)";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "selest_bench_drift" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let lo, hi = (0.0, 100.0) in
  let span = hi -. lo in
  let win_w = 0.25 *. span in
  let windows = 8 in
  let entry = "drift/ewh" in
  let center w =
    lo +. (win_w /. 2.0) +. ((span -. win_w) *. float_of_int w /. float_of_int (windows - 1))
  in
  let bounds w =
    let c = center w in
    (c -. (win_w /. 2.0), c +. (win_w /. 2.0))
  in
  let rng = Prng.Splitmix64.create 0xd41f7L in
  let uniform_in wl wh = wl +. ((wh -. wl) *. Prng.Splitmix64.next_float rng) in
  let window_values w n =
    let wl, wh = bounds w in
    Array.init n (fun _ -> uniform_in wl wh)
  in
  (* Both passes are built from (and probed with) draws off one seeded
     stream, in a fixed call order, so the whole timeline is
     reproducible.  The build sample and probe set come first; only the
     adaptive pass draws further (its insert and observe payloads). *)
  let build_sample = window_values 0 2000 in
  let probes =
    Array.init 200 (fun _ ->
        let a = uniform_in lo hi and b = uniform_in lo hi in
        (Float.min a b, Float.max a b))
  in
  (* Truth of a probe under window [w]'s live distribution: the clamped
     overlap fraction (clamped because full-cover probes can land an ulp
     above 1, as in Loadgen.run_drift). *)
  let truth w (a, b) =
    let wl, wh = bounds w in
    Float.min 1.0 (Float.max 0.0 ((Float.min b wh -. Float.max a wl) /. win_w))
  in
  let svc, _ = Cat.open_dir dir in
  (match Cat.build svc ~name:entry ~spec:"ewh" ~domain:(lo, hi) ~sample:build_sample with
  | Ok _ -> ()
  | Error msg -> failwith ("drift build: " ^ msg));
  let address =
    Server.Wire.Unix_socket
      (Filename.concat (Filename.get_temp_dir_name ()) "selest_bench_drift.sock")
  in
  let engine_config = { Server.Engine.default_config with Server.Engine.jobs = !jobs } in
  let rebuild_after = 400 in
  let inserts_per_window = 600 and observes_per_window = 64 in
  let ok_or_die what = function
    | Ok v -> v
    | Error e ->
      failwith (Printf.sprintf "drift %s: %s" what (Server.Client.error_to_string e))
  in
  (* MRE in the Workload.Metrics sense, probed over the wire: relative
     error against the analytic truth, probes with an (almost) empty
     true result skipped. *)
  let mre_at client w =
    let rel_sum = ref 0.0 and evaluated = ref 0 in
    Array.iter
      (fun (a, b) ->
        let t = truth w (a, b) in
        if t > 1e-9 then begin
          let est = ok_or_die "estimate" (Server.Client.estimate client ~entry ~a ~b) in
          rel_sum := !rel_sum +. (Float.abs (est -. t) /. t);
          incr evaluated
        end)
      probes;
    !rel_sum /. float_of_int !evaluated
  in
  let run_pass ~adaptive =
    let services, skipped =
      Cat.open_sharded
        ~config:{ Cat.default_config with Cat.rebuild_after_inserts = rebuild_after }
        ~shards:1 dir
    in
    if skipped <> [] then
      failwith (Printf.sprintf "drift: %d snapshots skipped on open" (List.length skipped));
    if adaptive then
      Array.iter
        (Cat.enable_adaptive
           ~config:
             {
               Cat.default_adaptive_config with
               Cat.refresh_after_observes = observes_per_window;
             })
        services;
    let engine = Server.Engine.create ~config:engine_config ~services address in
    let server_thread = Thread.create Server.Engine.serve engine in
    Fun.protect
      ~finally:(fun () ->
        Server.Engine.initiate_drain engine;
        Thread.join server_thread)
      (fun () ->
        let client =
          match Server.Client.connect address with
          | Ok c -> c
          | Error e -> failwith ("drift connect: " ^ Server.Client.error_to_string e)
        in
        Fun.protect
          ~finally:(fun () -> Server.Client.close client)
          (fun () ->
            let timeline =
              Array.init windows (fun w ->
                  if adaptive && w > 0 then begin
                    (* The relation moved: stream a window of fresh values
                       (tripping the rebuild budget), wait for the
                       background swap to land, then feed back a window of
                       executed-query truths (tripping a feedback
                       refresh). *)
                    let swaps_before =
                      (Server.Engine.stats engine).Server.Engine.swaps
                    in
                    for _ = 1 to inserts_per_window / 100 do
                      ignore
                        (ok_or_die "insert"
                           (Server.Client.insert client ~entry (window_values w 100)))
                    done;
                    let deadline = Unix.gettimeofday () +. 10.0 in
                    while
                      (Server.Engine.stats engine).Server.Engine.swaps <= swaps_before
                      && Unix.gettimeofday () < deadline
                    do
                      Thread.delay 0.01
                    done;
                    if (Server.Engine.stats engine).Server.Engine.swaps <= swaps_before
                    then failwith "drift: rebuild swap did not land within 10s";
                    for _ = 1 to observes_per_window do
                      let a = uniform_in lo hi and b = uniform_in lo hi in
                      let a, b = (Float.min a b, Float.max a b) in
                      ignore
                        (ok_or_die "observe"
                           (Server.Client.observe client ~entry ~a ~b
                              ~actual:(truth w (a, b))))
                    done
                  end;
                  mre_at client w)
            in
            (timeline, Server.Engine.stats engine)))
  in
  (* Frozen pass first: the adaptive pass persists its swapped summaries
     into the same catalog directory. *)
  let static_tl, _ = run_pass ~adaptive:false in
  let adaptive_tl, astats = run_pass ~adaptive:true in
  Printf.printf "%-8s %-8s %12s %12s\n" "window" "center" "static mre" "adaptive mre";
  for w = 0 to windows - 1 do
    Printf.printf "%-8d %-8.1f %12.3f %12.3f\n" w (center w) static_tl.(w) adaptive_tl.(w);
    Record.note_group ~section:"drift_timeline" ~group:(string_of_int w)
      [
        ("center", center w);
        ("static_mre", static_tl.(w));
        ("adaptive_mre", adaptive_tl.(w));
      ]
  done;
  let maxf a = Array.fold_left Float.max Float.neg_infinity a in
  Record.note_extra ~key:"windows" (float_of_int windows);
  Record.note_extra ~key:"probes" (float_of_int (Array.length probes));
  Record.note_extra ~key:"rebuild_after_inserts" (float_of_int rebuild_after);
  Record.note_extra ~key:"swaps" (float_of_int astats.Server.Engine.swaps);
  Record.note_extra ~key:"static_final_mre" static_tl.(windows - 1);
  Record.note_extra ~key:"adaptive_final_mre" adaptive_tl.(windows - 1);
  Record.note_extra ~key:"static_max_mre" (maxf static_tl);
  Record.note_extra ~key:"adaptive_max_mre" (maxf adaptive_tl);
  Printf.printf
    "adaptive: %d summary swaps, zero manual rebuilds; final mre %.3f vs %.3f frozen\n"
    astats.Server.Engine.swaps
    adaptive_tl.(windows - 1)
    static_tl.(windows - 1);
  (* Gate: the headline must actually show.  The frozen summary's error
     grows as the window slides away; the adaptive pass ends well below
     it and never exceeds a bounded ceiling.  Thresholds sit far from
     the measured values (see docs/ADAPTIVITY.md) — this catches the
     adaptivity loop silently dying, not measurement noise. *)
  if maxf static_tl <= 2.0 *. static_tl.(0) then
    failwith "drift gate: frozen-summary MRE never degraded — drift model broken?";
  if adaptive_tl.(windows - 1) >= static_tl.(windows - 1) then
    failwith "drift gate: adaptive MRE no better than frozen at the final window";
  if maxf adaptive_tl >= maxf static_tl then
    failwith "drift gate: adaptive MRE peak not below the frozen peak"

(* ------------------------------------------------------------------ *)
(* Timing: bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

let timing () =
  header "timing: estimator build and probe costs (bechamel, monotonic clock)";
  let ds = dataset "n(20)" in
  let s = sample ds in
  let domain = E.domain_of ds in
  let h = Bandwidth.Normal_scale.bandwidth_of_samples ~kernel:K.Epanechnikov s in
  let kde = Kde.Estimator.create ~domain ~h s in
  let ewh = Histograms.Builders.equi_width ~domain ~bins:87 s in
  let hybrid = Hybrid.Partitioned.build ~domain s in
  let qs = queries ~count:64 ds in
  let probe_idx = ref 0 in
  let next_query () =
    let q = qs.(!probe_idx land 63) in
    incr probe_idx;
    q
  in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"kernel-probe-indexed"
        (Staged.stage (fun () ->
             let q = next_query () in
             Kde.Estimator.selectivity kde ~a:q.Workload.Query.lo ~b:q.Workload.Query.hi));
      Test.make ~name:"kernel-probe-scan"
        (Staged.stage (fun () ->
             let q = next_query () in
             Kde.Estimator.selectivity_scan kde ~a:q.Workload.Query.lo ~b:q.Workload.Query.hi));
      Test.make ~name:"histogram-probe"
        (Staged.stage (fun () ->
             let q = next_query () in
             Histograms.Histogram.selectivity ewh ~a:q.Workload.Query.lo ~b:q.Workload.Query.hi));
      Test.make ~name:"hybrid-probe"
        (Staged.stage (fun () ->
             let q = next_query () in
             Hybrid.Partitioned.selectivity hybrid ~a:q.Workload.Query.lo ~b:q.Workload.Query.hi));
      Test.make ~name:"ewh-build"
        (Staged.stage (fun () -> ignore (Histograms.Builders.equi_width ~domain ~bins:87 s)));
      Test.make ~name:"kernel-build-NS"
        (Staged.stage (fun () ->
             let h = Bandwidth.Normal_scale.bandwidth_of_samples ~kernel:K.Epanechnikov s in
             ignore (Kde.Estimator.create ~domain ~h s)));
      Test.make ~name:"bandwidth-DPI2"
        (Staged.stage (fun () ->
             ignore (Bandwidth.Plug_in.bandwidth ~iterations:2 ~kernel:K.Epanechnikov s)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false () in
  let instance = Toolkit.Instance.monotonic_clock in
  let results_raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"selest" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance results_raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] -> Printf.printf "%-32s %12.1f ns/op\n" name ns
      | Some _ | None -> Printf.printf "%-32s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Micro: scalar vs batch per-estimate cost, with the regression gate   *)
(* ------------------------------------------------------------------ *)

module Batch = Selest.Batch

(* Set when the micro gate fails; main still writes BENCH_results.json
   (so the regression is diffable) and then exits non-zero. *)
let micro_gate_failed = ref false

(* Nanoseconds per estimate of [f], which evaluates [ops] estimates per
   call.  Repetitions double until the timed region exceeds ~80ms, so
   cheap ops get enough reps to dominate clock granularity. *)
let ns_per_op f ops =
  f ();
  (* warm: faults in lazy tables and brings the arrays into cache *)
  let reps = ref 1 and elapsed = ref 0.0 in
  let continue = ref true in
  while !continue do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to !reps do
      f ()
    done;
    elapsed := Unix.gettimeofday () -. t0;
    if !elapsed >= 0.08 || !reps >= 1 lsl 22 then continue := false else reps := !reps * 2
  done;
  !elapsed *. 1e9 /. float_of_int (!reps * ops)

(* Minor-heap words per estimate: exact, not sampled — Gc.minor_words
   counts every word ever allocated on the minor heap. *)
let words_per_op f ops =
  f ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 10 do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int (10 * ops)

(* The per-estimate scalar-vs-batch comparison behind docs/PERFORMANCE.md:
   each estimator family's closure path against its compiled batch plan
   over the same query arrays, plus the stored-summary and catalog
   serving paths.  Writes micro_by_op to BENCH_results.json (schema v5)
   and enforces the regression gate:

   - every batch path must allocate nothing per estimate, and
   - per-op speedup floors must hold.  The floors sit well below the
     speedups measured on the reference machine (docs/PERFORMANCE.md) —
     the gate catches regressions of the batch path on noisy hardware,
     it does not re-measure the headline each run.  The headline floor
     is 5x on the LUT-backed Gaussian kernel, the op the batch path's
     ~10x target was set for: its scalar baseline pays a transcendental
     per sample, which the shared CDF lookup table replaces.  Ops whose
     cost is arithmetic shared bit-for-bit by both paths (ASH, the
     Epanechnikov kernel, the hybrid) cannot speed up by more than their
     per-call overhead and carry no floor; their measured speedups are
     still recorded and reported. *)
let micro_headline_op = "Kernel(gaussian,none,NS)"

let micro_floors =
  [
    (micro_headline_op, 5.0);
    ("Sampling", 1.5);
    ("EWH(NS)", 1.1);
    ("stored", 1.0);  (* probe arithmetic is shared: batch must never lose *)
    ("catalog.answer", 1.3);
  ]

let micro () =
  header "micro: per-estimate cost, scalar closure path vs compiled batch path";
  let ds = dataset "u(20)" in
  let s = sample ds in
  let domain = E.domain_of ds in
  let qs = queries ds in
  let n = Array.length qs in
  let qa = Array.make n 0.0 and qb = Array.make n 0.0 and out = Array.make n 0.0 in
  Array.iteri
    (fun i q ->
      qa.(i) <- q.Workload.Query.lo;
      qb.(i) <- q.Workload.Query.hi)
    qs;
  Printf.printf "%-24s %12s %12s %9s %12s %12s\n" "op" "scalar ns" "batch ns" "speedup"
    "scalar w/est" "batch w/est";
  let rows = ref [] in
  let row op scalar batch =
    let scalar_ns = ns_per_op scalar n and batch_ns = ns_per_op batch n in
    let scalar_words = words_per_op scalar n and batch_words = words_per_op batch n in
    let speedup = scalar_ns /. batch_ns in
    Printf.printf "%-24s %12.1f %12.1f %8.2fx %12.2f %12.2f\n%!" op scalar_ns batch_ns
      speedup scalar_words batch_words;
    Record.note_micro ~op
      { Record.scalar_ns; batch_ns; scalar_words; batch_words; speedup };
    rows := (op, speedup, batch_words) :: !rows
  in
  let specs =
    Est.
      [
        Sampling;
        Equi_width Normal_scale_bins;
        Equi_depth { bins = 25 };
        Ash { bins = Normal_scale_bins; shifts = 10 };
        Frequency_polygon (Fixed_bins 25);
        kernel_defaults;
        Kernel
          {
            kernel = Kernels.Kernel.Gaussian;
            boundary = Kde.Estimator.No_treatment;
            bandwidth = Normal_scale_bandwidth;
          };
        hybrid_defaults;
      ]
  in
  List.iter
    (fun spec ->
      let est = Est.build spec ~domain s in
      let plan = Batch.compile est in
      row (Est.spec_name spec)
        (fun () ->
          for i = 0 to n - 1 do
            out.(i) <- Est.selectivity est ~a:qa.(i) ~b:qb.(i)
          done)
        (fun () -> Batch.estimate_into plan ~n ~a:qa ~b:qb ~out))
    specs;
  (* The persisted-summary probe: what the catalog actually evaluates. *)
  let stored =
    Selest.Stored.of_estimator ~domain (Est.build Est.kernel_defaults ~domain s)
  in
  row "stored"
    (fun () ->
      for i = 0 to n - 1 do
        out.(i) <- Selest.Stored.selectivity stored ~a:qa.(i) ~b:qb.(i)
      done)
    (fun () -> Selest.Stored.selectivity_into stored ~pos:0 ~len:n ~a:qa ~b:qb ~out);
  (* The serving layer end to end: the former grouped-Hashtbl answer path
     against answer_into over the same run-structured batch. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "selest_bench_micro" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let svc, _ = Cat.open_dir dir in
  List.iter
    (fun spec ->
      match Cat.build svc ~name:("u(20)/" ^ spec) ~spec ~domain ~sample:s with
      | Ok _ -> ()
      | Error msg -> failwith (Printf.sprintf "micro catalog build %s: %s" spec msg))
    [ "ewh"; "kernel" ];
  let names =
    Array.init n (fun i -> if i < n / 2 then "u(20)/ewh" else "u(20)/kernel")
  in
  let requests = Array.init n (fun i -> (names.(i), qa.(i), qb.(i))) in
  row "catalog.answer"
    (fun () -> ignore (Cat.answer ~jobs:1 svc requests))
    (fun () -> Cat.answer_into svc ~n ~names ~a:qa ~b:qb ~out);
  (* The read side of the wire: a fresh request value per frame against
     the interning scratch decoder the serving engine reads with.  One
     entry name repeats across frames, as it does on a real connection,
     so the scratch path must decode with zero allocation. *)
  let payloads =
    Array.init n (fun i ->
        Server.Wire.encode_request
          (Server.Wire.Estimate { entry = "u(20)/ewh"; a = qa.(i); b = qb.(i); spec = "" }))
  in
  let bufs = Array.map Bytes.of_string payloads in
  let lens = Array.map Bytes.length bufs in
  let sc = Server.Wire.create_scratch () in
  row "wire.decode"
    (fun () ->
      for i = 0 to n - 1 do
        match Server.Wire.decode_request payloads.(i) with
        | Ok _ -> ()
        | Error m -> failwith ("micro wire.decode: " ^ m)
      done)
    (fun () ->
      for i = 0 to n - 1 do
        match Server.Wire.decode_request_scratch bufs.(i) ~len:lens.(i) sc with
        | Ok Server.Wire.Fast_estimate -> out.(i) <- sc.Server.Wire.s_q.Server.Wire.sa
        | Ok (Server.Wire.Decoded _) | Error _ -> failwith "micro wire.decode: scratch path"
      done);
  (* Gate: batch paths allocation-free, per-op speedup floors hold. *)
  let rows = List.rev !rows in
  let geomean =
    exp (List.fold_left (fun acc (_, sp, _) -> acc +. log sp) 0.0 rows
         /. float_of_int (List.length rows))
  in
  Record.note_extra ~key:"speedup_geomean" geomean;
  Record.note_extra ~key:"queries_per_batch" (float_of_int n);
  (match List.find_opt (fun (op, _, _) -> op = micro_headline_op) rows with
  | Some (_, sp, _) ->
    Record.note_extra ~key:"headline_speedup" sp;
    Printf.printf "headline (%s): %.2fx; geomean over %d ops: %.2fx\n" micro_headline_op sp
      (List.length rows) geomean
  | None ->
    micro_gate_failed := true;
    Printf.printf "GATE FAIL: headline op %s was not measured\n" micro_headline_op);
  List.iter
    (fun (op, _, w) ->
      if w > 0.0 then begin
        micro_gate_failed := true;
        Printf.printf "GATE FAIL: %s allocates %.2f minor words per batched estimate\n" op w
      end)
    rows;
  List.iter
    (fun (op, floor) ->
      match List.find_opt (fun (o, _, _) -> o = op) rows with
      | None ->
        micro_gate_failed := true;
        Printf.printf "GATE FAIL: floor op %s was not measured\n" op
      | Some (_, sp, _) ->
        if sp < floor then begin
          micro_gate_failed := true;
          Printf.printf "GATE FAIL: %s speedup %.2fx below its %.1fx floor\n" op sp floor
        end)
    micro_floors;
  if not !micro_gate_failed then
    Printf.printf "gate: batch paths allocation-free, all per-op speedup floors hold\n"

(* ------------------------------------------------------------------ *)
(* Advise: workload-grid crossover matrix and chosen-spec regret gate   *)
(* ------------------------------------------------------------------ *)

(* Set when the advise gate fails; like the micro gate, the failing
   numbers land in BENCH_results.json before the non-zero exit. *)
let advise_gate_failed = ref false

(* The default policy trades up to its 10% tie margin of accuracy for
   cost, so the chosen spec's regret against the sweep's best single
   spec is at most 1.10 by construction; the ceiling sits above that to
   catch scoring/normalization drift, not measurement noise. *)
let advise_regret_ceiling = 1.25

let advise_datasets = [ "n(20)"; "e(20)"; "arap1" ]

(* Four selectivity bands spanning the paper's 0.1%-50% range, crossed
   with the default data-skew and uniform placement profiles. *)
let advise_targets = [ 0.001; 0.01; 0.1; 0.4 ]

let bench_advise () =
  header "advise: targeted-selectivity sweep, crossover matrix, regret gate";
  List.iter
    (fun file ->
      let ds = dataset file in
      let s = sample ds in
      let sweep =
        Advisor.Sweep.run ~jobs:!jobs ~targets:advise_targets ds ~seed:query_seed
          ~sample:s
      in
      let r =
        match Advisor.Recommend.recommend sweep with
        | Ok r -> r
        | Error msg -> failwith (Printf.sprintf "advise %s: %s" file msg)
      in
      let open Advisor in
      let cells = List.length sweep.Sweep.s_workloads in
      let grid_queries = cells * sweep.Sweep.s_count in
      (* mre_by_spec rows (one per swept spec), with the grid's query
         volume and each spec's build time attributed to this target. *)
      List.iter2
        (fun (c : Sweep.cost) (p : Pareto.point) ->
          Record.note ~key:(file ^ "/" ^ c.Sweep.c_spec) ~mre:p.Pareto.p_mre
            ~build_s:c.Sweep.c_build_s ~queries:grid_queries
            ~query_s:(c.Sweep.c_ns_per_estimate *. float_of_int grid_queries *. 1e-9))
        sweep.Sweep.s_costs
        (Pareto.points_of_sweep sweep);
      (* The crossover matrix, one group per grid cell holding every
         spec's MRE there; the winner is the argmin, so the printed
         column below is recomputable from the serialized fields. *)
      List.iter
        (fun (b : Pareto.band) ->
          Record.note_group ~section:"crossover"
            ~group:
              (Printf.sprintf "%s|%s|%g" file
                 (Workloads.placement_name b.Pareto.b_placement)
                 b.Pareto.b_target)
            b.Pareto.b_mres)
        r.Recommend.r_crossover;
      Printf.printf "%-8s %-10s %-9s %-14s %-8s\n" "dataset" "placement" "target%"
        "winner" "mre%";
      List.iter
        (fun (b : Pareto.band) ->
          Printf.printf "%-8s %-10s %-9.3f %-14s %-8.2f\n" file
            (Workloads.placement_name b.Pareto.b_placement)
            (100. *. b.Pareto.b_target) b.Pareto.b_winner
            (100. *. b.Pareto.b_winner_mre))
        r.Recommend.r_crossover;
      List.iter
        (fun (f : Workloads.failure) ->
          Printf.printf "%s: target %.3f%% (%s) unachievable: %s\n" file
            (100. *. f.Workloads.f_target)
            (Workloads.placement_name f.Workloads.f_placement)
            f.Workloads.f_reason)
        sweep.Sweep.s_skipped;
      Record.note_extra ~key:(Printf.sprintf "advisor_chosen_mre_%s" file)
        r.Recommend.r_mean_mre;
      Record.note_extra ~key:(Printf.sprintf "advisor_best_mre_%s" file)
        r.Recommend.r_best_mre;
      Record.note_extra ~key:(Printf.sprintf "advisor_regret_%s" file)
        r.Recommend.r_regret;
      Record.note_extra ~key:(Printf.sprintf "advisor_oracle_regret_%s" file)
        r.Recommend.r_oracle_regret;
      Printf.printf
        "%s: chose %s  mean mre %.2f%%  regret %.3fx vs best spec, %.3fx vs per-cell \
         oracle\n%!"
        file r.Recommend.r_spec
        (100. *. r.Recommend.r_mean_mre)
        r.Recommend.r_regret r.Recommend.r_oracle_regret;
      if r.Recommend.r_regret > advise_regret_ceiling then begin
        advise_gate_failed := true;
        Printf.printf "GATE FAIL: %s chosen-spec regret %.3fx above the %.2fx ceiling\n"
          file r.Recommend.r_regret advise_regret_ceiling
      end)
    advise_datasets;
  if not !advise_gate_failed then
    Printf.printf
      "gate: chosen-spec regret within %.2fx of the sweep's best on all %d datasets\n"
      advise_regret_ceiling
      (List.length advise_datasets)

(* ------------------------------------------------------------------ *)
(* Registry and main                                                   *)
(* ------------------------------------------------------------------ *)

let targets =
  [
    ("table2", table2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("ablation_kernels", ablation_kernels);
    ("ablation_dpi", ablation_dpi);
    ("ablation_ash", ablation_ash);
    ("ablation_hybrid", ablation_hybrid);
    ("ablation_boundary", ablation_boundary);
    ("ext_multidim", ext_multidim);
    ("ext_histograms", ext_histograms);
    ("ext_feedback", ext_feedback);
    ("ext_join", ext_join);
    ("ext_mise", ext_mise);
    ("catalog", bench_catalog);
    ("advise", bench_advise);
    ("serve", bench_serve);
    ("drift", bench_drift);
    ("timing", timing);
    ("micro", micro);
  ]

let results_path = "BENCH_results.json"

let run_target (name, run) =
  Record.start name;
  let t = Unix.gettimeofday () in
  run ();
  let wall = Unix.gettimeofday () -. t in
  Record.finish wall;
  Printf.printf "(%.1fs)\n%!" wall

let usage () =
  prerr_endline
    "usage: dune exec bench/main.exe -- [--jobs N] [--telemetry FILE] [list | <target>...]";
  prerr_endline "       (targets: dune exec bench/main.exe -- list)";
  prerr_endline "       --telemetry FILE  record build/query/pool telemetry to FILE (JSON)";
  exit 1

(* Strip --jobs N / --jobs=N / -j N / --telemetry FILE / --telemetry=FILE
   out of argv; everything else is a target name. *)
let parse_args argv =
  let starts_with prefix s =
    String.length s > String.length prefix && String.sub s 0 (String.length prefix) = prefix
  in
  let rec go acc = function
    | [] -> List.rev acc
    | ("--jobs" | "-j") :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
        jobs := j;
        go acc rest
      | _ -> usage ())
    | arg :: rest when starts_with "--jobs=" arg -> (
      match int_of_string_opt (String.sub arg 7 (String.length arg - 7)) with
      | Some j when j >= 1 ->
        jobs := j;
        go acc rest
      | _ -> usage ())
    | "--catalog" :: rest ->
      (* Alias for the catalog serving target. *)
      go ("catalog" :: acc) rest
    | "--serve" :: rest ->
      (* Alias for the network serving target. *)
      go ("serve" :: acc) rest
    | "--micro" :: rest ->
      (* Alias for the scalar-vs-batch microbenchmark target. *)
      go ("micro" :: acc) rest
    | "--advise" :: rest ->
      (* Alias for the advisor crossover-and-regret target. *)
      go ("advise" :: acc) rest
    | "--drift" :: rest ->
      (* Alias for the adaptive-serving drift-timeline target. *)
      go ("drift" :: acc) rest
    | "--telemetry" :: path :: rest when path <> "" ->
      telemetry_path := Some path;
      go acc rest
    | arg :: rest when starts_with "--telemetry=" arg ->
      telemetry_path := Some (String.sub arg 12 (String.length arg - 12));
      go acc rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] (List.tl (Array.to_list argv))

let write_telemetry () =
  match !telemetry_path with
  | None -> ()
  | Some path ->
    Telemetry.Export.write_file ~path Telemetry.Export.Json;
    Printf.printf "telemetry: %s\n" path

(* Results are written and telemetry flushed before the micro gate turns
   a regression into a non-zero exit: the failing numbers must land in
   BENCH_results.json so the regression is diffable. *)
let finish_run () =
  Record.write results_path;
  Printf.printf "results: %s\n" results_path;
  write_telemetry ();
  if !micro_gate_failed then begin
    prerr_endline "micro gate failed (see GATE FAIL lines above)";
    exit 1
  end;
  if !advise_gate_failed then begin
    prerr_endline "advise gate failed (see GATE FAIL lines above)";
    exit 1
  end

let () =
  let args = parse_args Sys.argv in
  if !telemetry_path <> None then Telemetry.Control.enable ();
  match args with
  | [ "list" ] -> List.iter (fun (name, _) -> print_endline name) targets
  | [] ->
    let t0 = Unix.gettimeofday () in
    List.iter run_target targets;
    Printf.printf "\ntotal: %.1fs (jobs: %d)\n" (Unix.gettimeofday () -. t0) !jobs;
    finish_run ()
  | names ->
    let selected =
      List.map
        (fun name ->
          match List.assoc_opt name targets with
          | Some run -> (name, run)
          | None ->
            Printf.eprintf "unknown target %s (try: dune exec bench/main.exe -- list)\n" name;
            exit 1)
        names
    in
    List.iter run_target selected;
    finish_run ()
