(* Tests for the parallel library: deterministic chunking, the domain pool,
   the map / map_reduce combinators, and the end-to-end guarantee that the
   experiment harness produces bit-identical numbers for every jobs value. *)

module C = Parallel.Chunk
module P = Parallel.Pool
module PM = Parallel.Map

let bits_equal what a b =
  Alcotest.(check int64) what (Int64.bits_of_float a) (Int64.bits_of_float b)

(* --- Chunk --- *)

let prop_ranges_cover =
  QCheck.Test.make ~name:"ranges partition [0, length) in order, balanced" ~count:500
    QCheck.(pair (int_range 1 64) (int_range 0 500))
    (fun (chunks, length) ->
      let ranges = C.ranges ~chunks ~length in
      let sizes = Array.map (fun (s, e) -> e - s) ranges in
      (* Contiguous cover in ascending order. *)
      let pos = ref 0 in
      Array.iter
        (fun (s, e) ->
          assert (s = !pos && e > s);
          pos := e)
        ranges;
      !pos = length
      && Array.length ranges = min chunks length
      && (length = 0
         || Array.for_all (fun sz -> abs (sz - sizes.(0)) <= 1) sizes))

let prop_ranges_of_size_fixed =
  QCheck.Test.make ~name:"ranges_of_size boundaries depend only on chunk_size" ~count:500
    QCheck.(pair (int_range 1 64) (int_range 0 500))
    (fun (chunk_size, length) ->
      let ranges = C.ranges_of_size ~chunk_size ~length in
      let pos = ref 0 in
      Array.iteri
        (fun i (s, e) ->
          assert (s = !pos && e > s);
          (* Every chunk but the last is exactly chunk_size wide. *)
          assert (e - s = chunk_size || i = Array.length ranges - 1);
          pos := e)
        ranges;
      !pos = length)

let test_chunk_validation () =
  Alcotest.check_raises "chunks = 0" (Invalid_argument "Chunk.ranges: chunks must be >= 1")
    (fun () -> ignore (C.ranges ~chunks:0 ~length:5));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Chunk.ranges_of_size: length must be >= 0") (fun () ->
      ignore (C.ranges_of_size ~chunk_size:4 ~length:(-1)))

(* --- Pool --- *)

let test_pool_runs_every_task_once () =
  P.with_pool ~jobs:4 (fun pool ->
      (* Reuse the pool across many submissions: workers must pick up each
         new job exactly once. *)
      for _ = 1 to 25 do
        let hits = Array.make 97 0 in
        P.run pool ~total:97 (fun i -> hits.(i) <- hits.(i) + 1);
        Alcotest.(check bool) "each task ran once" true (Array.for_all (( = ) 1) hits)
      done)

let test_pool_sequential_capacity () =
  P.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "capacity" 1 (P.jobs pool);
      let sum = ref 0 in
      (* jobs = 1 spawns no domains; the caller drains alone, so unguarded
         mutation is safe here. *)
      P.run pool ~total:100 (fun i -> sum := !sum + i);
      Alcotest.(check int) "sum" 4950 !sum)

let test_pool_exception_propagates () =
  P.with_pool ~jobs:4 (fun pool ->
      let ran = Atomic.make 0 in
      Alcotest.check_raises "worker exception reaches caller" (Failure "task 13")
        (fun () ->
          P.run pool ~total:64 (fun i ->
              ignore (Atomic.fetch_and_add ran 1);
              if i = 13 then failwith "task 13"));
      (* A failing task does not cancel the rest of the job. *)
      Alcotest.(check int) "all tasks still ran" 64 (Atomic.get ran);
      (* The pool survives a failed job. *)
      P.run pool ~total:8 (fun _ -> ());
      ())

let test_pool_shutdown () =
  let pool = P.create ~jobs:3 in
  P.run pool ~total:10 (fun _ -> ());
  P.shutdown pool;
  P.shutdown pool;
  Alcotest.check_raises "run after shutdown" (Invalid_argument "Pool.run: pool is shut down")
    (fun () -> P.run pool ~total:1 (fun _ -> ()))

let test_pool_validation () =
  Alcotest.check_raises "jobs = 0" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (P.create ~jobs:0))

(* --- Map --- *)

let prop_map_matches_array_map =
  QCheck.Test.make ~name:"parallel map equals Array.map for arbitrary jobs" ~count:100
    QCheck.(pair (int_range 1 8) (list int))
    (fun (jobs, xs) ->
      let a = Array.of_list xs in
      let f x = (x * 31) + 7 in
      PM.map ~jobs f a = Array.map f a)

let prop_mapi_matches_array_mapi =
  QCheck.Test.make ~name:"parallel mapi equals Array.mapi for arbitrary jobs" ~count:100
    QCheck.(pair (int_range 1 8) (list small_int))
    (fun (jobs, xs) ->
      let a = Array.of_list xs in
      let f i x = (i * 1009) lxor x in
      PM.mapi ~jobs f a = Array.mapi f a)

let prop_map_reduce_bit_identical_across_jobs =
  QCheck.Test.make ~name:"float map_reduce is bit-identical for every jobs" ~count:50
    QCheck.(pair (int_range 2 8) (list_of_size (Gen.int_range 0 400) (float_range (-1e6) 1e6)))
    (fun (jobs, xs) ->
      let a = Array.of_list xs in
      let reduce j =
        PM.map_reduce ~jobs:j ~chunk_size:64 ~map:sqrt ~combine:( +. ) ~init:0.0
          (Array.map Float.abs a)
      in
      Int64.bits_of_float (reduce 1) = Int64.bits_of_float (reduce jobs))

let test_map_empty () =
  Alcotest.(check int) "empty in, empty out" 0 (Array.length (PM.map ~jobs:4 succ [||]))

let test_map_exception_propagates () =
  Alcotest.check_raises "map surfaces worker exception" (Failure "boom") (fun () ->
      ignore (PM.map ~jobs:4 (fun x -> if x = 512 then failwith "boom" else x)
                (Array.init 1024 Fun.id)))

let test_map_reduce_empty_is_init () =
  bits_equal "init" 42.5 (PM.map_reduce ~jobs:4 ~map:Fun.id ~combine:( +. ) ~init:42.5 [||])

let test_map_reduce_int_sum () =
  let a = Array.init 10_000 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        (Printf.sprintf "sum at jobs=%d" jobs)
        (10_000 * 9_999 / 2)
        (PM.map_reduce ~jobs ~map:Fun.id ~combine:( + ) ~init:0 a))
    [ 1; 2; 4; 7 ]

let test_jobs_validation () =
  Alcotest.check_raises "jobs = 0" (Invalid_argument "Parallel.Map: jobs must be >= 1")
    (fun () -> ignore (PM.map ~jobs:0 succ [| 1; 2; 3 |]))

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (PM.default_jobs () >= 1)

(* --- Experiment integration: the reproducibility guarantee --- *)

let dataset =
  Data.Generate.generate Data.Generate.Normal_family ~bits:12 ~count:20_000 ~seed:5L

let sample = Workload.Experiment.sample_of dataset ~seed:7L ~n:500
let queries = Workload.Generate.size_separated dataset ~seed:9L ~fraction:0.02 ~count:200

let test_mre_bit_identical_across_jobs () =
  List.iter
    (fun spec ->
      let mre jobs = Workload.Experiment.mre_of_spec ~jobs dataset ~sample ~queries spec in
      let m1 = mre 1 in
      bits_equal (Selest.Estimator.spec_name spec ^ " jobs 1 = 4") m1 (mre 4);
      bits_equal (Selest.Estimator.spec_name spec ^ " jobs 1 = 3") m1 (mre 3))
    [
      Selest.Estimator.Sampling;
      Selest.Estimator.Equi_width (Selest.Estimator.Fixed_bins 40);
      Selest.Estimator.kernel_defaults;
      Selest.Estimator.hybrid_defaults;
    ]

let test_summary_matches_sequential_evaluate () =
  (* The parallel path must reproduce Metrics.evaluate exactly, field by
     field, because it reduces the same per-query pairs in the same order. *)
  let spec = Selest.Estimator.Equi_width (Selest.Estimator.Fixed_bins 20) in
  let seq =
    Workload.Metrics.evaluate dataset
      (Workload.Experiment.estimate_fn_of_spec dataset ~sample spec)
      queries
  in
  let par = Workload.Experiment.summary_of_spec ~jobs:4 dataset ~sample ~queries spec in
  bits_equal "mre" seq.Workload.Metrics.mre par.Workload.Metrics.mre;
  bits_equal "mae" seq.Workload.Metrics.mae par.Workload.Metrics.mae;
  bits_equal "mean_signed" seq.Workload.Metrics.mean_signed par.Workload.Metrics.mean_signed;
  bits_equal "max_relative" seq.Workload.Metrics.max_relative par.Workload.Metrics.max_relative;
  Alcotest.(check int) "evaluated" seq.Workload.Metrics.evaluated par.Workload.Metrics.evaluated

let test_compare_specs_parallel_matches () =
  let specs = Selest.Estimator.default_suite in
  let seq = Workload.Experiment.compare_specs ~jobs:1 dataset ~sample ~queries specs in
  let par = Workload.Experiment.compare_specs ~jobs:4 dataset ~sample ~queries specs in
  Alcotest.(check (list string)) "labels in spec order" (List.map fst seq) (List.map fst par);
  List.iter2
    (fun (label, (s : Workload.Metrics.summary)) (_, (p : Workload.Metrics.summary)) ->
      bits_equal label s.Workload.Metrics.mre p.Workload.Metrics.mre)
    seq par

let () =
  Alcotest.run "parallel"
    [
      ( "chunk",
        [
          QCheck_alcotest.to_alcotest prop_ranges_cover;
          QCheck_alcotest.to_alcotest prop_ranges_of_size_fixed;
          Alcotest.test_case "validation" `Quick test_chunk_validation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "every task runs once" `Quick test_pool_runs_every_task_once;
          Alcotest.test_case "sequential capacity" `Quick test_pool_sequential_capacity;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagates;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "validation" `Quick test_pool_validation;
        ] );
      ( "map",
        [
          QCheck_alcotest.to_alcotest prop_map_matches_array_map;
          QCheck_alcotest.to_alcotest prop_mapi_matches_array_mapi;
          QCheck_alcotest.to_alcotest prop_map_reduce_bit_identical_across_jobs;
          Alcotest.test_case "empty array" `Quick test_map_empty;
          Alcotest.test_case "exception propagation" `Quick test_map_exception_propagates;
          Alcotest.test_case "map_reduce empty = init" `Quick test_map_reduce_empty_is_init;
          Alcotest.test_case "map_reduce int sum" `Quick test_map_reduce_int_sum;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
          Alcotest.test_case "default_jobs" `Quick test_default_jobs_positive;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "mre bit-identical across jobs" `Quick
            test_mre_bit_identical_across_jobs;
          Alcotest.test_case "parallel summary = sequential evaluate" `Quick
            test_summary_matches_sequential_evaluate;
          Alcotest.test_case "compare_specs parallel" `Quick test_compare_specs_parallel_matches;
        ] );
    ]
