(* Tests for the advisor: targeted-selectivity workload synthesis, the
   sweep's determinism contract, Pareto/crossover correctness, the
   recommendation policy, and the shared JSON report encoder. *)

module Ds = Data.Dataset
module G = Data.Generate
module W = Advisor.Workloads
module Sw = Advisor.Sweep
module P = Advisor.Pareto
module R = Advisor.Recommend
module Rep = Advisor.Report
module E = Workload.Experiment

let checkf tol = Alcotest.(check (float tol))

(* --- workload synthesis: the tolerance contract --- *)

(* The qcheck property behind the acceptance criterion: for arbitrary
   seeds, dataset shapes and targets, a successful generation means every
   query's exact selectivity is positive, finite-bounded, and within the
   stated relative tolerance of the target.  Failures are allowed — they
   must be typed, which the degenerate-attribute tests below pin down. *)
let prop_generated_selectivity_within_tolerance =
  QCheck.Test.make ~name:"achieved selectivity within tolerance of target" ~count:40
    QCheck.(
      quad (int_range 0 2) (int_range 0 1000) (int_range 0 2) (int_range 0 4))
    (fun (fam, seed, place, ti) ->
      let family =
        match fam with
        | 0 -> G.Uniform_family
        | 1 -> G.Normal_family
        | _ -> G.Exponential_family
      in
      let ds = G.generate family ~bits:10 ~count:2000 ~seed:(Int64.of_int (seed + 1)) in
      let placement =
        match place with 0 -> W.Data_skew | 1 -> W.Uniform | _ -> W.Antimode
      in
      let target = List.nth [ 0.005; 0.01; 0.05; 0.1; 0.5 ] ti in
      match
        W.generate ds ~seed:(Int64.of_int seed) ~placement ~target ~count:15 ()
      with
      | Error f ->
        (* A typed failure must carry a diagnosis and a closest-achieved
           figure, never a half-built workload. *)
        String.length f.W.f_reason > 0 && f.W.f_best >= 0.0
      | Ok w ->
        Array.length w.W.queries = 15
        && Array.for_all
             (fun (q : Workload.Query.t) ->
               Float.is_finite q.Workload.Query.lo
               && Float.is_finite q.Workload.Query.hi
               && q.Workload.Query.lo <= q.Workload.Query.hi)
             w.W.queries
        && Array.for_all
             (fun sel ->
               sel > 0.0
               && Float.abs (sel -. target) <= (W.default_tolerance *. target) +. 1e-12)
             w.W.achieved)

let test_generate_deterministic () =
  let ds = G.generate G.Normal_family ~bits:10 ~count:3000 ~seed:11L in
  let gen () =
    match W.generate ds ~seed:42L ~placement:W.Data_skew ~target:0.05 ~count:25 () with
    | Ok w -> w
    | Error f -> Alcotest.failf "unexpected failure: %s" f.W.f_reason
  in
  let w1 = gen () and w2 = gen () in
  Alcotest.(check bool) "same queries" true
    (Array.for_all2
       (fun (a : Workload.Query.t) (b : Workload.Query.t) ->
         a.Workload.Query.lo = b.Workload.Query.lo
         && a.Workload.Query.hi = b.Workload.Query.hi)
       w1.W.queries w2.W.queries);
  checkf 0.0 "same mean achieved" w1.W.mean_achieved w2.W.mean_achieved

(* Grid cells are seeded per (placement, target), so the same cell is
   identical whatever else the grid contains. *)
let test_grid_cells_independent_of_grid_shape () =
  let ds = G.generate G.Exponential_family ~bits:10 ~count:3000 ~seed:5L in
  let cell targets =
    match W.grid ds ~seed:9L ~targets ~placements:[ W.Uniform ] ~count:10 () with
    | cells -> (
      match List.find_opt (fun (_, t, _) -> t = 0.1) cells with
      | Some (_, _, Ok w) -> w
      | Some (_, _, Error f) -> Alcotest.failf "cell failed: %s" f.W.f_reason
      | None -> Alcotest.fail "cell missing")
  in
  let narrow = cell [ 0.1 ] and wide = cell [ 0.01; 0.1; 0.5 ] in
  Alcotest.(check bool) "same cell queries" true
    (Array.for_all2
       (fun (a : Workload.Query.t) (b : Workload.Query.t) ->
         a.Workload.Query.lo = b.Workload.Query.lo
         && a.Workload.Query.hi = b.Workload.Query.hi)
       narrow.W.queries wide.W.queries)

(* --- degenerate attributes --- *)

let constant = Ds.create ~name:"const" ~bits:8 (Array.make 400 77)

let test_constant_column_low_target_fails_typed () =
  match W.generate constant ~seed:1L ~placement:W.Data_skew ~target:0.01 ~count:5 () with
  | Ok _ -> Alcotest.fail "a constant column cannot hit a 1% target"
  | Error f ->
    Alcotest.(check bool) "diagnosis mentions the constant column" true
      (let r = String.lowercase_ascii f.W.f_reason in
       (* substring search *)
       let rec has i =
         i + 8 <= String.length r && (String.sub r i 8 = "constant" || has (i + 1))
       in
       has 0);
    (* closest achievable on a constant column is all-or-nothing: 1.0 *)
    checkf 1e-12 "closest achieved is full selectivity" 1.0 f.W.f_best

let test_constant_column_full_target_succeeds () =
  match W.generate constant ~seed:1L ~placement:W.Uniform ~target:1.0 ~count:5 () with
  | Error f -> Alcotest.failf "target 1.0 should be achievable: %s" f.W.f_reason
  | Ok w ->
    Array.iter (fun sel -> checkf 1e-12 "every query covers everything" 1.0 sel) w.W.achieved

let three_values =
  (* 300 records over exactly three equally frequent values: achievable
     selectivities are multiples of 1/3. *)
  Ds.create ~name:"three" ~bits:8 (Array.init 300 (fun i -> (i mod 3) * 100))

let test_coarse_granularity_fails_typed () =
  match
    W.generate three_values ~seed:2L ~placement:W.Uniform ~target:0.05 ~count:5 ()
  with
  | Ok _ -> Alcotest.fail "5% is below the attribute's selectivity granularity"
  | Error f ->
    Alcotest.(check bool) "closest achieved reported" true (f.W.f_best > 0.0);
    Alcotest.(check bool) "reason is non-empty" true (String.length f.W.f_reason > 0)

let test_coarse_granularity_achievable_target_succeeds () =
  match
    W.generate three_values ~seed:2L ~placement:W.Uniform ~target:(1.0 /. 3.0) ~count:8 ()
  with
  | Error f -> Alcotest.failf "1/3 is exactly achievable: %s" f.W.f_reason
  | Ok w ->
    Array.iter (fun sel -> checkf 1e-9 "selectivity is exactly 1/3" (1.0 /. 3.0) sel)
      w.W.achieved

let test_grid_reports_failures_in_place () =
  let cells = W.grid constant ~seed:3L ~targets:[ 0.01; 1.0 ] ~count:4 () in
  let failed = List.filter (fun (_, _, r) -> Result.is_error r) cells in
  let ok = List.filter (fun (_, _, r) -> Result.is_ok r) cells in
  (* 2 placements x 2 targets: the 1% cells fail, the 100% cells pass. *)
  Alcotest.(check int) "failing cells" 2 (List.length failed);
  Alcotest.(check int) "passing cells" 2 (List.length ok)

(* --- placements --- *)

let test_placement_string_round_trip () =
  List.iter
    (fun p ->
      match W.placement_of_string (W.placement_name p) with
      | Ok p' -> Alcotest.(check bool) "round trip" true (p = p')
      | Error e -> Alcotest.fail e)
    [ W.Data_skew; W.Uniform; W.Antimode ];
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (W.placement_of_string "sideways"))

(* --- sweep: determinism across jobs --- *)

let sweep_dataset = G.generate G.Normal_family ~bits:12 ~count:5000 ~seed:21L

let small_suite =
  List.filter (fun (name, _) -> List.mem name [ "uniform"; "sampling"; "ewh" ])
    Sw.default_suite

let run_sweep ~jobs =
  let sample = E.sample_of sweep_dataset ~seed:7L ~n:500 in
  Sw.run ~jobs ~specs:small_suite ~targets:[ 0.01; 0.1 ] ~count:30 sweep_dataset
    ~seed:9L ~sample

let test_sweep_mres_bit_identical_across_jobs () =
  let s1 = run_sweep ~jobs:1 and s4 = run_sweep ~jobs:4 in
  Alcotest.(check int) "same cell count" (List.length s1.Sw.s_cells)
    (List.length s4.Sw.s_cells);
  List.iter2
    (fun (a : Sw.measurement) (b : Sw.measurement) ->
      Alcotest.(check string) "same spec" a.Sw.m_spec b.Sw.m_spec;
      Alcotest.(check bool) "bit-identical mre" true
        (Int64.equal
           (Int64.bits_of_float a.Sw.m_summary.Workload.Metrics.mre)
           (Int64.bits_of_float b.Sw.m_summary.Workload.Metrics.mre)))
    s1.Sw.s_cells s4.Sw.s_cells

let test_recommendation_deterministic_across_jobs () =
  let r1 = Result.get_ok (R.recommend (run_sweep ~jobs:1)) in
  let r4 = Result.get_ok (R.recommend (run_sweep ~jobs:4)) in
  Alcotest.(check string) "same spec at any jobs" r1.R.r_spec r4.R.r_spec;
  checkf 0.0 "same mean mre" r1.R.r_mean_mre r4.R.r_mean_mre;
  checkf 0.0 "same regret" r1.R.r_regret r4.R.r_regret

let test_vc_epsilon_decreases_with_n () =
  let e1 = Sw.vc_epsilon ~n:100 and e2 = Sw.vc_epsilon ~n:10000 in
  Alcotest.(check bool) "monotone in sample size" true (e2 < e1);
  (* At n = 2000 (the paper's sample size) the bound is ~3.5% absolute. *)
  checkf 1e-3 "paper sample size" 0.0353 (Sw.vc_epsilon ~n:2000)

(* --- Pareto: hand-built tables --- *)

let pt spec mre build ns =
  { P.p_spec = spec; p_label = spec; p_mre = mre; p_build_s = build; p_ns = ns }

let cheap_accurate = pt "a" 0.01 0.001 10.0
let dominated = pt "b" 0.02 0.002 20.0 (* worse everywhere than a *)
let fast_sloppy = pt "c" 0.05 0.0001 1.0 (* cheaper than a, less accurate *)

let test_dominates () =
  Alcotest.(check bool) "a dominates b" true (P.dominates cheap_accurate dominated);
  Alcotest.(check bool) "b does not dominate a" false (P.dominates dominated cheap_accurate);
  Alcotest.(check bool) "no self-domination" false (P.dominates cheap_accurate cheap_accurate);
  Alcotest.(check bool) "trade-off does not dominate" false
    (P.dominates cheap_accurate fast_sloppy)

let test_front_drops_only_dominated () =
  let front = P.front [ cheap_accurate; dominated; fast_sloppy ] in
  Alcotest.(check (list string)) "front members" [ "a"; "c" ]
    (List.map (fun p -> p.P.p_spec) front)

let test_front_keeps_duplicates () =
  let twin = { cheap_accurate with P.p_spec = "a2" } in
  Alcotest.(check int) "equal points both survive" 2
    (List.length (P.front [ cheap_accurate; twin ]))

(* The policy can never recommend a dominated spec, whatever the weights:
   candidates are restricted to the front before scoring. *)
let test_choose_never_returns_dominated () =
  List.iter
    (fun weights ->
      match R.choose ~weights [ cheap_accurate; dominated; fast_sloppy ] with
      | None -> Alcotest.fail "non-empty table must yield a choice"
      | Some p ->
        Alcotest.(check bool)
          (Printf.sprintf "dominated never chosen (acc=%g)" weights.R.w_accuracy)
          true (p.P.p_spec <> "b"))
    [
      R.default_weights;
      { R.w_accuracy = 1.0; w_build = 1.0; w_query = 1.0; w_tie_margin = 0.0 };
      { R.w_accuracy = 0.1; w_build = 5.0; w_query = 0.0; w_tie_margin = 0.5 };
    ]

let test_choose_tie_falls_to_earlier_candidate () =
  (* Same accuracy, wildly different costs: under accuracy-only weights
     the scores tie exactly, and the tie falls to suite order (the list
     is ordered cheapest-first by construction). *)
  let slow_twin = { cheap_accurate with P.p_spec = "z"; p_build_s = 9.0; p_ns = 9e6 } in
  match R.choose ~weights:R.default_weights [ cheap_accurate; slow_twin ] with
  | Some p -> Alcotest.(check string) "earlier candidate wins the tie" "a" p.P.p_spec
  | None -> Alcotest.fail "choice expected"

let test_choose_within_margin_prefers_cheaper_earlier () =
  (* b2 is 5% worse on mre — inside the 10% tie margin — and earlier in
     the list, so it wins the tie against the slightly better late spec. *)
  let near_best = pt "early" 0.0105 0.0001 1.0 in
  let best = pt "late" 0.01 0.01 100.0 in
  match R.choose ~weights:R.default_weights [ near_best; best ] with
  | Some p -> Alcotest.(check string) "margin resolves cheap-first" "early" p.P.p_spec
  | None -> Alcotest.fail "choice expected"

let test_weights_of_string () =
  (match R.weights_of_string "1,0.5,0.25" with
  | Ok w ->
    checkf 1e-12 "accuracy" 1.0 w.R.w_accuracy;
    checkf 1e-12 "build" 0.5 w.R.w_build;
    checkf 1e-12 "query" 0.25 w.R.w_query;
    checkf 1e-12 "default margin" R.default_weights.R.w_tie_margin w.R.w_tie_margin
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "zero accuracy rejected" true
    (Result.is_error (R.weights_of_string "0,1,1"));
  Alcotest.(check bool) "negative rejected" true
    (Result.is_error (R.weights_of_string "1,-1,0"));
  Alcotest.(check bool) "margin >= 1 rejected" true
    (Result.is_error (R.weights_of_string "1,0,0,1.5"));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (R.weights_of_string "fast,please"))

(* --- crossover matrix --- *)

let test_crossover_winner_is_cell_argmin () =
  let sweep = run_sweep ~jobs:1 in
  let bands = P.crossover sweep in
  Alcotest.(check int) "one band per achieved cell"
    (List.length sweep.Sw.s_workloads) (List.length bands);
  List.iter
    (fun (b : P.band) ->
      let best_listed =
        List.fold_left (fun acc (_, m) -> Float.min acc m) Float.infinity b.P.b_mres
      in
      checkf 0.0 "winner mre is the column minimum" best_listed b.P.b_winner_mre;
      Alcotest.(check bool) "winner appears in the column" true
        (List.mem_assoc b.P.b_winner b.P.b_mres))
    bands

(* --- report encoder: well-formed JSON --- *)

(* A minimal recursive-descent JSON validator — enough to prove the
   encoder emits structurally valid JSON without an external parser. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let fail = ref false in
  let expect c = if peek () = Some c then advance () else fail := true in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail := true
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> fail := true
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); elements ()
        | Some ']' -> advance ()
        | _ -> fail := true
      in
      elements ()
  and string_lit () =
    expect '"';
    let closed = ref false in
    while (not !closed) && !pos < n && not !fail do
      (match s.[!pos] with
      | '"' -> closed := true
      | '\\' -> advance () (* skip the escaped char below *)
      | c when Char.code c < 0x20 -> fail := true
      | _ -> ());
      advance ()
    done;
    if not !closed then fail := true
  and keyword () =
    let ok w =
      !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    in
    if ok "true" then pos := !pos + 4
    else if ok "false" then pos := !pos + 5
    else if ok "null" then pos := !pos + 4
    else fail := true
  and number () =
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    let start = !pos in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    if !pos = start then fail := true
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_json_validator_sanity () =
  Alcotest.(check bool) "valid accepted" true
    (json_valid {|{"a": [1, 2.5e-3, null], "b": "x\"y", "c": {}}|});
  Alcotest.(check bool) "truncated rejected" false (json_valid {|{"a": [1, 2|});
  Alcotest.(check bool) "trailing junk rejected" false (json_valid "{}}")

let test_advise_report_is_valid_json () =
  let sweep = run_sweep ~jobs:1 in
  let r = Result.get_ok (R.recommend sweep) in
  let s = Rep.to_string (Rep.advise_report sweep r) in
  Alcotest.(check bool) "advise report parses" true (json_valid s)

let test_compare_report_is_valid_json () =
  let summary =
    Workload.Metrics.summarize [| (100.0, 103.0); (50.0, 49.0); (7.0, 7.0) |]
  in
  let s =
    Rep.to_string
      (Rep.compare_report ~dataset:{|weird "name"
with newline|} ~records:1000
         ~sample_size:100 ~fraction:0.01 ~count:3
         [ ("EWH(NS)", summary); ("Sampling", summary) ])
  in
  Alcotest.(check bool) "compare report parses despite hostile strings" true
    (json_valid s)

let test_report_non_finite_floats_encode_null () =
  let s = Rep.to_string (Rep.Obj [ ("nan", Rep.Float Float.nan); ("inf", Rep.Float Float.infinity) ]) in
  Alcotest.(check bool) "still valid json" true (json_valid s);
  (* both fields must have encoded as null *)
  let count_null =
    let rec go i acc =
      if i + 4 > String.length s then acc
      else go (i + 1) (if String.sub s i 4 = "null" then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "two nulls" 2 count_null

let () =
  Alcotest.run "advisor"
    [
      ( "workloads",
        [
          QCheck_alcotest.to_alcotest prop_generated_selectivity_within_tolerance;
          Alcotest.test_case "generation is deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "grid cells independent of grid shape" `Quick
            test_grid_cells_independent_of_grid_shape;
          Alcotest.test_case "placement names round-trip" `Quick
            test_placement_string_round_trip;
        ] );
      ( "degenerate attributes",
        [
          Alcotest.test_case "constant column, low target: typed failure" `Quick
            test_constant_column_low_target_fails_typed;
          Alcotest.test_case "constant column, target 1.0: succeeds" `Quick
            test_constant_column_full_target_succeeds;
          Alcotest.test_case "coarse granularity: typed failure" `Quick
            test_coarse_granularity_fails_typed;
          Alcotest.test_case "coarse granularity: achievable target succeeds" `Quick
            test_coarse_granularity_achievable_target_succeeds;
          Alcotest.test_case "grid reports failures in place" `Quick
            test_grid_reports_failures_in_place;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "MREs bit-identical at jobs 1 and 4" `Quick
            test_sweep_mres_bit_identical_across_jobs;
          Alcotest.test_case "recommendation deterministic across jobs" `Quick
            test_recommendation_deterministic_across_jobs;
          Alcotest.test_case "VC bound shrinks with sample size" `Quick
            test_vc_epsilon_decreases_with_n;
        ] );
      ( "pareto & policy",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "front drops only dominated points" `Quick
            test_front_drops_only_dominated;
          Alcotest.test_case "front keeps duplicate coordinates" `Quick
            test_front_keeps_duplicates;
          Alcotest.test_case "dominated specs never recommended" `Quick
            test_choose_never_returns_dominated;
          Alcotest.test_case "exact ties fall to suite order" `Quick
            test_choose_tie_falls_to_earlier_candidate;
          Alcotest.test_case "margin ties fall to the earlier (cheaper) spec" `Quick
            test_choose_within_margin_prefers_cheaper_earlier;
          Alcotest.test_case "weights parser" `Quick test_weights_of_string;
          Alcotest.test_case "crossover winner is the cell argmin" `Quick
            test_crossover_winner_is_cell_argmin;
        ] );
      ( "report",
        [
          Alcotest.test_case "json validator sanity" `Quick test_json_validator_sanity;
          Alcotest.test_case "advise report is valid json" `Quick
            test_advise_report_is_valid_json;
          Alcotest.test_case "compare report is valid json" `Quick
            test_compare_report_is_valid_json;
          Alcotest.test_case "non-finite floats encode as null" `Quick
            test_report_non_finite_floats_encode_null;
        ] );
    ]
