(* Tests for the online library (progressive approximate aggregation) and
   for Data.Io (dataset load/save). *)

module A = Online.Aggregator
module Xo = Prng.Xoshiro256pp

let checkf tol = Alcotest.(check (float tol))

let batch seed n lo hi =
  let rng = Xo.create seed in
  Array.init n (fun _ -> Xo.float_range rng lo hi)

(* --- aggregator --- *)

let test_create_validation () =
  Alcotest.check_raises "domain" (Invalid_argument "Aggregator.create: empty domain") (fun () ->
      ignore (A.create ~domain:(1.0, 1.0) ()))

let test_estimate_before_samples () =
  let t = A.create ~domain:(0.0, 100.0) () in
  Alcotest.check_raises "no samples" (Invalid_argument "Aggregator.estimate: no samples yet")
    (fun () -> ignore (A.estimate t ~a:0.0 ~b:10.0))

let test_sample_size_accumulates () =
  let t = A.create ~domain:(0.0, 100.0) () in
  A.add t (batch 1L 100 0.0 100.0);
  Alcotest.(check int) "first batch" 100 (A.sample_size t);
  A.add t (batch 2L 150 0.0 100.0);
  Alcotest.(check int) "second batch" 250 (A.sample_size t)

let test_estimates_reasonable_on_uniform () =
  let t = A.create ~domain:(0.0, 100.0) () in
  A.add t (batch 3L 2000 0.0 100.0);
  let e = A.estimate t ~a:20.0 ~b:40.0 in
  Alcotest.(check bool) "kernel near 0.2" true (Float.abs (e.A.kernel_selectivity -. 0.2) < 0.03);
  Alcotest.(check bool) "sampling near 0.2" true
    (Float.abs (e.A.sampling_selectivity -. 0.2) < 0.03);
  Alcotest.(check int) "n" 2000 e.A.n

let test_ci_shrinks_with_samples () =
  let t = A.create ~domain:(0.0, 100.0) () in
  A.add t (batch 4L 100 0.0 100.0);
  let e1 = A.estimate t ~a:20.0 ~b:40.0 in
  A.add t (batch 5L 10_000 0.0 100.0);
  let e2 = A.estimate t ~a:20.0 ~b:40.0 in
  Alcotest.(check bool)
    (Printf.sprintf "ci %.4f < %.4f" e2.A.ci_halfwidth e1.A.ci_halfwidth)
    true
    (e2.A.ci_halfwidth < e1.A.ci_halfwidth /. 3.0)

let test_ci_covers_truth_on_uniform () =
  (* The 95% interval should cover the true probability in the vast
     majority of seeded replications. *)
  let covered = ref 0 in
  for seed = 1 to 40 do
    let t = A.create ~domain:(0.0, 100.0) () in
    A.add t (batch (Int64.of_int seed) 500 0.0 100.0);
    let e = A.estimate t ~a:30.0 ~b:60.0 in
    if Float.abs (e.A.sampling_selectivity -. 0.3) <= e.A.ci_halfwidth then incr covered
  done;
  Alcotest.(check bool) (Printf.sprintf "%d/40 covered" !covered) true (!covered >= 34)

let test_refit_happens_per_batch () =
  (* The kernel estimate must reflect newly added samples. *)
  let t = A.create ~domain:(0.0, 100.0) () in
  A.add t (batch 6L 500 0.0 50.0);
  let e1 = A.estimate t ~a:50.0 ~b:100.0 in
  A.add t (batch 7L 5000 50.0 100.0);
  let e2 = A.estimate t ~a:50.0 ~b:100.0 in
  Alcotest.(check bool) "estimate moved" true
    (e2.A.kernel_selectivity > e1.A.kernel_selectivity +. 0.3)

let test_single_sample_degenerate_start () =
  let t = A.create ~domain:(0.0, 100.0) () in
  A.add t [| 42.0 |];
  let e = A.estimate t ~a:0.0 ~b:100.0 in
  Alcotest.(check bool) "answers without crashing" true
    (e.A.kernel_selectivity >= 0.0 && e.A.kernel_selectivity <= 1.0)

let test_estimated_count_scaling () =
  let t = A.create ~domain:(0.0, 100.0) () in
  A.add t (batch 8L 1000 0.0 100.0);
  let e = A.estimate t ~a:0.0 ~b:50.0 in
  let k, low, high = A.estimated_count e ~n_records:1_000_000 in
  checkf 1e-6 "kernel count" (e.A.kernel_selectivity *. 1e6) k;
  Alcotest.(check bool) "bounds ordered" true (low <= high);
  Alcotest.(check bool) "low nonneg" true (low >= 0.0);
  Alcotest.(check bool) "high bounded" true (high <= 1e6)

(* --- reservoir --- *)

module R = Online.Reservoir

let test_reservoir_validation () =
  Alcotest.check_raises "capacity" (Invalid_argument "Reservoir.create: capacity must be positive")
    (fun () -> ignore (R.create ~capacity:0 ()))

let test_reservoir_accounting () =
  let r = R.create ~capacity:8 () in
  R.add_array r (batch 11L 5 0.0 100.0);
  Alcotest.(check int) "below capacity retains all" 5 (R.size r);
  Alcotest.(check int) "seen counts offered" 5 (R.seen r);
  R.add_array r (batch 12L 100 0.0 100.0);
  Alcotest.(check int) "capped at capacity" 8 (R.size r);
  Alcotest.(check int) "seen keeps counting" 105 (R.seen r);
  Alcotest.(check int) "capacity preserved" 8 (R.capacity r)

let test_reservoir_deterministic_and_batch_independent () =
  (* The retained sample is a pure function of (seed, offered stream):
     same seed + same values = identical sample, regardless of how the
     stream is chopped into add/add_array calls.  This is what makes an
     adaptive server's resample rebuilds reproducible from its insert
     log. *)
  let stream = batch 13L 500 0.0 100.0 in
  let one = R.create ~seed:42L ~capacity:32 () in
  R.add_array one stream;
  let whole = R.sample one in
  let chopped = R.create ~seed:42L ~capacity:32 () in
  Array.iteri
    (fun i v ->
      if i mod 3 = 0 then R.add chopped v
      else if i mod 17 = 1 then R.add_array chopped [| v |]
      else R.add chopped v)
    stream;
  Alcotest.(check (array (float 0.0))) "batch boundaries don't matter" whole (R.sample chopped);
  let again = R.create ~seed:42L ~capacity:32 () in
  R.add_array again stream;
  Alcotest.(check (array (float 0.0))) "same seed reproduces exactly" whole (R.sample again);
  let other = R.create ~seed:43L ~capacity:32 () in
  R.add_array other stream;
  Alcotest.(check bool) "different seed retains a different sample" true
    (R.sample other <> whole)

let test_reservoir_uniformity () =
  (* Values from the late half of the stream must be retained at roughly
     the same rate as the early half — the defining property of
     Algorithm R (a recency-biased buffer would fail this hard). *)
  let r = R.create ~seed:7L ~capacity:200 () in
  let n = 10_000 in
  (* Value i is simply [float i], so retained values identify their
     arrival position. *)
  for i = 0 to n - 1 do
    R.add r (float_of_int i)
  done;
  let late = Array.fold_left (fun acc v -> if v >= 5000.0 then acc + 1 else acc) 0 (R.sample r) in
  Alcotest.(check bool)
    (Printf.sprintf "late-half share %d/200 within [60,140]" late)
    true
    (late >= 60 && late <= 140)

(* --- Data.Io --- *)

let temp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_io_roundtrip () =
  let ds = Data.Generate.generate Data.Generate.Uniform_family ~bits:10 ~count:500 ~seed:9L in
  let path = temp_path "selest_io_roundtrip.txt" in
  Data.Io.save ds ~path;
  let back = Data.Io.load ~path () in
  Alcotest.(check string) "name from header" (Data.Dataset.name ds) (Data.Dataset.name back);
  Alcotest.(check int) "bits from header" (Data.Dataset.bits ds) (Data.Dataset.bits back);
  Alcotest.(check (array int)) "values" (Data.Dataset.values ds) (Data.Dataset.values back);
  Sys.remove path

let test_io_load_plain_file () =
  (* No header: bits inferred from the maximum value. *)
  let path = temp_path "selest_io_plain.txt" in
  let oc = open_out path in
  output_string oc "5\n100\n7\n\n42\n";
  close_out oc;
  let ds = Data.Io.load ~path () in
  Alcotest.(check int) "records" 4 (Data.Dataset.size ds);
  Alcotest.(check int) "inferred bits" 7 (Data.Dataset.bits ds);
  Alcotest.(check string) "name from basename" "selest_io_plain" (Data.Dataset.name ds);
  Sys.remove path

let test_io_load_rejects_garbage () =
  let path = temp_path "selest_io_bad.txt" in
  let oc = open_out path in
  output_string oc "12\nnot-a-number\n";
  close_out oc;
  (try
     ignore (Data.Io.load ~path ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  Sys.remove path

let test_io_load_overrides () =
  let path = temp_path "selest_io_override.txt" in
  let oc = open_out path in
  output_string oc "1\n2\n3\n";
  close_out oc;
  let ds = Data.Io.load ~name:"custom" ~bits:12 ~path () in
  Alcotest.(check string) "name" "custom" (Data.Dataset.name ds);
  Alcotest.(check int) "bits" 12 (Data.Dataset.bits ds);
  Sys.remove path

let () =
  Alcotest.run "online"
    [
      ( "aggregator",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "estimate before samples" `Quick test_estimate_before_samples;
          Alcotest.test_case "sample size" `Quick test_sample_size_accumulates;
          Alcotest.test_case "uniform estimates" `Quick test_estimates_reasonable_on_uniform;
          Alcotest.test_case "ci shrinks" `Quick test_ci_shrinks_with_samples;
          Alcotest.test_case "ci coverage" `Slow test_ci_covers_truth_on_uniform;
          Alcotest.test_case "refit per batch" `Quick test_refit_happens_per_batch;
          Alcotest.test_case "degenerate start" `Quick test_single_sample_degenerate_start;
          Alcotest.test_case "count scaling" `Quick test_estimated_count_scaling;
        ] );
      ( "reservoir",
        [
          Alcotest.test_case "create validation" `Quick test_reservoir_validation;
          Alcotest.test_case "size/seen/capacity accounting" `Quick test_reservoir_accounting;
          Alcotest.test_case "deterministic, batch-boundary independent" `Quick
            test_reservoir_deterministic_and_batch_independent;
          Alcotest.test_case "retention is uniform over the stream" `Quick
            test_reservoir_uniformity;
        ] );
      ( "data io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "plain file" `Quick test_io_load_plain_file;
          Alcotest.test_case "rejects garbage" `Quick test_io_load_rejects_garbage;
          Alcotest.test_case "overrides" `Quick test_io_load_overrides;
        ] );
    ]
