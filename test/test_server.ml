(* The network serving layer: wire-protocol round trips and totality,
   engine request/reply semantics over real sockets, backpressure and
   deadline error channels, 32-connection load-generator bit-identity,
   and the SIGTERM kill-and-reconnect drain contract. *)

module Wire = Server.Wire
module Engine = Server.Engine
module Client = Server.Client
module Loadgen = Server.Loadgen
module Service = Catalog.Service

let check = Alcotest.check

let fresh_dir () =
  let base = Filename.temp_file "selest_server_test" "" in
  Sys.remove base;
  Sys.mkdir base 0o755;
  base

let sock_path () =
  let p = Filename.temp_file "selest_srv" ".sock" in
  Sys.remove p;
  p

let or_fail = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let or_fail_client = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected client error: %s" (Client.error_to_string e)

let sample_a = Array.init 500 (fun i -> float_of_int (i * i mod 97))
let sample_b = Array.init 400 (fun i -> float_of_int (i mod 61))
let domain_a = (-0.5, 96.5)
let domain_b = (-0.5, 60.5)

let build_two svc =
  ignore
    (or_fail
       (Service.build svc ~name:"orders/amount" ~spec:"ewh:16" ~domain:domain_a
          ~sample:sample_a));
  ignore
    (or_fail
       (Service.build svc ~name:"users/age" ~spec:"sampling" ~domain:domain_b
          ~sample:sample_b))

(* Run [f client address] against a freshly built two-entry catalog served
   on a Unix socket; always drains the server afterwards. *)
let with_server ?config f =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  build_two svc;
  let address = Wire.Unix_socket (sock_path ()) in
  let engine = Engine.create ?config ~services:[| svc |] address in
  let server = Thread.create Engine.serve engine in
  Fun.protect
    ~finally:(fun () ->
      Engine.initiate_drain engine;
      Thread.join server)
    (fun () ->
      let client = or_fail_client (Client.connect address) in
      Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client address dir))

(* ---------------- Wire: generators ---------------- *)

(* Floats are drawn from raw bit patterns so NaNs, infinities and negative
   zero must survive the trip; equality is bit-level throughout. *)
let gen_float = QCheck.Gen.(map Int64.float_of_bits int64)
let gen_str = QCheck.Gen.(string_size (int_bound 30))

let gen_request =
  let open QCheck.Gen in
  frequency
    [
      (1, return Wire.Ping);
      (1, return Wire.Ls);
      ( 3,
        gen_str >>= fun entry ->
        gen_float >>= fun a ->
        gen_float >>= fun b ->
        gen_str >>= fun spec -> return (Wire.Estimate { entry; a; b; spec }) );
      ( 3,
        list_size (int_bound 16) (triple gen_str gen_float gen_float) >>= fun l ->
        return (Wire.Batch_estimate (Array.of_list l)) );
      (1, gen_str >>= fun s -> return (Wire.Invalidate s));
      ( 2,
        gen_str >>= fun entry ->
        list_size (int_bound 16) gen_float >>= fun l ->
        return (Wire.Insert { entry; values = Array.of_list l }) );
      ( 2,
        gen_str >>= fun entry ->
        gen_float >>= fun a ->
        gen_float >>= fun b ->
        gen_float >>= fun actual -> return (Wire.Observe { entry; a; b; actual }) );
      ( 2,
        gen_str >>= fun entry ->
        gen_float >>= fun x_lo ->
        gen_float >>= fun x_hi ->
        gen_float >>= fun y_lo ->
        gen_float >>= fun y_hi ->
        return (Wire.Estimate_rect { entry; x_lo; x_hi; y_lo; y_hi }) );
      ( 2,
        gen_str >>= fun entry ->
        oneofl [ Selest.Stored.Join_eq; Selest.Stored.Join_lt; Selest.Stored.Join_le ]
        >>= fun pred -> return (Wire.Estimate_join { entry; pred }) );
    ]

let gen_entry_info =
  let open QCheck.Gen in
  gen_str >>= fun name ->
  gen_str >>= fun spec ->
  int_bound 100000 >>= fun cells ->
  bool >>= fun stale ->
  gen_float >>= fun lo ->
  gen_float >>= fun hi ->
  oneofl [ Selest.Stored.Range_kind; Selest.Stored.Rect_kind; Selest.Stored.Join_kind ]
  >>= fun kind ->
  oneof
    [
      return None;
      (gen_float >>= fun ylo -> gen_float >>= fun yhi -> return (Some (ylo, yhi)));
    ]
  >>= fun domain_y ->
  return { Wire.name; spec; cells; stale; domain = (lo, hi); kind; domain_y }

let gen_error_code =
  QCheck.Gen.oneofl
    [
      Wire.Bad_request; Wire.Unknown_entry; Wire.Spec_mismatch; Wire.Overloaded;
      Wire.Timeout; Wire.Draining; Wire.Internal;
    ]

let gen_response =
  let open QCheck.Gen in
  frequency
    [
      (1, return Wire.Pong);
      (2, list_size (int_bound 8) gen_entry_info >>= fun l -> return (Wire.Ls_reply l));
      (3, gen_float >>= fun x -> return (Wire.Estimate_reply x));
      ( 3,
        list_size (int_bound 16) gen_float >>= fun l ->
        return (Wire.Batch_reply (Array.of_list l)) );
      (1, return Wire.Invalidated);
      ( 2,
        int_bound 100000 >>= fun sampled ->
        int_bound 1000000 >>= fun seen -> return (Wire.Inserted { sampled; seen }) );
      (2, gen_float >>= fun x -> return (Wire.Observed x));
      ( 2,
        gen_error_code >>= fun code ->
        gen_str >>= fun message -> return (Wire.Error_reply { code; message }) );
    ]

let request_arb = QCheck.make gen_request ~print:Wire.request_to_string
let response_arb = QCheck.make gen_response ~print:Wire.response_to_string

let qcheck_request_round_trip =
  QCheck.Test.make ~count:500 ~name:"request encode/decode round trip (bit-level)"
    request_arb (fun req ->
      match Wire.decode_request (Wire.encode_request req) with
      | Ok req' -> Wire.equal_request req req'
      | Error _ -> false)

let qcheck_response_round_trip =
  QCheck.Test.make ~count:500 ~name:"response encode/decode round trip (bit-level)"
    response_arb (fun resp ->
      match Wire.decode_response (Wire.encode_response resp) with
      | Ok resp' -> Wire.equal_response resp resp'
      | Error _ -> false)

let qcheck_decode_total =
  QCheck.Test.make ~count:1000 ~name:"decode is total on arbitrary bytes"
    QCheck.(string_gen QCheck.Gen.char)
    (fun s ->
      (* Any outcome is fine; raising is the only failure. *)
      ignore (Wire.decode_request s);
      ignore (Wire.decode_response s);
      true)

let qcheck_truncation_is_error =
  QCheck.Test.make ~count:200 ~name:"every strict prefix of an encoding is an Error"
    request_arb (fun req ->
      let payload = Wire.encode_request req in
      let ok = ref true in
      for len = 0 to String.length payload - 1 do
        match Wire.decode_request (String.sub payload 0 len) with
        | Error _ -> ()
        | Ok _ -> ok := false
      done;
      !ok)

(* The serving engine reads through [decode_request_scratch]; its
   contract is bit-for-bit agreement with [decode_request] on every
   input — same accept/reject decision, same field values, same error
   message. *)
let scratch_agrees payload =
  let sc = Wire.create_scratch () in
  let buf = Bytes.of_string payload in
  match (Wire.decode_request payload, Wire.decode_request_scratch buf ~len:(Bytes.length buf) sc) with
  | Ok (Wire.Estimate { entry; a; b; spec }), Ok Wire.Fast_estimate ->
    String.equal sc.Wire.s_entry entry
    && String.equal sc.Wire.s_spec spec
    && Int64.bits_of_float sc.Wire.s_q.Wire.sa = Int64.bits_of_float a
    && Int64.bits_of_float sc.Wire.s_q.Wire.sb = Int64.bits_of_float b
  | Ok (Wire.Estimate _), _ -> false
  | Ok req, Ok (Wire.Decoded req') -> Wire.equal_request req req'
  | Error m, Error m' -> String.equal m m'
  | _ -> false

let qcheck_scratch_decode_agrees =
  QCheck.Test.make ~count:500 ~name:"scratch decode agrees with decode_request"
    request_arb (fun req -> scratch_agrees (Wire.encode_request req))

let qcheck_scratch_decode_agrees_on_noise =
  QCheck.Test.make ~count:1000 ~name:"scratch decode agrees on arbitrary bytes"
    QCheck.(string_gen QCheck.Gen.char)
    scratch_agrees

let test_scratch_interning () =
  (* Re-decoding a frame for the same entry must reuse the previous
     string values physically — that reuse is what makes the steady-state
     read path allocation-free (the micro gate's wire.decode row). *)
  let payload =
    Wire.encode_request (Wire.Estimate { entry = "orders/amount"; a = 1.0; b = 2.0; spec = "ewh:16" })
  in
  let buf = Bytes.of_string payload in
  let len = Bytes.length buf in
  let sc = Wire.create_scratch () in
  (match Wire.decode_request_scratch buf ~len sc with
  | Ok Wire.Fast_estimate -> ()
  | _ -> Alcotest.fail "first decode rejected");
  let entry1 = sc.Wire.s_entry and spec1 = sc.Wire.s_spec in
  (match Wire.decode_request_scratch buf ~len sc with
  | Ok Wire.Fast_estimate -> ()
  | _ -> Alcotest.fail "second decode rejected");
  check Alcotest.bool "entry string reused physically" true (sc.Wire.s_entry == entry1);
  check Alcotest.bool "spec string reused physically" true (sc.Wire.s_spec == spec1)

let test_wire_malformed_cases () =
  let expect_error label s =
    match Wire.decode_request s with
    | Error _ -> ()
    | Ok req -> Alcotest.failf "%s decoded to %s" label (Wire.request_to_string req)
  in
  expect_error "empty payload" "";
  expect_error "version only" "\x03";
  (* Valid ping is version 3, opcode 0x01. *)
  (match Wire.decode_request "\x03\x01" with
  | Ok Wire.Ping -> ()
  | other ->
    Alcotest.failf "ping payload rejected: %s"
      (match other with
      | Ok r -> Wire.request_to_string r
      | Error m -> m));
  expect_error "old protocol version" "\x02\x01";
  expect_error "future protocol version" "\x04\x01";
  expect_error "unknown opcode" "\x03\x7f";
  expect_error "trailing bytes" "\x03\x01\x00";
  (* Batch count far beyond what the frame could carry. *)
  expect_error "implausible array count" "\x03\x04\xff\xff\xff\xff";
  (* Insert value count far beyond what the frame could carry. *)
  expect_error "implausible insert count" "\x03\x06\x00\x00\xff\xff\xff\xff";
  (* String length past the end of the payload. *)
  expect_error "truncated string" "\x03\x05\x00\x10ab";
  (* Rect frame cut off inside its fourth coordinate. *)
  expect_error "truncated rect"
    "\x03\x08\x00\x01a\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00";
  (* Join frame with an out-of-range predicate code. *)
  expect_error "unknown join predicate" "\x03\x09\x00\x01a\x07"

(* ---------------- Engine + Client ---------------- *)

let test_basic_requests () =
  with_server (fun client _address dir ->
      or_fail_client (Client.ping client);
      let entries = or_fail_client (Client.ls client) in
      check (Alcotest.list Alcotest.string) "ls names" [ "orders/amount"; "users/age" ]
        (List.map (fun (e : Wire.entry_info) -> e.Wire.name) entries);
      check (Alcotest.list Alcotest.string) "ls specs" [ "ewh:16"; "sampling" ]
        (List.map (fun (e : Wire.entry_info) -> e.Wire.spec) entries);
      (* Served estimates are bit-identical to direct Service.answer. *)
      let direct_svc, _ = Service.open_dir dir in
      let requests =
        [| ("orders/amount", 3.0, 40.0); ("users/age", 0.0, 30.5); ("users/age", 59.0, 60.0) |]
      in
      let direct = Service.answer direct_svc requests in
      Array.iteri
        (fun i (entry, a, b) ->
          let served = or_fail_client (Client.estimate client ~entry ~a ~b) in
          check Alcotest.bool
            (Printf.sprintf "estimate %d bit-identical" i)
            true
            (Int64.bits_of_float served = Int64.bits_of_float direct.(i)))
        requests;
      let batch = or_fail_client (Client.batch_estimate client requests) in
      check Alcotest.bool "batch bit-identical" true
        (Array.for_all2 (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y) batch direct);
      (* Typed errors for bad addressing. *)
      (match Client.estimate client ~entry:"nope" ~a:0.0 ~b:1.0 with
      | Error (Client.Server (Wire.Unknown_entry, _)) -> ()
      | other ->
        Alcotest.failf "unknown entry: %s"
          (match other with
          | Ok v -> Printf.sprintf "Ok %g" v
          | Error e -> Client.error_to_string e));
      (match Client.estimate ~spec:"sampling" client ~entry:"orders/amount" ~a:0.0 ~b:1.0 with
      | Error (Client.Server (Wire.Spec_mismatch, _)) -> ()
      | _ -> Alcotest.fail "spec pin did not trip");
      let pinned =
        or_fail_client (Client.estimate ~spec:"ewh:16" client ~entry:"orders/amount" ~a:0.0 ~b:1.0)
      in
      check Alcotest.bool "matching spec pin answers" true (Float.is_finite pinned);
      (* Invalidate round-trips and shows in ls. *)
      or_fail_client (Client.invalidate client "users/age");
      let entries = or_fail_client (Client.ls client) in
      check Alcotest.bool "invalidate marks stale" true
        (List.exists (fun (e : Wire.entry_info) -> e.Wire.name = "users/age" && e.Wire.stale) entries);
      (match Client.invalidate client "ghost" with
      | Error (Client.Server (Wire.Unknown_entry, _)) -> ()
      | _ -> Alcotest.fail "invalidate of unknown entry not typed");
      (* Adaptive ops against a non-adaptive server are typed refusals,
         not protocol errors. *)
      (match Client.insert client ~entry:"users/age" [| 30.0 |] with
      | Error (Client.Server (Wire.Bad_request, _)) -> ()
      | Ok _ -> Alcotest.fail "insert accepted by a non-adaptive server"
      | Error e -> Alcotest.failf "expected bad_request, got %s" (Client.error_to_string e));
      match Client.observe client ~entry:"users/age" ~a:0.0 ~b:30.0 ~actual:0.5 with
      | Error (Client.Server (Wire.Bad_request, _)) -> ()
      | Ok _ -> Alcotest.fail "observe accepted by a non-adaptive server"
      | Error e -> Alcotest.failf "expected bad_request, got %s" (Client.error_to_string e))

let test_tcp_round_trip () =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  build_two svc;
  let engine = Engine.create ~services:[| svc |] (Wire.Tcp { host = "127.0.0.1"; port = 0 }) in
  let port = Option.get (Engine.bound_port engine) in
  let server = Thread.create Engine.serve engine in
  Fun.protect
    ~finally:(fun () ->
      Engine.initiate_drain engine;
      Thread.join server)
    (fun () ->
      let client =
        or_fail_client (Client.connect (Wire.Tcp { host = "127.0.0.1"; port }))
      in
      let x = or_fail_client (Client.estimate client ~entry:"users/age" ~a:0.0 ~b:30.5) in
      let direct_svc, _ = Service.open_dir dir in
      let direct = Service.answer direct_svc [| ("users/age", 0.0, 30.5) |] in
      check Alcotest.bool "tcp estimate bit-identical" true
        (Int64.bits_of_float x = Int64.bits_of_float direct.(0));
      Client.close client)

let test_malformed_payload_keeps_connection () =
  with_server (fun client address _dir ->
      ignore client;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Wire.sockaddr_of_address address);
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* A well-framed but malformed payload: typed bad_request, and the
             connection keeps serving. *)
          Wire.write_frame fd "\x01\x7f";
          (match Wire.read_frame fd with
          | Ok (Some payload) -> (
            match Wire.decode_response payload with
            | Ok (Wire.Error_reply { code = Wire.Bad_request; _ }) -> ()
            | other ->
              Alcotest.failf "expected bad_request, got %s"
                (match other with
                | Ok r -> Wire.response_to_string r
                | Error m -> m))
          | _ -> Alcotest.fail "no reply to malformed payload");
          Wire.write_frame fd (Wire.encode_request Wire.Ping);
          match Wire.read_frame fd with
          | Ok (Some payload) -> (
            match Wire.decode_response payload with
            | Ok Wire.Pong -> ()
            | _ -> Alcotest.fail "connection did not survive a malformed payload")
          | _ -> Alcotest.fail "connection did not survive a malformed payload"))

(* Regression: an empty batch is a legal frame; it must answer an empty
   reply immediately (it once enqueued a zero-length job the dispatcher
   never completed, parking the connection forever and leaking its
   admission slot) and leave the connection serving. *)
let test_empty_batch () =
  with_server
    ~config:{ Engine.default_config with Engine.max_inflight = 1 }
    (fun client _address dir ->
      let answers = or_fail_client (Client.batch_estimate client [||]) in
      check Alcotest.int "empty batch answers empty" 0 (Array.length answers);
      (* No admission slot leaked: with max_inflight = 1 a real query
         still runs, and it answers bit-identically. *)
      let direct_svc, _ = Service.open_dir dir in
      let direct = Service.answer direct_svc [| ("users/age", 0.0, 30.5) |] in
      let x = or_fail_client (Client.estimate client ~entry:"users/age" ~a:0.0 ~b:30.5) in
      check Alcotest.bool "connection still serves, bit-identical" true
        (Int64.bits_of_float x = Int64.bits_of_float direct.(0)))

let test_overload_backpressure () =
  (* max_inflight = 0: admission control refuses every catalog-bound
     request with the typed reply, while ping still answers. *)
  with_server
    ~config:{ Engine.default_config with Engine.max_inflight = 0 }
    (fun client _address _dir ->
      or_fail_client (Client.ping client);
      match Client.estimate client ~entry:"users/age" ~a:0.0 ~b:1.0 with
      | Error (Client.Server (Wire.Overloaded, _)) -> ()
      | Ok _ -> Alcotest.fail "estimate admitted past max_inflight=0"
      | Error e -> Alcotest.failf "expected overloaded, got %s" (Client.error_to_string e))

let test_deadline_timeout () =
  (* The dispatcher pauses longer than the deadline, so the request is
     expired (typed) instead of evaluated. *)
  with_server
    ~config:
      { Engine.default_config with Engine.deadline_s = 0.05; dispatch_delay_s = 0.2 }
    (fun client _address _dir ->
      match Client.estimate client ~entry:"users/age" ~a:0.0 ~b:1.0 with
      | Error (Client.Server (Wire.Timeout, _)) -> ()
      | Ok _ -> Alcotest.fail "request evaluated past its deadline"
      | Error e -> Alcotest.failf "expected timeout, got %s" (Client.error_to_string e))

let test_loadgen_32_connections () =
  with_server (fun client address dir ->
      let entries = or_fail_client (Client.ls client) in
      let requests = Loadgen.synthetic_requests ~entries ~count:640 ~seed:11L in
      let report = Loadgen.run ~connections:32 ~address requests in
      check Alcotest.int "32 connections" 32 report.Loadgen.connections;
      check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "zero errors" []
        report.Loadgen.errors;
      check Alcotest.int "every query answered" 640 report.Loadgen.ok;
      check Alcotest.bool "percentiles ordered" true
        (report.Loadgen.p50_ms <= report.Loadgen.p95_ms
        && report.Loadgen.p95_ms <= report.Loadgen.p99_ms
        && report.Loadgen.p99_ms <= report.Loadgen.max_ms);
      check Alcotest.bool "throughput positive" true (report.Loadgen.throughput_qps > 0.0);
      (* Acceptance gate: every served answer bit-identical to a direct
         Catalog.Service.answer on the same snapshot dir, whatever the
         interleaving and batching across 32 connections. *)
      let direct_svc, _ = Service.open_dir dir in
      let direct = Service.answer direct_svc requests in
      Array.iteri
        (fun i served ->
          if Int64.bits_of_float served <> Int64.bits_of_float direct.(i) then
            Alcotest.failf "request %d: served %h, direct %h" i served direct.(i))
        report.Loadgen.answers;
      (* Batched frames hit the same answers. *)
      let batched = Loadgen.run ~batch:8 ~connections:32 ~address requests in
      check Alcotest.int "batched all answered" 640 batched.Loadgen.ok;
      Array.iteri
        (fun i served ->
          if Int64.bits_of_float served <> Int64.bits_of_float direct.(i) then
            Alcotest.failf "batched request %d: served %h, direct %h" i served direct.(i))
        batched.Loadgen.answers)

(* Satellite: kill-and-reconnect.  Loadgen traffic is in flight when
   SIGTERM lands; the drain must answer everything already admitted,
   refuse later requests with the typed draining reply, refuse new
   connects once the listener closes, and a restarted server over the
   same snapshot dir must serve bit-identical answers. *)
let test_sigterm_drain_and_reconnect () =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  build_two svc;
  let path = sock_path () in
  let address = Wire.Unix_socket path in
  let config =
    (* Slow dispatch so requests are verifiably mid-flight at SIGTERM. *)
    { Engine.default_config with Engine.dispatch_delay_s = 0.15; tick_s = 0.005 }
  in
  let engine = Engine.create ~config ~services:[| svc |] address in
  Engine.install_sigterm engine;
  let server = Thread.create Engine.serve engine in
  let probe = ("users/age", 0.0, 30.5) in
  let in_flight = ref (Error (Client.Protocol "never ran")) in
  let client_a = or_fail_client (Client.connect address) in
  let client_b = or_fail_client (Client.connect address) in
  (* Background loadgen traffic during the kill. *)
  let traffic_requests =
    Array.init 64 (fun i -> ("orders/amount", 1.0 +. float_of_int (i mod 13), 50.0))
  in
  let traffic = ref None in
  let traffic_thread =
    Thread.create
      (fun () -> traffic := Some (Loadgen.run ~connections:4 ~address traffic_requests))
      ()
  in
  let flight_thread =
    Thread.create
      (fun () ->
        let entry, a, b = probe in
        in_flight := Client.estimate client_a ~entry ~a ~b)
      ()
  in
  Thread.delay 0.05;
  (* SIGTERM mid-flight, through the real signal path. *)
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Thread.delay 0.05;
  check Alcotest.bool "drain initiated by SIGTERM" true (Engine.draining engine);
  (* Requests arriving during the drain get the typed refusal. *)
  (match Client.estimate client_b ~entry:"users/age" ~a:0.0 ~b:1.0 with
  | Error (Client.Server (Wire.Draining, _)) -> ()
  | Ok _ -> Alcotest.fail "request admitted during drain"
  | Error e -> Alcotest.failf "expected draining, got %s" (Client.error_to_string e));
  Thread.join flight_thread;
  Thread.join traffic_thread;
  Thread.join server;
  (* The in-flight request drained to a real answer, not an error. *)
  let direct_svc, _ = Service.open_dir dir in
  let expected = Service.answer direct_svc [| probe |] in
  (match !in_flight with
  | Ok x ->
    check Alcotest.bool "in-flight answer bit-identical" true
      (Int64.bits_of_float x = Int64.bits_of_float expected.(0))
  | Error e -> Alcotest.failf "in-flight request not drained: %s" (Client.error_to_string e));
  (* Traffic answered before the drain is bit-identical; later queries
     failed with the typed draining class only. *)
  let traffic_expected = Service.answer direct_svc traffic_requests in
  (match !traffic with
  | None -> Alcotest.fail "loadgen traffic never finished"
  | Some r ->
    Array.iteri
      (fun i served ->
        if not (Float.is_nan served) then
          check Alcotest.bool
            (Printf.sprintf "traffic answer %d bit-identical" i)
            true
            (Int64.bits_of_float served = Int64.bits_of_float traffic_expected.(i)))
      r.Loadgen.answers;
    List.iter
      (fun (cls, _) ->
        if cls <> "draining" then Alcotest.failf "unexpected traffic error class %s" cls)
      r.Loadgen.errors);
  check Alcotest.int "drained with no protocol errors" 0
    (Engine.stats engine).Engine.protocol_errors;
  (* The socket is gone: new connects are refused. *)
  check Alcotest.bool "socket removed" false (Sys.file_exists path);
  (match
     Client.connect
       ~config:{ Client.default_config with Client.retries = 0; connect_timeout_s = 0.2 }
       address
   with
  | Error (Client.Transport _) -> ()
  | Error e -> Alcotest.failf "expected transport failure, got %s" (Client.error_to_string e)
  | Ok _ -> Alcotest.fail "connected to a drained server");
  Client.close client_a;
  Client.close client_b;
  (* Restart over the same snapshot dir: identical answers. *)
  let svc2, _ = Service.open_dir dir in
  let engine2 = Engine.create ~services:[| svc2 |] address in
  let server2 = Thread.create Engine.serve engine2 in
  Fun.protect
    ~finally:(fun () ->
      Engine.initiate_drain engine2;
      Thread.join server2)
    (fun () ->
      let client = or_fail_client (Client.connect address) in
      let entry, a, b = probe in
      let x = or_fail_client (Client.estimate client ~entry ~a ~b) in
      check Alcotest.bool "restarted server serves identical answers" true
        (Int64.bits_of_float x = Int64.bits_of_float expected.(0));
      Client.close client)

(* ---------------- sharded engine ---------------- *)

let entry_names =
  [ "orders/amount"; "users/age"; "events/ts"; "fleet/fuel"; "sensors/temp" ]

let build_many svc =
  List.iter
    (fun name ->
      ignore
        (or_fail (Service.build svc ~name ~spec:"ewh:16" ~domain:domain_a ~sample:sample_a)))
    entry_names

let copy_flat_dir src dst =
  Array.iter
    (fun f ->
      let ic = open_in_bin (Filename.concat src f) in
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      close_in ic;
      let oc = open_out_bin (Filename.concat dst f) in
      output_string oc data;
      close_out oc)
    (Sys.readdir src)

(* Tentpole acceptance: for arbitrary batch shapes, the sharded router's
   split-and-reassemble serves exactly the bytes the single-shard engine
   serves — same entries, same snapshots (byte-copied), [shards = 1] vs
   [shards = 3].  Order preservation falls out of bit-identity: a
   reassembly that permuted replies would mismatch slot-for-slot. *)
let test_sharded_split_reassemble () =
  let dir1 = fresh_dir () in
  let svc1, _ = Service.open_dir dir1 in
  build_many svc1;
  let dir3 = fresh_dir () in
  copy_flat_dir dir1 dir3;
  let services, skipped = Service.open_sharded ~shards:3 dir3 in
  check Alcotest.int "sharded open skips nothing" 0 (List.length skipped);
  check Alcotest.int "three shards" 3 (Array.length services);
  let addr1 = Wire.Unix_socket (sock_path ()) in
  let addr3 = Wire.Unix_socket (sock_path ()) in
  let engine1 = Engine.create ~services:[| svc1 |] addr1 in
  let engine3 = Engine.create ~services addr3 in
  let server1 = Thread.create Engine.serve engine1 in
  let server3 = Thread.create Engine.serve engine3 in
  Fun.protect
    ~finally:(fun () ->
      Engine.initiate_drain engine1;
      Engine.initiate_drain engine3;
      Thread.join server1;
      Thread.join server3)
    (fun () ->
      let client1 = or_fail_client (Client.connect addr1) in
      let client3 = or_fail_client (Client.connect addr3) in
      Fun.protect
        ~finally:(fun () ->
          Client.close client1;
          Client.close client3)
        (fun () ->
          (* The five entries must actually span more than one shard, or
             the router's multi-shard path goes untested. *)
          let owners =
            List.sort_uniq compare
              (List.map (Service.shard_of_name ~shards:3) entry_names)
          in
          check Alcotest.bool "entries span multiple shards" true (List.length owners > 1);
          let gen_batch =
            QCheck.Gen.(
              list_size (int_bound 40)
                (triple (oneofl entry_names)
                   (float_bound_inclusive 96.5)
                   (float_bound_inclusive 96.5))
              >>= fun l ->
              return
                (Array.of_list
                   (List.map (fun (n, x, y) -> if x <= y then (n, x, y) else (n, y, x)) l)))
          in
          let print_batch b =
            String.concat ";"
              (Array.to_list (Array.map (fun (n, a, b) -> Printf.sprintf "%s[%h,%h]" n a b) b))
          in
          let prop batch =
            let r1 = Client.batch_estimate client1 batch in
            let r3 = Client.batch_estimate client3 batch in
            match (r1, r3) with
            | Ok a1, Ok a3 ->
              Array.length a1 = Array.length a3
              && Array.for_all2
                   (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                   a1 a3
            | Error e, _ | _, Error e ->
              QCheck.Test.fail_reportf "batch errored: %s" (Client.error_to_string e)
          in
          QCheck.Test.check_exn
            (QCheck.Test.make ~count:60
               ~name:"sharded batch replies bit-identical to shards=1"
               (QCheck.make gen_batch ~print:print_batch)
               prop);
          (* Single estimates agree too, and the sharded stats show the
             work spread across shards. *)
          List.iter
            (fun entry ->
              let x1 = or_fail_client (Client.estimate client1 ~entry ~a:3.0 ~b:40.0) in
              let x3 = or_fail_client (Client.estimate client3 ~entry ~a:3.0 ~b:40.0) in
              check Alcotest.bool (entry ^ " single estimate bit-identical") true
                (Int64.bits_of_float x1 = Int64.bits_of_float x3))
            entry_names;
          let s = Engine.stats engine3 in
          check Alcotest.int "stats report 3 shards" 3 s.Engine.shards;
          let per_shard_sum =
            Array.fold_left (fun n ps -> n + ps.Engine.shard_answered) 0 s.Engine.per_shard
          in
          check Alcotest.int "per-shard answered sums to total" s.Engine.answered per_shard_sum;
          check Alcotest.bool "more than one shard answered queries" true
            (Array.length
               (Array.of_seq
                  (Seq.filter
                     (fun ps -> ps.Engine.shard_answered > 0)
                     (Array.to_seq s.Engine.per_shard)))
            > 1)))

(* Satellite: killing one shard's dispatcher degrades that shard to the
   typed [Internal] refusal while the others keep serving bit-identical
   answers, and a drain still completes. *)
let test_kill_shard_dispatcher () =
  let dir = fresh_dir () in
  let build_svc, _ = Service.open_dir dir in
  build_many build_svc;
  let services, _ = Service.open_sharded ~shards:3 dir in
  let address = Wire.Unix_socket (sock_path ()) in
  let engine = Engine.create ~services address in
  let server = Thread.create Engine.serve engine in
  Fun.protect
    ~finally:(fun () ->
      Engine.initiate_drain engine;
      Thread.join server)
    (fun () ->
      let client = or_fail_client (Client.connect address) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let victim_entry = List.hd entry_names in
          let victim = Service.shard_of_name ~shards:3 victim_entry in
          let healthy_entry =
            List.find
              (fun n -> Service.shard_of_name ~shards:3 n <> victim)
              entry_names
          in
          (* Answers before the kill, for the bit-identity check after. *)
          let before =
            or_fail_client (Client.estimate client ~entry:healthy_entry ~a:3.0 ~b:40.0)
          in
          Engine.kill_shard_dispatcher engine victim;
          (* The victim's entries get the typed internal refusal... *)
          (match Client.estimate client ~entry:victim_entry ~a:3.0 ~b:40.0 with
          | Error (Client.Server (Wire.Internal, msg)) ->
            check Alcotest.bool "refusal names the shard" true
              (let needle = Printf.sprintf "shard %d" victim in
               let len = String.length needle in
               let found = ref false in
               for i = 0 to String.length msg - len do
                 if String.sub msg i len = needle then found := true
               done;
               !found)
          | Ok _ -> Alcotest.fail "dead shard answered an estimate"
          | Error e -> Alcotest.failf "expected internal, got %s" (Client.error_to_string e));
          (* ...a batch touching the dead shard errors as a whole... *)
          (match
             Client.batch_estimate client
               [| (healthy_entry, 3.0, 40.0); (victim_entry, 3.0, 40.0) |]
           with
          | Error (Client.Server (Wire.Internal, _)) -> ()
          | Ok _ -> Alcotest.fail "batch touching the dead shard answered"
          | Error e -> Alcotest.failf "expected internal, got %s" (Client.error_to_string e));
          (* ...and the surviving shards keep serving the same bits. *)
          let after =
            or_fail_client (Client.estimate client ~entry:healthy_entry ~a:3.0 ~b:40.0)
          in
          check Alcotest.bool "healthy shard bit-identical after the kill" true
            (Int64.bits_of_float before = Int64.bits_of_float after);
          or_fail_client (Client.ping client)));
  (* Fun.protect's drain above returning at all is the drain-completes
     assertion; killing it twice must be harmless. *)
  Engine.kill_shard_dispatcher engine 0

(* ---------------- adaptive serving ---------------- *)

(* Tentpole acceptance, end to end: an adaptive engine accepts insert
   and observe frames, routes them through the shard dispatcher into the
   reservoir and the feedback histogram, swaps a rebuilt summary in the
   background, and still drains cleanly.  Typed refusals for bad
   adaptive traffic ride along. *)
let test_adaptive_insert_observe_e2e () =
  let dir = fresh_dir () in
  let svc, _ =
    Service.open_dir
      ~config:{ Service.default_config with Service.rebuild_after_inserts = 100 }
      dir
  in
  build_two svc;
  Service.enable_adaptive svc;
  let address = Wire.Unix_socket (sock_path ()) in
  let engine = Engine.create ~services:[| svc |] address in
  let server = Thread.create Engine.serve engine in
  Fun.protect
    ~finally:(fun () ->
      Engine.initiate_drain engine;
      Thread.join server)
    (fun () ->
      let client = or_fail_client (Client.connect address) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          (* Inserts are acknowledged with reservoir accounting. *)
          let values = Array.init 200 (fun i -> float_of_int (i mod 61)) in
          let sampled, seen = or_fail_client (Client.insert client ~entry:"users/age" values) in
          check Alcotest.int "seen counts every offered value" 200 seen;
          check Alcotest.bool "reservoir retained some values" true
            (sampled > 0 && sampled <= 200);
          (* 200 inserts tripped the 100-insert budget: a background
             rebuild must swap in without any manual rebuild call. *)
          let deadline = Unix.gettimeofday () +. 5.0 in
          while
            (Engine.stats engine).Engine.swaps = 0 && Unix.gettimeofday () < deadline
          do
            Thread.delay 0.01
          done;
          check Alcotest.bool "background rebuild swapped a summary in" true
            ((Engine.stats engine).Engine.swaps > 0);
          (* The swapped summary still serves sane estimates. *)
          let x = or_fail_client (Client.estimate client ~entry:"users/age" ~a:0.0 ~b:30.5) in
          check Alcotest.bool "estimate after swap in [0,1]" true
            (Float.is_finite x && x >= 0.0 && x <= 1.0);
          (* Observes refine toward the fed-back truth. *)
          let r1 =
            or_fail_client (Client.observe client ~entry:"users/age" ~a:0.0 ~b:30.0 ~actual:0.9)
          in
          let r2 =
            or_fail_client (Client.observe client ~entry:"users/age" ~a:0.0 ~b:30.0 ~actual:0.9)
          in
          check Alcotest.bool "refined estimates in [0,1]" true
            (r1 >= 0.0 && r1 <= 1.0 && r2 >= 0.0 && r2 <= 1.0);
          check Alcotest.bool "repeat observation converges toward actual" true
            (Float.abs (r2 -. 0.9) <= Float.abs (r1 -. 0.9) +. 1e-9);
          (* Typed refusals: unknown entry, non-finite value, actual
             outside [0, 1]. *)
          (match Client.insert client ~entry:"ghost" [| 1.0 |] with
          | Error (Client.Server (Wire.Unknown_entry, _)) -> ()
          | Ok _ -> Alcotest.fail "insert into unknown entry accepted"
          | Error e -> Alcotest.failf "expected unknown_entry, got %s" (Client.error_to_string e));
          (match Client.insert client ~entry:"users/age" [| Float.nan |] with
          | Error (Client.Server (Wire.Bad_request, _)) -> ()
          | Ok _ -> Alcotest.fail "non-finite insert accepted"
          | Error e -> Alcotest.failf "expected bad_request, got %s" (Client.error_to_string e));
          (match Client.observe client ~entry:"users/age" ~a:0.0 ~b:1.0 ~actual:1.5 with
          | Error (Client.Server (Wire.Bad_request, _)) -> ()
          | Ok _ -> Alcotest.fail "out-of-range actual accepted"
          | Error e -> Alcotest.failf "expected bad_request, got %s" (Client.error_to_string e))));
  (* The drain above completing with adaptive maintenance enabled (and
     possibly a rebuild in flight) is itself the adaptive-drain
     assertion. *)
  check Alcotest.bool "drained" true (Engine.draining engine)

(* ---------------- rect and join serving ---------------- *)

let rect_points =
  Array.init 600 (fun i ->
      (float_of_int (i * 7 mod 97), float_of_int (i * i mod 61)))

let join_r = Array.init 300 (fun i -> float_of_int (i * 5 mod 89))
let join_s = Array.init 250 (fun i -> float_of_int (i * 11 mod 89))

(* One entry of each kind, so mixed workloads and kind-mismatch errors
   are exercised against the same catalog. *)
let build_three_kinds svc =
  ignore
    (or_fail
       (Service.build svc ~name:"orders/amount" ~spec:"ewh:16" ~domain:domain_a
          ~sample:sample_a));
  ignore
    (or_fail
       (Service.build_rect svc ~name:"orders/amount_x_qty" ~spec:"hist2d:16"
          ~domain_x:(-0.5, 96.5) ~domain_y:(-0.5, 60.5) ~points:rect_points));
  ignore
    (or_fail
       (Service.build_join svc ~name:"orders_join_users" ~spec:"edh:24"
          ~domain:(-0.5, 88.5) ~n_r:3000 ~n_s:2500 ~sample_r:join_r
          ~sample_s:join_s))

(* Tentpole acceptance: served rectangle and join answers are
   bit-identical to the direct Catalog.Service calls (which are aliases
   of Multidim.Hist2d.selectivity / Join.Ineqjoin.estimate), kind
   mismatches are typed Bad_request, unknown entries typed
   Unknown_entry, and ls reports kind and domain_y. *)
let test_rect_join_requests () =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  build_three_kinds svc;
  let address = Wire.Unix_socket (sock_path ()) in
  let engine = Engine.create ~services:[| svc |] address in
  let server = Thread.create Engine.serve engine in
  Fun.protect
    ~finally:(fun () ->
      Engine.initiate_drain engine;
      Thread.join server)
    (fun () ->
      let client = or_fail_client (Client.connect address) in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let direct_svc, _ = Service.open_dir dir in
          (* Rectangles, including a degenerate zero-width one. *)
          List.iter
            (fun (x_lo, x_hi, y_lo, y_hi) ->
              let served =
                or_fail_client
                  (Client.estimate_rect client ~entry:"orders/amount_x_qty" ~x_lo
                     ~x_hi ~y_lo ~y_hi)
              in
              let direct =
                or_fail
                  (Service.answer_rect direct_svc ~name:"orders/amount_x_qty"
                     ~x_lo ~x_hi ~y_lo ~y_hi)
              in
              check Alcotest.bool
                (Printf.sprintf "rect [%g,%g]x[%g,%g] bit-identical" x_lo x_hi
                   y_lo y_hi)
                true
                (Int64.bits_of_float served = Int64.bits_of_float direct))
            [
              (3.0, 40.0, 5.0, 30.0);
              (0.0, 96.0, 0.0, 60.0);
              (17.0, 17.0, 4.0, 4.0);
              (50.0, 10.0, 0.0, 60.0);
            ];
          (* Joins under all three predicates. *)
          List.iter
            (fun pred ->
              let served =
                or_fail_client
                  (Client.estimate_join client ~entry:"orders_join_users" ~pred)
              in
              let direct =
                or_fail
                  (Service.answer_join direct_svc ~name:"orders_join_users" ~pred)
              in
              check Alcotest.bool
                (Selest.Stored.join_pred_to_string pred ^ " join bit-identical")
                true
                (Int64.bits_of_float served = Int64.bits_of_float direct))
            [ Selest.Stored.Join_eq; Selest.Stored.Join_lt; Selest.Stored.Join_le ];
          (* Kind mismatches are typed Bad_request, not Unknown_entry. *)
          (match
             Client.estimate_rect client ~entry:"orders/amount" ~x_lo:0.0
               ~x_hi:1.0 ~y_lo:0.0 ~y_hi:1.0
           with
          | Error (Client.Server (Wire.Bad_request, _)) -> ()
          | Ok _ -> Alcotest.fail "rect query answered by a range entry"
          | Error e ->
            Alcotest.failf "expected bad_request, got %s" (Client.error_to_string e));
          (match
             Client.estimate_join client ~entry:"orders/amount_x_qty"
               ~pred:Selest.Stored.Join_eq
           with
          | Error (Client.Server (Wire.Bad_request, _)) -> ()
          | Ok _ -> Alcotest.fail "join query answered by a rect entry"
          | Error e ->
            Alcotest.failf "expected bad_request, got %s" (Client.error_to_string e));
          (match
             Client.estimate_rect client ~entry:"ghost" ~x_lo:0.0 ~x_hi:1.0
               ~y_lo:0.0 ~y_hi:1.0
           with
          | Error (Client.Server (Wire.Unknown_entry, _)) -> ()
          | Ok _ -> Alcotest.fail "rect query against unknown entry answered"
          | Error e ->
            Alcotest.failf "expected unknown_entry, got %s" (Client.error_to_string e));
          (match
             Client.estimate_join client ~entry:"ghost" ~pred:Selest.Stored.Join_lt
           with
          | Error (Client.Server (Wire.Unknown_entry, _)) -> ()
          | Ok _ -> Alcotest.fail "join query against unknown entry answered"
          | Error e ->
            Alcotest.failf "expected unknown_entry, got %s" (Client.error_to_string e));
          (* Ls reports the kinds and the rect y-domain. *)
          let entries = or_fail_client (Client.ls client) in
          let find n = List.find (fun (e : Wire.entry_info) -> e.Wire.name = n) entries in
          check Alcotest.bool "range kind" true
            ((find "orders/amount").Wire.kind = Selest.Stored.Range_kind);
          check Alcotest.bool "rect kind" true
            ((find "orders/amount_x_qty").Wire.kind = Selest.Stored.Rect_kind);
          check Alcotest.bool "join kind" true
            ((find "orders_join_users").Wire.kind = Selest.Stored.Join_kind);
          check Alcotest.bool "rect entry carries domain_y" true
            ((find "orders/amount_x_qty").Wire.domain_y = Some (-0.5, 60.5));
          check Alcotest.bool "range entry has no domain_y" true
            ((find "orders/amount").Wire.domain_y = None)))

(* Satellite acceptance: a mixed range/rect/join workload served at
   shards = 1 and shards = 4 over byte-copied snapshot dirs answers
   bit-identically, and run_mixed reports per-kind latency groups. *)
let test_mixed_sharded_bit_identity () =
  let dir1 = fresh_dir () in
  let svc1, _ = Service.open_dir dir1 in
  build_three_kinds svc1;
  let dir4 = fresh_dir () in
  copy_flat_dir dir1 dir4;
  let services4, skipped = Service.open_sharded ~shards:4 dir4 in
  check Alcotest.int "sharded open skips nothing" 0 (List.length skipped);
  let addr1 = Wire.Unix_socket (sock_path ()) in
  let addr4 = Wire.Unix_socket (sock_path ()) in
  let engine1 = Engine.create ~services:[| svc1 |] addr1 in
  let engine4 = Engine.create ~services:services4 addr4 in
  let server1 = Thread.create Engine.serve engine1 in
  let server4 = Thread.create Engine.serve engine4 in
  Fun.protect
    ~finally:(fun () ->
      Engine.initiate_drain engine1;
      Engine.initiate_drain engine4;
      Thread.join server1;
      Thread.join server4)
    (fun () ->
      let client = or_fail_client (Client.connect addr1) in
      let entries = or_fail_client (Client.ls client) in
      Client.close client;
      let requests = Loadgen.synthetic_mixed_requests ~entries ~count:240 ~seed:17L in
      check Alcotest.bool "workload mixes all three kinds" true
        (let kinds =
           List.sort_uniq compare
             (Array.to_list (Array.map Loadgen.mixed_kind requests))
         in
         kinds = [ "join"; "range"; "rect" ]);
      let r1 = Loadgen.run_mixed ~connections:8 ~address:addr1 requests in
      let r4 = Loadgen.run_mixed ~connections:8 ~address:addr4 requests in
      check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "zero errors at shards=1"
        [] r1.Loadgen.errors;
      check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "zero errors at shards=4"
        [] r4.Loadgen.errors;
      check Alcotest.int "all answered at shards=1" 240 r1.Loadgen.ok;
      check Alcotest.int "all answered at shards=4" 240 r4.Loadgen.ok;
      (* Served equals served across shard counts, slot for slot... *)
      Array.iteri
        (fun i x1 ->
          let x4 = r4.Loadgen.answers.(i) in
          if Int64.bits_of_float x1 <> Int64.bits_of_float x4 then
            Alcotest.failf "request %d: shards=1 %h, shards=4 %h" i x1 x4)
        r1.Loadgen.answers;
      (* ...and both equal the direct library answer. *)
      let direct_svc, _ = Service.open_dir dir1 in
      Array.iteri
        (fun i req ->
          let direct =
            match req with
            | Loadgen.Mix_range (entry, a, b) ->
              or_fail (Service.answer_one direct_svc ~name:entry ~a ~b)
            | Loadgen.Mix_rect { m_entry; m_x_lo; m_x_hi; m_y_lo; m_y_hi } ->
              or_fail
                (Service.answer_rect direct_svc ~name:m_entry ~x_lo:m_x_lo
                   ~x_hi:m_x_hi ~y_lo:m_y_lo ~y_hi:m_y_hi)
            | Loadgen.Mix_join { m_entry; m_pred } ->
              or_fail (Service.answer_join direct_svc ~name:m_entry ~pred:m_pred)
          in
          if Int64.bits_of_float r1.Loadgen.answers.(i) <> Int64.bits_of_float direct
          then
            Alcotest.failf "request %d (%s): served %h, direct %h" i
              (Loadgen.mixed_kind req) r1.Loadgen.answers.(i) direct)
        requests;
      (* Per-kind latency groups are always on for mixed runs. *)
      let group_names = List.map fst r1.Loadgen.groups in
      check (Alcotest.list Alcotest.string) "per-kind groups reported"
        [ "join"; "range"; "rect" ] group_names;
      List.iter
        (fun (_, g) -> check Alcotest.bool "group populated" true (g.Loadgen.g_n > 0))
        r1.Loadgen.groups)

(* Open-loop generator sanity: the arrival schedule is honored (offered
   ~= rate * duration), accounting is consistent, and at a tame rate
   everything is answered. *)
let test_open_loop_smoke () =
  with_server (fun client address _dir ->
      let entries = or_fail_client (Client.ls client) in
      let requests = Loadgen.synthetic_requests ~entries ~count:64 ~seed:5L in
      let r = Loadgen.run_open_loop ~max_clients:8 ~rate:200.0 ~duration_s:0.5 ~address requests in
      check Alcotest.bool "offered matches the schedule" true
        (r.Loadgen.offered >= 90 && r.Loadgen.offered <= 110);
      check Alcotest.int "sent + dropped = offered" r.Loadgen.offered
        (r.Loadgen.sent + r.Loadgen.dropped);
      check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "zero errors" []
        r.Loadgen.o_errors;
      check Alcotest.int "every sent arrival answered" r.Loadgen.sent r.Loadgen.o_ok;
      check Alcotest.bool "achieved rate positive" true (r.Loadgen.achieved_qps > 0.0);
      check Alcotest.bool "percentiles ordered" true
        (r.Loadgen.o_p50_ms <= r.Loadgen.o_p95_ms
        && r.Loadgen.o_p95_ms <= r.Loadgen.o_p99_ms
        && r.Loadgen.o_p99_ms <= r.Loadgen.o_max_ms))

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          QCheck_alcotest.to_alcotest qcheck_request_round_trip;
          QCheck_alcotest.to_alcotest qcheck_response_round_trip;
          QCheck_alcotest.to_alcotest qcheck_decode_total;
          QCheck_alcotest.to_alcotest qcheck_truncation_is_error;
          QCheck_alcotest.to_alcotest qcheck_scratch_decode_agrees;
          QCheck_alcotest.to_alcotest qcheck_scratch_decode_agrees_on_noise;
          Alcotest.test_case "scratch decode interns repeated strings" `Quick
            test_scratch_interning;
          Alcotest.test_case "malformed payload cases" `Quick test_wire_malformed_cases;
        ] );
      ( "engine",
        [
          Alcotest.test_case "requests, typed errors, bit-identity" `Quick
            test_basic_requests;
          Alcotest.test_case "tcp round trip on an ephemeral port" `Quick
            test_tcp_round_trip;
          Alcotest.test_case "malformed payload keeps the connection" `Quick
            test_malformed_payload_keeps_connection;
          Alcotest.test_case "empty batch answers immediately" `Quick test_empty_batch;
          Alcotest.test_case "admission control backpressure" `Quick
            test_overload_backpressure;
          Alcotest.test_case "deadline expiry is typed" `Quick test_deadline_timeout;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "32 connections, zero errors, bit-identical" `Quick
            test_loadgen_32_connections;
        ] );
      ( "drain",
        [
          Alcotest.test_case "SIGTERM kill-and-reconnect" `Quick
            test_sigterm_drain_and_reconnect;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "insert/observe end to end, background swap, drain" `Quick
            test_adaptive_insert_observe_e2e;
        ] );
      ( "rect-join",
        [
          Alcotest.test_case "served rect/join bit-identical, typed kind errors"
            `Quick test_rect_join_requests;
          Alcotest.test_case "mixed workload bit-identical at shards=1 vs 4" `Quick
            test_mixed_sharded_bit_identity;
        ] );
      ( "shards",
        [
          Alcotest.test_case "split/reassemble bit-identical to shards=1" `Quick
            test_sharded_split_reassemble;
          Alcotest.test_case "kill one shard dispatcher, others serve, drain completes"
            `Quick test_kill_shard_dispatcher;
          Alcotest.test_case "open-loop schedule and accounting" `Quick
            test_open_loop_smoke;
        ] );
    ]
