(* Tests for the telemetry subsystem: sharded metric merging under
   parallel recording, span nesting, the JSON export (validated with a
   small JSON parser), the renderer smoke paths, and the guard that
   enabling telemetry changes no estimate digit. *)

module T = Telemetry.Control
module M = Telemetry.Metrics
module S = Telemetry.Span
module X = Telemetry.Export

(* Every test leaves the global switch off and the stores empty, so tests
   cannot leak recorded state into each other. *)
let with_telemetry f =
  M.reset ();
  S.clear ();
  T.enable ();
  Fun.protect
    ~finally:(fun () ->
      T.disable ();
      M.reset ();
      S.clear ())
    f

let bits_equal what a b =
  Alcotest.(check int64) what (Int64.bits_of_float a) (Int64.bits_of_float b)

(* --- Metrics: sharded recording --- *)

let prop_counter_merges_across_domains =
  QCheck.Test.make ~name:"counter total is exact for any jobs" ~count:25
    QCheck.(pair (int_range 1 4) (int_range 0 2000))
    (fun (jobs, total) ->
      with_telemetry (fun () ->
          let c = M.counter "test_counter_merge" in
          Parallel.Pool.with_pool ~jobs (fun pool ->
              Parallel.Pool.run pool ~total (fun _ -> M.incr c));
          M.value c = total))

let prop_histogram_merges_across_domains =
  QCheck.Test.make ~name:"histogram count and sum are exact for any jobs" ~count:25
    QCheck.(pair (int_range 1 4) (list_of_size (Gen.int_range 0 300) (int_range 0 1_000_000)))
    (fun (jobs, durations) ->
      with_telemetry (fun () ->
          let h = M.histogram "test_histogram_merge" in
          let a = Array.of_list durations in
          ignore (Parallel.Map.map ~jobs (fun ns -> M.observe_ns h ns) a);
          let s = M.histogram_summary h in
          let expected_sum =
            float_of_int (Array.fold_left ( + ) 0 a) *. 1e-9
          in
          s.M.observations = Array.length a
          && Int64.bits_of_float s.M.sum_s = Int64.bits_of_float expected_sum
          && Array.fold_left (fun acc (_, n) -> acc + n) 0 s.M.buckets = Array.length a))

let test_counter_add_and_gauge () =
  with_telemetry (fun () ->
      let c = M.counter "test_add" in
      M.add c 41;
      M.incr c;
      Alcotest.(check int) "add + incr" 42 (M.value c);
      let g = M.gauge "test_gauge" in
      M.set g 2.5;
      M.set g 7.25;
      Alcotest.(check (float 0.0)) "last write wins" 7.25 (M.gauge_value g))

let test_disabled_records_nothing () =
  M.reset ();
  T.disable ();
  let c = M.counter "test_disabled" in
  let h = M.histogram "test_disabled_hist" in
  M.incr c;
  M.add c 10;
  M.observe_ns h 1_000;
  Alcotest.(check int) "counter untouched" 0 (M.value c);
  Alcotest.(check int) "histogram untouched" 0 (M.histogram_summary h).M.observations;
  Alcotest.(check int) "manual span start is 0" 0 (S.start_ns ())

let test_registration_idempotent () =
  with_telemetry (fun () ->
      let a = M.counter "test_same" ~labels:[ ("k", "v") ] in
      let b = M.counter "test_same" ~labels:[ ("k", "v") ] in
      M.incr a;
      M.incr b;
      Alcotest.(check int) "one underlying counter" 2 (M.value a);
      Alcotest.check_raises "kind mismatch rejected"
        (Invalid_argument "Telemetry.Metrics: \"test_same\" is already registered as a counter")
        (fun () -> ignore (M.gauge "test_same" ~labels:[ ("k", "v") ])))

let test_quantile_bucket_resolution () =
  with_telemetry (fun () ->
      let h = M.histogram "test_quantile" in
      (* 99 fast observations, one slow: p50 lands in the fast bucket, p99
         within a factor of two of the slow one. *)
      for _ = 1 to 99 do
        M.observe_ns h 1_000
      done;
      M.observe_ns h 1_000_000;
      let s = M.histogram_summary h in
      let p50 = M.quantile_s s 0.5 and p99 = M.quantile_s s 0.995 in
      Alcotest.(check bool) "p50 in fast bucket" true (p50 <= 4.0e-6);
      Alcotest.(check bool) "p99 covers slow outlier" true
        (p99 >= 1.0e-3 *. 0.5 && p99 <= 4.0e-3))

(* --- Spans --- *)

let test_span_nesting_order () =
  with_telemetry (fun () ->
      let result =
        S.with_span "outer" (fun () ->
            S.with_span "first" (fun () -> ());
            S.with_span "second" (fun () -> S.with_span "leaf" (fun () -> ()));
            17)
      in
      Alcotest.(check int) "with_span returns the thunk's value" 17 result;
      let es = S.entries () in
      Alcotest.(check (list string))
        "sorted by start, outer before contained"
        [ "outer"; "first"; "second"; "leaf" ]
        (List.map (fun (e : S.entry) -> e.S.name) es);
      Alcotest.(check (list int)) "depths" [ 0; 1; 1; 2 ]
        (List.map (fun (e : S.entry) -> e.S.depth) es);
      List.iter
        (fun (e : S.entry) ->
          Alcotest.(check bool) (e.S.name ^ " duration >= 0") true (e.S.duration_ns >= 0))
        es)

let test_span_depth_restored_on_raise () =
  with_telemetry (fun () ->
      (try S.with_span "failing" (fun () -> failwith "boom") with Failure _ -> ());
      S.with_span "after" (fun () -> ());
      match S.entries () with
      | [ failing; after ] ->
        Alcotest.(check string) "failing recorded" "failing" failing.S.name;
        Alcotest.(check int) "after back at depth 0" 0 after.S.depth
      | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es))

let test_span_ring_overwrites_and_counts () =
  with_telemetry (fun () ->
      (* The default ring holds 4096; push past it and the excess must be
         counted as dropped while the newest entries survive. *)
      for i = 1 to 5000 do
        ignore i;
        S.with_span "tick" (fun () -> ())
      done;
      Alcotest.(check int) "dropped" (5000 - 4096) (S.dropped ());
      Alcotest.(check int) "ring keeps capacity entries" 4096 (List.length (S.entries ())))

let test_manual_span_records () =
  with_telemetry (fun () ->
      let h = M.histogram "test_manual_span" in
      let t0 = S.start_ns () in
      Alcotest.(check bool) "start_ns positive when enabled" true (t0 > 0);
      S.record ~hist:h ~start_ns:t0 "manual";
      Alcotest.(check int) "histogram fed" 1 (M.histogram_summary h).M.observations;
      match S.entries () with
      | [ e ] -> Alcotest.(check string) "span name" "manual" e.S.name
      | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es))

(* --- JSON export: validate with a tiny parser --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

(* Just enough JSON to check the exporter's output: no unicode escapes
   beyond skipping them, numbers via [float_of_string]. *)
let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with ' ' | '\n' | '\t' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else raise (Bad_json (Printf.sprintf "expected %c at offset %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 'u' ->
          advance ();
          for _ = 1 to 4 do advance () done;
          Buffer.add_char buf '?'
        | c -> Buffer.add_char buf c; advance ());
        go ()
      | '\255' -> raise (Bad_json "eof inside string")
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); List.rev ((k, v) :: acc)
          | c -> raise (Bad_json (Printf.sprintf "object: unexpected %c" c))
        in
        Obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); Arr [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); items (v :: acc)
          | ']' -> advance (); List.rev (v :: acc)
          | c -> raise (Bad_json (Printf.sprintf "array: unexpected %c" c))
        in
        Arr (items [])
      end
    | '"' -> Str (parse_string ())
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | 'n' -> pos := !pos + 4; Null
    | _ ->
      let start = !pos in
      let is_num c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while is_num (peek ()) do advance () done;
      if !pos = start then raise (Bad_json (Printf.sprintf "value at offset %d" start));
      Num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let member key = function
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> raise (Bad_json ("missing key " ^ key)))
  | _ -> raise (Bad_json ("not an object at " ^ key))

let as_arr = function Arr xs -> xs | _ -> raise (Bad_json "not an array")
let as_num = function Num f -> f | _ -> raise (Bad_json "not a number")
let as_str = function Str s -> s | _ -> raise (Bad_json "not a string")

let test_json_export_roundtrip () =
  with_telemetry (fun () ->
      let c = M.counter "test_json_counter" ~labels:[ ("side", "left") ] in
      M.add c 7;
      let h = M.histogram "test_json_hist" in
      M.observe_ns h 1_500;
      M.observe_ns h 3_000_000;
      S.with_span "json.span" (fun () -> ());
      let doc = parse_json (X.to_json ()) in
      Alcotest.(check (float 0.0)) "schema_version" 1.0 (as_num (member "schema_version" doc));
      let counters = as_arr (member "counters" doc) in
      let mine =
        List.find
          (fun j -> as_str (member "name" j) = "test_json_counter")
          counters
      in
      Alcotest.(check (float 0.0)) "counter value" 7.0 (as_num (member "value" mine));
      Alcotest.(check string) "counter label" "left"
        (as_str (member "side" (member "labels" mine)));
      let hist =
        List.find
          (fun j -> as_str (member "name" j) = "test_json_hist")
          (as_arr (member "histograms" doc))
      in
      Alcotest.(check (float 0.0)) "histogram count" 2.0 (as_num (member "count" hist));
      let bucket_total =
        List.fold_left
          (fun acc b -> acc +. as_num (member "count" b))
          0.0
          (as_arr (member "buckets" hist))
      in
      Alcotest.(check (float 0.0)) "bucket counts sum to count" 2.0 bucket_total;
      let spans = member "spans" doc in
      let entries = as_arr (member "entries" spans) in
      Alcotest.(check bool) "span exported" true
        (List.exists (fun e -> as_str (member "name" e) = "json.span") entries);
      (* The cache returns exactly the last rendering. *)
      match X.last_json () with
      | Some cached -> Alcotest.(check bool) "last_json parses too" true (parse_json cached = doc)
      | None -> Alcotest.fail "last_json empty after to_json")

let test_text_and_prometheus_render () =
  with_telemetry (fun () ->
      let c = M.counter "test_render_total" in
      M.add c 3;
      let h = M.histogram "test_render_seconds" in
      M.observe_s h 0.002;
      S.with_span "render.span" (fun () -> ());
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      let text = X.render X.Text in
      Alcotest.(check bool) "text lists counter and span" true
        (contains text "test_render_total" && contains text "render.span");
      let prom = X.render X.Prometheus in
      Alcotest.(check bool) "prometheus exposition shape" true
        (contains prom "# TYPE test_render_total counter"
        && contains prom "test_render_seconds_bucket"
        && contains prom "le=\"+Inf\""
        && contains prom "test_render_seconds_count"))

(* --- The estimates-are-unaffected guard --- *)

let dataset =
  Data.Generate.generate Data.Generate.Normal_family ~bits:12 ~count:20_000 ~seed:5L

let sample = Workload.Experiment.sample_of dataset ~seed:7L ~n:500
let queries = Workload.Generate.size_separated dataset ~seed:9L ~fraction:0.02 ~count:200

let test_mre_bit_identical_with_telemetry () =
  List.iter
    (fun spec ->
      let mre () = Workload.Experiment.mre_of_spec ~jobs:2 dataset ~sample ~queries spec in
      T.disable ();
      let off = mre () in
      let on_ =
        with_telemetry (fun () ->
            let m = mre () in
            (* Recording did happen — the guard is only meaningful if the
               instrumented paths actually ran with the flag on. *)
            Alcotest.(check bool)
              (Selest.Estimator.spec_name spec ^ " recorded builds")
              true
              (M.value (M.counter "selest_build_total") > 0);
            m)
      in
      bits_equal (Selest.Estimator.spec_name spec ^ ": telemetry off = on") off on_)
    [
      Selest.Estimator.Sampling;
      Selest.Estimator.Equi_width (Selest.Estimator.Fixed_bins 40);
      Selest.Estimator.kernel_defaults;
      Selest.Estimator.hybrid_defaults;
    ]

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          QCheck_alcotest.to_alcotest prop_counter_merges_across_domains;
          QCheck_alcotest.to_alcotest prop_histogram_merges_across_domains;
          Alcotest.test_case "add and gauge" `Quick test_counter_add_and_gauge;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "registration idempotent" `Quick test_registration_idempotent;
          Alcotest.test_case "quantiles at bucket resolution" `Quick
            test_quantile_bucket_resolution;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting order" `Quick test_span_nesting_order;
          Alcotest.test_case "depth restored on raise" `Quick test_span_depth_restored_on_raise;
          Alcotest.test_case "ring overwrite accounting" `Quick
            test_span_ring_overwrites_and_counts;
          Alcotest.test_case "manual start/record" `Quick test_manual_span_records;
        ] );
      ( "export",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_export_roundtrip;
          Alcotest.test_case "text and prometheus" `Quick test_text_and_prometheus_render;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "mre bit-identical with telemetry on" `Quick
            test_mre_bit_identical_with_telemetry;
        ] );
    ]
