(* Tests for the multidim library: 2-D datasets, the rectangle oracle, the
   product-kernel estimator and the grid histogram. *)

module D2 = Multidim.Dataset2d
module G2 = Multidim.Generate2d
module K2 = Multidim.Kde2d
module H2 = Multidim.Hist2d
module W2 = Multidim.Workload2d
module Xo = Prng.Xoshiro256pp

let checkf tol = Alcotest.(check (float tol))

let small =
  D2.create ~name:"small" ~bits_x:4 ~bits_y:4
    [| (0, 0); (1, 2); (3, 3); (7, 1); (7, 7); (15, 15) |]

let uniform_square seed count =
  let rng = Xo.create seed in
  Array.init count (fun _ ->
      (Xo.float_range rng 0.0 100.0, Xo.float_range rng 0.0 100.0))

(* --- dataset --- *)

let test_create_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Dataset2d.create: empty point array")
    (fun () -> ignore (D2.create ~name:"x" ~bits_x:4 ~bits_y:4 [||]));
  Alcotest.check_raises "out of domain"
    (Invalid_argument "Dataset2d.create(x): point (16, 0) outside domain") (fun () ->
      ignore (D2.create ~name:"x" ~bits_x:4 ~bits_y:4 [| (16, 0) |]))

let test_accessors () =
  Alcotest.(check int) "size" 6 (D2.size small);
  Alcotest.(check int) "bits_x" 4 (D2.bits_x small);
  Alcotest.(check (array int)) "xs" [| 0; 1; 3; 7; 7; 15 |] (D2.xs small);
  Alcotest.(check (array int)) "ys" [| 0; 2; 3; 1; 7; 15 |] (D2.ys small)

let test_exact_count_basic () =
  Alcotest.(check int) "whole domain" 6
    (D2.exact_count small ~x_lo:0.0 ~x_hi:15.0 ~y_lo:0.0 ~y_hi:15.0);
  Alcotest.(check int) "corner" 1
    (D2.exact_count small ~x_lo:0.0 ~x_hi:0.0 ~y_lo:0.0 ~y_hi:0.0);
  Alcotest.(check int) "x band" 2
    (D2.exact_count small ~x_lo:7.0 ~x_hi:7.0 ~y_lo:0.0 ~y_hi:15.0);
  Alcotest.(check int) "inverted" 0
    (D2.exact_count small ~x_lo:5.0 ~x_hi:3.0 ~y_lo:0.0 ~y_hi:15.0);
  Alcotest.(check int) "empty region" 0
    (D2.exact_count small ~x_lo:8.0 ~x_hi:14.0 ~y_lo:8.0 ~y_hi:14.0)

let prop_exact_count_matches_scan =
  QCheck.Test.make ~name:"2-D oracle matches linear scan" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 80) (pair (int_range 0 31) (int_range 0 31)))
        (quad (int_range 0 31) (int_range 0 31) (int_range 0 31) (int_range 0 31)))
    (fun (pts, (a, b, c, d)) ->
      let ds = D2.create ~name:"p" ~bits_x:5 ~bits_y:5 (Array.of_list pts) in
      let x_lo = float_of_int (min a b) and x_hi = float_of_int (max a b) in
      let y_lo = float_of_int (min c d) and y_hi = float_of_int (max c d) in
      let expected =
        List.length
          (List.filter
             (fun (x, y) ->
               float_of_int x >= x_lo && float_of_int x <= x_hi && float_of_int y >= y_lo
               && float_of_int y <= y_hi)
             pts)
      in
      D2.exact_count ds ~x_lo ~x_hi ~y_lo ~y_hi = expected)

let test_oracle_on_large_blocked_dataset () =
  (* More points than one block, so the interior-block path is exercised. *)
  let rng = Xo.create 1L in
  let pts = Array.init 5000 (fun _ -> (Xo.int_below rng 1024, Xo.int_below rng 1024)) in
  let ds = D2.create ~name:"big" ~bits_x:10 ~bits_y:10 pts in
  let x_lo = 100.0 and x_hi = 800.0 and y_lo = 50.0 and y_hi = 500.0 in
  let expected =
    Array.fold_left
      (fun acc (x, y) ->
        if float_of_int x >= x_lo && float_of_int x <= x_hi && float_of_int y >= y_lo
           && float_of_int y <= y_hi
        then acc + 1
        else acc)
      0 pts
  in
  Alcotest.(check int) "blocked oracle" expected
    (D2.exact_count ds ~x_lo ~x_hi ~y_lo ~y_hi)

let test_sampling () =
  let rng = Xo.create 2L in
  let s = D2.sample_without_replacement small rng ~n:6 in
  Alcotest.(check int) "full sample" 6 (Array.length s);
  Alcotest.check_raises "n too large"
    (Invalid_argument "Dataset2d.sample_without_replacement: n outside [1, size]") (fun () ->
      ignore (D2.sample_without_replacement small rng ~n:7))

(* --- generators --- *)

let test_product_generator () =
  let m = Dists.Model.uniform ~lo:0.0 ~hi:256.0 in
  let ds = G2.product ~name:"uu" ~bits_x:8 ~bits_y:8 ~count:2000 ~seed:3L m m in
  Alcotest.(check int) "count" 2000 (D2.size ds);
  Array.iter
    (fun (x, y) ->
      if x < 0 || x > 255 || y < 0 || y > 255 then Alcotest.failf "out of domain (%d,%d)" x y)
    (D2.points ds)

let test_correlated_normal_correlation () =
  let ds = G2.correlated_normal ~name:"corr" ~bits:12 ~count:20_000 ~rho:0.8 ~seed:4L in
  let xs = Array.map float_of_int (D2.xs ds) in
  let ys = Array.map float_of_int (D2.ys ds) in
  let mx = Stats.Descriptive.mean xs and my = Stats.Descriptive.mean ys in
  let sx = Stats.Descriptive.stddev ~mean:mx xs and sy = Stats.Descriptive.stddev ~mean:my ys in
  let cov = ref 0.0 in
  Array.iteri (fun i x -> cov := !cov +. ((x -. mx) *. (ys.(i) -. my))) xs;
  let rho = !cov /. float_of_int (Array.length xs - 1) /. (sx *. sy) in
  Alcotest.(check bool) (Printf.sprintf "rho %.3f near 0.8" rho) true (Float.abs (rho -. 0.8) < 0.03)

let test_correlated_normal_invalid_rho () =
  Alcotest.check_raises "rho out of range"
    (Invalid_argument "Generate2d.correlated_normal: rho must be in (-1, 1)") (fun () ->
      ignore (G2.correlated_normal ~name:"x" ~bits:8 ~count:10 ~rho:1.0 ~seed:1L))

let test_spatial_generators_deterministic () =
  let a = G2.street_grid ~name:"sg" ~bits:12 ~count:5000 ~seed:5L in
  let b = G2.street_grid ~name:"sg" ~bits:12 ~count:5000 ~seed:5L in
  Alcotest.(check bool) "same seed same points" true (D2.points a = D2.points b);
  let c = G2.rail_network ~name:"rn" ~bits:12 ~count:5000 ~seed:5L in
  Alcotest.(check int) "rail count" 5000 (D2.size c)

let test_street_grid_is_clustered () =
  let ds = G2.street_grid ~name:"sg" ~bits:12 ~count:20_000 ~seed:6L in
  (* Clustered data: the densest 1/16 of the area holds far more than 1/16
     of the points.  Check via a coarse 16x16 grid. *)
  let grid = Array.make 256 0 in
  Array.iter
    (fun (x, y) ->
      let i = (x * 16 / 4096 * 16) + (y * 16 / 4096) in
      grid.(Int.min 255 i) <- grid.(Int.min 255 i) + 1)
    (D2.points ds);
  Array.sort compare grid;
  let top16 = ref 0 in
  for i = 240 to 255 do
    top16 := !top16 + grid.(i)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "top cells hold %d of 20000" !top16)
    true
    (!top16 > 20_000 / 4)

(* --- kde2d --- *)

let test_kde2d_validation () =
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Kde2d.create: bandwidths must be positive and finite") (fun () ->
      ignore
        (K2.create ~domain_x:(0.0, 1.0) ~domain_y:(0.0, 1.0) ~hx:0.0 ~hy:1.0 [| (0.5, 0.5) |]))

let test_kde2d_single_point_factorizes () =
  (* One sample at the center: the rectangle mass is the product of the two
     1-D kernel masses. *)
  let est =
    K2.create ~reflect:false ~domain_x:(0.0, 100.0) ~domain_y:(0.0, 100.0) ~hx:10.0 ~hy:20.0
      [| (50.0, 50.0) |]
  in
  let k = Kernels.Kernel.Epanechnikov in
  let f = Kernels.Kernel.cdf k in
  let expected u_lo u_hi v_lo v_hi =
    (f u_hi -. f u_lo) *. (f v_hi -. f v_lo)
  in
  (* Queries canonicalize to closed integer rectangles: [a, b] becomes
     [a - 0.5, b + 0.5] per axis, so the kernel arguments shift by half a
     unit cell relative to the raw bounds. *)
  checkf 1e-12 "full mass" 1.0 (K2.selectivity est ~x_lo:40.0 ~x_hi:60.0 ~y_lo:30.0 ~y_hi:70.0);
  checkf 1e-12 "quarter"
    (expected (-0.05) 1.05 (-0.025) 1.025)
    (K2.selectivity est ~x_lo:50.0 ~x_hi:60.0 ~y_lo:50.0 ~y_hi:70.0);
  checkf 1e-12 "partial"
    (expected (-0.55) 0.55 (-0.275) 0.275)
    (K2.selectivity est ~x_lo:45.0 ~x_hi:55.0 ~y_lo:45.0 ~y_hi:55.0)

let test_kde2d_mass_with_reflection () =
  let pts = uniform_square 7L 1000 in
  let est = K2.create ~domain_x:(0.0, 100.0) ~domain_y:(0.0, 100.0) ~hx:8.0 ~hy:8.0 pts in
  checkf 1e-9 "reflection preserves mass" 1.0
    (K2.selectivity est ~x_lo:0.0 ~x_hi:100.0 ~y_lo:0.0 ~y_hi:100.0)

let test_kde2d_mass_lost_without_reflection () =
  let pts = uniform_square 7L 1000 in
  let est =
    K2.create ~reflect:false ~domain_x:(0.0, 100.0) ~domain_y:(0.0, 100.0) ~hx:8.0 ~hy:8.0 pts
  in
  let m = K2.selectivity est ~x_lo:0.0 ~x_hi:100.0 ~y_lo:0.0 ~y_hi:100.0 in
  Alcotest.(check bool) (Printf.sprintf "mass %.3f < 1" m) true (m < 0.99 && m > 0.85)

let test_kde2d_density_integrates_to_selectivity () =
  let pts = uniform_square 8L 300 in
  let est = K2.create ~domain_x:(0.0, 100.0) ~domain_y:(0.0, 100.0) ~hx:10.0 ~hy:10.0 pts in
  (* 2-D numeric integration over a small rectangle.  Half-integer bounds
     are their own canonical rectangle, so the integration limits match
     what the estimator actually evaluates. *)
  let x_lo = 29.5 and x_hi = 50.5 and y_lo = 39.5 and y_hi = 55.5 in
  let inner y =
    Stats.Integrate.simpson (fun x -> K2.density est x y) ~a:x_lo ~b:x_hi ~n:60
  in
  let integral = Stats.Integrate.simpson inner ~a:y_lo ~b:y_hi ~n:60 in
  checkf 1e-3 "density integral" (K2.selectivity est ~x_lo ~x_hi ~y_lo ~y_hi) integral

let prop_kde2d_bounds_and_monotone =
  QCheck.Test.make ~name:"kde2d selectivity bounded and monotone" ~count:100
    QCheck.(quad (float_range 0. 100.) (float_range 0. 100.) (float_range 0. 100.) (float_range 0. 100.))
    (fun (x1, x2, y1, y2) ->
      let pts = uniform_square 9L 200 in
      let est = K2.create ~domain_x:(0.0, 100.0) ~domain_y:(0.0, 100.0) ~hx:5.0 ~hy:5.0 pts in
      let x_lo = Float.min x1 x2 and x_hi = Float.max x1 x2 in
      let y_lo = Float.min y1 y2 and y_hi = Float.max y1 y2 in
      let s = K2.selectivity est ~x_lo ~x_hi ~y_lo ~y_hi in
      let s_bigger = K2.selectivity est ~x_lo ~x_hi:(x_hi +. 10.0) ~y_lo ~y_hi in
      s >= 0.0 && s <= 1.0 && s <= s_bigger +. 1e-9)

let test_kde2d_plug_in_adapts_to_clusters () =
  (* On clustered data the plug-in bandwidths must come out much smaller
     than the normal-reference ones (the 1-D Figure-11 story in 2-D). *)
  let ds = G2.street_grid ~name:"sg" ~bits:16 ~count:20_000 ~seed:20L in
  let rng = Xo.create 21L in
  let sample = D2.sample_without_replacement ds rng ~n:1000 in
  let hx_ns, _ = K2.normal_scale_bandwidths ~kernel:Kernels.Kernel.Epanechnikov sample in
  let hx_pi, hy_pi = K2.plug_in_bandwidths ~kernel:Kernels.Kernel.Epanechnikov sample in
  Alcotest.(check bool)
    (Printf.sprintf "plug-in %.0f much smaller than NS %.0f" hx_pi hx_ns)
    true
    (hx_pi < 0.4 *. hx_ns);
  Alcotest.(check bool) "both axes positive" true (hx_pi > 0.0 && hy_pi > 0.0)

let test_kde2d_plug_in_close_to_ns_on_normal () =
  (* On a bivariate normal the two rules should roughly agree. *)
  let ds = G2.correlated_normal ~name:"bn" ~bits:14 ~count:20_000 ~rho:0.0 ~seed:22L in
  let rng = Xo.create 23L in
  let sample = D2.sample_without_replacement ds rng ~n:1500 in
  let hx_ns, _ = K2.normal_scale_bandwidths ~kernel:Kernels.Kernel.Epanechnikov sample in
  let hx_pi, _ = K2.plug_in_bandwidths ~kernel:Kernels.Kernel.Epanechnikov sample in
  Alcotest.(check bool)
    (Printf.sprintf "within 2.5x (%.0f vs %.0f)" hx_pi hx_ns)
    true
    (hx_pi > hx_ns /. 2.5 && hx_pi < hx_ns *. 2.5)

let test_kde2d_ns_bandwidths () =
  let pts = uniform_square 10L 2000 in
  let hx, hy = K2.normal_scale_bandwidths ~kernel:Kernels.Kernel.Epanechnikov pts in
  (* Uniform on [0,100]: robust scale ~ 26; h ~ 2.214 * 26 * 2000^(-1/6) ~ 16.3. *)
  Alcotest.(check bool) (Printf.sprintf "hx %.1f plausible" hx) true (hx > 8.0 && hx < 30.0);
  Alcotest.(check bool) "symmetric" true (Float.abs (hx -. hy) /. hx < 0.2)

(* --- hist2d --- *)

let test_hist2d_counts () =
  let pts = [| (10.0, 10.0); (10.0, 90.0); (90.0, 10.0); (90.0, 90.0) |] in
  let h = H2.build ~domain_x:(0.0, 100.0) ~domain_y:(0.0, 100.0) ~bins_x:2 ~bins_y:2 pts in
  Alcotest.(check (pair int int)) "bins" (2, 2) (H2.bins h);
  (* [0, 50]^2 canonicalizes to [-0.5, 50.5]^2: the quadrant cell fully,
     plus 0.5/50 = 1% of each neighbouring cell per axis, so
     (1 + 0.01 + 0.01 + 0.0001) / 4. *)
  checkf 1e-12 "one quadrant" 0.255025
    (H2.selectivity h ~x_lo:0.0 ~x_hi:50.0 ~y_lo:0.0 ~y_hi:50.0);
  checkf 1e-12 "full" 1.0 (H2.selectivity h ~x_lo:0.0 ~x_hi:100.0 ~y_lo:0.0 ~y_hi:100.0)

let test_hist2d_partial_overlap () =
  (* One cell over [0,100]^2 with 4 points: a quarter-area rectangle gets
     selectivity 0.25 under the uniform assumption. *)
  let pts = [| (10.0, 10.0); (20.0, 90.0); (90.0, 15.0); (90.0, 90.0) |] in
  let h = H2.build ~domain_x:(0.0, 100.0) ~domain_y:(0.0, 100.0) ~bins_x:1 ~bins_y:1 pts in
  (* Canonical rectangle [-0.5, 50.5]^2 clipped to the cell covers
     50.5/100 of each axis. *)
  checkf 1e-12 "area fraction" (0.505 *. 0.505)
    (H2.selectivity h ~x_lo:0.0 ~x_hi:50.0 ~y_lo:0.0 ~y_hi:50.0)

let test_hist2d_density () =
  let pts = [| (10.0, 10.0); (20.0, 15.0) |] in
  let h = H2.build ~domain_x:(0.0, 100.0) ~domain_y:(0.0, 100.0) ~bins_x:4 ~bins_y:4 pts in
  (* Both points in cell (0,0): density 2 / (2 * 25 * 25). *)
  checkf 1e-12 "cell density" (1.0 /. 625.0) (H2.density h 5.0 5.0);
  checkf 1e-12 "empty cell" 0.0 (H2.density h 80.0 80.0);
  checkf 1e-12 "outside" 0.0 (H2.density h 101.0 5.0)

let test_sampling_selectivity () =
  let pts = uniform_square 11L 1000 in
  let s = H2.sampling_selectivity pts ~x_lo:0.0 ~x_hi:50.0 ~y_lo:0.0 ~y_hi:100.0 in
  Alcotest.(check bool) "half the square" true (Float.abs (s -. 0.5) < 0.05)

(* --- independence assumption --- *)

module I2 = Multidim.Independence

let test_independence_product () =
  let mx ~a:_ ~b:_ = 0.4 and my ~a:_ ~b:_ = 0.5 in
  checkf 1e-12 "product" 0.2 (I2.selectivity mx my ~x_lo:0.0 ~x_hi:1.0 ~y_lo:0.0 ~y_hi:1.0)

let test_independence_clamped () =
  let m ~a:_ ~b:_ = 1.5 in
  checkf 1e-12 "clamped" 1.0 (I2.selectivity m m ~x_lo:0.0 ~x_hi:1.0 ~y_lo:0.0 ~y_hi:1.0)

let independence_mre ds rects sample =
  let domain = (-0.5, float_of_int (1 lsl D2.bits_x ds) -. 0.5) in
  let ex =
    Selest.Estimator.build Selest.Estimator.kernel_defaults ~domain (Array.map fst sample)
  in
  let ey =
    Selest.Estimator.build Selest.Estimator.kernel_defaults ~domain (Array.map snd sample)
  in
  (W2.evaluate ds
     (fun (r : W2.rect) ->
       I2.selectivity
         (fun ~a ~b -> Selest.Estimator.selectivity ex ~a ~b)
         (fun ~a ~b -> Selest.Estimator.selectivity ey ~a ~b)
         ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi)
     rects)
    .W2.mre

let test_independence_fails_on_correlated_data () =
  (* rho = 0.9: the marginals are blind to the correlation; the product
     estimate must be far worse than on the independent version of the
     same data. *)
  let sample_of ds seed = D2.sample_without_replacement ds (Xo.create seed) ~n:1500 in
  let correlated = G2.correlated_normal ~name:"c" ~bits:14 ~count:30_000 ~rho:0.9 ~seed:30L in
  let independent = G2.correlated_normal ~name:"i" ~bits:14 ~count:30_000 ~rho:0.0 ~seed:30L in
  let rects ds = W2.size_separated ds ~seed:31L ~fraction:0.1 ~count:200 in
  let m_corr = independence_mre correlated (rects correlated) (sample_of correlated 32L) in
  let m_ind = independence_mre independent (rects independent) (sample_of independent 33L) in
  Alcotest.(check bool)
    (Printf.sprintf "correlated %.3f much worse than independent %.3f" m_corr m_ind)
    true
    (m_corr > 2.0 *. m_ind)

(* --- workload2d + end-to-end accuracy --- *)

let test_workload_rects_in_domain () =
  let ds = G2.street_grid ~name:"sg" ~bits:12 ~count:10_000 ~seed:12L in
  let rects = W2.size_separated ds ~seed:13L ~fraction:0.05 ~count:100 in
  Alcotest.(check int) "count" 100 (Array.length rects);
  Array.iter
    (fun (r : W2.rect) ->
      if r.x_lo < -0.5 || r.x_hi > 4095.5 || r.y_lo < -0.5 || r.y_hi > 4095.5 then
        Alcotest.fail "rectangle clips the domain";
      checkf 1e-9 "square width" (r.x_hi -. r.x_lo) (r.y_hi -. r.y_lo))
    rects

let test_2d_kernel_beats_sampling_on_clusters () =
  (* The headline 2-D result: on clustered spatial data the product-kernel
     estimator beats pure sampling and the coarse grid histogram. *)
  let ds = G2.street_grid ~name:"sg" ~bits:16 ~count:50_000 ~seed:14L in
  let rng = Xo.create 15L in
  let sample = D2.sample_without_replacement ds rng ~n:2000 in
  let rects = W2.size_separated ds ~seed:16L ~fraction:0.05 ~count:200 in
  let domain = (-0.5, 65535.5) in
  let eval f = (W2.evaluate ds f rects).W2.mre in
  (* The normal-scale bandwidth oversmooths clustered data in 2-D exactly
     as it does in 1-D; follow the paper's h-opt protocol and search a
     small bandwidth grid on a separate training workload. *)
  let hx_ns, hy_ns = K2.normal_scale_bandwidths ~kernel:Kernels.Kernel.Epanechnikov sample in
  let train = W2.size_separated ds ~seed:17L ~fraction:0.05 ~count:100 in
  let kde_mre_at queries scale =
    let kde =
      K2.create ~domain_x:domain ~domain_y:domain ~hx:(hx_ns *. scale) ~hy:(hy_ns *. scale)
        sample
    in
    (W2.evaluate ds
       (fun (r : W2.rect) ->
         K2.selectivity kde ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi)
       queries)
      .W2.mre
  in
  let best_scale =
    List.fold_left
      (fun (bs, bm) s ->
        let m = kde_mre_at train s in
        if m < bm then (s, m) else (bs, bm))
      (1.0, kde_mre_at train 1.0)
      [ 0.5; 0.25; 0.125; 0.0625; 0.03125 ]
    |> fst
  in
  let hist = H2.build ~domain_x:domain ~domain_y:domain ~bins_x:16 ~bins_y:16 sample in
  let m_kde = kde_mre_at rects best_scale in
  let m_hist =
    eval (fun (r : W2.rect) ->
        H2.selectivity hist ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi)
  in
  let m_sampling =
    eval (fun (r : W2.rect) ->
        H2.sampling_selectivity sample ~x_lo:r.x_lo ~x_hi:r.x_hi ~y_lo:r.y_lo ~y_hi:r.y_hi)
  in
  Alcotest.(check bool)
    (Printf.sprintf "kernel %.3f < sampling %.3f" m_kde m_sampling)
    true (m_kde < m_sampling);
  Alcotest.(check bool)
    (Printf.sprintf "kernel %.3f < 16x16 histogram %.3f" m_kde m_hist)
    true (m_kde < m_hist)

let () =
  Alcotest.run "multidim"
    [
      ( "dataset2d",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "exact count" `Quick test_exact_count_basic;
          QCheck_alcotest.to_alcotest prop_exact_count_matches_scan;
          Alcotest.test_case "blocked oracle" `Quick test_oracle_on_large_blocked_dataset;
          Alcotest.test_case "sampling" `Quick test_sampling;
        ] );
      ( "generators",
        [
          Alcotest.test_case "product" `Quick test_product_generator;
          Alcotest.test_case "correlated normal" `Slow test_correlated_normal_correlation;
          Alcotest.test_case "invalid rho" `Quick test_correlated_normal_invalid_rho;
          Alcotest.test_case "deterministic" `Quick test_spatial_generators_deterministic;
          Alcotest.test_case "street grid clustered" `Quick test_street_grid_is_clustered;
        ] );
      ( "kde2d",
        [
          Alcotest.test_case "validation" `Quick test_kde2d_validation;
          Alcotest.test_case "single point factorizes" `Quick test_kde2d_single_point_factorizes;
          Alcotest.test_case "mass with reflection" `Quick test_kde2d_mass_with_reflection;
          Alcotest.test_case "mass lost without" `Quick test_kde2d_mass_lost_without_reflection;
          Alcotest.test_case "density integrates" `Quick
            test_kde2d_density_integrates_to_selectivity;
          QCheck_alcotest.to_alcotest prop_kde2d_bounds_and_monotone;
          Alcotest.test_case "NS bandwidths" `Quick test_kde2d_ns_bandwidths;
          Alcotest.test_case "plug-in adapts to clusters" `Quick
            test_kde2d_plug_in_adapts_to_clusters;
          Alcotest.test_case "plug-in close to NS on normal" `Quick
            test_kde2d_plug_in_close_to_ns_on_normal;
        ] );
      ( "hist2d",
        [
          Alcotest.test_case "counts" `Quick test_hist2d_counts;
          Alcotest.test_case "partial overlap" `Quick test_hist2d_partial_overlap;
          Alcotest.test_case "density" `Quick test_hist2d_density;
          Alcotest.test_case "sampling selectivity" `Quick test_sampling_selectivity;
        ] );
      ( "independence",
        [
          Alcotest.test_case "product" `Quick test_independence_product;
          Alcotest.test_case "clamped" `Quick test_independence_clamped;
          Alcotest.test_case "fails on correlated data" `Slow
            test_independence_fails_on_correlated_data;
        ] );
      ( "workload2d",
        [
          Alcotest.test_case "rects in domain" `Quick test_workload_rects_in_domain;
          Alcotest.test_case "kernel beats sampling on clusters" `Slow
            test_2d_kernel_beats_sampling_on_clusters;
        ] );
    ]
