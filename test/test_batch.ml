(* Tests for the batch (structure-of-arrays) estimate path: bit-identity
   with the scalar closures per estimator spec, the documented Gaussian
   LUT tolerance, batch edge cases, branchless binary searches, and the
   zero-allocation guarantee the serving engine and bench gate rely on. *)

module Est = Selest.Estimator
module Batch = Selest.Batch
module Stored = Selest.Stored
module A = Stats.Array_util
module Xo = Prng.Xoshiro256pp

let domain = (0.0, 1000.0)

(* Step-density mixture: dense [0,300], sparse (300,600], medium
   (600,1000].  Gives the hybrid estimator real change points and the
   boundary policies non-trivial strips. *)
let sample seed n =
  let rng = Xo.create seed in
  Array.init n (fun _ ->
      let u = Xo.float_range rng 0.0 1.0 in
      if u < 0.6 then Xo.float_range rng 0.0 300.0
      else if u < 0.7 then Xo.float_range rng 300.0 600.0
      else Xo.float_range rng 600.0 1000.0)

(* Specs whose batch plan must be bit-identical to the scalar path. *)
let exact_specs =
  Est.
    [
      Sampling;
      Uniform_assumption;
      Equi_width (Fixed_bins 25);
      Equi_width Normal_scale_bins;
      Equi_depth { bins = 25 };
      Max_diff { bins = 25 };
      Ash { bins = Fixed_bins 25; shifts = 10 };
      Ash { bins = Normal_scale_bins; shifts = 10 };
      Kernel
        {
          kernel = Kernels.Kernel.Epanechnikov;
          boundary = Kde.Estimator.No_treatment;
          bandwidth = Normal_scale_bandwidth;
        };
      Kernel
        {
          kernel = Kernels.Kernel.Epanechnikov;
          boundary = Kde.Estimator.Reflection;
          bandwidth = Fixed_bandwidth 20.0;
        };
      Kernel
        {
          kernel = Kernels.Kernel.Biweight;
          boundary = Kde.Estimator.Boundary_kernels;
          bandwidth = Fixed_bandwidth 15.0;
        };
      kernel_defaults;
      hybrid_defaults;
      Hybrid_spec { bandwidth = Normal_scale_bandwidth; min_bin_count = 50; max_change_points = 8 };
      Frequency_polygon (Fixed_bins 25);
      V_optimal { bins = 25 };
      Wavelet_spec { coefficients = 25 };
    ]

(* Gaussian plans route the primitive through the CDF lookup table:
   equality holds only up to the documented tolerance. *)
let lut_specs =
  Est.
    [
      Kernel
        {
          kernel = Kernels.Kernel.Gaussian;
          boundary = Kde.Estimator.No_treatment;
          bandwidth = Normal_scale_bandwidth;
        };
      Kernel
        {
          kernel = Kernels.Kernel.Gaussian;
          boundary = Kde.Estimator.Reflection;
          bandwidth = Fixed_bandwidth 25.0;
        };
    ]

let lut_tolerance = 1e-6

let query_gen =
  (* Ranges inside, straddling and outside the domain, plus inverted ones
     (a > b must yield 0 on both paths). *)
  QCheck.(pair (float_range (-100.0) 1100.0) (float_range (-100.0) 1100.0))

let prop_bit_identity spec =
  let est = Est.build spec ~domain (sample 7L 800) in
  let plan = Batch.compile est in
  let a1 = Array.make 1 0.0 and b1 = Array.make 1 0.0 and out1 = Array.make 1 0.0 in
  QCheck.Test.make
    ~name:(Printf.sprintf "batch bit-identical: %s" (Est.spec_name spec))
    ~count:200 query_gen (fun (a, b) ->
      let scalar = Est.selectivity est ~a ~b in
      a1.(0) <- a;
      b1.(0) <- b;
      Batch.estimate_into plan ~n:1 ~a:a1 ~b:b1 ~out:out1;
      let batch = out1.(0) in
      if Int64.bits_of_float scalar <> Int64.bits_of_float batch then
        QCheck.Test.fail_reportf "%s: scalar %.17g <> batch %.17g on [%g, %g]"
          (Est.spec_name spec) scalar batch a b
      else true)

let prop_lut_tolerance spec =
  let est = Est.build spec ~domain (sample 11L 800) in
  let plan = Batch.compile est in
  let a1 = Array.make 1 0.0 and b1 = Array.make 1 0.0 and out1 = Array.make 1 0.0 in
  QCheck.Test.make
    ~name:(Printf.sprintf "batch within LUT tolerance: %s" (Est.spec_name spec))
    ~count:200 query_gen (fun (a, b) ->
      let scalar = Est.selectivity est ~a ~b in
      a1.(0) <- a;
      b1.(0) <- b;
      Batch.estimate_into plan ~n:1 ~a:a1 ~b:b1 ~out:out1;
      let batch = out1.(0) in
      if Float.abs (scalar -. batch) > lut_tolerance then
        QCheck.Test.fail_reportf "%s: |%.17g - %.17g| > %g on [%g, %g]"
          (Est.spec_name spec) scalar batch lut_tolerance a b
      else true)

let test_whole_batch_identity () =
  (* A full batch through one estimate_into call agrees with per-query
     scalar answers, element by element. *)
  let xs = sample 3L 600 in
  let rng = Xo.create 5L in
  let n = 256 in
  let qa = Array.make n 0.0 and qb = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let x = Xo.float_range rng (-50.0) 1050.0 and y = Xo.float_range rng (-50.0) 1050.0 in
    qa.(i) <- Float.min x y;
    qb.(i) <- Float.max x y
  done;
  List.iter
    (fun spec ->
      let est = Est.build spec ~domain xs in
      let plan = Batch.compile est in
      let out = Batch.estimate plan ~a:qa ~b:qb in
      Alcotest.(check int) "batch length" n (Array.length out);
      for i = 0 to n - 1 do
        let scalar = Est.selectivity est ~a:qa.(i) ~b:qb.(i) in
        if Int64.bits_of_float scalar <> Int64.bits_of_float out.(i) then
          Alcotest.failf "%s: query %d: scalar %.17g <> batch %.17g" (Est.spec_name spec) i
            scalar out.(i)
      done)
    exact_specs

let test_empty_and_short_batches () =
  let est = Est.build Est.kernel_defaults ~domain (sample 13L 300) in
  let plan = Batch.compile est in
  (* Empty batch: touches nothing, including the out array. *)
  let out = [| 42.0 |] in
  Batch.estimate_into plan ~n:0 ~a:[||] ~b:[||] ~out;
  Alcotest.(check (float 0.0)) "empty batch leaves out untouched" 42.0 out.(0);
  Alcotest.(check int) "estimate on empty arrays" 0 (Array.length (Batch.estimate plan ~a:[||] ~b:[||]));
  (* Single-query batch equals the scalar answer. *)
  let s = Est.selectivity est ~a:100.0 ~b:400.0 in
  let got = (Batch.estimate plan ~a:[| 100.0 |] ~b:[| 400.0 |]).(0) in
  Alcotest.(check (float 0.0)) "single-query batch" s got

let test_estimate_into_validation () =
  let est = Est.build Est.Sampling ~domain (sample 17L 100) in
  let plan = Batch.compile est in
  let check_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  check_invalid "negative n" (fun () ->
      Batch.estimate_into plan ~n:(-1) ~a:[||] ~b:[||] ~out:[||]);
  check_invalid "short a" (fun () ->
      Batch.estimate_into plan ~n:2 ~a:[| 0.0 |] ~b:[| 0.0; 1.0 |] ~out:[| 0.0; 0.0 |]);
  check_invalid "short out" (fun () ->
      Batch.estimate_into plan ~n:2 ~a:[| 0.0; 1.0 |] ~b:[| 0.0; 1.0 |] ~out:[| 0.0 |]);
  check_invalid "length mismatch" (fun () ->
      ignore (Batch.estimate plan ~a:[| 0.0 |] ~b:[||]))

(* The batch loops must not touch the minor heap: this is the property
   the serving fast path and the bench gate are built on.  Measured over
   enough iterations that a single box per query would show up as tens of
   thousands of words. *)
let test_zero_allocation () =
  let xs = sample 23L 800 in
  let n = 64 in
  let rng = Xo.create 29L in
  let qa = Array.make n 0.0 and qb = Array.make n 0.0 and out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let x = Xo.float_range rng 0.0 1000.0 and y = Xo.float_range rng 0.0 1000.0 in
    qa.(i) <- Float.min x y;
    qb.(i) <- Float.max x y
  done;
  let specs =
    Est.default_suite
    @ Est.
        [
          Sampling;
          Frequency_polygon (Fixed_bins 25);
          Kernel
            {
              kernel = Kernels.Kernel.Gaussian;
              boundary = Kde.Estimator.Reflection;
              bandwidth = Normal_scale_bandwidth;
            };
        ]
  in
  List.iter
    (fun spec ->
      let plan = Batch.compile (Est.build spec ~domain xs) in
      (* Warm up: faults in the lazy LUT and any one-time setup. *)
      Batch.estimate_into plan ~n ~a:qa ~b:qb ~out;
      let w0 = Gc.minor_words () in
      for _ = 1 to 50 do
        Batch.estimate_into plan ~n ~a:qa ~b:qb ~out
      done;
      let dw = Gc.minor_words () -. w0 in
      if dw > 0.0 then
        Alcotest.failf "%s: %d batched queries allocated %.0f minor words" (Est.spec_name spec)
          (50 * n) dw)
    specs

let test_stored_batch_identity_and_allocation () =
  let est = Est.build Est.kernel_defaults ~domain (sample 31L 500) in
  let stored = Stored.of_estimator ~domain est in
  let n = 128 in
  let rng = Xo.create 37L in
  let qa = Array.make n 0.0 and qb = Array.make n 0.0 and out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let x = Xo.float_range rng (-20.0) 1020.0 and y = Xo.float_range rng (-20.0) 1020.0 in
    qa.(i) <- Float.min x y;
    qb.(i) <- Float.max x y
  done;
  Stored.selectivity_into stored ~pos:0 ~len:n ~a:qa ~b:qb ~out;
  for i = 0 to n - 1 do
    let scalar = Stored.selectivity stored ~a:qa.(i) ~b:qb.(i) in
    if Int64.bits_of_float scalar <> Int64.bits_of_float out.(i) then
      Alcotest.failf "stored query %d: scalar %.17g <> batch %.17g" i scalar out.(i)
  done;
  (* Sub-range evaluation only touches its slots. *)
  Array.fill out 0 n (-1.0);
  Stored.selectivity_into stored ~pos:8 ~len:4 ~a:qa ~b:qb ~out;
  Alcotest.(check (float 0.0)) "slot before range untouched" (-1.0) out.(7);
  Alcotest.(check (float 0.0)) "slot after range untouched" (-1.0) out.(12);
  let w0 = Gc.minor_words () in
  for _ = 1 to 100 do
    Stored.selectivity_into stored ~pos:0 ~len:n ~a:qa ~b:qb ~out
  done;
  let dw = Gc.minor_words () -. w0 in
  if dw > 0.0 then Alcotest.failf "stored batch allocated %.0f minor words" dw

let prop_branchless_bounds_agree =
  QCheck.Test.make ~name:"branchless searches agree with classic binary search" ~count:500
    QCheck.(pair (list_of_size Gen.(0 -- 40) (float_range 0.0 100.0)) (float_range (-10.0) 110.0))
    (fun (l, x) ->
      let a = Array.of_list (List.sort Float.compare l) in
      A.branchless_lower_bound a x = A.float_lower_bound a x
      && A.branchless_upper_bound a x = A.float_upper_bound a x)

let test_branchless_slice_bounds () =
  let a = [| 0.0; 1.0; 2.0; 0.0; 2.0; 4.0; 6.0; 9.0 |] in
  (* Slice [3, 8) is sorted; searches must stay inside it. *)
  Alcotest.(check int) "slice lower" 4 (A.branchless_lower_bound_from a ~pos:3 ~len:5 1.0);
  Alcotest.(check int) "slice lower at end" 8 (A.branchless_lower_bound_from a ~pos:3 ~len:5 10.0);
  Alcotest.(check int) "slice upper" 5 (A.branchless_upper_bound_from a ~pos:3 ~len:5 2.0);
  Alcotest.(check int) "slice on empty" 3 (A.branchless_lower_bound_from a ~pos:3 ~len:0 1.0)

let test_lut_error_bound () =
  let lut = Kernels.Lut.create Kernels.Kernel.Gaussian in
  let err = Kernels.Lut.max_abs_error lut Kernels.Kernel.Gaussian in
  if err > 2e-7 then Alcotest.failf "Gaussian LUT error %.3g above documented bound" err;
  (* Clamped regions agree with the exact primitive's limits. *)
  Alcotest.(check (float 0.0)) "left clamp" 0.0 (Kernels.Lut.cdf lut (-9.0));
  Alcotest.(check (float 0.0)) "right clamp" 1.0 (Kernels.Lut.cdf lut 9.0);
  (* Arguments so far past the table that the scaled offset exceeds
     2^62: the clamp must fire in float space, where the int conversion
     is unspecified and once produced a negative unsafe index. *)
  Alcotest.(check (float 0.0)) "huge argument clamps" 1.0 (Kernels.Lut.cdf lut 1e300);
  Alcotest.(check (float 0.0)) "huge negative clamps" 0.0 (Kernels.Lut.cdf lut (-1e300));
  Alcotest.(check (float 0.0)) "max_float clamps" 1.0 (Kernels.Lut.cdf lut max_float);
  Alcotest.(check (float 0.0)) "infinity clamps" 1.0 (Kernels.Lut.cdf lut infinity)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "batch"
    [
      ( "identity",
        List.map (fun s -> qt (prop_bit_identity s)) exact_specs
        @ List.map (fun s -> qt (prop_lut_tolerance s)) lut_specs
        @ [ Alcotest.test_case "whole batch identity" `Quick test_whole_batch_identity ] );
      ( "edges",
        [
          Alcotest.test_case "empty and short batches" `Quick test_empty_and_short_batches;
          Alcotest.test_case "argument validation" `Quick test_estimate_into_validation;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "batch loops touch no minor heap" `Quick test_zero_allocation;
          Alcotest.test_case "stored summaries: identity and allocation" `Quick
            test_stored_batch_identity_and_allocation;
        ] );
      ( "primitives",
        [
          qt prop_branchless_bounds_agree;
          Alcotest.test_case "slice searches" `Quick test_branchless_slice_bounds;
          Alcotest.test_case "Gaussian LUT error bound" `Quick test_lut_error_bound;
        ] );
    ]
