(* The catalog serving layer: LRU residency policy, atomic snapshot
   persistence with skip-and-report recovery, staleness tracking, and the
   batch query front end's jobs-independence. *)

module Lru = Catalog.Lru
module Snapshot = Catalog.Snapshot
module Service = Catalog.Service

let check = Alcotest.check

let fresh_dir () =
  let base = Filename.temp_file "selest_catalog_test" "" in
  Sys.remove base;
  Sys.mkdir base 0o755;
  base

(* A deterministic skewed sample on the integer domain [0, 96]. *)
let sample_a = Array.init 500 (fun i -> float_of_int (i * i mod 97))
let sample_b = Array.init 400 (fun i -> float_of_int (i mod 61))
let domain_a = (-0.5, 96.5)
let domain_b = (-0.5, 60.5)

let or_fail = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* ---------------- Lru ---------------- *)

let test_lru_eviction () =
  let c = Lru.create ~cache_name:"t-evict" ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check (Alcotest.option Alcotest.int) "promote a" (Some 1) (Lru.find c "a");
  Lru.add c "c" 3;
  check (Alcotest.list Alcotest.string) "b evicted, a survived" [ "c"; "a" ] (Lru.keys c);
  check (Alcotest.option Alcotest.int) "b gone" None (Lru.find c "b");
  let s = Lru.stats c in
  check Alcotest.int "hits" 1 s.Lru.hits;
  check Alcotest.int "misses" 1 s.Lru.misses;
  check Alcotest.int "evictions" 1 s.Lru.evictions

let test_lru_replace () =
  let c = Lru.create ~cache_name:"t-replace" ~capacity:2 () in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;
  check Alcotest.int "still two entries" 2 (Lru.length c);
  check Alcotest.int "no eviction on replace" 0 (Lru.stats c).Lru.evictions;
  check (Alcotest.option Alcotest.int) "replaced value" (Some 10) (Lru.find c "a");
  Lru.remove c "a";
  check Alcotest.int "removed" 1 (Lru.length c);
  check Alcotest.int "remove is not an eviction" 0 (Lru.stats c).Lru.evictions;
  check (Alcotest.list Alcotest.string) "peek does not promote" [ "b" ]
    (ignore (Lru.peek c "b");
     Lru.keys c)

(* ---------------- Snapshot ---------------- *)

let stored_of sample domain =
  Selest.Stored.Range
    (Selest.Stored.of_sample ~cells:32 ~spec:Selest.Estimator.Sampling ~domain sample)

let test_snapshot_round_trip () =
  let dir = fresh_dir () in
  let entry =
    {
      Snapshot.name = "orders/amount n(20)";
      spec = "ewh:16";
      inserts = 123;
      stale = true;
      provenance = Some "advisor v1 spec=ewh:16 regret=1.020";
      summary = stored_of sample_a domain_a;
    }
  in
  Snapshot.save ~dir entry;
  let p = Snapshot.path ~dir entry.Snapshot.name in
  check Alcotest.bool "snapshot file exists" true (Sys.file_exists p);
  check Alcotest.bool "file name is sanitized" true
    (String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '%' -> true
         | _ -> false)
       (Snapshot.file_name entry.Snapshot.name));
  check Alcotest.bool "no tmp file left behind" false (Sys.file_exists (p ^ ".tmp"));
  let loaded = or_fail (Snapshot.load ~path:p) in
  check Alcotest.string "name" entry.Snapshot.name loaded.Snapshot.name;
  check Alcotest.string "spec" "ewh:16" loaded.Snapshot.spec;
  check Alcotest.int "inserts" 123 loaded.Snapshot.inserts;
  check Alcotest.bool "stale" true loaded.Snapshot.stale;
  check (Alcotest.option Alcotest.string) "provenance survives the round trip"
    entry.Snapshot.provenance loaded.Snapshot.provenance;
  check Alcotest.string "summary bit-identical"
    (Selest.Stored.any_to_string entry.Snapshot.summary)
    (Selest.Stored.any_to_string loaded.Snapshot.summary)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let test_snapshot_corrupt_skip () =
  let dir = fresh_dir () in
  Snapshot.save ~dir
    { Snapshot.name = "good1"; spec = "ewh:8"; inserts = 0; stale = false;
      provenance = None; summary = stored_of sample_a domain_a };
  Snapshot.save ~dir
    { Snapshot.name = "good2"; spec = "sampling"; inserts = 0; stale = false;
      provenance = None; summary = stored_of sample_b domain_b };
  write_file (Filename.concat dir "corrupt.summary") "selest-catalog v1\nname broken\n";
  write_file (Filename.concat dir "badspec.summary")
    "selest-catalog v1\nname x\nspec nosuchspec\ninserts 0\nstale 0\nselest-stored v1\ndomain 0 1\ncells 1\n1\n";
  write_file (Filename.concat dir "notes.txt") "not a snapshot; ignored by extension";
  let entries, skipped = Snapshot.load_dir ~dir () in
  check (Alcotest.list Alcotest.string) "survivors load" [ "good1"; "good2" ]
    (List.map (fun (e : Snapshot.entry) -> e.Snapshot.name) entries);
  check (Alcotest.list Alcotest.string) "corrupt files reported"
    [ "badspec.summary"; "corrupt.summary" ]
    (List.sort String.compare (List.map fst skipped))

let test_snapshot_orphan_tmp_sweep () =
  let dir = fresh_dir () in
  Snapshot.save ~dir
    { Snapshot.name = "good"; spec = "ewh:8"; inserts = 0; stale = false;
      provenance = None; summary = stored_of sample_a domain_a };
  (* A crash between temp-write and rename leaves the temp file behind. *)
  let orphan = Filename.concat dir ("dead" ^ Snapshot.tmp_extension) in
  write_file orphan "selest-catalog v1\nname dead\ntruncated mid-write";
  let entries, skipped = Snapshot.load_dir ~dir () in
  check (Alcotest.list Alcotest.string) "survivor loads" [ "good" ]
    (List.map (fun (e : Snapshot.entry) -> e.Snapshot.name) entries);
  check (Alcotest.list Alcotest.string) "orphan reported in the skip list"
    [ "dead" ^ Snapshot.tmp_extension ]
    (List.map fst skipped);
  check Alcotest.bool "orphan deleted from disk" false (Sys.file_exists orphan);
  (* The sweep reaches Service.open_dir's warning channel too. *)
  write_file orphan "again";
  let svc, warnings = Service.open_dir dir in
  check Alcotest.int "open_dir reports the sweep" 1 (List.length warnings);
  check Alcotest.bool "swept before serving" false (Sys.file_exists orphan);
  check (Alcotest.list Alcotest.string) "catalog unaffected" [ "good" ] (Service.names svc)

(* ---------------- Service ---------------- *)

let build_two svc =
  ignore
    (or_fail
       (Service.build svc ~name:"orders/amount" ~spec:"ewh:16" ~domain:domain_a
          ~sample:sample_a));
  ignore
    (or_fail
       (Service.build svc ~name:"users/age" ~spec:"sampling" ~domain:domain_b
          ~sample:sample_b))

let requests =
  [|
    ("orders/amount", 3.0, 40.0);
    ("users/age", 0.0, 30.5);
    ("orders/amount", -10.0, 200.0);
    ("users/age", 59.0, 60.0);
    ("orders/amount", 50.0, 50.0);
  |]

let test_service_reopen () =
  let dir = fresh_dir () in
  let svc, warnings = Service.open_dir dir in
  check Alcotest.int "fresh dir has no warnings" 0 (List.length warnings);
  build_two svc;
  let before = Service.answer svc requests in
  (* "Kill": drop the handle, reopen from disk alone. *)
  let svc2, warnings2 = Service.open_dir dir in
  check Alcotest.int "clean reopen has no warnings" 0 (List.length warnings2);
  check (Alcotest.list Alcotest.string) "entries survive"
    [ "orders/amount"; "users/age" ] (Service.names svc2);
  let after = Service.answer svc2 requests in
  check Alcotest.bool "answers bit-identical across reopen" true (before = after);
  (* Inject a corrupt snapshot: reopen skips it, reports it, survivors serve. *)
  write_file (Filename.concat dir "zzz-corrupt.summary") "garbage";
  let svc3, warnings3 = Service.open_dir dir in
  check Alcotest.int "corrupt entry reported" 1 (List.length warnings3);
  check Alcotest.string "reported file" "zzz-corrupt.summary" (fst (List.hd warnings3));
  check (Alcotest.list Alcotest.string) "survivors keep serving"
    [ "orders/amount"; "users/age" ] (Service.names svc3);
  check Alcotest.bool "survivor answers intact" true (Service.answer svc3 requests = before)

(* All three summary kinds persist through the same snapshot layer:
   build range + rect + join, kill the handle, reopen cold, and require
   every answer bit-identical and every info kind-faithful. *)
let test_multikind_reopen () =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  build_two svc;
  let points = Array.init 300 (fun i -> (float_of_int (i * 7 mod 97), float_of_int (i * i mod 61))) in
  ignore
    (or_fail
       (Service.build_rect svc ~name:"orders/amount_x_age" ~spec:"hist2d:8"
          ~domain_x:domain_a ~domain_y:domain_b ~points));
  ignore
    (or_fail
       (Service.build_join svc ~name:"orders_join_users" ~spec:"edh:16" ~domain:domain_a
          ~n_r:5000 ~n_s:4000 ~sample_r:sample_a ~sample_s:sample_b));
  let rect_queries =
    [ (3.0, 40.0, 0.0, 30.0); (17.0, 17.0, 4.0, 4.0); (-10.0, 200.0, -10.0, 100.0) ]
  in
  let answers_of s =
    List.map
      (fun (x_lo, x_hi, y_lo, y_hi) ->
        or_fail (Service.answer_rect s ~name:"orders/amount_x_age" ~x_lo ~x_hi ~y_lo ~y_hi))
      rect_queries
    @ List.map
        (fun pred -> or_fail (Service.answer_join s ~name:"orders_join_users" ~pred))
        [ Selest.Stored.Join_eq; Selest.Stored.Join_lt; Selest.Stored.Join_le ]
  in
  let before = answers_of svc in
  let svc2, warnings2 = Service.open_dir dir in
  check Alcotest.int "clean reopen has no warnings" 0 (List.length warnings2);
  check Alcotest.bool "rect/join answers bit-identical across reopen" true
    (List.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       before (answers_of svc2));
  (* Kind metadata survives the round trip. *)
  let kind_of name =
    match Service.info svc2 name with
    | Some i -> Selest.Stored.kind_name i.Service.kind
    | None -> Alcotest.failf "entry %s lost across reopen" name
  in
  check Alcotest.string "range kind" "range" (kind_of "orders/amount");
  check Alcotest.string "rect kind" "rect" (kind_of "orders/amount_x_age");
  check Alcotest.string "join kind" "join" (kind_of "orders_join_users");
  (match Service.info svc2 "orders/amount_x_age" with
  | Some i ->
    check Alcotest.bool "rect domain_y survives" true (i.Service.domain_y = Some domain_b)
  | None -> Alcotest.fail "rect entry lost");
  (* Kind mismatches answer Error, never raise. *)
  (match Service.answer_rect svc2 ~name:"orders/amount" ~x_lo:0.0 ~x_hi:1.0 ~y_lo:0.0 ~y_hi:1.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "answer_rect accepted a range entry");
  (match Service.answer_join svc2 ~name:"orders/amount_x_age" ~pred:Selest.Stored.Join_eq with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "answer_join accepted a rect entry");
  match Service.answer_one svc2 ~name:"orders_join_users" ~a:0.0 ~b:1.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "answer_one accepted a join entry"

let test_answer_jobs_identical () =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  build_two svc;
  let seq = Service.answer ~jobs:1 svc requests in
  let par = Service.answer ~jobs:4 svc requests in
  check Alcotest.bool "jobs=1 vs jobs=4 bit-identical" true (seq = par);
  Alcotest.check_raises "unknown name raises"
    (Invalid_argument "Catalog.Service: unknown entry \"nope\"") (fun () ->
      ignore (Service.answer svc [| ("nope", 0.0, 1.0) |]));
  (match Service.answer_one svc ~name:"nope" ~a:0.0 ~b:1.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "answer_one accepted an unknown name");
  let one = or_fail (Service.answer_one svc ~name:"users/age" ~a:0.0 ~b:30.5) in
  check Alcotest.bool "answer_one matches batch" true (Float.equal one seq.(1))

(* The serving fast path: structure-of-arrays answers must be
   bit-identical to [answer], and once the summaries are resident a
   batch over caller-owned buffers must not touch the minor heap. *)
let test_answer_into () =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  build_two svc;
  let n = Array.length requests in
  let names = Array.map (fun (name, _, _) -> name) requests in
  let qa = Array.map (fun (_, a, _) -> a) requests in
  let qb = Array.map (fun (_, _, b) -> b) requests in
  let out = Array.make n 0.0 in
  let reference = Service.answer svc requests in
  Service.answer_into svc ~n ~names ~a:qa ~b:qb ~out;
  check Alcotest.bool "answer_into bit-identical to answer" true (reference = out);
  (* Partial batch: only the first n slots are touched. *)
  let out2 = Array.make (n + 2) (-1.0) in
  Service.answer_into svc ~n:2 ~names ~a:qa ~b:qb ~out:out2;
  check Alcotest.bool "slots past n untouched" true (out2.(2) = -1.0 && out2.(n + 1) = -1.0);
  Alcotest.check_raises "negative n"
    (Invalid_argument "Catalog.Service.answer_into: negative batch size") (fun () ->
      Service.answer_into svc ~n:(-1) ~names ~a:qa ~b:qb ~out);
  Alcotest.check_raises "short out"
    (Invalid_argument "Catalog.Service.answer_into: arrays shorter than n") (fun () ->
      Service.answer_into svc ~n ~names ~a:qa ~b:qb ~out:(Array.make 1 0.0));
  (* Steady state: summaries resident, buffers owned by us — repeated
     batches must allocate nothing. *)
  Service.answer_into svc ~n ~names ~a:qa ~b:qb ~out;
  let w0 = Gc.minor_words () in
  for _ = 1 to 200 do
    Service.answer_into svc ~n ~names ~a:qa ~b:qb ~out
  done;
  let dw = Gc.minor_words () -. w0 in
  if dw > 0.0 then
    Alcotest.failf "answer_into allocated %.0f minor words over %d queries" dw (200 * n)

let test_staleness () =
  let dir = fresh_dir () in
  let config = { Service.default_config with rebuild_after_inserts = 100 } in
  let svc, _ = Service.open_dir ~config dir in
  build_two svc;
  or_fail (Service.record_inserts svc ~name:"orders/amount" 60);
  let i = Option.get (Service.info svc "orders/amount") in
  check Alcotest.bool "under budget: fresh" false i.Service.stale;
  or_fail (Service.record_inserts svc ~name:"orders/amount" (-40));
  let i = Option.get (Service.info svc "orders/amount") in
  check Alcotest.bool "deletes count as change; budget spent" true i.Service.stale;
  check Alcotest.int "inserts accumulated" 100 i.Service.inserts;
  (* Staleness survives a restart. *)
  let svc2, _ = Service.open_dir ~config dir in
  let i2 = Option.get (Service.info svc2 "orders/amount") in
  check Alcotest.bool "stale after reopen" true i2.Service.stale;
  check Alcotest.int "insert count after reopen" 100 i2.Service.inserts;
  (* Rebuild clears it. *)
  let i3 = or_fail (Service.rebuild svc2 ~name:"orders/amount" ~sample:sample_a) in
  check Alcotest.bool "rebuild clears staleness" false i3.Service.stale;
  check Alcotest.int "rebuild resets inserts" 0 i3.Service.inserts;
  check Alcotest.string "rebuild keeps the spec" "ewh:16" i3.Service.spec

let test_invalidate_and_sync () =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  build_two svc;
  ignore (Service.answer svc [| ("users/age", 0.0, 10.0) |]);
  check Alcotest.bool "cached after a query" true
    (Option.get (Service.info svc "users/age")).Service.cached;
  or_fail (Service.invalidate svc "users/age");
  let i = Option.get (Service.info svc "users/age") in
  check Alcotest.bool "invalidate marks stale" true i.Service.stale;
  check Alcotest.bool "invalidate drops the hot copy" false i.Service.cached;
  let svc2, _ = Service.open_dir dir in
  check Alcotest.bool "invalidation persists" true
    (Option.get (Service.info svc2 "users/age")).Service.stale;
  (* Maintenance wrapper feeding the catalog's update counts. *)
  let m =
    Selest.Maintenance.create ~spec:(Selest.Estimator.Equi_width (Selest.Estimator.Fixed_bins 16))
      ~domain:domain_a ~sample:sample_a ~n_records:100_000 ()
  in
  Selest.Maintenance.record_inserts m 42;
  or_fail (Service.sync_maintenance svc ~name:"orders/amount" m);
  check Alcotest.int "maintenance changed_count mirrored" 42
    (Option.get (Service.info svc "orders/amount")).Service.inserts;
  (* Drop removes everything. *)
  or_fail (Service.drop svc "orders/amount");
  check Alcotest.bool "dropped from index" false (Service.mem svc "orders/amount");
  check Alcotest.bool "snapshot file removed" false
    (Sys.file_exists (Snapshot.path ~dir "orders/amount"))

let test_cache_pressure () =
  let dir = fresh_dir () in
  let config = { Service.default_config with capacity = 1 } in
  let svc, _ = Service.open_dir ~config dir in
  build_two svc;
  (* build leaves the most recent entry resident; capacity 1 means the
     earlier one was evicted at build time. *)
  ignore (Service.answer svc [| ("users/age", 0.0, 10.0); ("users/age", 1.0, 2.0) |]);
  let s1 = Service.cache_stats svc in
  check Alcotest.int "one resolution for two same-name requests: hit" 1 s1.Lru.hits;
  ignore (Service.answer svc [| ("orders/amount", 0.0, 10.0) |]);
  let s2 = Service.cache_stats svc in
  check Alcotest.int "evicted entry misses" 1 (s2.Lru.misses - s1.Lru.misses);
  check Alcotest.bool "eviction happened" true (s2.Lru.evictions > 0);
  (* The reloaded answer still matches a fresh service's. *)
  let v = Service.answer svc [| ("users/age", 0.0, 30.5) |] in
  let svc2, _ = Service.open_dir dir in
  check Alcotest.bool "reloaded summary bit-identical" true
    (v = Service.answer svc2 [| ("users/age", 0.0, 30.5) |])

(* ---------------- adaptive maintenance ---------------- *)

let adaptive_probes =
  [|
    ("orders/amount", 3.0, 40.0);
    ("orders/amount", -0.5, 96.5);
    ("orders/amount", 50.0, 60.0);
    ("orders/amount", 0.0, 1.0);
  |]

let bits a = Array.map Int64.bits_of_float a

let adaptive_fixture () =
  let dir = fresh_dir () in
  let svc, _ =
    Service.open_dir
      ~config:{ Service.default_config with Service.rebuild_after_inserts = 50 }
      dir
  in
  ignore
    (or_fail
       (Service.build svc ~name:"orders/amount" ~spec:"ewh:16" ~domain:domain_a
          ~sample:sample_a));
  Service.enable_adaptive svc;
  (dir, svc)

(* The swap contract: between the staleness trip and the reap, every
   read serves the old summary bit-for-bit (never a torn or partially
   rebuilt one); after the reap, the swapped summary is also what a
   reopen loads — cache, metadata and snapshot moved together. *)
let test_adaptive_swap_never_tears () =
  let dir, svc = adaptive_fixture () in
  let before = bits (Service.answer svc adaptive_probes) in
  ignore (or_fail (Service.insert svc ~name:"orders/amount" sample_b));
  check Alcotest.bool "insert past the budget marks stale" true
    (Option.get (Service.info svc "orders/amount")).Service.stale;
  check (Alcotest.array Alcotest.int64) "stale reads serve the old bits" before
    (bits (Service.answer svc adaptive_probes));
  check Alcotest.int "launch tick swaps nothing yet" 0 (Service.adaptive_tick svc);
  (* A rebuild worker is live right now; reads still see the old bits. *)
  check (Alcotest.array Alcotest.int64) "mid-rebuild reads serve the old bits" before
    (bits (Service.answer svc adaptive_probes));
  let deadline = Unix.gettimeofday () +. 5.0 in
  let swaps = ref 0 in
  while !swaps = 0 && Unix.gettimeofday () < deadline do
    swaps := Service.adaptive_tick svc;
    if !swaps = 0 then Thread.delay 0.005
  done;
  check Alcotest.bool "background rebuild swapped in" true (!swaps > 0);
  let i = Option.get (Service.info svc "orders/amount") in
  check Alcotest.bool "swap clears staleness" false i.Service.stale;
  check Alcotest.int "swap resets the insert count" 0 i.Service.inserts;
  let after = bits (Service.answer svc adaptive_probes) in
  let svc2, skipped = Service.open_dir dir in
  check Alcotest.int "swap persisted without snapshot damage" 0 (List.length skipped);
  check (Alcotest.array Alcotest.int64) "reopen serves the swapped bits" after
    (bits (Service.answer svc2 adaptive_probes))

(* Kill-during-rebuild: drop the service with a rebuild worker in flight
   (no drain — a crash).  The worker only ever touches its private
   sample copy, so the snapshot directory must reopen undamaged, serving
   the old summary bit-for-bit, with the persisted stale flag still set
   so the rebuild re-runs. *)
let test_adaptive_kill_during_rebuild_recovers () =
  let dir, svc = adaptive_fixture () in
  let before = bits (Service.answer svc adaptive_probes) in
  ignore (or_fail (Service.insert svc ~name:"orders/amount" sample_b));
  ignore (Service.adaptive_tick svc);
  (* Crash here: [svc] is abandoned, its worker never reaped. *)
  let svc2, skipped = Service.open_dir dir in
  check Alcotest.int "no corruption after the kill" 0 (List.length skipped);
  check (Alcotest.array Alcotest.int64) "old summary intact" before
    (bits (Service.answer svc2 adaptive_probes));
  check Alcotest.bool "staleness survived the kill" true
    (Option.get (Service.info svc2 "orders/amount")).Service.stale

(* Orderly shutdown is the opposite contract: adaptive_drain reaps the
   in-flight rebuild instead of discarding it, so the swap lands and
   persists. *)
let test_adaptive_drain_reaps_pending () =
  let dir, svc = adaptive_fixture () in
  ignore (or_fail (Service.insert svc ~name:"orders/amount" sample_b));
  ignore (Service.adaptive_tick svc);
  Service.adaptive_drain svc;
  let i = Option.get (Service.info svc "orders/amount") in
  check Alcotest.bool "drain reaped the rebuild" false i.Service.stale;
  let after = bits (Service.answer svc adaptive_probes) in
  let svc2, _ = Service.open_dir dir in
  check (Alcotest.array Alcotest.int64) "drained swap persisted" after
    (bits (Service.answer svc2 adaptive_probes))

let test_build_errors () =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  (match Service.build svc ~name:"" ~spec:"ewh" ~domain:domain_a ~sample:sample_a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty name accepted");
  (match Service.build svc ~name:"x" ~spec:"nosuchspec" ~domain:domain_a ~sample:sample_a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unparseable spec accepted");
  (match Service.build svc ~name:"x" ~spec:"ewh" ~domain:domain_a ~sample:[||] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty sample accepted");
  (match Service.rebuild svc ~name:"ghost" ~sample:sample_a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rebuild of unknown entry accepted");
  check Alcotest.int "failed builds left no entries" 0 (List.length (Service.names svc))

(* ---------------- Sharding ---------------- *)

let contains_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let found = ref false in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then found := true
  done;
  !found

(* Answer each request through the shard that owns its entry — the same
   routing the serving engine performs. *)
let sharded_answer services reqs =
  let shards = Array.length services in
  Array.map
    (fun ((name, _, _) as req) ->
      (Service.answer services.(Service.shard_of_name ~shards name) [| req |]).(0))
    reqs

let test_shard_of_name_stable () =
  (* Pinned values: the hash (FNV-1a 64) decides the on-disk layout, so
     a change here is a breaking format change, not a refactor. *)
  check Alcotest.int "orders/amount @ 4" 1 (Service.shard_of_name ~shards:4 "orders/amount");
  check Alcotest.int "users/age @ 4" 3 (Service.shard_of_name ~shards:4 "users/age");
  check Alcotest.int "users/age @ 3" 2 (Service.shard_of_name ~shards:3 "users/age");
  check Alcotest.int "shards=1 is always shard 0" 0
    (Service.shard_of_name ~shards:1 "anything at all");
  List.iter
    (fun name ->
      let s = Service.shard_of_name ~shards:5 name in
      check Alcotest.bool (name ^ " in range") true (s >= 0 && s < 5))
    [ "a"; ""; "orders/amount"; "weird name %2F" ]

let test_sharded_migration_round_trip () =
  let dir = fresh_dir () in
  let svc, _ = Service.open_dir dir in
  build_two svc;
  let expected = Service.answer svc requests in
  (* v1 flat -> 4 shards: every snapshot lands in the subdirectory of
     the shard that owns its name, and nothing is left flat. *)
  let services4, skipped = Service.open_sharded ~shards:4 dir in
  check Alcotest.int "migration to 4 shards skips nothing" 0 (List.length skipped);
  List.iter
    (fun name ->
      let owner = Service.shard_of_name ~shards:4 name in
      let p =
        Filename.concat (Filename.concat dir (Service.shard_dir_name owner))
          (Snapshot.file_name name)
      in
      check Alcotest.bool (name ^ " in its shard dir") true (Sys.file_exists p);
      check Alcotest.bool (name ^ " gone from the flat dir") false
        (Sys.file_exists (Filename.concat dir (Snapshot.file_name name))))
    [ "orders/amount"; "users/age" ];
  let got4 = sharded_answer services4 requests in
  Array.iteri
    (fun i x ->
      check Alcotest.bool (Printf.sprintf "4-shard answer %d bit-identical" i) true
        (Int64.bits_of_float x = Int64.bits_of_float expected.(i)))
    got4;
  (* 4 shards -> 2 shards: re-partition in place. *)
  let services2, skipped = Service.open_sharded ~shards:2 dir in
  check Alcotest.int "re-sharding 4 -> 2 skips nothing" 0 (List.length skipped);
  check Alcotest.bool "vacated shard dirs removed" false
    (Sys.file_exists (Filename.concat dir (Service.shard_dir_name 3)));
  let got2 = sharded_answer services2 requests in
  Array.iteri
    (fun i x ->
      check Alcotest.bool (Printf.sprintf "2-shard answer %d bit-identical" i) true
        (Int64.bits_of_float x = Int64.bits_of_float expected.(i)))
    got2;
  (* 2 shards -> 1: back to the v1 flat layout, bit-identical snapshots. *)
  let services1, skipped = Service.open_sharded ~shards:1 dir in
  check Alcotest.int "migration back to flat skips nothing" 0 (List.length skipped);
  check Alcotest.int "one shard" 1 (Array.length services1);
  check Alcotest.bool "flat file restored" true
    (Sys.file_exists (Filename.concat dir (Snapshot.file_name "orders/amount")));
  check Alcotest.bool "shard-0 dir removed" false
    (Sys.file_exists (Filename.concat dir (Service.shard_dir_name 0)));
  let got1 = Service.answer services1.(0) requests in
  Array.iteri
    (fun i x ->
      check Alcotest.bool (Printf.sprintf "flat answer %d bit-identical" i) true
        (Int64.bits_of_float x = Int64.bits_of_float expected.(i)))
    got1

let test_sharded_skip_reports_shard () =
  (* load_dir with an explicit shard id prefixes every recovery message. *)
  let dir = fresh_dir () in
  Snapshot.save ~dir
    { Snapshot.name = "good"; spec = "ewh:8"; inserts = 0; stale = false;
      provenance = None; summary = stored_of sample_a domain_a };
  write_file (Filename.concat dir "corrupt.summary") "selest-catalog v1\nname broken\n";
  write_file (Filename.concat dir ("dead" ^ Snapshot.tmp_extension)) "orphan";
  let entries, skipped = Snapshot.load_dir ~shard:7 ~dir () in
  check Alcotest.int "survivor loads" 1 (List.length entries);
  check Alcotest.int "two recovery events" 2 (List.length skipped);
  List.iter
    (fun (file, msg) ->
      check Alcotest.bool (file ^ " message names shard 7") true
        (contains_sub msg "shard 7:"))
    skipped;
  (* ...and open_sharded threads the prefix through from each shard dir. *)
  let dir2 = fresh_dir () in
  let svc, _ = Service.open_dir dir2 in
  build_two svc;
  let _, skipped = Service.open_sharded ~shards:4 dir2 in
  check Alcotest.int "clean migration" 0 (List.length skipped);
  (* Drop a corrupt snapshot into the shard that owns its decoded name
     (migration would relocate it anywhere else — names, not positions,
     decide ownership). *)
  let owner = Service.shard_of_name ~shards:4 "corrupt" in
  let owner_dir = Filename.concat dir2 (Service.shard_dir_name owner) in
  if not (Sys.file_exists owner_dir) then Sys.mkdir owner_dir 0o755;
  write_file (Filename.concat owner_dir "corrupt.summary") "selest-catalog v1\nname broken\n";
  let _, skipped = Service.open_sharded ~shards:4 dir2 in
  (match skipped with
  | [ (file, msg) ] ->
    check Alcotest.string "corrupt file reported" "corrupt.summary" file;
    check Alcotest.bool "message names the owner shard" true
      (contains_sub msg (Printf.sprintf "shard %d:" owner))
  | other -> Alcotest.failf "expected one skip, got %d" (List.length other));
  (* An undecodable file name is left in place and reported during
     migration rather than guessed at. *)
  let dir3 = fresh_dir () in
  let svc, _ = Service.open_dir dir3 in
  build_two svc;
  write_file (Filename.concat dir3 "bad%zz.summary") "whatever";
  let _, skipped = Service.open_sharded ~shards:2 dir3 in
  (match skipped with
  | [ (file, msg) ] ->
    check Alcotest.string "undecodable name reported" "bad%zz.summary" file;
    check Alcotest.bool "message explains" true (contains_sub msg "percent-encoded")
  | other -> Alcotest.failf "expected one migration skip, got %d" (List.length other));
  check Alcotest.bool "undecodable file left in place" true
    (Sys.file_exists (Filename.concat dir3 "bad%zz.summary"))

let () =
  Alcotest.run "catalog"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order and stats" `Quick test_lru_eviction;
          Alcotest.test_case "replace, remove, peek" `Quick test_lru_replace;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "atomic save / load round trip" `Quick test_snapshot_round_trip;
          Alcotest.test_case "corrupt entries skipped and reported" `Quick
            test_snapshot_corrupt_skip;
          Alcotest.test_case "orphaned tmp files swept and reported" `Quick
            test_snapshot_orphan_tmp_sweep;
        ] );
      ( "service",
        [
          Alcotest.test_case "kill-and-reopen round trip" `Quick test_service_reopen;
          Alcotest.test_case "multi-kind entries survive reopen" `Quick test_multikind_reopen;
          Alcotest.test_case "batch answers independent of jobs" `Quick
            test_answer_jobs_identical;
          Alcotest.test_case "answer_into: identity and zero allocation" `Quick
            test_answer_into;
          Alcotest.test_case "insert budget staleness" `Quick test_staleness;
          Alcotest.test_case "invalidate, maintenance sync, drop" `Quick
            test_invalidate_and_sync;
          Alcotest.test_case "cache pressure: hits, misses, evictions" `Quick
            test_cache_pressure;
          Alcotest.test_case "build errors are Errors" `Quick test_build_errors;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "rebuild swap is atomic, reads never torn" `Quick
            test_adaptive_swap_never_tears;
          Alcotest.test_case "kill during rebuild recovers intact" `Quick
            test_adaptive_kill_during_rebuild_recovers;
          Alcotest.test_case "drain reaps the in-flight rebuild" `Quick
            test_adaptive_drain_reaps_pending;
        ] );
      ( "shards",
        [
          Alcotest.test_case "shard_of_name is pinned and total" `Quick
            test_shard_of_name_stable;
          Alcotest.test_case "layout migration 1 -> 4 -> 2 -> 1 round trip" `Quick
            test_sharded_migration_round_trip;
          Alcotest.test_case "recovery messages name the shard" `Quick
            test_sharded_skip_reports_shard;
        ] );
    ]
