(* Core.Stored serialization: property-based round-trip guarantees and
   totality on malformed input.

   The catalog persists summaries through to_string/of_string, so the
   round trip must reproduce selectivities bit-identically (weights print
   with 17 significant digits — exact for doubles) and of_string must
   return Error, never raise, on any corrupt file content. *)

module Stored = Selest.Stored

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 0.0)

(* Build a Stored.t with chosen weights by crafting its textual form —
   the type is abstract, and of_string is the only weight-level door. *)
let stored_text ~lo ~hi weights =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "selest-stored v1\n";
  Buffer.add_string buf (Printf.sprintf "domain %.17g %.17g\n" lo hi);
  Buffer.add_string buf (Printf.sprintf "cells %d\n" (List.length weights));
  List.iter (fun w -> Buffer.add_string buf (Printf.sprintf "%.17g\n" w)) weights;
  Buffer.contents buf

let stored_of_weights ~lo ~hi weights =
  match Stored.of_string (stored_text ~lo ~hi weights) with
  | Ok t -> t
  | Error msg -> Alcotest.failf "stored_of_weights rejected valid input: %s" msg

(* Arbitrary domain, weights, and query endpoints (as domain fractions,
   possibly outside [0,1] to exercise clamping). *)
let gen_case =
  QCheck.Gen.(
    let* lo = float_bound_inclusive 1000.0 in
    let* width = map (fun w -> 0.5 +. (w *. 1000.0)) (float_bound_inclusive 1.0) in
    let* weights =
      list_size (int_range 1 64) (map Float.abs (float_bound_inclusive 0.25))
    in
    let* queries =
      list_size (int_range 1 20)
        (pair (float_range (-0.3) 1.3) (float_range (-0.3) 1.3))
    in
    return (lo -. 500.0, lo -. 500.0 +. width, weights, queries))

let arb_case = QCheck.make gen_case

(* Bit-identical selectivities after one (and two) serialization round
   trips, on queries anywhere relative to the domain. *)
let prop_round_trip =
  QCheck.Test.make ~count:300 ~name:"of_string (to_string t) bit-identical" arb_case
    (fun (lo, hi, weights, queries) ->
      let t = stored_of_weights ~lo ~hi weights in
      match Stored.of_string (Stored.to_string t) with
      | Error msg -> QCheck.Test.fail_reportf "round trip rejected: %s" msg
      | Ok t' ->
        Stored.cells t' = Stored.cells t
        && Stored.domain t' = Stored.domain t
        && Stored.to_string t' = Stored.to_string t
        && List.for_all
             (fun (fa, fb) ->
               let a = lo +. (fa *. (hi -. lo)) and b = lo +. (fb *. (hi -. lo)) in
               Float.equal (Stored.selectivity t ~a ~b) (Stored.selectivity t' ~a ~b))
             queries)

(* The same guarantee for summaries reduced from a real fitted estimator
   (the ANALYZE path the catalog actually exercises). *)
let prop_round_trip_of_sample =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 2 200 in
        let* sample = array_size (return n) (float_bound_inclusive 1024.0) in
        let* cells = int_range 1 64 in
        return (sample, cells))
  in
  QCheck.Test.make ~count:60 ~name:"of_sample summaries round-trip" arb
    (fun (sample, cells) ->
      let domain = (-0.5, 1024.5) in
      let t = Stored.of_sample ~cells ~spec:Selest.Estimator.Sampling ~domain sample in
      match Stored.of_string (Stored.to_string t) with
      | Error msg -> QCheck.Test.fail_reportf "round trip rejected: %s" msg
      | Ok t' ->
        List.for_all
          (fun (a, b) -> Float.equal (Stored.selectivity t ~a ~b) (Stored.selectivity t' ~a ~b))
          [ (0.0, 1024.0); (-0.5, 1024.5); (100.0, 101.0); (512.0, 300.0); (1000.0, 2000.0) ])

(* Rect summaries: round trips must reproduce rectangle selectivities
   bit-identically, including degenerate and inverted query bounds, and
   Multidim.Hist2d must agree exactly (its type IS Stored.rect). *)
let prop_rect_round_trip =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 200 in
        let* points =
          array_size (return n)
            (pair (float_bound_inclusive 96.0) (float_bound_inclusive 60.0))
        in
        let* bins_x = int_range 1 16 in
        let* bins_y = int_range 1 16 in
        let* queries =
          list_size (int_range 1 12)
            (quad
               (float_range (-10.0) 110.0)
               (float_range (-10.0) 110.0)
               (float_range (-10.0) 70.0)
               (float_range (-10.0) 70.0))
        in
        return (points, bins_x, bins_y, queries))
  in
  QCheck.Test.make ~count:120 ~name:"rect_of_string (rect_to_string r) bit-identical" arb
    (fun (points, bins_x, bins_y, queries) ->
      let domain_x = (-0.5, 96.5) and domain_y = (-0.5, 60.5) in
      let r = Stored.rect_of_points ~domain_x ~domain_y ~bins_x ~bins_y points in
      match Stored.rect_of_string (Stored.rect_to_string r) with
      | Error msg -> QCheck.Test.fail_reportf "rect round trip rejected: %s" msg
      | Ok r' ->
        Stored.rect_bins r' = Stored.rect_bins r
        && Stored.rect_domains r' = Stored.rect_domains r
        && Stored.rect_to_string r' = Stored.rect_to_string r
        && List.for_all
             (fun (x_lo, x_hi, y_lo, y_hi) ->
               let s = Stored.rect_selectivity r ~x_lo ~x_hi ~y_lo ~y_hi in
               Float.equal s (Stored.rect_selectivity r' ~x_lo ~x_hi ~y_lo ~y_hi)
               && Float.equal s (Multidim.Hist2d.selectivity r' ~x_lo ~x_hi ~y_lo ~y_hi))
             queries)

(* Join summaries: round trips must reproduce the estimated size of all
   three predicates bit-identically, and Join.Ineqjoin.estimate must
   agree exactly (it is an alias of Stored.join_estimate). *)
let prop_join_round_trip =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* nr = int_range 1 300 in
        let* ns = int_range 1 300 in
        let* sample_r = array_size (return nr) (float_bound_inclusive 512.0) in
        let* sample_s = array_size (return ns) (float_bound_inclusive 512.0) in
        let* buckets = int_range 1 32 in
        return (sample_r, sample_s, buckets))
  in
  QCheck.Test.make ~count:120 ~name:"join_of_string (join_to_string j) bit-identical" arb
    (fun (sample_r, sample_s, buckets) ->
      let domain = (-0.5, 512.5) in
      let j =
        Stored.join_of_samples ~domain ~buckets ~n_r:10_000 ~n_s:8_000 sample_r sample_s
      in
      match Stored.join_of_string (Stored.join_to_string j) with
      | Error msg -> QCheck.Test.fail_reportf "join round trip rejected: %s" msg
      | Ok j' ->
        Stored.join_domain j' = Stored.join_domain j
        && Stored.join_sizes j' = Stored.join_sizes j
        && Stored.join_buckets j' = Stored.join_buckets j
        && Stored.join_samples j' = Stored.join_samples j
        && Stored.join_to_string j' = Stored.join_to_string j
        && List.for_all
             (fun pred ->
               let e = Stored.join_estimate j ~pred in
               Float.equal e (Stored.join_estimate j' ~pred)
               && Float.equal e (Join.Ineqjoin.estimate j' ~pred))
             [ Stored.Join_eq; Stored.Join_lt; Stored.Join_le ])

(* of_string never raises: every malformed input maps to Error. *)
let malformed_cases =
  [
    ("empty", "");
    ("garbage", "not a summary at all");
    ("wrong magic", "selest-stored v9\ndomain 0 1\ncells 1\n0.5\n");
    ("missing domain", "selest-stored v1\ncells 1\n0.5\n");
    ("empty domain", "selest-stored v1\ndomain 5 5\ncells 1\n0.5\n");
    ("inverted domain", "selest-stored v1\ndomain 9 3\ncells 1\n0.5\n");
    ("non-float domain", "selest-stored v1\ndomain a b\ncells 1\n0.5\n");
    ("missing cells", "selest-stored v1\ndomain 0 1\n0.5\n");
    ("zero cells", "selest-stored v1\ndomain 0 1\ncells 0\n");
    ("negative cells", "selest-stored v1\ndomain 0 1\ncells -4\n0.5\n");
    ("cells mismatch", "selest-stored v1\ndomain 0 1\ncells 3\n0.5\n0.5\n");
    ("extra weight", "selest-stored v1\ndomain 0 1\ncells 1\n0.5\n0.5\n");
    ("garbage weight", "selest-stored v1\ndomain 0 1\ncells 2\n0.5\nhello\n");
    ("negative weight", "selest-stored v1\ndomain 0 1\ncells 2\n0.5\n-0.1\n");
    ("nan weight", "selest-stored v1\ndomain 0 1\ncells 2\n0.5\nnan\n");
    ("infinite weight", "selest-stored v1\ndomain 0 1\ncells 2\n0.5\ninf\n");
  ]

let test_malformed () =
  List.iter
    (fun (label, input) ->
      match Stored.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: malformed input accepted" label
      | exception e ->
        Alcotest.failf "%s: of_string raised %s" label (Printexc.to_string e))
    malformed_cases

(* The rect and join parsers share the totality contract, including
   cross-kind confusion: feeding one kind's text to another's parser
   must be a clean Error. *)
let test_malformed_rect_join () =
  let rect_text =
    Stored.rect_to_string
      (Stored.rect_of_points ~domain_x:(0.0, 4.0) ~domain_y:(0.0, 4.0) ~bins_x:2 ~bins_y:2
         [| (1.0, 1.0); (3.0, 3.0) |])
  in
  let join_text =
    Stored.join_to_string
      (Stored.join_of_samples ~domain:(0.0, 8.0) ~buckets:4 ~n_r:100 ~n_s:100
         [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0 |])
  in
  let expect_error parser label input =
    match parser input with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed input accepted" label
    | exception e -> Alcotest.failf "%s: parser raised %s" label (Printexc.to_string e)
  in
  List.iter
    (expect_error Stored.rect_of_string "rect")
    [ ""; "garbage"; join_text; stored_text ~lo:0.0 ~hi:1.0 [ 0.5 ] ];
  List.iter
    (expect_error Stored.join_of_string "join")
    [ ""; "garbage"; rect_text; stored_text ~lo:0.0 ~hi:1.0 [ 0.5 ] ];
  (* Every truncation of well-formed text must be handled without
     raising (a benign cut, e.g. the trailing newline, may still parse). *)
  let sweep parser text =
    for len = 0 to String.length text - 1 do
      match parser (String.sub text 0 len) with
      | Ok _ | Error _ -> ()
      | exception e ->
        Alcotest.failf "truncated at %d: parser raised %s" len (Printexc.to_string e)
    done
  in
  sweep Stored.rect_of_string rect_text;
  sweep Stored.join_of_string join_text

(* to_string survives weights that only differ past float precision. *)
let test_tiny_weights () =
  let t = stored_of_weights ~lo:0.0 ~hi:1.0 [ 1e-300; 4.9e-324; 0.0; 0.25 ] in
  (match Stored.of_string (Stored.to_string t) with
  | Ok t' -> check Alcotest.string "text identical" (Stored.to_string t) (Stored.to_string t')
  | Error msg -> Alcotest.failf "denormal weights rejected: %s" msg);
  checkf "mass of last cell intact"
    (Stored.selectivity t ~a:0.75 ~b:1.0)
    0.25

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_round_trip; prop_round_trip_of_sample; prop_rect_round_trip; prop_join_round_trip ]
  in
  Alcotest.run "stored"
    [
      ("round-trip", qsuite);
      ( "malformed",
        [
          Alcotest.test_case "errors, never raises" `Quick test_malformed;
          Alcotest.test_case "rect/join parsers total" `Quick test_malformed_rect_join;
          Alcotest.test_case "denormal weights" `Quick test_tiny_weights;
        ] );
    ]
