(* Core.Stored serialization: property-based round-trip guarantees and
   totality on malformed input.

   The catalog persists summaries through to_string/of_string, so the
   round trip must reproduce selectivities bit-identically (weights print
   with 17 significant digits — exact for doubles) and of_string must
   return Error, never raise, on any corrupt file content. *)

module Stored = Selest.Stored

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 0.0)

(* Build a Stored.t with chosen weights by crafting its textual form —
   the type is abstract, and of_string is the only weight-level door. *)
let stored_text ~lo ~hi weights =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "selest-stored v1\n";
  Buffer.add_string buf (Printf.sprintf "domain %.17g %.17g\n" lo hi);
  Buffer.add_string buf (Printf.sprintf "cells %d\n" (List.length weights));
  List.iter (fun w -> Buffer.add_string buf (Printf.sprintf "%.17g\n" w)) weights;
  Buffer.contents buf

let stored_of_weights ~lo ~hi weights =
  match Stored.of_string (stored_text ~lo ~hi weights) with
  | Ok t -> t
  | Error msg -> Alcotest.failf "stored_of_weights rejected valid input: %s" msg

(* Arbitrary domain, weights, and query endpoints (as domain fractions,
   possibly outside [0,1] to exercise clamping). *)
let gen_case =
  QCheck.Gen.(
    let* lo = float_bound_inclusive 1000.0 in
    let* width = map (fun w -> 0.5 +. (w *. 1000.0)) (float_bound_inclusive 1.0) in
    let* weights =
      list_size (int_range 1 64) (map Float.abs (float_bound_inclusive 0.25))
    in
    let* queries =
      list_size (int_range 1 20)
        (pair (float_range (-0.3) 1.3) (float_range (-0.3) 1.3))
    in
    return (lo -. 500.0, lo -. 500.0 +. width, weights, queries))

let arb_case = QCheck.make gen_case

(* Bit-identical selectivities after one (and two) serialization round
   trips, on queries anywhere relative to the domain. *)
let prop_round_trip =
  QCheck.Test.make ~count:300 ~name:"of_string (to_string t) bit-identical" arb_case
    (fun (lo, hi, weights, queries) ->
      let t = stored_of_weights ~lo ~hi weights in
      match Stored.of_string (Stored.to_string t) with
      | Error msg -> QCheck.Test.fail_reportf "round trip rejected: %s" msg
      | Ok t' ->
        Stored.cells t' = Stored.cells t
        && Stored.domain t' = Stored.domain t
        && Stored.to_string t' = Stored.to_string t
        && List.for_all
             (fun (fa, fb) ->
               let a = lo +. (fa *. (hi -. lo)) and b = lo +. (fb *. (hi -. lo)) in
               Float.equal (Stored.selectivity t ~a ~b) (Stored.selectivity t' ~a ~b))
             queries)

(* The same guarantee for summaries reduced from a real fitted estimator
   (the ANALYZE path the catalog actually exercises). *)
let prop_round_trip_of_sample =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 2 200 in
        let* sample = array_size (return n) (float_bound_inclusive 1024.0) in
        let* cells = int_range 1 64 in
        return (sample, cells))
  in
  QCheck.Test.make ~count:60 ~name:"of_sample summaries round-trip" arb
    (fun (sample, cells) ->
      let domain = (-0.5, 1024.5) in
      let t = Stored.of_sample ~cells ~spec:Selest.Estimator.Sampling ~domain sample in
      match Stored.of_string (Stored.to_string t) with
      | Error msg -> QCheck.Test.fail_reportf "round trip rejected: %s" msg
      | Ok t' ->
        List.for_all
          (fun (a, b) -> Float.equal (Stored.selectivity t ~a ~b) (Stored.selectivity t' ~a ~b))
          [ (0.0, 1024.0); (-0.5, 1024.5); (100.0, 101.0); (512.0, 300.0); (1000.0, 2000.0) ])

(* of_string never raises: every malformed input maps to Error. *)
let malformed_cases =
  [
    ("empty", "");
    ("garbage", "not a summary at all");
    ("wrong magic", "selest-stored v9\ndomain 0 1\ncells 1\n0.5\n");
    ("missing domain", "selest-stored v1\ncells 1\n0.5\n");
    ("empty domain", "selest-stored v1\ndomain 5 5\ncells 1\n0.5\n");
    ("inverted domain", "selest-stored v1\ndomain 9 3\ncells 1\n0.5\n");
    ("non-float domain", "selest-stored v1\ndomain a b\ncells 1\n0.5\n");
    ("missing cells", "selest-stored v1\ndomain 0 1\n0.5\n");
    ("zero cells", "selest-stored v1\ndomain 0 1\ncells 0\n");
    ("negative cells", "selest-stored v1\ndomain 0 1\ncells -4\n0.5\n");
    ("cells mismatch", "selest-stored v1\ndomain 0 1\ncells 3\n0.5\n0.5\n");
    ("extra weight", "selest-stored v1\ndomain 0 1\ncells 1\n0.5\n0.5\n");
    ("garbage weight", "selest-stored v1\ndomain 0 1\ncells 2\n0.5\nhello\n");
    ("negative weight", "selest-stored v1\ndomain 0 1\ncells 2\n0.5\n-0.1\n");
    ("nan weight", "selest-stored v1\ndomain 0 1\ncells 2\n0.5\nnan\n");
    ("infinite weight", "selest-stored v1\ndomain 0 1\ncells 2\n0.5\ninf\n");
  ]

let test_malformed () =
  List.iter
    (fun (label, input) ->
      match Stored.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: malformed input accepted" label
      | exception e ->
        Alcotest.failf "%s: of_string raised %s" label (Printexc.to_string e))
    malformed_cases

(* to_string survives weights that only differ past float precision. *)
let test_tiny_weights () =
  let t = stored_of_weights ~lo:0.0 ~hi:1.0 [ 1e-300; 4.9e-324; 0.0; 0.25 ] in
  (match Stored.of_string (Stored.to_string t) with
  | Ok t' -> check Alcotest.string "text identical" (Stored.to_string t) (Stored.to_string t')
  | Error msg -> Alcotest.failf "denormal weights rejected: %s" msg);
  checkf "mass of last cell intact"
    (Stored.selectivity t ~a:0.75 ~b:1.0)
    0.25

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_round_trip; prop_round_trip_of_sample ] in
  Alcotest.run "stored"
    [
      ("round-trip", qsuite);
      ( "malformed",
        [
          Alcotest.test_case "errors, never raises" `Quick test_malformed;
          Alcotest.test_case "denormal weights" `Quick test_tiny_weights;
        ] );
    ]
