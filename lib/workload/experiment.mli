(** Experiment harness tying datasets, samples, query files and estimator
    specs together — the machinery behind every figure reproduction and the
    CLI's [experiment] command.

    Evaluation entry points take a [?jobs] knob (default [1], sequential)
    and distribute the per-query work over that many domains via
    {!Parallel.Map}.  Results are bit-identical for every [jobs] value:
    each query's (truth, estimate) pair is computed independently and the
    reduction to a summary always runs sequentially in query order. *)

val domain_of : Data.Dataset.t -> float * float
(** The continuous estimation domain [[-0.5, 2^p - 0.5]] of a dataset:
    value [k] occupies the unit cell centered at [k], so the half-integer
    query bounds of {!Generate} cover whole atoms. *)

val sample_of : Data.Dataset.t -> seed:int64 -> n:int -> float array
(** Deterministic sample (without replacement) of [n] record values as
    floats. *)

val paper_sample_size : int
(** 2,000 — the sample size of the paper's experiments. *)

val estimate_fn_of_spec :
  Data.Dataset.t -> sample:float array -> Selest.Estimator.spec -> Metrics.estimate_fn
(** Build the spec on the sample once and return its probe function.
    Probes are pure reads and safe to call from several domains. *)

val summary_of_fn :
  ?jobs:int ->
  Data.Dataset.t ->
  queries:Query.t array ->
  Metrics.estimate_fn ->
  Metrics.summary
(** Evaluate an already-built estimator on the query file, computing the
    per-query pairs with [jobs] domains ({!Parallel.Map.map}) and reducing
    them in query order.
    @raise Invalid_argument on an empty query array or [jobs < 1]. *)

val mre_of_spec :
  ?jobs:int ->
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  Selest.Estimator.spec ->
  float
(** Build the spec on the sample and return its MRE on the query file. *)

val summary_of_spec :
  ?jobs:int ->
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  Selest.Estimator.spec ->
  Metrics.summary
(** Like {!mre_of_spec} but returning the full error summary. *)

val compare_specs :
  ?jobs:int ->
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  Selest.Estimator.spec list ->
  (string * Metrics.summary) list
(** Evaluate several specs on the same sample and query file.  [jobs]
    parallelizes {e across specs} (each task builds and probes one
    estimator sequentially, so domains never nest); the result list order
    follows the spec list regardless of [jobs]. *)

val oracle_bin_count :
  ?max_bins:int ->
  ?jobs:int ->
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  int * float
(** The [h-opt] reference for equi-width histograms: the bin count
    minimizing the observed MRE, with that MRE.  [jobs] parallelizes each
    objective evaluation across queries; the search itself is sequential. *)

val oracle_bandwidth :
  ?points:int ->
  ?jobs:int ->
  boundary:Kde.Estimator.boundary_policy ->
  Data.Dataset.t ->
  sample:float array ->
  queries:Query.t array ->
  float * float
(** The [h-opt] reference for kernel estimators: the Epanechnikov bandwidth
    minimizing the observed MRE over a logarithmic grid spanning
    [[ns/30, 30 ns]] around the normal-scale bandwidth.  [jobs] as in
    {!oracle_bin_count}. *)
