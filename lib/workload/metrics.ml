type estimate_fn = a:float -> b:float -> float

(* Per-query telemetry (names in docs/TELEMETRY.md).  The timing wraps the
   whole unit of work per query: the exact-truth count plus the estimator
   probe.  Gated so the disabled path costs one atomic load per query and
   allocates nothing beyond the result pair itself. *)
let m_queries =
  Telemetry.Metrics.counter "workload_queries_total"
    ~help:"Range queries evaluated against an estimator"

let m_query_hist =
  Telemetry.Metrics.histogram "workload_query_seconds"
    ~help:"Per-query evaluation latency (exact truth count plus estimator probe)"

type summary = {
  mre : float;
  mae : float;
  mean_signed : float;
  max_relative : float;
  evaluated : int;
  skipped_empty : int;
}

let summarize pairs =
  if Array.length pairs = 0 then invalid_arg "Metrics.summarize: empty pair array";
  let rel_sum = ref 0.0
  and abs_sum = ref 0.0
  and signed_sum = ref 0.0
  and rel_max = ref 0.0
  and evaluated = ref 0
  and skipped = ref 0 in
  Array.iter
    (fun (truth, est) ->
      let signed = est -. truth in
      abs_sum := !abs_sum +. Float.abs signed;
      signed_sum := !signed_sum +. signed;
      if truth > 0.0 then begin
        let rel = Float.abs signed /. truth in
        rel_sum := !rel_sum +. rel;
        if rel > !rel_max then rel_max := rel;
        incr evaluated
      end
      else incr skipped)
    pairs;
  let count = float_of_int (Array.length pairs) in
  {
    mre = (if !evaluated = 0 then Float.nan else !rel_sum /. float_of_int !evaluated);
    mae = !abs_sum /. count;
    mean_signed = !signed_sum /. count;
    max_relative = !rel_max;
    evaluated = !evaluated;
    skipped_empty = !skipped;
  }

let result_pair ds ~n_records estimate (q : Query.t) =
  let t0 = Telemetry.Span.start_ns () in
  let pair =
    ( float_of_int (Data.Dataset.exact_count ds ~lo:q.lo ~hi:q.hi),
      estimate ~a:q.lo ~b:q.hi *. n_records )
  in
  if t0 > 0 then begin
    Telemetry.Metrics.incr m_queries;
    Telemetry.Span.record ~hist:m_query_hist ~start_ns:t0 "workload.query"
  end;
  pair

let result_pairs ds estimate queries =
  let n_records = float_of_int (Data.Dataset.size ds) in
  Array.map (result_pair ds ~n_records estimate) queries

let evaluate ds estimate queries =
  if Array.length queries = 0 then invalid_arg "Metrics.evaluate: empty query array";
  summarize (result_pairs ds estimate queries)

let mre ds estimate queries = (evaluate ds estimate queries).mre

type position_error = {
  position : float;
  signed_error : float;
  relative_error : float;
}

let error_by_position ds estimate queries =
  let n_records = Data.Dataset.size ds in
  Array.map
    (fun (q : Query.t) ->
      let truth = float_of_int (Data.Dataset.exact_count ds ~lo:q.lo ~hi:q.hi) in
      let est = estimate ~a:q.lo ~b:q.hi *. float_of_int n_records in
      let signed = est -. truth in
      {
        position = Query.center q;
        signed_error = signed;
        relative_error = (if truth > 0.0 then Float.abs signed /. truth else 0.0);
      })
    queries
