(* Value k occupies the cell [k - 0.5, k + 0.5] of the continuous
   estimation domain, matching the half-integer query representation of
   {!Generate}. *)
let domain_of ds = (-0.5, float_of_int (Data.Dataset.domain_size ds) -. 0.5)

let sample_of ds ~seed ~n =
  let rng = Prng.Xoshiro256pp.create seed in
  Data.Dataset.sample_floats ds rng ~n

let paper_sample_size = 2000

let estimate_fn_of_spec ds ~sample spec =
  let est = Selest.Estimator.build spec ~domain:(domain_of ds) sample in
  fun ~a ~b -> Selest.Estimator.selectivity est ~a ~b

(* The parallel evaluation path: per-query (truth, estimate) pairs are
   computed by [jobs] domains — each query writes its own slot, so the pair
   array is identical for every [jobs] — and reduced sequentially in query
   order.  The estimator is built once and probed concurrently; probes are
   pure reads, estimators carry no mutable state. *)
let summary_of_fn ?(jobs = 1) ds ~queries estimate =
  if Array.length queries = 0 then invalid_arg "Experiment.summary_of_fn: empty query array";
  Telemetry.Span.with_span "experiment.summary" (fun () ->
      let n_records = float_of_int (Data.Dataset.size ds) in
      let pairs =
        Parallel.Map.map ~jobs (Metrics.result_pair ds ~n_records estimate) queries
      in
      Metrics.summarize pairs)

let summary_of_spec ?jobs ds ~sample ~queries spec =
  summary_of_fn ?jobs ds ~queries (estimate_fn_of_spec ds ~sample spec)

let mre_of_spec ?jobs ds ~sample ~queries spec =
  (summary_of_spec ?jobs ds ~sample ~queries spec).Metrics.mre

let compare_specs ?(jobs = 1) ds ~sample ~queries specs =
  (* Parallel across specs: each task builds its own estimator and
     evaluates its queries sequentially, so domains never nest. *)
  Telemetry.Span.with_span "experiment.compare_specs" (fun () ->
      Parallel.Map.map ~jobs
        (fun spec ->
          (Selest.Estimator.spec_name spec, summary_of_spec ds ~sample ~queries spec))
        (Array.of_list specs)
      |> Array.to_list)

let oracle_bin_count ?(max_bins = 2000) ?jobs ds ~sample ~queries =
  let objective bins =
    mre_of_spec ?jobs ds ~sample ~queries
      (Selest.Estimator.Equi_width (Selest.Estimator.Fixed_bins bins))
  in
  Bandwidth.Oracle.best_bin_count ~max_bins ~objective ()

let oracle_bandwidth ?(points = 30) ?jobs ~boundary ds ~sample ~queries =
  let ns =
    Bandwidth.Normal_scale.bandwidth_of_samples ~kernel:Kernels.Kernel.Epanechnikov sample
  in
  let lo, hi = domain_of ds in
  (* Bandwidths past half the domain are all equivalent after the boundary
     clamp; searching them only wastes oracle evaluations. *)
  let upper = Float.min (30.0 *. ns) (0.45 *. (hi -. lo)) in
  let objective h =
    mre_of_spec ?jobs ds ~sample ~queries
      (Selest.Estimator.Kernel
         {
           kernel = Kernels.Kernel.Epanechnikov;
           boundary;
           bandwidth = Selest.Estimator.Fixed_bandwidth h;
         })
  in
  Bandwidth.Oracle.best_bandwidth ~points ~objective ~lo:(ns /. 30.0) ~hi:upper ()
