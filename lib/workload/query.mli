(** Range queries [Q(a, b)] over one metric attribute (Section 2). *)

type t = { lo : float; hi : float }

val make : lo:float -> hi:float -> t
(** @raise Invalid_argument if [lo > hi] or a bound is not finite. *)

val width : t -> float
(** [hi - lo]. *)

val center : t -> float
(** The range midpoint [(lo + hi) / 2]. *)

val contains : t -> float -> bool
(** Inclusive on both ends, matching [a <= r.A <= b]. *)
