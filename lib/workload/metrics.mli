(** Error metrics over query workloads (Section 5.1.2).

    The headline metric is the mean relative error

    {v MRE(D, s) = 1/|F| * sum_Q | |Q| - sigma_hat * |D| | / |Q| v}

    where [|Q|] is the true result size.  Queries with an empty true result
    are excluded from the relative error (the paper's query generator makes
    them rare: query positions follow the data); they are still counted in
    the absolute error and reported in the summary. *)

type estimate_fn = a:float -> b:float -> float
(** A fitted estimator: distribution selectivity of [Q(a,b)]. *)

type summary = {
  mre : float;  (** mean relative error over queries with non-empty results *)
  mae : float;  (** mean absolute error in records, over all queries *)
  mean_signed : float;  (** mean of (estimated - true) record counts *)
  max_relative : float;  (** worst relative error over non-empty queries *)
  evaluated : int;  (** queries with non-empty true results *)
  skipped_empty : int;  (** queries with a zero true result size *)
}

val evaluate : Data.Dataset.t -> estimate_fn -> Query.t array -> summary
(** [evaluate ds estimate queries] compares the estimated result sizes
    against the dataset's exact counts.
    @raise Invalid_argument on an empty query array. *)

val result_pair :
  Data.Dataset.t -> n_records:float -> estimate_fn -> Query.t -> float * float
(** One [(true_size, estimated_size)] pair: the exact count scaled against
    [n_records] and the estimator probe.  When telemetry is enabled the
    call records a ["workload.query"] span and feeds the
    [workload_query_seconds] histogram; the computed pair is identical
    either way.  {!Experiment.summary_of_fn} maps this over its query
    array from parallel workers. *)

val result_pairs : Data.Dataset.t -> estimate_fn -> Query.t array -> (float * float) array
(** The per-query [(true_size, estimated_size)] pairs behind {!evaluate},
    in query order.  Each pair depends on its query alone, which is what
    lets {!Experiment} compute them in parallel and still reduce them
    deterministically with {!summarize}. *)

val summarize : (float * float) array -> summary
(** Reduce [(true_size, estimated_size)] pairs to a {!summary}, in array
    order: [evaluate ds f qs = summarize (result_pairs ds f qs)] exactly.
    @raise Invalid_argument on an empty pair array. *)

val mre : Data.Dataset.t -> estimate_fn -> Query.t array -> float
(** Shorthand for [(evaluate ...).mre]. *)

type position_error = {
  position : float;  (** query center *)
  signed_error : float;  (** estimated minus true result size, in records *)
  relative_error : float;  (** |signed| / true size; 0 when the truth is 0 *)
}

val error_by_position :
  Data.Dataset.t -> estimate_fn -> Query.t array -> position_error array
(** Per-query errors in workload order — the curves of Figures 3 and 10. *)
