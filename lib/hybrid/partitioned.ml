type bandwidth_rule =
  | Normal_scale_rule
  | Plug_in_rule of int

type config = {
  change_points : Change_point.config;
  min_bin_count : int;
  bandwidth_rule : bandwidth_rule;
  kernel : Kernels.Kernel.t;
}

let default_config =
  {
    change_points = Change_point.default_config;
    min_bin_count = 100;
    bandwidth_rule = Normal_scale_rule;
    kernel = Kernels.Kernel.Epanechnikov;
  }

(* A bin either runs its own kernel estimator or, when its sample is too
   small or degenerate, falls back to the uniform-within-bin rule. *)
type bin_estimator =
  | Kernel_bin of Kde.Estimator.t
  | Uniform_bin

type bin = {
  lo : float;
  hi : float;
  weight : float; (* fraction of all samples falling in this bin *)
  est : bin_estimator;
}

type t = { bins : bin array; edges : float array }

let merge_small_bins ~min_count edges counts =
  (* Repeatedly merge the smallest under-populated bin into its smaller
     neighbour until every bin is large enough (or one bin remains). *)
  let edges = ref (Array.to_list edges) and counts = ref (Array.to_list counts) in
  let rec loop () =
    let cs = Array.of_list !counts in
    let k = Array.length cs in
    if k <= 1 then ()
    else begin
      let worst = ref (-1) in
      Array.iteri (fun i c -> if c < min_count && (!worst < 0 || c < cs.(!worst)) then worst := i) cs;
      if !worst < 0 then ()
      else begin
        let i = !worst in
        let neighbour =
          if i = 0 then 1
          else if i = k - 1 then k - 2
          else if cs.(i - 1) <= cs.(i + 1) then i - 1
          else i + 1
        in
        let a = Int.min i neighbour in
        (* Merge bins a and a+1: drop edge a+1, add counts. *)
        let es = Array.of_list !edges in
        let new_edges =
          Array.to_list (Array.init (Array.length es - 1) (fun j -> if j <= a then es.(j) else es.(j + 1)))
        in
        let new_counts =
          Array.to_list
            (Array.init (k - 1) (fun j ->
                 if j < a then cs.(j) else if j = a then cs.(a) + cs.(a + 1) else cs.(j + 1)))
        in
        edges := new_edges;
        counts := new_counts;
        loop ()
      end
    end
  in
  loop ();
  (Array.of_list !edges, Array.of_list !counts)

let build_bin ~config ~lo ~hi ~weight bin_samples =
  let n = Array.length bin_samples in
  let width = hi -. lo in
  if n < 10 then { lo; hi; weight; est = Uniform_bin }
  else begin
    let scale = Stats.Quantile.robust_scale bin_samples in
    if scale <= 0.0 || not (Float.is_finite scale) then { lo; hi; weight; est = Uniform_bin }
    else begin
      let h =
        match config.bandwidth_rule with
        | Normal_scale_rule ->
          Bandwidth.Normal_scale.bandwidth ~kernel:config.kernel ~n ~scale
        | Plug_in_rule iterations ->
          Bandwidth.Plug_in.bandwidth ~iterations ~kernel:config.kernel bin_samples
      in
      (* Boundary kernels need 2h <= bin width. *)
      let h = Float.min h (0.499 *. width) in
      if h <= 0.0 then { lo; hi; weight; est = Uniform_bin }
      else begin
        let est =
          Kde.Estimator.create ~kernel:config.kernel
            ~boundary:Kde.Estimator.Boundary_kernels ~domain:(lo, hi) ~h bin_samples
        in
        { lo; hi; weight; est = Kernel_bin est }
      end
    end
  end

(* Internal build sub-phases.  Recorded under the dedicated metric
   selest_hybrid_phase_seconds rather than selest_build_phase_seconds so
   that the core build phases remain a partition of build time (the whole
   hybrid build is already one "bins" phase there). *)
let hybrid_phase name f =
  if not (Telemetry.Control.is_enabled ()) then f ()
  else
    Telemetry.Span.with_span
      ~hist:
        (Telemetry.Metrics.histogram "selest_hybrid_phase_seconds"
           ~labels:[ ("phase", name) ]
           ~help:"Hybrid.Partitioned.build time per internal phase")
      ("hybrid." ^ name) f

let build ?(config = default_config) ~domain:(lo, hi) samples =
  if lo >= hi then invalid_arg "Hybrid.build: empty domain";
  let n = Array.length samples in
  if n = 0 then invalid_arg "Hybrid.build: empty sample";
  let points =
    hybrid_phase "change_points" (fun () ->
        Change_point.detect ~config:config.change_points ~domain:(lo, hi) samples)
  in
  let edges = Array.of_list (lo :: points @ [ hi ]) in
  let sorted = Array.copy samples in
  hybrid_phase "sort" (fun () -> Array.sort Float.compare sorted);
  let count_between a b =
    Stats.Array_util.float_upper_bound sorted b - Stats.Array_util.float_lower_bound sorted a
  in
  let counts =
    Array.init (Array.length edges - 1) (fun i ->
        (* Bin i owns (c_i, c_{i+1}]; the first bin also owns its left edge.
           Count via half-open arithmetic on the sorted array. *)
        let a = edges.(i) and b = edges.(i + 1) in
        if i = 0 then count_between a b
        else
          Stats.Array_util.float_upper_bound sorted b
          - Stats.Array_util.float_upper_bound sorted a)
  in
  let edges, _counts =
    hybrid_phase "merge" (fun () ->
        merge_small_bins ~min_count:config.min_bin_count edges counts)
  in
  let k = Array.length edges - 1 in
  let bins =
    hybrid_phase "bandwidth" (fun () ->
        Array.init k (fun i ->
            let a = edges.(i) and b = edges.(i + 1) in
            let i0 =
              if i = 0 then Stats.Array_util.float_lower_bound sorted a
              else Stats.Array_util.float_upper_bound sorted a
            in
            let i1 = Stats.Array_util.float_upper_bound sorted b in
            let bin_samples = Array.sub sorted i0 (Int.max 0 (i1 - i0)) in
            let weight = float_of_int (Array.length bin_samples) /. float_of_int n in
            if Array.length bin_samples = 0 then
              { lo = a; hi = b; weight; est = Uniform_bin }
            else build_bin ~config ~lo:a ~hi:b ~weight bin_samples))
  in
  { bins; edges }

let partition t = t.edges

let bin_count t = Array.length t.bins

type bin_view = {
  bv_lo : float;
  bv_hi : float;
  bv_weight : float;
  bv_kde : Kde.Estimator.t option; (* None: uniform-within-bin fallback *)
}

let bin_views t =
  Array.map
    (fun bin ->
      let bv_kde = match bin.est with Kernel_bin est -> Some est | Uniform_bin -> None in
      { bv_lo = bin.lo; bv_hi = bin.hi; bv_weight = bin.weight; bv_kde })
    t.bins

let bin_selectivity bin ~a ~b =
  let a = Float.max a bin.lo and b = Float.min b bin.hi in
  if a >= b then 0.0
  else
    match bin.est with
    | Uniform_bin -> bin.weight *. ((b -. a) /. (bin.hi -. bin.lo))
    | Kernel_bin est -> bin.weight *. Kde.Estimator.selectivity est ~a ~b

let selectivity t ~a ~b =
  if a > b then 0.0
  else begin
    let s = Array.fold_left (fun acc bin -> acc +. bin_selectivity bin ~a ~b) 0.0 t.bins in
    Float.max 0.0 (Float.min 1.0 s)
  end

let density t x =
  let k = Array.length t.bins in
  if k = 0 || x < t.edges.(0) || x > t.edges.(k) then 0.0
  else begin
    let j = Stats.Array_util.float_lower_bound t.edges x in
    let i = Int.max 0 (Int.min (k - 1) (j - 1)) in
    let bin = t.bins.(i) in
    match bin.est with
    | Uniform_bin -> bin.weight /. (bin.hi -. bin.lo)
    | Kernel_bin est -> bin.weight *. Kde.Estimator.density est x
  end
