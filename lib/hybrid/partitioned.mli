(** The hybrid histogram/kernel estimator (Section 3.3) — the paper's novel
    contribution.

    Change points of the pilot density partition the domain into bins;
    under-populated adjacent bins are merged; inside each bin an independent
    kernel estimator runs with its own bandwidth (each bin's sample is
    closer to smooth, which is exactly where kernel estimators excel), using
    boundary kernels at the bin borders.  A bin whose sample is too small or
    degenerate (all duplicates) falls back to the uniform-within-bin
    histogram rule. *)

type bandwidth_rule =
  | Normal_scale_rule
  | Plug_in_rule of int  (** number of plug-in iterations *)

type config = {
  change_points : Change_point.config;
  min_bin_count : int;
      (** adjacent bins with fewer samples are merged (default 100) *)
  bandwidth_rule : bandwidth_rule;  (** per-bin rule (default normal scale) *)
  kernel : Kernels.Kernel.t;  (** default Epanechnikov *)
}

val default_config : config
(** [Change_point.default_config] detection, 100-sample merge threshold,
    normal-scale per-bin bandwidths, Epanechnikov kernel.  (The
    paper-tuned serving defaults — 16 change points, per-bin DPI1 — live
    in [Selest.Estimator.hybrid_defaults], which overrides this record.) *)

type t

val build : ?config:config -> domain:float * float -> float array -> t
(** [build ~domain samples] detects change points, merges small bins and
    fits the per-bin kernel estimators.
    @raise Invalid_argument on an empty sample or empty domain. *)

val partition : t -> float array
(** The bin edges after merging, [lo] and [hi] included. *)

val selectivity : t -> a:float -> b:float -> float
(** Weighted sum of per-bin kernel selectivities, clamped to [[0, 1]]. *)

val density : t -> float -> float
(** Piecewise density: the owning bin's kernel density scaled by the bin's
    sample fraction; 0 outside the domain. *)

val bin_count : t -> int
(** Number of bins after merging. *)

type bin_view = {
  bv_lo : float;  (** left bin edge *)
  bv_hi : float;  (** right bin edge *)
  bv_weight : float;  (** fraction of all samples falling in this bin *)
  bv_kde : Kde.Estimator.t option;
      (** the bin's kernel estimator, or [None] for the uniform-within-bin
          fallback (tiny or degenerate bin sample) *)
}
(** Read-only view of one fitted bin, for the batch-plan compiler. *)

val bin_views : t -> bin_view array
(** Views of the fitted bins in domain order.  The per-bin kernel
    estimators are shared (not copies), so a batch plan compiled from the
    views evaluates the exact structures {!selectivity} walks. *)
