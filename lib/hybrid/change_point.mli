(** Change-point detection for the hybrid estimator (Section 3.3).

    The paper detects change points of the true PDF as the maxima of the
    second derivative, found recursively: the strongest curvature point
    splits the domain, then each part is searched in turn.  The curvature
    signal comes from a Gaussian pilot estimate ({!Kde.Pilot}), evaluated on
    a grid; candidates are accepted strongest-first subject to a minimum
    separation and a minimum number of samples on each side, which is
    equivalent to the recursive search but simpler to bound. *)

type config = {
  max_change_points : int;  (** upper bound on detected points (default 8) *)
  min_separation_fraction : float;
      (** minimum distance between change points and to the domain borders,
          as a fraction of the domain width (default 0.02) *)
  min_samples_per_segment : int;
      (** a split is rejected if either side would hold fewer samples
          (default 50) *)
  grid_points : int;  (** curvature-grid resolution (default 512) *)
  relative_threshold : float;
      (** candidates below this fraction of the global curvature maximum are
          ignored (default 0.05) *)
}

val default_config : config
(** The defaults noted per field above: at most 8 change points, 2%
    minimum separation, 50 samples per segment, a 512-point grid, 5%
    relative threshold. *)

val detect : ?config:config -> domain:float * float -> float array -> float list
(** [detect ~domain samples] returns the detected change points in
    increasing order (possibly empty).  The pilot bandwidth is the Gaussian
    normal-scale rule on [samples].
    @raise Invalid_argument on an empty sample or empty domain. *)

val curvature_profile :
  ?config:config -> domain:float * float -> float array -> (float * float) array
(** The [(x, |f_hat''(x)|)] grid the detector works from, for inspection and
    plotting. *)
