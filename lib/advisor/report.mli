(** Machine-readable reports — the one output schema shared by
    [selest_cli advise --json] and [selest_cli compare --json].

    The encoder is a small self-contained JSON printer (no external
    dependency): objects keep insertion order, strings are escaped per
    RFC 8259, floats print with round-trippable precision and non-finite
    floats encode as [null] (JSON has no IEEE specials).  Every report
    carries the same envelope — [schema], [kind], [dataset] — and
    describes per-spec error summaries with one shared row shape, so a
    consumer that parses [compare] output parses [advise] output too. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list
      (** a JSON value; [Obj] preserves field order *)

val to_string : json -> string
(** Render with 2-space indentation and a trailing newline. *)

val schema : string
(** The envelope tag: ["selest-advisor-report v1"]. *)

val summary_json : Workload.Metrics.summary -> json
(** The shared error-summary shape: [mre], [mae], [mean_signed],
    [max_relative], [evaluated], [skipped_empty]. *)

val compare_report :
  dataset:string ->
  records:int ->
  sample_size:int ->
  fraction:float ->
  count:int ->
  (string * Workload.Metrics.summary) list ->
  json
(** The [compare --json] payload: envelope with [kind = "compare"],
    workload parameters, and one row per spec ([label] + [summary]). *)

val advise_report : Sweep.t -> Recommend.t -> json
(** The [advise --json] payload: envelope with [kind = "advise"], the
    workload grid (achieved and skipped cells), per-spec costs (with the
    VC confidence bound on sampling rows), the crossover matrix, the
    Pareto front and the recommendation (spec, score, regrets,
    provenance). *)
