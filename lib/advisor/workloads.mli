(** Targeted-selectivity workload synthesis.

    {!Workload.Generate} draws queries of a fixed {e width fraction}; their
    achieved selectivity is whatever the data makes it.  The advisor needs
    the opposite: query sets whose {e achieved} selectivity lands within a
    stated tolerance of a target (0.1%–50%), across placement profiles,
    so estimator sweeps compare specs at the selectivity bands where the
    paper's Section 5 crossovers live.

    Generation inverts the empirical CDF: each query picks a center per the
    placement profile, then binary-searches the smallest integer width
    whose exact selectivity (via {!Data.Dataset.exact_count}) reaches the
    target — counts are monotone in the width, so the search is exact —
    and accepts the width (or its predecessor, whichever lands closer) only
    when the achieved selectivity is within the tolerance.  Everything is
    deterministic from the seed ({!Prng.Xoshiro256pp}).

    Degenerate attributes (constant columns, fewer distinct values than
    the duplicate mass needs, targets below the attribute's selectivity
    granularity) are reported as a typed {!failure} instead of looping or
    emitting zero-selectivity queries: a generated workload's queries
    always have finite bounds and strictly positive true result sizes. *)

type placement =
  | Data_skew  (** centers drawn from record values — follows the data *)
  | Uniform  (** centers drawn uniformly over the integer domain *)
  | Antimode
      (** centers biased to low-density regions: the sparsest of several
          uniform candidate positions (an adversarial profile for
          sample-based estimators) *)

val placement_name : placement -> string
(** ["data"], ["uniform"] or ["antimode"] — also the CLI syntax. *)

val placement_of_string : string -> (placement, string) result
(** Inverse of {!placement_name}. *)

type t = {
  target : float;  (** requested selectivity, in [(0, 1]] *)
  tolerance : float;  (** accepted relative deviation, in [(0, 1)] *)
  placement : placement;
  queries : Workload.Query.t array;  (** the generated query set *)
  achieved : float array;
      (** exact selectivity of each query; every entry is positive and
          within [tolerance * target] of [target] *)
  mean_achieved : float;  (** mean of [achieved] *)
}

type failure = {
  f_target : float;
  f_placement : placement;
  f_best : float;
      (** achieved selectivity closest to the target over all attempts
          (0 when no candidate was evaluated) *)
  f_reason : string;  (** human-readable diagnosis, e.g. a constant column *)
}

val default_tolerance : float
(** 0.1 — accept within ±10% (relative) of the target. *)

val default_targets : float list
(** The advisor's selectivity grid: 0.1%, 1%, 5%, 10%, 25%, 50%. *)

val default_placements : placement list
(** [[Data_skew; Uniform]] — the two profiles every sweep covers. *)

val generate :
  Data.Dataset.t ->
  seed:int64 ->
  placement:placement ->
  target:float ->
  ?tolerance:float ->
  count:int ->
  unit ->
  (t, failure) result
(** [generate ds ~seed ~placement ~target ~count ()] synthesizes [count]
    queries whose exact selectivity on [ds] is within
    [tolerance * target] (relative) of [target].  Deterministic from
    [seed].  Attempts per query are bounded; if any query cannot be
    placed the whole workload fails with the closest achieved selectivity
    and a diagnosis.
    @raise Invalid_argument if [target] is outside [(0, 1]], [tolerance]
    outside [(0, 1)], or [count < 1]. *)

val grid :
  Data.Dataset.t ->
  seed:int64 ->
  ?targets:float list ->
  ?placements:placement list ->
  ?tolerance:float ->
  count:int ->
  unit ->
  (placement * float * (t, failure) result) list
(** The full workload grid: every placement × target cell, each generated
    from an independent substream of [seed] (so cells are individually
    reproducible regardless of grid shape).  Cells that fail are reported
    in place, never silently dropped. *)
