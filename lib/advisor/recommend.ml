type weights = {
  w_accuracy : float;
  w_build : float;
  w_query : float;
  w_tie_margin : float;
}

let default_weights =
  { w_accuracy = 1.0; w_build = 0.0; w_query = 0.0; w_tie_margin = 0.10 }

let validate_weights w =
  if not (w.w_accuracy > 0.) then
    invalid_arg "Advisor.Recommend: w_accuracy must be positive";
  if w.w_build < 0. || w.w_query < 0. then
    invalid_arg "Advisor.Recommend: cost weights must be non-negative";
  if not (w.w_tie_margin >= 0. && w.w_tie_margin < 1.) then
    invalid_arg "Advisor.Recommend: w_tie_margin must be in [0, 1)"

let weights_of_string s =
  let parts = String.split_on_char ',' (String.trim s) in
  let parse f =
    match float_of_string_opt (String.trim f) with
    | Some v when v >= 0. && v = v -> Ok v
    | _ -> Error (Printf.sprintf "bad weight %S (expected a non-negative number)" f)
  in
  let ( let* ) = Result.bind in
  match parts with
  | [ a; b; q ] | [ a; b; q; _ ] -> (
      let* acc = parse a in
      let* build = parse b in
      let* query = parse q in
      let* margin =
        match parts with
        | [ _; _; _; m ] -> parse m
        | _ -> Ok default_weights.w_tie_margin
      in
      let w =
        { w_accuracy = acc; w_build = build; w_query = query; w_tie_margin = margin }
      in
      match validate_weights w with
      | () -> Ok w
      | exception Invalid_argument msg -> Error msg)
  | _ ->
      Error
        (Printf.sprintf
           "bad weights %S (expected accuracy,build,query[,tie-margin])" s)

type t = {
  r_spec : string;
  r_label : string;
  r_parsed : Selest.Estimator.spec;
  r_score : float;
  r_mean_mre : float;
  r_best_mre : float;
  r_regret : float;
  r_oracle_mre : float;
  r_oracle_regret : float;
  r_weights : weights;
  r_front : Pareto.point list;
  r_crossover : Pareto.band list;
  r_vc_epsilon : float option;
  r_provenance : string;
}

let choose ~weights points =
  validate_weights weights;
  let front = Pareto.front points in
  match front with
  | [] -> None
  | _ ->
      let max_of f = List.fold_left (fun acc p -> Float.max acc (f p)) 0. front in
      let max_mre = max_of (fun (p : Pareto.point) -> p.Pareto.p_mre) in
      let max_build = max_of (fun (p : Pareto.point) -> p.Pareto.p_build_s) in
      let max_ns = max_of (fun (p : Pareto.point) -> p.Pareto.p_ns) in
      let norm v m = if m > 0. then v /. m else 0. in
      let score (p : Pareto.point) =
        (weights.w_accuracy *. norm p.Pareto.p_mre max_mre)
        +. (weights.w_build *. norm p.Pareto.p_build_s max_build)
        +. (weights.w_query *. norm p.Pareto.p_ns max_ns)
      in
      let scored = List.map (fun p -> (score p, p)) front in
      let best = List.fold_left (fun acc (s, _) -> Float.min acc s) infinity scored in
      (* the tie band is relative; candidates inside it resolve to the
         earliest (cheapest, by suite order) spec *)
      let cutoff = best +. (weights.w_tie_margin *. Float.abs best) in
      List.find_opt (fun (s, _) -> s <= cutoff) scored |> Option.map snd

(* regret of 0/0 is a perfect score, x/0 with x > 0 unbounded *)
let safe_ratio num den = if den > 0. then num /. den else if num = 0. then 1. else infinity

let recommend ?(weights = default_weights) (s : Sweep.t) =
  let points = Pareto.points_of_sweep s in
  match choose ~weights points with
  | None -> Error "Advisor.Recommend: sweep produced no candidate specs"
  | Some p -> (
      match Selest.Estimator.spec_of_string p.Pareto.p_spec with
      | Error msg ->
          Error (Printf.sprintf "Advisor.Recommend: unparseable winner %S: %s" p.Pareto.p_spec msg)
      | Ok parsed ->
          let front = Pareto.front points in
          let crossover = Pareto.crossover s in
          let best_mre =
            List.fold_left
              (fun acc (q : Pareto.point) -> Float.min acc q.Pareto.p_mre)
              infinity points
          in
          let oracle_mre =
            let n = List.length crossover in
            List.fold_left
              (fun acc (b : Pareto.band) -> acc +. b.Pareto.b_winner_mre)
              0. crossover
            /. float_of_int (max 1 n)
          in
          (* recompute the winning score exactly as [choose] saw it *)
          let max_of f = List.fold_left (fun acc q -> Float.max acc (f q)) 0. front in
          let max_mre = max_of (fun (q : Pareto.point) -> q.Pareto.p_mre) in
          let max_build = max_of (fun (q : Pareto.point) -> q.Pareto.p_build_s) in
          let max_ns = max_of (fun (q : Pareto.point) -> q.Pareto.p_ns) in
          let norm v m = if m > 0. then v /. m else 0. in
          let score =
            (weights.w_accuracy *. norm p.Pareto.p_mre max_mre)
            +. (weights.w_build *. norm p.Pareto.p_build_s max_build)
            +. (weights.w_query *. norm p.Pareto.p_ns max_ns)
          in
          let vc =
            List.find_map
              (fun (c : Sweep.cost) ->
                if c.Sweep.c_spec = p.Pareto.p_spec then c.Sweep.c_vc_epsilon else None)
              s.Sweep.s_costs
          in
          let regret = safe_ratio p.Pareto.p_mre best_mre in
          let oracle_regret = safe_ratio p.Pareto.p_mre oracle_mre in
          let bands =
            List.length
              (List.sort_uniq compare
                 (List.map (fun (_, t, _) -> t) s.Sweep.s_workloads))
          in
          let placements =
            List.length
              (List.sort_uniq compare
                 (List.map (fun (pl, _, _) -> pl) s.Sweep.s_workloads))
          in
          let provenance =
            Printf.sprintf
              "advisor v1 spec=%s dataset=%s seed=%Ld sample=%d grid=%dx%d count=%d \
               mre=%.6g regret=%.3f"
              p.Pareto.p_spec s.Sweep.s_dataset s.Sweep.s_seed s.Sweep.s_sample_size
              bands placements s.Sweep.s_count p.Pareto.p_mre regret
          in
          Ok
            {
              r_spec = p.Pareto.p_spec;
              r_label = p.Pareto.p_label;
              r_parsed = parsed;
              r_score = score;
              r_mean_mre = p.Pareto.p_mre;
              r_best_mre = best_mre;
              r_regret = regret;
              r_oracle_mre = oracle_mre;
              r_oracle_regret = oracle_regret;
              r_weights = weights;
              r_front = front;
              r_crossover = crossover;
              r_vc_epsilon = vc;
              r_provenance = provenance;
            })
