(** Pareto fronts and the crossover matrix over a completed sweep.

    A spec is summarized as a 3-D {!point} — accuracy (mean MRE over the
    workload grid), build cost, query cost — and the {!front} keeps only
    the non-dominated ones: a dominated spec is worse-or-equal on every
    axis and strictly worse on at least one, so no scoring policy with
    non-negative weights can prefer it.  The {!crossover} matrix is the
    paper's Section 5 story made machine-readable: the winning spec per
    (selectivity band × placement profile) cell. *)

type point = {
  p_spec : string;  (** compact spec syntax *)
  p_label : string;  (** display name *)
  p_mre : float;  (** mean MRE across the achieved workload cells *)
  p_build_s : float;  (** build wall-time, seconds *)
  p_ns : float;  (** batch-path ns per estimate *)
}
(** One spec's position in accuracy × build-cost × query-cost space. *)

val points_of_sweep : Sweep.t -> point list
(** One point per swept spec, in suite order. *)

val dominates : point -> point -> bool
(** [dominates p q] iff [p] is no worse than [q] on all three axes and
    strictly better on at least one. *)

val front : point list -> point list
(** The non-dominated subset, preserving input order.  Duplicate
    coordinates survive (neither copy strictly beats the other). *)

type band = {
  b_placement : Workloads.placement;
  b_target : float;
  b_winner : string;  (** spec with the lowest MRE in this cell *)
  b_winner_label : string;
  b_winner_mre : float;
  b_mres : (string * float) list;  (** every spec's MRE, suite order *)
}
(** One crossover cell: a selectivity band × placement profile, with the
    winning spec and the full MRE column. *)

val crossover : Sweep.t -> band list
(** The crossover matrix in workload-grid order.  Ties go to the spec
    earliest in the suite order (the cheapest, by the documented suite
    ladder). *)
