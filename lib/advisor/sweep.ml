module D = Data.Dataset
module Q = Workload.Query
module Est = Selest.Estimator

type measurement = {
  m_spec : string;
  m_label : string;
  m_placement : Workloads.placement;
  m_target : float;
  m_summary : Workload.Metrics.summary;
}

type cost = {
  c_spec : string;
  c_label : string;
  c_build_s : float;
  c_ns_per_estimate : float;
  c_vc_epsilon : float option;
}

type t = {
  s_dataset : string;
  s_records : int;
  s_sample_size : int;
  s_seed : int64;
  s_tolerance : float;
  s_count : int;
  s_specs : (string * Est.spec) list;
  s_workloads : (Workloads.placement * float * Workloads.t) list;
  s_skipped : Workloads.failure list;
  s_cells : measurement list;
  s_costs : cost list;
}

let spec_exn s =
  match Est.spec_of_string s with
  | Ok spec -> (s, spec)
  | Error msg -> invalid_arg (Printf.sprintf "Advisor.Sweep: bad suite spec %S: %s" s msg)

let default_suite =
  List.map spec_exn
    [
      "uniform";
      "sampling";
      "ewh";
      "fp";
      "edh:40";
      "mdh:40";
      "wave:64";
      "ash";
      "voh:24";
      "kernel:ns";
      "kernel";
      "hybrid";
    ]

(* sqrt (c/n * (d + ln (1/delta))) at d = 2 (1-D ranges), c = 0.5,
   delta = 0.05 — see the .mli and PAPERS.md. *)
let vc_epsilon ~n =
  if n < 1 then invalid_arg "Advisor.Sweep.vc_epsilon: n must be >= 1";
  sqrt (0.5 /. float_of_int n *. (2.0 +. log (1. /. 0.05)))

(* One prepared workload cell: bounds split into the SoA layout the batch
   evaluator consumes, truths computed once and shared by every spec. *)
type prepared = {
  p_placement : Workloads.placement;
  p_target : float;
  p_n : int;
  p_a : float array;
  p_b : float array;
  p_truth : float array;
}

let prepare ds (placement, target, (wl : Workloads.t)) =
  let qs = wl.Workloads.queries in
  {
    p_placement = placement;
    p_target = target;
    p_n = Array.length qs;
    p_a = Array.map (fun (q : Q.t) -> q.Q.lo) qs;
    p_b = Array.map (fun (q : Q.t) -> q.Q.hi) qs;
    p_truth =
      Array.map
        (fun (q : Q.t) -> float_of_int (D.exact_count ds ~lo:q.Q.lo ~hi:q.Q.hi))
        qs;
  }

(* Per-query batch cost over the concatenated grid, repeated until the
   measurement spans at least ~10 ms (or a rep cap) to get past timer
   granularity. *)
let time_batch plan ~n ~a ~b ~out =
  Selest.Batch.estimate_into plan ~n ~a ~b ~out;
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < 0.01 && !reps < 200 do
    Selest.Batch.estimate_into plan ~n ~a ~b ~out;
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !reps /. float_of_int n *. 1e9

let run ?(jobs = 1) ?(specs = default_suite) ?targets ?placements
    ?(tolerance = Workloads.default_tolerance) ?(count = 200) ds ~seed ~sample =
  if specs = [] then invalid_arg "Advisor.Sweep.run: empty spec suite";
  if Array.length sample = 0 then invalid_arg "Advisor.Sweep.run: empty sample";
  let grid = Workloads.grid ds ~seed ?targets ?placements ~tolerance ~count () in
  let workloads =
    List.filter_map
      (function p, t, Ok wl -> Some (p, t, wl) | _, _, Error _ -> None)
      grid
  in
  let skipped =
    List.filter_map (function _, _, Error f -> Some f | _, _, Ok _ -> None) grid
  in
  if workloads = [] then
    invalid_arg "Advisor.Sweep.run: no workload cell achieved its target";
  let prepared = List.map (prepare ds) workloads in
  let total = List.fold_left (fun acc p -> acc + p.p_n) 0 prepared in
  let all_a = Array.make total 0. in
  let all_b = Array.make total 0. in
  let _ =
    List.fold_left
      (fun off p ->
        Array.blit p.p_a 0 all_a off p.p_n;
        Array.blit p.p_b 0 all_b off p.p_n;
        off + p.p_n)
      0 prepared
  in
  let domain = Workload.Experiment.domain_of ds in
  let n_records = float_of_int (D.size ds) in
  let evaluate (spec_string, spec) =
    let t0 = Unix.gettimeofday () in
    let est = Est.build spec ~domain sample in
    let build_s = Unix.gettimeofday () -. t0 in
    let label = Est.name est in
    let plan = Selest.Batch.compile est in
    let measurements =
      List.map
        (fun p ->
          let out = Array.make p.p_n 0. in
          Selest.Batch.estimate_into plan ~n:p.p_n ~a:p.p_a ~b:p.p_b ~out;
          let pairs =
            Array.init p.p_n (fun i -> (p.p_truth.(i), out.(i) *. n_records))
          in
          {
            m_spec = spec_string;
            m_label = label;
            m_placement = p.p_placement;
            m_target = p.p_target;
            m_summary = Workload.Metrics.summarize pairs;
          })
        prepared
    in
    let scratch = Array.make total 0. in
    let ns = time_batch plan ~n:total ~a:all_a ~b:all_b ~out:scratch in
    let vc =
      match spec with
      | Est.Sampling -> Some (vc_epsilon ~n:(Array.length sample))
      | _ -> None
    in
    ( measurements,
      {
        c_spec = spec_string;
        c_label = label;
        c_build_s = build_s;
        c_ns_per_estimate = ns;
        c_vc_epsilon = vc;
      } )
  in
  let results = Parallel.Map.map ~jobs evaluate (Array.of_list specs) in
  {
    s_dataset = D.name ds;
    s_records = D.size ds;
    s_sample_size = Array.length sample;
    s_seed = seed;
    s_tolerance = tolerance;
    s_count = count;
    s_specs = specs;
    s_workloads = workloads;
    s_skipped = skipped;
    s_cells = List.concat_map fst (Array.to_list results);
    s_costs = List.map snd (Array.to_list results);
  }
