type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  match classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ ->
      (* shortest representation that round-trips *)
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            go (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (indent + 2) item)
          fields;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let schema = "selest-advisor-report v1"

let summary_json (s : Workload.Metrics.summary) =
  Obj
    [
      ("mre", Float s.Workload.Metrics.mre);
      ("mae", Float s.Workload.Metrics.mae);
      ("mean_signed", Float s.Workload.Metrics.mean_signed);
      ("max_relative", Float s.Workload.Metrics.max_relative);
      ("evaluated", Int s.Workload.Metrics.evaluated);
      ("skipped_empty", Int s.Workload.Metrics.skipped_empty);
    ]

let spec_row label summary = Obj [ ("label", String label); ("summary", summary_json summary) ]

let compare_report ~dataset ~records ~sample_size ~fraction ~count rows =
  Obj
    [
      ("schema", String schema);
      ("kind", String "compare");
      ("dataset", String dataset);
      ("records", Int records);
      ("sample_size", Int sample_size);
      ( "workload",
        Obj [ ("fraction", Float fraction); ("count", Int count) ] );
      ("specs", List (List.map (fun (label, s) -> spec_row label s) rows));
    ]

let placement_json p = String (Workloads.placement_name p)

let workload_json (placement, target, (wl : Workloads.t)) =
  Obj
    [
      ("placement", placement_json placement);
      ("target", Float target);
      ("tolerance", Float wl.Workloads.tolerance);
      ("count", Int (Array.length wl.Workloads.queries));
      ("mean_achieved", Float wl.Workloads.mean_achieved);
    ]

let skipped_json (f : Workloads.failure) =
  Obj
    [
      ("placement", placement_json f.Workloads.f_placement);
      ("target", Float f.Workloads.f_target);
      ("best_achieved", Float f.Workloads.f_best);
      ("reason", String f.Workloads.f_reason);
    ]

let cost_json (c : Sweep.cost) =
  Obj
    [
      ("spec", String c.Sweep.c_spec);
      ("label", String c.Sweep.c_label);
      ("build_s", Float c.Sweep.c_build_s);
      ("ns_per_estimate", Float c.Sweep.c_ns_per_estimate);
      ( "vc_epsilon",
        match c.Sweep.c_vc_epsilon with None -> Null | Some e -> Float e );
    ]

let point_json (p : Pareto.point) =
  Obj
    [
      ("spec", String p.Pareto.p_spec);
      ("label", String p.Pareto.p_label);
      ("mean_mre", Float p.Pareto.p_mre);
      ("build_s", Float p.Pareto.p_build_s);
      ("ns_per_estimate", Float p.Pareto.p_ns);
    ]

let band_json (b : Pareto.band) =
  Obj
    [
      ("placement", placement_json b.Pareto.b_placement);
      ("target", Float b.Pareto.b_target);
      ("winner", String b.Pareto.b_winner);
      ("winner_label", String b.Pareto.b_winner_label);
      ("winner_mre", Float b.Pareto.b_winner_mre);
      ("mre_by_spec", Obj (List.map (fun (s, m) -> (s, Float m)) b.Pareto.b_mres));
    ]

let cell_json (m : Sweep.measurement) =
  Obj
    [
      ("spec", String m.Sweep.m_spec);
      ("placement", placement_json m.Sweep.m_placement);
      ("target", Float m.Sweep.m_target);
      ("summary", summary_json m.Sweep.m_summary);
    ]

let recommendation_json (r : Recommend.t) =
  Obj
    [
      ("spec", String r.Recommend.r_spec);
      ("label", String r.Recommend.r_label);
      ("score", Float r.Recommend.r_score);
      ("mean_mre", Float r.Recommend.r_mean_mre);
      ("best_mre", Float r.Recommend.r_best_mre);
      ("regret", Float r.Recommend.r_regret);
      ("oracle_mre", Float r.Recommend.r_oracle_mre);
      ("oracle_regret", Float r.Recommend.r_oracle_regret);
      ( "weights",
        Obj
          [
            ("accuracy", Float r.Recommend.r_weights.Recommend.w_accuracy);
            ("build", Float r.Recommend.r_weights.Recommend.w_build);
            ("query", Float r.Recommend.r_weights.Recommend.w_query);
            ("tie_margin", Float r.Recommend.r_weights.Recommend.w_tie_margin);
          ] );
      ( "vc_epsilon",
        match r.Recommend.r_vc_epsilon with None -> Null | Some e -> Float e );
      ("provenance", String r.Recommend.r_provenance);
    ]

let advise_report (s : Sweep.t) (r : Recommend.t) =
  Obj
    [
      ("schema", String schema);
      ("kind", String "advise");
      ("dataset", String s.Sweep.s_dataset);
      ("records", Int s.Sweep.s_records);
      ("sample_size", Int s.Sweep.s_sample_size);
      ("seed", Int (Int64.to_int s.Sweep.s_seed));
      ("tolerance", Float s.Sweep.s_tolerance);
      ("count", Int s.Sweep.s_count);
      ("workloads", List (List.map workload_json s.Sweep.s_workloads));
      ("skipped", List (List.map skipped_json s.Sweep.s_skipped));
      ("costs", List (List.map cost_json s.Sweep.s_costs));
      ("cells", List (List.map cell_json s.Sweep.s_cells));
      ("crossover", List (List.map band_json (Recommend.(r.r_crossover))));
      ("pareto_front", List (List.map point_json (Recommend.(r.r_front))));
      ("recommendation", recommendation_json r);
    ]
