(** Estimator sweep over a targeted-selectivity workload grid.

    {!run} generates the {!Workloads} grid, builds every spec of the
    candidate suite once on the shared sample, and evaluates each spec on
    every workload cell through the {!Selest.Batch} path.  Specs are
    distributed over {!Parallel.Map} (one task per spec, mirroring
    {!Workload.Experiment.compare_specs}); each task computes its
    summaries sequentially in grid order, so every error figure is
    bit-identical for every [jobs] value.  Build wall-time and
    ns/estimate are measured per spec — they are wall-clock costs, useful
    for Pareto fronts and reports but explicitly outside the determinism
    contract. *)

type measurement = {
  m_spec : string;  (** compact spec syntax, re-parseable *)
  m_label : string;  (** display name ({!Selest.Estimator.spec_name}) *)
  m_placement : Workloads.placement;
  m_target : float;
  m_summary : Workload.Metrics.summary;  (** errors on that workload cell *)
}
(** One (spec × workload cell) evaluation. *)

type cost = {
  c_spec : string;
  c_label : string;
  c_build_s : float;  (** wall-clock build time of the spec on the sample *)
  c_ns_per_estimate : float;
      (** batch-path cost per query, measured over the whole grid *)
  c_vc_epsilon : float option;
      (** for sampling-backed specs: the VC-dimension uniform error bound
          {!vc_epsilon} at the sweep's sample size *)
}
(** Per-spec cost figures (wall-clock; not part of bit-identity). *)

type t = {
  s_dataset : string;
  s_records : int;
  s_sample_size : int;
  s_seed : int64;  (** workload-generation seed *)
  s_tolerance : float;
  s_count : int;  (** queries per workload cell *)
  s_specs : (string * Selest.Estimator.spec) list;  (** the swept suite *)
  s_workloads : (Workloads.placement * float * Workloads.t) list;
      (** achieved workload cells, grid order *)
  s_skipped : Workloads.failure list;
      (** grid cells whose target was unachievable on this attribute *)
  s_cells : measurement list;  (** spec-major, grid-minor, fixed order *)
  s_costs : cost list;  (** one per spec, suite order *)
}
(** A completed sweep. *)

val default_suite : (string * Selest.Estimator.spec) list
(** The full estimator zoo in compact syntax, ordered from cheapest to
    most expensive to build and query (the recommendation tie-break
    ladder): uniform, sampling, EWH, frequency polygon, EDH, MDH,
    wavelet, ASH, V-optimal, kernel (normal scale), kernel (DPI2),
    hybrid. *)

val vc_epsilon : n:int -> float
(** Uniform relative-selectivity error bound for estimating range-query
    selectivities from an [n]-element random sample, in the VC-dimension
    framework of "The VC-Dimension of Queries and Selectivity Estimation
    Through Sampling" (PAPERS.md): with probability 1 - δ every range
    query's sampled selectivity is within
    [sqrt (c/n · (d + ln (1/δ)))] of the true one, instantiated at
    VC-dimension [d = 2] (1-D ranges), [c = 0.5] and [δ = 0.05]. *)

val run :
  ?jobs:int ->
  ?specs:(string * Selest.Estimator.spec) list ->
  ?targets:float list ->
  ?placements:Workloads.placement list ->
  ?tolerance:float ->
  ?count:int ->
  Data.Dataset.t ->
  seed:int64 ->
  sample:float array ->
  t
(** [run ds ~seed ~sample] sweeps the suite over the workload grid
    ([count] defaults to 200 queries per cell).  Unachievable grid cells
    are recorded in [s_skipped] and skipped by every spec; the sweep
    itself fails only if {e no} cell is achievable.
    @raise Invalid_argument on an empty suite, an empty sample, [jobs < 1],
    or a grid with no achievable cell. *)
