(** Spec recommendation: accuracy-first scoring with cost tie-breaks.

    Candidates are restricted to the Pareto {!Pareto.front} (a dominated
    spec is never recommended).  Each candidate is scored as a weighted
    sum of max-normalized accuracy and costs,

    {v score = w_accuracy * mre/max_mre
            + w_build * build/max_build + w_query * ns/max_ns v}

    and candidates within [w_tie_margin] (relative) of the best score are
    a tie, resolved to the earliest candidate in suite order — the suite
    is ordered cheapest-first, so ties fall to the cheaper spec.  The
    {!default_weights} put all weight on accuracy, which makes the
    default recommendation a pure function of the (bit-identical) swept
    MREs: same data + same seed ⇒ same spec, at any [jobs].  Non-zero
    build/query weights fold measured wall-clock costs into the score,
    trading that determinism for operator-controlled cost pressure. *)

type weights = {
  w_accuracy : float;  (** weight on normalized mean MRE *)
  w_build : float;  (** weight on normalized build wall-time *)
  w_query : float;  (** weight on normalized ns/estimate *)
  w_tie_margin : float;
      (** relative score band treated as a tie (resolved cheapest-first) *)
}

val default_weights : weights
(** [{ w_accuracy = 1.0; w_build = 0.0; w_query = 0.0;
      w_tie_margin = 0.10 }] — accuracy decides, specs within 10% of the
    best score tie, and ties fall to the cheaper spec. *)

val weights_of_string : string -> (weights, string) result
(** Parse ["accuracy,build,query"] or ["accuracy,build,query,margin"]
    (e.g. ["1,0.1,0.1"]) — the CLI's [--weights] syntax.  Weights must be
    non-negative with [w_accuracy > 0]; the margin must be in [[0, 1)]. *)

type t = {
  r_spec : string;  (** recommended spec, compact re-parseable syntax *)
  r_label : string;  (** display name *)
  r_parsed : Selest.Estimator.spec;  (** the parsed spec, ready to build *)
  r_score : float;  (** the winning score *)
  r_mean_mre : float;  (** chosen spec's mean MRE over the grid *)
  r_best_mre : float;  (** best single-spec mean MRE in the sweep *)
  r_regret : float;
      (** [r_mean_mre / r_best_mre] — the figure gated by [bench --advise] *)
  r_oracle_mre : float;
      (** mean over grid cells of the per-cell best MRE: the (usually
          unattainable) per-workload oracle that switches spec per cell *)
  r_oracle_regret : float;  (** [r_mean_mre / r_oracle_mre] *)
  r_weights : weights;
  r_front : Pareto.point list;  (** the candidates actually considered *)
  r_crossover : Pareto.band list;  (** the winner per grid cell *)
  r_vc_epsilon : float option;
      (** the sampling confidence bound, when the chosen spec is
          sampling-backed *)
  r_provenance : string;
      (** one-line audit string (spec, seed, grid shape, regret) recorded
          in catalog entries built with [--spec auto] *)
}
(** A recommendation with the evidence that produced it. *)

val choose : weights:weights -> Pareto.point list -> Pareto.point option
(** The bare policy on a point list (exposed for hand-built-table tests):
    restrict to the front, score, tie-break.  [None] on an empty list.
    @raise Invalid_argument on invalid weights. *)

val recommend : ?weights:weights -> Sweep.t -> (t, string) result
(** Score the sweep and recommend a spec.  [Error] only when the sweep
    has no measurable cells. *)
