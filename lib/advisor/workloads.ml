(* Targeted-selectivity workload synthesis by empirical-CDF inversion.

   A query is a run of [w] consecutive integer atoms around a center drawn
   per the placement profile, represented with the repository's
   half-integer bounds ([a - 0.5, a + w - 1 + 0.5]) so the exact oracle
   and the density estimators agree on which atoms it covers.  For a fixed
   center the covered interval is nested as [w] grows (the left edge only
   moves left, the right edge only moves right, and domain clamping only
   ever extends the opposite side), so the exact count is monotone
   non-decreasing in [w] and the smallest width reaching the target is
   found by plain binary search — at most [log2 domain_size] oracle
   probes, each an [O(log n)] bisection on the sorted values. *)

module D = Data.Dataset
module Q = Workload.Query
module Rng = Prng.Xoshiro256pp

type placement = Data_skew | Uniform | Antimode

let placement_name = function
  | Data_skew -> "data"
  | Uniform -> "uniform"
  | Antimode -> "antimode"

let placement_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "data" | "skew" | "data-skew" -> Ok Data_skew
  | "uniform" -> Ok Uniform
  | "antimode" | "anti" -> Ok Antimode
  | other ->
      Error
        (Printf.sprintf "unknown placement %S (expected data, uniform or antimode)" other)

type t = {
  target : float;
  tolerance : float;
  placement : placement;
  queries : Q.t array;
  achieved : float array;
  mean_achieved : float;
}

type failure = {
  f_target : float;
  f_placement : placement;
  f_best : float;
  f_reason : string;
}

let default_tolerance = 0.1
let default_targets = [ 0.001; 0.01; 0.05; 0.10; 0.25; 0.50 ]
let default_placements = [ Data_skew; Uniform ]

(* Redraw budget per query: enough for placement profiles that land on
   unlucky centers, small enough that a degenerate attribute fails fast. *)
let attempts_per_query = 64

(* Number of candidate positions probed for the antimode profile, and the
   half-width (as a fraction of the domain) of the density window. *)
let antimode_candidates = 8

let bounds_of ~limit ~center w =
  let a = center - (w / 2) in
  let a = if a < 0 then 0 else if a + w > limit then limit - w else a in
  (float_of_int a -. 0.5, float_of_int (a + w - 1) +. 0.5)

let selectivity_of ds ~limit ~center w =
  let lo, hi = bounds_of ~limit ~center w in
  D.exact_selectivity ds ~lo ~hi

(* Smallest [w] whose selectivity reaches [target]; exists because the
   full-domain query has selectivity 1 >= target. *)
let minimal_width ds ~limit ~center ~target =
  if selectivity_of ds ~limit ~center 1 >= target then 1
  else begin
    let lo = ref 1 and hi = ref limit in
    while !hi - !lo > 1 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if selectivity_of ds ~limit ~center mid >= target then hi := mid else lo := mid
    done;
    !hi
  end

let draw_center ds rng ~limit = function
  | Data_skew ->
      let values = D.values ds in
      values.(Rng.int_below rng (Array.length values))
  | Uniform -> Rng.int_below rng limit
  | Antimode ->
      let window = float_of_int (max 1 (limit / 256)) in
      let best = ref 0 and best_count = ref max_int in
      for _ = 1 to antimode_candidates do
        let c = Rng.int_below rng limit in
        let count =
          D.exact_count ds ~lo:(float_of_int c -. window) ~hi:(float_of_int c +. window)
        in
        if count < !best_count then begin
          best := c;
          best_count := count
        end
      done;
      !best

let diagnose ds ~target ~best =
  if D.distinct_count ds = 1 then
    Printf.sprintf
      "constant column: every query touching the data has selectivity 1 (closest \
       achieved %g for target %g)"
      best target
  else
    Printf.sprintf
      "achievable selectivities too coarse near %g: closest achieved %g (%d distinct \
       values, max duplicate frequency %d)"
      target best (D.distinct_count ds)
      (D.max_duplicate_frequency ds)

exception Unachievable

let generate ds ~seed ~placement ~target ?(tolerance = default_tolerance) ~count () =
  if not (target > 0. && target <= 1.) then
    invalid_arg "Advisor.Workloads.generate: target must be in (0, 1]";
  if not (tolerance > 0. && tolerance < 1.) then
    invalid_arg "Advisor.Workloads.generate: tolerance must be in (0, 1)";
  if count < 1 then invalid_arg "Advisor.Workloads.generate: count must be >= 1";
  let rng = Rng.create seed in
  let limit = D.domain_size ds in
  let queries = Array.make count (Q.make ~lo:0. ~hi:0.) in
  let achieved = Array.make count 0. in
  (* Closest positive achieved selectivity over every candidate probed,
     kept for the failure report. *)
  let best = ref nan in
  let note sel =
    if sel > 0. then
      match classify_float !best with
      | FP_nan -> best := sel
      | _ -> if abs_float (sel -. target) < abs_float (!best -. target) then best := sel
  in
  try
    for i = 0 to count - 1 do
      let placed = ref false in
      let attempt = ref 0 in
      while (not !placed) && !attempt < attempts_per_query do
        incr attempt;
        let center = draw_center ds rng ~limit placement in
        let w = minimal_width ds ~limit ~center ~target in
        let consider wc =
          if (not !placed) && wc >= 1 then begin
            let sel = selectivity_of ds ~limit ~center wc in
            note sel;
            if sel > 0. && abs_float (sel -. target) <= tolerance *. target then begin
              let lo, hi = bounds_of ~limit ~center wc in
              queries.(i) <- Q.make ~lo ~hi;
              achieved.(i) <- sel;
              placed := true
            end
          end
        in
        (* [w] reaches the target from above, [w - 1] undershoots; try the
           closer of the two first. *)
        let sel_w = selectivity_of ds ~limit ~center w in
        let sel_pred = if w > 1 then selectivity_of ds ~limit ~center (w - 1) else 0. in
        if
          w > 1 && sel_pred > 0.
          && abs_float (sel_pred -. target) < abs_float (sel_w -. target)
        then begin
          consider (w - 1);
          consider w
        end
        else begin
          consider w;
          consider (w - 1)
        end
      done;
      if not !placed then raise Unachievable
    done;
    let mean = Array.fold_left ( +. ) 0. achieved /. float_of_int count in
    Ok { target; tolerance; placement; queries; achieved; mean_achieved = mean }
  with Unachievable ->
    let best = match classify_float !best with FP_nan -> 0. | _ -> !best in
    Error
      {
        f_target = target;
        f_placement = placement;
        f_best = best;
        f_reason = diagnose ds ~target ~best;
      }

(* Splitmix64 finalizer: the cell seed depends only on (seed, placement,
   target), never on the grid shape, so any cell can be regenerated in
   isolation. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let cell_seed seed placement target =
  let tag = match placement with Data_skew -> 1L | Uniform -> 2L | Antimode -> 3L in
  mix64
    (Int64.add seed
       (Int64.add (Int64.mul tag 0x9E3779B97F4A7C15L) (Int64.bits_of_float target)))

let grid ds ~seed ?(targets = default_targets) ?(placements = default_placements)
    ?(tolerance = default_tolerance) ~count () =
  List.concat_map
    (fun placement ->
      List.map
        (fun target ->
          let seed = cell_seed seed placement target in
          (placement, target, generate ds ~seed ~placement ~target ~tolerance ~count ()))
        targets)
    placements
