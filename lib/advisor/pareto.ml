type point = {
  p_spec : string;
  p_label : string;
  p_mre : float;
  p_build_s : float;
  p_ns : float;
}

let points_of_sweep (s : Sweep.t) =
  List.map
    (fun (c : Sweep.cost) ->
      let cells =
        List.filter (fun (m : Sweep.measurement) -> m.Sweep.m_spec = c.Sweep.c_spec) s.Sweep.s_cells
      in
      let n = List.length cells in
      let mean =
        if n = 0 then nan
        else
          List.fold_left
            (fun acc (m : Sweep.measurement) -> acc +. m.Sweep.m_summary.Workload.Metrics.mre)
            0. cells
          /. float_of_int n
      in
      {
        p_spec = c.Sweep.c_spec;
        p_label = c.Sweep.c_label;
        p_mre = mean;
        p_build_s = c.Sweep.c_build_s;
        p_ns = c.Sweep.c_ns_per_estimate;
      })
    s.Sweep.s_costs

let dominates p q =
  p.p_mre <= q.p_mre && p.p_build_s <= q.p_build_s && p.p_ns <= q.p_ns
  && (p.p_mre < q.p_mre || p.p_build_s < q.p_build_s || p.p_ns < q.p_ns)

let front points =
  List.filter (fun p -> not (List.exists (fun q -> q != p && dominates q p) points)) points

type band = {
  b_placement : Workloads.placement;
  b_target : float;
  b_winner : string;
  b_winner_label : string;
  b_winner_mre : float;
  b_mres : (string * float) list;
}

let crossover (s : Sweep.t) =
  List.map
    (fun (placement, target, _) ->
      let column =
        List.filter
          (fun (m : Sweep.measurement) ->
            m.Sweep.m_placement = placement && m.Sweep.m_target = target)
          s.Sweep.s_cells
      in
      match column with
      | [] -> invalid_arg "Advisor.Pareto.crossover: workload cell with no measurements"
      | first :: rest ->
          (* strict [<] keeps the earliest (cheapest) spec on ties *)
          let winner =
            List.fold_left
              (fun (acc : Sweep.measurement) (m : Sweep.measurement) ->
                if m.Sweep.m_summary.Workload.Metrics.mre
                   < acc.Sweep.m_summary.Workload.Metrics.mre
                then m
                else acc)
              first rest
          in
          {
            b_placement = placement;
            b_target = target;
            b_winner = winner.Sweep.m_spec;
            b_winner_label = winner.Sweep.m_label;
            b_winner_mre = winner.Sweep.m_summary.Workload.Metrics.mre;
            b_mres =
              List.map
                (fun (m : Sweep.measurement) ->
                  (m.Sweep.m_spec, m.Sweep.m_summary.Workload.Metrics.mre))
                column;
          })
    s.Sweep.s_workloads
