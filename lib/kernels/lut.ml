type t = {
  lo : float; (* -radius *)
  hi : float;
  inv_step : float; (* (size - 1) / (hi - lo) *)
  last : int; (* size - 2: highest valid left node of an interpolation cell *)
  table : float array; (* cdf samples at lo + i / inv_step *)
}

let default_size = 8193

let create ?(size = default_size) kernel =
  if size < 2 then invalid_arg "Lut.create: size must be at least 2";
  let r = Kernel.effective_radius kernel in
  let lo = -.r and hi = r in
  let step = (hi -. lo) /. float_of_int (size - 1) in
  let table = Array.init size (fun i -> Kernel.cdf kernel (lo +. (float_of_int i *. step))) in
  (* Pin the endpoints so clamping outside the table agrees exactly with the
     exact primitive at and beyond the support edge. *)
  table.(0) <- 0.0;
  table.(size - 1) <- 1.0;
  { lo; hi; inv_step = 1.0 /. step; last = size - 2; table }

let size t = t.last + 2
let lo t = t.lo
let inv_step t = t.inv_step
let table t = t.table

let[@inline always] cdf t x =
  if x <= t.lo then 0.0
  else begin
    let u = (x -. t.lo) *. t.inv_step in
    (* Clamp in float space before converting: for u >= 2^62 the int
       conversion is unspecified and can go negative, turning the unsafe
       table read out of bounds. *)
    if u >= float_of_int (t.last + 1) then 1.0
    else begin
      let i = int_of_float u in
      let y0 = Array.unsafe_get t.table i in
      y0 +. ((u -. float_of_int i) *. (Array.unsafe_get t.table (i + 1) -. y0))
    end
  end

let max_abs_error ?(probes_per_cell = 7) t kernel =
  let worst = ref 0.0 in
  let step = (t.hi -. t.lo) /. float_of_int (t.last + 1) in
  for i = 0 to t.last do
    for j = 0 to probes_per_cell - 1 do
      let x = t.lo +. ((float_of_int i +. (float_of_int j /. float_of_int probes_per_cell)) *. step) in
      let e = Float.abs (cdf t x -. Kernel.cdf kernel x) in
      if e > !worst then worst := e
    done
  done;
  !worst
