let[@inline always] check_q q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Boundary: q must be in [0, 1]"

(* Forced inline for the same reason as {!Kernel.eval}: the boundary-strip
   integration evaluates these once per sample per quadrature node, and a
   non-inlined call would box [u] and [q] each time.  Powers are expanded
   into multiplications ([( ** )] would go through libm [pow]). *)

let[@inline always] left ~u ~q =
  check_q q;
  if u < -1.0 || u > q then 0.0
  else begin
    let c = 1.0 +. q in
    let denom = c *. c *. c in
    (3.0 +. (3.0 *. q *. q) -. (6.0 *. u *. u)) /. denom
  end

let[@inline always] right ~u ~q = left ~u:(-.u) ~q

let[@inline always] left_cdf ~u ~q =
  check_q q;
  if u <= -1.0 then 0.0
  else if u >= q then 1.0
  else begin
    let c = 1.0 +. q in
    let denom = c *. c *. c in
    (* The kernel is signed near u = -1 (second-order boundary kernels are
       not densities), so the primitive may legitimately leave [0, 1] in the
       interior; do not clamp there. *)
    let v = ((3.0 +. (3.0 *. q *. q)) *. (u +. 1.0)) -. (2.0 *. ((u *. u *. u) +. 1.0)) in
    v /. denom
  end

let[@inline always] right_cdf ~u ~q = 1.0 -. left_cdf ~u:(-.u) ~q
