(** Kernel functions for density and selectivity estimation.

    Every kernel [K] is symmetric, integrates to one and has second moment
    [k2 = int t^2 K(t) dt <> 0], the conditions of Section 4.2.  The paper
    uses the Epanechnikov kernel (AMISE-optimal and cheap); the others are
    provided because Section 3.2 notes that the choice of [K] matters far
    less than the bandwidth — an ablation bench verifies exactly that.

    [cdf] is the primitive [int_{-inf}^x K]; selectivity estimation consumes
    only the primitive (formula (6) of the paper), never the kernel itself. *)

type t =
  | Epanechnikov
  | Biweight
  | Triweight
  | Triangular
  | Box  (** the uniform kernel [1/2] on [[-1, 1]] *)
  | Cosine
  | Gaussian

val all : t list
(** Every kernel, Epanechnikov first. *)

val name : t -> string
(** Stable lower-case name (["epanechnikov"], ["biweight"], ...) used by
    spec strings and reports. *)

val of_name : string -> t option
(** Case-insensitive inverse of {!name}. *)

val eval : t -> float -> float
(** [eval k t] is [K(t)]. *)

val cdf : t -> float -> float
(** [cdf k t] is [int_{-inf}^t K(u) du], clamped to [[0, 1]] outside the
    support.  For the Epanechnikov kernel this is
    [1/2 + (3t - t^3)/4], i.e. the paper's primitive [F_K] shifted so that
    it is a true CDF. *)

val second_moment : t -> float
(** [k2 = int t^2 K(t) dt]; [1/5] for Epanechnikov. *)

val roughness : t -> float
(** [R(K) = int K(t)^2 dt]; [3/5] for Epanechnikov. *)

val support_radius : t -> float option
(** [Some 1.0] for the compactly supported kernels, [None] for Gaussian. *)

val effective_radius : t -> float
(** Radius beyond which the kernel mass is negligible: the support radius
    for compact kernels, [8.0] for Gaussian (mass beyond is < 1e-15).  Used
    by the sorted-sample index to bound the scan. *)

val canonical_bandwidth_factor : t -> float
(** [delta0(K) = (R(K) / k2^2)^(1/5)].  Bandwidths tuned for one kernel
    transfer to another by rescaling with the ratio of these factors
    (canonical kernel theory), which the kernel-choice ablation uses. *)

val amise_constant : t -> float
(** The kernel-dependent constant [5/4 * (k2^2 R(K)^4)^(1/5)] appearing in
    the minimized AMISE [C(K) * (int f''^2)^(1/5) * n^(-4/5)]; smallest for
    the Epanechnikov kernel (its classical optimality). *)
