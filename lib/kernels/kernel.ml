type t =
  | Epanechnikov
  | Biweight
  | Triweight
  | Triangular
  | Box
  | Cosine
  | Gaussian

let all = [ Epanechnikov; Biweight; Triweight; Triangular; Box; Cosine; Gaussian ]

let name = function
  | Epanechnikov -> "epanechnikov"
  | Biweight -> "biweight"
  | Triweight -> "triweight"
  | Triangular -> "triangular"
  | Box -> "box"
  | Cosine -> "cosine"
  | Gaussian -> "gaussian"

let of_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun k -> name k = s) all

let half_pi = Float.pi /. 2.0

(* [eval] and [cdf] are forced inline: the batch evaluator calls them in
   per-sample loops where a non-inlined call would box the float argument
   and result on every sample (this toolchain has no flambda).  Inlined,
   the whole computation stays in registers. *)
let[@inline always] eval k t =
  match k with
  | Epanechnikov -> if Float.abs t <= 1.0 then 0.75 *. (1.0 -. (t *. t)) else 0.0
  | Biweight ->
    if Float.abs t <= 1.0 then begin
      let u = 1.0 -. (t *. t) in
      15.0 /. 16.0 *. u *. u
    end
    else 0.0
  | Triweight ->
    if Float.abs t <= 1.0 then begin
      let u = 1.0 -. (t *. t) in
      35.0 /. 32.0 *. u *. u *. u
    end
    else 0.0
  | Triangular -> if Float.abs t <= 1.0 then 1.0 -. Float.abs t else 0.0
  | Box -> if Float.abs t <= 1.0 then 0.5 else 0.0
  | Cosine -> if Float.abs t <= 1.0 then Float.pi /. 4.0 *. cos (half_pi *. t) else 0.0
  | Gaussian -> Stats.Special.normal_pdf t

(* Polynomial primitives use explicit powers-by-multiplication rather than
   [( ** )]: libm [pow] costs tens of nanoseconds per call against a couple
   of multiplies, and the estimate hot path evaluates two primitives per
   sample.  The low-order bits differ from the pow-based forms, well inside
   every documented tolerance. *)
let[@inline always] cdf k t =
  match k with
  | Epanechnikov ->
    if t <= -1.0 then 0.0
    else if t >= 1.0 then 1.0
    else 0.5 +. (((3.0 *. t) -. (t *. t *. t)) /. 4.0)
  | Biweight ->
    if t <= -1.0 then 0.0
    else if t >= 1.0 then 1.0
    else begin
      let t2 = t *. t in
      let t3 = t2 *. t in
      0.5 +. (15.0 /. 16.0 *. (t -. (2.0 /. 3.0 *. t3) +. (t3 *. t2 /. 5.0)))
    end
  | Triweight ->
    if t <= -1.0 then 0.0
    else if t >= 1.0 then 1.0
    else begin
      let t2 = t *. t in
      let t3 = t2 *. t in
      let t5 = t3 *. t2 in
      0.5 +. (35.0 /. 32.0 *. (t -. t3 +. (3.0 /. 5.0 *. t5) -. (t5 *. t2 /. 7.0)))
    end
  | Triangular ->
    if t <= -1.0 then 0.0
    else if t >= 1.0 then 1.0
    else if t < 0.0 then 0.5 *. (1.0 +. t) *. (1.0 +. t)
    else 1.0 -. (0.5 *. (1.0 -. t) *. (1.0 -. t))
  | Box -> if t <= -1.0 then 0.0 else if t >= 1.0 then 1.0 else 0.5 *. (t +. 1.0)
  | Cosine ->
    if t <= -1.0 then 0.0 else if t >= 1.0 then 1.0 else 0.5 *. (1.0 +. sin (half_pi *. t))
  | Gaussian -> Stats.Special.normal_cdf t

let second_moment = function
  | Epanechnikov -> 0.2
  | Biweight -> 1.0 /. 7.0
  | Triweight -> 1.0 /. 9.0
  | Triangular -> 1.0 /. 6.0
  | Box -> 1.0 /. 3.0
  | Cosine -> 1.0 -. (8.0 /. (Float.pi *. Float.pi))
  | Gaussian -> 1.0

let roughness = function
  | Epanechnikov -> 0.6
  | Biweight -> 5.0 /. 7.0
  | Triweight -> 350.0 /. 429.0
  | Triangular -> 2.0 /. 3.0
  | Box -> 0.5
  | Cosine -> Float.pi *. Float.pi /. 16.0
  | Gaussian -> 0.5 /. 1.7724538509055159

let support_radius = function
  | Epanechnikov | Biweight | Triweight | Triangular | Box | Cosine -> Some 1.0
  | Gaussian -> None

let effective_radius k = match support_radius k with Some r -> r | None -> 8.0

let canonical_bandwidth_factor k =
  let k2 = second_moment k in
  (roughness k /. (k2 *. k2)) ** 0.2

let amise_constant k =
  let k2 = second_moment k in
  1.25 *. ((k2 *. k2 *. (roughness k ** 4.0)) ** 0.2)
