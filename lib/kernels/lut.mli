(** Precomputed kernel-CDF lookup tables.

    The Gaussian kernel is the one kernel whose primitive goes through a
    transcendental ([erf]); in the batch estimate path that cost dominates
    per-sample work.  A table of CDF samples over the kernel's effective
    support with linear interpolation between nodes replaces the
    transcendental at a documented, tested accuracy (the compactly
    supported kernels keep their exact closed-form primitives and never use
    a table).

    With the default 8193-node table over [[-8, 8]] the interpolation error
    is bounded by [step^2 / 8 * max |K'|] — below [2e-7] for the Gaussian —
    and the resulting selectivity, a mean of per-sample CDF differences,
    inherits a bound twice that.  [docs/PERFORMANCE.md] documents the
    tolerance; the qcheck equivalence suite enforces it. *)

type t

val default_size : int
(** Number of table nodes used by {!create} when [size] is omitted
    (8193). *)

val create : ?size:int -> Kernel.t -> t
(** [create kernel] samples [Kernel.cdf kernel] at [size] equally spaced
    nodes across [[-r, r]] where [r] is the kernel's
    {!Kernel.effective_radius}.  The endpoint nodes are pinned to exactly
    [0] and [1] so the clamped regions agree with the exact primitive.
    @raise Invalid_argument when [size < 2]. *)

val cdf : t -> float -> float
(** [cdf t x] is the linear interpolation of the tabulated primitive at
    [x], clamped to [0] below the table and [1] above it.  Forced inline so
    batch loops keep [x] unboxed; allocation-free. *)

val size : t -> int
(** Number of nodes in the table. *)

val lo : t -> float
(** Position of the first table node ([-r]). *)

val inv_step : t -> float
(** Nodes per unit of [x]: [(size - 1) / (2 r)]. *)

val table : t -> float array
(** The raw CDF samples (shared storage: do not mutate).  Exposed so the
    batch evaluator can hoist the array into a register before a loop. *)

val max_abs_error : ?probes_per_cell:int -> t -> Kernel.t -> float
(** [max_abs_error t kernel] measures [max |cdf t x - Kernel.cdf kernel x|]
    over a grid of [probes_per_cell] points (default 7) inside every
    interpolation cell — the empirical version of the [step^2 / 8 * max
    |K'|] bound quoted above.  Used by tests to keep the documented
    tolerance honest. *)
