let is_sorted cmp a =
  let n = Array.length a in
  let rec go i = i >= n || (cmp a.(i - 1) a.(i) <= 0 && go (i + 1)) in
  go 1

let lower_bound cmp a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if cmp a.(mid) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound cmp a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if cmp a.(mid) x <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let count_in_range cmp a lo hi =
  if cmp lo hi > 0 then 0 else upper_bound cmp a hi - lower_bound cmp a lo

let[@inline always] float_lower_bound (a : float array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let[@inline always] float_upper_bound (a : float array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Branchless binary searches.  The loop body has no data-dependent branch:
   each step halves the live window and advances the base with integer
   arithmetic on the comparison result, so the only mispredictable control
   flow is the (log n) loop exit.  Results are identical to the classic
   searches above — the lower/upper bound of a sorted array is unique — and
   the [@inline always] annotation lets callers keep the probe value in a
   register (unboxed) across the call. *)

let[@inline always] branchless_lower_bound_from (a : float array) ~pos ~len x =
  let base = ref pos and n = ref len in
  while !n > 1 do
    let half = !n lsr 1 in
    let mid = !base + half in
    (* base += half iff a.(mid - 1) < x, i.e. the left half cannot hold the bound. *)
    base := !base + (half * Bool.to_int (Array.unsafe_get a (mid - 1) < x));
    n := !n - half
  done;
  if !n = 1 && Array.unsafe_get a !base < x then !base + 1 else !base

let[@inline always] branchless_upper_bound_from (a : float array) ~pos ~len x =
  let base = ref pos and n = ref len in
  while !n > 1 do
    let half = !n lsr 1 in
    let mid = !base + half in
    base := !base + (half * Bool.to_int (Array.unsafe_get a (mid - 1) <= x));
    n := !n - half
  done;
  if !n = 1 && Array.unsafe_get a !base <= x then !base + 1 else !base

let[@inline always] branchless_lower_bound (a : float array) x =
  branchless_lower_bound_from a ~pos:0 ~len:(Array.length a) x

let[@inline always] branchless_upper_bound (a : float array) x =
  branchless_upper_bound_from a ~pos:0 ~len:(Array.length a) x

let int_lower_bound (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let int_upper_bound (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo
