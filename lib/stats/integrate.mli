(** One-dimensional numeric integration.

    The bandwidth-selection plug-in rules integrate squared derivatives of
    kernel density estimates; those integrands are piecewise smooth with
    compact support, for which composite Simpson on a fixed grid is accurate
    and predictable.  Adaptive Simpson is provided for the tests that verify
    kernel normalization to tight tolerances. *)

val trapezoid : (float -> float) -> a:float -> b:float -> n:int -> float
(** [trapezoid f ~a ~b ~n] composite trapezoid rule on [n] intervals.
    @raise Invalid_argument if [n <= 0] or bounds are not finite. *)

val simpson : (float -> float) -> a:float -> b:float -> n:int -> float
(** [simpson f ~a ~b ~n] composite Simpson rule; [n] is rounded up to even.
    @raise Invalid_argument if [n <= 0] or bounds are not finite. *)

val adaptive_simpson :
  ?eps:float -> ?max_depth:int -> (float -> float) -> a:float -> b:float -> float
(** [adaptive_simpson f ~a ~b] recursively subdivides until the local Simpson
    error estimate is below [eps] (default [1e-10]) or [max_depth] (default
    [50]) is reached. *)

val gauss_legendre_10 : (float -> float) -> a:float -> b:float -> float
(** [gauss_legendre_10 f ~a ~b] is the 10-point Gauss-Legendre quadrature of
    [f] over [[a, b]]: exact for polynomials up to degree 19 and far cheaper
    than composite Simpson for smooth integrands (used on the kernel
    boundary strips, whose integrands are smooth rationals).
    @raise Invalid_argument if the bounds are not finite. *)

val gl10_nodes : float array
(** The five positive Gauss-Legendre nodes of the 10-point rule (symmetric
    halves); shared storage, do not mutate.  Exposed so the batch estimate
    path can replay {!gauss_legendre_10} with an inlined integrand and stay
    bit-identical with the scalar quadrature. *)

val gl10_weights : float array
(** Weights matching {!gl10_nodes}; shared storage, do not mutate. *)

val integrate_grid : float array -> float array -> float
(** [integrate_grid xs ys] trapezoid rule over tabulated points; [xs] must be
    strictly increasing and of the same length as [ys].
    @raise Invalid_argument on mismatched lengths or fewer than two points. *)
