(** Utilities over sorted arrays: binary searches and order checks.

    All searches assume the array is sorted in non-decreasing order; this is
    asserted in debug builds but not checked in release code since the hot
    paths of the estimators call them once per query. *)

val is_sorted : ('a -> 'a -> int) -> 'a array -> bool
(** [is_sorted cmp a] is true iff [a] is non-decreasing under [cmp]. *)

val lower_bound : ('a -> 'a -> int) -> 'a array -> 'a -> int
(** [lower_bound cmp a x] is the smallest index [i] with [cmp a.(i) x >= 0],
    or [Array.length a] if every element is smaller than [x].  In other
    words, the number of elements strictly below [x]. *)

val upper_bound : ('a -> 'a -> int) -> 'a array -> 'a -> int
(** [upper_bound cmp a x] is the smallest index [i] with [cmp a.(i) x > 0],
    or [Array.length a]: the number of elements less than or equal to [x]. *)

val count_in_range : ('a -> 'a -> int) -> 'a array -> 'a -> 'a -> int
(** [count_in_range cmp a lo hi] is the number of elements [e] of the sorted
    array [a] with [lo <= e <= hi].  Returns 0 when [lo > hi]. *)

val float_lower_bound : float array -> float -> int
(** {!lower_bound} specialized to floats (avoids the closure on hot paths). *)

val float_upper_bound : float array -> float -> int
(** {!upper_bound} specialized to floats. *)

val branchless_lower_bound : float array -> float -> int
(** Same result as {!float_lower_bound} (the bound index of a sorted array
    is unique), computed with a branch-free loop body: each step halves the
    live window and advances the base by integer arithmetic on the
    comparison, so the branch predictor only sees the [log n] loop exit.
    Used by the batch estimate kernels, where the probe values are
    data-dependent and classic binary search mispredicts half its
    comparisons. *)

val branchless_upper_bound : float array -> float -> int
(** Branch-free {!float_upper_bound}; see {!branchless_lower_bound}. *)

val branchless_lower_bound_from : float array -> pos:int -> len:int -> float -> int
(** {!branchless_lower_bound} restricted to the slice [\[pos, pos + len)]
    of a sorted array; returns an {e absolute} index in [\[pos, pos + len]].
    The batch evaluator uses this to search one component histogram inside
    a concatenated structure-of-arrays layout without slicing. *)

val branchless_upper_bound_from : float array -> pos:int -> len:int -> float -> int
(** Slice variant of {!branchless_upper_bound}; see
    {!branchless_lower_bound_from}. *)

val int_lower_bound : int array -> int -> int
(** {!lower_bound} specialized to ints. *)

val int_upper_bound : int array -> int -> int
(** {!upper_bound} specialized to ints. *)
