type config = {
  connect_timeout_s : float;
  read_timeout_s : float;
  retries : int;
  backoff_s : float;
  seed : int64;
}

let default_config =
  {
    connect_timeout_s = 1.0;
    read_timeout_s = 5.0;
    retries = 2;
    backoff_s = 0.02;
    seed = 0x5e1ec11e47L;
  }

type error =
  | Transport of string
  | Server of Wire.error_code * string
  | Protocol of string

let error_to_string = function
  | Transport m -> "transport: " ^ m
  | Server (code, m) ->
    Printf.sprintf "server %s: %s" (Wire.error_code_to_string code) m
  | Protocol m -> "protocol: " ^ m

type t = {
  address : Wire.address;
  config : config;
  rng : Prng.Splitmix64.t;
  mutable fd : Unix.file_descr option;
}

(* Failures worth retrying: the server not being up yet (refused /
   missing socket path), a connection lost between requests, or a
   timeout.  Anything else is reported on the first occurrence. *)
let transient = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT | Unix.ECONNRESET
  | Unix.ECONNABORTED | Unix.EPIPE | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR ->
    true
  | _ -> false

(* Full jitter: sleep a uniform fraction of an exponentially growing
   cap, so a burst of retrying clients decorrelates instead of
   stampeding the recovering server in lockstep. *)
let backoff t attempt =
  let cap = t.config.backoff_s *. Float.of_int (1 lsl min attempt 8) in
  let s = cap *. Prng.Splitmix64.next_float t.rng in
  if s > 0.0 then Thread.delay s

let connect_fd t =
  let sockaddr = Wire.sockaddr_of_address t.address in
  let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
  match
    Unix.set_nonblock fd;
    (try Unix.connect fd sockaddr
     with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> (
       match Unix.select [] [ fd ] [] t.config.connect_timeout_s with
       | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
       | _, _ :: _, _ -> (
         match Unix.getsockopt_error fd with
         | None -> ()
         | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
    Unix.clear_nonblock fd;
    if t.config.read_timeout_s > 0.0 then
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.read_timeout_s
  with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let disconnect t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let close = disconnect

let ensure_fd t =
  match t.fd with
  | Some fd -> fd
  | None ->
    let fd = connect_fd t in
    t.fd <- Some fd;
    fd

(* One request/response exchange, with bounded reconnect-and-resend on
   transient transport failures.  Safe for estimates (reads), invalidate
   (re-marks) and observe (converging refinement); insert is the one
   at-least-once operation — a resent frame offers its values to the
   reservoir again (see wire.mli). *)
let rpc t req =
  let payload = Wire.encode_request req in
  let rec attempt n =
    match
      let fd = ensure_fd t in
      Wire.write_frame fd payload;
      Wire.read_frame fd
    with
    | Ok (Some reply) -> (
      match Wire.decode_response reply with
      | Ok resp -> Ok resp
      | Error m -> Error (Protocol m))
    | Ok None -> retry n "connection closed by server"
    | Error m -> Error (Protocol m)
    | exception Unix.Unix_error (e, fn, _) when transient e ->
      retry n (Printf.sprintf "%s: %s" fn (Unix.error_message e))
    | exception Unix.Unix_error (e, fn, _) ->
      disconnect t;
      Error (Transport (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
  and retry n msg =
    disconnect t;
    if n >= t.config.retries then Error (Transport msg)
    else begin
      backoff t n;
      attempt (n + 1)
    end
  in
  attempt 0

let create ?(config = default_config) address =
  Wire.ignore_sigpipe ();
  { address; config; rng = Prng.Splitmix64.create config.seed; fd = None }

let connect ?config address =
  let t = create ?config address in
  match rpc t Wire.Ping with
  | Ok Wire.Pong -> Ok t
  | Ok other ->
    disconnect t;
    Error (Protocol ("expected pong, got " ^ Wire.response_to_string other))
  | Error e ->
    disconnect t;
    Error e

let unexpected resp = Error (Protocol ("unexpected reply " ^ Wire.response_to_string resp))

let ping t =
  match rpc t Wire.Ping with
  | Ok Wire.Pong -> Ok ()
  | Ok (Wire.Error_reply { code; message }) -> Error (Server (code, message))
  | Ok other -> unexpected other
  | Error e -> Error e

let ls t =
  match rpc t Wire.Ls with
  | Ok (Wire.Ls_reply entries) -> Ok entries
  | Ok (Wire.Error_reply { code; message }) -> Error (Server (code, message))
  | Ok other -> unexpected other
  | Error e -> Error e

let estimate ?(spec = "") t ~entry ~a ~b =
  match rpc t (Wire.Estimate { entry; a; b; spec }) with
  | Ok (Wire.Estimate_reply x) -> Ok x
  | Ok (Wire.Error_reply { code; message }) -> Error (Server (code, message))
  | Ok other -> unexpected other
  | Error e -> Error e

let batch_estimate t triples =
  match rpc t (Wire.Batch_estimate triples) with
  | Ok (Wire.Batch_reply xs) ->
    if Array.length xs = Array.length triples then Ok xs
    else
      Error
        (Protocol
           (Printf.sprintf "batch reply carries %d answers for %d queries"
              (Array.length xs) (Array.length triples)))
  | Ok (Wire.Error_reply { code; message }) -> Error (Server (code, message))
  | Ok other -> unexpected other
  | Error e -> Error e

let insert t ~entry values =
  match rpc t (Wire.Insert { entry; values }) with
  | Ok (Wire.Inserted { sampled; seen }) -> Ok (sampled, seen)
  | Ok (Wire.Error_reply { code; message }) -> Error (Server (code, message))
  | Ok other -> unexpected other
  | Error e -> Error e

let observe t ~entry ~a ~b ~actual =
  match rpc t (Wire.Observe { entry; a; b; actual }) with
  | Ok (Wire.Observed refined) -> Ok refined
  | Ok (Wire.Error_reply { code; message }) -> Error (Server (code, message))
  | Ok other -> unexpected other
  | Error e -> Error e

let estimate_rect t ~entry ~x_lo ~x_hi ~y_lo ~y_hi =
  match rpc t (Wire.Estimate_rect { entry; x_lo; x_hi; y_lo; y_hi }) with
  | Ok (Wire.Estimate_reply x) -> Ok x
  | Ok (Wire.Error_reply { code; message }) -> Error (Server (code, message))
  | Ok other -> unexpected other
  | Error e -> Error e

let estimate_join t ~entry ~pred =
  match rpc t (Wire.Estimate_join { entry; pred }) with
  | Ok (Wire.Estimate_reply x) -> Ok x
  | Ok (Wire.Error_reply { code; message }) -> Error (Server (code, message))
  | Ok other -> unexpected other
  | Error e -> Error e

let invalidate t name =
  match rpc t (Wire.Invalidate name) with
  | Ok Wire.Invalidated -> Ok ()
  | Ok (Wire.Error_reply { code; message }) -> Error (Server (code, message))
  | Ok other -> unexpected other
  | Error e -> Error e

let request = rpc
