(* The selest wire protocol, version 3.

   Frame = 4-byte big-endian payload length, then the payload.
   Payload = version byte, opcode byte, opcode-specific body.  All
   multi-byte integers are big-endian; floats travel as the 8 bytes of
   their IEEE-754 representation, so selectivities survive the wire
   bit-for-bit.  Strings carry a 16-bit length prefix; arrays a 32-bit
   count.

   Version 2 added the adaptivity pair: [Insert] (0x06) streams fresh
   attribute values into an entry's reservoir, [Observe] (0x07) feeds
   back an executed query's true selectivity.  Version 3 adds the
   multidimensional pair — [Estimate_rect] (0x08) asks a rectangle
   selectivity of a 2-D grid entry, [Estimate_join] (0x09) asks an
   estimated join size (predicate byte: 0 eq, 1 lt, 2 le) of a join
   entry — and extends each [Ls_reply] row with a kind byte (0 range,
   1 rect, 2 join) and an optional y-axis domain.  Everything carried
   over from version 2 is byte-identical except the version byte
   itself.

   Decoding is total: every malformed input — wrong version, unknown
   opcode, truncated body, trailing bytes, oversized counts — comes back
   as [Error], never as an exception. *)

type address = Unix_socket of string | Tcp of { host : string; port : int }

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let sockaddr_of_address = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp { host; port } -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let version = 3
let max_frame_bytes = 1 lsl 24

type request =
  | Ping
  | Ls
  | Estimate of { entry : string; a : float; b : float; spec : string }
  | Batch_estimate of (string * float * float) array
  | Invalidate of string
  | Insert of { entry : string; values : float array }
  | Observe of { entry : string; a : float; b : float; actual : float }
  | Estimate_rect of {
      entry : string;
      x_lo : float;
      x_hi : float;
      y_lo : float;
      y_hi : float;
    }
  | Estimate_join of { entry : string; pred : Selest.Stored.join_pred }

type error_code =
  | Bad_request
  | Unknown_entry
  | Spec_mismatch
  | Overloaded
  | Timeout
  | Draining
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_entry -> "unknown_entry"
  | Spec_mismatch -> "spec_mismatch"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Draining -> "draining"
  | Internal -> "internal"

type entry_info = {
  name : string;
  spec : string;
  cells : int;
  stale : bool;
  domain : float * float;
  kind : Selest.Stored.kind;
  domain_y : (float * float) option;
}

type response =
  | Pong
  | Ls_reply of entry_info list
  | Estimate_reply of float
  | Batch_reply of float array
  | Invalidated
  | Inserted of { sampled : int; seen : int }
  | Observed of float
  | Error_reply of { code : error_code; message : string }

(* ---------------- encoding ---------------- *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let add_u16 buf v =
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_u32 buf v =
  add_u8 buf (v lsr 24);
  add_u8 buf (v lsr 16);
  add_u8 buf (v lsr 8);
  add_u8 buf v

let add_f64 buf v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    add_u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let add_string16 buf s =
  if String.length s > 0xffff then
    invalid_arg "Server.Wire: string field longer than 65535 bytes";
  add_u16 buf (String.length s);
  Buffer.add_string buf s

let add_triple buf (entry, a, b) =
  add_string16 buf entry;
  add_f64 buf a;
  add_f64 buf b

let code_of_error = function
  | Bad_request -> 0
  | Unknown_entry -> 1
  | Spec_mismatch -> 2
  | Overloaded -> 3
  | Timeout -> 4
  | Draining -> 5
  | Internal -> 6

let code_of_pred = function
  | Selest.Stored.Join_eq -> 0
  | Selest.Stored.Join_lt -> 1
  | Selest.Stored.Join_le -> 2

let code_of_kind = function
  | Selest.Stored.Range_kind -> 0
  | Selest.Stored.Rect_kind -> 1
  | Selest.Stored.Join_kind -> 2

(* [_into] encoders append to a caller-owned buffer, so a connection can
   reuse one buffer for every frame it writes (see [writer] below); the
   string-returning forms below them keep the original API. *)

let encode_request_into buf req =
  add_u8 buf version;
  match req with
  | Ping -> add_u8 buf 0x01
  | Ls -> add_u8 buf 0x02
  | Estimate { entry; a; b; spec } ->
    add_u8 buf 0x03;
    add_string16 buf entry;
    add_f64 buf a;
    add_f64 buf b;
    add_string16 buf spec
  | Batch_estimate triples ->
    add_u8 buf 0x04;
    add_u32 buf (Array.length triples);
    Array.iter (add_triple buf) triples
  | Invalidate name ->
    add_u8 buf 0x05;
    add_string16 buf name
  | Insert { entry; values } ->
    add_u8 buf 0x06;
    add_string16 buf entry;
    add_u32 buf (Array.length values);
    Array.iter (add_f64 buf) values
  | Observe { entry; a; b; actual } ->
    add_u8 buf 0x07;
    add_string16 buf entry;
    add_f64 buf a;
    add_f64 buf b;
    add_f64 buf actual
  | Estimate_rect { entry; x_lo; x_hi; y_lo; y_hi } ->
    add_u8 buf 0x08;
    add_string16 buf entry;
    add_f64 buf x_lo;
    add_f64 buf x_hi;
    add_f64 buf y_lo;
    add_f64 buf y_hi
  | Estimate_join { entry; pred } ->
    add_u8 buf 0x09;
    add_string16 buf entry;
    add_u8 buf (code_of_pred pred)

let encode_response_into buf resp =
  add_u8 buf version;
  match resp with
  | Pong -> add_u8 buf 0x81
  | Ls_reply entries ->
    add_u8 buf 0x82;
    add_u32 buf (List.length entries);
    List.iter
      (fun e ->
        add_string16 buf e.name;
        add_string16 buf e.spec;
        add_u32 buf e.cells;
        add_u8 buf (if e.stale then 1 else 0);
        add_f64 buf (fst e.domain);
        add_f64 buf (snd e.domain);
        add_u8 buf (code_of_kind e.kind);
        match e.domain_y with
        | None -> add_u8 buf 0
        | Some (lo, hi) ->
          add_u8 buf 1;
          add_f64 buf lo;
          add_f64 buf hi)
      entries
  | Estimate_reply v ->
    add_u8 buf 0x83;
    add_f64 buf v
  | Batch_reply vs ->
    add_u8 buf 0x84;
    add_u32 buf (Array.length vs);
    Array.iter (add_f64 buf) vs
  | Invalidated -> add_u8 buf 0x85
  | Inserted { sampled; seen } ->
    add_u8 buf 0x86;
    add_u32 buf sampled;
    add_u32 buf seen
  | Observed v ->
    add_u8 buf 0x87;
    add_f64 buf v
  | Error_reply { code; message } ->
    add_u8 buf 0x8f;
    add_u8 buf (code_of_error code);
    add_string16 buf message

let encode_request req =
  let buf = Buffer.create 64 in
  encode_request_into buf req;
  Buffer.contents buf

let encode_response resp =
  let buf = Buffer.create 64 in
  encode_response_into buf resp;
  Buffer.contents buf

(* ---------------- decoding ---------------- *)

(* A cursor over the payload bytes.  Readers raise [Malformed]
   internally; the public decoders catch it, which keeps the total-decode
   contract in one place.  The cursor works on [bytes] rather than
   [string] so it can decode straight out of a connection's reusable
   [reader] buffer (below) without first copying the payload into a
   fresh string; string payloads wrap through [Bytes.unsafe_of_string],
   which is safe here because the cursor only reads. *)
exception Malformed of string

type cursor = { data : Bytes.t; mutable pos : int; limit : int }

let need cur n what =
  if cur.pos + n > cur.limit then
    raise (Malformed (Printf.sprintf "truncated %s at byte %d" what cur.pos))

let get_u8 cur what =
  need cur 1 what;
  let v = Char.code (Bytes.get cur.data cur.pos) in
  cur.pos <- cur.pos + 1;
  v

let get_u16 cur what =
  let hi = get_u8 cur what in
  let lo = get_u8 cur what in
  (hi lsl 8) lor lo

let get_u32 cur what =
  let a = get_u16 cur what in
  let b = get_u16 cur what in
  (a lsl 16) lor b

let get_f64 cur what =
  need cur 8 what;
  let v = Int64.float_of_bits (Bytes.get_int64_be cur.data cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let get_string16 cur what =
  let len = get_u16 cur what in
  need cur len what;
  let s = Bytes.sub_string cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

(* Like [get_string16], but when the field's bytes equal [prev], return
   [prev] itself instead of a fresh copy — so a connection decoding the
   same entry name frame after frame allocates it once.  The comparison
   is byte-for-byte; a miss costs one extra scan over at most 64 KiB. *)
(* Top level (not a local loop) so the repeat-frame path stays
   allocation-free: a local [ref] counter or [let rec] closure would
   cost two minor words per string field, which is exactly the kind of
   leak the micro gate's wire.decode row exists to catch. *)
let rec bytes_eq_string data pos s i len =
  i = len
  || (Bytes.unsafe_get data (pos + i) = String.unsafe_get s i
     && bytes_eq_string data pos s (i + 1) len)

let intern_string data pos len prev =
  if String.length prev = len && bytes_eq_string data pos prev 0 len then prev
  else Bytes.sub_string data pos len

let get_string16_interned cur prev what =
  let len = get_u16 cur what in
  need cur len what;
  let pos = cur.pos in
  cur.pos <- pos + len;
  intern_string cur.data pos len prev

(* Counts are bounded by what could physically fit in a maximal frame, so
   a corrupt length cannot make the decoder allocate gigabytes. *)
let get_count cur ~item_bytes what =
  let n = get_u32 cur what in
  if n * item_bytes > max_frame_bytes then
    raise (Malformed (Printf.sprintf "implausible %s count %d" what n));
  n

let get_triple cur =
  let entry = get_string16 cur "batch entry" in
  let a = get_f64 cur "batch bound a" in
  let b = get_f64 cur "batch bound b" in
  (entry, a, b)

let error_of_code = function
  | 0 -> Bad_request
  | 1 -> Unknown_entry
  | 2 -> Spec_mismatch
  | 3 -> Overloaded
  | 4 -> Timeout
  | 5 -> Draining
  | 6 -> Internal
  | c -> raise (Malformed (Printf.sprintf "unknown error code %d" c))

let pred_of_code = function
  | 0 -> Selest.Stored.Join_eq
  | 1 -> Selest.Stored.Join_lt
  | 2 -> Selest.Stored.Join_le
  | c -> raise (Malformed (Printf.sprintf "unknown join predicate %d" c))

let kind_of_code = function
  | 0 -> Selest.Stored.Range_kind
  | 1 -> Selest.Stored.Rect_kind
  | 2 -> Selest.Stored.Join_kind
  | c -> raise (Malformed (Printf.sprintf "unknown entry kind %d" c))

let check_version cur =
  let v = get_u8 cur "version byte" in
  if v <> version then
    raise (Malformed (Printf.sprintf "unsupported protocol version %d (want %d)" v version))

let check_consumed kind cur =
  if cur.pos <> cur.limit then
    raise
      (Malformed (Printf.sprintf "%d trailing bytes after %s" (cur.limit - cur.pos) kind))

let decode kind payload parse_op =
  let cur = { data = Bytes.unsafe_of_string payload; pos = 0; limit = String.length payload } in
  match
    check_version cur;
    let op = get_u8 cur "opcode" in
    let msg = parse_op cur op in
    check_consumed kind cur;
    msg
  with
  | msg -> Ok msg
  | exception Malformed why -> Error why

let parse_request_op cur = function
  | 0x01 -> Ping
  | 0x02 -> Ls
  | 0x03 ->
    let entry = get_string16 cur "entry name" in
    let a = get_f64 cur "bound a" in
    let b = get_f64 cur "bound b" in
    let spec = get_string16 cur "spec" in
    Estimate { entry; a; b; spec }
  | 0x04 ->
    let n = get_count cur ~item_bytes:18 "batch" in
    Batch_estimate (Array.init n (fun _ -> get_triple cur))
  | 0x05 -> Invalidate (get_string16 cur "entry name")
  | 0x06 ->
    let entry = get_string16 cur "entry name" in
    let n = get_count cur ~item_bytes:8 "insert" in
    Insert { entry; values = Array.init n (fun _ -> get_f64 cur "insert value") }
  | 0x07 ->
    let entry = get_string16 cur "entry name" in
    let a = get_f64 cur "bound a" in
    let b = get_f64 cur "bound b" in
    let actual = get_f64 cur "observed selectivity" in
    Observe { entry; a; b; actual }
  | 0x08 ->
    let entry = get_string16 cur "entry name" in
    let x_lo = get_f64 cur "rect bound x_lo" in
    let x_hi = get_f64 cur "rect bound x_hi" in
    let y_lo = get_f64 cur "rect bound y_lo" in
    let y_hi = get_f64 cur "rect bound y_hi" in
    Estimate_rect { entry; x_lo; x_hi; y_lo; y_hi }
  | 0x09 ->
    let entry = get_string16 cur "entry name" in
    let pred = pred_of_code (get_u8 cur "join predicate") in
    Estimate_join { entry; pred }
  | op -> raise (Malformed (Printf.sprintf "unknown request opcode 0x%02x" op))

let decode_request payload = decode "request" payload parse_request_op

(* ---- the reusable-scratch decode (the served read fast path) ----

   [decode_request_scratch] is [decode_request] restructured so that the
   hot opcode — a single Estimate — deposits its fields into a
   caller-owned scratch record instead of building a fresh request value.
   The float fields live in an all-float sub-record (unboxed by the
   runtime's float-record representation), the strings are interned
   against the previous frame's, and the result on the hot path is a
   preallocated constant — so a connection asking single estimates for
   the same entry decodes with zero allocation.  Every other opcode
   falls back to the allocating parser above, bit-for-bit. *)

type qnums = { mutable sa : float; mutable sb : float }

type scratch = {
  mutable s_entry : string;
  mutable s_spec : string;
  s_q : qnums;
}

let create_scratch () = { s_entry = ""; s_spec = ""; s_q = { sa = 0.0; sb = 0.0 } }

type incoming = Fast_estimate | Decoded of request

let ok_fast_estimate : (incoming, string) result = Ok Fast_estimate

(* [Bytes.get_int64_be] is an ordinary stdlib function, so without
   cross-module inlining each call returns a {e boxed} int64 — 2 minor
   words per bound, the last allocation left on the read path.  Reading
   through the compiler primitives instead keeps the whole
   load-swap-reinterpret chain unboxed (the bounds are range-checked by
   [need] first, so the unsafe load is safe). *)
external get_64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external swap_64 : int64 -> int64 = "%bswap_int64"

(* Any frame the fast path below declines: every other opcode, and every
   malformed single-estimate frame (so the error messages stay
   bit-identical to [decode_request]'s).  Allocating the cursor record
   here is fine — this path builds request values anyway. *)
let decode_request_scratch_slow data ~len scratch =
  let cur = { data; pos = 0; limit = len } in
  match
    check_version cur;
    get_u8 cur "opcode"
  with
  | exception Malformed why -> Error why
  | 0x03 -> (
    match
      scratch.s_entry <- get_string16_interned cur scratch.s_entry "entry name";
      need cur 16 "bounds";
      let bits_a = get_64u cur.data cur.pos in
      scratch.s_q.sa <-
        Int64.float_of_bits (if Sys.big_endian then bits_a else swap_64 bits_a);
      let bits_b = get_64u cur.data (cur.pos + 8) in
      scratch.s_q.sb <-
        Int64.float_of_bits (if Sys.big_endian then bits_b else swap_64 bits_b);
      cur.pos <- cur.pos + 16;
      scratch.s_spec <- get_string16_interned cur scratch.s_spec "spec";
      check_consumed "request" cur
    with
    | () -> ok_fast_estimate
    | exception Malformed why -> Error why)
  | op -> (
    match
      let msg = parse_request_op cur op in
      check_consumed "request" cur;
      msg
    with
    | msg -> Ok (Decoded msg)
    | exception Malformed why -> Error why)

(* The hot path parses a well-formed single estimate with raw offsets —
   even the 4-word cursor record would show up in the micro gate's
   wire.decode row.  Every length is validated before the scratch is
   touched; anything that doesn't check out falls back to the slow path
   above, whose accept/reject behaviour is the reference. *)
let decode_request_scratch data ~len scratch =
  if
    len >= 4
    && Bytes.unsafe_get data 0 = '\x03' (* the version byte *)
    && Bytes.unsafe_get data 1 = '\x03' (* the Estimate opcode *)
  then begin
    let elen =
      (Char.code (Bytes.unsafe_get data 2) lsl 8) lor Char.code (Bytes.unsafe_get data 3)
    in
    if len >= 22 + elen then begin
      let slen =
        (Char.code (Bytes.unsafe_get data (20 + elen)) lsl 8)
        lor Char.code (Bytes.unsafe_get data (21 + elen))
      in
      if len = 22 + elen + slen then begin
        scratch.s_entry <- intern_string data 4 elen scratch.s_entry;
        let bits_a = get_64u data (4 + elen) in
        scratch.s_q.sa <-
          Int64.float_of_bits (if Sys.big_endian then bits_a else swap_64 bits_a);
        let bits_b = get_64u data (12 + elen) in
        scratch.s_q.sb <-
          Int64.float_of_bits (if Sys.big_endian then bits_b else swap_64 bits_b);
        scratch.s_spec <- intern_string data (22 + elen) slen scratch.s_spec;
        ok_fast_estimate
      end
      else decode_request_scratch_slow data ~len scratch
    end
    else decode_request_scratch_slow data ~len scratch
  end
  else decode_request_scratch_slow data ~len scratch

let decode_response payload =
  decode "response" payload (fun cur -> function
    | 0x81 -> Pong
    | 0x82 ->
      let n = get_count cur ~item_bytes:27 "ls" in
      Ls_reply
        (List.init n (fun _ ->
             let name = get_string16 cur "ls name" in
             let spec = get_string16 cur "ls spec" in
             let cells = get_u32 cur "ls cells" in
             let stale =
               match get_u8 cur "ls stale flag" with
               | 0 -> false
               | 1 -> true
               | v -> raise (Malformed (Printf.sprintf "malformed stale flag %d" v))
             in
             let lo = get_f64 cur "ls domain lo" in
             let hi = get_f64 cur "ls domain hi" in
             let kind = kind_of_code (get_u8 cur "ls kind") in
             let domain_y =
               match get_u8 cur "ls domain_y flag" with
               | 0 -> None
               | 1 ->
                 let ylo = get_f64 cur "ls domain_y lo" in
                 let yhi = get_f64 cur "ls domain_y hi" in
                 Some (ylo, yhi)
               | v -> raise (Malformed (Printf.sprintf "malformed domain_y flag %d" v))
             in
             { name; spec; cells; stale; domain = (lo, hi); kind; domain_y }))
    | 0x83 -> Estimate_reply (get_f64 cur "estimate reply")
    | 0x84 ->
      let n = get_count cur ~item_bytes:8 "batch reply" in
      Batch_reply (Array.init n (fun _ -> get_f64 cur "batch reply value"))
    | 0x85 -> Invalidated
    | 0x86 ->
      let sampled = get_u32 cur "inserted sampled count" in
      let seen = get_u32 cur "inserted seen count" in
      Inserted { sampled; seen }
    | 0x87 -> Observed (get_f64 cur "observed reply")
    | 0x8f ->
      let code = error_of_code (get_u8 cur "error code") in
      let message = get_string16 cur "error message" in
      Error_reply { code; message }
    | op -> raise (Malformed (Printf.sprintf "unknown response opcode 0x%02x" op)))

(* ---------------- frame I/O ---------------- *)

let really_write fd bytes =
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    let n = Unix.write fd bytes !written (len - !written) in
    if n = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    written := !written + n
  done

(* A peer that hangs up mid-write must surface as EPIPE on that write —
   the caller's per-connection error path — not as a process-killing
   SIGPIPE.  Process-global, so done once; both endpoints call this
   before their first socket I/O. *)
let ignore_sigpipe =
  let done_ = lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore) in
  fun () -> Lazy.force done_

let set_frame_header frame len =
  Bytes.set frame 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set frame 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set frame 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set frame 3 (Char.chr (len land 0xff))

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame_bytes then invalid_arg "Server.Wire.write_frame: payload too large";
  let frame = Bytes.create (4 + len) in
  set_frame_header frame len;
  Bytes.blit_string payload 0 frame 4 len;
  really_write fd frame

(* A per-connection frame writer: one Buffer for encoding, one byte
   buffer for the framed bytes, both reused (and grown geometrically)
   across frames, so a steady-state reply costs zero fresh buffers —
   only the encoded bytes move.  Single-owner like the connection it
   belongs to. *)
type writer = { wbuf : Buffer.t; mutable frame : Bytes.t }

let create_writer () = { wbuf = Buffer.create 256; frame = Bytes.create 256 }

let really_write_sub fd bytes len =
  let written = ref 0 in
  while !written < len do
    let n = Unix.write fd bytes !written (len - !written) in
    if n = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    written := !written + n
  done

let write_encoded w fd =
  let len = Buffer.length w.wbuf in
  if len > max_frame_bytes then invalid_arg "Server.Wire: payload too large";
  if Bytes.length w.frame < 4 + len then begin
    let cap = ref (2 * Bytes.length w.frame) in
    while !cap < 4 + len do
      cap := 2 * !cap
    done;
    w.frame <- Bytes.create !cap
  end;
  set_frame_header w.frame len;
  Buffer.blit w.wbuf 0 w.frame 4 len;
  really_write_sub fd w.frame (4 + len)

let write_response w fd resp =
  Buffer.clear w.wbuf;
  encode_response_into w.wbuf resp;
  write_encoded w fd

let write_request w fd req =
  Buffer.clear w.wbuf;
  encode_request_into w.wbuf req;
  write_encoded w fd

(* Reads exactly [n] bytes; [`Eof k] reports how many arrived before the
   peer closed. *)
let really_read fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> `Eof off
      | k -> go (off + k)
  in
  go 0

let read_frame fd =
  match really_read fd 4 with
  | `Eof 0 -> Ok None
  | `Eof _ -> Error "connection closed inside a frame header"
  | `Ok header ->
    let len =
      (Char.code header.[0] lsl 24)
      lor (Char.code header.[1] lsl 16)
      lor (Char.code header.[2] lsl 8)
      lor Char.code header.[3]
    in
    if len > max_frame_bytes then Error (Printf.sprintf "frame of %d bytes exceeds limit" len)
    else if len < 2 then Error (Printf.sprintf "frame of %d bytes is below the 2-byte header" len)
    else (
      match really_read fd len with
      | `Eof _ -> Error "connection closed inside a frame body"
      | `Ok payload -> Ok (Some payload))

(* A per-connection frame reader, the read-side twin of [writer]: a
   fixed 4-byte header buffer and a payload buffer reused (and grown
   geometrically, never shrunk) across frames.  [read_frame_into]
   signals through an integer instead of a result value so the
   steady-state read loop allocates nothing at all; the error message of
   a [-2] return waits in [reader_error]. *)
type reader = {
  r_head : Bytes.t;
  mutable r_buf : Bytes.t;
  mutable r_error : string;
}

let create_reader () =
  { r_head = Bytes.create 4; r_buf = Bytes.create 256; r_error = "" }

let reader_buffer r = r.r_buf
let reader_error r = r.r_error

(* Reads exactly [n] bytes into [buf]; returns how many arrived (short
   only when the peer closed mid-read). *)
let really_read_into fd buf n =
  let off = ref 0 in
  let eof = ref false in
  while !off < n && not !eof do
    match Unix.read fd buf !off (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
  done;
  !off

let read_frame_into r fd =
  match really_read_into fd r.r_head 4 with
  | 0 -> -1
  | k when k < 4 ->
    r.r_error <- "connection closed inside a frame header";
    -2
  | _ ->
    let len =
      (Char.code (Bytes.unsafe_get r.r_head 0) lsl 24)
      lor (Char.code (Bytes.unsafe_get r.r_head 1) lsl 16)
      lor (Char.code (Bytes.unsafe_get r.r_head 2) lsl 8)
      lor Char.code (Bytes.unsafe_get r.r_head 3)
    in
    if len > max_frame_bytes then begin
      r.r_error <- Printf.sprintf "frame of %d bytes exceeds limit" len;
      -2
    end
    else if len < 2 then begin
      r.r_error <- Printf.sprintf "frame of %d bytes is below the 2-byte header" len;
      -2
    end
    else begin
      if Bytes.length r.r_buf < len then begin
        let cap = ref (2 * Bytes.length r.r_buf) in
        while !cap < len do
          cap := 2 * !cap
        done;
        r.r_buf <- Bytes.create !cap
      end;
      if really_read_into fd r.r_buf len < len then begin
        r.r_error <- "connection closed inside a frame body";
        -2
      end
      else len
    end

(* ---------------- equality and printing ---------------- *)

let float_eq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let triple_eq (n1, a1, b1) (n2, a2, b2) = String.equal n1 n2 && float_eq a1 a2 && float_eq b1 b2

let equal_request r1 r2 =
  match (r1, r2) with
  | Ping, Ping | Ls, Ls -> true
  | Estimate e1, Estimate e2 ->
    String.equal e1.entry e2.entry && float_eq e1.a e2.a && float_eq e1.b e2.b
    && String.equal e1.spec e2.spec
  | Batch_estimate t1, Batch_estimate t2 ->
    Array.length t1 = Array.length t2 && Array.for_all2 triple_eq t1 t2
  | Invalidate n1, Invalidate n2 -> String.equal n1 n2
  | Insert i1, Insert i2 ->
    String.equal i1.entry i2.entry
    && Array.length i1.values = Array.length i2.values
    && Array.for_all2 float_eq i1.values i2.values
  | Observe o1, Observe o2 ->
    String.equal o1.entry o2.entry && float_eq o1.a o2.a && float_eq o1.b o2.b
    && float_eq o1.actual o2.actual
  | Estimate_rect r1, Estimate_rect r2 ->
    String.equal r1.entry r2.entry && float_eq r1.x_lo r2.x_lo
    && float_eq r1.x_hi r2.x_hi && float_eq r1.y_lo r2.y_lo
    && float_eq r1.y_hi r2.y_hi
  | Estimate_join j1, Estimate_join j2 ->
    String.equal j1.entry j2.entry && j1.pred = j2.pred
  | ( ( Ping | Ls | Estimate _ | Batch_estimate _ | Invalidate _ | Insert _ | Observe _
      | Estimate_rect _ | Estimate_join _ ),
      _ ) ->
    false

let entry_info_eq e1 e2 =
  String.equal e1.name e2.name && String.equal e1.spec e2.spec && e1.cells = e2.cells
  && Bool.equal e1.stale e2.stale
  && float_eq (fst e1.domain) (fst e2.domain)
  && float_eq (snd e1.domain) (snd e2.domain)
  && e1.kind = e2.kind
  && (match (e1.domain_y, e2.domain_y) with
     | None, None -> true
     | Some (l1, h1), Some (l2, h2) -> float_eq l1 l2 && float_eq h1 h2
     | None, Some _ | Some _, None -> false)

let equal_response r1 r2 =
  match (r1, r2) with
  | Pong, Pong | Invalidated, Invalidated -> true
  | Ls_reply l1, Ls_reply l2 -> List.length l1 = List.length l2 && List.for_all2 entry_info_eq l1 l2
  | Estimate_reply v1, Estimate_reply v2 -> float_eq v1 v2
  | Batch_reply v1, Batch_reply v2 ->
    Array.length v1 = Array.length v2 && Array.for_all2 float_eq v1 v2
  | Inserted i1, Inserted i2 -> i1.sampled = i2.sampled && i1.seen = i2.seen
  | Observed v1, Observed v2 -> float_eq v1 v2
  | Error_reply e1, Error_reply e2 -> e1.code = e2.code && String.equal e1.message e2.message
  | ( ( Pong | Ls_reply _ | Estimate_reply _ | Batch_reply _ | Invalidated | Inserted _
      | Observed _ | Error_reply _ ),
      _ ) ->
    false

let request_to_string = function
  | Ping -> "ping"
  | Ls -> "ls"
  | Estimate { entry; a; b; spec } ->
    Printf.sprintf "estimate %S [%h, %h] spec=%S" entry a b spec
  | Batch_estimate triples -> Printf.sprintf "batch_estimate(%d)" (Array.length triples)
  | Invalidate name -> Printf.sprintf "invalidate %S" name
  | Insert { entry; values } -> Printf.sprintf "insert %S (%d values)" entry (Array.length values)
  | Observe { entry; a; b; actual } ->
    Printf.sprintf "observe %S [%h, %h] actual=%h" entry a b actual
  | Estimate_rect { entry; x_lo; x_hi; y_lo; y_hi } ->
    Printf.sprintf "estimate_rect %S [%h, %h] x [%h, %h]" entry x_lo x_hi y_lo y_hi
  | Estimate_join { entry; pred } ->
    Printf.sprintf "estimate_join %S pred=%s" entry
      (match pred with
      | Selest.Stored.Join_eq -> "eq"
      | Selest.Stored.Join_lt -> "lt"
      | Selest.Stored.Join_le -> "le")

let response_to_string = function
  | Pong -> "pong"
  | Ls_reply entries -> Printf.sprintf "ls_reply(%d)" (List.length entries)
  | Estimate_reply v -> Printf.sprintf "estimate_reply %h" v
  | Batch_reply vs -> Printf.sprintf "batch_reply(%d)" (Array.length vs)
  | Invalidated -> "invalidated"
  | Inserted { sampled; seen } -> Printf.sprintf "inserted sampled=%d seen=%d" sampled seen
  | Observed v -> Printf.sprintf "observed %h" v
  | Error_reply { code; message } ->
    Printf.sprintf "error %s: %s" (error_code_to_string code) message
