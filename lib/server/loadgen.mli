(** Load generators for the estimate server: closed-loop and open-loop.

    {b Closed loop} ({!run}): [connections] worker threads each own a
    {!Client} and drive their contiguous slice of the request array as
    fast as replies come back (at most one outstanding exchange per
    connection, so offered load adapts to server latency instead of
    overrunning it).  Good for peak-capacity measurement; incapable of
    showing what happens past saturation, because a slow server slows
    the generator down with it.

    {b Open loop} ({!run_open_loop}): arrivals fire on a fixed schedule
    [t0 + i/rate] whether or not earlier exchanges have finished, the
    way independent clients would.  Latency is measured from the
    {e scheduled} arrival, so server queueing delay — the signature of
    operating past the collapse point — shows up in the percentiles
    instead of being absorbed by a waiting generator.  An arrival that
    finds every virtual client busy is {e dropped} (counted, never
    queued); an exchange that starts more than one inter-arrival time
    after its schedule is counted {e late}.

    Latency is measured per exchange — per query with [batch = 1], per
    frame otherwise — and summarized with exact percentiles over the
    merged samples.  Methodology and interpretation guidance live in
    [docs/SERVING.md]; the sharded-serving walkthrough that uses both
    modes is [docs/SHARDING.md]. *)

type group = {
  g_n : int;  (** exchanges in this class *)
  g_p50_ms : float;  (** exact median latency of the class *)
  g_p99_ms : float;  (** exact 99th-percentile latency of the class *)
}
(** Latency summary of one request class (see the [classify] argument
    of {!run}). *)

type report = {
  connections : int;  (** worker threads = concurrent connections *)
  queries : int;  (** range queries attempted *)
  ok : int;  (** queries answered with an estimate *)
  wall_s : float;  (** wall-clock of the whole run *)
  throughput_qps : float;  (** [queries / wall_s] *)
  mean_ms : float;  (** mean exchange latency, milliseconds *)
  p50_ms : float;  (** exact median exchange latency *)
  p95_ms : float;  (** exact 95th-percentile exchange latency *)
  p99_ms : float;  (** exact 99th-percentile exchange latency *)
  max_ms : float;  (** slowest exchange *)
  errors : (string * int) list;
      (** failures by class, sorted: typed server codes
          (["overloaded"], ["timeout"], ...), ["transport"],
          ["protocol"] *)
  answers : float array;
      (** per-request estimates, aligned with the request array; [nan]
          where the query failed — lets callers verify bit-identity
          against a direct [Catalog.Service.answer] call *)
  groups : (string * group) list;
      (** per-class latency summaries, sorted by class name; empty
          unless [classify] was passed to {!run}.  The sharded bench
          classifies by owning shard to report per-shard p99. *)
}

val synthetic_requests :
  entries:Wire.entry_info list -> count:int -> seed:int64 -> (string * float * float) array
(** [count] random range queries over the given entries (uniform entry
    choice; endpoints uniform in the entry's domain, ordered), fully
    deterministic from [seed].  Feed it the {!Client.ls} reply.
    @raise Invalid_argument on an empty entry list or negative count. *)

type mixed_request =
  | Mix_range of string * float * float  (** one range query [(entry, a, b)] *)
  | Mix_rect of {
      m_entry : string;
      m_x_lo : float;
      m_x_hi : float;
      m_y_lo : float;
      m_y_hi : float;
    }  (** one rectangle query against a rect entry *)
  | Mix_join of { m_entry : string; m_pred : Selest.Stored.join_pred }
      (** one join-size query against a join entry *)
(** One exchange of a mixed-kind workload (see {!run_mixed}). *)

val mixed_kind : mixed_request -> string
(** The class key of a mixed request: ["range"], ["rect"] or ["join"] —
    the group names {!run_mixed} reports under. *)

val synthetic_mixed_requests :
  entries:Wire.entry_info list -> count:int -> seed:int64 -> mixed_request array
(** [count] random queries over the given entries, each matched to its
    entry's kind (uniform entry choice): range entries get ordered
    uniform endpoints as {!synthetic_requests}; rect entries get an
    axis-aligned rectangle with ordered uniform endpoints per axis (the
    y-axis drawn from the entry's [domain_y]); join entries cycle the
    three predicates uniformly.  Fully deterministic from [seed].
    @raise Invalid_argument on an empty entry list or negative count. *)

val run :
  ?client_config:Client.config ->
  ?batch:int ->
  ?classify:(int -> string) ->
  connections:int ->
  address:Wire.address ->
  (string * float * float) array ->
  report
(** Drive the request array against the server and block until every
    worker finishes.  [batch] groups consecutive queries of a worker's
    slice into one [batch_estimate] frame (default [1]: one [estimate]
    per exchange).  [classify], given the index of an exchange's first
    request, names its class; per-class percentiles are then reported
    in [groups] (e.g. classify by
    [Catalog.Service.shard_of_name ~shards] of the request's entry to
    get per-shard latency without server cooperation).  Each worker's
    retry jitter is seeded from [client_config.seed] plus its index, so
    runs are reproducible.  Counts also flow into the [Telemetry]
    registry as [loadgen_*] metrics when telemetry is enabled.
    @raise Invalid_argument if [connections < 1] or [batch < 1]. *)

val run_mixed :
  ?client_config:Client.config ->
  connections:int ->
  address:Wire.address ->
  mixed_request array ->
  report
(** {!run} for a mixed-kind workload: one exchange per request —
    [estimate], [estimate_rect] or [estimate_join] by the request's
    constructor — over [connections] closed-loop workers.  Per-kind
    latency groups (keys ["range"], ["rect"], ["join"]) are always
    reported; [answers] carries the served value of every exchange
    (selectivities for range/rect, estimated sizes for join), [nan]
    where it failed, so callers can verify bit-identity against direct
    [Catalog.Service] calls.
    @raise Invalid_argument if [connections < 1]. *)

val report_to_string : report -> string
(** Multi-line human-readable summary (throughput, latency percentiles,
    error classes, per-class groups when present). *)

type open_report = {
  rate_qps : float;  (** the arrival rate the run was asked to offer *)
  duration_s : float;  (** the scheduling horizon the run was asked for *)
  offered : int;  (** arrivals scheduled: [floor (rate * duration)] or so *)
  sent : int;  (** arrivals that found a virtual client and were sent *)
  o_ok : int;  (** exchanges answered with an estimate *)
  dropped : int;  (** arrivals dropped: every virtual client was busy *)
  late : int;
      (** exchanges that started more than [late_factor / rate] after
          their scheduled arrival — the generator or accept path was
          slipping *)
  achieved_qps : float;  (** [sent / wall]: what actually reached the server *)
  o_mean_ms : float;  (** mean latency {e from scheduled arrival}, ms *)
  o_p50_ms : float;  (** exact median latency from scheduled arrival *)
  o_p95_ms : float;  (** exact 95th percentile from scheduled arrival *)
  o_p99_ms : float;  (** exact 99th percentile from scheduled arrival *)
  o_max_ms : float;  (** slowest exchange, from scheduled arrival *)
  o_errors : (string * int) list;  (** failures by class, as in {!report} *)
}
(** Result of one open-loop run.  A healthy operating point has
    [dropped = 0], [late ≈ 0], and [achieved_qps ≈ rate_qps]; past the
    collapse point, drops and the arrival-to-reply percentiles grow
    without bound while closed-loop numbers would still look flat. *)

val run_open_loop :
  ?client_config:Client.config ->
  ?max_clients:int ->
  ?late_factor:float ->
  rate:float ->
  duration_s:float ->
  address:Wire.address ->
  (string * float * float) array ->
  open_report
(** Offer [rate] arrivals per second for [duration_s] seconds, cycling
    through the request array (request [i mod length]), one [estimate]
    exchange per arrival.  [max_clients] (default [64]) bounds the pool
    of virtual clients standing in for "unbounded" ones: when all are
    busy the arrival is dropped and counted rather than queued, which
    keeps the arrival process open instead of silently closing the
    loop.  [late_factor] (default [1.0]) sets the late threshold to
    [late_factor / rate] seconds of start lag.  Blocks until the
    horizon passes and every in-flight exchange finishes.
    @raise Invalid_argument if [rate <= 0.], [duration_s <= 0.],
    [max_clients < 1], or the request array is empty. *)

val open_report_to_string : open_report -> string
(** Multi-line human-readable summary (offered/achieved rate, drop and
    late counts, latency-from-arrival percentiles). *)

type drift_report = {
  d_open : open_report;  (** the underlying open-loop measurements *)
  d_estimates : int;  (** estimate exchanges sent *)
  d_est_ok : int;  (** estimates answered *)
  d_inserts : int;  (** insert exchanges sent *)
  d_insert_ok : int;  (** inserts acknowledged *)
  d_observes : int;  (** observe exchanges sent *)
  d_observe_ok : int;  (** observes acknowledged *)
  d_mean_abs_err : float;
      (** mean [|estimate - generator truth|] over answered estimates
          (the drive-level accuracy signal; [nan] if none answered) *)
  d_max_abs_err : float;  (** worst single estimate error *)
  d_est_invalid : int;
      (** answered estimates that were non-finite or outside [0, 1] —
          always [0] against a correct server *)
}
(** Result of one {!run_drift} run: the open-loop report plus per-op
    counts and accuracy against the generator's analytic truth. *)

val run_drift :
  ?client_config:Client.config ->
  ?max_clients:int ->
  ?late_factor:float ->
  ?insert_every:int ->
  ?insert_batch:int ->
  ?observe_every:int ->
  ?window:float ->
  ?seed:int64 ->
  rate:float ->
  duration_s:float ->
  entry:Wire.entry_info ->
  address:Wire.address ->
  unit ->
  drift_report
(** Drive one entry of an adaptive server ([serve --adaptive]) with a
    {e shifting} workload on the open-loop scheduler: the relation's
    live values are modeled as uniform over a window [window] (default
    [0.25]) of the entry's domain wide, whose center slides linearly
    across the domain over the run.  Arrival [i] is an {!Client.insert}
    of [insert_batch] window-distributed values when [i mod insert_every
    = 0], an {!Client.observe} carrying the analytic true selectivity
    when [i mod observe_every = 1], and an {!Client.estimate} otherwise
    (defaults: every 4th arrival inserts, every 4th observes, half
    estimate).  Every payload is a function of [seed] and the arrival
    index alone, so runs are reproducible and the report's
    [d_mean_abs_err] can be compared across server configurations —
    the adaptive-on vs adaptive-off comparison is automated in
    [bench/main.ml] ([--drift]) and walked through in
    [docs/ADAPTIVITY.md].
    @raise Invalid_argument if [rate <= 0.], [duration_s <= 0.],
    [max_clients < 1], [insert_every < 2], [insert_batch < 1],
    [observe_every < 2], or [window] outside [(0, 1]]. *)

val drift_report_to_string : drift_report -> string
(** {!open_report_to_string} plus per-op counts and the accuracy-vs-
    truth line. *)
