(** Closed-loop load generator for the estimate server.

    [connections] worker threads each own a {!Client} and drive their
    contiguous slice of the request array as fast as replies come back
    (closed loop: at most one outstanding exchange per connection, so
    offered load adapts to server latency instead of overrunning it).
    Latency is measured per exchange — per query with [batch = 1], per
    frame otherwise — and summarized with exact percentiles over the
    merged samples.  Methodology and interpretation guidance live in
    [docs/SERVING.md]. *)

type report = {
  connections : int;  (** worker threads = concurrent connections *)
  queries : int;  (** range queries attempted *)
  ok : int;  (** queries answered with an estimate *)
  wall_s : float;  (** wall-clock of the whole run *)
  throughput_qps : float;  (** [queries / wall_s] *)
  mean_ms : float;  (** mean exchange latency, milliseconds *)
  p50_ms : float;  (** exact median exchange latency *)
  p95_ms : float;  (** exact 95th-percentile exchange latency *)
  p99_ms : float;  (** exact 99th-percentile exchange latency *)
  max_ms : float;  (** slowest exchange *)
  errors : (string * int) list;
      (** failures by class, sorted: typed server codes
          (["overloaded"], ["timeout"], ...), ["transport"],
          ["protocol"] *)
  answers : float array;
      (** per-request estimates, aligned with the request array; [nan]
          where the query failed — lets callers verify bit-identity
          against a direct [Catalog.Service.answer] call *)
}

val synthetic_requests :
  entries:Wire.entry_info list -> count:int -> seed:int64 -> (string * float * float) array
(** [count] random range queries over the given entries (uniform entry
    choice; endpoints uniform in the entry's domain, ordered), fully
    deterministic from [seed].  Feed it the {!Client.ls} reply.
    @raise Invalid_argument on an empty entry list or negative count. *)

val run :
  ?client_config:Client.config ->
  ?batch:int ->
  connections:int ->
  address:Wire.address ->
  (string * float * float) array ->
  report
(** Drive the request array against the server and block until every
    worker finishes.  [batch] groups consecutive queries of a worker's
    slice into one [batch_estimate] frame (default [1]: one [estimate]
    per exchange).  Each worker's retry jitter is seeded from
    [client_config.seed] plus its index, so runs are reproducible.
    Counts also flow into the [Telemetry] registry as [loadgen_*]
    metrics when telemetry is enabled.
    @raise Invalid_argument if [connections < 1] or [batch < 1]. *)

val report_to_string : report -> string
(** Multi-line human-readable summary (throughput, latency percentiles,
    error classes). *)
