(* The concurrent estimate server, sharded across OCaml 5 domains.

   Thread architecture: the thread calling [serve] runs the accept loop
   (a [select] tick so the drain flag is noticed promptly); each accepted
   connection gets a reader thread; and each shard runs one dispatcher
   *domain* that owns that shard's [Catalog.Service] — the service is
   single-owner by contract (its LRU cache mutates on reads), so every
   catalog operation funnels through its shard's dispatcher.  Domains
   rather than threads because OCaml systhreads of one domain share a
   runtime lock: with [shards = N], N merged batches evaluate in true
   parallel on N cores.

   Requests are routed by entry name: [Catalog.Service.shard_of_name]
   (the same stable hash that lays out the snapshot directories) sends
   each query to the shard that owns its entry.  A [batch_estimate]
   frame whose queries span shards is split by the connection thread
   into per-shard sub-jobs (each preserving its queries' relative
   order), evaluated concurrently, and reassembled into one reply in
   the original request order — so served bits are identical to the
   single-shard path, which in turn is bit-identical to direct
   [Catalog.Service.answer] calls.  With [shards = 1] the router
   degenerates to exactly the pre-sharding engine: one dispatcher, one
   queue, whole frames, zero-allocation steady state.

   Per-shard batching works exactly as the single dispatcher did:
   connection threads park service-bound sub-jobs on the shard's queue
   and block until its dispatcher fulfills them; whatever accumulated
   while the previous batch ran is merged (into the shard's reused
   structure-of-arrays staging buffers) and evaluated in one
   [Service.answer_into] pass.  Each connection reuses one job record
   per shard and one [Wire.writer]; a steady-state single-shard request
   costs no fresh buffers on the reply path, while a cross-shard batch
   pays small per-request split/reassembly arrays (quantified in
   docs/PERFORMANCE.md).

   Backpressure is admission control at enqueue time: once
   [max_inflight] requests are in flight the connection thread answers
   [Overloaded] immediately instead of queueing — one admission slot
   per request, however many shards it fans out to.  Requests that sat
   in a queue past [deadline_s] are answered [Timeout] without
   evaluation.  A drain (SIGTERM or [initiate_drain]) stops the accept
   loop, answers new requests [Draining], lets every in-flight request
   finish and its reply be written, then retires the dispatchers and
   closes all sockets.  A dispatcher that dies (or is killed by the
   [kill_shard_dispatcher] fault hook) marks its shard down: queued
   jobs are failed with the typed [Internal] error and later requests
   routed there are refused the same way, while the other shards keep
   serving — a shard failure degrades, it does not hang. *)

module Service = Catalog.Service

type config = {
  jobs : int;
  max_inflight : int;
  max_batch : int;
  deadline_s : float;
  accept_backlog : int;
  tick_s : float;
  dispatch_delay_s : float;
}

let default_config =
  {
    jobs = 1;
    max_inflight = 64;
    max_batch = 64;
    deadline_s = 5.0;
    accept_backlog = 64;
    tick_s = 0.02;
    dispatch_delay_s = 0.0;
  }

type shard_stats = {
  shard_batches : int;
  shard_batched_queries : int;
  shard_answered : int;
  shard_swaps : int;
}

type stats = {
  connections : int;
  requests : int;
  answered : int;
  overloaded : int;
  timeouts : int;
  refused_draining : int;
  protocol_errors : int;
  batches : int;
  batched_queries : int;
  swaps : int;
  shards : int;
  per_shard : shard_stats array;
}

(* A service-bound request parked by its connection thread.  One job
   record lives per connection *per shard*, not per request: the
   connection thread blocks awaiting every sub-job of a request before
   reading its next frame, so the records (and their mutex/condition)
   are free for reuse the moment the replies land — [kind],
   [enqueued_at] and [reply] are reset in place. *)
type job_kind =
  | Query of { triples : (string * float * float) array }
  | Query1
      (* a single estimate whose fields live in the job record itself
         ([q1_entry], [q1_spec], [q1]) — the hot path carries no fresh
         request value, so enqueueing one allocates nothing *)
  | Ls_job
  | Invalidate_job of string
  | Insert_job of { entry : string; values : float array }
  | Observe_job of { entry : string; oa : float; ob : float; actual : float }
  | Rect_job of { entry : string; rx_lo : float; rx_hi : float; ry_lo : float; ry_hi : float }
  | Join_job of { entry : string; pred : Selest.Stored.join_pred }

type job = {
  mutable kind : job_kind;
  mutable enqueued_at : float;
  job_m : Mutex.t;
  job_c : Condition.t;
  mutable reply : Wire.response option;
  mutable q1_entry : string;
  mutable q1_spec : string;
  q1 : Wire.qnums; (* all-float record: setting the bounds never boxes *)
}

(* Structure-of-arrays staging for merged batches, owned by the shard's
   dispatcher domain and reused (grown geometrically, never shrunk)
   across batches: at steady state a dispatch allocates no fresh
   arrays before handing the batch to [Service.answer_into]. *)
type merge_buffers = {
  mutable mb_names : string array;
  mutable mb_a : float array;
  mutable mb_b : float array;
  mutable mb_out : float array;
}

type shard = {
  sh_id : int;
  sh_service : Service.t;
  sh_queue : job Queue.t;
  sh_m : Mutex.t;
  sh_c : Condition.t;
  sh_mb : merge_buffers;
  (* [sh_stop] asks the dispatcher to exit once its queue drains;
     [sh_down] means it is gone — set by the dispatcher domain itself on
     the way out, checked at enqueue so no job can park on a queue
     nobody will ever pop. *)
  sh_stop : bool Atomic.t;
  sh_down : bool Atomic.t;
  mutable sh_domain : unit Domain.t option;
  sh_batches : int Atomic.t;
  sh_batched_queries : int Atomic.t;
  sh_answered : int Atomic.t;
  sh_swaps : int Atomic.t;
  sh_m_batches : Telemetry.Metrics.counter;
  sh_m_batched_queries : Telemetry.Metrics.counter;
}

type t = {
  shards : shard array;
  config : config;
  address : Wire.address;
  listen_fd : Unix.file_descr;
  draining : bool Atomic.t;
  inflight : int Atomic.t;
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  conns_m : Mutex.t;
  conn_seq : int Atomic.t;
  s_connections : int Atomic.t;
  s_requests : int Atomic.t;
  s_overloaded : int Atomic.t;
  s_timeouts : int Atomic.t;
  s_refused_draining : int Atomic.t;
  s_protocol_errors : int Atomic.t;
  m_connections : Telemetry.Metrics.counter;
  m_requests : Telemetry.Metrics.counter;
  m_overloaded : Telemetry.Metrics.counter;
  m_timeouts : Telemetry.Metrics.counter;
  m_request_seconds : Telemetry.Metrics.histogram;
}

let shard_count t = Array.length t.shards

let create ?(config = default_config) ~services address =
  Wire.ignore_sigpipe ();
  if Array.length services < 1 then
    invalid_arg "Server.Engine.create: services must not be empty";
  if config.jobs < 1 then invalid_arg "Server.Engine.create: jobs must be >= 1";
  if config.max_inflight < 0 then
    invalid_arg "Server.Engine.create: max_inflight must be >= 0";
  if config.max_batch < 1 then invalid_arg "Server.Engine.create: max_batch must be >= 1";
  if config.accept_backlog < 1 then
    invalid_arg "Server.Engine.create: accept_backlog must be >= 1";
  if config.tick_s <= 0.0 then invalid_arg "Server.Engine.create: tick_s must be > 0";
  let listen_fd =
    match address with
    | Wire.Unix_socket path ->
      (* A path left behind by a dead server would make bind fail; a live
         server on the same path is indistinguishable, so serving twice
         from one path is the caller's responsibility. *)
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      fd
    | Wire.Tcp _ as a ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Wire.sockaddr_of_address a);
      fd
  in
  Unix.listen listen_fd config.accept_backlog;
  let labels = [ ("addr", Wire.address_to_string address) ] in
  let nshards = Array.length services in
  let shards =
    Array.mapi
      (fun i service ->
        (* The single-shard configuration keeps today's label set so its
           telemetry stream is unchanged; sharded servers label per
           shard, which is what makes per-shard batching observable. *)
        let sh_labels =
          if nshards = 1 then labels else labels @ [ ("shard", string_of_int i) ]
        in
        {
          sh_id = i;
          sh_service = service;
          sh_queue = Queue.create ();
          sh_m = Mutex.create ();
          sh_c = Condition.create ();
          sh_mb = { mb_names = [||]; mb_a = [||]; mb_b = [||]; mb_out = [||] };
          sh_stop = Atomic.make false;
          sh_down = Atomic.make false;
          sh_domain = None;
          sh_batches = Atomic.make 0;
          sh_batched_queries = Atomic.make 0;
          sh_answered = Atomic.make 0;
          sh_swaps = Atomic.make 0;
          sh_m_batches =
            Telemetry.Metrics.counter "server_batches_total" ~labels:sh_labels
              ~help:"Service.answer calls issued by the dispatchers";
          sh_m_batched_queries =
            Telemetry.Metrics.counter "server_batched_queries_total" ~labels:sh_labels
              ~help:"Range queries folded into dispatcher batches";
        })
      services
  in
  {
    shards;
    config;
    address;
    listen_fd;
    draining = Atomic.make false;
    inflight = Atomic.make 0;
    conns = Hashtbl.create 64;
    conns_m = Mutex.create ();
    conn_seq = Atomic.make 0;
    s_connections = Atomic.make 0;
    s_requests = Atomic.make 0;
    s_overloaded = Atomic.make 0;
    s_timeouts = Atomic.make 0;
    s_refused_draining = Atomic.make 0;
    s_protocol_errors = Atomic.make 0;
    m_connections =
      Telemetry.Metrics.counter "server_connections_total" ~labels
        ~help:"Connections accepted by the estimate server";
    m_requests =
      Telemetry.Metrics.counter "server_requests_total" ~labels
        ~help:"Frames decoded into requests";
    m_overloaded =
      Telemetry.Metrics.counter "server_overloaded_total" ~labels
        ~help:"Requests refused by admission control";
    m_timeouts =
      Telemetry.Metrics.counter "server_timeouts_total" ~labels
        ~help:"Requests expired past their deadline before evaluation";
    m_request_seconds =
      Telemetry.Metrics.histogram "server_request_seconds" ~labels
        ~help:"Latency from frame decode to reply written";
  }

let address t = t.address

let bound_port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let stats t =
  let per_shard =
    Array.map
      (fun sh ->
        {
          shard_batches = Atomic.get sh.sh_batches;
          shard_batched_queries = Atomic.get sh.sh_batched_queries;
          shard_answered = Atomic.get sh.sh_answered;
          shard_swaps = Atomic.get sh.sh_swaps;
        })
      t.shards
  in
  {
    connections = Atomic.get t.s_connections;
    requests = Atomic.get t.s_requests;
    answered = Array.fold_left (fun n s -> n + s.shard_answered) 0 per_shard;
    overloaded = Atomic.get t.s_overloaded;
    timeouts = Atomic.get t.s_timeouts;
    refused_draining = Atomic.get t.s_refused_draining;
    protocol_errors = Atomic.get t.s_protocol_errors;
    batches = Array.fold_left (fun n s -> n + s.shard_batches) 0 per_shard;
    batched_queries = Array.fold_left (fun n s -> n + s.shard_batched_queries) 0 per_shard;
    swaps = Array.fold_left (fun n s -> n + s.shard_swaps) 0 per_shard;
    shards = Array.length t.shards;
    per_shard;
  }

let draining t = Atomic.get t.draining

(* Only an atomic store, so it is safe inside a signal handler; the
   accept loop and connection threads poll the flag. *)
let initiate_drain t = Atomic.set t.draining true

let install_sigterm t =
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> initiate_drain t))

(* ---------------- dispatchers (one domain per shard) ---------------- *)

let complete job resp =
  Mutex.lock job.job_m;
  job.reply <- Some resp;
  Condition.broadcast job.job_c;
  Mutex.unlock job.job_m

(* Pop the shard's next batch: blocks until a job arrives, the stop flag
   is raised, or the shard's condition is poked (an adaptive rebuild
   worker finishing), then takes queued jobs up to [max_batch] merged
   queries (the first job is always taken whole, so an oversized client
   batch still dispatches).  A single [Condition.wait] rather than a
   wait loop: returning [] on a wake with an empty queue is exactly what
   lets the dispatcher run its adaptive maintenance promptly instead of
   sleeping on the swap until the next request. *)
let next_jobs t sh =
  Mutex.lock sh.sh_m;
  if Queue.is_empty sh.sh_queue && not (Atomic.get sh.sh_stop) then
    Condition.wait sh.sh_c sh.sh_m;
  let jobs = ref [] in
  let merged = ref 0 in
  let full = ref false in
  while (not !full) && not (Queue.is_empty sh.sh_queue) do
    let j = Queue.peek sh.sh_queue in
    let cost =
      match j.kind with
      | Query { triples } -> max 1 (Array.length triples)
      | Query1 | Ls_job | Invalidate_job _ | Insert_job _ | Observe_job _ | Rect_job _
      | Join_job _ ->
        1
    in
    if !jobs <> [] && !merged + cost > t.config.max_batch then full := true
    else begin
      ignore (Queue.pop sh.sh_queue);
      jobs := j :: !jobs;
      merged := !merged + cost
    end
  done;
  Mutex.unlock sh.sh_m;
  List.rev !jobs

let ls_reply sh =
  Wire.Ls_reply
    (List.map
       (fun (i : Service.info) ->
         {
           Wire.name = i.Service.name;
           spec = i.Service.spec;
           cells = i.Service.cells;
           stale = i.Service.stale;
           domain = i.Service.domain;
           kind = i.Service.kind;
           domain_y = i.Service.domain_y;
         })
       (Service.infos sh.sh_service))

let ensure_merge_capacity mb total =
  if Array.length mb.mb_names < total then begin
    let cap = ref (Int.max 16 (Array.length mb.mb_names)) in
    while !cap < total do
      cap := 2 * !cap
    done;
    mb.mb_names <- Array.make !cap "";
    mb.mb_a <- Array.make !cap 0.0;
    mb.mb_b <- Array.make !cap 0.0;
    mb.mb_out <- Array.make !cap 0.0
  end

(* Answer every query job of the shard's batch with one
   [Service.answer_into] call over the reused staging arrays.  Each
   job's slice of the merged batch is evaluated independently of what
   else the batch contains, so served answers stay bit-identical to a
   direct call whatever the interleaving of clients; queries of one job
   stay contiguous, so a same-entry client batch is one summary
   resolution.  [complete] is the batch's recording completion function
   (see [process_batch]). *)
let run_queries sh ~complete query_jobs =
  let total = List.fold_left (fun n (_, len) -> n + len) 0 query_jobs in
  if total > 0 then begin
    Atomic.incr sh.sh_batches;
    ignore (Atomic.fetch_and_add sh.sh_batched_queries total);
    Telemetry.Metrics.incr sh.sh_m_batches;
    Telemetry.Metrics.add sh.sh_m_batched_queries total;
    let mb = sh.sh_mb in
    ensure_merge_capacity mb total;
    let off = ref 0 in
    List.iter
      (fun (job, len) ->
        (match job.kind with
        | Query { triples } ->
          for i = 0 to len - 1 do
            let name, qa, qb = Array.unsafe_get triples i in
            Array.unsafe_set mb.mb_names (!off + i) name;
            Array.unsafe_set mb.mb_a (!off + i) qa;
            Array.unsafe_set mb.mb_b (!off + i) qb
          done
        | Query1 ->
          Array.unsafe_set mb.mb_names !off job.q1_entry;
          Array.unsafe_set mb.mb_a !off job.q1.Wire.sa;
          Array.unsafe_set mb.mb_b !off job.q1.Wire.sb
        | Ls_job | Invalidate_job _ | Insert_job _ | Observe_job _ | Rect_job _
        | Join_job _ ->
          assert false);
        off := !off + len)
      query_jobs;
    match
      Service.answer_into sh.sh_service ~n:total ~names:mb.mb_names ~a:mb.mb_a
        ~b:mb.mb_b ~out:mb.mb_out
    with
    | () ->
      let off = ref 0 in
      List.iter
        (fun (job, len) ->
          let reply =
            match job.kind with
            | Query1 -> Wire.Estimate_reply mb.mb_out.(!off)
            | Query _ -> Wire.Batch_reply (Array.sub mb.mb_out !off len)
            | Ls_job | Invalidate_job _ | Insert_job _ | Observe_job _ | Rect_job _
            | Join_job _ ->
              assert false
          in
          off := !off + len;
          ignore (Atomic.fetch_and_add sh.sh_answered len);
          complete job reply)
        query_jobs
    | exception e ->
      (* Unreadable snapshot mid-flight: the whole merged call is lost,
         so every member gets the typed internal error rather than a
         hung connection. *)
      let message = Printexc.to_string e in
      List.iter
        (fun (job, _) -> complete job (Wire.Error_reply { code = Wire.Internal; message }))
        query_jobs
  end
  else
    (* Zero-length query jobs are answered before they enqueue, but a
       batch of them reaching here must still complete (the [total > 0]
       work above never touches them) or their connections would park in
       [await_reply] forever. *)
    List.iter (fun (job, _) -> complete job (Wire.Batch_reply [||])) query_jobs

let process_batch_exn t sh ~complete jobs =
  if t.config.dispatch_delay_s > 0.0 then Unix.sleepf t.config.dispatch_delay_s;
  let now = Unix.gettimeofday () in
  let live =
    List.filter
      (fun job ->
        if t.config.deadline_s > 0.0 && now -. job.enqueued_at > t.config.deadline_s then begin
          Atomic.incr t.s_timeouts;
          Telemetry.Metrics.incr t.m_timeouts;
          complete job
            (Wire.Error_reply
               {
                 code = Wire.Timeout;
                 message =
                   Printf.sprintf "request queued %.3fs, past the %.3fs deadline"
                     (now -. job.enqueued_at) t.config.deadline_s;
               });
          false
        end
        else true)
      jobs
  in
  (* Catalog metadata operations run inline; queries are validated, then
     merged into one Service.answer call. *)
  let query_jobs =
    List.filter_map
      (fun job ->
        match job.kind with
        | Ls_job ->
          complete job (ls_reply sh);
          None
        | Invalidate_job name ->
          (* Caught per job: a persist failure (unreadable snapshot dir,
             full disk) answers this request Internal and leaves the rest
             of the batch to run. *)
          (match Service.invalidate sh.sh_service name with
          | Ok () -> complete job Wire.Invalidated
          | Error message ->
            complete job (Wire.Error_reply { code = Wire.Unknown_entry; message })
          | exception e ->
            complete job
              (Wire.Error_reply { code = Wire.Internal; message = Printexc.to_string e }));
          None
        | Insert_job { entry; values } ->
          (match Service.insert sh.sh_service ~name:entry values with
          | Ok (sampled, seen) -> complete job (Wire.Inserted { sampled; seen })
          | Error message ->
            let code =
              if
                Service.adaptive_enabled sh.sh_service
                && not (Service.mem sh.sh_service entry)
              then Wire.Unknown_entry
              else Wire.Bad_request
            in
            complete job (Wire.Error_reply { code; message })
          | exception e ->
            complete job
              (Wire.Error_reply { code = Wire.Internal; message = Printexc.to_string e }));
          None
        | Observe_job { entry; oa; ob; actual } ->
          (match Service.observe sh.sh_service ~name:entry ~a:oa ~b:ob ~actual with
          | Ok refined -> complete job (Wire.Observed refined)
          | Error message ->
            let code =
              if
                Service.adaptive_enabled sh.sh_service
                && not (Service.mem sh.sh_service entry)
              then Wire.Unknown_entry
              else Wire.Bad_request
            in
            complete job (Wire.Error_reply { code; message })
          | exception e ->
            complete job
              (Wire.Error_reply { code = Wire.Internal; message = Printexc.to_string e }));
          None
        | Rect_job { entry; rx_lo; rx_hi; ry_lo; ry_hi } ->
          (* Delegates to the same [Selest.Stored.rect_selectivity] a
             direct [Multidim.Hist2d] call uses, so the served bits are
             identical by construction.  A wrong-kind entry is the
             caller's mistake (Bad_request), an unknown one is the
             routing's usual typed refusal. *)
          (match
             Service.answer_rect sh.sh_service ~name:entry ~x_lo:rx_lo ~x_hi:rx_hi
               ~y_lo:ry_lo ~y_hi:ry_hi
           with
          | Ok v ->
            Atomic.incr sh.sh_answered;
            complete job (Wire.Estimate_reply v)
          | Error message ->
            let code =
              if Service.mem sh.sh_service entry then Wire.Bad_request
              else Wire.Unknown_entry
            in
            complete job (Wire.Error_reply { code; message })
          | exception e ->
            complete job
              (Wire.Error_reply { code = Wire.Internal; message = Printexc.to_string e }));
          None
        | Join_job { entry; pred } ->
          (match Service.answer_join sh.sh_service ~name:entry ~pred with
          | Ok v ->
            Atomic.incr sh.sh_answered;
            complete job (Wire.Estimate_reply v)
          | Error message ->
            let code =
              if Service.mem sh.sh_service entry then Wire.Bad_request
              else Wire.Unknown_entry
            in
            complete job (Wire.Error_reply { code; message })
          | exception e ->
            complete job
              (Wire.Error_reply { code = Wire.Internal; message = Printexc.to_string e }));
          None
        | Query1 ->
          if not (Service.mem sh.sh_service job.q1_entry) then begin
            complete job
              (Wire.Error_reply
                 {
                   code = Wire.Unknown_entry;
                   message = Printf.sprintf "unknown catalog entry %S" job.q1_entry;
                 });
            None
          end
          else begin
            let spec_conflict =
              job.q1_spec <> ""
              &&
              match Service.info sh.sh_service job.q1_entry with
              | Some i -> i.Service.spec <> job.q1_spec
              | None -> false
            in
            if spec_conflict then begin
              complete job
                (Wire.Error_reply
                   {
                     code = Wire.Spec_mismatch;
                     message =
                       Printf.sprintf "entry was not built with spec %S" job.q1_spec;
                   });
              None
            end
            else Some (job, 1)
          end
        | Query { triples } -> (
          match
            Array.find_opt
              (fun (name, _, _) -> not (Service.mem sh.sh_service name))
              triples
          with
          | Some (name, _, _) ->
            complete job
              (Wire.Error_reply
                 {
                   code = Wire.Unknown_entry;
                   message = Printf.sprintf "unknown catalog entry %S" name;
                 });
            None
          | None -> Some (job, Array.length triples)))
      live
  in
  run_queries sh ~complete query_jobs

(* Every completion of the batch goes through a recording wrapper so the
   error backstop knows which jobs were already answered without reading
   [job.reply] — by the time [process_batch_exn] raises, a completed job
   may have been reset and re-enqueued by its connection thread, and an
   unlocked [reply = None] check would answer the *next* request with
   this batch's error while the queued copy double-completes it later. *)
let process_batch t sh jobs =
  let completed = ref [] in
  let complete_job job resp =
    completed := job :: !completed;
    complete job resp
  in
  try process_batch_exn t sh ~complete:complete_job jobs
  with e ->
    let message = Printexc.to_string e in
    List.iter
      (fun job ->
        if not (List.memq job !completed) then
          complete job (Wire.Error_reply { code = Wire.Internal; message }))
      jobs

let shard_down_reply sh =
  Wire.Error_reply
    {
      code = Wire.Internal;
      message = Printf.sprintf "shard %d dispatcher is down" sh.sh_id;
    }

(* The body of a shard's dispatcher domain.  On the way out — a normal
   stop, or an escaped exception (the per-batch backstop makes that
   nearly impossible) — the shard is marked down and anything still
   queued is failed: enqueue checks [sh_down] under [sh_m] before
   pushing, so every job either reaches this sweep or is refused at
   enqueue, and no connection can park forever on a dead shard. *)
let dispatcher_domain t sh () =
  (try
     (* Adaptive maintenance interleaves with batches: a tick after every
        dispatch, plus one on each wake with an empty queue — the rebuild
        worker pokes [sh_c] when its result is ready, so the swap lands
        promptly even on an idle shard.  [wake] runs on the worker thread
        and only touches the shard's mutex/condition. *)
     let wake () =
       Mutex.lock sh.sh_m;
       Condition.broadcast sh.sh_c;
       Mutex.unlock sh.sh_m
     in
     let maintain () =
       let swaps = Service.adaptive_tick ~wake sh.sh_service in
       if swaps > 0 then ignore (Atomic.fetch_and_add sh.sh_swaps swaps)
     in
     let rec loop () =
       match next_jobs t sh with
       | [] ->
         if Atomic.get sh.sh_stop then
           (* Orderly retirement: finish (don't abandon) any in-flight
              rebuild so its swap is persisted before the shard goes
              down. *)
           Service.adaptive_drain sh.sh_service
         else begin
           (* Woken with nothing queued: a rebuild result is (probably)
              ready. *)
           maintain ();
           loop ()
         end
       | jobs ->
         process_batch t sh jobs;
         maintain ();
         loop ()
     in
     loop ()
   with _ -> ());
  Mutex.lock sh.sh_m;
  Atomic.set sh.sh_down true;
  let stranded = ref [] in
  while not (Queue.is_empty sh.sh_queue) do
    stranded := Queue.pop sh.sh_queue :: !stranded
  done;
  Mutex.unlock sh.sh_m;
  List.iter (fun job -> complete job (shard_down_reply sh)) (List.rev !stranded)

(* Fault-injection hook (tests; see the kill-one-shard drain test):
   stop shard [i]'s dispatcher as if it had died.  Queued jobs drain
   first ([next_jobs] keeps handing out work while the queue is
   non-empty), then the shard goes down: stranded stragglers and all
   later requests routed to it get the typed [Internal] refusal while
   every other shard keeps serving. *)
let kill_shard_dispatcher t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Server.Engine.kill_shard_dispatcher: no such shard";
  let sh = t.shards.(i) in
  Mutex.lock sh.sh_m;
  Atomic.set sh.sh_stop true;
  Condition.broadcast sh.sh_c;
  Mutex.unlock sh.sh_m;
  match sh.sh_domain with
  | Some d ->
    Domain.join d;
    sh.sh_domain <- None
  | None ->
    (* [serve] not running: nothing to join, but mark the shard down so
       routing refuses it. *)
    Atomic.set sh.sh_down true

(* ---------------- routing ---------------- *)

(* Per-connection routing state: one reusable job record per shard, so
   a request that fans out across shards needs no fresh synchronization
   objects — only its split arrays. *)
type conn_state = { jobs : job array }

let fresh_job () =
  {
    kind = Ls_job;
    enqueued_at = 0.0;
    job_m = Mutex.create ();
    job_c = Condition.create ();
    reply = None;
    q1_entry = "";
    q1_spec = "";
    q1 = { Wire.sa = 0.0; sb = 0.0 };
  }

let send w fd response = Wire.write_response w fd response

let await_reply job =
  Mutex.lock job.job_m;
  while job.reply = None do
    Condition.wait job.job_c job.job_m
  done;
  let r = Option.get job.reply in
  Mutex.unlock job.job_m;
  r

(* Reset the connection's shard-[i] job in place (the dispatcher
   finished with it before the previous [await_reply] returned) and park
   it on the shard's queue — unless the shard is down, in which case the
   job completes immediately with the typed refusal. *)
let park sh job =
  job.enqueued_at <- Unix.gettimeofday ();
  job.reply <- None;
  Mutex.lock sh.sh_m;
  if Atomic.get sh.sh_down then begin
    Mutex.unlock sh.sh_m;
    complete job (shard_down_reply sh)
  end
  else begin
    Queue.push job sh.sh_queue;
    Condition.broadcast sh.sh_c;
    Mutex.unlock sh.sh_m
  end;
  job

let enqueue t cs shard_idx kind =
  let sh = t.shards.(shard_idx) in
  let job = cs.jobs.(shard_idx) in
  job.kind <- kind;
  park sh job

(* The hot enqueue: the decoded fields move from the connection's wire
   scratch into the job record field-by-field (string refs and
   float-record stores — no request value, no closure), so parking a
   single estimate allocates nothing. *)
let enqueue_estimate t cs shard_idx (sc : Wire.scratch) =
  let sh = t.shards.(shard_idx) in
  let job = cs.jobs.(shard_idx) in
  job.kind <- Query1;
  job.q1_entry <- sc.Wire.s_entry;
  job.q1_spec <- sc.Wire.s_spec;
  job.q1.Wire.sa <- sc.Wire.s_q.Wire.sa;
  job.q1.Wire.sb <- sc.Wire.s_q.Wire.sb;
  park sh job

let shard_of t name = Service.shard_of_name ~shards:(Array.length t.shards) name

(* Split a multi-entry batch across the shards that own its entries,
   await every sub-reply, and reassemble in request order.  Each
   sub-job's queries keep their relative order, and query [i]'s answer
   is taken from its shard's reply at that shard's next unconsumed
   position — scatter by construction, so the merged reply is
   bit-identical to what a single dispatcher would have produced.  If
   any shard answered an error, the lowest-numbered shard's error
   stands for the whole frame (deterministic, though the reported entry
   may differ from the single-shard path, which scans in request
   order). *)
let route_batch t cs triples =
  let nshards = Array.length t.shards in
  let n = Array.length triples in
  let shard_of_query = Array.map (fun (name, _, _) -> shard_of t name) triples in
  let counts = Array.make nshards 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) shard_of_query;
  let involved = ref [] in
  for s = nshards - 1 downto 0 do
    if counts.(s) > 0 then involved := s :: !involved
  done;
  match !involved with
  | [ s ] ->
    (* Single-shard frame (the common case, and every frame when
       [shards = 1]): no splitting, no scatter — the job carries the
       client's array as-is. *)
    await_reply (enqueue t cs s (Query { triples }))
  | involved ->
    let subs = Array.make nshards [||] in
    List.iter
      (fun s -> subs.(s) <- Array.make counts.(s) ("", 0.0, 0.0))
      involved;
    let cursors = Array.make nshards 0 in
    for i = 0 to n - 1 do
      let s = shard_of_query.(i) in
      subs.(s).(cursors.(s)) <- triples.(i);
      cursors.(s) <- cursors.(s) + 1
    done;
    (* Enqueue every sub-job before awaiting any: the shards evaluate
       their slices concurrently. *)
    List.iter
      (fun s ->
        ignore (enqueue t cs s (Query { triples = subs.(s) })))
      involved;
    let replies = List.map (fun s -> (s, await_reply cs.jobs.(s))) involved in
    let error =
      List.find_map
        (fun (_, r) -> match r with Wire.Error_reply _ -> Some r | _ -> None)
        replies
    in
    (match error with
    | Some e -> e
    | None ->
      let out = Array.make n 0.0 in
      Array.fill cursors 0 nshards 0;
      List.iter
        (fun (s, r) ->
          match r with
          | Wire.Batch_reply xs ->
            (* Scatter: walk the request in order, consuming this
               shard's answers at the positions it owns. *)
            let k = ref 0 in
            for i = 0 to n - 1 do
              if shard_of_query.(i) = s then begin
                out.(i) <- xs.(!k);
                incr k
              end
            done
          | _ -> ())
        replies;
      Wire.Batch_reply out)

(* [ls] must describe the whole catalog, so it fans out to every shard
   and merges the per-shard listings (each sorted; entry names are
   disjoint across shards, so a plain sort of the concatenation is the
   global sorted listing). *)
let route_ls t cs =
  let nshards = Array.length t.shards in
  for s = 0 to nshards - 1 do
    ignore (enqueue t cs s Ls_job)
  done;
  let replies = List.init nshards (fun s -> await_reply cs.jobs.(s)) in
  let error =
    List.find_map
      (fun r -> match r with Wire.Error_reply _ -> Some r | _ -> None)
      replies
  in
  match error with
  | Some e -> e
  | None ->
    Wire.Ls_reply
      (List.concat_map
         (fun r -> match r with Wire.Ls_reply es -> es | _ -> [])
         replies
      |> List.sort (fun (a : Wire.entry_info) b -> String.compare a.name b.name))

let route t cs req =
  match req with
  | Wire.Ls -> if Array.length t.shards = 1 then await_reply (enqueue t cs 0 Ls_job) else route_ls t cs
  | Wire.Invalidate name -> await_reply (enqueue t cs (shard_of t name) (Invalidate_job name))
  | Wire.Estimate { entry; a; b; spec } ->
    (* Only reachable for an [Estimate] arriving as a [Decoded] value
       (e.g. via tests calling [decode_request]); the serving read loop
       takes the scratch path through [enqueue_estimate] instead. *)
    let shard_idx = shard_of t entry in
    let job = cs.jobs.(shard_idx) in
    job.kind <- Query1;
    job.q1_entry <- entry;
    job.q1_spec <- spec;
    job.q1.Wire.sa <- a;
    job.q1.Wire.sb <- b;
    await_reply (park t.shards.(shard_idx) job)
  | Wire.Batch_estimate triples -> route_batch t cs triples
  | Wire.Insert { entry; values } ->
    await_reply (enqueue t cs (shard_of t entry) (Insert_job { entry; values }))
  | Wire.Observe { entry; a; b; actual } ->
    await_reply
      (enqueue t cs (shard_of t entry) (Observe_job { entry; oa = a; ob = b; actual }))
  | Wire.Estimate_rect { entry; x_lo; x_hi; y_lo; y_hi } ->
    await_reply
      (enqueue t cs (shard_of t entry)
         (Rect_job { entry; rx_lo = x_lo; rx_hi = x_hi; ry_lo = y_lo; ry_hi = y_hi }))
  | Wire.Estimate_join { entry; pred } ->
    await_reply (enqueue t cs (shard_of t entry) (Join_job { entry; pred }))
  | Wire.Ping -> assert false

(* ---------------- connection threads ---------------- *)

let handle_request t w fd cs req =
  match req with
  | Wire.Ping -> send w fd Wire.Pong
  | _ when Atomic.get t.draining ->
    Atomic.incr t.s_refused_draining;
    send w fd (Wire.Error_reply { code = Wire.Draining; message = "server is draining" })
  | Wire.Batch_estimate [||] ->
    (* A legal frame with nothing to evaluate.  Answered inline: enqueued,
       its zero-length job would contribute nothing to a dispatcher's
       merged call and could otherwise park forever. *)
    send w fd (Wire.Batch_reply [||])
  | req ->
    (* Admission is the increment itself: check-then-increment would let
       two threads race past the limit together.  One slot per request,
       however many shards its queries fan out to. *)
    let prev = Atomic.fetch_and_add t.inflight 1 in
    if prev >= t.config.max_inflight then begin
      Atomic.decr t.inflight;
      Atomic.incr t.s_overloaded;
      Telemetry.Metrics.incr t.m_overloaded;
      send w fd
        (Wire.Error_reply
           {
             code = Wire.Overloaded;
             message =
               Printf.sprintf "%d requests in flight (limit %d)" prev
                 t.config.max_inflight;
           })
    end
    else
      (* The decrement runs after the reply is written (or the write
         fails), which is what lets the drain sequence equate
         "inflight = 0" with "every accepted request was answered". *)
      Fun.protect
        ~finally:(fun () -> Atomic.decr t.inflight)
        (fun () -> send w fd (route t cs req))

(* [handle_request] specialized to the scratch-decoded single estimate.
   Same admission/draining protocol, but the unwind is an explicit
   match rather than [Fun.protect]: the hot path allocates neither the
   [~finally] closure nor the body thunk. *)
let handle_estimate t w fd cs sc =
  if Atomic.get t.draining then begin
    Atomic.incr t.s_refused_draining;
    send w fd (Wire.Error_reply { code = Wire.Draining; message = "server is draining" })
  end
  else begin
    let prev = Atomic.fetch_and_add t.inflight 1 in
    if prev >= t.config.max_inflight then begin
      Atomic.decr t.inflight;
      Atomic.incr t.s_overloaded;
      Telemetry.Metrics.incr t.m_overloaded;
      send w fd
        (Wire.Error_reply
           {
             code = Wire.Overloaded;
             message =
               Printf.sprintf "%d requests in flight (limit %d)" prev
                 t.config.max_inflight;
           })
    end
    else
      match
        send w fd (await_reply (enqueue_estimate t cs (shard_of t sc.Wire.s_entry) sc))
      with
      | () -> Atomic.decr t.inflight
      | exception e ->
        Atomic.decr t.inflight;
        raise e
  end

let conn_loop t fd =
  let w = Wire.create_writer () in
  let r = Wire.create_reader () in
  let sc = Wire.create_scratch () in
  let cs = { jobs = Array.init (Array.length t.shards) (fun _ -> fresh_job ()) } in
  let rec loop () =
    let len = Wire.read_frame_into r fd in
    if len = -1 then () (* clean EOF at a frame boundary *)
    else if len = -2 then begin
      (* The stream is no longer frame-aligned: reply if possible, then
         hang up. *)
      Atomic.incr t.s_protocol_errors;
      try
        send w fd
          (Wire.Error_reply { code = Wire.Bad_request; message = Wire.reader_error r })
      with _ -> ()
    end
    else
      match Wire.decode_request_scratch (Wire.reader_buffer r) ~len sc with
      | Error message ->
        (* Frame boundaries are intact, so the connection survives a
           malformed payload. *)
        Atomic.incr t.s_protocol_errors;
        send w fd (Wire.Error_reply { code = Wire.Bad_request; message });
        loop ()
      | Ok Wire.Fast_estimate ->
        Atomic.incr t.s_requests;
        Telemetry.Metrics.incr t.m_requests;
        let t0 = Unix.gettimeofday () in
        handle_estimate t w fd cs sc;
        Telemetry.Metrics.observe_s t.m_request_seconds (Unix.gettimeofday () -. t0);
        loop ()
      | Ok (Wire.Decoded req) ->
        Atomic.incr t.s_requests;
        Telemetry.Metrics.incr t.m_requests;
        let t0 = Unix.gettimeofday () in
        handle_request t w fd cs req;
        Telemetry.Metrics.observe_s t.m_request_seconds (Unix.gettimeofday () -. t0);
        loop ()
  in
  try loop () with
  | Unix.Unix_error _ | Sys_error _ -> ()

let conn_thread t id fd () =
  conn_loop t fd;
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns id;
  (* Closed under the registry lock so the drain sequence can never
     shut down a descriptor that was already closed and reused. *)
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.unlock t.conns_m

(* ---------------- serve ---------------- *)

let accept_loop t =
  while not (Atomic.get t.draining) do
    match Unix.select [ t.listen_fd ] [] [] t.config.tick_s with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Atomic.incr t.s_connections;
        Telemetry.Metrics.incr t.m_connections;
        let id = Atomic.fetch_and_add t.conn_seq 1 in
        Mutex.lock t.conns_m;
        let th = Thread.create (conn_thread t id fd) () in
        Hashtbl.replace t.conns id (fd, th);
        Mutex.unlock t.conns_m
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let quiesced t =
  let queued =
    Array.exists
      (fun sh ->
        Mutex.lock sh.sh_m;
        let q = not (Queue.is_empty sh.sh_queue) in
        Mutex.unlock sh.sh_m;
        q)
      t.shards
  in
  (not queued) && Atomic.get t.inflight = 0

let serve t =
  Array.iter (fun sh -> sh.sh_domain <- Some (Domain.spawn (dispatcher_domain t sh))) t.shards;
  accept_loop t;
  (* Drain, phase 1: stop admitting connections.  New connects are
     refused at the socket layer from here on. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.address with
  | Wire.Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
  | Wire.Tcp _ -> ());
  (* Phase 2: every accepted request finishes and its reply is written
     (connection threads decrement [inflight] after the write; requests
     arriving during this window get the typed Draining reply). *)
  while not (quiesced t) do
    Thread.delay 0.005
  done;
  (* Phase 3: retire the shard dispatchers, then unblock idle readers. *)
  Array.iter
    (fun sh ->
      Mutex.lock sh.sh_m;
      Atomic.set sh.sh_stop true;
      Condition.broadcast sh.sh_c;
      Mutex.unlock sh.sh_m)
    t.shards;
  Array.iter
    (fun sh ->
      match sh.sh_domain with
      | Some d ->
        Domain.join d;
        sh.sh_domain <- None
      | None -> ())
    t.shards;
  Mutex.lock t.conns_m;
  let remaining = Hashtbl.fold (fun _ conn acc -> conn :: acc) t.conns [] in
  List.iter
    (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    remaining;
  Mutex.unlock t.conns_m;
  List.iter (fun (_, th) -> Thread.join th) remaining
