(* The concurrent estimate server.

   Thread architecture: the thread calling [serve] runs the accept loop
   (a [select] tick so the drain flag is noticed promptly); each accepted
   connection gets a reader thread; one dispatcher thread owns the
   [Catalog.Service] — the service is single-owner by contract (its LRU
   cache mutates on reads), so every catalog operation funnels through
   that thread.  Connection threads park service-bound requests on a
   shared queue and block until the dispatcher fulfills them, which is
   also what batches concurrent clients into single
   [Service.answer_into] calls: whatever accumulated while the previous
   batch ran is merged (into reused structure-of-arrays staging buffers)
   and evaluated in one pass over the batch kernel.  Each connection
   reuses one job record and one [Wire.writer], so a steady-state served
   request costs no fresh buffers on the reply path — the remaining
   per-request allocations (decoded request, reply value) are small and
   bounded; docs/PERFORMANCE.md quantifies them.

   Backpressure is admission control at enqueue time: once [max_inflight]
   requests are in flight the connection thread answers [Overloaded]
   immediately instead of queueing.  Requests that sat in the queue past
   [deadline_s] are answered [Timeout] without evaluation.  A drain
   (SIGTERM or [initiate_drain]) stops the accept loop, answers new
   requests [Draining], lets every in-flight request finish and its reply
   be written, then closes all sockets and returns from [serve]. *)

module Service = Catalog.Service

type config = {
  jobs : int;
  max_inflight : int;
  max_batch : int;
  deadline_s : float;
  accept_backlog : int;
  tick_s : float;
  dispatch_delay_s : float;
}

let default_config =
  {
    jobs = 1;
    max_inflight = 64;
    max_batch = 64;
    deadline_s = 5.0;
    accept_backlog = 64;
    tick_s = 0.02;
    dispatch_delay_s = 0.0;
  }

type stats = {
  connections : int;
  requests : int;
  answered : int;
  overloaded : int;
  timeouts : int;
  refused_draining : int;
  protocol_errors : int;
  batches : int;
  batched_queries : int;
}

(* A service-bound request parked by its connection thread.  One job
   record lives per connection, not per request: the connection thread
   blocks on [await_reply] before reading its next frame, so the record
   (and its mutex/condition) is free for reuse the moment a reply
   lands — [kind], [enqueued_at] and [reply] are reset in place. *)
type job_kind =
  | Query of { triples : (string * float * float) array; single : bool; spec : string }
  | Ls_job
  | Invalidate_job of string

type job = {
  mutable kind : job_kind;
  mutable enqueued_at : float;
  job_m : Mutex.t;
  job_c : Condition.t;
  mutable reply : Wire.response option;
}

(* Structure-of-arrays staging for merged batches, owned by the
   dispatcher thread and reused (grown geometrically, never shrunk)
   across batches: at steady state a dispatch allocates no fresh
   arrays before handing the batch to [Service.answer_into]. *)
type merge_buffers = {
  mutable mb_names : string array;
  mutable mb_a : float array;
  mutable mb_b : float array;
  mutable mb_out : float array;
}

type t = {
  service : Service.t;
  config : config;
  address : Wire.address;
  listen_fd : Unix.file_descr;
  queue : job Queue.t;
  q_m : Mutex.t;
  q_c : Condition.t;
  mb : merge_buffers;
  draining : bool Atomic.t;
  dispatcher_stop : bool Atomic.t;
  inflight : int Atomic.t;
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  conns_m : Mutex.t;
  conn_seq : int Atomic.t;
  s_connections : int Atomic.t;
  s_requests : int Atomic.t;
  s_answered : int Atomic.t;
  s_overloaded : int Atomic.t;
  s_timeouts : int Atomic.t;
  s_refused_draining : int Atomic.t;
  s_protocol_errors : int Atomic.t;
  s_batches : int Atomic.t;
  s_batched_queries : int Atomic.t;
  m_connections : Telemetry.Metrics.counter;
  m_requests : Telemetry.Metrics.counter;
  m_overloaded : Telemetry.Metrics.counter;
  m_timeouts : Telemetry.Metrics.counter;
  m_batches : Telemetry.Metrics.counter;
  m_batched_queries : Telemetry.Metrics.counter;
  m_request_seconds : Telemetry.Metrics.histogram;
}

let create ?(config = default_config) ~service address =
  Wire.ignore_sigpipe ();
  if config.jobs < 1 then invalid_arg "Server.Engine.create: jobs must be >= 1";
  if config.max_inflight < 0 then
    invalid_arg "Server.Engine.create: max_inflight must be >= 0";
  if config.max_batch < 1 then invalid_arg "Server.Engine.create: max_batch must be >= 1";
  if config.accept_backlog < 1 then
    invalid_arg "Server.Engine.create: accept_backlog must be >= 1";
  if config.tick_s <= 0.0 then invalid_arg "Server.Engine.create: tick_s must be > 0";
  let listen_fd =
    match address with
    | Wire.Unix_socket path ->
      (* A path left behind by a dead server would make bind fail; a live
         server on the same path is indistinguishable, so serving twice
         from one path is the caller's responsibility. *)
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      fd
    | Wire.Tcp _ as a ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Wire.sockaddr_of_address a);
      fd
  in
  Unix.listen listen_fd config.accept_backlog;
  let labels = [ ("addr", Wire.address_to_string address) ] in
  {
    service;
    config;
    address;
    listen_fd;
    queue = Queue.create ();
    q_m = Mutex.create ();
    q_c = Condition.create ();
    mb = { mb_names = [||]; mb_a = [||]; mb_b = [||]; mb_out = [||] };
    draining = Atomic.make false;
    dispatcher_stop = Atomic.make false;
    inflight = Atomic.make 0;
    conns = Hashtbl.create 64;
    conns_m = Mutex.create ();
    conn_seq = Atomic.make 0;
    s_connections = Atomic.make 0;
    s_requests = Atomic.make 0;
    s_answered = Atomic.make 0;
    s_overloaded = Atomic.make 0;
    s_timeouts = Atomic.make 0;
    s_refused_draining = Atomic.make 0;
    s_protocol_errors = Atomic.make 0;
    s_batches = Atomic.make 0;
    s_batched_queries = Atomic.make 0;
    m_connections =
      Telemetry.Metrics.counter "server_connections_total" ~labels
        ~help:"Connections accepted by the estimate server";
    m_requests =
      Telemetry.Metrics.counter "server_requests_total" ~labels
        ~help:"Frames decoded into requests";
    m_overloaded =
      Telemetry.Metrics.counter "server_overloaded_total" ~labels
        ~help:"Requests refused by admission control";
    m_timeouts =
      Telemetry.Metrics.counter "server_timeouts_total" ~labels
        ~help:"Requests expired past their deadline before evaluation";
    m_batches =
      Telemetry.Metrics.counter "server_batches_total" ~labels
        ~help:"Service.answer calls issued by the dispatcher";
    m_batched_queries =
      Telemetry.Metrics.counter "server_batched_queries_total" ~labels
        ~help:"Range queries folded into dispatcher batches";
    m_request_seconds =
      Telemetry.Metrics.histogram "server_request_seconds" ~labels
        ~help:"Latency from frame decode to reply written";
  }

let address t = t.address

let bound_port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let stats t =
  {
    connections = Atomic.get t.s_connections;
    requests = Atomic.get t.s_requests;
    answered = Atomic.get t.s_answered;
    overloaded = Atomic.get t.s_overloaded;
    timeouts = Atomic.get t.s_timeouts;
    refused_draining = Atomic.get t.s_refused_draining;
    protocol_errors = Atomic.get t.s_protocol_errors;
    batches = Atomic.get t.s_batches;
    batched_queries = Atomic.get t.s_batched_queries;
  }

let draining t = Atomic.get t.draining

(* Only an atomic store, so it is safe inside a signal handler; the
   accept loop and connection threads poll the flag. *)
let initiate_drain t = Atomic.set t.draining true

let install_sigterm t =
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> initiate_drain t))

(* ---------------- dispatcher ---------------- *)

let complete job resp =
  Mutex.lock job.job_m;
  job.reply <- Some resp;
  Condition.broadcast job.job_c;
  Mutex.unlock job.job_m

(* Pop the next batch: blocks until a job arrives or the stop flag is
   raised, then takes queued jobs up to [max_batch] merged queries (the
   first job is always taken whole, so an oversized client batch still
   dispatches).  Returns [] only when stopping on an empty queue. *)
let next_jobs t =
  Mutex.lock t.q_m;
  while Queue.is_empty t.queue && not (Atomic.get t.dispatcher_stop) do
    Condition.wait t.q_c t.q_m
  done;
  let jobs = ref [] in
  let merged = ref 0 in
  let full = ref false in
  while (not !full) && not (Queue.is_empty t.queue) do
    let j = Queue.peek t.queue in
    let cost =
      match j.kind with
      | Query { triples; _ } -> max 1 (Array.length triples)
      | Ls_job | Invalidate_job _ -> 1
    in
    if !jobs <> [] && !merged + cost > t.config.max_batch then full := true
    else begin
      ignore (Queue.pop t.queue);
      jobs := j :: !jobs;
      merged := !merged + cost
    end
  done;
  Mutex.unlock t.q_m;
  List.rev !jobs

let ls_reply t =
  Wire.Ls_reply
    (List.map
       (fun (i : Service.info) ->
         {
           Wire.name = i.Service.name;
           spec = i.Service.spec;
           cells = i.Service.cells;
           stale = i.Service.stale;
           domain = i.Service.domain;
         })
       (Service.infos t.service))

let ensure_merge_capacity mb total =
  if Array.length mb.mb_names < total then begin
    let cap = ref (Int.max 16 (Array.length mb.mb_names)) in
    while !cap < total do
      cap := 2 * !cap
    done;
    mb.mb_names <- Array.make !cap "";
    mb.mb_a <- Array.make !cap 0.0;
    mb.mb_b <- Array.make !cap 0.0;
    mb.mb_out <- Array.make !cap 0.0
  end

(* Answer every query job of the batch with one [Service.answer_into]
   call over the reused staging arrays.  Each job's slice of the merged
   batch is evaluated independently of what else the batch contains, so
   served answers stay bit-identical to a direct call whatever the
   interleaving of clients; queries of one job stay contiguous, so a
   same-entry client batch is one summary resolution.  [complete] is the
   batch's recording completion function (see [process_batch]). *)
let run_queries t ~complete query_jobs =
  let total = List.fold_left (fun n (_, len) -> n + len) 0 query_jobs in
  if total > 0 then begin
    Atomic.incr t.s_batches;
    ignore (Atomic.fetch_and_add t.s_batched_queries total);
    Telemetry.Metrics.incr t.m_batches;
    Telemetry.Metrics.add t.m_batched_queries total;
    let mb = t.mb in
    ensure_merge_capacity mb total;
    let off = ref 0 in
    List.iter
      (fun (job, len) ->
        (match job.kind with
        | Query { triples; _ } ->
          for i = 0 to len - 1 do
            let name, qa, qb = Array.unsafe_get triples i in
            Array.unsafe_set mb.mb_names (!off + i) name;
            Array.unsafe_set mb.mb_a (!off + i) qa;
            Array.unsafe_set mb.mb_b (!off + i) qb
          done
        | Ls_job | Invalidate_job _ -> assert false);
        off := !off + len)
      query_jobs;
    match
      Service.answer_into t.service ~n:total ~names:mb.mb_names ~a:mb.mb_a ~b:mb.mb_b
        ~out:mb.mb_out
    with
    | () ->
      let off = ref 0 in
      List.iter
        (fun (job, len) ->
          let reply =
            match job.kind with
            | Query { single = true; _ } -> Wire.Estimate_reply mb.mb_out.(!off)
            | Query { single = false; _ } -> Wire.Batch_reply (Array.sub mb.mb_out !off len)
            | Ls_job | Invalidate_job _ -> assert false
          in
          off := !off + len;
          ignore (Atomic.fetch_and_add t.s_answered len);
          complete job reply)
        query_jobs
    | exception e ->
      (* Unreadable snapshot mid-flight: the whole merged call is lost,
         so every member gets the typed internal error rather than a
         hung connection. *)
      let message = Printexc.to_string e in
      List.iter
        (fun (job, _) -> complete job (Wire.Error_reply { code = Wire.Internal; message }))
        query_jobs
  end
  else
    (* Zero-length query jobs are answered before they enqueue, but a
       batch of them reaching here must still complete (the [total > 0]
       work above never touches them) or their connections would park in
       [await_reply] forever. *)
    List.iter (fun (job, _) -> complete job (Wire.Batch_reply [||])) query_jobs

let process_batch_exn t ~complete jobs =
  if t.config.dispatch_delay_s > 0.0 then Thread.delay t.config.dispatch_delay_s;
  let now = Unix.gettimeofday () in
  let live =
    List.filter
      (fun job ->
        if t.config.deadline_s > 0.0 && now -. job.enqueued_at > t.config.deadline_s then begin
          Atomic.incr t.s_timeouts;
          Telemetry.Metrics.incr t.m_timeouts;
          complete job
            (Wire.Error_reply
               {
                 code = Wire.Timeout;
                 message =
                   Printf.sprintf "request queued %.3fs, past the %.3fs deadline"
                     (now -. job.enqueued_at) t.config.deadline_s;
               });
          false
        end
        else true)
      jobs
  in
  (* Catalog metadata operations run inline; queries are validated, then
     merged into one Service.answer call. *)
  let query_jobs =
    List.filter_map
      (fun job ->
        match job.kind with
        | Ls_job ->
          complete job (ls_reply t);
          None
        | Invalidate_job name ->
          (* Caught per job: a persist failure (unreadable snapshot dir,
             full disk) answers this request Internal and leaves the rest
             of the batch to run. *)
          (match Service.invalidate t.service name with
          | Ok () -> complete job Wire.Invalidated
          | Error message ->
            complete job (Wire.Error_reply { code = Wire.Unknown_entry; message })
          | exception e ->
            complete job
              (Wire.Error_reply { code = Wire.Internal; message = Printexc.to_string e }));
          None
        | Query { triples; single; spec } -> (
          match
            Array.find_opt (fun (name, _, _) -> not (Service.mem t.service name)) triples
          with
          | Some (name, _, _) ->
            complete job
              (Wire.Error_reply
                 {
                   code = Wire.Unknown_entry;
                   message = Printf.sprintf "unknown catalog entry %S" name;
                 });
            None
          | None ->
            let spec_conflict =
              single && spec <> ""
              &&
              match triples with
              | [| (name, _, _) |] -> (
                match Service.info t.service name with
                | Some i -> i.Service.spec <> spec
                | None -> false)
              | _ -> false
            in
            if spec_conflict then begin
              complete job
                (Wire.Error_reply
                   {
                     code = Wire.Spec_mismatch;
                     message = Printf.sprintf "entry was not built with spec %S" spec;
                   });
              None
            end
            else Some (job, Array.length triples)))
      live
  in
  run_queries t ~complete query_jobs

(* Every completion of the batch goes through a recording wrapper so the
   error backstop knows which jobs were already answered without reading
   [job.reply] — by the time [process_batch_exn] raises, a completed job
   may have been reset and re-enqueued by its connection thread, and an
   unlocked [reply = None] check would answer the *next* request with
   this batch's error while the queued copy double-completes it later. *)
let process_batch t jobs =
  let completed = ref [] in
  let complete_job job resp =
    completed := job :: !completed;
    complete job resp
  in
  try process_batch_exn t ~complete:complete_job jobs
  with e ->
    let message = Printexc.to_string e in
    List.iter
      (fun job ->
        if not (List.memq job !completed) then
          complete job (Wire.Error_reply { code = Wire.Internal; message }))
      jobs

let dispatcher_loop t =
  let rec loop () =
    match next_jobs t with
    | [] -> ()  (* stop flag with an empty queue: serve is tearing down *)
    | jobs ->
      process_batch t jobs;
      loop ()
  in
  loop ()

(* ---------------- connection threads ---------------- *)

let send w fd response = Wire.write_response w fd response

let await_reply job =
  Mutex.lock job.job_m;
  while job.reply = None do
    Condition.wait job.job_c job.job_m
  done;
  let r = Option.get job.reply in
  Mutex.unlock job.job_m;
  r

let handle_request t w fd job req =
  match req with
  | Wire.Ping -> send w fd Wire.Pong
  | _ when Atomic.get t.draining ->
    Atomic.incr t.s_refused_draining;
    send w fd (Wire.Error_reply { code = Wire.Draining; message = "server is draining" })
  | Wire.Batch_estimate [||] ->
    (* A legal frame with nothing to evaluate.  Answered inline: enqueued,
       its zero-length job would contribute nothing to the dispatcher's
       merged call and could otherwise park forever. *)
    send w fd (Wire.Batch_reply [||])
  | req ->
    (* Admission is the increment itself: check-then-increment would let
       two threads race past the limit together. *)
    let prev = Atomic.fetch_and_add t.inflight 1 in
    if prev >= t.config.max_inflight then begin
      Atomic.decr t.inflight;
      Atomic.incr t.s_overloaded;
      Telemetry.Metrics.incr t.m_overloaded;
      send w fd
        (Wire.Error_reply
           {
             code = Wire.Overloaded;
             message =
               Printf.sprintf "%d requests in flight (limit %d)" prev
                 t.config.max_inflight;
           })
    end
    else begin
      (* The decrement runs after the reply is written (or the write
         fails), which is what lets the drain sequence equate
         "inflight = 0" with "every accepted request was answered". *)
      Fun.protect
        ~finally:(fun () -> Atomic.decr t.inflight)
        (fun () ->
          (* Reset the connection's job in place: the dispatcher finished
             with it before the previous [await_reply] returned. *)
          job.kind <-
            (match req with
            | Wire.Ls -> Ls_job
            | Wire.Invalidate name -> Invalidate_job name
            | Wire.Estimate { entry; a; b; spec } ->
              Query { triples = [| (entry, a, b) |]; single = true; spec }
            | Wire.Batch_estimate triples -> Query { triples; single = false; spec = "" }
            | Wire.Ping -> assert false);
          job.enqueued_at <- Unix.gettimeofday ();
          job.reply <- None;
          Mutex.lock t.q_m;
          Queue.push job t.queue;
          Condition.broadcast t.q_c;
          Mutex.unlock t.q_m;
          send w fd (await_reply job))
    end

let conn_loop t fd =
  let w = Wire.create_writer () in
  let job =
    { kind = Ls_job; enqueued_at = 0.0; job_m = Mutex.create (); job_c = Condition.create (); reply = None }
  in
  let rec loop () =
    match Wire.read_frame fd with
    | Ok None -> ()
    | Error message ->
      (* The stream is no longer frame-aligned: reply if possible, then
         hang up. *)
      Atomic.incr t.s_protocol_errors;
      (try send w fd (Wire.Error_reply { code = Wire.Bad_request; message }) with _ -> ())
    | Ok (Some payload) -> (
      match Wire.decode_request payload with
      | Error message ->
        (* Frame boundaries are intact, so the connection survives a
           malformed payload. *)
        Atomic.incr t.s_protocol_errors;
        send w fd (Wire.Error_reply { code = Wire.Bad_request; message });
        loop ()
      | Ok req ->
        Atomic.incr t.s_requests;
        Telemetry.Metrics.incr t.m_requests;
        let t0 = Unix.gettimeofday () in
        handle_request t w fd job req;
        Telemetry.Metrics.observe_s t.m_request_seconds (Unix.gettimeofday () -. t0);
        loop ())
  in
  try loop () with
  | Unix.Unix_error _ | Sys_error _ -> ()

let conn_thread t id fd () =
  conn_loop t fd;
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns id;
  (* Closed under the registry lock so the drain sequence can never
     shut down a descriptor that was already closed and reused. *)
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.unlock t.conns_m

(* ---------------- serve ---------------- *)

let accept_loop t =
  while not (Atomic.get t.draining) do
    match Unix.select [ t.listen_fd ] [] [] t.config.tick_s with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listen_fd with
      | fd, _ ->
        Atomic.incr t.s_connections;
        Telemetry.Metrics.incr t.m_connections;
        let id = Atomic.fetch_and_add t.conn_seq 1 in
        Mutex.lock t.conns_m;
        let th = Thread.create (conn_thread t id fd) () in
        Hashtbl.replace t.conns id (fd, th);
        Mutex.unlock t.conns_m
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let quiesced t =
  Mutex.lock t.q_m;
  let queued = not (Queue.is_empty t.queue) in
  Mutex.unlock t.q_m;
  (not queued) && Atomic.get t.inflight = 0

let serve t =
  let dispatcher = Thread.create dispatcher_loop t in
  accept_loop t;
  (* Drain, phase 1: stop admitting connections.  New connects are
     refused at the socket layer from here on. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.address with
  | Wire.Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
  | Wire.Tcp _ -> ());
  (* Phase 2: every accepted request finishes and its reply is written
     (connection threads decrement [inflight] after the write; requests
     arriving during this window get the typed Draining reply). *)
  while not (quiesced t) do
    Thread.delay 0.005
  done;
  (* Phase 3: retire the dispatcher, then unblock idle readers. *)
  Atomic.set t.dispatcher_stop true;
  Mutex.lock t.q_m;
  Condition.broadcast t.q_c;
  Mutex.unlock t.q_m;
  Thread.join dispatcher;
  Mutex.lock t.conns_m;
  let remaining = Hashtbl.fold (fun _ conn acc -> conn :: acc) t.conns [] in
  List.iter
    (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    remaining;
  Mutex.unlock t.conns_m;
  List.iter (fun (_, th) -> Thread.join th) remaining
