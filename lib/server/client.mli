(** Blocking client for the estimate server.

    A client owns one lazily-established connection to a {!Wire.address}
    and exchanges one frame per call.  Transient transport failures —
    the server not up yet, a connection lost between requests, a read
    timeout — are retried up to [config.retries] times with
    exponentially-capped full jitter (deterministic from [config.seed]);
    typed server errors ([overloaded], [draining], ...) are returned as
    {!error.Server} and never retried, so backpressure reaches the
    caller intact.  Retries make every call at-least-once: that is exact
    for the idempotent operations (estimates are reads, invalidate
    re-marks, observe is a converging refinement) but {!insert} may
    offer its values twice if a reply is lost — acceptable for sampling,
    noted in {!Wire.request.Insert}.  A client is single-threaded: give
    each load-generator worker its own. *)

type config = {
  connect_timeout_s : float;  (** non-blocking connect + select window *)
  read_timeout_s : float;
      (** per-reply receive timeout ([SO_RCVTIMEO]); [0.] waits forever *)
  retries : int;  (** reconnect-and-resend attempts after the first try *)
  backoff_s : float;  (** base of the exponential jittered backoff *)
  seed : int64;  (** jitter PRNG seed, for reproducible retry schedules *)
}

val default_config : config
(** [{ connect_timeout_s = 1.0; read_timeout_s = 5.0; retries = 2;
      backoff_s = 0.02; seed = 0x5e1ec11e47L }]. *)

type error =
  | Transport of string
      (** could not reach the server, or lost it mid-exchange, after
          exhausting the retry budget *)
  | Server of Wire.error_code * string
      (** the server answered with a typed {!Wire.response.Error_reply} *)
  | Protocol of string
      (** the server answered with bytes this client cannot accept: an
          undecodable payload or a reply of the wrong kind *)

val error_to_string : error -> string
(** One-line rendering, e.g. ["server overloaded: 64 requests in flight
    (limit 64)"]. *)

type t

val create : ?config:config -> Wire.address -> t
(** A client handle; no I/O happens until the first call. *)

val connect : ?config:config -> Wire.address -> (t, error) result
(** {!create} followed by a {!ping}, so failure to reach the server is
    reported here rather than on the first real request. *)

val close : t -> unit
(** Close the underlying connection, if one is open.  The handle remains
    usable — the next call reconnects. *)

val ping : t -> (unit, error) result
(** Liveness probe; answered even while the server is draining. *)

val ls : t -> (Wire.entry_info list, error) result
(** The served entries with spec, staleness and domain, sorted by name. *)

val estimate : ?spec:string -> t -> entry:string -> a:float -> b:float -> (float, error) result
(** One range-selectivity query [Q(a,b)].  [spec] pins the estimator spec
    the entry must have been built with ([Server Spec_mismatch]
    otherwise); omitted or [""] accepts any. *)

val batch_estimate : t -> (string * float * float) array -> (float array, error) result
(** Many [(entry, a, b)] queries in one frame; answers come back in
    request order.  [Protocol] if the reply count disagrees with the
    query count. *)

val estimate_rect :
  t ->
  entry:string ->
  x_lo:float ->
  x_hi:float ->
  y_lo:float ->
  y_hi:float ->
  (float, error) result
(** One rectangle-selectivity query [[x_lo, x_hi] x [y_lo, y_hi]]
    against a rect entry; the answer is bit-identical to
    [Multidim.Hist2d.selectivity] on the served summary.  [Server
    Bad_request] against an entry of another kind. *)

val estimate_join :
  t -> entry:string -> pred:Selest.Stored.join_pred -> (float, error) result
(** One join-size query against a join entry: the estimated number of
    result pairs of [R JOIN_pred S] (a size, not a selectivity),
    bit-identical to [Join.Ineqjoin.estimate] on the served summary.
    [Server Bad_request] against an entry of another kind. *)

val invalidate : t -> string -> (unit, error) result
(** Force-stale a served entry, as [Catalog.Service.invalidate]. *)

val insert : t -> entry:string -> float array -> (int * int, error) result
(** Stream freshly inserted attribute values into the entry's reservoir
    sample on an adaptive server; returns [(sampled, seen)] — current
    reservoir occupancy and lifetime offered count.  At-least-once under
    retries (see the module preamble); [Server Bad_request] when the
    server is not adaptive. *)

val observe : t -> entry:string -> a:float -> b:float -> actual:float -> (float, error) result
(** Feed back the true selectivity [actual] of an executed query
    [Q(a,b)], refining the entry's ST-histogram on an adaptive server;
    returns the refined in-memory estimate for the same range. *)

val request : t -> Wire.request -> (Wire.response, error) result
(** Escape hatch: send any request and return the raw decoded reply
    (including [Error_reply], which the typed wrappers convert to
    {!error.Server}). *)
