(** The versioned, length-prefixed binary protocol of the estimate server.

    A conversation is a sequence of frames in each direction: a 4-byte
    big-endian payload length followed by the payload, whose first two
    bytes are the protocol {!version} and an opcode.  Integers are
    big-endian, floats are the 8 bytes of their IEEE-754 representation
    (selectivities cross the wire bit-for-bit), strings carry a 16-bit
    length prefix and arrays a 32-bit count.  The full frame layout, with
    a worked hex example, is documented in [docs/SERVING.md].

    Decoding is {e total}: a malformed payload — wrong version, unknown
    opcode, truncated field, implausible count, trailing bytes — always
    yields [Error], never an exception, so a hostile or buggy peer cannot
    crash the server.  [test/test_server.ml] holds the qcheck round-trip
    and totality properties. *)

type address = Unix_socket of string | Tcp of { host : string; port : int }
(** A serving endpoint: a Unix-domain socket path, or a TCP host/port
    (the host must be a literal address, e.g. ["127.0.0.1"]). *)

val address_to_string : address -> string
(** Human-readable endpoint, e.g. ["unix:/tmp/selest.sock"] or
    ["127.0.0.1:7979"]. *)

val sockaddr_of_address : address -> Unix.sockaddr
(** The [Unix.sockaddr] to bind or connect to.
    @raise Failure on a [Tcp] host that is not a literal IP address. *)

val version : int
(** Protocol version spoken by this build ([3]); both decoders reject
    payloads carrying any other version byte.  Version 2 added the
    adaptivity pair {!request.Insert}/{!request.Observe} (and their
    replies); version 3 adds the multidimensional pair
    {!request.Estimate_rect}/{!request.Estimate_join} and extends each
    {!entry_info} row with its summary kind and optional y-axis domain.
    Every frame carried over from the previous version is byte-identical
    except the version byte itself. *)

val max_frame_bytes : int
(** Upper bound on a frame payload (16 MiB).  {!write_frame} refuses
    larger payloads; {!read_frame} rejects larger headers without
    allocating. *)

type request =
  | Ping  (** liveness probe; answered without touching the catalog *)
  | Ls  (** list the served entries with spec, staleness and domain *)
  | Estimate of { entry : string; a : float; b : float; spec : string }
      (** one range-selectivity query [Q(a,b)] against a named entry;
          [spec] may pin the estimator spec the entry must have been
          built with ([""] = any) *)
  | Batch_estimate of (string * float * float) array
      (** many [(entry, a, b)] queries answered in one frame, in order *)
  | Invalidate of string  (** force-stale an entry, as [Service.invalidate] *)
  | Insert of { entry : string; values : float array }
      (** stream freshly inserted attribute values of the entry's
          relation into its reservoir sample and staleness budget
          (adaptive servers only; see [docs/ADAPTIVITY.md]).  {e Not}
          idempotent: a retried insert offers its values again. *)
  | Observe of { entry : string; a : float; b : float; actual : float }
      (** feed back the true selectivity [actual] of an executed query
          [Q(a,b)], refining the entry's ST-histogram (adaptive servers
          only) *)
  | Estimate_rect of {
      entry : string;
      x_lo : float;
      x_hi : float;
      y_lo : float;
      y_hi : float;
    }
      (** one rectangle-selectivity query
          [[x_lo, x_hi] x [y_lo, y_hi]] against a rect entry (opcode
          0x08); answered with {!response.Estimate_reply} *)
  | Estimate_join of { entry : string; pred : Selest.Stored.join_pred }
      (** one join-size query against a join entry (opcode 0x09; the
          predicate travels as one byte — 0 eq, 1 lt, 2 le); answered
          with {!response.Estimate_reply} carrying the estimated join
          {e size}, not a selectivity *)

type error_code =
  | Bad_request  (** malformed frame or unparseable payload *)
  | Unknown_entry  (** no catalog entry of that name *)
  | Spec_mismatch  (** the entry exists but was built with another spec *)
  | Overloaded  (** admission control: too many requests in flight *)
  | Timeout  (** the request sat past its deadline before evaluation *)
  | Draining  (** the server is shutting down and refuses new work *)
  | Internal  (** unexpected server-side failure *)

val error_code_to_string : error_code -> string
(** Stable lower-case label (["overloaded"], ["timeout"], ...), used as
    the error-class key in load-generator reports and telemetry labels. *)

type entry_info = {
  name : string;  (** catalog entry name *)
  spec : string;  (** compact estimator spec the entry was built with *)
  cells : int;  (** summary grid resolution *)
  stale : bool;  (** past its insert budget or explicitly invalidated *)
  domain : float * float;
      (** estimation domain, for query generation (the x-axis domain for
          rect entries, the shared attribute domain for join entries) *)
  kind : Selest.Stored.kind;  (** range, rect or join *)
  domain_y : (float * float) option;  (** rect entries: the y-axis domain *)
}
(** One row of an {!response.Ls_reply} — the metadata a client needs to
    address (and generate load against) an entry. *)

type response =
  | Pong  (** answer to {!request.Ping} *)
  | Ls_reply of entry_info list  (** answer to {!request.Ls}, sorted by name *)
  | Estimate_reply of float  (** the selectivity, bit-identical to a direct call *)
  | Batch_reply of float array  (** per-query selectivities in request order *)
  | Invalidated  (** acknowledgement of {!request.Invalidate} *)
  | Inserted of { sampled : int; seen : int }
      (** acknowledgement of {!request.Insert}: current reservoir
          occupancy and lifetime offered count for the entry *)
  | Observed of float
      (** acknowledgement of {!request.Observe}: the refined in-memory
          estimate for the observed range, which converges toward the
          fed-back values over repeated observations *)
  | Error_reply of { code : error_code; message : string }
      (** typed failure; [message] is human-readable detail *)

val encode_request : request -> string
(** Serialize a request payload (version and opcode included, frame
    header excluded).  @raise Invalid_argument on a string field longer
    than 65535 bytes. *)

val decode_request : string -> (request, string) result
(** Total inverse of {!encode_request}: [Error] describes the first
    malformed field and trailing bytes are rejected.  Never raises. *)

val encode_response : response -> string
(** Serialize a response payload.  @raise Invalid_argument on a string
    field longer than 65535 bytes. *)

val decode_response : string -> (response, string) result
(** Total inverse of {!encode_response}; same contract as
    {!decode_request}. *)

val encode_request_into : Buffer.t -> request -> unit
(** Append the serialized request payload to a caller-owned buffer —
    {!encode_request} without the fresh string, for callers that reuse
    one buffer across frames.  Same contract otherwise. *)

val encode_response_into : Buffer.t -> response -> unit
(** Like {!encode_request_into}, for responses. *)

type writer
(** A per-connection frame writer: one encode buffer and one framed-bytes
    buffer, both reused (and grown geometrically, never shrunk) across
    frames, so steady-state replies allocate no fresh buffers.
    Single-owner, like the connection it serves. *)

val create_writer : unit -> writer
(** A fresh writer with small initial buffers. *)

val write_response : writer -> Unix.file_descr -> response -> unit
(** Encode into the writer's buffers and write one framed response,
    looping until every byte is out.  Equivalent on the wire to
    [write_frame fd (encode_response resp)].
    @raise Invalid_argument if the payload exceeds {!max_frame_bytes}.
    @raise Unix.Unix_error on I/O failure (e.g. [EPIPE]). *)

val write_request : writer -> Unix.file_descr -> request -> unit
(** Like {!write_response}, for the client side of the conversation. *)

val ignore_sigpipe : unit -> unit
(** Set the process-wide SIGPIPE disposition to ignore (idempotent), so
    a peer hanging up mid-write surfaces as [EPIPE] on that write — a
    per-connection error — instead of killing the process.  {!Engine}
    and {!Client} call it before their first socket I/O. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one length-prefixed frame, looping until every byte is out.
    @raise Invalid_argument if the payload exceeds {!max_frame_bytes}.
    @raise Unix.Unix_error on I/O failure (e.g. [EPIPE]). *)

val read_frame : Unix.file_descr -> (string option, string) result
(** Read one frame: [Ok (Some payload)], or [Ok None] on a clean EOF at a
    frame boundary, or [Error] on a truncated or oversized frame.
    Allocates a fresh payload string per frame — fine for clients; the
    serving engine reads through a {!reader} instead.
    @raise Unix.Unix_error on I/O failure, including [EAGAIN] when the
    descriptor carries a receive timeout that expires. *)

type reader
(** A per-connection frame reader, the read-side twin of {!writer}: a
    fixed header buffer and a payload buffer reused (and grown
    geometrically, never shrunk) across frames, so steady-state reads
    allocate nothing.  Single-owner, like the connection it serves. *)

val create_reader : unit -> reader
(** A fresh reader with a small initial payload buffer. *)

val read_frame_into : reader -> Unix.file_descr -> int
(** Read one frame into the reader's buffers.  Returns the payload
    length (>= 0) with the payload in {!reader_buffer}; [-1] on a clean
    EOF at a frame boundary; [-2] on a truncated or oversized frame,
    with the message in {!reader_error}.  The integer signalling (rather
    than a result value) is what keeps the steady-state read loop
    allocation-free.  Wire-equivalent to {!read_frame}.
    @raise Unix.Unix_error on I/O failure, as {!read_frame}. *)

val reader_buffer : reader -> Bytes.t
(** The payload buffer; only the first [len] bytes of the last
    successful {!read_frame_into} are meaningful, and the next call
    overwrites them.  Pass it straight to {!decode_request_scratch}. *)

val reader_error : reader -> string
(** The framing-error message of the last [-2] return. *)

type qnums = { mutable sa : float; mutable sb : float }
(** The scratch record's range bounds, split into an all-float record so
    the runtime stores them unboxed and redecoding touches no
    allocator. *)

type scratch = {
  mutable s_entry : string;  (** entry name of the last fast estimate *)
  mutable s_spec : string;  (** spec pin of the last fast estimate *)
  s_q : qnums;  (** range bounds of the last fast estimate *)
}
(** A reusable decoded-request record for the hot opcode (single
    estimate).  String fields are interned against the previous frame —
    a connection querying the same entry repeatedly decodes with zero
    allocation. *)

val create_scratch : unit -> scratch
(** A fresh scratch with empty strings (so the first frame always
    allocates its field values once). *)

type incoming =
  | Fast_estimate
      (** the frame was a single estimate; its fields are in the scratch *)
  | Decoded of request  (** any other opcode, parsed as {!decode_request} *)

val decode_request_scratch :
  Bytes.t -> len:int -> scratch -> (incoming, string) result
(** [decode_request_scratch buf ~len scratch] decodes the request in
    [buf.[0..len-1]] — {!decode_request} restructured so the hot opcode
    deposits into [scratch] (returning a preallocated [Ok Fast_estimate])
    instead of building a request value.  Identical accept/reject
    behaviour and field values to {!decode_request} on every input.
    Never raises. *)

val equal_request : request -> request -> bool
(** Structural equality with floats compared by their IEEE-754 bits, so
    NaN payloads and negative zeros round-trip honestly in tests. *)

val equal_response : response -> response -> bool
(** Like {!equal_request}, for responses. *)

val request_to_string : request -> string
(** One-line rendering for logs and test failure messages. *)

val response_to_string : response -> string
(** One-line rendering for logs and test failure messages. *)
