type group = {
  g_n : int;
  g_p50_ms : float;
  g_p99_ms : float;
}

type report = {
  connections : int;
  queries : int;
  ok : int;
  wall_s : float;
  throughput_qps : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  errors : (string * int) list;
  answers : float array;
  groups : (string * group) list;
}

let error_class = function
  | Client.Transport _ -> "transport"
  | Client.Protocol _ -> "protocol"
  | Client.Server (code, _) -> Wire.error_code_to_string code

let synthetic_requests ~entries ~count ~seed =
  if entries = [] then invalid_arg "Server.Loadgen.synthetic_requests: no entries";
  if count < 0 then invalid_arg "Server.Loadgen.synthetic_requests: count < 0";
  let pool = Array.of_list entries in
  let rng = Prng.Splitmix64.create seed in
  Array.init count (fun _ ->
      let e = pool.(Prng.Splitmix64.next_below rng (Array.length pool)) in
      let lo, hi = e.Wire.domain in
      let width = hi -. lo in
      let x = lo +. (width *. Prng.Splitmix64.next_float rng) in
      let y = lo +. (width *. Prng.Splitmix64.next_float rng) in
      (e.Wire.name, Float.min x y, Float.max x y))

type mixed_request =
  | Mix_range of string * float * float
  | Mix_rect of {
      m_entry : string;
      m_x_lo : float;
      m_x_hi : float;
      m_y_lo : float;
      m_y_hi : float;
    }
  | Mix_join of { m_entry : string; m_pred : Selest.Stored.join_pred }

let mixed_kind = function
  | Mix_range _ -> "range"
  | Mix_rect _ -> "rect"
  | Mix_join _ -> "join"

let synthetic_mixed_requests ~entries ~count ~seed =
  if entries = [] then invalid_arg "Server.Loadgen.synthetic_mixed_requests: no entries";
  if count < 0 then invalid_arg "Server.Loadgen.synthetic_mixed_requests: count < 0";
  let pool = Array.of_list entries in
  let rng = Prng.Splitmix64.create seed in
  let draw lo hi = lo +. ((hi -. lo) *. Prng.Splitmix64.next_float rng) in
  Array.init count (fun _ ->
      let e = pool.(Prng.Splitmix64.next_below rng (Array.length pool)) in
      let lo, hi = e.Wire.domain in
      match e.Wire.kind with
      | Selest.Stored.Range_kind ->
        let x = draw lo hi and y = draw lo hi in
        Mix_range (e.Wire.name, Float.min x y, Float.max x y)
      | Selest.Stored.Rect_kind ->
        let ylo, yhi = Option.value ~default:e.Wire.domain e.Wire.domain_y in
        let x1 = draw lo hi and x2 = draw lo hi in
        let y1 = draw ylo yhi and y2 = draw ylo yhi in
        Mix_rect
          {
            m_entry = e.Wire.name;
            m_x_lo = Float.min x1 x2;
            m_x_hi = Float.max x1 x2;
            m_y_lo = Float.min y1 y2;
            m_y_hi = Float.max y1 y2;
          }
      | Selest.Stored.Join_kind ->
        let m_pred =
          match Prng.Splitmix64.next_below rng 3 with
          | 0 -> Selest.Stored.Join_eq
          | 1 -> Selest.Stored.Join_lt
          | _ -> Selest.Stored.Join_le
        in
        Mix_join { m_entry = e.Wire.name; m_pred })

(* Exact q-quantile of a sorted array: the smallest element with at
   least [ceil (q*n)] observations at or below it. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

(* The per-worker slice [i] of [total] items: contiguous, so workers can
   write their answers into disjoint ranges of one shared array. *)
let slice_bounds total workers i =
  let base = total / workers and rem = total mod workers in
  let start = (i * base) + min i rem in
  let len = base + if i < rem then 1 else 0 in
  (start, len)

type worker_out = {
  mutable w_latencies : float list;  (** per-exchange round-trip seconds *)
  mutable w_ok : int;
  mutable w_errors : (string * int) list;
  mutable w_classed : (string * float) list;
      (** per-exchange (class, latency) when the caller classifies *)
}

let record_error out cls =
  out.w_errors <-
    (match List.assoc_opt cls out.w_errors with
    | Some n -> (cls, n + 1) :: List.remove_assoc cls out.w_errors
    | None -> (cls, 1) :: out.w_errors)

(* Summarize one class's latency samples with exact percentiles. *)
let group_of samples =
  let arr = Array.of_list samples in
  Array.sort compare arr;
  let ms x = 1000.0 *. x in
  { g_n = Array.length arr; g_p50_ms = ms (percentile arr 0.50); g_p99_ms = ms (percentile arr 0.99) }

let merge_groups outs =
  let by_class = Hashtbl.create 8 in
  Array.iter
    (fun o ->
      List.iter
        (fun (cls, dt) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_class cls) in
          Hashtbl.replace by_class cls (dt :: cur))
        o.w_classed)
    outs;
  Hashtbl.fold (fun cls samples acc -> (cls, group_of samples) :: acc) by_class []
  |> List.sort compare

let run ?(client_config = Client.default_config) ?(batch = 1) ?classify ~connections ~address
    requests =
  if connections < 1 then invalid_arg "Server.Loadgen.run: connections < 1";
  if batch < 1 then invalid_arg "Server.Loadgen.run: batch < 1";
  let total = Array.length requests in
  let answers = Array.make total Float.nan in
  let m_queries =
    Telemetry.Metrics.counter "loadgen_queries_total" ~help:"Queries issued by the load generator"
  in
  let m_latency =
    Telemetry.Metrics.histogram "loadgen_latency_seconds"
      ~help:"Round-trip latency of load-generator exchanges"
  in
  let outs =
    Array.init connections (fun _ ->
        { w_latencies = []; w_ok = 0; w_errors = []; w_classed = [] })
  in
  let worker i () =
    let out = outs.(i) in
    let start, len = slice_bounds total connections i in
    (* Distinct seed per worker so retry jitter decorrelates. *)
    let client =
      Client.create ~config:{ client_config with seed = Int64.add client_config.seed (Int64.of_int i) } address
    in
    let pos = ref start in
    let stop = start + len in
    while !pos < stop do
      let n = min batch (stop - !pos) in
      let t0 = Unix.gettimeofday () in
      (if n = 1 then begin
         let entry, a, b = requests.(!pos) in
         match Client.estimate client ~entry ~a ~b with
         | Ok x ->
           answers.(!pos) <- x;
           out.w_ok <- out.w_ok + 1
         | Error e -> record_error out (error_class e)
       end
       else
         match Client.batch_estimate client (Array.sub requests !pos n) with
         | Ok xs ->
           Array.blit xs 0 answers !pos n;
           out.w_ok <- out.w_ok + n
         | Error e -> record_error out (error_class e));
      let dt = Unix.gettimeofday () -. t0 in
      out.w_latencies <- dt :: out.w_latencies;
      (match classify with
      | None -> ()
      | Some f -> out.w_classed <- (f !pos, dt) :: out.w_classed);
      Telemetry.Metrics.add m_queries n;
      Telemetry.Metrics.observe_s m_latency dt;
      pos := !pos + n
    done;
    Client.close client
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init connections (fun i -> Thread.create (worker i) ()) in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let latencies =
    Array.of_list (Array.fold_left (fun acc o -> List.rev_append o.w_latencies acc) [] outs)
  in
  Array.sort compare latencies;
  let ok = Array.fold_left (fun n o -> n + o.w_ok) 0 outs in
  let errors =
    Array.fold_left
      (fun acc o ->
        List.fold_left
          (fun acc (cls, n) ->
            match List.assoc_opt cls acc with
            | Some m -> (cls, m + n) :: List.remove_assoc cls acc
            | None -> (cls, n) :: acc)
          acc o.w_errors)
      [] outs
    |> List.sort compare
  in
  let ms x = 1000.0 *. x in
  let sum = Array.fold_left ( +. ) 0.0 latencies in
  let exchanges = Array.length latencies in
  {
    connections;
    queries = total;
    ok;
    wall_s;
    throughput_qps = (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0);
    mean_ms = (if exchanges > 0 then ms (sum /. float_of_int exchanges) else Float.nan);
    p50_ms = ms (percentile latencies 0.50);
    p95_ms = ms (percentile latencies 0.95);
    p99_ms = ms (percentile latencies 0.99);
    max_ms = (if exchanges > 0 then ms latencies.(exchanges - 1) else Float.nan);
    errors;
    answers;
    groups = (match classify with None -> [] | Some _ -> merge_groups outs);
  }

(* The mixed-kind closed loop: one exchange per request, dispatched by
   the request's kind.  Per-kind latency groups are always on — they are
   the point of a mixed run — keyed ["range"], ["rect"], ["join"]. *)
let run_mixed ?(client_config = Client.default_config) ~connections ~address requests =
  if connections < 1 then invalid_arg "Server.Loadgen.run_mixed: connections < 1";
  let total = Array.length requests in
  let answers = Array.make total Float.nan in
  let m_queries =
    Telemetry.Metrics.counter "loadgen_queries_total" ~help:"Queries issued by the load generator"
  in
  let m_latency =
    Telemetry.Metrics.histogram "loadgen_latency_seconds"
      ~help:"Round-trip latency of load-generator exchanges"
  in
  let outs =
    Array.init connections (fun _ ->
        { w_latencies = []; w_ok = 0; w_errors = []; w_classed = [] })
  in
  let worker i () =
    let out = outs.(i) in
    let start, len = slice_bounds total connections i in
    let client =
      Client.create
        ~config:{ client_config with seed = Int64.add client_config.seed (Int64.of_int i) }
        address
    in
    for pos = start to start + len - 1 do
      let req = requests.(pos) in
      let t0 = Unix.gettimeofday () in
      (match
         match req with
         | Mix_range (entry, a, b) -> Client.estimate client ~entry ~a ~b
         | Mix_rect { m_entry; m_x_lo; m_x_hi; m_y_lo; m_y_hi } ->
           Client.estimate_rect client ~entry:m_entry ~x_lo:m_x_lo ~x_hi:m_x_hi
             ~y_lo:m_y_lo ~y_hi:m_y_hi
         | Mix_join { m_entry; m_pred } ->
           Client.estimate_join client ~entry:m_entry ~pred:m_pred
       with
      | Ok x ->
        answers.(pos) <- x;
        out.w_ok <- out.w_ok + 1
      | Error e -> record_error out (error_class e));
      let dt = Unix.gettimeofday () -. t0 in
      out.w_latencies <- dt :: out.w_latencies;
      out.w_classed <- (mixed_kind req, dt) :: out.w_classed;
      Telemetry.Metrics.incr m_queries;
      Telemetry.Metrics.observe_s m_latency dt
    done;
    Client.close client
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init connections (fun i -> Thread.create (worker i) ()) in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let latencies =
    Array.of_list (Array.fold_left (fun acc o -> List.rev_append o.w_latencies acc) [] outs)
  in
  Array.sort compare latencies;
  let ok = Array.fold_left (fun n o -> n + o.w_ok) 0 outs in
  let errors =
    Array.fold_left
      (fun acc o ->
        List.fold_left
          (fun acc (cls, n) ->
            match List.assoc_opt cls acc with
            | Some m -> (cls, m + n) :: List.remove_assoc cls acc
            | None -> (cls, n) :: acc)
          acc o.w_errors)
      [] outs
    |> List.sort compare
  in
  let ms x = 1000.0 *. x in
  let sum = Array.fold_left ( +. ) 0.0 latencies in
  let exchanges = Array.length latencies in
  {
    connections;
    queries = total;
    ok;
    wall_s;
    throughput_qps = (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0);
    mean_ms = (if exchanges > 0 then ms (sum /. float_of_int exchanges) else Float.nan);
    p50_ms = ms (percentile latencies 0.50);
    p95_ms = ms (percentile latencies 0.95);
    p99_ms = ms (percentile latencies 0.99);
    max_ms = (if exchanges > 0 then ms latencies.(exchanges - 1) else Float.nan);
    errors;
    answers;
    groups = merge_groups outs;
  }

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%d queries over %d connections in %.3fs (%.0f q/s)\n" r.queries
       r.connections r.wall_s r.throughput_qps);
  Buffer.add_string b
    (Printf.sprintf "latency ms: mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n"
       r.mean_ms r.p50_ms r.p95_ms r.p99_ms r.max_ms);
  Buffer.add_string b (Printf.sprintf "ok %d / %d" r.ok r.queries);
  if r.errors <> [] then begin
    Buffer.add_string b "  errors:";
    List.iter (fun (cls, n) -> Buffer.add_string b (Printf.sprintf " %s=%d" cls n)) r.errors
  end;
  List.iter
    (fun (cls, g) ->
      Buffer.add_string b
        (Printf.sprintf "\n%s: n %d  p50 %.3f  p99 %.3f" cls g.g_n g.g_p50_ms g.g_p99_ms))
    r.groups;
  Buffer.contents b

(* ---------------- open loop ---------------- *)

type open_report = {
  rate_qps : float;
  duration_s : float;
  offered : int;
  sent : int;
  o_ok : int;
  dropped : int;
  late : int;
  achieved_qps : float;
  o_mean_ms : float;
  o_p50_ms : float;
  o_p95_ms : float;
  o_p99_ms : float;
  o_max_ms : float;
  o_errors : (string * int) list;
}

(* One virtual-client slot: a worker thread parked on its own condition
   until the scheduler hands it an arrival, plus its measurement
   accumulator. *)
type slot = {
  s_m : Mutex.t;
  s_c : Condition.t;
  mutable s_task : (int * float) option;  (* request index, scheduled arrival *)
  mutable s_stop : bool;
  s_out : worker_out;
  mutable s_late : int;
  mutable s_sent : int;
}

(* The open-loop machinery shared by {!run_open_loop} and {!run_drift}:
   schedule arrivals at [t0 + i/rate], hand each to a free virtual
   client (or drop it), and let [exec slot client arrival out] perform
   the exchange, recording success/failure into [out].  Lateness,
   latency-from-arrival and the scheduler's offered/dropped counters
   are measured here so every open-loop mode reports them the same
   way. *)
let open_loop_drive ~who ~(client_config : Client.config) ~max_clients ~late_factor
    ~rate ~duration_s ~address ~exec =
  if rate <= 0.0 then invalid_arg (who ^ ": rate must be > 0");
  if duration_s <= 0.0 then invalid_arg (who ^ ": duration_s must be > 0");
  if max_clients < 1 then invalid_arg (who ^ ": max_clients must be >= 1");
  let m_queries =
    Telemetry.Metrics.counter "loadgen_queries_total" ~help:"Queries issued by the load generator"
  in
  let m_latency =
    Telemetry.Metrics.histogram "loadgen_latency_seconds"
      ~help:"Round-trip latency of load-generator exchanges"
  in
  let m_dropped =
    Telemetry.Metrics.counter "loadgen_dropped_total"
      ~help:"Open-loop arrivals dropped: every virtual client was busy"
  in
  let m_late =
    Telemetry.Metrics.counter "loadgen_late_total"
      ~help:"Open-loop exchanges that started more than one inter-arrival late"
  in
  (* An exchange that could not start within this lag of its scheduled
     arrival counts as late: the generator (or the server's accept path)
     is slipping behind the arrival process. *)
  let late_threshold = late_factor /. rate in
  let slots =
    Array.init max_clients (fun _ ->
        {
          s_m = Mutex.create ();
          s_c = Condition.create ();
          s_task = None;
          s_stop = false;
          s_out = { w_latencies = []; w_ok = 0; w_errors = []; w_classed = [] };
          s_late = 0;
          s_sent = 0;
        })
  in
  let free = Stack.create () in
  let free_m = Mutex.create () in
  for i = max_clients - 1 downto 0 do
    Stack.push i free
  done;
  let worker i () =
    let s = slots.(i) in
    let client =
      Client.create
        ~config:{ client_config with seed = Int64.add client_config.seed (Int64.of_int i) }
        address
    in
    let rec loop () =
      Mutex.lock s.s_m;
      while s.s_task = None && not s.s_stop do
        Condition.wait s.s_c s.s_m
      done;
      match s.s_task with
      | None -> Mutex.unlock s.s_m (* stop with no work assigned *)
      | Some (idx, sched) ->
        s.s_task <- None;
        Mutex.unlock s.s_m;
        let start = Unix.gettimeofday () in
        if start -. sched > late_threshold then begin
          s.s_late <- s.s_late + 1;
          Telemetry.Metrics.incr m_late
        end;
        s.s_sent <- s.s_sent + 1;
        exec i client idx s.s_out;
        (* Open-loop latency runs from the *scheduled* arrival, not the
           send: queueing delay born of the server falling behind the
           arrival process is the signal, and measuring from the send
           would hide exactly the collapse this mode exists to expose. *)
        let dt = Unix.gettimeofday () -. sched in
        s.s_out.w_latencies <- dt :: s.s_out.w_latencies;
        Telemetry.Metrics.incr m_queries;
        Telemetry.Metrics.observe_s m_latency dt;
        Mutex.lock free_m;
        Stack.push i free;
        Mutex.unlock free_m;
        loop ()
    in
    loop ();
    Client.close client
  in
  let threads = Array.init max_clients (fun i -> Thread.create (worker i) ()) in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. duration_s in
  let offered = ref 0 in
  let dropped = ref 0 in
  let i = ref 0 in
  (let continue = ref true in
   while !continue do
     let sched = t0 +. (float_of_int !i /. rate) in
     if sched >= deadline then continue := false
     else begin
       let now = Unix.gettimeofday () in
       (* When behind schedule, dispatch immediately: arrivals never wait
          for the generator — that would close the loop. *)
       if sched > now then Thread.delay (sched -. now);
       incr offered;
       let slot =
         Mutex.lock free_m;
         let s = if Stack.is_empty free then None else Some (Stack.pop free) in
         Mutex.unlock free_m;
         s
       in
       (match slot with
       | None ->
         (* Every virtual client is mid-exchange: the arrival is dropped
            (and counted), not queued — queueing it would turn the fixed
            arrival process into a closed loop. *)
         incr dropped;
         Telemetry.Metrics.incr m_dropped
       | Some w ->
         let s = slots.(w) in
         Mutex.lock s.s_m;
         s.s_task <- Some (!i, sched);
         Condition.signal s.s_c;
         Mutex.unlock s.s_m);
       incr i
     end
   done);
  Array.iter
    (fun s ->
      Mutex.lock s.s_m;
      s.s_stop <- true;
      Condition.signal s.s_c;
      Mutex.unlock s.s_m)
    slots;
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let outs = Array.map (fun s -> s.s_out) slots in
  let latencies =
    Array.of_list (Array.fold_left (fun acc o -> List.rev_append o.w_latencies acc) [] outs)
  in
  Array.sort compare latencies;
  let ok = Array.fold_left (fun n o -> n + o.w_ok) 0 outs in
  let sent = Array.fold_left (fun n s -> n + s.s_sent) 0 slots in
  let late = Array.fold_left (fun n s -> n + s.s_late) 0 slots in
  let errors =
    Array.fold_left
      (fun acc o ->
        List.fold_left
          (fun acc (cls, n) ->
            match List.assoc_opt cls acc with
            | Some m -> (cls, m + n) :: List.remove_assoc cls acc
            | None -> (cls, n) :: acc)
          acc o.w_errors)
      [] outs
    |> List.sort compare
  in
  let ms x = 1000.0 *. x in
  let sum = Array.fold_left ( +. ) 0.0 latencies in
  let exchanges = Array.length latencies in
  {
    rate_qps = rate;
    duration_s;
    offered = !offered;
    sent;
    o_ok = ok;
    dropped = !dropped;
    late;
    achieved_qps = (if wall_s > 0.0 then float_of_int sent /. wall_s else 0.0);
    o_mean_ms = (if exchanges > 0 then ms (sum /. float_of_int exchanges) else Float.nan);
    o_p50_ms = ms (percentile latencies 0.50);
    o_p95_ms = ms (percentile latencies 0.95);
    o_p99_ms = ms (percentile latencies 0.99);
    o_max_ms = (if exchanges > 0 then ms latencies.(exchanges - 1) else Float.nan);
    o_errors = errors;
  }

let run_open_loop ?(client_config = Client.default_config) ?(max_clients = 64)
    ?(late_factor = 1.0) ~rate ~duration_s ~address requests =
  if Array.length requests = 0 then
    invalid_arg "Server.Loadgen.run_open_loop: no requests";
  let exec _slot client arrival out =
    let entry, a, b = requests.(arrival mod Array.length requests) in
    match Client.estimate client ~entry ~a ~b with
    | Ok _ -> out.w_ok <- out.w_ok + 1
    | Error e -> record_error out (error_class e)
  in
  open_loop_drive ~who:"Server.Loadgen.run_open_loop" ~client_config ~max_clients
    ~late_factor ~rate ~duration_s ~address ~exec

(* ---------------- drift (adaptive serving) ---------------- *)

type drift_report = {
  d_open : open_report;
  d_estimates : int;
  d_est_ok : int;
  d_inserts : int;
  d_insert_ok : int;
  d_observes : int;
  d_observe_ok : int;
  d_mean_abs_err : float;
  d_max_abs_err : float;
  d_est_invalid : int;
}

(* Per-slot drift accumulator, merged after the run (slots are threads;
   sharing one record would race). *)
type drift_acc = {
  mutable da_est : int;
  mutable da_est_ok : int;
  mutable da_ins : int;
  mutable da_ins_ok : int;
  mutable da_obs : int;
  mutable da_obs_ok : int;
  mutable da_err_sum : float;
  mutable da_err_max : float;
  mutable da_invalid : int;
}

let run_drift ?(client_config = Client.default_config) ?(max_clients = 64)
    ?(late_factor = 1.0) ?(insert_every = 4) ?(insert_batch = 32) ?(observe_every = 4)
    ?(window = 0.25) ?(seed = 0xd41f7L) ~rate ~duration_s ~entry ~address () =
  if insert_every < 2 then
    invalid_arg "Server.Loadgen.run_drift: insert_every must be >= 2";
  if insert_batch < 1 then
    invalid_arg "Server.Loadgen.run_drift: insert_batch must be >= 1";
  if observe_every < 2 then
    invalid_arg "Server.Loadgen.run_drift: observe_every must be >= 2";
  if not (window > 0.0 && window <= 1.0) then
    invalid_arg "Server.Loadgen.run_drift: window must be in (0, 1]";
  let name = entry.Wire.name in
  let lo, hi = entry.Wire.domain in
  let dom_w = hi -. lo in
  if not (dom_w > 0.0) then invalid_arg "Server.Loadgen.run_drift: empty entry domain";
  let win_w = window *. dom_w in
  (* The drift model: the relation's live values are Uniform over a
     window [win_w] wide whose center slides linearly from one end of
     the domain to the other across the run's scheduled arrivals.  The
     window position is a function of the arrival *index*, not the
     clock, so the stream (and the analytic truth below) is fully
     deterministic from [seed] and the run shape. *)
  let horizon = max 1 (int_of_float (Float.ceil (rate *. duration_s))) in
  let window_at arrival =
    let p =
      if horizon <= 1 then 0.0
      else float_of_int (min arrival (horizon - 1)) /. float_of_int (horizon - 1)
    in
    let c = lo +. (win_w /. 2.0) +. (p *. (dom_w -. win_w)) in
    (c -. (win_w /. 2.0), c +. (win_w /. 2.0))
  in
  (* True selectivity of Q(a,b) against the current window: the overlap
     fraction of a uniform distribution over [wl, wh]. *)
  let truth_at arrival a b =
    let wl, wh = window_at arrival in
    (* Clamped: when [a,b] covers the whole window, [wh -. wl] can land
       an ulp above [win_w] and the ratio a hair above 1, which the
       server's observe validation would (rightly) reject. *)
    Float.min 1.0 (Float.max 0.0 (Float.min b wh -. Float.max a wl) /. win_w)
  in
  let accs =
    Array.init max_clients (fun _ ->
        {
          da_est = 0;
          da_est_ok = 0;
          da_ins = 0;
          da_ins_ok = 0;
          da_obs = 0;
          da_obs_ok = 0;
          da_err_sum = 0.0;
          da_err_max = 0.0;
          da_invalid = 0;
        })
  in
  let exec slot client arrival out =
    let acc = accs.(slot) in
    (* Per-arrival PRNG: the payload of arrival [i] does not depend on
       which slot won the race to execute it. *)
    let rng = Prng.Splitmix64.create (Int64.add seed (Int64.of_int arrival)) in
    let wl, wh = window_at arrival in
    if arrival mod insert_every = 0 then begin
      let values =
        Array.init insert_batch (fun _ ->
            wl +. ((wh -. wl) *. Prng.Splitmix64.next_float rng))
      in
      acc.da_ins <- acc.da_ins + 1;
      match Client.insert client ~entry:name values with
      | Ok _ ->
        acc.da_ins_ok <- acc.da_ins_ok + 1;
        out.w_ok <- out.w_ok + 1
      | Error e -> record_error out (error_class e)
    end
    else begin
      let x = lo +. (dom_w *. Prng.Splitmix64.next_float rng) in
      let y = lo +. (dom_w *. Prng.Splitmix64.next_float rng) in
      let a = Float.min x y and b = Float.max x y in
      if arrival mod observe_every = 1 then begin
        acc.da_obs <- acc.da_obs + 1;
        match Client.observe client ~entry:name ~a ~b ~actual:(truth_at arrival a b) with
        | Ok _ ->
          acc.da_obs_ok <- acc.da_obs_ok + 1;
          out.w_ok <- out.w_ok + 1
        | Error e -> record_error out (error_class e)
      end
      else begin
        acc.da_est <- acc.da_est + 1;
        match Client.estimate client ~entry:name ~a ~b with
        | Ok est ->
          acc.da_est_ok <- acc.da_est_ok + 1;
          out.w_ok <- out.w_ok + 1;
          if not (Float.is_finite est && est >= 0.0 && est <= 1.0) then
            acc.da_invalid <- acc.da_invalid + 1
          else begin
            let err = Float.abs (est -. truth_at arrival a b) in
            acc.da_err_sum <- acc.da_err_sum +. err;
            if err > acc.da_err_max then acc.da_err_max <- err
          end
        | Error e -> record_error out (error_class e)
      end
    end
  in
  let d_open =
    open_loop_drive ~who:"Server.Loadgen.run_drift" ~client_config ~max_clients
      ~late_factor ~rate ~duration_s ~address ~exec
  in
  let est = Array.fold_left (fun n a -> n + a.da_est) 0 accs in
  let est_ok = Array.fold_left (fun n a -> n + a.da_est_ok) 0 accs in
  let invalid = Array.fold_left (fun n a -> n + a.da_invalid) 0 accs in
  let err_sum = Array.fold_left (fun s a -> s +. a.da_err_sum) 0.0 accs in
  let err_max = Array.fold_left (fun m a -> Float.max m a.da_err_max) 0.0 accs in
  let measured = est_ok - invalid in
  {
    d_open;
    d_estimates = est;
    d_est_ok = est_ok;
    d_inserts = Array.fold_left (fun n a -> n + a.da_ins) 0 accs;
    d_insert_ok = Array.fold_left (fun n a -> n + a.da_ins_ok) 0 accs;
    d_observes = Array.fold_left (fun n a -> n + a.da_obs) 0 accs;
    d_observe_ok = Array.fold_left (fun n a -> n + a.da_obs_ok) 0 accs;
    d_mean_abs_err =
      (if measured > 0 then err_sum /. float_of_int measured else Float.nan);
    d_max_abs_err = (if measured > 0 then err_max else Float.nan);
    d_est_invalid = invalid;
  }

let open_report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "open loop: offered %d arrivals at %.0f/s over %.2fs — sent %d (%.0f/s achieved), \
        dropped %d, late %d\n"
       r.offered r.rate_qps r.duration_s r.sent r.achieved_qps r.dropped r.late);
  Buffer.add_string b
    (Printf.sprintf
       "latency from scheduled arrival, ms: mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n"
       r.o_mean_ms r.o_p50_ms r.o_p95_ms r.o_p99_ms r.o_max_ms);
  Buffer.add_string b (Printf.sprintf "ok %d / %d" r.o_ok r.sent);
  if r.o_errors <> [] then begin
    Buffer.add_string b "  errors:";
    List.iter (fun (cls, n) -> Buffer.add_string b (Printf.sprintf " %s=%d" cls n)) r.o_errors
  end;
  Buffer.contents b

let drift_report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b (open_report_to_string r.d_open);
  Buffer.add_string b
    (Printf.sprintf "\nops: estimate %d/%d  insert %d/%d  observe %d/%d"
       r.d_est_ok r.d_estimates r.d_insert_ok r.d_inserts r.d_observe_ok r.d_observes);
  Buffer.add_string b
    (Printf.sprintf
       "\nestimate error vs generator truth: mean abs %.4f  max abs %.4f  invalid %d"
       r.d_mean_abs_err r.d_max_abs_err r.d_est_invalid);
  Buffer.contents b
