type report = {
  connections : int;
  queries : int;
  ok : int;
  wall_s : float;
  throughput_qps : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  errors : (string * int) list;
  answers : float array;
}

let error_class = function
  | Client.Transport _ -> "transport"
  | Client.Protocol _ -> "protocol"
  | Client.Server (code, _) -> Wire.error_code_to_string code

let synthetic_requests ~entries ~count ~seed =
  if entries = [] then invalid_arg "Server.Loadgen.synthetic_requests: no entries";
  if count < 0 then invalid_arg "Server.Loadgen.synthetic_requests: count < 0";
  let pool = Array.of_list entries in
  let rng = Prng.Splitmix64.create seed in
  Array.init count (fun _ ->
      let e = pool.(Prng.Splitmix64.next_below rng (Array.length pool)) in
      let lo, hi = e.Wire.domain in
      let width = hi -. lo in
      let x = lo +. (width *. Prng.Splitmix64.next_float rng) in
      let y = lo +. (width *. Prng.Splitmix64.next_float rng) in
      (e.Wire.name, Float.min x y, Float.max x y))

(* Exact q-quantile of a sorted array: the smallest element with at
   least [ceil (q*n)] observations at or below it. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

(* The per-worker slice [i] of [total] items: contiguous, so workers can
   write their answers into disjoint ranges of one shared array. *)
let slice_bounds total workers i =
  let base = total / workers and rem = total mod workers in
  let start = (i * base) + min i rem in
  let len = base + if i < rem then 1 else 0 in
  (start, len)

type worker_out = {
  mutable w_latencies : float list;  (** per-exchange round-trip seconds *)
  mutable w_ok : int;
  mutable w_errors : (string * int) list;
}

let record_error out cls =
  out.w_errors <-
    (match List.assoc_opt cls out.w_errors with
    | Some n -> (cls, n + 1) :: List.remove_assoc cls out.w_errors
    | None -> (cls, 1) :: out.w_errors)

let run ?(client_config = Client.default_config) ?(batch = 1) ~connections ~address requests =
  if connections < 1 then invalid_arg "Server.Loadgen.run: connections < 1";
  if batch < 1 then invalid_arg "Server.Loadgen.run: batch < 1";
  let total = Array.length requests in
  let answers = Array.make total Float.nan in
  let m_queries =
    Telemetry.Metrics.counter "loadgen_queries_total" ~help:"Queries issued by the load generator"
  in
  let m_latency =
    Telemetry.Metrics.histogram "loadgen_latency_seconds"
      ~help:"Round-trip latency of load-generator exchanges"
  in
  let outs =
    Array.init connections (fun _ -> { w_latencies = []; w_ok = 0; w_errors = [] })
  in
  let worker i () =
    let out = outs.(i) in
    let start, len = slice_bounds total connections i in
    (* Distinct seed per worker so retry jitter decorrelates. *)
    let client =
      Client.create ~config:{ client_config with seed = Int64.add client_config.seed (Int64.of_int i) } address
    in
    let pos = ref start in
    let stop = start + len in
    while !pos < stop do
      let n = min batch (stop - !pos) in
      let t0 = Unix.gettimeofday () in
      (if n = 1 then begin
         let entry, a, b = requests.(!pos) in
         match Client.estimate client ~entry ~a ~b with
         | Ok x ->
           answers.(!pos) <- x;
           out.w_ok <- out.w_ok + 1
         | Error e -> record_error out (error_class e)
       end
       else
         match Client.batch_estimate client (Array.sub requests !pos n) with
         | Ok xs ->
           Array.blit xs 0 answers !pos n;
           out.w_ok <- out.w_ok + n
         | Error e -> record_error out (error_class e));
      let dt = Unix.gettimeofday () -. t0 in
      out.w_latencies <- dt :: out.w_latencies;
      Telemetry.Metrics.add m_queries n;
      Telemetry.Metrics.observe_s m_latency dt;
      pos := !pos + n
    done;
    Client.close client
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init connections (fun i -> Thread.create (worker i) ()) in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let latencies =
    Array.of_list (Array.fold_left (fun acc o -> List.rev_append o.w_latencies acc) [] outs)
  in
  Array.sort compare latencies;
  let ok = Array.fold_left (fun n o -> n + o.w_ok) 0 outs in
  let errors =
    Array.fold_left
      (fun acc o ->
        List.fold_left
          (fun acc (cls, n) ->
            match List.assoc_opt cls acc with
            | Some m -> (cls, m + n) :: List.remove_assoc cls acc
            | None -> (cls, n) :: acc)
          acc o.w_errors)
      [] outs
    |> List.sort compare
  in
  let ms x = 1000.0 *. x in
  let sum = Array.fold_left ( +. ) 0.0 latencies in
  let exchanges = Array.length latencies in
  {
    connections;
    queries = total;
    ok;
    wall_s;
    throughput_qps = (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0);
    mean_ms = (if exchanges > 0 then ms (sum /. float_of_int exchanges) else Float.nan);
    p50_ms = ms (percentile latencies 0.50);
    p95_ms = ms (percentile latencies 0.95);
    p99_ms = ms (percentile latencies 0.99);
    max_ms = (if exchanges > 0 then ms latencies.(exchanges - 1) else Float.nan);
    errors;
    answers;
  }

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%d queries over %d connections in %.3fs (%.0f q/s)\n" r.queries
       r.connections r.wall_s r.throughput_qps);
  Buffer.add_string b
    (Printf.sprintf "latency ms: mean %.3f  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n"
       r.mean_ms r.p50_ms r.p95_ms r.p99_ms r.max_ms);
  Buffer.add_string b (Printf.sprintf "ok %d / %d" r.ok r.queries);
  if r.errors <> [] then begin
    Buffer.add_string b "  errors:";
    List.iter (fun (cls, n) -> Buffer.add_string b (Printf.sprintf " %s=%d" cls n)) r.errors
  end;
  Buffer.contents b
