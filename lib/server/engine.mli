(** The concurrent estimate server: socket front end over
    [Catalog.Service].

    One thread calls {!serve} and runs the accept loop; each connection
    gets a reader thread; a single dispatcher thread owns the catalog
    service (which is single-owner by contract) and folds the requests
    that pile up while a batch is evaluating into the next
    [Catalog.Service.answer_into] call over reused structure-of-arrays
    staging buffers.  Because each query's slot is evaluated
    independently, a served estimate is bit-identical to a direct
    [answer] call on the same snapshot directory, whatever the batching.
    Connections reuse their job record and [Wire.writer], so the
    steady-state reply path allocates no fresh buffers (see
    [docs/PERFORMANCE.md] for the allocation budget).

    Overload and shutdown are typed protocol replies, not dropped
    connections: admission control answers [Overloaded] the moment
    [max_inflight] is reached, queue residence past [deadline_s] answers
    [Timeout], and a drain ({!initiate_drain} or SIGTERM via
    {!install_sigterm}) refuses new work with [Draining] while every
    in-flight request completes and its reply is written before
    {!serve} returns.  Semantics and tuning guidance live in
    [docs/SERVING.md]. *)

type config = {
  jobs : int;
      (** retained for compatibility: merged batches now run through the
          sequential [Catalog.Service.answer_into] fast path, which
          outruns the former [Parallel.Map] fan-out at serving batch
          sizes; must still be [>= 1] *)
  max_inflight : int;
      (** admission-control limit: requests being evaluated or queued;
          at the limit new requests get an immediate [Overloaded] reply.
          [0] refuses everything — useful for testing backpressure. *)
  max_batch : int;
      (** target ceiling on range queries merged into one dispatcher
          batch; a single client batch larger than this still dispatches
          (whole) rather than being split *)
  deadline_s : float;
      (** a request older than this when the dispatcher reaches it gets a
          [Timeout] reply instead of an answer; [0.] disables deadlines *)
  accept_backlog : int;  (** listen(2) backlog of not-yet-accepted connections *)
  tick_s : float;
      (** accept-loop poll interval; bounds how stale the drain flag can
          go unnoticed *)
  dispatch_delay_s : float;
      (** artificial pause before each dispatcher batch — [0.] in
          production; tests raise it to make timeout and drain windows
          deterministic *)
}

val default_config : config
(** [{ jobs = 1; max_inflight = 64; max_batch = 64; deadline_s = 5.0;
      accept_backlog = 64; tick_s = 0.02; dispatch_delay_s = 0.0 }]. *)

type stats = {
  connections : int;  (** connections accepted *)
  requests : int;  (** frames decoded into well-formed requests *)
  answered : int;  (** range queries answered with an estimate *)
  overloaded : int;  (** requests refused by admission control *)
  timeouts : int;  (** requests expired past their deadline *)
  refused_draining : int;  (** requests refused because a drain had begun *)
  protocol_errors : int;  (** malformed frames or payloads received *)
  batches : int;  (** [Catalog.Service.answer] calls issued *)
  batched_queries : int;  (** range queries folded into those calls *)
}

type t

val create : ?config:config -> service:Catalog.Service.t -> Wire.address -> t
(** [create ~service address] binds and listens on [address] (an existing
    Unix-socket path is removed first; TCP sockets get [SO_REUSEADDR]).
    The server takes ownership of [service]: no other thread may touch it
    until {!serve} returns.  @raise Invalid_argument on a non-positive
    [config] field (except [max_inflight] and [dispatch_delay_s], where
    [0] is meaningful).  @raise Unix.Unix_error if the address cannot be
    bound. *)

val serve : t -> unit
(** Run the server on the calling thread.  Blocks until a drain is
    initiated, then: stops accepting (the listen socket closes, so new
    connects are refused at the socket layer), answers every in-flight
    request and writes its reply, retires the dispatcher, closes the
    remaining connections, and returns.  Call at most once per {!t}. *)

val initiate_drain : t -> unit
(** Begin graceful shutdown.  Only sets an atomic flag — safe from any
    thread and from inside a signal handler. *)

val install_sigterm : t -> unit
(** Route SIGTERM to {!initiate_drain}, replacing any previous handler. *)

val draining : t -> bool
(** Whether a drain has been initiated. *)

val address : t -> Wire.address
(** The address {!create} was given. *)

val bound_port : t -> int option
(** The actual TCP port after binding — useful when {!create} was given
    port [0] to let the kernel choose.  [None] for Unix-domain sockets. *)

val stats : t -> stats
(** Lifetime counters, readable from any thread at any time (each field
    is an independent atomic; the snapshot is not cross-field
    consistent).  The same counts flow into the [Telemetry] registry as
    [server_*] metrics when telemetry is enabled. *)
