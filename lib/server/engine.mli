(** The concurrent estimate server: socket front end over a
    hash-partitioned array of [Catalog.Service] shards.

    One thread calls {!serve} and runs the accept loop; each connection
    gets a reader thread; and each shard runs one dispatcher {e domain}
    that owns that shard's catalog service (single-owner by contract)
    and folds the requests that pile up while a batch is evaluating
    into the next [Catalog.Service.answer_into] call over the shard's
    reused structure-of-arrays staging buffers.  Requests are routed by
    entry name with [Catalog.Service.shard_of_name] — the same stable
    hash that lays out the snapshot directories in
    [Catalog.Service.open_sharded] — and a [batch_estimate] frame whose
    queries span shards is split into per-shard sub-jobs, evaluated
    concurrently, and reassembled in request order.  Because each
    query's slot is evaluated independently, a served estimate is
    bit-identical to a direct [answer] call on the same snapshot
    directory, whatever the batching, routing, or shard count; with one
    shard the engine degenerates to exactly the single-dispatcher
    server.  Connections reuse their per-shard job records and
    [Wire.writer], so the steady-state single-shard reply path
    allocates no fresh buffers (see [docs/PERFORMANCE.md] for the
    allocation budget; [docs/SHARDING.md] for the sharded operation
    handbook).

    Overload and shutdown are typed protocol replies, not dropped
    connections: admission control answers [Overloaded] the moment
    [max_inflight] is reached (one slot per request, however many
    shards it fans out to), queue residence past [deadline_s] answers
    [Timeout], and a drain ({!initiate_drain} or SIGTERM via
    {!install_sigterm}) refuses new work with [Draining] while every
    in-flight request completes and its reply is written before
    {!serve} returns.  A shard whose dispatcher has died answers the
    typed [Internal] error while the other shards keep serving.
    Semantics and tuning guidance live in [docs/SERVING.md]. *)

type config = {
  jobs : int;
      (** retained for compatibility: merged batches now run through the
          sequential [Catalog.Service.answer_into] fast path, which
          outruns the former [Parallel.Map] fan-out at serving batch
          sizes (parallelism across batches comes from shards); must
          still be [>= 1] *)
  max_inflight : int;
      (** admission-control limit: requests being evaluated or queued;
          at the limit new requests get an immediate [Overloaded] reply.
          [0] refuses everything — useful for testing backpressure. *)
  max_batch : int;
      (** target ceiling on range queries merged into one dispatcher
          batch (applied per shard); a single client batch larger than
          this still dispatches (whole) rather than being split *)
  deadline_s : float;
      (** a request older than this when its dispatcher reaches it gets
          a [Timeout] reply instead of an answer; [0.] disables
          deadlines *)
  accept_backlog : int;  (** listen(2) backlog of not-yet-accepted connections *)
  tick_s : float;
      (** accept-loop poll interval; bounds how stale the drain flag can
          go unnoticed *)
  dispatch_delay_s : float;
      (** artificial pause before each dispatcher batch — [0.] in
          production; tests raise it to make timeout and drain windows
          deterministic *)
}

val default_config : config
(** [{ jobs = 1; max_inflight = 64; max_batch = 64; deadline_s = 5.0;
      accept_backlog = 64; tick_s = 0.02; dispatch_delay_s = 0.0 }]. *)

type shard_stats = {
  shard_batches : int;  (** [Catalog.Service.answer_into] calls this shard issued *)
  shard_batched_queries : int;  (** range queries folded into those calls *)
  shard_answered : int;  (** range queries this shard answered with an estimate *)
  shard_swaps : int;
      (** adaptive summary versions this shard's dispatcher swapped in
          (rebuilds and feedback refreshes; [0] unless the services were
          {!Catalog.Service.enable_adaptive}d) *)
}

type stats = {
  connections : int;  (** connections accepted *)
  requests : int;  (** frames decoded into well-formed requests *)
  answered : int;  (** range queries answered with an estimate (all shards) *)
  overloaded : int;  (** requests refused by admission control *)
  timeouts : int;  (** requests expired past their deadline *)
  refused_draining : int;  (** requests refused because a drain had begun *)
  protocol_errors : int;  (** malformed frames or payloads received *)
  batches : int;  (** dispatcher batches across all shards *)
  batched_queries : int;  (** range queries folded into those batches *)
  swaps : int;  (** adaptive summary swaps across all shards *)
  shards : int;  (** number of shards the engine was created with *)
  per_shard : shard_stats array;
      (** per-shard batching counters, indexed by shard id — the skew
          diagnostic: a hot entry shows up as one shard carrying most of
          [shard_answered] *)
}

type t

val create : ?config:config -> services:Catalog.Service.t array -> Wire.address -> t
(** [create ~services address] binds and listens on [address] (an
    existing Unix-socket path is removed first; TCP sockets get
    [SO_REUSEADDR]).  [services] is the shard array, normally from
    [Catalog.Service.open_sharded] with the same shard count — element
    [i] must own the entries [Catalog.Service.shard_of_name] maps to
    [i], or those entries answer [Unknown_entry].  The server takes
    ownership of every service: no other thread may touch them until
    {!serve} returns.  A one-element array is the classic single-
    dispatcher server.  @raise Invalid_argument on an empty [services]
    or a non-positive [config] field (except [max_inflight] and
    [dispatch_delay_s], where [0] is meaningful).
    @raise Unix.Unix_error if the address cannot be bound. *)

val serve : t -> unit
(** Run the server on the calling thread (the shard dispatchers spawn
    as domains).  Blocks until a drain is initiated, then: stops
    accepting (the listen socket closes, so new connects are refused at
    the socket layer), answers every in-flight request and writes its
    reply, retires the dispatcher domains, closes the remaining
    connections, and returns.  Call at most once per {!t}. *)

val initiate_drain : t -> unit
(** Begin graceful shutdown.  Only sets an atomic flag — safe from any
    thread and from inside a signal handler. *)

val install_sigterm : t -> unit
(** Route SIGTERM to {!initiate_drain}, replacing any previous handler. *)

val draining : t -> bool
(** Whether a drain has been initiated. *)

val address : t -> Wire.address
(** The address {!create} was given. *)

val bound_port : t -> int option
(** The actual TCP port after binding — useful when {!create} was given
    port [0] to let the kernel choose.  [None] for Unix-domain sockets. *)

val shard_count : t -> int
(** Number of shards (the length of the [services] array). *)

val stats : t -> stats
(** Lifetime counters, readable from any thread at any time (each field
    is an independent atomic; the snapshot is not cross-field
    consistent).  The same counts flow into the [Telemetry] registry as
    [server_*] metrics when telemetry is enabled — labeled per shard
    when [shards > 1]. *)

val kill_shard_dispatcher : t -> int -> unit
(** Fault injection for tests: retire shard [i]'s dispatcher as if it
    had died.  Work already queued on the shard drains first; from then
    on requests routed to it (and [ls], which fans out everywhere) get
    the typed [Internal] refusal, other shards keep serving, and a
    subsequent drain still completes — shard failure degrades, it never
    hangs.  Blocks until the dispatcher domain has exited.
    @raise Invalid_argument on an out-of-range shard id. *)
