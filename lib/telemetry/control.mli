(** Global switch and clock for the telemetry subsystem.

    Telemetry is off by default.  Every record operation ({!Metrics.incr},
    {!Span.with_span}, ...) checks {!is_enabled} first and is a no-op —
    one atomic load, zero allocation — while the subsystem is disabled, so
    instrumented hot paths cost nothing measurable and produce bit-identical
    results whether or not the flag has ever been flipped.

    The flag is process-wide and safe to toggle from any domain; workers of
    {!Parallel.Pool} observe it through an [Atomic]. *)

val enable : unit -> unit
(** Turn recording on, process-wide. *)

val disable : unit -> unit
(** Turn recording off.  Already-recorded data is kept (see
    {!Metrics.reset} and {!Span.clear} to drop it). *)

val is_enabled : unit -> bool
(** Current state of the switch (one atomic load). *)

val now_ns : unit -> int
(** Wall-clock time in integer nanoseconds (microsecond resolution —
    [Unix.gettimeofday] underneath).  An immediate value: calling this
    never allocates. *)

val epoch_ns : int
(** [now_ns] captured at module initialization.  Span timestamps are
    exported relative to this zero point. *)
