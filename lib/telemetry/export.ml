(* Renderers over Metrics.snapshot and Span.entries.  No JSON library is
   available in the container, so the JSON writer is hand-rolled the same
   way bench/main.ml writes BENCH_results.json; the schema is documented
   in docs/TELEMETRY.md. *)

type format = Json | Text | Prometheus

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_nan x || Float.abs x = Float.infinity then "null" else Printf.sprintf "%.9g" x

let label_suffix labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

(* --- JSON --- *)

let buf_json_labels b labels =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
    labels;
  Buffer.add_string b "}"

let buf_json_sample_head b (s : Metrics.sample) =
  Buffer.add_string b (Printf.sprintf "      \"name\": \"%s\",\n" (json_escape s.sample_name));
  Buffer.add_string b "      \"labels\": ";
  buf_json_labels b s.sample_labels;
  Buffer.add_string b ",\n"

let buf_json_list b ~indent items render =
  if items = [] then Buffer.add_string b "[]"
  else begin
    Buffer.add_string b "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b indent;
        render x)
      items;
    Buffer.add_char b '\n';
    Buffer.add_string b (String.sub indent 0 (String.length indent - 2));
    Buffer.add_char b ']'
  end

let render_json () =
  let samples = Metrics.snapshot () in
  let spans = Span.entries () in
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) (s : Metrics.sample) ->
        match s.sample_value with
        | Metrics.Counter_value _ -> (s :: cs, gs, hs)
        | Metrics.Gauge_value _ -> (cs, s :: gs, hs)
        | Metrics.Histogram_value _ -> (cs, gs, s :: hs))
      ([], [], []) (List.rev samples)
  in
  let counters = List.rev counters and gauges = List.rev gauges and histograms = List.rev histograms in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema_version\": 1,\n";
  Buffer.add_string b
    (Printf.sprintf "  \"enabled\": %b,\n" (Control.is_enabled ()));
  Buffer.add_string b "  \"counters\": ";
  buf_json_list b ~indent:"    " counters (fun s ->
      Buffer.add_string b "{\n";
      buf_json_sample_head b s;
      (match s.sample_value with
      | Metrics.Counter_value v -> Buffer.add_string b (Printf.sprintf "      \"value\": %d\n" v)
      | _ -> assert false);
      Buffer.add_string b "    }");
  Buffer.add_string b ",\n";
  Buffer.add_string b "  \"gauges\": ";
  buf_json_list b ~indent:"    " gauges (fun s ->
      Buffer.add_string b "{\n";
      buf_json_sample_head b s;
      (match s.sample_value with
      | Metrics.Gauge_value v ->
        Buffer.add_string b (Printf.sprintf "      \"value\": %s\n" (json_float v))
      | _ -> assert false);
      Buffer.add_string b "    }");
  Buffer.add_string b ",\n";
  Buffer.add_string b "  \"histograms\": ";
  buf_json_list b ~indent:"    " histograms (fun s ->
      Buffer.add_string b "{\n";
      buf_json_sample_head b s;
      (match s.sample_value with
      | Metrics.Histogram_value h ->
        Buffer.add_string b (Printf.sprintf "      \"count\": %d,\n" h.Metrics.observations);
        Buffer.add_string b
          (Printf.sprintf "      \"sum_s\": %s,\n" (json_float h.Metrics.sum_s));
        Buffer.add_string b
          (Printf.sprintf "      \"mean_s\": %s,\n" (json_float (Metrics.mean_s h)));
        Buffer.add_string b "      \"buckets\": [";
        Array.iteri
          (fun i (le, count) ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_string b
              (Printf.sprintf "{\"le_s\": %s, \"count\": %d}" (json_float le) count))
          h.Metrics.buckets;
        Buffer.add_string b "]\n"
      | _ -> assert false);
      Buffer.add_string b "    }");
  Buffer.add_string b ",\n";
  Buffer.add_string b "  \"spans\": {\n";
  Buffer.add_string b (Printf.sprintf "    \"dropped\": %d,\n" (Span.dropped ()));
  Buffer.add_string b "    \"entries\": ";
  buf_json_list b ~indent:"      " spans (fun (e : Span.entry) ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\": \"%s\", \"domain\": %d, \"depth\": %d, \"start_s\": %s, \"duration_s\": %s}"
           (json_escape e.Span.name) e.Span.domain e.Span.depth
           (json_float (float_of_int e.Span.start_ns *. 1e-9))
           (json_float (float_of_int e.Span.duration_ns *. 1e-9))));
  Buffer.add_string b "\n  }\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

(* The CLI's --stats and repeated bench exports want "what did the last
   export see" without recomputing; to_json refreshes this cache. *)
let last : string option ref = ref None

let to_json () =
  let s = render_json () in
  last := Some s;
  s

let last_json () = !last

(* --- text --- *)

let si_time s =
  if s >= 1.0 then Printf.sprintf "%.2fs" s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else if s >= 1e-6 then Printf.sprintf "%.2fus" (s *. 1e6)
  else Printf.sprintf "%.0fns" (s *. 1e9)

let to_text () =
  let samples = Metrics.snapshot () in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "telemetry report (recording %s)\n"
       (if Control.is_enabled () then "on" else "off"));
  let section title = Buffer.add_string b (Printf.sprintf "\n%s:\n" title) in
  let nonempty = function
    | { Metrics.sample_value = Metrics.Counter_value 0; _ } -> false
    | { Metrics.sample_value = Metrics.Histogram_value h; _ } -> h.Metrics.observations > 0
    | _ -> true
  in
  let samples = List.filter nonempty samples in
  let counters =
    List.filter (fun s -> match s.Metrics.sample_value with Metrics.Counter_value _ -> true | _ -> false) samples
  and gauges =
    List.filter (fun s -> match s.Metrics.sample_value with Metrics.Gauge_value _ -> true | _ -> false) samples
  and histograms =
    List.filter
      (fun s -> match s.Metrics.sample_value with Metrics.Histogram_value _ -> true | _ -> false)
      samples
  in
  if counters <> [] then begin
    section "counters";
    List.iter
      (fun (s : Metrics.sample) ->
        match s.sample_value with
        | Metrics.Counter_value v ->
          Buffer.add_string b
            (Printf.sprintf "  %-56s %d\n" (s.sample_name ^ label_suffix s.sample_labels) v)
        | _ -> ())
      counters
  end;
  if gauges <> [] then begin
    section "gauges";
    List.iter
      (fun (s : Metrics.sample) ->
        match s.sample_value with
        | Metrics.Gauge_value v ->
          Buffer.add_string b
            (Printf.sprintf "  %-56s %g\n" (s.sample_name ^ label_suffix s.sample_labels) v)
        | _ -> ())
      gauges
  end;
  if histograms <> [] then begin
    section "histograms (count / total / mean / ~p50 / ~p99)";
    List.iter
      (fun (s : Metrics.sample) ->
        match s.sample_value with
        | Metrics.Histogram_value h ->
          Buffer.add_string b
            (Printf.sprintf "  %-56s %8d  %10s  %10s  %10s  %10s\n"
               (s.sample_name ^ label_suffix s.sample_labels)
               h.Metrics.observations (si_time h.Metrics.sum_s)
               (si_time (Metrics.mean_s h))
               (si_time (Metrics.quantile_s h 0.5))
               (si_time (Metrics.quantile_s h 0.99)))
        | _ -> ())
      histograms
  end;
  let spans = Span.entries () in
  if spans <> [] then begin
    (* The trace can hold thousands of per-query spans; the text report is
       for a human, so show the slowest few plus the drop count. *)
    let top = 40 in
    section (Printf.sprintf "slowest spans (top %d of %d, %d dropped)" top (List.length spans)
               (Span.dropped ()));
    let by_duration =
      List.sort (fun (a : Span.entry) b -> compare b.duration_ns a.duration_ns) spans
    in
    List.iteri
      (fun i (e : Span.entry) ->
        if i < top then
          Buffer.add_string b
            (Printf.sprintf "  %-40s d%-3d depth%-2d start+%-10s %10s\n" e.Span.name
               e.Span.domain e.Span.depth
               (si_time (float_of_int e.Span.start_ns *. 1e-9))
               (si_time (float_of_int e.Span.duration_ns *. 1e-9))))
      by_duration
  end;
  Buffer.contents b

(* --- Prometheus text format --- *)

let prom_escape_label v =
  let b = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape_label v)) labels)
    ^ "}"

(* Metric names may contain characters Prometheus forbids (none of ours
   do, but user-registered ones might); normalize conservatively. *)
let prom_name name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let to_prometheus () =
  let samples = Metrics.snapshot () in
  let b = Buffer.create 8192 in
  let seen_header : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.replace seen_header name ();
      if help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = prom_name s.sample_name in
      match s.sample_value with
      | Metrics.Counter_value v ->
        header name "counter" s.sample_help;
        Buffer.add_string b (Printf.sprintf "%s%s %d\n" name (prom_labels s.sample_labels) v)
      | Metrics.Gauge_value v ->
        header name "gauge" s.sample_help;
        Buffer.add_string b (Printf.sprintf "%s%s %g\n" name (prom_labels s.sample_labels) v)
      | Metrics.Histogram_value h ->
        header name "histogram" s.sample_help;
        let cumulative = ref 0 in
        Array.iter
          (fun (le, count) ->
            cumulative := !cumulative + count;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (prom_labels (s.sample_labels @ [ ("le", Printf.sprintf "%g" le) ]))
                 !cumulative))
          h.Metrics.buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" name
             (prom_labels (s.sample_labels @ [ ("le", "+Inf") ]))
             h.Metrics.observations);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %.9g\n" name (prom_labels s.sample_labels) h.Metrics.sum_s);
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" name (prom_labels s.sample_labels)
             h.Metrics.observations))
    samples;
  Buffer.contents b

let render = function Json -> to_json () | Text -> to_text () | Prometheus -> to_prometheus ()

let write_file ~path fmt =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render fmt))
