(* Process-wide named metrics with lock-free recording.

   Every counter and histogram is split into [shard_count] shards; a record
   operation picks the shard [domain_id mod shard_count] and does a plain
   [Atomic.fetch_and_add] there.  Domains therefore never contend on a
   cache line unless their ids collide modulo the shard count (pools are
   far smaller than 16 workers in practice), and no mutex is ever taken on
   the record path — the property that makes it safe to count from inside
   Parallel.Pool workers.  Reads ([value], [snapshot]) merge the shards;
   they are linearizable per shard, so a concurrent read sees some valid
   intermediate total (reads are intended for quiescent points: after a
   bench target, at CLI exit).

   All hot-path state is integer atomics — float histogram sums are kept
   in integer nanoseconds — so recording never allocates. *)

let shard_count = 16

type meta = {
  name : string;
  labels : (string * string) list;  (* sorted by key *)
  help : string;
}

type counter = { c_meta : meta; c_shards : int Atomic.t array }
type gauge = { g_meta : meta; g_value : float Atomic.t }

(* Log-scale latency buckets: bucket [i] holds durations d with
   [2^i <= d < 2^(i+1)] nanoseconds (bucket 0 also catches d < 2).
   48 buckets reach 2^48 ns ~ 3.3 days, far beyond any build or query. *)
let bucket_count = 48

type histogram_shard = {
  counts : int Atomic.t array;  (* bucket_count *)
  sum_ns : int Atomic.t;
  observations : int Atomic.t;
}

type histogram = { h_meta : meta; h_shards : histogram_shard array }

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

(* --- registry --- *)

(* Creation is rare (module initialization, estimator builds); a single
   mutex around the table is fine there.  Handles are idempotent: asking
   for an existing (name, labels) returns the already-registered metric, so
   instrumentation sites can re-derive handles freely. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let key name labels =
  let b = Buffer.create 48 in
  Buffer.add_string b name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '\x00';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v)
    labels;
  Buffer.contents b

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let register ~name ~labels ~help make match_existing =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let k = key name labels in
  Mutex.lock registry_mutex;
  let metric =
    match Hashtbl.find_opt registry k with
    | Some m -> m
    | None ->
      let m = make { name; labels; help } in
      Hashtbl.replace registry k m;
      m
  in
  Mutex.unlock registry_mutex;
  match match_existing metric with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Telemetry.Metrics: %S is already registered as a %s" name
         (kind_name metric))

let counter ?(help = "") ?(labels = []) name =
  register ~name ~labels ~help
    (fun m -> M_counter { c_meta = m; c_shards = Array.init shard_count (fun _ -> Atomic.make 0) })
    (function M_counter c -> Some c | _ -> None)

let gauge ?(help = "") ?(labels = []) name =
  register ~name ~labels ~help
    (fun m -> M_gauge { g_meta = m; g_value = Atomic.make 0.0 })
    (function M_gauge g -> Some g | _ -> None)

let histogram ?(help = "") ?(labels = []) name =
  register ~name ~labels ~help
    (fun m ->
      M_histogram
        {
          h_meta = m;
          h_shards =
            Array.init shard_count (fun _ ->
                {
                  counts = Array.init bucket_count (fun _ -> Atomic.make 0);
                  sum_ns = Atomic.make 0;
                  observations = Atomic.make 0;
                });
        })
    (function M_histogram h -> Some h | _ -> None)

(* --- recording --- *)

let shard_index () = (Domain.self () :> int) land (shard_count - 1)

let add c n =
  if Control.is_enabled () then
    ignore (Atomic.fetch_and_add c.c_shards.(shard_index ()) n)

let incr c = add c 1

let set g v = if Control.is_enabled () then Atomic.set g.g_value v

(* floor(log2 ns) by bit scan; allocation-free. *)
let bucket_of_ns ns =
  if ns <= 1 then 0
  else begin
    let i = ref (-1) in
    let x = ref ns in
    while !x > 0 do
      i := !i + 1;
      x := !x lsr 1
    done;
    if !i >= bucket_count then bucket_count - 1 else !i
  end

let observe_ns h ns =
  if Control.is_enabled () then begin
    let ns = if ns < 0 then 0 else ns in
    let s = h.h_shards.(shard_index ()) in
    ignore (Atomic.fetch_and_add s.counts.(bucket_of_ns ns) 1);
    ignore (Atomic.fetch_and_add s.sum_ns ns);
    ignore (Atomic.fetch_and_add s.observations 1)
  end

let observe_s h seconds = observe_ns h (int_of_float (seconds *. 1e9))

(* --- reading --- *)

let value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_shards
let gauge_value g = Atomic.get g.g_value

type histogram_summary = {
  observations : int;
  sum_s : float;
  buckets : (float * int) array;
}

let bucket_upper_s i = Float.ldexp 1e-9 (i + 1)

let histogram_summary h =
  let merged = Array.make bucket_count 0 in
  let sum_ns = ref 0 and obs = ref 0 in
  Array.iter
    (fun s ->
      Array.iteri (fun i a -> merged.(i) <- merged.(i) + Atomic.get a) s.counts;
      sum_ns := !sum_ns + Atomic.get s.sum_ns;
      obs := !obs + Atomic.get s.observations)
    h.h_shards;
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if merged.(i) > 0 then buckets := (bucket_upper_s i, merged.(i)) :: !buckets
  done;
  { observations = !obs; sum_s = float_of_int !sum_ns *. 1e-9; buckets = Array.of_list !buckets }

let mean_s s = if s.observations = 0 then 0.0 else s.sum_s /. float_of_int s.observations

let quantile_s s q =
  if s.observations = 0 then 0.0
  else begin
    let target = Float.of_int s.observations *. q in
    let acc = ref 0 and result = ref 0.0 and found = ref false in
    Array.iter
      (fun (upper, count) ->
        if not !found then begin
          acc := !acc + count;
          if float_of_int !acc >= target then begin
            result := upper;
            found := true
          end
        end)
      s.buckets;
    !result
  end

type metric_value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_summary

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_help : string;
  sample_value : metric_value;
}

let snapshot () =
  Mutex.lock registry_mutex;
  let metrics = Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  metrics
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (_, m) ->
         match m with
         | M_counter c ->
           {
             sample_name = c.c_meta.name;
             sample_labels = c.c_meta.labels;
             sample_help = c.c_meta.help;
             sample_value = Counter_value (value c);
           }
         | M_gauge g ->
           {
             sample_name = g.g_meta.name;
             sample_labels = g.g_meta.labels;
             sample_help = g.g_meta.help;
             sample_value = Gauge_value (gauge_value g);
           }
         | M_histogram h ->
           {
             sample_name = h.h_meta.name;
             sample_labels = h.h_meta.labels;
             sample_help = h.h_meta.help;
             sample_value = Histogram_value (histogram_summary h);
           })

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Array.iter (fun a -> Atomic.set a 0) c.c_shards
      | M_gauge g -> Atomic.set g.g_value 0.0
      | M_histogram h ->
        Array.iter
          (fun s ->
            Array.iter (fun a -> Atomic.set a 0) s.counts;
            Atomic.set s.sum_ns 0;
            Atomic.set s.observations 0)
          h.h_shards)
    registry;
  Mutex.unlock registry_mutex
