(** Process-wide named counters, gauges, and log-scale latency histograms.

    Metrics are identified by a name plus an optional label set (e.g.
    [selest_build_phase_seconds{spec="EWH(NS)", phase="bins"}]); the full
    inventory of names this repository records is documented in
    [docs/TELEMETRY.md].  Registration is idempotent — asking for an
    existing (name, labels) pair returns the same underlying metric — so
    instrumentation sites may re-derive handles at will.

    {b Concurrency.}  Every counter and histogram is split into 16 shards;
    a record operation touches only the shard indexed by the calling
    domain's id, with a single [Atomic.fetch_and_add] and no lock, which
    makes recording safe (and contention-free) from inside
    [Parallel.Pool] workers.  Reads merge the shards and are meant for
    quiescent points (end of a bench target, CLI exit).

    {b Cost.}  While {!Control.is_enabled} is false every record operation
    is one atomic load and returns; nothing is written and nothing is
    allocated.  Enabled, a record is a handful of integer atomics —
    histogram sums are kept in integer nanoseconds precisely so that no
    float ever needs to be boxed on the hot path. *)

type counter
(** A monotonically increasing integer (e.g. tasks executed). *)

type gauge
(** A last-writer-wins float (e.g. current pool capacity). *)

type histogram
(** A latency histogram over log-scale buckets: bucket [i] counts
    durations in [[2{^i}, 2{^i+1})] nanoseconds, 48 buckets. *)

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** [counter name] registers (or retrieves) the counter [name] with the
    given label set.  @raise Invalid_argument if [name] with these labels
    is already registered as a different metric kind. *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge
(** Like {!counter}, for gauges. *)

val histogram : ?help:string -> ?labels:(string * string) list -> string -> histogram
(** Like {!counter}, for histograms. *)

val incr : counter -> unit
(** Add one.  No-op while telemetry is disabled. *)

val add : counter -> int -> unit
(** Add an arbitrary increment.  No-op while telemetry is disabled. *)

val set : gauge -> float -> unit
(** Record the gauge's current value.  No-op while telemetry is disabled. *)

val observe_ns : histogram -> int -> unit
(** Record one duration in nanoseconds (negative values clamp to 0).
    No-op while telemetry is disabled. *)

val observe_s : histogram -> float -> unit
(** {!observe_ns} taking seconds. *)

val value : counter -> int
(** Current total, merged across shards. *)

val gauge_value : gauge -> float
(** Last value {!set}, or [0.] if never set. *)

type histogram_summary = {
  observations : int;  (** number of recorded durations *)
  sum_s : float;  (** total recorded time in seconds *)
  buckets : (float * int) array;
      (** non-empty buckets as [(upper_bound_seconds, count)], ascending *)
}

val histogram_summary : histogram -> histogram_summary
(** Merge the histogram's shards into a summary. *)

val mean_s : histogram_summary -> float
(** [sum_s / observations] ([0.] when empty). *)

val quantile_s : histogram_summary -> float -> float
(** [quantile_s s q] approximates the [q]-quantile (e.g. [0.99]) by the
    upper bound of the bucket where the cumulative count crosses it —
    accurate to the bucket resolution (a factor of 2). *)

type metric_value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_summary

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;  (** sorted by label key *)
  sample_help : string;
  sample_value : metric_value;
}

val snapshot : unit -> sample list
(** Every registered metric with its merged current value, sorted by name
    then labels — the input to {!Export}. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept).  Meant for
    tests and for isolating successive runs inside one process. *)
