(* The whole subsystem hangs off this one flag: every record operation in
   Metrics and Span loads it first and returns immediately when it is off,
   so an uninstrumented-feeling zero-cost default is a single atomic read.
   [Atomic] (not a plain ref) so that Parallel.Pool workers observe an
   enable/disable from the main domain without a data race. *)
let enabled = Atomic.make false

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* Wall clock in integer nanoseconds.  [Unix.gettimeofday] has microsecond
   resolution, which is plenty for build phases and query batches; the
   int64-nanosecond value fits a 63-bit OCaml int until the year 2262, and
   being an immediate it never allocates — the property the disabled-path
   guarantee relies on. *)
let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

(* Process start, the zero point of every exported span timestamp. *)
let epoch_ns = now_ns ()
