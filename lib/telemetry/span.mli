(** Nestable timed spans with a per-domain trace buffer.

    A span is one timed region of execution ("build.bandwidth",
    "pool.run", "experiment.query").  Completed spans land in a
    fixed-capacity ring buffer owned by the recording domain — the record
    path touches domain-local state only (via [Domain.DLS]), takes no lock,
    and is therefore safe under [Parallel.Pool] workers; [entries] merges
    all buffers afterwards.  Rings keep the most recent [capacity] spans
    per domain and silently overwrite older ones ({!dropped} counts the
    overwritten entries).

    Like all of telemetry, spans cost one flag check while
    {!Control.is_enabled} is false; {!with_span} then simply calls its
    thunk.  The span hierarchy recorded by this repository is documented in
    [docs/TELEMETRY.md]. *)

type entry = {
  name : string;
  domain : int;  (** numeric id of the recording domain *)
  depth : int;  (** nesting depth within that domain, 0 = outermost *)
  start_ns : int;  (** start time relative to {!Control.epoch_ns} *)
  duration_ns : int;
}

val with_span : ?hist:Metrics.histogram -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] and records how long it took; nested
    calls record increasing depths.  The entry is pushed (and [hist], when
    given, observed) even if [f] raises.  Disabled, this is exactly
    [f ()]. *)

val start_ns : unit -> int
(** Allocation-free manual timing, for per-record paths where the closure
    of {!with_span} would be too costly: returns {!Control.now_ns} when
    enabled, [0] when disabled. *)

val record : ?hist:Metrics.histogram -> start_ns:int -> string -> unit
(** [record ~start_ns name] completes a manual span opened by {!start_ns}:
    pushes an entry at the current depth (manual spans do not nest) and
    observes [hist] when given.  No-op when [start_ns = 0] or telemetry is
    disabled, so the [start_ns]/[record] pair degrades to two flag
    checks. *)

val entries : unit -> entry list
(** Completed spans merged across every domain that ever recorded one,
    sorted by start time (outer spans before the inner spans they
    contain).  Buffers survive domain shutdown, so traces from finished
    pool workers remain readable.  Call at a quiescent point: entries being
    pushed concurrently with the merge may be missed or torn. *)

val dropped : unit -> int
(** Spans overwritten because a ring was full. *)

val clear : unit -> unit
(** Drop every recorded span (buffers and their capacity are kept). *)

val set_capacity : int -> unit
(** Ring capacity for buffers created {e afterwards} (default 4096);
    existing buffers keep their size.  Call before enabling telemetry.
    @raise Invalid_argument if the capacity is [< 1]. *)
