(** Renderers for the recorded telemetry: JSON, human-readable text, and
    the Prometheus text exposition format.

    All three render the same data — {!Metrics.snapshot} plus
    {!Span.entries} (spans appear in the JSON and text forms only;
    Prometheus has no span notion).  Rendering performs no locking beyond
    the snapshot itself and can be called at any quiescent point, any
    number of times.  The JSON schema ([schema_version 1]) is documented
    field-by-field in [docs/TELEMETRY.md]; [BENCH_telemetry.json] written
    by [bench/main.exe --telemetry] is exactly {!to_json} output. *)

type format = Json | Text | Prometheus

val to_json : unit -> string
(** Full snapshot — counters, gauges, histograms (sparse log-scale
    buckets), and the merged span trace — as one JSON document.  Also
    refreshes the {!last_json} cache. *)

val last_json : unit -> string option
(** The most recent {!to_json} result, without re-rendering — the cheap
    way to re-read what the last export saw (e.g. after a bench run has
    already written its telemetry file). *)

val to_text : unit -> string
(** Human-readable report: non-zero counters, gauges, histogram summaries
    (count, total, mean, approximate p50/p99), and the slowest recorded
    spans.  This is what [selest_cli --stats] prints. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format: counters and gauges as single
    samples, histograms as cumulative [_bucket{le="..."}] series plus
    [_sum] / [_count].  Metric names are normalized to the Prometheus
    charset. *)

val render : format -> string
(** Dispatch on {!format}. *)

val write_file : path:string -> format -> unit
(** Render and write to [path] (truncating).  @raise Sys_error as
    [open_out] does. *)
