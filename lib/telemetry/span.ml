(* Timed spans with a per-domain trace ring.

   Each domain owns one buffer (reached through Domain.DLS, so the record
   path takes no lock and sees no other domain's state); buffers register
   themselves in a global list on first use so that [entries] can merge
   them later.  Buffers outlive their domain — a trace recorded by a
   Parallel.Pool worker is still readable after the pool shuts down. *)

type entry = {
  name : string;
  domain : int;
  depth : int;
  start_ns : int;  (* relative to Control.epoch_ns *)
  duration_ns : int;
}

type buffer = {
  owner : int;  (* numeric domain id *)
  ring : entry array;
  mutable pushed : int;  (* total entries ever pushed *)
  mutable depth : int;  (* current nesting depth of open spans *)
}

let default_capacity = 4096
let capacity = ref default_capacity

let set_capacity n =
  if n < 1 then invalid_arg "Telemetry.Span.set_capacity: capacity must be >= 1";
  capacity := n

(* All buffers ever created, for merging.  The mutex guards only the list;
   ring contents are written by the owning domain alone. *)
let buffers : buffer list ref = ref []
let buffers_mutex = Mutex.create ()

let dummy_entry = { name = ""; domain = 0; depth = 0; start_ns = 0; duration_ns = 0 }

let new_buffer () =
  let b =
    {
      owner = (Domain.self () :> int);
      ring = Array.make !capacity dummy_entry;
      pushed = 0;
      depth = 0;
    }
  in
  Mutex.lock buffers_mutex;
  buffers := b :: !buffers;
  Mutex.unlock buffers_mutex;
  b

let dls_key = Domain.DLS.new_key new_buffer
let buffer () = Domain.DLS.get dls_key

let push b e =
  b.ring.(b.pushed mod Array.length b.ring) <- e;
  b.pushed <- b.pushed + 1

let record ?hist ~start_ns name =
  if start_ns > 0 && Control.is_enabled () then begin
    let now = Control.now_ns () in
    let b = buffer () in
    push b
      {
        name;
        domain = b.owner;
        depth = b.depth;
        start_ns = start_ns - Control.epoch_ns;
        duration_ns = now - start_ns;
      };
    match hist with Some h -> Metrics.observe_ns h (now - start_ns) | None -> ()
  end

let start_ns () = if Control.is_enabled () then Control.now_ns () else 0

let with_span ?hist name f =
  if not (Control.is_enabled ()) then f ()
  else begin
    let b = buffer () in
    let depth = b.depth in
    b.depth <- depth + 1;
    let t0 = Control.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let now = Control.now_ns () in
        (* Re-fetch: [f] may run Parallel code, but [finally] executes in
           the starting domain; restoring through the starting buffer keeps
           depth balanced even if an exception unwinds several spans. *)
        let b = buffer () in
        b.depth <- depth;
        push b
          {
            name;
            domain = b.owner;
            depth;
            start_ns = t0 - Control.epoch_ns;
            duration_ns = now - t0;
          };
        match hist with Some h -> Metrics.observe_ns h (now - t0) | None -> ())
      f
  end

let entries () =
  Mutex.lock buffers_mutex;
  let bufs = !buffers in
  Mutex.unlock buffers_mutex;
  let collect b =
    let cap = Array.length b.ring in
    let n = if b.pushed < cap then b.pushed else cap in
    List.init n (fun i -> b.ring.((b.pushed - n + i) mod cap))
  in
  List.concat_map collect bufs
  |> List.sort (fun a b ->
         match compare a.start_ns b.start_ns with 0 -> compare a.depth b.depth | c -> c)

let dropped () =
  Mutex.lock buffers_mutex;
  let bufs = !buffers in
  Mutex.unlock buffers_mutex;
  List.fold_left (fun acc b -> acc + max 0 (b.pushed - Array.length b.ring)) 0 bufs

let clear () =
  Mutex.lock buffers_mutex;
  List.iter
    (fun b ->
      b.pushed <- 0;
      Array.fill b.ring 0 (Array.length b.ring) dummy_entry)
    !buffers;
  Mutex.unlock buffers_mutex
