(** Bin-based density and selectivity estimation (Section 3.1).

    A histogram is a strictly increasing edge sequence [c_0 < ... < c_k]
    plus per-bin sample counts [n_i].  Selectivity follows the paper's
    formula (4): each bin contributes its count times the overlapped
    fraction of its width, under the uniform-within-bin assumption.  Counts
    are floats so that the average shifted histogram can reuse the same
    machinery with fractional weights. *)

type t

val create : edges:float array -> counts:float array -> t
(** [create ~edges ~counts] validates [Array.length edges = Array.length
    counts + 1], strict monotonicity of [edges], non-negative counts and a
    positive total count.
    @raise Invalid_argument otherwise. *)

val of_samples : edges:float array -> float array -> t
(** [of_samples ~edges samples] bins the samples: bin [i] receives samples
    in [(c_i, c_{i+1}]] with the first bin closed on the left, as in the
    paper's bin definition.  Samples outside [[c_0, c_k]] are counted into
    the first/last bin (callers pass edges covering the domain).
    @raise Invalid_argument on empty [samples] or invalid [edges]. *)

val bins : t -> int
(** Number of bins [k] (one less than the number of edges). *)

val edges : t -> float array
(** Shared storage: do not mutate. *)

val counts : t -> float array
(** Shared storage: do not mutate. *)

val total_count : t -> float
(** Sum of all bin counts — the [n] of formula (4); fractional for
    averaged histograms (ASH). *)

val selectivity : t -> a:float -> b:float -> float
(** Formula (4): [1/n * sum_i n_i / h_i * psi_i(a, b)] where [psi_i] is the
    length of the overlap of bin [i] with [[a, b]].  0 when [a > b]; clamped
    to [[0, 1]]. *)

val density : t -> float -> float
(** [density t x] is [n_i / (n h_i)] for the bin containing [x]; 0 outside
    the histogram range.  The bin containing [x] is the unique [i] with
    [c_i < x <= c_{i+1}] (first bin closed on the left). *)

val mean_width : t -> float
(** Average bin width, [ (c_k - c_0) / k ]. *)
