(* Knots at bin centers plus one zero knot half a bin outside each border:
   knot j (0 <= j <= k+1) sits at lo + (j - 0.5) * h with height 0 for the
   border knots and n_i / (n h) for bin i = j - 1.  The density is linear
   between consecutive knots, so the selectivity over any interval is a sum
   of trapezoids. *)

type t = {
  knots_x : float array; (* k + 2 knot positions, strictly increasing *)
  knots_y : float array; (* densities at the knots *)
}

let of_histogram h =
  let k = Histogram.bins h in
  let edges = Histogram.edges h in
  let counts = Histogram.counts h in
  let total = Histogram.total_count h in
  let width = (edges.(k) -. edges.(0)) /. float_of_int k in
  for i = 0 to k - 1 do
    let w = edges.(i + 1) -. edges.(i) in
    if Float.abs (w -. width) > 1e-9 *. width then
      invalid_arg "Frequency_polygon.of_histogram: histogram must be equi-width"
  done;
  let knots_x =
    Array.init (k + 2) (fun j -> edges.(0) +. ((float_of_int j -. 0.5) *. width))
  in
  let knots_y =
    Array.init (k + 2) (fun j ->
        if j = 0 || j = k + 1 then 0.0 else counts.(j - 1) /. (total *. width))
  in
  { knots_x; knots_y }

let build ~domain ~bins samples = of_histogram (Builders.equi_width ~domain ~bins samples)

let bins t = Array.length t.knots_x - 2
let knots t = (t.knots_x, t.knots_y)

let density t x =
  let m = Array.length t.knots_x in
  if x <= t.knots_x.(0) || x >= t.knots_x.(m - 1) then 0.0
  else begin
    let j = Stats.Array_util.float_upper_bound t.knots_x x - 1 in
    let j = Int.max 0 (Int.min (m - 2) j) in
    let x0 = t.knots_x.(j) and x1 = t.knots_x.(j + 1) in
    let y0 = t.knots_y.(j) and y1 = t.knots_y.(j + 1) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

(* Integral of the linear segment j over [a, b] clipped to the segment. *)
let segment_integral t j a b =
  let x0 = t.knots_x.(j) and x1 = t.knots_x.(j + 1) in
  let lo = Float.max a x0 and hi = Float.min b x1 in
  if lo >= hi then 0.0
  else begin
    let y_at x =
      t.knots_y.(j)
      +. ((t.knots_y.(j + 1) -. t.knots_y.(j)) *. (x -. x0) /. (x1 -. x0))
    in
    0.5 *. (y_at lo +. y_at hi) *. (hi -. lo)
  end

let selectivity t ~a ~b =
  if a > b then 0.0
  else begin
    let m = Array.length t.knots_x in
    let first = Int.max 0 (Stats.Array_util.float_upper_bound t.knots_x a - 1) in
    let acc = ref 0.0 in
    let j = ref first in
    while !j < m - 1 && t.knots_x.(!j) < b do
      acc := !acc +. segment_integral t !j a b;
      incr j
    done;
    Float.max 0.0 (Float.min 1.0 !acc)
  end
