(** Frequency polygon (Scott [11], §4): the piecewise-linear interpolation
    of an equi-width histogram's bin-center heights, with zero-height knots
    half a bin outside each border.

    The polygon removes the histogram's discontinuous jump points (the
    deficiency Section 3.1 of the paper highlights) at no extra storage
    beyond the bin counts, and improves the MISE convergence rate from
    [O(n^-2/3)] to [O(n^-4/5)] — the same rate as kernel estimators.  It
    sits exactly between the equi-width histogram and the kernel estimator
    in the paper's design space, which is why it joins the extension
    benches. *)

type t

val build : domain:float * float -> bins:int -> float array -> t
(** [build ~domain ~bins samples] constructs the underlying equi-width
    histogram and its interpolation knots.
    @raise Invalid_argument if [bins <= 0], the domain is empty or the
    sample is empty. *)

val of_histogram : Histogram.t -> t
(** Interpolate an existing histogram.  The histogram must be equi-width
    (knots are placed at bin centers); @raise Invalid_argument if bins
    differ in width by more than 1e-9 relatively. *)

val bins : t -> int
(** Bin count of the underlying equi-width histogram (the polygon has
    [bins + 2] knots, one half-bin outside each border). *)

val knots : t -> float array * float array
(** The knot positions and densities [(knots_x, knots_y)], [bins + 2] of
    each (shared storage: do not mutate).  Exposed so the batch evaluator
    can replay the trapezoid sum over the exact arrays the scalar path
    reads. *)

val density : t -> float -> float
(** Piecewise-linear density; 0 beyond half a bin outside the domain. *)

val selectivity : t -> a:float -> b:float -> float
(** Exact integral of the piecewise-linear density over [[a, b]], clamped
    to [[0, 1]].  Total mass over the real line is exactly 1, of which a
    small boundary share lives within half a bin outside the domain (the
    polygon's analog of the kernel boundary leakage). *)
