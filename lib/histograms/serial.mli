(** Serial histogram (Ioannidis & Christodoulakis [2]).

    The paper's taxonomy (Sections 1-2) contrasts histograms for
    {e categorical} domains with those for metric domains: a serial
    histogram groups attribute values by {e frequency} (buckets are
    contiguous runs of the frequency-sorted value list), which is optimal
    for limiting join-size error propagation but has no relationship to
    value adjacency — so range queries are only supported by remembering
    which values landed in which bucket, defeating the compression.

    This implementation is faithful to that trade-off: buckets store their
    (sorted) member values, each approximated by the bucket's average
    frequency.  It exists to make the taxonomy measurable — on the paper's
    large metric domains its accuracy collapses to pure sampling while its
    storage is O(distinct values), which is exactly why the paper studies
    equi-width/equi-depth/max-diff histograms there instead. *)

type t

val build : bins:int -> float array -> t
(** [build ~bins samples] groups the distinct sample values by descending
    frequency into [bins] buckets of (near-)equal value counts.
    @raise Invalid_argument if [bins <= 0] or the sample is empty. *)

val bucket_count : t -> int
(** Number of frequency-contiguous buckets actually formed — at most the
    requested [bins], fewer when the sample has fewer distinct values. *)

val storage_entries : t -> int
(** Number of stored values — the serial histogram's storage cost, equal to
    the number of distinct sample values. *)

val selectivity : t -> a:float -> b:float -> float
(** Sum over buckets of [average frequency * members in range / n]. *)

val frequency_spread : t -> float
(** Maximum over buckets of (max member frequency - min member frequency);
    0 means the grouping is perfectly serial for the sample, the property
    the variant optimizes.  Exposed for tests. *)
