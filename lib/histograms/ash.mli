(** Average shifted histogram (Section 3.1; Scott [11]).

    An ASH with [m] shifts averages [m] equi-width histograms of identical
    bin width [h] whose origins differ by [h / m]; the estimate keeps the
    cheap histogram probe while smoothing away most of the dependence on the
    starting point.  The paper's final comparison (Figure 12) uses ten
    shifts. *)

type t

val build : domain:float * float -> bins:int -> shifts:int -> float array -> t
(** [build ~domain ~bins ~shifts samples] constructs [shifts] equi-width
    histograms with bin width [(hi - lo) / bins], the [j]-th shifted left by
    [j * h / shifts] (grids extended one bin beyond the domain so all
    samples stay covered).
    @raise Invalid_argument if [bins <= 0], [shifts <= 0], the domain is
    empty or the sample is empty. *)

val shifts : t -> int
(** Number of component histograms [m] averaged by this ASH. *)

val bin_width : t -> float
(** Common bin width [h] of the component histograms; successive origins
    differ by [h / shifts]. *)

val components : t -> Histogram.t array
(** The [m] component histograms in shift order (shared storage: do not
    mutate).  The batch evaluator flattens their edge and count arrays into
    one structure-of-arrays plan and must average in this exact order to
    stay bit-identical with {!selectivity}. *)

val selectivity : t -> a:float -> b:float -> float
(** Mean of the component histograms' formula-(4) estimates. *)

val density : t -> float -> float
(** Mean of the component histograms' densities. *)
