type t = { histos : Histogram.t array; width : float }

let build ~domain:(lo, hi) ~bins ~shifts samples =
  if lo >= hi then invalid_arg "Ash.build: empty domain";
  if bins <= 0 then invalid_arg "Ash.build: bins must be positive";
  if shifts <= 0 then invalid_arg "Ash.build: shifts must be positive";
  if Array.length samples = 0 then invalid_arg "Ash.build: empty sample";
  let h = (hi -. lo) /. float_of_int bins in
  let histos =
    Array.init shifts (fun j ->
        let origin = lo -. h +. (float_of_int j *. h /. float_of_int shifts) in
        (* Enough bins to cover [origin, hi + h]. *)
        let k = int_of_float (Float.ceil ((hi +. h -. origin) /. h)) in
        let edges = Array.init (k + 1) (fun i -> origin +. (float_of_int i *. h)) in
        Histogram.of_samples ~edges samples)
  in
  { histos; width = h }

let shifts t = Array.length t.histos
let bin_width t = t.width
let components t = t.histos

let selectivity t ~a ~b =
  let m = Array.length t.histos in
  let s = ref 0.0 in
  Array.iter (fun hgm -> s := !s +. Histogram.selectivity hgm ~a ~b) t.histos;
  !s /. float_of_int m

let density t x =
  let m = Array.length t.histos in
  let s = ref 0.0 in
  Array.iter (fun hgm -> s := !s +. Histogram.density hgm x) t.histos;
  !s /. float_of_int m
