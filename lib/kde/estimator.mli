(** Kernel selectivity estimation (Sections 3.2 and 3.2.1 of the paper).

    The estimator holds a sorted copy of the sample and answers range-query
    selectivities through the kernel primitive (formula (6)); with the
    sorted sample the cost per query is [O(log n + k)] where [k] is the
    number of samples within one bandwidth of the query range, improving on
    the [Theta(n)] scan of the paper's Algorithm 1 exactly as suggested
    there.  {!selectivity_scan} keeps the literal [Theta(n)] algorithm for
    cross-checking and for the timing benchmark.

    Three boundary policies implement Section 3.2.1:
    - {!No_treatment}: the raw estimator, biased near domain boundaries;
    - {!Reflection}: samples within one kernel radius of a boundary are
      mirrored outside it (density property kept, consistency lost);
    - {!Boundary_kernels}: Simonoff-Dong kernels replace the Epanechnikov
      kernel for estimation points within [h] of a boundary (consistency
      kept, density property lost). *)

type boundary_policy =
  | No_treatment
  | Reflection
  | Boundary_kernels

val boundary_policy_name : boundary_policy -> string
(** Stable lower-case name (["none"], ["reflection"],
    ["boundary-kernels"]) used by spec strings and reports. *)

type t

val create :
  ?kernel:Kernels.Kernel.t ->
  ?boundary:boundary_policy ->
  domain:float * float ->
  h:float ->
  float array ->
  t
(** [create ~domain ~h samples] builds an estimator over [samples] (copied
    and sorted; values outside [domain] are clamped to it).  [kernel]
    defaults to [Epanechnikov], [boundary] to [No_treatment].
    @raise Invalid_argument if [h <= 0], the domain is empty, the sample is
    empty, or [Boundary_kernels] is combined with a kernel of non-unit
    support radius (the Simonoff-Dong family pairs with the Epanechnikov
    kernel). *)

val kernel : t -> Kernels.Kernel.t
(** The kernel function the estimator was created with. *)

val boundary : t -> boundary_policy
(** The boundary policy in effect. *)

val bandwidth : t -> float
(** The smoothing bandwidth [h]. *)

val domain : t -> float * float
(** The estimation domain [(lo, hi)] samples were clamped to. *)

val sample_size : t -> int
(** Number of samples [n] held by the estimator. *)

val samples : t -> float array
(** The sorted sample (shared storage: do not mutate). *)

val reflections : t -> float array * float array
(** The sorted mirrored-sample arrays [(left, right)] maintained by the
    {!Reflection} policy; both empty under the other policies.  Shared
    storage (do not mutate) — exposed so the batch evaluator can replay the
    scalar reflection sums over the exact same arrays. *)

val selectivity : t -> a:float -> b:float -> float
(** [selectivity t ~a ~b] estimates the distribution selectivity of
    [Q(a,b)]; 0 when [a > b].  The result is clamped to [[0, 1]] (boundary
    kernels can produce small negative excursions). *)

val selectivity_scan : t -> a:float -> b:float -> float
(** The literal Algorithm 1: a [Theta(n)] scan over all samples.  Agrees
    with {!selectivity} to floating-point accuracy; exists for tests and the
    timing benchmark. *)

val density : t -> float -> float
(** [density t x] is the boundary-corrected density estimate [f_hat(x)];
    0 outside the domain. *)

val mass : t -> float
(** [int f_hat] over the whole domain via {!selectivity} on the full range —
    1 up to boundary loss (exactly the "loss of weight" the paper
    describes; tests assert the expected deficit per policy). *)
