(** Gaussian pilot estimator.

    The direct plug-in rule (Section 4.3) and the hybrid estimator's
    change-point detector (Section 3.3) both need derivatives of a pilot
    density estimate.  The Epanechnikov estimator's second derivative is a
    sum of step functions, so this module provides the standard smooth
    alternative: a Gaussian-kernel pilot, whose roughness functionals
    [int (f_hat')^2] and [int (f_hat'')^2] have exact closed forms as double
    sums over sample pairs (convolution identity of normal densities), with
    an 8-sigma cutoff exploiting sortedness. *)

type t

val create : h:float -> float array -> t
(** [create ~h samples] sorts a copy of [samples].
    @raise Invalid_argument if [h <= 0] or the sample is empty. *)

val bandwidth : t -> float
(** The pilot's Gaussian bandwidth [h]. *)

val density : t -> float -> float
(** Gaussian KDE [f_hat(x)]. *)

val deriv1 : t -> float -> float
(** First derivative [f_hat'(x)]. *)

val deriv2 : t -> float -> float
(** Second derivative [f_hat''(x)] — the change-point detector's signal. *)

val roughness_deriv1 : t -> float
(** Exact [int (f_hat')^2 dx = -(1/n^2) sum_ij phi''_{sqrt2 h}(X_i - X_j)]. *)

val roughness_deriv2 : t -> float
(** Exact [int (f_hat'')^2 dx = (1/n^2) sum_ij phi''''_{sqrt2 h}(X_i - X_j)]. *)
