module K = Kernels.Kernel
module B = Kernels.Boundary

type boundary_policy =
  | No_treatment
  | Reflection
  | Boundary_kernels

let boundary_policy_name = function
  | No_treatment -> "none"
  | Reflection -> "reflection"
  | Boundary_kernels -> "boundary-kernels"

type t = {
  kernel : K.t;
  boundary : boundary_policy;
  h : float;
  lo : float;
  hi : float;
  xs : float array; (* sorted samples *)
  refl_left : float array; (* mirrored samples below lo, sorted; Reflection only *)
  refl_right : float array; (* mirrored samples above hi, sorted; Reflection only *)
}

let create ?(kernel = K.Epanechnikov) ?(boundary = No_treatment) ~domain:(lo, hi) ~h samples =
  if h <= 0.0 || not (Float.is_finite h) then
    invalid_arg "Kde.Estimator.create: bandwidth must be positive and finite";
  if lo >= hi then invalid_arg "Kde.Estimator.create: empty domain";
  if Array.length samples = 0 then invalid_arg "Kde.Estimator.create: empty sample";
  (match boundary with
  | Boundary_kernels ->
    if K.support_radius kernel <> Some 1.0 then
      invalid_arg
        "Kde.Estimator.create: boundary kernels require a unit-support kernel (Epanechnikov \
         family)";
    if 2.0 *. h > hi -. lo then
      invalid_arg "Kde.Estimator.create: boundary kernels require 2h <= domain width"
  | No_treatment | Reflection -> ());
  let xs = Array.map (fun x -> Float.max lo (Float.min hi x)) samples in
  Array.sort Float.compare xs;
  let rh = K.effective_radius kernel *. h in
  let refl_left, refl_right =
    match boundary with
    | Reflection ->
      let left =
        Array.of_seq
          (Seq.filter (fun x -> x <= lo +. rh) (Array.to_seq xs))
      in
      let right =
        Array.of_seq
          (Seq.filter (fun x -> x >= hi -. rh) (Array.to_seq xs))
      in
      let ml = Array.map (fun x -> (2.0 *. lo) -. x) left in
      let mr = Array.map (fun x -> (2.0 *. hi) -. x) right in
      Array.sort Float.compare ml;
      Array.sort Float.compare mr;
      (ml, mr)
    | No_treatment | Boundary_kernels -> ([||], [||])
  in
  { kernel; boundary; h; lo; hi; xs; refl_left; refl_right }

let kernel t = t.kernel
let boundary t = t.boundary
let bandwidth t = t.h
let domain t = (t.lo, t.hi)
let sample_size t = Array.length t.xs
let samples t = t.xs
let reflections t = (t.refl_left, t.refl_right)

(* Unnormalized sum of F((b - X)/h) - F((a - X)/h) over a sorted array,
   touching only the O(k) samples whose kernel overlaps [a, b]. *)
let base_sum t xs a b =
  let h = t.h in
  let rh = K.effective_radius t.kernel *. h in
  let cdf = K.cdf t.kernel in
  let partial acc i0 i1 =
    let s = ref acc in
    for i = i0 to i1 - 1 do
      let x = xs.(i) in
      s := !s +. (cdf ((b -. x) /. h) -. cdf ((a -. x) /. h))
    done;
    !s
  in
  let i0 = Stats.Array_util.float_lower_bound xs (a -. rh) in
  let i1 = Stats.Array_util.float_upper_bound xs (b +. rh) in
  if a +. rh <= b -. rh then begin
    let j0 = Stats.Array_util.float_lower_bound xs (a +. rh) in
    let j1 = Stats.Array_util.float_upper_bound xs (b -. rh) in
    let full = float_of_int (Int.max 0 (j1 - j0)) in
    partial (partial full i0 j0) j1 i1
  end
  else partial 0.0 i0 i1

(* Same sum computed by the literal Theta(n) scan of Algorithm 1. *)
let scan_sum t xs a b =
  let h = t.h in
  let cdf = K.cdf t.kernel in
  let s = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    let x = xs.(i) in
    s := !s +. (cdf ((b -. x) /. h) -. cdf ((a -. x) /. h))
  done;
  !s

(* Density of the plain (untreated) estimator at x over a given array. *)
let plain_density_over t xs x =
  let h = t.h in
  let rh = K.effective_radius t.kernel *. h in
  let i0 = Stats.Array_util.float_lower_bound xs (x -. rh) in
  let i1 = Stats.Array_util.float_upper_bound xs (x +. rh) in
  let s = ref 0.0 in
  for i = i0 to i1 - 1 do
    s := !s +. K.eval t.kernel ((x -. xs.(i)) /. h)
  done;
  !s /. (float_of_int (Array.length t.xs) *. h)

(* Boundary-kernel density: Simonoff-Dong kernels within h of a boundary,
   Epanechnikov elsewhere. *)
let boundary_kernel_density t x =
  let h = t.h in
  let n = float_of_int (Array.length t.xs) in
  if x < t.lo +. h then begin
    let q = (x -. t.lo) /. h in
    let i0 = Stats.Array_util.float_lower_bound t.xs (x -. (q *. h)) in
    let i1 = Stats.Array_util.float_upper_bound t.xs (x +. h) in
    let s = ref 0.0 in
    for i = i0 to i1 - 1 do
      s := !s +. B.left ~u:((x -. t.xs.(i)) /. h) ~q
    done;
    !s /. (n *. h)
  end
  else if x > t.hi -. h then begin
    let q = (t.hi -. x) /. h in
    let i0 = Stats.Array_util.float_lower_bound t.xs (x -. h) in
    let i1 = Stats.Array_util.float_upper_bound t.xs (x +. (q *. h)) in
    let s = ref 0.0 in
    for i = i0 to i1 - 1 do
      s := !s +. B.right ~u:((x -. t.xs.(i)) /. h) ~q
    done;
    !s /. (n *. h)
  end
  else plain_density_over t t.xs x

let density t x =
  if x < t.lo || x > t.hi then 0.0
  else
    match t.boundary with
    | No_treatment -> plain_density_over t t.xs x
    | Reflection ->
      plain_density_over t t.xs x
      +. plain_density_over t t.refl_left x
      +. plain_density_over t t.refl_right x
    | Boundary_kernels -> boundary_kernel_density t x

let clamp01 v = Float.max 0.0 (Float.min 1.0 v)

(* Selectivity under the boundary-kernel policy: closed form in the
   interior, Simpson over the boundary strips where the kernel family
   depends on the estimation point. *)
let boundary_kernel_selectivity ~sum t a b =
  let h = t.h in
  let left_edge = t.lo +. h and right_edge = t.hi -. h in
  (* The strip integrand is piecewise rational in x (smooth between the
     points where samples enter or leave the kernel support), so one
     10-point Gauss-Legendre panel per strip carries a ~1e-4 absolute
     error from the kinks — three orders of magnitude below the
     estimation error itself, at a tenth of the cost of the composite
     Simpson rule this replaced. *)
  let piece_numeric lo hi =
    if hi -. lo <= 0.0 then 0.0
    else Stats.Integrate.gauss_legendre_10 (fun x -> boundary_kernel_density t x) ~a:lo ~b:hi
  in
  let mid_lo = Float.max a left_edge and mid_hi = Float.min b right_edge in
  let mid =
    if mid_lo < mid_hi then sum t t.xs mid_lo mid_hi /. float_of_int (Array.length t.xs)
    else 0.0
  in
  let left = if a < left_edge then piece_numeric a (Float.min b left_edge) else 0.0 in
  let right = if b > right_edge then piece_numeric (Float.max a right_edge) b else 0.0 in
  left +. mid +. right

let selectivity_with ~sum t ~a ~b =
  if a > b then 0.0
  else begin
    let a = Float.max t.lo a and b = Float.min t.hi b in
    if a > b then 0.0
    else begin
      let n = float_of_int (Array.length t.xs) in
      let v =
        match t.boundary with
        | No_treatment -> sum t t.xs a b /. n
        | Reflection ->
          (sum t t.xs a b +. sum t t.refl_left a b +. sum t t.refl_right a b) /. n
        | Boundary_kernels -> boundary_kernel_selectivity ~sum t a b
      in
      clamp01 v
    end
  end

let selectivity t ~a ~b = selectivity_with ~sum:base_sum t ~a ~b

let selectivity_scan t ~a ~b = selectivity_with ~sum:scan_sum t ~a ~b

let mass t = selectivity t ~a:t.lo ~b:t.hi
